package ranbooster_test

// One benchmark per table and figure of the paper's evaluation: each
// iteration regenerates the full result on the simulated testbed. Run
// with `go test -bench=. -benchmem` or a specific target, e.g.
// `go test -bench=BenchmarkFig10a`. The regenerated rows are printed on
// the first iteration so a bench run doubles as a reproduction log.

import (
	"fmt"
	"sync"
	"testing"

	"ranbooster"
	"ranbooster/internal/benchreg"
)

var printOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	run, ok := ranbooster.Experiments[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table := run()
		if _, done := printOnce.LoadOrStore(id, true); !done {
			b.Logf("\n%s", table)
		}
	}
}

// Correctness results (§6.2).
func BenchmarkTable2DMIMO(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkFig10aDAS(b *testing.B)        { benchExperiment(b, "fig10a") }
func BenchmarkFig10bRUSharing(b *testing.B)  { benchExperiment(b, "fig10b") }
func BenchmarkFig10cPRBMonitor(b *testing.B) { benchExperiment(b, "fig10c") }

// Benefits (§6.3).
func BenchmarkFig11FloorOptions(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12NeutralHost(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13Upgrade(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14Energy(b *testing.B)       { benchExperiment(b, "fig14") }

// Microbenchmarks (§6.4).
func BenchmarkFig15aScalability(b *testing.B) { benchExperiment(b, "fig15a") }
func BenchmarkFig15bLatency(b *testing.B)     { benchExperiment(b, "fig15b") }
func BenchmarkFig16DPDKvsXDP(b *testing.B)    { benchExperiment(b, "fig16") }
func BenchmarkTable1Placement(b *testing.B)   { benchExperiment(b, "table1") }

// Interoperability (§6.2) and §8.1 extensions.
func BenchmarkInteropStacks(b *testing.B) { benchExperiment(b, "interop") }

// Appendix A.2.
func BenchmarkCostsA2(b *testing.B) { benchExperiment(b, "costs") }

// Design-choice ablations (DESIGN.md §5).
func BenchmarkAblateAlignment(b *testing.B) { benchExperiment(b, "ablate-alignment") }
func BenchmarkAblateEstimator(b *testing.B) { benchExperiment(b, "ablate-estimator") }
func BenchmarkAblateSSB(b *testing.B)       { benchExperiment(b, "ablate-ssb") }
func BenchmarkAblateWidening(b *testing.B)  { benchExperiment(b, "ablate-widening") }
func BenchmarkAblateXDPPlace(b *testing.B)  { benchExperiment(b, "ablate-xdp-placement") }

// BenchmarkEngineParallel measures the sharded datapath's wall-clock
// throughput: b.N frames across 8 antenna streams pushed through parallel
// workers, at 1, 2 and 4 cores. frames/sec is reported; the 4-core run
// should sustain well over 2x the single-core rate. The workload lives in
// internal/benchreg, shared with cmd/benchreg's BENCH_*.json snapshots.
func BenchmarkEngineParallel(b *testing.B) {
	for _, cores := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("cores=%d", cores), benchreg.EngineBench(cores, false))
	}
}

// BenchmarkEngineTraced is the same workload with the frame-span trace
// collector recording every packet; comparing against
// BenchmarkEngineParallel at equal core counts isolates the observability
// overhead (asserted < 5% by TestTracingOverhead in internal/benchreg).
func BenchmarkEngineTraced(b *testing.B) {
	for _, cores := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("cores=%d", cores), benchreg.EngineBench(cores, true))
	}
}

// BenchmarkEngineScale is the skewed-load admission axis: four hot eAxC
// streams whose RU-port nibbles collide on one shard under the static
// hash, driven through the static layout and the work-stealing pool at
// equal core counts. The worksteal/cores=4 row should approach 4x the
// hash row; cmd/benchreg records the matrix (plus the metro scenario
// points) to BENCH_8.json.
func BenchmarkEngineScale(b *testing.B) {
	for _, layout := range []struct {
		name string
		ws   bool
	}{{"hash", false}, {"worksteal", true}} {
		for _, cores := range []int{1, 4} {
			b.Run(fmt.Sprintf("layout=%s/cores=%d", layout.name, cores),
				benchreg.SkewBench(cores, layout.ws))
		}
	}
}

// BenchmarkEngineBurst is the burst-size × core-count axis: the same
// frame mix through a burst-aware app (core.BurstApp), whose per-burst
// service pause amortizes the per-frame wakeup the per-frame axis pays.
// Comparing batch=1 against larger batches at equal core counts isolates
// the burst win; cmd/benchreg records the matrix to BENCH_6.json.
func BenchmarkEngineBurst(b *testing.B) {
	for _, batch := range []int{16, 32, 64} {
		for _, cores := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("batch=%d/cores=%d", batch, cores), benchreg.BurstBench(cores, batch))
		}
	}
}

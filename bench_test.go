package ranbooster_test

// One benchmark per table and figure of the paper's evaluation: each
// iteration regenerates the full result on the simulated testbed. Run
// with `go test -bench=. -benchmem` or a specific target, e.g.
// `go test -bench=BenchmarkFig10a`. The regenerated rows are printed on
// the first iteration so a bench run doubles as a reproduction log.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"ranbooster"
	"ranbooster/internal/bfp"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/fh"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
)

var printOnce sync.Map

func benchExperiment(b *testing.B, id string) {
	run, ok := ranbooster.Experiments[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		table := run()
		if _, done := printOnce.LoadOrStore(id, true); !done {
			b.Logf("\n%s", table)
		}
	}
}

// Correctness results (§6.2).
func BenchmarkTable2DMIMO(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkFig10aDAS(b *testing.B)        { benchExperiment(b, "fig10a") }
func BenchmarkFig10bRUSharing(b *testing.B)  { benchExperiment(b, "fig10b") }
func BenchmarkFig10cPRBMonitor(b *testing.B) { benchExperiment(b, "fig10c") }

// Benefits (§6.3).
func BenchmarkFig11FloorOptions(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12NeutralHost(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13Upgrade(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14Energy(b *testing.B)       { benchExperiment(b, "fig14") }

// Microbenchmarks (§6.4).
func BenchmarkFig15aScalability(b *testing.B) { benchExperiment(b, "fig15a") }
func BenchmarkFig15bLatency(b *testing.B)     { benchExperiment(b, "fig15b") }
func BenchmarkFig16DPDKvsXDP(b *testing.B)    { benchExperiment(b, "fig16") }
func BenchmarkTable1Placement(b *testing.B)   { benchExperiment(b, "table1") }

// Interoperability (§6.2) and §8.1 extensions.
func BenchmarkInteropStacks(b *testing.B) { benchExperiment(b, "interop") }

// Appendix A.2.
func BenchmarkCostsA2(b *testing.B) { benchExperiment(b, "costs") }

// Design-choice ablations (DESIGN.md §5).
func BenchmarkAblateAlignment(b *testing.B) { benchExperiment(b, "ablate-alignment") }
func BenchmarkAblateEstimator(b *testing.B) { benchExperiment(b, "ablate-estimator") }
func BenchmarkAblateSSB(b *testing.B)       { benchExperiment(b, "ablate-ssb") }
func BenchmarkAblateWidening(b *testing.B)  { benchExperiment(b, "ablate-widening") }
func BenchmarkAblateXDPPlace(b *testing.B)  { benchExperiment(b, "ablate-xdp-placement") }

// benchServicePause is a fixed per-frame service latency the bench app
// blocks for, on top of its real decode work. Per-packet service time is
// what the sharded datapath overlaps across workers, so the speedup is
// measurable on any host — including single-CPU CI boxes, where pure
// compute cannot scale past GOMAXPROCS.
const benchServicePause = 20 * time.Microsecond

// decodeApp does representative userspace work per frame: full packet
// decode plus an Algorithm-1-style exponent scan over a 273-PRB U-plane
// payload, then the fixed service pause.
type decodeApp struct{}

func (decodeApp) Name() string { return "bench-decode" }
func (decodeApp) Handle(ctx *ranbooster.Context, pkt *ranbooster.Packet) error {
	var msg oran.UPlaneMsg
	if err := pkt.UPlane(&msg, 273); err != nil {
		return err
	}
	util := 0
	for i := range msg.Sections {
		s := &msg.Sections[i]
		size := s.Comp.PRBSize()
		for off := 0; off+size <= len(s.Payload); off += size {
			exp, err := bfp.PeekExponent(s.Payload[off:])
			if err != nil {
				break
			}
			if exp > 0 {
				util++
			}
		}
	}
	ctx.ChargeExponentScan(util)
	time.Sleep(benchServicePause)
	ctx.Forward(pkt)
	return nil
}

// benchFrames pre-builds full-carrier U-plane frames spread over 8 eAxC
// streams so a sharded engine has parallelism to exploit.
func benchFrames(b *testing.B) [][]byte {
	b.Helper()
	payload, err := bfp.CompressGrid(nil, iq.NewGrid(273), ranbooster.BFP9())
	if err != nil {
		b.Fatal(err)
	}
	du := ranbooster.MAC{0x02, 0, 0, 0, 0, 0x01}
	mb := ranbooster.MAC{0x02, 0, 0, 0, 0, 0x02}
	frames := make([][]byte, 8)
	for port := range frames {
		msg := &oran.UPlaneMsg{
			Timing:   oran.Timing{Direction: oran.Downlink, FrameID: 1},
			Sections: []oran.USection{{NumPRB: 273, Comp: ranbooster.BFP9(), Payload: payload}},
		}
		frames[port] = fh.NewBuilder(du, mb, -1).UPlane(ecpri.PcID{RUPort: uint8(port)}, msg)
	}
	return frames
}

// BenchmarkEngineParallel measures the sharded datapath's wall-clock
// throughput: b.N frames across 8 antenna streams pushed through parallel
// workers, at 1, 2 and 4 cores. frames/sec is reported; the 4-core run
// should sustain well over 2x the single-core rate.
func BenchmarkEngineParallel(b *testing.B) {
	for _, cores := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			tb := ranbooster.NewTestbed(1)
			eng, err := ranbooster.NewEngine(tb.Sched, ranbooster.EngineConfig{
				Name: "bench", Mode: ranbooster.ModeDPDK, App: decodeApp{},
				CarrierPRBs: 273, Cores: cores, RingSize: 4096,
			})
			if err != nil {
				b.Fatal(err)
			}
			eng.SetOutput(func([]byte) {})
			frames := benchFrames(b)
			if err := eng.Start(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := frames[i&7]
				for !eng.TryIngress(f) {
					runtime.Gosched()
				}
			}
			eng.Stop() // wait for the drain so every frame is processed
			b.StopTimer()
			if st := eng.Snapshot(); st.RxFrames != uint64(b.N) {
				b.Fatalf("RxFrames = %d, want %d", st.RxFrames, b.N)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
		})
	}
}

package ranbooster_test

import (
	"testing"
	"time"

	"ranbooster"
	"ranbooster/internal/fh"
)

// passthrough is a minimal custom middlebox built against the public API:
// it re-addresses traffic between exactly one DU and one RU.
type passthrough struct {
	self, du, ru ranbooster.MAC
	seen         int
}

func (p *passthrough) Name() string { return "passthrough" }

func (p *passthrough) Handle(ctx *ranbooster.Context, pkt *ranbooster.Packet) error {
	p.seen++
	switch pkt.Eth.Src {
	case p.du:
		return ctx.Redirect(pkt, p.ru, p.self, -1)
	case p.ru:
		return ctx.Redirect(pkt, p.du, p.self, -1)
	default:
		ctx.Drop(pkt)
		return nil
	}
}

// TestPublicAPICustomMiddlebox proves the §3.2.2 claim at the API level: a
// third-party middlebox written only against the public surface carries a
// live cell (attachment and traffic both flow through it).
func TestPublicAPICustomMiddlebox(t *testing.T) {
	if testing.Short() {
		t.Skip("system test")
	}
	tb := ranbooster.NewTestbed(99)
	cell := ranbooster.NewCell("api", 1, ranbooster.Carrier100(), ranbooster.StackSRSRAN, 4)

	mbMAC := tb.NewMAC()
	_, ruMAC := tb.AddRU("api-ru", ranbooster.RUPosition(0, 0), ranbooster.RUOpts{
		Carrier: cell.Carrier, Ports: 4, Peer: mbMAC,
	})
	_, duMAC := tb.AddDU("api-du", ranbooster.DUOpts{Cell: cell, Peer: mbMAC})

	app := &passthrough{self: mbMAC, du: duMAC, ru: ruMAC}
	eng, err := ranbooster.NewEngine(tb.Sched, ranbooster.EngineConfig{
		Name: app.Name(), Mode: ranbooster.ModeDPDK, App: app, CarrierPRBs: cell.Carrier.NumPRB,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.AddEngine(eng, mbMAC)

	ue := tb.AddUE(0, 10, 10.5)
	ue.OfferedDLbps = 300e6
	tb.Settle()
	if !ue.Attached() {
		t.Fatalf("UE did not attach through the custom middlebox: %v", ue)
	}
	tb.Measure(200 * time.Millisecond)
	if dl := ue.ThroughputDLbps(tb.Sched.Now()); dl < 250e6 {
		t.Fatalf("DL through custom middlebox = %.1f Mbps", ranbooster.Mbps(dl))
	}
	if app.seen == 0 {
		t.Fatal("middlebox saw no packets")
	}
	_ = fh.PlaneU // the protocol views stay importable alongside the facade
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2",
		"fig10a", "fig10b", "fig10c",
		"fig11", "fig12", "fig13", "fig14",
		"fig15a", "fig15b", "fig16",
		"costs", "interop",
		"ablate-alignment", "ablate-estimator", "ablate-ssb",
		"ablate-widening", "ablate-xdp-placement",
	}
	for _, id := range want {
		if ranbooster.Experiments[id] == nil {
			t.Errorf("experiment %q missing", id)
		}
	}
	if got := len(ranbooster.ExperimentIDs()); got != len(want) {
		t.Errorf("registry has %d entries, want %d", got, len(want))
	}
}

// TestCheapExperimentsRun executes the analytic experiments end to end.
func TestCheapExperimentsRun(t *testing.T) {
	for _, id := range []string{"costs", "interop", "ablate-widening"} {
		table := ranbooster.Experiments[id]()
		if table.ID != id || len(table.Rows) == 0 || table.String() == "" {
			t.Errorf("experiment %s produced an empty table", id)
		}
	}
}

package ranbooster_test

import (
	"fmt"
	"testing"
	"time"

	"ranbooster"
	"ranbooster/internal/bfp"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/fh"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
)

// passthrough is a minimal custom middlebox built against the public API:
// it re-addresses traffic between exactly one DU and one RU.
type passthrough struct {
	self, du, ru ranbooster.MAC
	seen         int
}

func (p *passthrough) Name() string { return "passthrough" }

func (p *passthrough) Handle(ctx *ranbooster.Context, pkt *ranbooster.Packet) error {
	p.seen++
	switch pkt.Eth.Src {
	case p.du:
		return ctx.Redirect(pkt, p.ru, p.self, -1)
	case p.ru:
		return ctx.Redirect(pkt, p.du, p.self, -1)
	default:
		ctx.Drop(pkt)
		return nil
	}
}

// TestPublicAPICustomMiddlebox proves the §3.2.2 claim at the API level: a
// third-party middlebox written only against the public surface carries a
// live cell (attachment and traffic both flow through it).
func TestPublicAPICustomMiddlebox(t *testing.T) {
	if testing.Short() {
		t.Skip("system test")
	}
	tb := ranbooster.NewTestbed(99)
	cell := ranbooster.NewCell("api", 1, ranbooster.Carrier100(), ranbooster.StackSRSRAN, 4)

	mbMAC := tb.NewMAC()
	_, ruMAC := tb.AddRU("api-ru", ranbooster.RUPosition(0, 0), ranbooster.RUOpts{
		Carrier: cell.Carrier, Ports: 4, Peer: mbMAC,
	})
	_, duMAC := tb.AddDU("api-du", ranbooster.DUOpts{Cell: cell, Peer: mbMAC})

	app := &passthrough{self: mbMAC, du: duMAC, ru: ruMAC}
	eng, err := ranbooster.NewEngine(tb.Sched, ranbooster.EngineConfig{
		Name: app.Name(), Mode: ranbooster.ModeDPDK, App: app, CarrierPRBs: cell.Carrier.NumPRB,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.AddEngine(eng, mbMAC)

	ue := tb.AddUE(0, 10, 10.5)
	ue.OfferedDLbps = 300e6
	tb.Settle()
	if !ue.Attached() {
		t.Fatalf("UE did not attach through the custom middlebox: %v", ue)
	}
	tb.Measure(200 * time.Millisecond)
	if dl := ue.ThroughputDLbps(tb.Sched.Now()); dl < 250e6 {
		t.Fatalf("DL through custom middlebox = %.1f Mbps", ranbooster.Mbps(dl))
	}
	if app.seen == 0 {
		t.Fatal("middlebox saw no packets")
	}
	_ = fh.PlaneU // the protocol views stay importable alongside the facade
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2",
		"fig10a", "fig10b", "fig10c",
		"fig11", "fig12", "fig13", "fig14",
		"fig15a", "fig15b", "fig16",
		"costs", "interop", "chaos", "latency", "metro",
		"ablate-alignment", "ablate-estimator", "ablate-ssb",
		"ablate-widening", "ablate-xdp-placement",
	}
	for _, id := range want {
		if ranbooster.Experiments[id] == nil {
			t.Errorf("experiment %q missing", id)
		}
	}
	if got := len(ranbooster.ExperimentIDs()); got != len(want) {
		t.Errorf("registry has %d entries, want %d", got, len(want))
	}
}

// TestCheapExperimentsRun executes the analytic experiments end to end.
func TestCheapExperimentsRun(t *testing.T) {
	for _, id := range []string{"costs", "interop", "ablate-widening"} {
		table := ranbooster.Experiments[id]()
		if table.ID != id || len(table.Rows) == 0 || table.String() == "" {
			t.Errorf("experiment %s produced an empty table", id)
		}
	}
}

// exampleApp is the minimal middlebox of the package documentation.
type exampleApp struct{}

func (exampleApp) Name() string { return "my-middlebox" }
func (exampleApp) Handle(ctx *ranbooster.Context, pkt *ranbooster.Packet) error {
	ctx.Forward(pkt) // A1; see also Replicate (A2), Cache (A3), ModifyUPlane (A4)
	return nil
}

// exampleFrame synthesizes one downlink U-plane fronthaul frame.
func exampleFrame() []byte {
	payload, _ := bfp.CompressGrid(nil, iq.NewGrid(4), ranbooster.BFP9())
	msg := &oran.UPlaneMsg{
		Timing:   oran.Timing{Direction: oran.Downlink, FrameID: 1},
		Sections: []oran.USection{{NumPRB: 4, Comp: ranbooster.BFP9(), Payload: payload}},
	}
	du := ranbooster.MAC{0x02, 0, 0, 0, 0, 0x01}
	mb := ranbooster.MAC{0x02, 0, 0, 0, 0, 0x02}
	return fh.NewBuilder(du, mb, -1).UPlane(ecpri.PcID{}, msg)
}

// burstForwarder is a burst-aware middlebox: implementing HandleBurst in
// addition to Handle opts it into the burst datapath, which hands each
// drained batch of packets over in one call. Handle remains the per-frame
// contract (and the fallback on engines whose App is not burst-aware).
type burstForwarder struct{ frames int }

func (b *burstForwarder) Name() string { return "burst-forwarder" }

func (b *burstForwarder) Handle(ctx *ranbooster.Context, pkt *ranbooster.Packet) error {
	b.frames++
	ctx.Forward(pkt)
	return nil
}

func (b *burstForwarder) HandleBurst(ctx *ranbooster.Context, pkts []*ranbooster.Packet) error {
	// Per-burst setup would go here (e.g. one table lookup for the batch).
	b.frames += len(pkts)
	for _, pkt := range pkts {
		ctx.Forward(pkt)
	}
	return nil
}

// ExampleBurstApp wires a burst-aware middlebox through the public API.
// EngineConfig.Burst bounds how many frames one HandleBurst call may
// carry; the zero BurstPolicy keeps the defaults. The engine detects
// HandleBurst at construction — no separate registration is needed.
func ExampleBurstApp() {
	tb := ranbooster.NewTestbed(1)
	app := &burstForwarder{}
	eng, err := ranbooster.NewEngine(tb.Sched, ranbooster.EngineConfig{
		Name: app.Name(), Mode: ranbooster.ModeDPDK, App: app,
		CarrierPRBs: 273,
		Burst:       ranbooster.BurstPolicy{Batch: 16},
	})
	if err != nil {
		panic(err)
	}
	sent := 0
	eng.SetOutput(func([]byte) { sent++ })

	for i := 0; i < 4; i++ {
		eng.Ingress(exampleFrame())
	}
	tb.Sched.Run()

	st := eng.Snapshot()
	fmt.Printf("rx=%d tx=%d handled=%d sent=%d\n", st.RxFrames, st.TxFrames, app.frames, sent)
	// Output: rx=4 tx=4 handled=4 sent=4
}

// Example mirrors the package documentation: a custom middlebox on a
// sharded engine, one frame in, merged counters out via Snapshot.
func Example() {
	tb := ranbooster.NewTestbed(1)
	eng, err := ranbooster.NewEngine(tb.Sched, ranbooster.EngineConfig{
		Name: "my-middlebox", Mode: ranbooster.ModeDPDK, App: exampleApp{},
		CarrierPRBs: 273, Cores: 2,
	})
	if err != nil {
		panic(err)
	}
	sent := 0
	eng.SetOutput(func([]byte) { sent++ })

	eng.Ingress(exampleFrame())
	tb.Sched.Run()

	st := eng.Snapshot()
	fmt.Printf("rx=%d tx=%d sent=%d\n", st.RxFrames, st.TxFrames, sent)
	// Output: rx=1 tx=1 sent=1
}

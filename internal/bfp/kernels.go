// Word-at-a-time pack/unpack kernels. Each kernel moves a whole PRB — 24
// mantissas of a fixed width — per call, reading and writing 64-bit lanes
// via encoding/binary instead of shifting one value (and appending one
// byte) at a time. The wire-common widths 9, 14 and 16 get fully unrolled
// specializations; every other width takes the generic indexed path.
//
// All kernels operate on exactly-sized mantissa buffers (3·w bytes — 24·w
// bits is always a whole number of bytes) and panic on shorter input; the
// exported codec entry points in bfp.go validate sizes first, so the guards
// here are unreachable through the public API and exist to keep the
// kernels safe and the wire-bounds invariant machine-checkable.

package bfp

import (
	"encoding/binary"

	"ranbooster/internal/iq"
)

// Mantissa bytes per PRB for the specialized widths: 3·w.
const (
	mantBytes9  = 27
	mantBytes14 = 42
	mantBytes16 = 48
)

// mant extracts the width-masked mantissa of one sample component after
// the BFP right shift, widened for lane packing.
func mant(v int16, exp uint8, mask uint32) uint64 {
	return uint64(uint32(int32(v)>>exp) & mask)
}

// sext16 sign-extends a w-bit mantissa sitting in the low bits of v and
// applies the BFP exponent. The int16 shift pair is table-free and exactly
// matches widening to int32, shifting, and truncating.
func sext16(v uint16, sh uint, exp uint8) int16 {
	return int16(v<<sh) >> sh << exp
}

// pack9 encodes 24 9-bit mantissas into 27 bytes, MSB first. Each group of
// eight values (four samples) packs into one 64-bit lane plus a tail byte:
// 8×9 = 72 bits = 9 bytes.
func pack9(dst []byte, prb *iq.PRB, exp uint8) {
	if len(dst) < mantBytes9 {
		panic("bfp: pack9 short buffer")
	}
	for g := 0; g < 3; g++ {
		s := g * 4
		m0 := mant(prb[s].I, exp, 0x1ff)
		m1 := mant(prb[s].Q, exp, 0x1ff)
		m2 := mant(prb[s+1].I, exp, 0x1ff)
		m3 := mant(prb[s+1].Q, exp, 0x1ff)
		m4 := mant(prb[s+2].I, exp, 0x1ff)
		m5 := mant(prb[s+2].Q, exp, 0x1ff)
		m6 := mant(prb[s+3].I, exp, 0x1ff)
		m7 := mant(prb[s+3].Q, exp, 0x1ff)
		hi := m0<<55 | m1<<46 | m2<<37 | m3<<28 | m4<<19 | m5<<10 | m6<<1 | m7>>8
		binary.BigEndian.PutUint64(dst[9*g:], hi)
		dst[9*g+8] = byte(m7)
	}
}

// unpack9 decodes 24 9-bit mantissas from 27 bytes.
func unpack9(src []byte, prb *iq.PRB, exp uint8) {
	if len(src) < mantBytes9 {
		panic("bfp: unpack9 short buffer")
	}
	for g := 0; g < 3; g++ {
		hi := binary.BigEndian.Uint64(src[9*g:])
		lo := uint64(src[9*g+8])
		s := g * 4
		prb[s].I = sext16(uint16(hi>>55), 7, exp)
		prb[s].Q = sext16(uint16(hi>>46)&0x1ff, 7, exp)
		prb[s+1].I = sext16(uint16(hi>>37)&0x1ff, 7, exp)
		prb[s+1].Q = sext16(uint16(hi>>28)&0x1ff, 7, exp)
		prb[s+2].I = sext16(uint16(hi>>19)&0x1ff, 7, exp)
		prb[s+2].Q = sext16(uint16(hi>>10)&0x1ff, 7, exp)
		prb[s+3].I = sext16(uint16(hi>>1)&0x1ff, 7, exp)
		prb[s+3].Q = sext16(uint16(hi&1)<<8|uint16(lo), 7, exp)
	}
}

// pack14 encodes 24 14-bit mantissas into 42 bytes. Each group of eight
// values spans 14 bytes: one full 64-bit lane (m0..m3 plus the top 8 bits
// of m4) and a 48-bit tail written as a 16-bit and a 32-bit store.
func pack14(dst []byte, prb *iq.PRB, exp uint8) {
	if len(dst) < mantBytes14 {
		panic("bfp: pack14 short buffer")
	}
	for g := 0; g < 3; g++ {
		s := g * 4
		m0 := mant(prb[s].I, exp, 0x3fff)
		m1 := mant(prb[s].Q, exp, 0x3fff)
		m2 := mant(prb[s+1].I, exp, 0x3fff)
		m3 := mant(prb[s+1].Q, exp, 0x3fff)
		m4 := mant(prb[s+2].I, exp, 0x3fff)
		m5 := mant(prb[s+2].Q, exp, 0x3fff)
		m6 := mant(prb[s+3].I, exp, 0x3fff)
		m7 := mant(prb[s+3].Q, exp, 0x3fff)
		binary.BigEndian.PutUint64(dst[14*g:], m0<<50|m1<<36|m2<<22|m3<<8|m4>>6)
		lo := (m4&0x3f)<<42 | m5<<28 | m6<<14 | m7
		binary.BigEndian.PutUint16(dst[14*g+8:], uint16(lo>>32))
		binary.BigEndian.PutUint32(dst[14*g+10:], uint32(lo))
	}
}

// unpack14 decodes 24 14-bit mantissas from 42 bytes using two overlapping
// 64-bit loads per group (bytes 0..7 and 6..13).
func unpack14(src []byte, prb *iq.PRB, exp uint8) {
	if len(src) < mantBytes14 {
		panic("bfp: unpack14 short buffer")
	}
	for g := 0; g < 3; g++ {
		u0 := binary.BigEndian.Uint64(src[14*g:])
		u1 := binary.BigEndian.Uint64(src[14*g+6:])
		s := g * 4
		prb[s].I = sext16(uint16(u0>>50), 2, exp)
		prb[s].Q = sext16(uint16(u0>>36)&0x3fff, 2, exp)
		prb[s+1].I = sext16(uint16(u0>>22)&0x3fff, 2, exp)
		prb[s+1].Q = sext16(uint16(u0>>8)&0x3fff, 2, exp)
		prb[s+2].I = sext16(uint16(u1>>42)&0x3fff, 2, exp)
		prb[s+2].Q = sext16(uint16(u1>>28)&0x3fff, 2, exp)
		prb[s+3].I = sext16(uint16(u1>>14)&0x3fff, 2, exp)
		prb[s+3].Q = sext16(uint16(u1)&0x3fff, 2, exp)
	}
}

// pack16 encodes 24 16-bit values as big-endian uint16 lanes (48 bytes).
// This is both the width-16 BFP mantissa layout (the exponent is always 0
// at full width) and the MethodNone payload layout.
func pack16(dst []byte, prb *iq.PRB) {
	if len(dst) < mantBytes16 {
		panic("bfp: pack16 short buffer")
	}
	for i := range prb {
		binary.BigEndian.PutUint16(dst[4*i:], uint16(prb[i].I))
		binary.BigEndian.PutUint16(dst[4*i+2:], uint16(prb[i].Q))
	}
}

// unpack16 decodes 24 big-endian 16-bit values. exp is 0 for MethodNone
// and for anything our encoder produced, but hostile width-16 BFP headers
// may carry a nonzero exponent, which applies exactly as at other widths.
func unpack16(src []byte, prb *iq.PRB, exp uint8) {
	if len(src) < mantBytes16 {
		panic("bfp: unpack16 short buffer")
	}
	for i := range prb {
		prb[i].I = int16(binary.BigEndian.Uint16(src[4*i:])) << exp
		prb[i].Q = int16(binary.BigEndian.Uint16(src[4*i+2:])) << exp
	}
}

// packGeneric encodes 24 w-bit mantissas into 3·w bytes for any width
// 2..16, accumulating through a 64-bit lane and storing bytes by index
// (no per-byte append).
func packGeneric(dst []byte, prb *iq.PRB, w int, exp uint8) {
	if len(dst) < 3*w {
		panic("bfp: packGeneric short buffer")
	}
	mask := uint32(1)<<uint(w) - 1
	var acc uint64
	bits := 0
	off := 0
	for i := range prb {
		acc = acc<<uint(w) | uint64(uint32(int32(prb[i].I)>>exp)&mask)
		bits += w
		for bits >= 8 {
			bits -= 8
			dst[off] = byte(acc >> uint(bits))
			off++
		}
		acc = acc<<uint(w) | uint64(uint32(int32(prb[i].Q)>>exp)&mask)
		bits += w
		for bits >= 8 {
			bits -= 8
			dst[off] = byte(acc >> uint(bits))
			off++
		}
	}
	// 24·w ≡ 0 (mod 8), so the accumulator always drains completely.
}

// unpackGeneric decodes 24 w-bit mantissas from 3·w bytes for any width
// 2..16. It loads bytes strictly on demand and consumes exactly 3·w of
// them — there is no zero-fill past the end of src.
func unpackGeneric(src []byte, prb *iq.PRB, w int, exp uint8) {
	if len(src) < 3*w {
		panic("bfp: unpackGeneric short buffer")
	}
	mask := uint32(1)<<uint(w) - 1
	sh := 16 - uint(w)
	var acc uint64
	bits := 0
	off := 0
	for i := range prb {
		for bits < w {
			acc = acc<<8 | uint64(src[off])
			off++
			bits += 8
		}
		bits -= w
		prb[i].I = sext16(uint16(uint32(acc>>uint(bits))&mask), sh, exp)
		for bits < w {
			acc = acc<<8 | uint64(src[off])
			off++
			bits += 8
		}
		bits -= w
		prb[i].Q = sext16(uint16(uint32(acc>>uint(bits))&mask), sh, exp)
	}
}

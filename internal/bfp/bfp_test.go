package bfp

import (
	"testing"
	"testing/quick"

	"ranbooster/internal/iq"
)

func bfp9() Params { return Params{IQWidth: 9, Method: MethodBlockFloatingPoint} }

func TestParamsByteRoundTrip(t *testing.T) {
	for w := uint8(0); w < 16; w++ {
		for m := Method(0); m < 16; m++ {
			p := Params{IQWidth: w, Method: m}
			if got := ParamsFromByte(p.Byte()); got != p {
				t.Fatalf("round trip %+v -> %+v", p, got)
			}
		}
	}
}

func TestEffectiveWidth(t *testing.T) {
	if (Params{IQWidth: 0}).EffectiveWidth() != 16 {
		t.Fatal("width 0 should mean 16")
	}
	if (Params{IQWidth: 9}).EffectiveWidth() != 9 {
		t.Fatal("width 9")
	}
}

func TestPRBSizeMatchesPaper(t *testing.T) {
	// 9-bit BFP: 1 exponent byte + 27 mantissa bytes = 28 per PRB.
	if got := bfp9().PRBSize(); got != 28 {
		t.Fatalf("PRBSize(bfp9) = %d, want 28", got)
	}
	// Uncompressed: 12 samples x 32 bits = 48 bytes.
	if got := (Params{Method: MethodNone}).PRBSize(); got != 48 {
		t.Fatalf("PRBSize(none) = %d, want 48", got)
	}
}

func TestCompressRoundTripLossless(t *testing.T) {
	// Samples already fitting in 9 bits survive untouched (exponent 0).
	var prb iq.PRB
	for i := range prb {
		prb[i] = iq.Sample{I: int16(i*20 - 120), Q: int16(255 - i*40)}
	}
	buf, err := CompressPRB(nil, &prb, bfp9())
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 28 {
		t.Fatalf("encoded %d bytes", len(buf))
	}
	var got iq.PRB
	n, exp, err := DecompressPRB(buf, &got, bfp9())
	if err != nil {
		t.Fatal(err)
	}
	if n != 28 || exp != 0 {
		t.Fatalf("n=%d exp=%d", n, exp)
	}
	if got != prb {
		t.Fatalf("lossless round trip failed:\n got %v\nwant %v", got, prb)
	}
}

func TestCompressRoundTripQuantized(t *testing.T) {
	var prb iq.PRB
	prb[0] = iq.Sample{I: 32000, Q: -32000}
	prb[5] = iq.Sample{I: 1000, Q: -1}
	buf, err := CompressPRB(nil, &prb, bfp9())
	if err != nil {
		t.Fatal(err)
	}
	var got iq.PRB
	_, exp, err := DecompressPRB(buf, &got, bfp9())
	if err != nil {
		t.Fatal(err)
	}
	if exp == 0 {
		t.Fatal("large samples must need a shift")
	}
	step := int32(1) << exp
	for i := range prb {
		d := int32(prb[i].I) - int32(got[i].I)
		if d < 0 {
			d = -d
		}
		if d >= step {
			t.Fatalf("sample %d I error %d >= step %d", i, d, step)
		}
	}
}

func TestRoundTripPropertyAllWidths(t *testing.T) {
	for _, w := range []uint8{2, 4, 8, 9, 12, 14, 0 /* =16 */} {
		p := Params{IQWidth: w, Method: MethodBlockFloatingPoint}
		width := p.EffectiveWidth()
		f := func(raw [24]int16) bool {
			var prb iq.PRB
			for i := range prb {
				prb[i] = iq.Sample{I: raw[2*i], Q: raw[2*i+1]}
			}
			buf, err := CompressPRB(nil, &prb, p)
			if err != nil {
				return false
			}
			if len(buf) != p.PRBSize() {
				return false
			}
			var got iq.PRB
			n, exp, err := DecompressPRB(buf, &got, p)
			if err != nil || n != len(buf) {
				return false
			}
			// Quantization error must be bounded by the step implied by exp,
			// and exact when exp==0 and the value fits.
			step := int32(1) << exp
			for i := range prb {
				for _, pair := range [2][2]int32{
					{int32(prb[i].I), int32(got[i].I)},
					{int32(prb[i].Q), int32(got[i].Q)},
				} {
					d := pair[0] - pair[1]
					if d < 0 {
						d = -d
					}
					if d >= step && !(width >= 16 && d == 0) {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
	}
}

func TestExponentForMatchesEncoder(t *testing.T) {
	f := func(raw [24]int16) bool {
		var prb iq.PRB
		for i := range prb {
			prb[i] = iq.Sample{I: raw[2*i], Q: raw[2*i+1]}
		}
		buf, err := CompressPRB(nil, &prb, bfp9())
		if err != nil {
			return false
		}
		peek, err := PeekExponent(buf)
		if err != nil {
			return false
		}
		return peek == ExponentFor(&prb, 9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroPRBHasZeroExponent(t *testing.T) {
	var prb iq.PRB
	if e := ExponentFor(&prb, 9); e != 0 {
		t.Fatalf("zero PRB exponent = %d", e)
	}
}

func TestUncompressedRoundTrip(t *testing.T) {
	var prb iq.PRB
	for i := range prb {
		prb[i] = iq.Sample{I: int16(i * 1000), Q: int16(-i * 999)}
	}
	p := Params{Method: MethodNone}
	buf, err := CompressPRB(nil, &prb, p)
	if err != nil {
		t.Fatal(err)
	}
	var got iq.PRB
	n, exp, err := DecompressPRB(buf, &got, p)
	if err != nil || n != 48 || exp != 0 {
		t.Fatalf("n=%d exp=%d err=%v", n, exp, err)
	}
	if got != prb {
		t.Fatal("uncompressed round trip failed")
	}
}

func TestGridRoundTrip(t *testing.T) {
	g := iq.NewGrid(10)
	for i := range g {
		g[i][0] = iq.Sample{I: int16(i * 100), Q: int16(-i * 100)}
	}
	buf, err := CompressGrid(nil, g, bfp9())
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 10*28 {
		t.Fatalf("grid size = %d", len(buf))
	}
	got := iq.NewGrid(10)
	n, err := DecompressGrid(buf, got, bfp9())
	if err != nil || n != len(buf) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	for i := range g {
		if got[i] != g[i] {
			t.Fatalf("PRB %d mismatch", i)
		}
	}
}

func TestErrors(t *testing.T) {
	var prb iq.PRB
	if _, err := CompressPRB(nil, &prb, Params{IQWidth: 1, Method: MethodBlockFloatingPoint}); err != ErrWidth {
		t.Fatalf("width 1: %v", err)
	}
	if _, err := CompressPRB(nil, &prb, Params{IQWidth: 9, Method: MethodMuLaw}); err != ErrMethod {
		t.Fatalf("mu-law: %v", err)
	}
	if _, _, err := DecompressPRB(make([]byte, 5), &prb, bfp9()); err != ErrTruncated {
		t.Fatalf("truncated: %v", err)
	}
	if _, _, err := DecompressPRB(make([]byte, 5), &prb, Params{Method: MethodNone}); err != ErrTruncated {
		t.Fatalf("truncated none: %v", err)
	}
	if _, err := PeekExponent(nil); err != ErrTruncated {
		t.Fatalf("peek empty: %v", err)
	}
	if _, err := DecompressGrid(make([]byte, 30), iq.NewGrid(2), bfp9()); err == nil {
		t.Fatal("grid truncation not detected")
	}
}

func TestMethodString(t *testing.T) {
	if MethodBlockFloatingPoint.String() != "Block floating point compression" {
		t.Fatal(MethodBlockFloatingPoint.String())
	}
	if Method(9).String() == "" {
		t.Fatal("unknown method string empty")
	}
}

func BenchmarkCompressPRB9(b *testing.B) {
	var prb iq.PRB
	for i := range prb {
		prb[i] = iq.Sample{I: int16(i * 2000), Q: int16(-i * 1999)}
	}
	p := bfp9()
	buf := make([]byte, 0, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = CompressPRB(buf, &prb, p)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressPRB9(b *testing.B) {
	var prb iq.PRB
	for i := range prb {
		prb[i] = iq.Sample{I: int16(i * 2000), Q: int16(-i * 1999)}
	}
	p := bfp9()
	buf, _ := CompressPRB(nil, &prb, p)
	b.ReportAllocs()
	var out iq.PRB
	for i := 0; i < b.N; i++ {
		if _, _, err := DecompressPRB(buf, &out, p); err != nil {
			b.Fatal(err)
		}
	}
}

// Package bfp implements the O-RAN Block Floating Point compression used on
// fronthaul U-plane payloads (O-RAN WG4 CUS-plane §A.1, "BFP").
//
// BFP compresses the 12 IQ samples of a PRB together: a common exponent e is
// chosen so that every I and Q value of the block, shifted right by e, fits
// in the configured mantissa width (iqWidth bits, two's complement). The
// exponent travels in a one-byte udCompParam header ahead of the bit-packed
// mantissas, exactly as the Wireshark capture in Fig. 2 of the paper shows.
//
// The exponent is also the signal RANBooster's PRB-monitoring application
// exploits (Algorithm 1): a PRB whose samples all fit without shifting
// (exponent at the floor) is carrying almost no energy and can be counted
// as unutilized without decompressing anything.
//
// The codec works a PRB at a time through the word-at-a-time kernels in
// kernels.go: the wire-common widths 9, 14 and 16 have unrolled 64-bit-lane
// specializations, other widths fall back to a generic indexed bit loop.
// Destinations are grown once per call, never appended to byte by byte, and
// truncated input is always an error — short payloads never decode as
// silent zero samples.
package bfp

import (
	"errors"
	"fmt"
	"math/bits"

	"ranbooster/internal/iq"
)

// Method identifies a U-plane compression method, as carried in udCompHdr.
type Method uint8

// Compression methods from the O-RAN CUS-plane specification. Only None and
// BlockFloatingPoint are implemented; the others are listed so headers from
// other stacks decode cleanly.
const (
	MethodNone               Method = 0
	MethodBlockFloatingPoint Method = 1
	MethodBlockScaling       Method = 2
	MethodMuLaw              Method = 3
)

// String returns the spec name of the method.
func (m Method) String() string {
	switch m {
	case MethodNone:
		return "no compression"
	case MethodBlockFloatingPoint:
		return "Block floating point compression"
	case MethodBlockScaling:
		return "Block scaling"
	case MethodMuLaw:
		return "Mu-law"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Params describes the compression configuration of a U-plane section, the
// contents of the udCompHdr byte: a 4-bit mantissa width and a 4-bit method.
type Params struct {
	IQWidth uint8 // mantissa bits per I or Q value; 1..16, where 0 encodes 16
	Method  Method
}

// Errors returned by the codec.
var (
	ErrWidth     = errors.New("bfp: iqWidth out of range")
	ErrTruncated = errors.New("bfp: truncated payload")
	ErrMethod    = errors.New("bfp: unsupported compression method")
)

// Byte packs the parameters into the wire udCompHdr byte.
func (p Params) Byte() byte {
	return byte(p.IQWidth&0x0f)<<4 | byte(p.Method)&0x0f
}

// ParamsFromByte decodes a udCompHdr byte.
func ParamsFromByte(b byte) Params {
	return Params{IQWidth: b >> 4, Method: Method(b & 0x0f)}
}

// EffectiveWidth maps the 4-bit wire encoding to the real mantissa width
// (a wire value of 0 means 16 bits).
func (p Params) EffectiveWidth() int {
	if p.IQWidth == 0 {
		return 16
	}
	return int(p.IQWidth)
}

// PRBSize returns the encoded size in bytes of one compressed PRB, including
// the udCompParam exponent byte. For the 9-bit width used throughout the
// paper's testbed this is 28 bytes (1 + ceil(12*2*9/8)), versus 48 bytes
// uncompressed.
func (p Params) PRBSize() int {
	w := p.EffectiveWidth()
	if p.Method == MethodNone {
		return iq.SubcarriersPerPRB * 4 // 16-bit I + 16-bit Q, no header
	}
	return 1 + (iq.SubcarriersPerPRB*2*w+7)/8
}

// codecWidth validates the parameters and returns the mantissa width the
// kernels will run at. It is the single gate every codec entry point passes
// through.
func codecWidth(p Params) (int, error) {
	switch p.Method {
	case MethodNone:
		return 16, nil
	case MethodBlockFloatingPoint:
		w := p.EffectiveWidth()
		if w < 2 || w > 16 {
			return 0, ErrWidth
		}
		return w, nil
	default:
		return 0, ErrMethod
	}
}

// grow extends dst by n bytes in a single step, reusing spare capacity when
// there is any. The new bytes are uninitialized from the caller's point of
// view: every caller overwrites them completely before returning.
func grow(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		return dst[:len(dst)+n]
	}
	//ranvet:allow alloc growth of the caller-owned destination; amortized away once the buffer reaches carrier size
	return append(dst, make([]byte, n)...)
}

// MaxExponent is the largest exponent the 4-bit udCompParam field can carry.
const MaxExponent = 15

// ExponentFor computes the BFP exponent the encoder would choose for the
// PRB under the given mantissa width, without encoding anything. This is
// what a middlebox needs to reason about utilization cheaply.
func ExponentFor(prb *iq.PRB, width int) uint8 {
	if width >= 16 {
		return 0
	}
	max := prb.MaxMagnitude()
	// The smallest e such that max>>e <= 2^(width-1)-1, i.e.
	// e = bitlen(max) - (width-1) clamped to [0, MaxExponent]. Using the
	// magnitude bound 2^(width-1)-1 is conservative by one LSB for exactly
	// -2^(width-1), which keeps the choice branch-free and matches the wire
	// output of the original shift-loop encoder bit for bit.
	e := bits.Len32(uint32(max)) - (width - 1)
	if e < 0 {
		e = 0
	}
	if e > MaxExponent {
		e = MaxExponent
	}
	return uint8(e)
}

// encodePRB encodes one PRB into buf, which must hold exactly p.PRBSize()
// bytes for an already-validated p (see codecWidth). Layout for BFP: 1 byte
// udCompParam (low nibble = exponent) followed by the bit-packed mantissas,
// I then Q per subcarrier, MSB first.
func encodePRB(buf []byte, prb *iq.PRB, p Params, w int) {
	if p.Method == MethodNone {
		pack16(buf, prb)
		return
	}
	if len(buf) < 1 {
		panic("bfp: encodePRB short buffer")
	}
	exp := ExponentFor(prb, w)
	buf[0] = exp & 0x0f
	switch w {
	case 9:
		pack9(buf[1:], prb, exp)
	case 14:
		pack14(buf[1:], prb, exp)
	case 16:
		pack16(buf[1:], prb)
	default:
		packGeneric(buf[1:], prb, w, exp)
	}
}

// decodePRB decodes one PRB from buf, which must hold at least p.PRBSize()
// bytes for an already-validated p, and returns the exponent applied.
func decodePRB(buf []byte, prb *iq.PRB, p Params, w int) uint8 {
	if p.Method == MethodNone {
		unpack16(buf, prb, 0)
		return 0
	}
	if len(buf) < 1 {
		panic("bfp: decodePRB short buffer")
	}
	exp := buf[0] & 0x0f
	switch w {
	case 9:
		unpack9(buf[1:], prb, exp)
	case 14:
		unpack14(buf[1:], prb, exp)
	case 16:
		unpack16(buf[1:], prb, exp)
	default:
		unpackGeneric(buf[1:], prb, w, exp)
	}
	return exp
}

// CompressPRB encodes one PRB into dst (appending) and returns the extended
// slice. The destination is grown once; with spare capacity present the
// call does not allocate.
//
//ranvet:hotpath
func CompressPRB(dst []byte, prb *iq.PRB, p Params) ([]byte, error) {
	w, err := codecWidth(p)
	if err != nil {
		return dst, err
	}
	base := len(dst)
	dst = grow(dst, p.PRBSize())
	encodePRB(dst[base:], prb, p, w)
	return dst, nil
}

// DecompressPRB decodes one compressed PRB from src into prb and returns
// the number of bytes consumed plus the exponent that was applied. A src
// shorter than the encoded PRB size is ErrTruncated — never a silent
// zero-filled decode.
//
//ranvet:hotpath
func DecompressPRB(src []byte, prb *iq.PRB, p Params) (n int, exp uint8, err error) {
	w, err := codecWidth(p)
	if err != nil {
		return 0, 0, err
	}
	size := p.PRBSize()
	if len(src) < size {
		return 0, 0, ErrTruncated
	}
	exp = decodePRB(src, prb, p, w)
	return size, exp, nil
}

// PeekExponent returns the BFP exponent of the compressed PRB at the start
// of src without decoding any mantissas — the O(1) inspection at the heart
// of the PRB-monitoring middlebox.
//
//ranvet:hotpath
func PeekExponent(src []byte) (uint8, error) {
	if len(src) < 1 {
		return 0, ErrTruncated
	}
	return src[0] & 0x0f, nil
}

// AppendExponents appends the udCompParam exponent of every complete
// compressed PRB in src to dst — the batched form of PeekExponent. It reads
// only the header byte of each PRB, skipping the mantissas entirely, and
// grows dst once. A trailing partial PRB is ignored, matching the per-PRB
// scan loops it replaces. Only MethodBlockFloatingPoint payloads carry
// exponents; other methods return ErrMethod.
//
//ranvet:hotpath
func AppendExponents(dst []uint8, src []byte, p Params) ([]uint8, error) {
	if p.Method != MethodBlockFloatingPoint {
		return dst, ErrMethod
	}
	w := p.EffectiveWidth()
	if w < 2 || w > 16 {
		return dst, ErrWidth
	}
	size := p.PRBSize()
	n := len(src) / size
	base := len(dst)
	dst = grow(dst, n)
	for i := 0; i < n; i++ {
		dst[base+i] = src[i*size] & 0x0f
	}
	return dst, nil
}

// CompressGrid encodes a run of PRBs, appending to dst. The destination is
// grown once for the whole grid, then each PRB is encoded in place at its
// stride.
//
//ranvet:hotpath
func CompressGrid(dst []byte, g iq.Grid, p Params) ([]byte, error) {
	w, err := codecWidth(p)
	if err != nil {
		return dst, err
	}
	size := p.PRBSize()
	base := len(dst)
	dst = grow(dst, size*len(g))
	for i := range g {
		encodePRB(dst[base+i*size:base+(i+1)*size], &g[i], p, w)
	}
	return dst, nil
}

// DecompressGrid decodes len(g) PRBs from src into g, returning bytes
// consumed. Decoding stops at the first truncated PRB with ErrTruncated and
// the count of bytes consumed so far.
//
//ranvet:hotpath
func DecompressGrid(src []byte, g iq.Grid, p Params) (int, error) {
	w, err := codecWidth(p)
	if err != nil {
		return 0, err
	}
	size := p.PRBSize()
	off := 0
	for i := range g {
		if len(src)-off < size {
			return off, ErrTruncated
		}
		decodePRB(src[off:], &g[i], p, w)
		off += size
	}
	return off, nil
}

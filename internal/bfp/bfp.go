// Package bfp implements the O-RAN Block Floating Point compression used on
// fronthaul U-plane payloads (O-RAN WG4 CUS-plane §A.1, "BFP").
//
// BFP compresses the 12 IQ samples of a PRB together: a common exponent e is
// chosen so that every I and Q value of the block, shifted right by e, fits
// in the configured mantissa width (iqWidth bits, two's complement). The
// exponent travels in a one-byte udCompParam header ahead of the bit-packed
// mantissas, exactly as the Wireshark capture in Fig. 2 of the paper shows.
//
// The exponent is also the signal RANBooster's PRB-monitoring application
// exploits (Algorithm 1): a PRB whose samples all fit without shifting
// (exponent at the floor) is carrying almost no energy and can be counted
// as unutilized without decompressing anything.
package bfp

import (
	"errors"
	"fmt"

	"ranbooster/internal/iq"
)

// Method identifies a U-plane compression method, as carried in udCompHdr.
type Method uint8

// Compression methods from the O-RAN CUS-plane specification. Only None and
// BlockFloatingPoint are implemented; the others are listed so headers from
// other stacks decode cleanly.
const (
	MethodNone               Method = 0
	MethodBlockFloatingPoint Method = 1
	MethodBlockScaling       Method = 2
	MethodMuLaw              Method = 3
)

// String returns the spec name of the method.
func (m Method) String() string {
	switch m {
	case MethodNone:
		return "no compression"
	case MethodBlockFloatingPoint:
		return "Block floating point compression"
	case MethodBlockScaling:
		return "Block scaling"
	case MethodMuLaw:
		return "Mu-law"
	default:
		return fmt.Sprintf("Method(%d)", uint8(m))
	}
}

// Params describes the compression configuration of a U-plane section, the
// contents of the udCompHdr byte: a 4-bit mantissa width and a 4-bit method.
type Params struct {
	IQWidth uint8 // mantissa bits per I or Q value; 1..16, where 0 encodes 16
	Method  Method
}

// Errors returned by the codec.
var (
	ErrWidth     = errors.New("bfp: iqWidth out of range")
	ErrTruncated = errors.New("bfp: truncated payload")
	ErrMethod    = errors.New("bfp: unsupported compression method")
)

// Byte packs the parameters into the wire udCompHdr byte.
func (p Params) Byte() byte {
	return byte(p.IQWidth&0x0f)<<4 | byte(p.Method)&0x0f
}

// ParamsFromByte decodes a udCompHdr byte.
func ParamsFromByte(b byte) Params {
	return Params{IQWidth: b >> 4, Method: Method(b & 0x0f)}
}

// EffectiveWidth maps the 4-bit wire encoding to the real mantissa width
// (a wire value of 0 means 16 bits).
func (p Params) EffectiveWidth() int {
	if p.IQWidth == 0 {
		return 16
	}
	return int(p.IQWidth)
}

// PRBSize returns the encoded size in bytes of one compressed PRB, including
// the udCompParam exponent byte. For the 9-bit width used throughout the
// paper's testbed this is 28 bytes (1 + ceil(12*2*9/8)), versus 48 bytes
// uncompressed.
func (p Params) PRBSize() int {
	w := p.EffectiveWidth()
	if p.Method == MethodNone {
		return iq.SubcarriersPerPRB * 4 // 16-bit I + 16-bit Q, no header
	}
	return 1 + (iq.SubcarriersPerPRB*2*w+7)/8
}

// MaxExponent is the largest exponent the 4-bit udCompParam field can carry.
const MaxExponent = 15

// ExponentFor computes the BFP exponent the encoder would choose for the
// PRB under the given mantissa width, without encoding anything. This is
// what a middlebox needs to reason about utilization cheaply.
func ExponentFor(prb *iq.PRB, width int) uint8 {
	if width >= 16 {
		return 0
	}
	max := prb.MaxMagnitude()
	// Find the smallest e such that every sample >> e fits in a signed
	// width-bit value, i.e. max>>e <= 2^(width-1)-1 and min>>e >= -2^(width-1).
	// Using the magnitude bound 2^(width-1)-1 is conservative by one LSB for
	// exactly -2^(width-1), which keeps the search branch-free.
	limit := int32(1)<<(width-1) - 1
	var e uint8
	for max > limit && e < MaxExponent {
		max >>= 1
		e++
	}
	return e
}

// CompressPRB encodes one PRB into dst (appending) and returns the extended
// slice. Layout: 1 byte udCompParam (low nibble = exponent) followed by the
// bit-packed mantissas, I then Q per subcarrier, MSB first.
//
//ranvet:hotpath
func CompressPRB(dst []byte, prb *iq.PRB, p Params) ([]byte, error) {
	switch p.Method {
	case MethodNone:
		for i := range prb {
			dst = append(dst, byte(uint16(prb[i].I)>>8), byte(prb[i].I), byte(uint16(prb[i].Q)>>8), byte(prb[i].Q))
		}
		return dst, nil
	case MethodBlockFloatingPoint:
	default:
		return dst, ErrMethod
	}
	w := p.EffectiveWidth()
	if w < 2 || w > 16 {
		return dst, ErrWidth
	}
	exp := ExponentFor(prb, w)
	dst = append(dst, exp&0x0f)
	var bw bitWriter
	bw.dst = dst
	for i := range prb {
		bw.write(int32(prb[i].I)>>exp, w)
		bw.write(int32(prb[i].Q)>>exp, w)
	}
	return bw.flush(), nil
}

// DecompressPRB decodes one compressed PRB from src into prb and returns
// the number of bytes consumed plus the exponent that was applied.
//
//ranvet:hotpath
func DecompressPRB(src []byte, prb *iq.PRB, p Params) (n int, exp uint8, err error) {
	switch p.Method {
	case MethodNone:
		need := iq.SubcarriersPerPRB * 4
		if len(src) < need {
			return 0, 0, ErrTruncated
		}
		for i := range prb {
			off := i * 4
			prb[i].I = int16(uint16(src[off])<<8 | uint16(src[off+1]))
			prb[i].Q = int16(uint16(src[off+2])<<8 | uint16(src[off+3]))
		}
		return need, 0, nil
	case MethodBlockFloatingPoint:
	default:
		return 0, 0, ErrMethod
	}
	w := p.EffectiveWidth()
	if w < 2 || w > 16 {
		return 0, 0, ErrWidth
	}
	size := p.PRBSize()
	if len(src) < size {
		return 0, 0, ErrTruncated
	}
	exp = src[0] & 0x0f
	br := bitReader{src: src[1:size]}
	for i := range prb {
		prb[i].I = int16(br.read(w) << exp)
		prb[i].Q = int16(br.read(w) << exp)
	}
	return size, exp, nil
}

// PeekExponent returns the BFP exponent of the compressed PRB at the start
// of src without decoding any mantissas — the O(1) inspection at the heart
// of the PRB-monitoring middlebox.
//
//ranvet:hotpath
func PeekExponent(src []byte) (uint8, error) {
	if len(src) < 1 {
		return 0, ErrTruncated
	}
	return src[0] & 0x0f, nil
}

// CompressGrid encodes a run of PRBs, appending to dst.
//
//ranvet:hotpath
func CompressGrid(dst []byte, g iq.Grid, p Params) ([]byte, error) {
	var err error
	for i := range g {
		dst, err = CompressPRB(dst, &g[i], p)
		if err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// DecompressGrid decodes len(g) PRBs from src into g, returning bytes consumed.
//
//ranvet:hotpath
func DecompressGrid(src []byte, g iq.Grid, p Params) (int, error) {
	off := 0
	for i := range g {
		// DecompressPRB bounds-checks its input and errors on truncation,
		// and n never exceeds the bytes it was given, so off <= len(src)
		// holds on every iteration and the re-slice cannot panic.
		//ranvet:allow bounds off advances only by bytes DecompressPRB consumed, so off <= len(src)
		n, _, err := DecompressPRB(src[off:], &g[i], p)
		if err != nil {
			return off, err
		}
		off += n
	}
	return off, nil
}

// bitWriter packs signed values MSB-first.
type bitWriter struct {
	dst  []byte
	acc  uint64
	bits uint
}

func (w *bitWriter) write(v int32, width int) {
	mask := uint32(1)<<uint(width) - 1
	w.acc = w.acc<<uint(width) | uint64(uint32(v)&mask)
	w.bits += uint(width)
	for w.bits >= 8 {
		w.bits -= 8
		w.dst = append(w.dst, byte(w.acc>>w.bits))
	}
}

func (w *bitWriter) flush() []byte {
	if w.bits > 0 {
		w.dst = append(w.dst, byte(w.acc<<(8-w.bits)))
		w.bits = 0
	}
	return w.dst
}

// bitReader unpacks signed values MSB-first.
type bitReader struct {
	src  []byte
	acc  uint64
	bits uint
	pos  int
}

func (r *bitReader) read(width int) int32 {
	for r.bits < uint(width) {
		var b byte
		if r.pos < len(r.src) {
			b = r.src[r.pos]
			r.pos++
		}
		r.acc = r.acc<<8 | uint64(b)
		r.bits += 8
	}
	r.bits -= uint(width)
	v := uint32(r.acc>>r.bits) & (uint32(1)<<uint(width) - 1)
	// Sign-extend from width bits.
	shift := 32 - uint(width)
	return int32(v<<shift) >> shift
}

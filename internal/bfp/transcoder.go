package bfp

import "ranbooster/internal/iq"

// Transcoder owns the reusable scratch a middlebox needs to run the A4
// decode → modify → re-encode cycle without allocating in steady state:
// grid slots for decoded IQ, a byte arena for re-encoded payloads, and an
// exponent buffer for batched header scans. The engine gives every shard
// one Transcoder, pre-sized to the carrier, and hands it to apps through
// core.Context; because frames of one eAxC stream always land on the same
// shard, no synchronization is needed.
//
// Ownership rules (DESIGN.md §6.5): call Reset once at the start of each
// transcode transaction (one Handle invocation); every slice handed out —
// grids, CompressGrid/AppendBytes payloads, Exponents results — remains
// valid only until the next Reset. Grid contents are unspecified until the
// caller overwrites (or Clear()s) them. If the arena must grow mid-frame
// the previously returned payload slices keep their old backing and stay
// readable for the rest of the transaction.
//
//ranvet:hotpath
type Transcoder struct {
	grids []iq.Grid
	arena []byte
	exps  []uint8
}

// NewTranscoder returns an empty Transcoder. Reserve pre-sizes it so that
// steady-state use never grows.
func NewTranscoder() *Transcoder { return &Transcoder{} }

// Reserve grows the scratch to cover a carrier of nPRB PRBs: two
// full-carrier grid slots (accumulator + per-packet decode scratch), an
// arena able to hold two full-width re-encoded carriers, and one exponent
// per PRB. Idempotent; never shrinks.
func (t *Transcoder) Reserve(nPRB int) {
	if nPRB <= 0 {
		return
	}
	t.Grid(0, nPRB)
	t.Grid(1, nPRB)
	if need := 2 * nPRB * (iq.SubcarriersPerPRB*4 + 1); cap(t.arena) < need {
		//ranvet:allow alloc arena sized once to the carrier at engine start, reused per frame
		buf := make([]byte, len(t.arena), need)
		copy(buf, t.arena)
		t.arena = buf
	}
	if cap(t.exps) < nPRB {
		//ranvet:allow alloc exponent scratch sized once to the carrier, reused per frame
		buf := make([]uint8, len(t.exps), nPRB)
		copy(buf, t.exps)
		t.exps = buf
	}
}

// Reset begins a new transcode transaction: the arena and exponent buffer
// rewind to empty and every slice handed out earlier becomes dead. Grid
// slots keep their capacity (and stale contents).
func (t *Transcoder) Reset() {
	//ranvet:allow bounds rewinding to [:0] can never exceed the backing array
	t.arena = t.arena[:0]
	//ranvet:allow bounds rewinding to [:0] can never exceed the backing array
	t.exps = t.exps[:0]
}

// Grid returns scratch grid slot `slot` resized to n PRBs. Contents are
// unspecified — callers must fully overwrite (e.g. via DecompressGrid) or
// Clear() before accumulating. Slots and capacities grow on first use and
// are retained across Reset.
func (t *Transcoder) Grid(slot, n int) iq.Grid {
	for len(t.grids) <= slot {
		t.grids = append(t.grids, nil)
	}
	g := t.grids[slot]
	if cap(g) < n {
		//ranvet:allow alloc grid scratch grows to carrier size once, then is reused
		g = make(iq.Grid, n)
	}
	g = g[:n]
	t.grids[slot] = g
	return g
}

// CompressGrid encodes g into the arena and returns the encoded payload as
// a capacity-clipped view, valid until the next Reset.
func (t *Transcoder) CompressGrid(g iq.Grid, p Params) ([]byte, error) {
	base := len(t.arena)
	out, err := CompressGrid(t.arena, g, p)
	if err != nil {
		return nil, err
	}
	t.arena = out
	return out[base:len(out):len(out)], nil
}

// AppendBytes copies b into the arena and returns the copy, valid until the
// next Reset. This is the zero-steady-state-alloc replacement for the
// `append([]byte(nil), b...)` payload-detach idiom.
func (t *Transcoder) AppendBytes(b []byte) []byte {
	base := len(t.arena)
	t.arena = grow(t.arena, len(b))
	copy(t.arena[base:], b)
	return t.arena[base:len(t.arena):len(t.arena)]
}

// Exponents scans src with AppendExponents into the reusable exponent
// buffer and returns it, valid until the next call or Reset.
func (t *Transcoder) Exponents(src []byte, p Params) ([]uint8, error) {
	//ranvet:allow bounds rewinding to [:0] can never exceed the backing array
	out, err := AppendExponents(t.exps[:0], src, p)
	if err != nil {
		return nil, err
	}
	t.exps = out
	return out, nil
}

package bfp

import (
	"testing"

	"ranbooster/internal/iq"
)

// FuzzBFPDecode feeds arbitrary payload bytes and an arbitrary udCompHdr
// to the decompressor. Whatever the bytes claim, the codec must either
// return an error or decode within bounds — and anything it decodes must
// survive a re-compress / re-decompress cycle, since middlebox action A4
// runs decoded PRBs straight back through the encoder.
func FuzzBFPDecode(f *testing.F) {
	ramp := func(width uint8) []byte {
		var prb iq.PRB
		for k := range prb {
			prb[k].I = int16(k*117 - 700)
			prb[k].Q = int16(500 - k*81)
		}
		p := Params{IQWidth: width, Method: MethodBlockFloatingPoint}
		out, err := CompressPRB(nil, &prb, p)
		if err != nil {
			panic(err)
		}
		return out
	}
	f.Add(ramp(9), Params{IQWidth: 9, Method: MethodBlockFloatingPoint}.Byte())
	f.Add(ramp(14), Params{IQWidth: 14, Method: MethodBlockFloatingPoint}.Byte())
	f.Add(make([]byte, 48), Params{Method: MethodNone}.Byte())
	f.Add([]byte{}, byte(0))
	f.Fuzz(func(t *testing.T, data []byte, hdr byte) {
		p := ParamsFromByte(hdr)
		if _, err := PeekExponent(data); err != nil && len(data) > 0 {
			t.Fatalf("PeekExponent failed on %d bytes: %v", len(data), err)
		}
		var prb iq.PRB
		n, exp, err := DecompressPRB(data, &prb, p)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) || n != p.PRBSize() {
			t.Fatalf("DecompressPRB consumed %d of %d bytes (PRBSize %d)", n, len(data), p.PRBSize())
		}
		if exp > MaxExponent {
			t.Fatalf("exponent %d out of range", exp)
		}
		// The decoded block must be encodable again: A4 modify-and-reinject
		// depends on compress never failing for params that just decoded.
		enc, err := CompressPRB(nil, &prb, p)
		if err != nil {
			t.Fatalf("re-compress of decoded PRB failed: %v", err)
		}
		if len(enc) != p.PRBSize() {
			t.Fatalf("re-compress produced %d bytes, PRBSize says %d", len(enc), p.PRBSize())
		}
		var prb2 iq.PRB
		if _, _, err := DecompressPRB(enc, &prb2, p); err != nil {
			t.Fatalf("decode of re-compressed PRB failed: %v", err)
		}
		// Grid-level decode over the same bytes must agree with the
		// single-PRB path.
		g := iq.NewGrid(1)
		if gn, err := DecompressGrid(data, g, p); err != nil || gn != n || g[0] != prb {
			t.Fatalf("DecompressGrid disagrees with DecompressPRB: n=%d vs %d, err=%v", gn, n, err)
		}
	})
}

package bfp

import (
	"bytes"
	"math/rand"
	"testing"

	"ranbooster/internal/iq"
)

// extremePRBs are the mantissa patterns most likely to expose a shift or
// sign-extension bug in an unrolled kernel.
func extremePRBs() []iq.PRB {
	var all, min, alt, edge iq.PRB
	for i := range all {
		all[i] = iq.Sample{I: 32767, Q: 32767}
		min[i] = iq.Sample{I: -32768, Q: -32768}
		if i%2 == 0 {
			alt[i] = iq.Sample{I: 32767, Q: -32768}
		} else {
			alt[i] = iq.Sample{I: -32768, Q: 32767}
		}
		edge[i] = iq.Sample{I: int16(1 << (i % 15)), Q: -int16(1 << (i % 15))}
	}
	return []iq.PRB{{}, all, min, alt, edge}
}

func randomPRB(rng *rand.Rand) iq.PRB {
	var prb iq.PRB
	for i := range prb {
		prb[i] = iq.Sample{I: int16(rng.Uint32()), Q: int16(rng.Uint32())}
	}
	return prb
}

// TestSpecializedMatchesGeneric drives the unrolled width-9/14/16 kernels
// and the generic bit loop over the same inputs — every exponent, extreme
// mantissas, and randomized PRBs — and requires bit-identical wire bytes
// on encode and identical samples on decode (including decode of arbitrary
// mantissa bytes the encoder would never emit).
func TestSpecializedMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	type kernel struct {
		w      int
		pack   func(dst []byte, prb *iq.PRB, exp uint8)
		unpack func(src []byte, prb *iq.PRB, exp uint8)
	}
	kernels := []kernel{
		{9, pack9, unpack9},
		{14, pack14, unpack14},
		{16, func(dst []byte, prb *iq.PRB, _ uint8) { pack16(dst, prb) }, unpack16},
	}
	for _, k := range kernels {
		prbs := extremePRBs()
		for i := 0; i < 64; i++ {
			prbs = append(prbs, randomPRB(rng))
		}
		for exp := uint8(0); exp <= MaxExponent; exp++ {
			// pack16 ignores the exponent (full width never shifts), so only
			// compare its encode at exp 0.
			encExp := exp
			if k.w == 16 {
				encExp = 0
			}
			for pi := range prbs {
				prb := prbs[pi]
				spec := make([]byte, 3*k.w)
				gen := make([]byte, 3*k.w)
				k.pack(spec, &prb, encExp)
				packGeneric(gen, &prb, k.w, encExp)
				if !bytes.Equal(spec, gen) {
					t.Fatalf("w=%d exp=%d prb#%d: encode mismatch\n spec %x\n gen  %x", k.w, encExp, pi, spec, gen)
				}
				var gotS, gotG iq.PRB
				k.unpack(spec, &gotS, exp)
				unpackGeneric(spec, &gotG, k.w, exp)
				if gotS != gotG {
					t.Fatalf("w=%d exp=%d prb#%d: decode mismatch\n spec %v\n gen  %v", k.w, exp, pi, gotS, gotG)
				}
			}
			// Arbitrary mantissa bytes (not encoder output) must also decode
			// identically — the decoder sees hostile wire input.
			for r := 0; r < 16; r++ {
				src := make([]byte, 3*k.w)
				rng.Read(src)
				var gotS, gotG iq.PRB
				k.unpack(src, &gotS, exp)
				unpackGeneric(src, &gotG, k.w, exp)
				if gotS != gotG {
					t.Fatalf("w=%d exp=%d random src: decode mismatch\n src %x\n spec %v\n gen  %v", k.w, exp, src, gotS, gotG)
				}
			}
		}
	}
}

// TestDecompressPRBShortBuffer is the regression test for the old
// bit-reader's silent zero-fill: every prefix strictly shorter than the
// encoded PRB must fail with ErrTruncated, at every codec width and for
// uncompressed payloads — never decode as zero samples.
func TestDecompressPRBShortBuffer(t *testing.T) {
	var prb iq.PRB
	for i := range prb {
		prb[i] = iq.Sample{I: int16(i*1500 - 9000), Q: int16(31000 - i*2500)}
	}
	params := []Params{
		{IQWidth: 9, Method: MethodBlockFloatingPoint},
		{IQWidth: 12, Method: MethodBlockFloatingPoint},
		{IQWidth: 14, Method: MethodBlockFloatingPoint},
		{IQWidth: 0 /* =16 */, Method: MethodBlockFloatingPoint},
		{Method: MethodNone},
	}
	for _, p := range params {
		full, err := CompressPRB(nil, &prb, p)
		if err != nil {
			t.Fatal(err)
		}
		size := p.PRBSize()
		if len(full) != size {
			t.Fatalf("%+v: encoded %d bytes, PRBSize %d", p, len(full), size)
		}
		for n := 0; n < size; n++ {
			var got iq.PRB
			consumed, _, err := DecompressPRB(full[:n], &got, p)
			if err != ErrTruncated {
				t.Fatalf("%+v prefix %d/%d: err = %v, want ErrTruncated", p, n, size, err)
			}
			if consumed != 0 {
				t.Fatalf("%+v prefix %d/%d: consumed %d bytes of a truncated PRB", p, n, size, consumed)
			}
		}
	}
}

func TestAppendExponents(t *testing.T) {
	p := bfp9()
	g := iq.NewGrid(5)
	for i := range g {
		for j := range g[i] {
			g[i][j] = iq.Sample{I: int16(1 << (2 * i)), Q: -int16(1 << (2 * i))}
		}
	}
	wire, err := CompressGrid(nil, g, p)
	if err != nil {
		t.Fatal(err)
	}
	exps, err := AppendExponents(nil, wire, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != len(g) {
		t.Fatalf("got %d exponents, want %d", len(exps), len(g))
	}
	size := p.PRBSize()
	for i := range exps {
		peek, err := PeekExponent(wire[i*size:])
		if err != nil {
			t.Fatal(err)
		}
		if exps[i] != peek {
			t.Fatalf("exponent %d: batched %d != peeked %d", i, exps[i], peek)
		}
	}
	// A trailing partial PRB is ignored, like the scan loops this replaces.
	if exps, err = AppendExponents(exps[:0], wire[:len(wire)-3], p); err != nil || len(exps) != len(g)-1 {
		t.Fatalf("partial tail: %d exponents, err %v", len(exps), err)
	}
	// Appending extends rather than overwrites.
	pre := []uint8{42}
	if exps, err = AppendExponents(pre, wire, p); err != nil || len(exps) != 1+len(g) || exps[0] != 42 {
		t.Fatalf("append onto prefix: %v, err %v", exps, err)
	}
	if _, err := AppendExponents(nil, wire, Params{Method: MethodNone}); err != ErrMethod {
		t.Fatalf("MethodNone: %v, want ErrMethod", err)
	}
	if _, err := AppendExponents(nil, wire, Params{IQWidth: 1, Method: MethodBlockFloatingPoint}); err != ErrWidth {
		t.Fatalf("width 1: %v, want ErrWidth", err)
	}
}

// TestTranscoderSteadyStateAllocs locks in the tentpole's zero-allocation
// contract: after Reserve, a full decode → combine → re-encode transaction
// plus the payload-copy and exponent-scan helpers allocates nothing.
func TestTranscoderSteadyStateAllocs(t *testing.T) {
	const nPRB = 64
	p := bfp9()
	g := iq.NewGrid(nPRB)
	for i := range g {
		g[i][0] = iq.Sample{I: int16(i * 400), Q: int16(-i * 400)}
	}
	wire, err := CompressGrid(nil, g, p)
	if err != nil {
		t.Fatal(err)
	}
	tx := NewTranscoder()
	tx.Reserve(273)
	var runErr error
	run := func() {
		tx.Reset()
		acc := tx.Grid(0, nPRB)
		if _, err := DecompressGrid(wire, acc, p); err != nil {
			runErr = err
			return
		}
		scratch := tx.Grid(1, nPRB)
		if _, err := DecompressGrid(wire, scratch, p); err != nil {
			runErr = err
			return
		}
		acc.AddSat(scratch)
		if _, err := tx.CompressGrid(acc, p); err != nil {
			runErr = err
			return
		}
		tx.AppendBytes(wire)
		if _, err := tx.Exponents(wire, p); err != nil {
			runErr = err
		}
	}
	run() // warm up slot table and arena
	if runErr != nil {
		t.Fatal(runErr)
	}
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Fatalf("transcode transaction allocates %v times in steady state, want 0", n)
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
}

// TestTranscoderPayloadsSurviveTransaction verifies the ownership rule that
// payload slices stay readable until the next Reset, even across an arena
// growth mid-transaction.
func TestTranscoderPayloadsSurviveTransaction(t *testing.T) {
	p := bfp9()
	g := iq.NewGrid(8)
	for i := range g {
		g[i][3] = iq.Sample{I: 1000, Q: -1000}
	}
	tx := NewTranscoder() // deliberately not Reserved: forces mid-frame growth
	tx.Reset()
	first, err := tx.CompressGrid(g, p)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := append([]byte(nil), first...)
	// Force the arena to grow well past its current capacity.
	big := iq.NewGrid(256)
	if _, err := tx.CompressGrid(big, p); err != nil {
		t.Fatal(err)
	}
	tx.AppendBytes(make([]byte, 4096))
	if !bytes.Equal(first, snapshot) {
		t.Fatal("payload from before arena growth was corrupted")
	}
}

func benchPRB() *iq.PRB {
	var prb iq.PRB
	for i := range prb {
		prb[i] = iq.Sample{I: int16(i * 2000), Q: int16(-i * 1999)}
	}
	return &prb
}

func benchmarkCompressPRB(b *testing.B, p Params) {
	prb := benchPRB()
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	b.SetBytes(int64(p.PRBSize()))
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = CompressPRB(buf, prb, p)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkDecompressPRB(b *testing.B, p Params) {
	buf, err := CompressPRB(nil, benchPRB(), p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(p.PRBSize()))
	var out iq.PRB
	for i := 0; i < b.N; i++ {
		if _, _, err := DecompressPRB(buf, &out, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressPRB14(b *testing.B) {
	benchmarkCompressPRB(b, Params{IQWidth: 14, Method: MethodBlockFloatingPoint})
}

func BenchmarkDecompressPRB14(b *testing.B) {
	benchmarkDecompressPRB(b, Params{IQWidth: 14, Method: MethodBlockFloatingPoint})
}

func BenchmarkCompressPRB16(b *testing.B) {
	benchmarkCompressPRB(b, Params{IQWidth: 0, Method: MethodBlockFloatingPoint})
}

func BenchmarkDecompressPRB16(b *testing.B) {
	benchmarkDecompressPRB(b, Params{IQWidth: 0, Method: MethodBlockFloatingPoint})
}

func BenchmarkCompressPRB12Generic(b *testing.B) {
	benchmarkCompressPRB(b, Params{IQWidth: 12, Method: MethodBlockFloatingPoint})
}

func BenchmarkDecompressPRB12Generic(b *testing.B) {
	benchmarkDecompressPRB(b, Params{IQWidth: 12, Method: MethodBlockFloatingPoint})
}

func BenchmarkCompressGrid273(b *testing.B) {
	p := bfp9()
	g := iq.NewGrid(273)
	for i := range g {
		g[i] = *benchPRB()
	}
	buf := make([]byte, 0, 273*p.PRBSize())
	b.ReportAllocs()
	b.SetBytes(int64(273 * p.PRBSize()))
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		var err error
		buf, err = CompressGrid(buf, g, p)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressGrid273(b *testing.B) {
	p := bfp9()
	g := iq.NewGrid(273)
	for i := range g {
		g[i] = *benchPRB()
	}
	wire, err := CompressGrid(nil, g, p)
	if err != nil {
		b.Fatal(err)
	}
	out := iq.NewGrid(273)
	b.ReportAllocs()
	b.SetBytes(int64(len(wire)))
	for i := 0; i < b.N; i++ {
		if _, err := DecompressGrid(wire, out, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendExponents273(b *testing.B) {
	p := bfp9()
	g := iq.NewGrid(273)
	for i := range g {
		g[i] = *benchPRB()
	}
	wire, err := CompressGrid(nil, g, p)
	if err != nil {
		b.Fatal(err)
	}
	exps := make([]uint8, 0, 273)
	b.ReportAllocs()
	b.SetBytes(int64(len(wire)))
	for i := 0; i < b.N; i++ {
		exps, err = AppendExponents(exps[:0], wire, p)
		if err != nil {
			b.Fatal(err)
		}
	}
}

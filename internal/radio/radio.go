// Package radio models over-the-air propagation inside the paper's
// enterprise testbed: five 50.9 m × 20.9 m office floors with ceiling-
// mounted RUs (Fig. 9a). It provides an indoor-hotspot path-loss model
// (3GPP TR 38.901 InH-Office shape plus internal-wall clutter and heavy
// inter-floor penetration), noise and interference bookkeeping, and
// per-antenna-element SINR computation that feeds phy's link adaptation.
//
// Everything is deterministic: shadow fading, when enabled, is a pure
// function of the endpoint coordinates and the model seed, so experiments
// reproduce bit-for-bit.
package radio

import (
	"math"
)

// Testbed geometry (meters), from §6.1.
const (
	FloorLength   = 50.9
	FloorWidth    = 20.9
	FloorHeight   = 3.5 // slab-to-slab
	CeilingHeight = 3.0 // RU mounting height above the floor's ground
	UEHeight      = 1.5
)

// Point is a 3-D position in meters. Z encodes the absolute height, so
// floor separation falls out of the geometry.
type Point struct{ X, Y, Z float64 }

// RUAt places a ceiling-mounted RU at (x, y) on the given floor (0-based).
func RUAt(floor int, x, y float64) Point {
	return Point{X: x, Y: y, Z: float64(floor)*FloorHeight + CeilingHeight}
}

// UEAt places a UE at hand height at (x, y) on the given floor.
func UEAt(floor int, x, y float64) Point {
	return Point{X: x, Y: y, Z: float64(floor)*FloorHeight + UEHeight}
}

// FloorOf recovers the floor index of a point.
func FloorOf(p Point) int { return int(math.Floor(p.Z / FloorHeight)) }

// Dist3D returns the 3-D distance between two points.
func Dist3D(a, b Point) float64 {
	dx, dy, dz := a.X-b.X, a.Y-b.Y, a.Z-b.Z
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// Dist2D returns the horizontal distance between two points.
func Dist2D(a, b Point) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Model holds the propagation parameters.
type Model struct {
	FreqGHz       float64 // carrier frequency (band n78: 3.3–3.8 GHz)
	NoiseFigureDB float64 // receiver noise figure
	LOSRangeM     float64 // horizontal range within which links are line-of-sight
	WallSpacingM  float64 // mean spacing of internal walls beyond LOS range
	WallLossDB    float64 // penetration loss per internal wall
	FloorLossDB   float64 // penetration loss per concrete floor slab
	ShadowSigmaDB float64 // log-normal shadowing σ (0 disables)
	Seed          uint64  // shadowing stream seed
}

// DefaultModel returns the calibrated testbed propagation model.
func DefaultModel() Model {
	return Model{
		FreqGHz:       3.46,
		NoiseFigureDB: 7,
		LOSRangeM:     10,
		// Wall clutter calibrated so one RU covers ~35 m of the floor but
		// not all of it — §6.3.1 measured that four RUs are needed to
		// avoid dead spots.
		WallSpacingM: 8,
		WallLossDB:   12,
		// FloorLossDB combines slab penetration with the ceiling antennas'
		// missing upward gain; calibrated so no UE attaches across floors
		// (§6.2.1) and inter-floor interference is negligible (§6.3.2).
		FloorLossDB:   85,
		ShadowSigmaDB: 0,
	}
}

// PathLossDB returns the path loss between two points.
func (m Model) PathLossDB(a, b Point) float64 {
	d3 := math.Max(Dist3D(a, b), 1.0)
	d2 := Dist2D(a, b)
	logF := math.Log10(m.FreqGHz)
	var pl float64
	if d2 <= m.LOSRangeM && FloorOf(a) == FloorOf(b) {
		// InH-Office LOS.
		pl = 32.4 + 17.3*math.Log10(d3) + 20*logF
	} else {
		// InH-Office NLOS plus internal-wall clutter.
		pl = 17.3 + 38.3*math.Log10(d3) + 24.9*logF
		if walls := math.Floor(math.Max(0, d2-m.LOSRangeM) / m.WallSpacingM); walls > 0 {
			pl += walls * m.WallLossDB
		}
	}
	if df := FloorOf(a) - FloorOf(b); df != 0 {
		pl += math.Abs(float64(df)) * m.FloorLossDB
	}
	if m.ShadowSigmaDB > 0 {
		pl += m.ShadowSigmaDB * m.shadow(a, b)
	}
	return pl
}

// shadow returns a deterministic standard-normal-ish variate for the link,
// symmetric in its endpoints.
func (m Model) shadow(a, b Point) float64 {
	h := m.Seed
	mix := func(v float64) {
		bits := math.Float64bits(v)
		h ^= bits
		h *= 0x100000001b3
		h ^= h >> 29
	}
	// Symmetry: fold endpoint coordinates through a commutative combine.
	mix(a.X + b.X)
	mix(a.Y + b.Y)
	mix(a.Z + b.Z)
	mix(a.X*b.X + a.Y*b.Y + a.Z*b.Z)
	// Map two 32-bit halves to a normal via the sum of uniforms.
	u1 := float64(uint32(h)) / (1 << 32)
	u2 := float64(uint32(h>>32)) / (1 << 32)
	return (u1 + u2 - 1) * math.Sqrt(6) // variance ≈ 1
}

// RxPowerDBm returns received power for a transmit power txDBm.
func (m Model) RxPowerDBm(txDBm float64, tx, rx Point) float64 {
	return txDBm - m.PathLossDB(tx, rx)
}

// NoiseDBm returns thermal noise power over a bandwidth, including the
// model's noise figure.
func (m Model) NoiseDBm(bwHz float64) float64 {
	return -174 + 10*math.Log10(bwHz) + m.NoiseFigureDB
}

// LinearMW converts dBm to milliwatts.
func LinearMW(dbm float64) float64 { return math.Pow(10, dbm/10) }

// ToDBm converts milliwatts to dBm.
func ToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// Element is one transmitting antenna element: a position, per-element
// transmit power, and the transmitter's EVM quality ceiling — commodity
// 4T4R RUs sustain ~22 dB effective SINR, cheap single-antenna radios
// less (the Fig. 13 scenario).
type Element struct {
	Pos      Point
	TxDBm    float64
	EVMCapDB float64
}

// DefaultRUElement returns a Foxconn-class element at a position.
func DefaultRUElement(pos Point) Element {
	return Element{Pos: pos, TxDBm: 24, EVMCapDB: 22}
}

// CheapRUElement returns a budget single-antenna element (lower transmit
// quality), used in the Fig. 13 upgrade scenario.
func CheapRUElement(pos Point) Element {
	return Element{Pos: pos, TxDBm: 24, EVMCapDB: 17.5}
}

// ElementSINRLinear computes the effective per-element SINR (linear) at rx.
// noiseMW and interfMW are the noise and aggregate interference powers in
// milliwatts at the receiver. The transmitter EVM floor combines inversely:
// 1/SINR_eff = 1/SINR_air + 1/cap.
func (m Model) ElementSINRLinear(e Element, rx Point, noiseMW, interfMW float64) float64 {
	s := LinearMW(m.RxPowerDBm(e.TxDBm, e.Pos, rx))
	air := s / (noiseMW + interfMW)
	capLin := LinearMW(e.EVMCapDB)
	return 1 / (1/air + 1/capLin)
}

// ElementSINRs computes the SINR of every element of a transmission set at
// rx, for handing to phy.AdaptRank / phy.LayerSINRdB.
func (m Model) ElementSINRs(elements []Element, rx Point, noiseMW, interfMW float64) []float64 {
	out := make([]float64, len(elements))
	for i, e := range elements {
		out[i] = m.ElementSINRLinear(e, rx, noiseMW, interfMW)
	}
	return out
}

// InterferenceMW aggregates the received power of interfering elements,
// weighted by the interfering cell's transmission activity in [0, 1].
// Activity at or above DominantActivity is treated as full-power
// interference: outer-loop link adaptation backs off to the MCS that
// survives collisions once a non-trivial fraction of PRBs is hit.
func (m Model) InterferenceMW(interferers []Element, rx Point, activity float64) float64 {
	if activity <= 0 {
		return 0
	}
	w := activity / DominantActivity
	if w > 1 {
		w = 1
	}
	var sum float64
	for _, e := range interferers {
		sum += LinearMW(m.RxPowerDBm(e.TxDBm, e.Pos, rx))
	}
	return sum * w
}

// DominantActivity is the interferer activity fraction beyond which
// interference is effectively always-on from the victim's point of view.
const DominantActivity = 0.10

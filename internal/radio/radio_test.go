package radio

import (
	"math"
	"testing"

	"ranbooster/internal/phy"
)

func TestGeometryHelpers(t *testing.T) {
	ru := RUAt(0, 10, 10)
	if ru.Z != CeilingHeight {
		t.Fatalf("RU z = %v", ru.Z)
	}
	ue := UEAt(2, 10, 10)
	if ue.Z != 2*FloorHeight+UEHeight {
		t.Fatalf("UE z = %v", ue.Z)
	}
	if FloorOf(ru) != 0 || FloorOf(ue) != 2 {
		t.Fatal("FloorOf")
	}
	if d := Dist2D(ru, ue); d != 0 {
		t.Fatalf("Dist2D = %v", d)
	}
	if d := Dist3D(Point{0, 0, 0}, Point{3, 4, 0}); d != 5 {
		t.Fatalf("Dist3D = %v", d)
	}
}

func TestPathLossMonotoneInDistance(t *testing.T) {
	m := DefaultModel()
	ru := RUAt(0, 5, 10)
	prev := 0.0
	for d := 1.0; d < 45; d += 1.0 {
		pl := m.PathLossDB(ru, UEAt(0, 5+d, 10))
		if pl < prev {
			t.Fatalf("path loss decreased at %vm: %v < %v", d, pl, prev)
		}
		prev = pl
	}
}

func TestPathLossFloorPenetration(t *testing.T) {
	m := DefaultModel()
	ru := RUAt(0, 10, 10)
	same := m.PathLossDB(ru, UEAt(0, 12, 10))
	up1 := m.PathLossDB(ru, UEAt(1, 12, 10))
	up2 := m.PathLossDB(ru, UEAt(2, 12, 10))
	if up1 < same+m.FloorLossDB-5 {
		t.Fatalf("one floor should add ~%v dB: %v vs %v", m.FloorLossDB, up1, same)
	}
	if up2 <= up1 {
		t.Fatal("two floors should lose more than one")
	}
}

func TestPathLossSymmetric(t *testing.T) {
	m := DefaultModel()
	m.ShadowSigmaDB = 4
	a, b := RUAt(0, 3, 7), UEAt(0, 40, 12)
	if pa, pb := m.PathLossDB(a, b), m.PathLossDB(b, a); math.Abs(pa-pb) > 1e-9 {
		t.Fatalf("asymmetric: %v vs %v", pa, pb)
	}
}

func TestShadowDeterministic(t *testing.T) {
	m := DefaultModel()
	m.ShadowSigmaDB = 4
	a, b := RUAt(0, 3, 7), UEAt(0, 40, 12)
	if m.PathLossDB(a, b) != m.PathLossDB(a, b) {
		t.Fatal("shadowing not deterministic")
	}
	m2 := m
	m2.Seed = 99
	if m.PathLossDB(a, b) == m2.PathLossDB(a, b) {
		t.Fatal("seed has no effect")
	}
}

func TestAttachFeasibility(t *testing.T) {
	// §6.2.1: UEs near a ground-floor RU attach; UEs on upper floors see
	// too weak a signal. SSB detection needs roughly SNR >= 0 dB over the
	// SSB bandwidth (20 PRBs).
	m := DefaultModel()
	ru := DefaultRUElement(RUAt(0, 10, 10.45))
	ssbBW := float64(phy.SSBPRBs * phy.PRBBandwidthHz)
	noise := LinearMW(m.NoiseDBm(ssbBW))

	near := UEAt(0, 15, 10.45)
	if snr := ToDBm(LinearMW(m.RxPowerDBm(ru.TxDBm, ru.Pos, near))) - ToDBm(noise); snr < 10 {
		t.Fatalf("near UE SSB SNR = %.1f dB, expected strong", snr)
	}
	mid := UEAt(0, 35, 14) // 25 m out: attachable through one wall
	if snr := ToDBm(LinearMW(m.RxPowerDBm(ru.TxDBm, ru.Pos, mid))) - ToDBm(noise); snr < 0 {
		t.Fatalf("same-floor mid UE SSB SNR = %.1f dB, expected attachable", snr)
	}
	// §6.3.1: a single RU leaves dead spots at the far end of the floor.
	dead := UEAt(0, 48, 18)
	if snr := ToDBm(LinearMW(m.RxPowerDBm(ru.TxDBm, ru.Pos, dead))) - ToDBm(noise); snr >= 0 {
		t.Fatalf("far-corner UE SSB SNR = %.1f dB, expected a dead spot", snr)
	}
	upper := UEAt(1, 15, 10.45)
	if snr := ToDBm(LinearMW(m.RxPowerDBm(ru.TxDBm, ru.Pos, upper))) - ToDBm(noise); snr >= 0 {
		t.Fatalf("upper-floor UE SSB SNR = %.1f dB, expected unattachable", snr)
	}
}

func TestElementSINREVMCap(t *testing.T) {
	m := DefaultModel()
	e := DefaultRUElement(RUAt(0, 10, 10))
	noise := LinearMW(m.NoiseDBm(100e6))
	// Right under the RU: air SNR is huge, EVM cap must bind.
	s := m.ElementSINRLinear(e, UEAt(0, 11, 10), noise, 0)
	if db := 10 * math.Log10(s); db < e.EVMCapDB-1.5 || db > e.EVMCapDB {
		t.Fatalf("close-range SINR = %.1f dB, want ≈ cap %v", db, e.EVMCapDB)
	}
	// Cheap element caps lower.
	c := CheapRUElement(RUAt(0, 10, 10))
	sc := m.ElementSINRLinear(c, UEAt(0, 11, 10), noise, 0)
	if 10*math.Log10(sc) >= db(s)-3 {
		t.Fatalf("cheap element should cap well below: %.1f vs %.1f", 10*math.Log10(sc), db(s))
	}
}

func db(lin float64) float64 { return 10 * math.Log10(lin) }

func TestInterferenceActivityScaling(t *testing.T) {
	m := DefaultModel()
	interferer := []Element{DefaultRUElement(RUAt(0, 30, 10))}
	rx := UEAt(0, 25, 10)
	full := m.InterferenceMW(interferer, rx, 1.0)
	dominant := m.InterferenceMW(interferer, rx, DominantActivity)
	if math.Abs(full-dominant) > 1e-12 {
		t.Fatalf("activity at threshold should already be full power: %v vs %v", full, dominant)
	}
	half := m.InterferenceMW(interferer, rx, DominantActivity/2)
	if math.Abs(half-full/2) > full*1e-9 {
		t.Fatalf("sub-threshold activity should scale linearly: %v vs %v", half, full/2)
	}
	if m.InterferenceMW(interferer, rx, 0) != 0 {
		t.Fatal("zero activity must mean zero interference")
	}
}

func TestCellEdgeInterferenceCollapsesRank(t *testing.T) {
	// The Fig. 11 O2 story: a UE midway between two co-channel RUs with an
	// active neighbour collapses to low rank / low SINR, while a UE close
	// to its serving RU keeps rank 4.
	m := DefaultModel()
	serving := make([]Element, 4)
	interfering := make([]Element, 4)
	for i := range serving {
		serving[i] = DefaultRUElement(RUAt(0, 19.1, 10.45))
		interfering[i] = DefaultRUElement(RUAt(0, 6.4, 10.45))
	}
	noise := LinearMW(m.NoiseDBm(100e6))

	mid := UEAt(0, 12.75, 10.45)
	imw := m.InterferenceMW(interfering, mid, 0.15)
	elMid := m.ElementSINRs(serving, mid, noise, imw)
	rankMid, sinrMid := phy.AdaptRank(elMid, 4, 22)

	near := UEAt(0, 20.5, 10.45)
	imwNear := m.InterferenceMW(interfering, near, 0.15)
	elNear := m.ElementSINRs(serving, near, noise, imwNear)
	rankNear, _ := phy.AdaptRank(elNear, 4, 22)

	if rankNear < 3 {
		t.Fatalf("near UE rank = %d, want >= 3", rankNear)
	}
	if rankMid >= rankNear {
		t.Fatalf("midpoint rank = %d, want below %d", rankMid, rankNear)
	}
	if sinrMid > 10 {
		t.Fatalf("midpoint layer SINR = %.1f dB, want interference-limited", sinrMid)
	}
}

func TestDMIMOPoolingBeatsSISO(t *testing.T) {
	// Fig. 13: four distributed cheap single-antenna RUs as a rank-4 dMIMO
	// cell deliver 2–3x the throughput of the same RUs used as a SISO DAS.
	m := DefaultModel()
	positions := []Point{
		RUAt(0, 6.4, 10.45), RUAt(0, 19.1, 10.45), RUAt(0, 31.8, 10.45), RUAt(0, 44.5, 10.45),
	}
	elements := make([]Element, len(positions))
	for i, p := range positions {
		elements[i] = CheapRUElement(p)
	}
	noise := LinearMW(m.NoiseDBm(100e6))
	tdd := phy.MustTDD("DDDSU")
	dl := tdd.DLSymbolFraction()

	var sisoSum, dmimoSum float64
	n := 0
	for x := 3.0; x < FloorLength; x += 4 {
		ue := UEAt(0, x, 10.45)
		sinrs := m.ElementSINRs(elements, ue, noise, 0)
		// SISO DAS: the UE is served by the strongest RU alone.
		best := sinrs[0]
		for _, s := range sinrs {
			if s > best {
				best = s
			}
		}
		sisoSum += phy.ThroughputBps(273, dl, phy.LayerSINRdB([]float64{best}, 1, 17.5), 1, phy.StackSRSRAN)
		rank, layerSINR := phy.AdaptRank(sinrs, 4, 17.5)
		dmimoSum += phy.ThroughputBps(273, dl, layerSINR, rank, phy.StackSRSRAN)
		n++
	}
	siso, dmimo := sisoSum/float64(n), dmimoSum/float64(n)
	if siso < 200e6 || siso > 320e6 {
		t.Fatalf("DAS SISO floor average = %.0f Mbps, want ~250", siso/1e6)
	}
	ratio := dmimo / siso
	if ratio < 1.8 || ratio > 3.2 {
		t.Fatalf("dMIMO/SISO ratio = %.2f, want 2-3x (dmimo %.0f Mbps)", ratio, dmimo/1e6)
	}
}

func TestNoiseDBm(t *testing.T) {
	m := DefaultModel()
	got := m.NoiseDBm(100e6)
	want := -174 + 80 + 7.0
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("NoiseDBm = %v, want %v", got, want)
	}
}

func TestLinearConversions(t *testing.T) {
	if math.Abs(LinearMW(0)-1) > 1e-12 {
		t.Fatal("0 dBm = 1 mW")
	}
	if math.Abs(ToDBm(100)-20) > 1e-12 {
		t.Fatal("100 mW = 20 dBm")
	}
	if !math.IsInf(ToDBm(0), -1) {
		t.Fatal("0 mW")
	}
}

package benchreg

import (
	"fmt"
	"testing"

	"ranbooster/internal/bfp"
	"ranbooster/internal/iq"
)

// CodecResult is one BFP codec microbenchmark measurement — the per-width
// throughput numbers the word-at-a-time kernels are judged by. MBPerSec is
// measured against the compressed wire size (what actually crosses the
// fronthaul), not the decoded sample volume.
type CodecResult struct {
	Name        string  `json:"name"`
	Width       int     `json:"width"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// codecPRBs is the grid size of every codec microbenchmark: one full
// 100 MHz carrier symbol, the same shape the engine workload moves.
const codecPRBs = 273

func codecGrid() iq.Grid {
	g := iq.NewGrid(codecPRBs)
	for i := range g {
		for j := range g[i] {
			g[i][j] = iq.Sample{I: int16((i + j) * 500), Q: int16(-(i - j) * 499)}
		}
	}
	return g
}

func codecResult(name string, width int, r testing.BenchmarkResult) CodecResult {
	return CodecResult{
		Name:        name,
		Width:       width,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		MBPerSec:    float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e6,
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// MeasureCodecs runs the full-carrier compress/decompress microbenchmark
// at each kernel width (9, 14 and 16 specialized; 12 through the generic
// path) plus the batched exponent scan, under the same testing.Benchmark
// harness `go test -bench` uses.
func MeasureCodecs() ([]CodecResult, error) {
	g := codecGrid()
	var out []CodecResult
	for _, w := range []uint8{9, 12, 14, 0 /* =16 */} {
		p := bfp.Params{IQWidth: w, Method: bfp.MethodBlockFloatingPoint}
		width := p.EffectiveWidth()
		wire, err := bfp.CompressGrid(nil, g, p)
		if err != nil {
			return nil, err
		}
		size := int64(len(wire))

		r := testing.Benchmark(func(b *testing.B) {
			buf := make([]byte, 0, len(wire))
			b.ReportAllocs()
			b.SetBytes(size)
			for i := 0; i < b.N; i++ {
				buf = buf[:0]
				var err error
				buf, err = bfp.CompressGrid(buf, g, p)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, codecResult(fmt.Sprintf("CompressGrid273/w=%d", width), width, r))

		dst := iq.NewGrid(codecPRBs)
		r = testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(size)
			for i := 0; i < b.N; i++ {
				if _, err := bfp.DecompressGrid(wire, dst, p); err != nil {
					b.Fatal(err)
				}
			}
		})
		out = append(out, codecResult(fmt.Sprintf("DecompressGrid273/w=%d", width), width, r))
	}

	// The Algorithm 1 scan: one header byte per PRB across the carrier.
	p := bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint}
	wire, err := bfp.CompressGrid(nil, g, p)
	if err != nil {
		return nil, err
	}
	r := testing.Benchmark(func(b *testing.B) {
		exps := make([]uint8, 0, codecPRBs)
		b.ReportAllocs()
		b.SetBytes(int64(len(wire)))
		for i := 0; i < b.N; i++ {
			var err error
			exps, err = bfp.AppendExponents(exps[:0], wire, p)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	out = append(out, codecResult("AppendExponents273/w=9", 9, r))
	return out, nil
}

package benchreg

import (
	"testing"
	"time"
)

// TestWorkload sanity-checks the shared benchmark workload outside the
// bench harness: frames must decode, the engine must process them all, and
// the traced variant must actually record spans.
func TestWorkload(t *testing.T) {
	frames, err := Frames()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 8 {
		t.Fatalf("want 8 eAxC streams, got %d", len(frames))
	}
	eng, err := NewEngine(2, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	Drive(eng, frames, 64)
	st := eng.Snapshot()
	if st.RxFrames != 64 || st.TxFrames != 64 {
		t.Fatalf("rx %d tx %d, want 64/64", st.RxFrames, st.TxFrames)
	}
	if st.Trace == nil || st.Trace.Spans != 64 {
		t.Fatalf("traced run recorded no spans: %+v", st.Trace)
	}
}

// tracingOverheadFrames is sized so the run is sleep-dominated (frames ×
// ServicePause ≫ scheduler noise) but still finishes in tens of
// milliseconds per attempt.
const tracingOverheadFrames = 2000

// TestTracingOverhead is the bench-regression gate of the observability
// layer: with tracing on, the 4-core datapath may cost at most 5% more
// wall-clock than untraced on the identical workload. Each variant gets
// the best of three attempts so a scheduler hiccup cannot fail the build.
func TestTracingOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing comparison; race instrumentation distorts the traced/untraced ratio")
	}
	best := func(traced bool) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for attempt := 0; attempt < 3; attempt++ {
			d, err := TimeFrames(4, traced, tracingOverheadFrames)
			if err != nil {
				t.Fatal(err)
			}
			if d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	plain := best(false)
	traced := best(true)
	overhead := float64(traced-plain) / float64(plain)
	t.Logf("untraced %v, traced %v, overhead %.2f%%", plain, traced, overhead*100)
	if overhead > 0.05 {
		t.Errorf("tracing overhead %.2f%% exceeds the 5%% budget (untraced %v, traced %v)",
			overhead*100, plain, traced)
	}
}

// Package benchreg is the single source of truth for the engine
// benchmark workload: the same frames, app and drive loop back
// BenchmarkEngineParallel / BenchmarkEngineTraced (go test -bench), the
// tracing-overhead regression test, and cmd/benchreg, which records the
// numbers to a BENCH_*.json snapshot so successive PRs can be compared.
//
//ranvet:allowfile simclock the benchmark harness measures real elapsed wall time by design; nothing here feeds the seeded datapath
package benchreg

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"ranbooster/internal/bfp"
	"ranbooster/internal/core"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
	"ranbooster/internal/testbed"
)

// ServicePause is a fixed per-frame service latency the bench app blocks
// for, on top of its real decode work. Per-packet service time is what the
// sharded datapath overlaps across workers, so the speedup is measurable
// on any host — including single-CPU CI boxes, where pure compute cannot
// scale past GOMAXPROCS.
const ServicePause = 20 * time.Microsecond

// decodeApp does representative userspace work per frame: full packet
// decode plus an Algorithm-1-style exponent scan over a 273-PRB U-plane
// payload, then the fixed service pause.
type decodeApp struct{}

func (decodeApp) Name() string { return "bench-decode" }
func (decodeApp) Handle(ctx *core.Context, pkt *fh.Packet) error {
	if err := scanFrame(ctx, pkt); err != nil {
		return err
	}
	time.Sleep(ServicePause)
	ctx.Forward(pkt)
	return nil
}

// burstApp is the burst-aware variant of decodeApp: the same per-frame
// decode and exponent scan, but the fixed service pause is requested once
// per burst for the whole burst's worth of service time. Per-frame service
// latency is identical; what the burst amortizes is the wakeup/dispatch
// overhead of blocking once per frame — the DPDK burst-processing lesson
// the burst datapath exists for.
type burstApp struct{}

func (burstApp) Name() string { return "bench-burst" }

// Handle is the per-frame fallback (exactly decodeApp's work).
func (burstApp) Handle(ctx *core.Context, pkt *fh.Packet) error {
	if err := scanFrame(ctx, pkt); err != nil {
		return err
	}
	time.Sleep(ServicePause)
	ctx.Forward(pkt)
	return nil
}

// HandleBurst decodes and scans every frame, then blocks once for the
// burst's aggregate service time.
func (burstApp) HandleBurst(ctx *core.Context, pkts []*fh.Packet) error {
	for _, pkt := range pkts {
		if err := scanFrame(ctx, pkt); err != nil {
			ctx.PacketError(pkt, err)
			continue
		}
		ctx.Forward(pkt)
	}
	time.Sleep(ServicePause * time.Duration(len(pkts)))
	return nil
}

// scanFrame is the shared userspace work: full U-plane decode plus an
// Algorithm-1-style exponent scan over the 273-PRB payload.
func scanFrame(ctx *core.Context, pkt *fh.Packet) error {
	msg := ctx.UPlaneScratch(0)
	if err := pkt.UPlane(msg, 273); err != nil {
		return err
	}
	util := 0
	for i := range msg.Sections {
		s := &msg.Sections[i]
		exps, err := ctx.Transcoder().Exponents(s.Payload, s.Comp)
		if err != nil {
			continue
		}
		for _, e := range exps {
			if e > 0 {
				util++
			}
		}
	}
	ctx.ChargeExponentScan(util)
	return nil
}

// Frames pre-builds full-carrier U-plane frames spread over 8 eAxC
// streams so a sharded engine has parallelism to exploit.
func Frames() ([][]byte, error) {
	payload, err := bfp.CompressGrid(nil, iq.NewGrid(273), testbed.BFP9())
	if err != nil {
		return nil, err
	}
	du := eth.MAC{0x02, 0, 0, 0, 0, 0x01}
	mb := eth.MAC{0x02, 0, 0, 0, 0, 0x02}
	frames := make([][]byte, 8)
	for port := range frames {
		msg := &oran.UPlaneMsg{
			Timing:   oran.Timing{Direction: oran.Downlink, FrameID: 1},
			Sections: []oran.USection{{NumPRB: 273, Comp: testbed.BFP9(), Payload: payload}},
		}
		frames[port] = fh.NewBuilder(du, mb, -1).UPlane(ecpri.PcID{RUPort: uint8(port)}, msg)
	}
	return frames, nil
}

// NewEngine assembles the benchmark engine: the decode app on a sharded
// DPDK datapath, with the frame-span trace collector optionally enabled.
func NewEngine(cores int, traced bool) (*core.Engine, error) {
	tb := testbed.New(1)
	eng, err := core.NewEngine(tb.Sched, core.Config{
		Name: "bench", Mode: core.ModeDPDK, App: decodeApp{},
		CarrierPRBs: 273, Cores: cores, RingSize: 4096, Trace: traced,
	})
	if err != nil {
		return nil, err
	}
	eng.SetOutput(func([]byte) {})
	return eng, nil
}

// NewBurstEngine assembles the burst benchmark engine: the burst-aware
// app on a sharded DPDK datapath with the given BurstPolicy batch size.
func NewBurstEngine(cores, batch int) (*core.Engine, error) {
	tb := testbed.New(1)
	eng, err := core.NewEngine(tb.Sched, core.Config{
		Name: "bench-burst", Mode: core.ModeDPDK, App: burstApp{},
		CarrierPRBs: 273, Cores: cores, RingSize: 4096,
		Burst: core.BurstPolicy{Batch: batch},
	})
	if err != nil {
		return nil, err
	}
	eng.SetOutput(func([]byte) {})
	return eng, nil
}

// Drive pushes n frames through a started engine and blocks until the
// final drain, exactly the loop the benchmarks time.
func Drive(eng *core.Engine, frames [][]byte, n int) {
	for i := 0; i < n; i++ {
		f := frames[i&7]
		for !eng.TryIngress(f) {
			runtime.Gosched()
		}
	}
	eng.Stop() // wait for the drain so every frame is processed
}

// EngineBench returns the benchmark body shared by BenchmarkEngineParallel
// (traced=false) and BenchmarkEngineTraced (traced=true).
func EngineBench(cores int, traced bool) func(b *testing.B) {
	return func(b *testing.B) {
		eng, err := NewEngine(cores, traced)
		if err != nil {
			b.Fatal(err)
		}
		frames, err := Frames()
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Start(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		Drive(eng, frames, b.N)
		b.StopTimer()
		if st := eng.Snapshot(); st.RxFrames != uint64(b.N) {
			b.Fatalf("RxFrames = %d, want %d", st.RxFrames, b.N)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
	}
}

// BurstBench returns the benchmark body of the burst-size × core-count
// axis (BenchmarkEngineBurst/batch=N/cores=M).
func BurstBench(cores, batch int) func(b *testing.B) {
	return func(b *testing.B) {
		eng, err := NewBurstEngine(cores, batch)
		if err != nil {
			b.Fatal(err)
		}
		frames, err := Frames()
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Start(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		Drive(eng, frames, b.N)
		b.StopTimer()
		if st := eng.Snapshot(); st.RxFrames != uint64(b.N) {
			b.Fatalf("RxFrames = %d, want %d", st.RxFrames, b.N)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
	}
}

// TimeFrames runs the workload once over n frames and returns the
// wall-clock time of the drive loop (ingress through final drain).
func TimeFrames(cores int, traced bool, n int) (time.Duration, error) {
	eng, err := NewEngine(cores, traced)
	if err != nil {
		return 0, err
	}
	frames, err := Frames()
	if err != nil {
		return 0, err
	}
	if err := eng.Start(); err != nil {
		return 0, err
	}
	start := time.Now()
	Drive(eng, frames, n)
	elapsed := time.Since(start)
	if st := eng.Snapshot(); st.RxFrames != uint64(n) {
		return 0, fmt.Errorf("benchreg: RxFrames = %d, want %d", st.RxFrames, n)
	}
	return elapsed, nil
}

// Result is one benchmark measurement, in the shape BENCH_*.json records.
type Result struct {
	Name   string `json:"name"`
	Cores  int    `json:"cores"`
	Traced bool   `json:"traced"`
	// Batch is the BurstPolicy batch size of a burst-axis measurement
	// (0 on the per-frame axes).
	Batch        int     `json:"batch,omitempty"`
	N            int     `json:"n"`
	NsPerOp      float64 `json:"ns_per_op"`
	FramesPerSec float64 `json:"frames_per_sec"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
}

// Measure runs one (cores, traced) point under the testing.Benchmark
// harness — the exact code path `go test -bench` uses — and packages the
// outcome.
func Measure(cores int, traced bool) Result {
	name := fmt.Sprintf("BenchmarkEngineParallel/cores=%d", cores)
	if traced {
		name = fmt.Sprintf("BenchmarkEngineTraced/cores=%d", cores)
	}
	r := testing.Benchmark(EngineBench(cores, traced))
	return Result{
		Name:         name,
		Cores:        cores,
		Traced:       traced,
		N:            r.N,
		NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
		FramesPerSec: float64(r.N) / r.T.Seconds(),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
	}
}

// MeasureBurst runs one (cores, batch) point of the burst axis under the
// testing.Benchmark harness and packages the outcome.
func MeasureBurst(cores, batch int) Result {
	r := testing.Benchmark(BurstBench(cores, batch))
	return Result{
		Name:         fmt.Sprintf("BenchmarkEngineBurst/batch=%d/cores=%d", batch, cores),
		Cores:        cores,
		Batch:        batch,
		N:            r.N,
		NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
		FramesPerSec: float64(r.N) / r.T.Seconds(),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
	}
}

package benchreg

import (
	"runtime"
	"testing"
	"time"
)

// TestMetroScalePoint sanity-checks one point of the BENCH_8 axis
// outside the snapshot harness: the scenario must conserve every frame,
// and the telemetry percentiles must be populated and ordered.
func TestMetroScalePoint(t *testing.T) {
	r, err := MetroScale(64, 2, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r.Streams != 64 || r.ChainDepth != 2 {
		t.Fatalf("scenario dimensions wrong: %+v", r)
	}
	if r.Frames == 0 {
		t.Fatal("no frames injected")
	}
	if r.LossRate != 0 {
		t.Fatalf("clean fabric lost frames: loss rate %v", r.LossRate)
	}
	if r.P50Ns <= 0 || r.P99Ns < r.P50Ns {
		t.Fatalf("latency percentiles malformed: p50 %v ns, p99 %v ns", r.P50Ns, r.P99Ns)
	}
}

// timeSkew drives n frames of the skewed-load workload through a started
// engine and returns the wall-clock time to full drain.
func timeSkew(t *testing.T, cores int, ws bool, n int) time.Duration {
	t.Helper()
	eng, err := NewSkewEngine(cores, ws)
	if err != nil {
		t.Fatal(err)
	}
	frames, err := SkewFrames()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		f := frames[i&3]
		for !eng.TryIngress(f) {
			runtime.Gosched()
		}
	}
	eng.Stop()
	elapsed := time.Since(start)
	st := eng.Snapshot()
	if st.RxFrames != uint64(n) || st.TxFrames != uint64(n) {
		t.Fatalf("rx %d tx %d, want %d/%d", st.RxFrames, st.TxFrames, n, n)
	}
	if ws && st.Steals == 0 {
		t.Fatal("work-stealing run recorded no steals on colliding streams")
	}
	return elapsed
}

// TestSkewWorkStealSpeedup is the acceptance gate of the admission
// refactor: on the skewed load whose four hot streams collide on one
// shard under the static hash, the work-stealing layout at 4 cores must
// beat the hash layout outright — the hash serializes the whole load on
// one worker, work stealing spreads it. Best of three per variant so a
// scheduler hiccup cannot fail the build.
func TestSkewWorkStealSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing comparison; race instrumentation distorts the layouts unevenly")
	}
	const frames = 2000
	best := func(ws bool) time.Duration {
		bestD := time.Duration(1<<63 - 1)
		for attempt := 0; attempt < 3; attempt++ {
			if d := timeSkew(t, 4, ws, frames); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	hash := best(false)
	ws := best(true)
	speedup := float64(hash) / float64(ws)
	t.Logf("hash %v, worksteal %v, speedup %.2fx", hash, ws, speedup)
	if speedup < 1.5 {
		t.Errorf("work stealing %.2fx vs static hash on skewed load, want >= 1.5x (hash %v, ws %v)",
			speedup, hash, ws)
	}
}

//ranvet:allowfile simclock the scale harness reports wall-clock run time alongside the virtual-time percentiles; nothing here feeds the seeded datapath
package benchreg

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"ranbooster/internal/core"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
	"ranbooster/internal/telemetry"
	"ranbooster/internal/testbed"

	"ranbooster/internal/bfp"
)

// ScaleResult is one point of the BENCH_8 metro-scale axis: a chained
// scenario of streams × shards × chain-depth run on the deterministic
// clock, with latency percentiles and the loss rate read from the
// engines' own telemetry rather than from the harness.
type ScaleResult struct {
	Name       string `json:"name"`
	Streams    int    `json:"streams"`
	Shards     int    `json:"shards"`
	ChainDepth int    `json:"chain_depth"`
	Slots      int    `json:"slots"`
	// Frames is how many frames the cells injected over the run.
	Frames uint64 `json:"frames"`
	// LossRate is end-to-end: (injected − delivered) / injected, with
	// every lost frame accounted by the conservation ledger.
	LossRate float64 `json:"loss_rate"`
	// P50Ns / P99Ns are the virtual per-frame sojourn percentiles
	// (telemetry StageTotal) merged across every hop's span collector.
	P50Ns float64 `json:"p50_ns"`
	P99Ns float64 `json:"p99_ns"`
	// WallMs is the real time the simulation took — the harness cost of
	// the scenario, not a datapath measurement.
	WallMs float64 `json:"wall_ms"`
}

// MetroScale runs one streams × shards × chain-depth point: a metro
// scenario with work-stealing engines and span collectors on every hop.
// Streams are laid out 4 per RU over 4-cell floors.
func MetroScale(streams, shards, chain, slots int) (ScaleResult, error) {
	cells := (streams + 3) / 4
	m, err := testbed.NewMetro(testbed.MetroConfig{
		Floors: (cells + 3) / 4, CellsPerFloor: 4, PortsPerRU: 4,
		ChainDepth: chain,
		Cores:      shards,
		Scale:      core.ScalePolicy{WorkSteal: true},
		Trace:      true,
		Seed:       8,
	})
	if err != nil {
		return ScaleResult{}, err
	}
	start := time.Now()
	m.RunSlots(slots)
	m.Flush()
	wall := time.Since(start)

	rep := m.Conservation(0)
	if err := rep.Check(); err != nil {
		return ScaleResult{}, err
	}
	var tr telemetry.TraceStats
	for _, e := range m.Engines {
		if st := e.Snapshot(); st.Trace != nil {
			tr = tr.Merge(*st.Trace)
		}
	}
	p50, _ := tr.Stage[telemetry.StageTotal].Quantile(0.50)
	p99, _ := tr.Stage[telemetry.StageTotal].Quantile(0.99)
	r := ScaleResult{
		Name:       fmt.Sprintf("MetroScale/streams=%d/shards=%d/chain=%d", streams, shards, chain),
		Streams:    m.Config().Streams(),
		Shards:     shards,
		ChainDepth: chain,
		Slots:      slots,
		Frames:     m.Injected(),
		P50Ns:      float64(p50.Nanoseconds()),
		P99Ns:      float64(p99.Nanoseconds()),
		WallMs:     float64(wall.Nanoseconds()) / 1e6,
	}
	if r.Frames > 0 {
		r.LossRate = float64(r.Frames-rep.Sink.Delivered) / float64(r.Frames)
	}
	return r, nil
}

// skewKeys are the hot eAxC streams of the skewed-load bench. All four
// share RU-port nibble 1, so the static eAxC→shard hash pins every hot
// frame to one shard regardless of core count — the collision regime the
// work-stealing admission pool exists for. Under work stealing the four
// streams are independent FIFO queues that idle workers steal, so the
// same load spreads across all cores.
var skewKeys = [4]uint16{0x0001, 0x0011, 0x0021, 0x0031}

// SkewFrames pre-builds full-carrier U-plane frames on the four
// colliding hot streams.
func SkewFrames() ([][]byte, error) {
	payload, err := bfp.CompressGrid(nil, iq.NewGrid(273), testbed.BFP9())
	if err != nil {
		return nil, err
	}
	du := eth.MAC{0x02, 0, 0, 0, 0, 0x01}
	mb := eth.MAC{0x02, 0, 0, 0, 0, 0x02}
	frames := make([][]byte, len(skewKeys))
	for i, key := range skewKeys {
		msg := &oran.UPlaneMsg{
			Timing:   oran.Timing{Direction: oran.Downlink, FrameID: 1},
			Sections: []oran.USection{{NumPRB: 273, Comp: testbed.BFP9(), Payload: payload}},
		}
		frames[i] = fh.NewBuilder(du, mb, -1).UPlane(ecpri.PcIDFromUint16(key), msg)
	}
	return frames, nil
}

// NewSkewEngine assembles the skewed-load engine: the decode app on a
// sharded DPDK datapath, admission either the static hash (ws=false) or
// the work-stealing pool (ws=true).
func NewSkewEngine(cores int, ws bool) (*core.Engine, error) {
	tb := testbed.New(1)
	eng, err := core.NewEngine(tb.Sched, core.Config{
		Name: "bench-skew", Mode: core.ModeDPDK, App: decodeApp{},
		CarrierPRBs: 273, Cores: cores, RingSize: 4096,
		Scale: core.ScalePolicy{WorkSteal: ws},
	})
	if err != nil {
		return nil, err
	}
	eng.SetOutput(func([]byte) {})
	return eng, nil
}

// SkewBench returns the benchmark body of the skewed-load axis
// (BenchmarkEngineScale/layout=.../cores=N): b.N frames round-robined
// over the four colliding hot streams through parallel workers. The
// work-stealing layout should approach cores× the static hash at 4
// cores, because the hash serializes all four streams on one shard.
func SkewBench(cores int, ws bool) func(b *testing.B) {
	return func(b *testing.B) {
		eng, err := NewSkewEngine(cores, ws)
		if err != nil {
			b.Fatal(err)
		}
		frames, err := SkewFrames()
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Start(); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f := frames[i&3]
			for !eng.TryIngress(f) {
				runtime.Gosched()
			}
		}
		eng.Stop()
		b.StopTimer()
		st := eng.Snapshot()
		if st.RxFrames != uint64(b.N) {
			b.Fatalf("RxFrames = %d, want %d", st.RxFrames, b.N)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
		if ws {
			b.ReportMetric(float64(st.Steals), "steals")
		}
	}
}

// MeasureSkew runs one (cores, layout) point of the skewed-load axis
// under the testing.Benchmark harness and packages the outcome.
func MeasureSkew(cores int, ws bool) Result {
	layout := "hash"
	if ws {
		layout = "worksteal"
	}
	r := testing.Benchmark(SkewBench(cores, ws))
	return Result{
		Name:         fmt.Sprintf("BenchmarkEngineScale/layout=%s/cores=%d", layout, cores),
		Cores:        cores,
		N:            r.N,
		NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
		FramesPerSec: float64(r.N) / r.T.Seconds(),
		AllocsPerOp:  r.AllocsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
	}
}

//go:build !race

package benchreg

const raceEnabled = false

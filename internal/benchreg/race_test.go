//go:build race

package benchreg

// raceEnabled reports that this binary was built with the race detector.
// Race instrumentation multiplies memory-access costs unevenly across the
// traced and untraced variants, so wall-clock comparisons are meaningless.
const raceEnabled = true

package cpu

import (
	"testing"
	"time"

	"ranbooster/internal/sim"
)

func TestMergeCostMatchesFig15b(t *testing.T) {
	// Fig. 15b: UL merges on a 100 MHz (273 PRB) DAS run 4–6 µs for 2–4 RUs.
	for n, lo, hi := 2, 3500, 4500; n <= 4; n, lo, hi = n+1, lo+800, hi+1200 {
		got := MergeCost(273, n)
		if got < time.Duration(lo)*time.Nanosecond || got > time.Duration(hi)*time.Nanosecond {
			t.Errorf("MergeCost(273, %d) = %v, want in [%dns, %dns]", n, got, lo, hi)
		}
	}
	if MergeCost(273, 4) <= MergeCost(273, 2) {
		t.Fatal("merge cost must grow with streams")
	}
}

func TestDownlinkActionsUnder300ns(t *testing.T) {
	// Fig. 15b: DL C-plane and U-plane handling (parse + forward +
	// replicate) stays under 300 ns.
	if d := CostParse + CostForward + CostReplicate; d >= 300*time.Nanosecond {
		t.Fatalf("DL path cost %v >= 300ns", d)
	}
	if d := CostParse + CostCacheInsert; d >= 300*time.Nanosecond {
		t.Fatalf("UL cache path cost %v >= 300ns", d)
	}
}

func TestCoreAcquireCharge(t *testing.T) {
	var c Core
	start := c.Acquire(100)
	if start != 100 {
		t.Fatalf("idle acquire = %v", start)
	}
	fin := c.Charge(start, 50*time.Nanosecond)
	if fin != 150 {
		t.Fatalf("finish = %v", fin)
	}
	// Work arriving while busy queues behind.
	if got := c.Acquire(120); got != 150 {
		t.Fatalf("busy acquire = %v", got)
	}
}

func TestUtilization(t *testing.T) {
	var c Core
	c.ResetWindow(0)
	c.Charge(c.Acquire(0), 250*time.Nanosecond)
	now := sim.Time(1000)
	if u := c.Utilization(now, false); u != 0.25 {
		t.Fatalf("interrupt utilization = %v", u)
	}
	if u := c.Utilization(now, true); u != 1 {
		t.Fatalf("poll utilization = %v", u)
	}
	c.ResetWindow(now)
	if u := c.Utilization(now.Add(100), false); u != 0 {
		t.Fatalf("fresh window = %v", u)
	}
}

func TestUtilizationClamped(t *testing.T) {
	var c Core
	c.ResetWindow(0)
	c.Charge(0, 10*time.Microsecond)
	if u := c.Utilization(100, false); u != 1 {
		t.Fatalf("overloaded core utilization = %v, want clamp at 1", u)
	}
	if u := c.Utilization(0, false); u != 0 {
		t.Fatal("zero window")
	}
}

func TestPoolHashing(t *testing.T) {
	p := NewPool(2)
	if p.ForKey(0) == p.ForKey(1) {
		t.Fatal("adjacent keys should spread")
	}
	if p.ForKey(0) != p.ForKey(2) {
		t.Fatal("hash not stable")
	}
	p.Cores[1].ResetWindow(0)
	p.Cores[1].Charge(0, 500*time.Nanosecond)
	p.Cores[0].ResetWindow(0)
	if u := p.MaxUtilization(1000, false); u != 0.5 {
		t.Fatalf("max utilization = %v", u)
	}
	p.ResetWindows(1000)
	if u := p.MaxUtilization(2000, false); u != 0 {
		t.Fatalf("after reset = %v", u)
	}
}

func TestServerPower(t *testing.T) {
	s := NewServer("srv1")
	s.SetOperatingPoint(16, 0)
	if got := s.PowerW(); got != 200 {
		t.Fatalf("16 active cores = %vW, want 200", got)
	}
	s.SetOperatingPoint(8, 12)
	if got := s.PowerW(); got != 100+50+30 {
		t.Fatalf("mixed point = %vW", got)
	}
	s.PoweredOn = false
	if s.PowerW() != 0 {
		t.Fatal("powered-off server draws power")
	}
}

func TestServerPowerFig14Bands(t *testing.T) {
	// Fig. 14a: two servers, 16 active cores each ⇒ ~400 W.
	a, b := NewServer("a"), NewServer("b")
	a.SetOperatingPoint(16, 0)
	b.SetOperatingPoint(16, 0)
	if got := TotalPowerW(a, b); got != 400 {
		t.Fatalf("fig 14a = %vW, want 400", got)
	}
	// Fig. 14b: one server down, the other half at low frequency ⇒ ~180 W.
	b.PoweredOn = false
	a.SetOperatingPoint(8, 12)
	if got := TotalPowerW(a, b); got != 180 {
		t.Fatalf("fig 14b = %vW, want 180", got)
	}
}

func TestSetOperatingPointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewServer("x").SetOperatingPoint(40, 0)
}

func TestRecompressCopyCost(t *testing.T) {
	if RecompressCopyCost(106) <= AlignedCopyCost(106) {
		t.Fatal("misaligned path must cost more than the aligned copy")
	}
	if ExponentScanCost(273) >= AlignedCopyCost(273) {
		t.Fatal("exponent scan should be the cheapest payload op")
	}
}

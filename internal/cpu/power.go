package cpu

// Server models the power draw of one HPE DL110-class host, matching the
// out-of-band measurements used in Fig. 14: a platform base load plus a
// per-core increment that depends on the core's operating point. Shutting
// a server down removes its base load entirely; parking cores at low
// frequency keeps them available at a fraction of the active cost.
type Server struct {
	Name string
	// TotalCores available on the host.
	TotalCores int
	// BaseW is the platform power with all cores idle.
	BaseW float64
	// ActiveCoreW is the marginal power of a core running at high frequency.
	ActiveCoreW float64
	// LowFreqCoreW is the marginal power of a core parked at low frequency.
	LowFreqCoreW float64

	// Operating point.
	PoweredOn   bool
	ActiveCores int
	LowCores    int
}

// NewServer returns a testbed server at the calibrated operating costs.
func NewServer(name string) *Server {
	return &Server{
		Name:         name,
		TotalCores:   32,
		BaseW:        100,
		ActiveCoreW:  6.25,
		LowFreqCoreW: 2.5,
		PoweredOn:    true,
	}
}

// SetOperatingPoint configures the core allocation. It panics if the
// request exceeds the host's cores — sizing errors are configuration bugs.
func (s *Server) SetOperatingPoint(active, low int) {
	if active+low > s.TotalCores || active < 0 || low < 0 {
		panic("cpu: operating point exceeds server cores")
	}
	s.ActiveCores, s.LowCores = active, low
}

// PowerW returns the host's current draw.
func (s *Server) PowerW() float64 {
	if !s.PoweredOn {
		return 0
	}
	return s.BaseW + float64(s.ActiveCores)*s.ActiveCoreW + float64(s.LowCores)*s.LowFreqCoreW
}

// TotalPowerW sums a rack.
func TotalPowerW(servers ...*Server) float64 {
	var w float64
	for _, s := range servers {
		w += s.PowerW()
	}
	return w
}

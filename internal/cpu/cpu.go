// Package cpu models the compute side of a RANBooster deployment: per-core
// busy-time accounting on the virtual clock (so poll-mode and interrupt-
// driven datapaths report the utilizations of Fig. 16), a per-action cost
// table calibrated against the microbenchmarks of Fig. 15b, and the server
// power model behind the energy-saving comparison of Fig. 14.
package cpu

import (
	"sync/atomic"
	"time"

	"ranbooster/internal/sim"
)

// Per-action processing costs, calibrated to the paper's DPDK
// microbenchmarks (§6.4.1): downlink C- and U-plane handling lands under
// 300 ns, uplink caching under 300 ns, and an IQ merge over N streams of
// 273 PRBs costs 4–6 µs growing with N.
const (
	// CostParse covers frame reception and header parsing.
	CostParse = 40 * time.Nanosecond
	// CostForward is action A1: addressing rewrite plus TX descriptor work.
	CostForward = 40 * time.Nanosecond
	// CostDrop is action A1's drop half.
	CostDrop = 15 * time.Nanosecond
	// CostReplicate is action A2, per copy produced.
	CostReplicate = 30 * time.Nanosecond
	// CostCacheInsert is action A3.
	CostCacheInsert = 80 * time.Nanosecond
	// CostCacheTake retrieves and unlinks a cached packet list.
	CostCacheTake = 60 * time.Nanosecond
	// CostHeaderMod is action A4 restricted to O-RAN header fields.
	CostHeaderMod = 50 * time.Nanosecond

	// CostKernelRule is the per-rule evaluation cost of the XDP program.
	CostKernelRule = 25 * time.Nanosecond
	// CostKernelTx is an in-kernel XDP_TX redirect.
	CostKernelTx = 60 * time.Nanosecond
	// CostAFXDPHandoff is the kernel→userspace context switch an AF_XDP
	// punt pays (§5).
	CostAFXDPHandoff = 2500 * time.Nanosecond
	// CostKernelDriver is the per-packet kernel network stack and driver
	// overhead of the XDP path ("additional performance and latency
	// overheads due to the involvement of the kernel", §5) — the price of
	// not bypassing the kernel the way DPDK does.
	CostKernelDriver = 1800 * time.Nanosecond
	// CostInterruptWake is charged per interrupt-driven wakeup batch.
	CostInterruptWake = 800 * time.Nanosecond
)

// Sub-nanosecond per-PRB costs, in picoseconds. time.Duration cannot carry
// fractional nanoseconds, so per-PRB rates stay integer picoseconds and the
// cost helpers below convert whole-packet totals.
const (
	// psIQPerPRBPerStream: decompress and accumulate one PRB of one input
	// stream during a merge (A4).
	psIQPerPRBPerStream = 4000
	// psIQCompressPerPRB: re-compress one merged PRB (A4).
	psIQCompressPerPRB = 7600
	// psIQCopyPerPRB: relocate one aligned, still-compressed PRB (the
	// RU-sharing fast path of Fig. 6).
	psIQCopyPerPRB = 900
	// psExponentPerPRB: Algorithm 1's exponent inspection of one PRB.
	psExponentPerPRB = 700
)

func psToDuration(ps int) time.Duration {
	return time.Duration(ps) * time.Nanosecond / 1000
}

// MergeCost returns the A4 cost of merging nStreams compressed IQ streams
// of nPRB PRBs into one (decompress+sum each input, compress the result).
func MergeCost(nPRB, nStreams int) time.Duration {
	return psToDuration(nPRB * (nStreams*psIQPerPRBPerStream + psIQCompressPerPRB))
}

// RecompressCopyCost returns the A4 cost of relocating nPRB misaligned
// PRBs (decompress one stream, copy, recompress).
func RecompressCopyCost(nPRB int) time.Duration {
	return psToDuration(nPRB * (psIQPerPRBPerStream + psIQCompressPerPRB))
}

// AlignedCopyCost returns the A4 cost of relocating nPRB aligned PRBs
// without touching their compression.
func AlignedCopyCost(nPRB int) time.Duration {
	return psToDuration(nPRB * psIQCopyPerPRB)
}

// ExponentScanCost returns the cost of Algorithm 1's per-PRB BFP exponent
// scan over nPRB PRBs.
func ExponentScanCost(nPRB int) time.Duration {
	return psToDuration(nPRB * psExponentPerPRB)
}

// DecompressCost returns the cost of fully decompressing nPRB PRBs — what
// the §4.4 alternative energy-threshold estimator pays per packet.
func DecompressCost(nPRB int) time.Duration {
	return psToDuration(nPRB * psIQPerPRBPerStream)
}

// Core tracks one CPU core's occupancy on the simulation clock. Each
// datapath worker (shard) owns exactly one Core and is the only writer;
// the mutable state is atomic so utilization can be read from outside the
// worker (telemetry, Pool.MaxUtilization) without racing it.
type Core struct {
	ID int

	busyUntil   atomic.Int64 // sim.Time when the core next becomes free
	busyAccum   atomic.Int64 // time.Duration busy since the window start
	windowStart atomic.Int64 // sim.Time
}

// BusyUntil is when the core next becomes free.
func (c *Core) BusyUntil() sim.Time { return sim.Time(c.busyUntil.Load()) }

// Acquire returns the time at which work arriving now can start.
func (c *Core) Acquire(now sim.Time) sim.Time {
	if bu := sim.Time(c.busyUntil.Load()); bu > now {
		return bu
	}
	return now
}

// Charge occupies the core from start for d and returns the finish time.
// Only the owning worker may call Charge.
func (c *Core) Charge(start sim.Time, d time.Duration) sim.Time {
	fin := start.Add(d)
	c.busyUntil.Store(int64(fin))
	c.busyAccum.Add(int64(d))
	return fin
}

// Utilization returns the busy fraction since the last ResetWindow. Poll-
// mode datapaths spin regardless of load, so poll=true always reports 1.
func (c *Core) Utilization(now sim.Time, poll bool) float64 {
	if poll {
		return 1
	}
	w := now.Sub(sim.Time(c.windowStart.Load()))
	if w <= 0 {
		return 0
	}
	u := float64(c.busyAccum.Load()) / float64(w)
	if u > 1 {
		u = 1
	}
	return u
}

// ResetWindow starts a fresh utilization measurement window.
func (c *Core) ResetWindow(now sim.Time) {
	c.windowStart.Store(int64(now))
	c.busyAccum.Store(0)
}

// Pool is a set of cores a datapath spreads work over (hashing by eAxC,
// per §6.4.1: "each CPU core handles only a subset of the RU antennas").
type Pool struct {
	Cores []*Core
}

// NewPool allocates n cores.
func NewPool(n int) *Pool {
	p := &Pool{Cores: make([]*Core, n)}
	for i := range p.Cores {
		p.Cores[i] = &Core{ID: i}
	}
	return p
}

// ForKey returns the core responsible for a flow key.
func (p *Pool) ForKey(key uint16) *Core {
	return p.Cores[int(key)%len(p.Cores)]
}

// Core returns core i — the per-worker accounting handle a datapath shard
// owns for its lifetime.
func (p *Pool) Core(i int) *Core { return p.Cores[i] }

// Len reports the number of cores in the pool.
func (p *Pool) Len() int { return len(p.Cores) }

// MaxUtilization returns the highest per-core utilization in the pool.
func (p *Pool) MaxUtilization(now sim.Time, poll bool) float64 {
	var m float64
	for _, c := range p.Cores {
		if u := c.Utilization(now, poll); u > m {
			m = u
		}
	}
	return m
}

// ResetWindows resets every core's measurement window.
func (p *Pool) ResetWindows(now sim.Time) {
	for _, c := range p.Cores {
		c.ResetWindow(now)
	}
}

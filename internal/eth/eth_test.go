package eth

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestHeaderRoundTripUntagged(t *testing.T) {
	h := Header{
		Dst:       MAC{0x6c, 0xad, 0xad, 0x00, 0x0b, 0x6c},
		Src:       MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01},
		EtherType: TypeECPRI,
	}
	buf := h.AppendTo(nil)
	if len(buf) != HeaderLen {
		t.Fatalf("len = %d, want %d", len(buf), HeaderLen)
	}
	var got Header
	payload, err := got.DecodeFromBytes(append(buf, 0xde, 0xad))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
	if !bytes.Equal(payload, []byte{0xde, 0xad}) {
		t.Fatalf("payload = %x", payload)
	}
}

func TestHeaderRoundTripVLAN(t *testing.T) {
	h := Header{
		Dst:       Broadcast,
		Src:       MAC{1, 2, 3, 4, 5, 6},
		EtherType: TypeECPRI,
		HasVLAN:   true,
		VLANID:    6,
		Priority:  7,
	}
	buf := h.AppendTo(nil)
	if len(buf) != VLANHeaderLen {
		t.Fatalf("len = %d, want %d", len(buf), VLANHeaderLen)
	}
	var got Header
	if _, err := got.DecodeFromBytes(buf); err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(dst, src [6]byte, et uint16, hasVLAN bool, vid uint16, prio uint8) bool {
		if et == TypeVLAN {
			et = TypeECPRI // a bare frame whose type is the TPID is ambiguous by design
		}
		h := Header{Dst: dst, Src: src, EtherType: et, HasVLAN: hasVLAN}
		if hasVLAN {
			h.VLANID = vid & 0x0fff
			h.Priority = prio & 0x7
		}
		var got Header
		payload, err := got.DecodeFromBytes(h.AppendTo(nil))
		return err == nil && got == h && len(payload) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	var h Header
	if _, err := h.DecodeFromBytes(make([]byte, 13)); err != ErrTruncated {
		t.Fatalf("short untagged: err = %v", err)
	}
	th := Header{EtherType: TypeECPRI, HasVLAN: true}
	tagged := th.AppendTo(nil)
	if _, err := h.DecodeFromBytes(tagged[:16]); err != ErrTruncated {
		t.Fatalf("short tagged: err = %v", err)
	}
}

func TestParseMAC(t *testing.T) {
	m, err := ParseMAC("6c:ad:ad:00:0b:6c")
	if err != nil {
		t.Fatal(err)
	}
	if m.String() != "6c:ad:ad:00:0b:6c" {
		t.Fatalf("String() = %q", m.String())
	}
	for _, bad := range []string{"", "6c:ad:ad:00:0b", "zz:ad:ad:00:0b:6c", "6c-ad-ad-00-0b-6c"} {
		if _, err := ParseMAC(bad); err == nil {
			t.Fatalf("ParseMAC(%q) accepted", bad)
		}
	}
}

func TestMACPredicates(t *testing.T) {
	if !Broadcast.IsBroadcast() {
		t.Fatal("Broadcast not broadcast")
	}
	if (MAC{}).IsBroadcast() {
		t.Fatal("zero is broadcast")
	}
	if !(MAC{}).IsZero() {
		t.Fatal("zero not zero")
	}
}

func TestRewrite(t *testing.T) {
	h := Header{
		Dst: MAC{1, 1, 1, 1, 1, 1}, Src: MAC{2, 2, 2, 2, 2, 2},
		EtherType: TypeECPRI, HasVLAN: true, VLANID: 6, Priority: 5,
	}
	frame := h.AppendTo(nil)
	frame = append(frame, 0xaa, 0xbb)
	newDst := MAC{9, 9, 9, 9, 9, 9}
	newSrc := MAC{8, 8, 8, 8, 8, 8}
	if err := Rewrite(frame, newDst, newSrc, 42); err != nil {
		t.Fatal(err)
	}
	var got Header
	payload, err := got.DecodeFromBytes(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dst != newDst || got.Src != newSrc || got.VLANID != 42 {
		t.Fatalf("rewrite: %+v", got)
	}
	if got.Priority != 5 {
		t.Fatalf("priority clobbered: %d", got.Priority)
	}
	if !bytes.Equal(payload, []byte{0xaa, 0xbb}) {
		t.Fatal("payload corrupted")
	}
}

func TestRewriteKeepVLAN(t *testing.T) {
	h := Header{EtherType: TypeECPRI, HasVLAN: true, VLANID: 6}
	frame := h.AppendTo(nil)
	if err := Rewrite(frame, MAC{1}, MAC{2}, -1); err != nil {
		t.Fatal(err)
	}
	var got Header
	if _, err := got.DecodeFromBytes(frame); err != nil {
		t.Fatal(err)
	}
	if got.VLANID != 6 {
		t.Fatalf("vlan = %d, want 6 (unchanged)", got.VLANID)
	}
}

func TestRewriteErrors(t *testing.T) {
	if err := Rewrite(make([]byte, 4), MAC{}, MAC{}, -1); err == nil {
		t.Fatal("short frame accepted")
	}
	uh := Header{EtherType: TypeECPRI}
	untagged := uh.AppendTo(nil)
	if err := Rewrite(untagged, MAC{}, MAC{}, 5); err == nil {
		t.Fatal("vlan rewrite on untagged frame accepted")
	}
}

// Package eth implements the Ethernet II framing used by the O-RAN
// fronthaul, including the optional 802.1Q VLAN tag the specification
// recommends for C/U-plane separation. Encoding and decoding follow the
// gopacket idiom: DecodeFromBytes fills a reusable struct without
// allocating, and AppendTo serializes onto a caller-provided slice.
package eth

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// EtherType values relevant to the fronthaul.
const (
	// TypeVLAN is the 802.1Q tag protocol identifier.
	TypeVLAN uint16 = 0x8100
	// TypeECPRI is the IEEE-assigned EtherType for eCPRI, the transport
	// protocol of the O-RAN fronthaul C/U planes.
	TypeECPRI uint16 = 0xAEFE
)

// HeaderLen is the length of an untagged Ethernet II header.
const HeaderLen = 14

// VLANHeaderLen is the length of an Ethernet II header carrying one 802.1Q tag.
const VLANHeaderLen = 18

// MAC is a 48-bit Ethernet address. The zero value is the null address.
type MAC [6]byte

// String renders the address in the canonical colon-separated form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsZero reports whether the address is all-zero.
func (m MAC) IsZero() bool { return m == MAC{} }

// IsBroadcast reports whether the address is ff:ff:ff:ff:ff:ff.
func (m MAC) IsBroadcast() bool { return m == MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff} }

// Broadcast is the Ethernet broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// ParseMAC parses a colon-separated address.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	if len(s) != 17 {
		return m, fmt.Errorf("eth: bad MAC %q", s)
	}
	for i := 0; i < 6; i++ {
		hi, ok1 := hexNibble(s[i*3])
		lo, ok2 := hexNibble(s[i*3+1])
		if !ok1 || !ok2 {
			return m, fmt.Errorf("eth: bad MAC %q", s)
		}
		if i < 5 && s[i*3+2] != ':' {
			return m, fmt.Errorf("eth: bad MAC %q", s)
		}
		m[i] = hi<<4 | lo
	}
	return m, nil
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}

// Header is a decoded Ethernet II header with an optional single 802.1Q tag.
type Header struct {
	Dst       MAC
	Src       MAC
	EtherType uint16 // inner type when VLAN-tagged
	// HasVLAN indicates an 802.1Q tag is present.
	HasVLAN bool
	// VLANID is the 12-bit VLAN identifier (valid when HasVLAN).
	VLANID uint16
	// Priority is the 3-bit PCP field (valid when HasVLAN). Fronthaul
	// deployments commonly prioritize U-plane over management traffic.
	Priority uint8
}

// ErrTruncated reports a frame shorter than its headers claim.
var ErrTruncated = errors.New("eth: truncated frame")

// Len returns the encoded header length.
func (h *Header) Len() int {
	if h.HasVLAN {
		return VLANHeaderLen
	}
	return HeaderLen
}

// DecodeFromBytes parses the header from b and returns the payload slice
// aliasing b. It does not allocate.
func (h *Header) DecodeFromBytes(b []byte) (payload []byte, err error) {
	if len(b) < HeaderLen {
		return nil, ErrTruncated
	}
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	et := binary.BigEndian.Uint16(b[12:14])
	if et == TypeVLAN {
		if len(b) < VLANHeaderLen {
			return nil, ErrTruncated
		}
		tci := binary.BigEndian.Uint16(b[14:16])
		h.HasVLAN = true
		h.Priority = uint8(tci >> 13)
		h.VLANID = tci & 0x0fff
		h.EtherType = binary.BigEndian.Uint16(b[16:18])
		return b[18:], nil
	}
	h.HasVLAN = false
	h.Priority = 0
	h.VLANID = 0
	h.EtherType = et
	return b[14:], nil
}

// AppendTo serializes the header onto b and returns the extended slice.
func (h *Header) AppendTo(b []byte) []byte {
	b = append(b, h.Dst[:]...)
	b = append(b, h.Src[:]...)
	if h.HasVLAN {
		b = binary.BigEndian.AppendUint16(b, TypeVLAN)
		tci := uint16(h.Priority&0x7)<<13 | h.VLANID&0x0fff
		b = binary.BigEndian.AppendUint16(b, tci)
	}
	return binary.BigEndian.AppendUint16(b, h.EtherType)
}

// Rewrite updates the addressing of an already-encoded frame in place.
// This is the mechanism behind RANBooster action A1 (redirection): steering
// a fronthaul packet to a different DU or RU is a MAC/VLAN rewrite.
func Rewrite(frame []byte, dst, src MAC, vlan int) error {
	if len(frame) < HeaderLen {
		return ErrTruncated
	}
	copy(frame[0:6], dst[:])
	copy(frame[6:12], src[:])
	if vlan >= 0 {
		if binary.BigEndian.Uint16(frame[12:14]) != TypeVLAN {
			return errors.New("eth: frame has no VLAN tag to rewrite")
		}
		if len(frame) < VLANHeaderLen {
			return ErrTruncated
		}
		tci := binary.BigEndian.Uint16(frame[14:16])
		tci = tci&0xf000 | uint16(vlan)&0x0fff
		binary.BigEndian.PutUint16(frame[14:16], tci)
	}
	return nil
}

package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// WireBounds guards the wire-format parsers against the exact bug class
// behind the DAS merge panic of PR 3: indexing or slicing an attacker-
// shaped payload without a dominating length check. In the fronthaul
// codec packages (fh, oran, ecpri, bfp, eth), every index or slice
// expression over a []byte — and every slice-to-array-pointer conversion,
// which panics just the same when the slice is short — must be preceded,
// within the same function, by a len() observation of the same
// expression. The check is syntactic and flow-insensitive on purpose: a
// parser whose bounds safety needs cross-function reasoning is a parser
// the next refactor breaks, so such sites either gain a local check or a
// //ranvet:allow bounds <reason> spelling the invariant out.
var WireBounds = &Analyzer{
	Name:  "wirebounds",
	Alias: "bounds",
	Doc:   "flags payload indexing/slicing not preceded by a length check",
	Run:   runWireBounds,
}

// wireBoundsPackages are the codec package basenames in scope.
var wireBoundsPackages = map[string]bool{
	"fh":    true,
	"oran":  true,
	"ecpri": true,
	"bfp":   true,
	"eth":   true,
}

func runWireBounds(prog *Program, report Reporter) {
	for _, pkg := range prog.Packages {
		if !wireBoundsPackages[shortPkg(pkg.Path)] {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					checkWireBoundsFunc(pkg, fd, report)
				}
			}
		}
	}
}

// isByteSlice reports whether the expression's static type is []byte (or
// a named type whose underlying type is).
func isByteSlice(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	s, ok := tv.Type.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// exprString renders an expression canonically for syntactic comparison.
func exprString(pkg *Package, e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, pkg.fset, e)
	return buf.String()
}

func checkWireBoundsFunc(pkg *Package, fd *ast.FuncDecl, report Reporter) {
	// Pass 1: positions of every len(X) observation in the function.
	lenChecks := map[string][]token.Pos{} // printed operand -> len() positions
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "len" {
			return true
		}
		key := exprString(pkg, call.Args[0])
		lenChecks[key] = append(lenChecks[key], call.Pos())
		return true
	})
	dominated := func(operand ast.Expr, use token.Pos) bool {
		for _, p := range lenChecks[exprString(pkg, operand)] {
			if p < use {
				return true
			}
		}
		return false
	}
	flag := func(pos token.Pos, what, operand string) {
		report(pkg, pos,
			"%s of %q without a preceding len(%s) check in this function; a short payload panics here — check the length locally",
			what, operand, operand)
	}

	// Pass 2: flag unguarded byte-slice element/slice accesses.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.IndexExpr:
			x := ast.Unparen(e.X)
			if !isByteSlice(pkg, x) {
				return true
			}
			if dominated(x, e.Pos()) || mentionsLenOf(pkg, e.Index, x) {
				return true
			}
			flag(e.Pos(), "indexing", exprString(pkg, x))
		case *ast.SliceExpr:
			x := ast.Unparen(e.X)
			if !isByteSlice(pkg, x) {
				return true
			}
			if dominated(x, e.Pos()) {
				return true
			}
			// b[:len(b)-1]-style bounds are self-limiting.
			for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
				if idx != nil && mentionsLenOf(pkg, idx, x) {
					return true
				}
			}
			flag(e.Pos(), "slicing", exprString(pkg, x))
		case *ast.CallExpr:
			// (*[N]byte)(x): panics when len(x) < N.
			tv, ok := pkg.Info.Types[e.Fun]
			if !ok || !tv.IsType() || len(e.Args) != 1 {
				return true
			}
			ptr, ok := tv.Type.Underlying().(*types.Pointer)
			if !ok {
				return true
			}
			if _, ok := ptr.Elem().Underlying().(*types.Array); !ok {
				return true
			}
			x := ast.Unparen(e.Args[0])
			if !isByteSlice(pkg, x) || dominated(x, e.Pos()) {
				return true
			}
			flag(e.Pos(), "array-pointer conversion", exprString(pkg, x))
		}
		return true
	})
}

// mentionsLenOf reports whether idx textually contains len(<operand>).
func mentionsLenOf(pkg *Package, idx, operand ast.Expr) bool {
	return strings.Contains(exprString(pkg, idx), "len("+exprString(pkg, operand)+")")
}

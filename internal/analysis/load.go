package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package under analysis.
type Package struct {
	Path  string // import path
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	fset *token.FileSet
}

// Program is the unit analyzers operate on: every matched module package,
// type-checked from source against compiled export data for dependencies.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // sorted by import path

	// cg memoizes the module call graph (reach.go): several analyzers
	// walk it from different root sets, and the suite runs them
	// sequentially, so one build serves all.
	cg *callGraph
}

// graph returns the module's static call graph, built on first use.
func (p *Program) graph() *callGraph {
	if p.cg == nil {
		p.cg = buildCallGraph(p)
	}
	return p.cg
}

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path, Dir string }
}

// goList runs `go list -export -json -deps patterns...` in dir and
// returns the decoded package stream.
func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Name,GoFiles,Export,Standard,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, ee.Stderr)
		}
		return nil, fmt.Errorf("go list %s: %v", strings.Join(patterns, " "), err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listPackage
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		q := p
		pkgs = append(pkgs, &q)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the export files `go list -export`
// reported, so type-checking needs no network and no source for deps.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("ranvet: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// Load builds a Program from the module rooted at (or containing) dir.
// Patterns follow the go tool ("./..." by default). Only packages of the
// enclosing module are analyzed; test files are not loaded (the datapath
// invariants live in non-test code, and analyzers that need cross-package
// visibility — atomicfield — see the non-test readers in examples/,
// experiments and cmd).
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	var local []*listPackage
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			local = append(local, p)
		}
	}
	sort.Slice(local, func(i, j int) bool { return local[i].ImportPath < local[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	prog := &Program{Fset: fset}
	for _, p := range local {
		files, err := parseFiles(fset, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("ranvet: type-checking %s: %v", p.ImportPath, err)
		}
		prog.Packages = append(prog.Packages, &Package{
			Path:  p.ImportPath,
			Files: files,
			Pkg:   tpkg,
			Info:  info,
			fset:  fset,
		})
	}
	return prog, nil
}

// LoadDir builds a single-package Program from the bare directory dir,
// type-checked under the given import path. This is the fixture loader:
// testdata trees are invisible to the go tool, so the files are parsed
// directly and only their (stdlib) imports are resolved via `go list
// -export`. moduleDir anchors the go invocation.
func LoadDir(moduleDir, dir, importPath string) (*Program, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("ranvet: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	files, err := parseFiles(fset, dir, names)
	if err != nil {
		return nil, err
	}
	// Resolve the fixture's imports (and their dependencies) to export data.
	seen := map[string]bool{}
	var imports []string
	for _, f := range files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	exports := map[string]string{}
	if len(imports) > 0 {
		sort.Strings(imports)
		pkgs, err := goList(moduleDir, imports)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("ranvet: type-checking fixture %s: %v", dir, err)
	}
	return &Program{
		Fset: fset,
		Packages: []*Package{{
			Path:  importPath,
			Files: files,
			Pkg:   tpkg,
			Info:  info,
			fset:  fset,
		}},
	}, nil
}

func parseFiles(fset *token.FileSet, dir string, names []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// ModuleRoot locates the enclosing module's directory starting from dir.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("ranvet: %s is not inside a module", dir)
	}
	return filepath.Dir(gomod), nil
}

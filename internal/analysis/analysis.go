// Package analysis implements ranvet, a static-analysis suite that
// enforces the repo's datapath invariants by machine rather than by code
// review. The invariants come straight from the engineering rules the
// engine is built on (DESIGN.md §6): the per-frame path must not allocate,
// counters shared across shards are touched only through sync/atomic,
// non-SerialApp middleboxes must not write unsynchronized receiver state
// from Handle, nothing under internal/ reads the wall clock (seeded runs
// must replay bit-identically), and wire-format parsers index payloads
// only behind a length check.
//
// The suite is stdlib-only. It deliberately mirrors the shape of
// golang.org/x/tools/go/analysis — an Analyzer with a Run hook reporting
// position-anchored diagnostics — but loads packages itself: `go list
// -export` supplies compiled export data for every dependency, each module
// package is re-type-checked from source, and analyzers walk the typed
// ASTs. See load.go.
//
// # Suppressions
//
// A diagnostic is silenced with an in-source directive carrying a written
// reason:
//
//	//ranvet:allow <analyzer> <reason...>     – silences the named
//	    analyzer on the same line and the line below the comment.
//	//ranvet:allowfile <analyzer> <reason...> – silences the named
//	    analyzer for the whole file (one per file, conventionally at top).
//
// <analyzer> is a full name (hotpathalloc, atomicfield, shardsafe,
// simclock, wirebounds, detflow, statemach, spscsingle, metricreg,
// staleallow) or its short alias (alloc, atomic, shard, simclock,
// bounds, det, state, spsc, metric, stale). A directive without a
// reason, or naming an unknown analyzer, is itself reported —
// unexplained suppressions defeat the point of the suite. A directive
// whose analyzer no longer fires on the covered lines is reported too
// (staleallow): the inventory of excused findings must shrink with the
// code, not outlive it.
//
// # Root annotations
//
// The v2 whole-program checkers are driven by in-source annotations
// (doc-comment directives on declarations) rather than hard-coded
// symbol lists; see reach.go for the shared reachability layer and the
// individual analyzers for the grammar:
//
//	//ranvet:hotpath                       – hotpathalloc root
//	//ranvet:detpath                       – detflow root (deterministic mode)
//	//ranvet:statemach From->To ...        – statemach transition table (field doc)
//	//ranvet:spsc produce|consume          – spscsingle ring entry (method doc)
//	//ranvet:goroutine <label>             – spscsingle goroutine root
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the go-vet style the driver prints.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Reporter receives findings from an analyzer run.
type Reporter func(pkg *Package, pos token.Pos, format string, args ...any)

// Analyzer is one invariant checker. Run inspects the whole Program so
// checks may reason across package boundaries (the hot-path call graph
// and mixed atomic/plain field accesses both cross packages).
type Analyzer struct {
	Name  string // full name, e.g. "hotpathalloc"
	Alias string // suppression shorthand, e.g. "alloc"
	Doc   string // one-line description
	Run   func(prog *Program, report Reporter)
}

// All returns the ranvet suite in reporting order. The v1 invariant
// analyzers come first, then the v2 whole-program checkers added for the
// post-metro datapath (burst retirement, supervision breakers,
// work-stealing stream queues), and staleallow last — it audits the
// suppressions the others consumed.
func All() []*Analyzer {
	return []*Analyzer{
		HotPathAlloc,
		AtomicField,
		ShardSafe,
		SimClock,
		WireBounds,
		DetFlow,
		StateMach,
		SPSCSingle,
		MetricReg,
		StaleAllow,
	}
}

// byName resolves a directive's analyzer name (full or alias) against the
// suite; ok is false for unknown names.
func byName(name string, suite []*Analyzer) (*Analyzer, bool) {
	for _, a := range suite {
		if a.Name == name || a.Alias == name {
			return a, true
		}
	}
	return nil, false
}

// suppression is one parsed //ranvet:allow[file] directive.
type suppression struct {
	analyzer string // full analyzer name (resolved from name or alias)
	file     string
	line     int
	column   int
	fileWide bool
	reason   string
}

// pos anchors staleallow findings to the directive itself.
func (s suppression) pos() token.Position {
	return token.Position{Filename: s.file, Line: s.line, Column: s.column}
}

const (
	directiveAllow     = "ranvet:allow"
	directiveAllowFile = "ranvet:allowfile"
)

// parseSuppressions scans every comment of the program for ranvet
// directives. Malformed directives (no reason, unknown analyzer) are
// returned as diagnostics so they fail the build like any other finding.
func parseSuppressions(prog *Program, suite []*Analyzer) ([]suppression, []Diagnostic) {
	var sups []suppression
	var bad []Diagnostic
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					var fileWide bool
					switch {
					case strings.HasPrefix(text, directiveAllowFile):
						fileWide = true
						text = strings.TrimPrefix(text, directiveAllowFile)
					case strings.HasPrefix(text, directiveAllow):
						text = strings.TrimPrefix(text, directiveAllow)
					default:
						continue
					}
					pos := prog.Fset.Position(c.Slash)
					fields := strings.Fields(text)
					if len(fields) == 0 {
						bad = append(bad, Diagnostic{Analyzer: "ranvet", Pos: pos,
							Message: "ranvet:allow directive names no analyzer"})
						continue
					}
					a, ok := byName(fields[0], suite)
					if !ok {
						bad = append(bad, Diagnostic{Analyzer: "ranvet", Pos: pos,
							Message: fmt.Sprintf("ranvet:allow names unknown analyzer %q", fields[0])})
						continue
					}
					reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), fields[0]))
					if reason == "" {
						bad = append(bad, Diagnostic{Analyzer: "ranvet", Pos: pos,
							Message: fmt.Sprintf("ranvet:allow %s needs a written reason", fields[0])})
						continue
					}
					sups = append(sups, suppression{
						analyzer: a.Name,
						file:     pos.Filename,
						line:     pos.Line,
						column:   pos.Column,
						fileWide: fileWide,
						reason:   reason,
					})
				}
			}
		}
	}
	return sups, bad
}

// matches reports whether the suppression covers the diagnostic: same
// file and analyzer, and (unless file-wide) the diagnostic sits on the
// directive's own line or the line directly below it — i.e. the directive
// is a trailing comment or sits on the line above the flagged construct.
func (s suppression) matches(d Diagnostic) bool {
	if s.analyzer != d.Analyzer || s.file != d.Pos.Filename {
		return false
	}
	return s.fileWide || d.Pos.Line == s.line || d.Pos.Line == s.line+1
}

// RunAnalyzers applies the suite to the program and returns surviving
// diagnostics, sorted by position. Suppressed findings are dropped;
// malformed suppression directives are reported; suppressions that
// matched no raw finding are reported as staleallow findings (and a
// //ranvet:allow staleallow directive can in turn excuse one of those —
// one level, so the chain terminates).
func RunAnalyzers(prog *Program, suite []*Analyzer) []Diagnostic {
	var raw []Diagnostic
	for _, a := range suite {
		name := a.Name
		report := func(pkg *Package, pos token.Pos, format string, args ...any) {
			raw = append(raw, Diagnostic{
				Analyzer: name,
				Pos:      prog.Fset.Position(pos),
				Message:  fmt.Sprintf(format, args...),
			})
		}
		a.Run(prog, report)
	}
	sups, bad := parseSuppressions(prog, suite)
	matched := make([]bool, len(sups))
	var kept []Diagnostic
	for _, d := range raw {
		suppressed := false
		for i := range sups {
			if sups[i].matches(d) {
				matched[i] = true
				suppressed = true
				// Keep scanning: another directive covering the same
				// finding (a duplicate allow) must count as used too, or
				// it would be misreported as stale.
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	// Stale pass 1: every non-staleallow directive that excused nothing.
	var stale []Diagnostic
	for i := range sups {
		if matched[i] || sups[i].analyzer == StaleAllow.Name {
			continue
		}
		stale = append(stale, Diagnostic{
			Analyzer: StaleAllow.Name,
			Pos:      sups[i].pos(),
			Message: fmt.Sprintf("stale suppression: no %s finding is silenced by this directive — delete it (re-add it, with a fresh reason, if the finding ever returns)",
				sups[i].analyzer),
		})
	}
	// Stale pass 2: staleallow directives may excuse stale findings;
	// a staleallow directive that excuses nothing is itself stale.
	for _, d := range stale {
		suppressed := false
		for i := range sups {
			if sups[i].analyzer == StaleAllow.Name && sups[i].matches(d) {
				matched[i] = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for i := range sups {
		if sups[i].analyzer == StaleAllow.Name && !matched[i] {
			kept = append(kept, Diagnostic{
				Analyzer: StaleAllow.Name,
				Pos:      sups[i].pos(),
				Message:  "stale suppression: this ranvet:allow staleallow directive excuses no stale directive — delete it",
			})
		}
	}
	kept = append(kept, bad...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// inspect walks every file of the package in source order, calling fn for
// each node; fn returning false prunes the subtree.
func (p *Package) inspect(fn func(n ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// SPSCSingle enforces the single-producer/single-consumer contract of the
// engine's lock-free rings at review time instead of under -race. Two
// directive families feed it:
//
//	//ranvet:spsc produce  – on a method: the producer-side entry of an
//	    SPSC type (ring.push)
//	//ranvet:spsc consume  – the consumer-side entry (ring.popN)
//	//ranvet:goroutine <label> – on a function: a goroutine root (a
//	    goroutine body, or an entry point with a documented single-caller
//	    contract). Functions sharing a label are alternative bodies of
//	    the same goroutine role and never run together.
//
// For every call site of a produce (resp. consume) method the analyzer
// computes which goroutine-root labels can reach it through the static
// call graph. Two findings follow:
//
//   - a single call site reachable from two or more labels: two
//     different goroutines can execute this push/pop
//   - call sites of one SPSC side spanning two or more labels between
//     them: a second producer (or drainer) exists somewhere in the module
//
// Call sites unreachable from any labeled root (tests are not loaded;
// examples drive the engine from an unannotated main) are out of scope —
// they cannot race a labeled goroutine that is not running.
//
// The deterministic inline mode deliberately violates the letter of the
// contract: the producer drains streams on the spot while workers are
// not spawned, so a handful of consume sites are reachable from both the
// producer and the shard-worker labels. Those sites carry //ranvet:allow
// spscsingle <reason> directives spelling out the mode exclusivity; any
// new cross-goroutine call path fires at its own (unsuppressed) site.
var SPSCSingle = &Analyzer{
	Name:  "spscsingle",
	Alias: "spsc",
	Doc:   "checks SPSC ring push/pop call sites against //ranvet:goroutine roots",
	Run:   runSPSCSingle,
}

const (
	spscDirective      = "ranvet:spsc"
	goroutineDirective = "ranvet:goroutine"
)

// spscMethod is one declared SPSC entry: the method's funcKey plus the
// side it implements and a printable name.
type spscMethod struct {
	key  string
	side string // "produce" or "consume"
	name string
}

func runSPSCSingle(prog *Program, report Reporter) {
	g := prog.graph()
	methods := collectSPSCMethods(prog, report)
	if len(methods) == 0 {
		return
	}
	labels := collectGoroutineRoots(prog, report)
	if len(labels) == 0 {
		return
	}
	// Reachability per label: which functions can each goroutine role
	// execute?
	reachable := map[string]map[string]bool{}
	labelNames := make([]string, 0, len(labels))
	for label, roots := range labels {
		visited, _ := g.reach(roots)
		reachable[label] = visited
		labelNames = append(labelNames, label)
	}
	sort.Strings(labelNames)

	// Index the SPSC methods by funcKey for call-site matching.
	byKey := map[string]*spscMethod{}
	for i := range methods {
		byKey[methods[i].key] = &methods[i]
	}

	// One pass over every function body: record each call site of an
	// SPSC method together with the labels that reach the enclosing
	// function.
	type site struct {
		pkg    *Package
		pos    ast.Node
		labels []string
	}
	sites := map[*spscMethod][]site{}
	for key, node := range g.funcs {
		var enclosing []string
		for _, label := range labelNames {
			if reachable[label][key] {
				enclosing = append(enclosing, label)
			}
		}
		if len(enclosing) == 0 {
			continue
		}
		node := node
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := calleeFunc(node.pkg.Info, sel)
			if !ok {
				return true
			}
			m, ok := byKey[funcKey(fn)]
			if !ok {
				return true
			}
			sites[m] = append(sites[m], site{pkg: node.pkg, pos: call, labels: enclosing})
			return true
		})
	}

	for i := range methods {
		m := &methods[i]
		ss := sites[m]
		if len(ss) == 0 {
			continue
		}
		union := map[string]bool{}
		for _, s := range ss {
			for _, l := range s.labels {
				union[l] = true
			}
		}
		var all []string
		for l := range union {
			all = append(all, l)
		}
		sort.Strings(all)
		role := "producer"
		if m.side == "consume" {
			role = "drainer"
		}
		for _, s := range ss {
			switch {
			case len(s.labels) >= 2:
				report(s.pkg, s.pos.Pos(),
					"%s call reachable from %d goroutine roots (%s): two goroutines can execute this %s side of the SPSC ring",
					m.name, len(s.labels), strings.Join(s.labels, ", "), m.side)
			case len(union) >= 2:
				report(s.pkg, s.pos.Pos(),
					"%s has a second %s: call sites span goroutine roots %s — an SPSC ring admits exactly one (this site runs under %q)",
					m.name, role, strings.Join(all, ", "), s.labels[0])
			}
		}
	}
}

// collectSPSCMethods parses //ranvet:spsc directives on method
// declarations. A directive with a side other than produce/consume, or
// on a non-method, is reported.
func collectSPSCMethods(prog *Program, report Reporter) []spscMethod {
	var out []spscMethod
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				args, ok := directiveArgs(fd.Doc, spscDirective)
				if !ok {
					continue
				}
				if len(args) != 1 || (args[0] != "produce" && args[0] != "consume") {
					report(pkg, fd.Pos(), "ranvet:spsc wants exactly one of produce|consume, got %q", strings.Join(args, " "))
					continue
				}
				if fd.Recv == nil {
					report(pkg, fd.Pos(), "ranvet:spsc must annotate a method of the SPSC type")
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				out = append(out, spscMethod{key: funcKey(obj), side: args[0], name: displayName(obj)})
			}
		}
	}
	return out
}

// collectGoroutineRoots parses //ranvet:goroutine <label> directives,
// grouping funcKeys by label.
func collectGoroutineRoots(prog *Program, report Reporter) map[string][]string {
	labels := map[string][]string{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				args, ok := directiveArgs(fd.Doc, goroutineDirective)
				if !ok {
					continue
				}
				if len(args) != 1 {
					report(pkg, fd.Pos(), "ranvet:goroutine wants exactly one label, got %q", strings.Join(args, " "))
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				labels[args[0]] = append(labels[args[0]], funcKey(obj))
			}
		}
	}
	return labels
}

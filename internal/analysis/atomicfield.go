package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicField catches the mixed-access race the race detector only finds
// when a test gets lucky: a struct field that is touched through
// sync/atomic somewhere (atomic.AddUint64(&s.f, 1)) and by a plain load
// or store somewhere else. Once one access site is atomic, every access
// must be — a plain read can tear or be reordered, and a plain write
// silently loses increments. The scan is whole-program: the atomic
// increment typically lives in an app's hot path while the plain read
// hides in an example or experiment harness three packages away.
//
// The idiomatic fix is to change the field to an atomic.Uint64 (or
// friends), which makes mixed access unrepresentable; that is what the
// repo's app counters do.
var AtomicField = &Analyzer{
	Name:  "atomicfield",
	Alias: "atomic",
	Doc:   "flags struct fields accessed both atomically and plainly",
	Run:   runAtomicField,
}

// fieldKey canonically identifies a struct field across packages.
type fieldKey struct {
	pkg   string // declaring package path
	typ   string // named struct type
	field string
}

// fieldOf resolves a selector expression to the struct field it denotes,
// keyed by the field's declaring named type.
func fieldOf(pkg *Package, sel *ast.SelectorExpr) (fieldKey, bool) {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return fieldKey{}, false
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !v.IsField() || v.Pkg() == nil {
		return fieldKey{}, false
	}
	// Walk to the named type that declares the (possibly embedded) field.
	t := s.Recv()
	for _, idx := range s.Index()[:len(s.Index())-1] {
		t = fieldAt(t, idx).Type()
	}
	named := namedOf(t)
	if named == nil {
		return fieldKey{}, false
	}
	return fieldKey{pkg: v.Pkg().Path(), typ: named.Obj().Name(), field: v.Name()}, true
}

func fieldAt(t types.Type, i int) *types.Var {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	return t.Underlying().(*types.Struct).Field(i)
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func runAtomicField(prog *Program, report Reporter) {
	type site struct {
		pkg *Package
		pos token.Pos
	}
	atomicSites := map[fieldKey]site{} // first atomic access per field
	atomicArgs := map[token.Pos]bool{} // selector positions inside atomic call args

	// Pass 1: record fields whose address is passed to a sync/atomic call.
	for _, pkg := range prog.Packages {
		pkg.inspect(func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := calleeFunc(pkg.Info, sel)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				fsel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				key, ok := fieldOf(pkg, fsel)
				if !ok {
					continue
				}
				atomicArgs[fsel.Pos()] = true
				if _, dup := atomicSites[key]; !dup {
					atomicSites[key] = site{pkg: pkg, pos: fsel.Pos()}
				}
			}
			return true
		})
	}
	if len(atomicSites) == 0 {
		return
	}

	// Pass 2: any other access to those fields is a mixed-access race.
	type finding struct {
		pkg *Package
		pos token.Pos
		key fieldKey
	}
	var findings []finding
	for _, pkg := range prog.Packages {
		pkg.inspect(func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if atomicArgs[sel.Pos()] {
				return true
			}
			key, ok := fieldOf(pkg, sel)
			if !ok {
				return true
			}
			if _, hot := atomicSites[key]; hot {
				findings = append(findings, finding{pkg: pkg, pos: sel.Pos(), key: key})
			}
			return true
		})
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		at := atomicSites[f.key]
		report(f.pkg, f.pos,
			"field %s.%s.%s is accessed with sync/atomic at %s; this plain access is a data race — use atomic ops everywhere or change the field to an atomic type",
			shortPkg(f.key.pkg), f.key.typ, f.key.field, prog.Fset.Position(at.pos))
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The shared reachability layer. PR 4's hotpathalloc carried its own
// call-graph walker; the v2 analyzers (detflow, spscsingle) reason over
// the same graph from different root sets, so the walker lives here once:
// a whole-module index of function declarations, static call edges, and a
// BFS from annotated roots that remembers how each function was reached.
//
// Root annotations are doc-comment directives:
//
//	//ranvet:hotpath            – per-frame datapath root (hotpathalloc)
//	//ranvet:detpath            – deterministic-inline-mode root (detflow)
//	//ranvet:goroutine <label>  – a goroutine root for spscsingle: the
//	    function is a goroutine body or carries a documented single-caller
//	    contract tying it to one goroutine. The label names the role
//	    (e.g. "producer", "shard-worker"); two functions sharing a label
//	    are alternative bodies of the same goroutine, never live together.
//
// A directive on a type declaration roots the type's entire method set —
// the pooled-scratch-object shape (bfp.Transcoder) whose every method
// runs in the annotated regime.

// funcNode is one function with a body in the analyzed module.
type funcNode struct {
	pkg  *Package
	decl *ast.FuncDecl
	name string // printable, e.g. (*shard).process
}

// funcKey canonically identifies a function across packages: the
// *types.Func objects differ between a package's own check and an import
// via export data, but FullName strings agree.
func funcKey(fn *types.Func) string { return fn.FullName() }

// callGraph is the whole-module static call graph: every declared
// function plus its directly-called module functions. Interface dispatch
// and func-typed values are unresolvable statically and absent — exactly
// why datapath roots are annotated per implementation.
type callGraph struct {
	funcs   map[string]*funcNode
	callees map[string][]string
}

// buildCallGraph indexes every function declaration in the module and
// resolves its static callees once; analyzers share the result.
func buildCallGraph(prog *Program) *callGraph {
	g := &callGraph{
		funcs:   map[string]*funcNode{},
		callees: map[string][]string{},
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcKey(obj)
				g.funcs[key] = &funcNode{pkg: pkg, decl: fd, name: displayName(obj)}
			}
		}
	}
	for key, node := range g.funcs {
		g.callees[key] = staticCallees(node)
	}
	return g
}

// directiveRoots returns the funcKeys rooted by the given directive:
// directly annotated functions plus every method of an annotated type.
// Directives with arguments match on the directive word alone, so
// callers re-parse arguments with directiveArgs when they need them.
func directiveRoots(prog *Program, g *callGraph, directive string) []string {
	rootTypes := annotatedTypes(prog, directive)
	var roots []string
	seen := map[string]bool{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := funcKey(obj)
				if (hasDirective(fd.Doc, directive) || isAnnotatedTypeMethod(obj, rootTypes)) && !seen[key] {
					seen[key] = true
					roots = append(roots, key)
				}
			}
		}
	}
	return roots
}

// annotatedTypes collects the named types whose declaration carries the
// directive (on the TypeSpec or its enclosing GenDecl).
func annotatedTypes(prog *Program, directive string) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if hasDirective(gd.Doc, directive) || hasDirective(ts.Doc, directive) {
						if obj := pkg.Info.Defs[ts.Name]; obj != nil {
							out[obj] = true
						}
					}
				}
			}
		}
	}
	return out
}

// isAnnotatedTypeMethod reports whether fn is a method whose receiver's
// named type carries the type-level directive.
func isAnnotatedTypeMethod(fn *types.Func, rootTypes map[types.Object]bool) bool {
	if len(rootTypes) == 0 {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && rootTypes[named.Obj()]
}

// reach BFS-walks the graph from roots. The returned parent map records
// how each function was first reached (roots map to ""), so diagnostics
// can render the chain back to a root with chainTo.
func (g *callGraph) reach(roots []string) (visited map[string]bool, parent map[string]string) {
	visited = map[string]bool{}
	parent = map[string]string{}
	queue := append([]string(nil), roots...)
	for _, r := range roots {
		visited[r] = true
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		if g.funcs[key] == nil {
			continue
		}
		for _, callee := range g.callees[key] {
			if visited[callee] {
				continue
			}
			visited[callee] = true
			parent[callee] = key
			queue = append(queue, callee)
		}
	}
	return visited, parent
}

// chainTo renders the call path from a root down to key.
func (g *callGraph) chainTo(key string, parent map[string]string) string {
	var names []string
	for k := key; k != ""; k = parent[k] {
		if n := g.funcs[k]; n != nil {
			names = append(names, n.name)
		}
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

// directiveArgs returns the argument words of the first matching
// directive in the doc comment ("//ranvet:goroutine producer" yields
// ["producer"]), and whether the directive is present at all.
func directiveArgs(doc *ast.CommentGroup, directive string) ([]string, bool) {
	if doc == nil {
		return nil, false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == directive {
			return nil, true
		}
		if strings.HasPrefix(text, directive+" ") {
			return strings.Fields(strings.TrimPrefix(text, directive+" ")), true
		}
	}
	return nil, false
}

// displayName renders a function the way diagnostics read best:
// pkg.Func or (*pkg.Recv).Method.
func displayName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	pkg := ""
	if fn.Pkg() != nil {
		pkg = shortPkg(fn.Pkg().Path()) + "."
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		if named, ok := t.(*types.Named); ok {
			return "(" + ptr + pkg + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// hasDirective reports whether a doc comment carries the given directive
// (exact word: "ranvet:hotpath" does not match "ranvet:hotpathx").
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	_, ok := directiveArgs(doc, directive)
	return ok
}

// staticCallees returns the module functions node calls directly: plain
// function calls and method calls on concrete receivers. Interface
// dispatch and func values are unresolvable statically and skipped.
func staticCallees(node *funcNode) []string {
	info := node.pkg.Info
	var out []string
	seen := map[string]bool{}
	add := func(fn *types.Func) {
		if fn == nil || fn.Pkg() == nil {
			return
		}
		key := funcKey(fn)
		if !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fn, ok := info.Uses[fun].(*types.Func); ok {
				add(fn)
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[fun]; ok {
				// Method (or method-value) call; skip interface dispatch.
				if !types.IsInterface(sel.Recv()) {
					if fn, ok := sel.Obj().(*types.Func); ok {
						add(fn)
					}
				}
			} else if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
				add(fn) // package-qualified call
			}
		}
		return true
	})
	return out
}

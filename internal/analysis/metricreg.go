package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MetricReg cross-checks the metrics registry: a counter that exists but
// is dropped on the floor between the shard datapath and the Prometheus
// scrape is worse than no counter — dashboards read zeros and nobody
// notices. Three whole-module consistency rules:
//
//   - Merge completeness: for every named struct type Stats with an
//     Add(Stats) Stats combinator, each uint64 counter field must be
//     mentioned in Add's body (composite-literal key or s.F += o.F —
//     an unmentioned field silently vanishes when snapshots merge).
//   - Snapshot completeness: a sibling method named snapshot/Snapshot
//     that builds the Stats value through a composite literal must key
//     every counter field (a missing key reads as zero forever).
//   - Export completeness: a sibling function named WriteMetrics must
//     read every counter field of Stats (st.F somewhere in its body),
//     so every counter the datapath maintains reaches /metrics.
//
// And one for the event-series side:
//
//   - Every KPI* string constant (the telemetry bus series names) must
//     have a recording site: a use anywhere in the module outside its
//     own declaration. A KPI nobody publishes is a dashboard query that
//     can never return data.
var MetricReg = &Analyzer{
	Name:  "metricreg",
	Alias: "metric",
	Doc:   "cross-checks Stats counters against Add/snapshot/WriteMetrics and KPI consts against recording sites",
	Run:   runMetricReg,
}

func runMetricReg(prog *Program, report Reporter) {
	for _, pkg := range prog.Packages {
		checkStatsRegistry(pkg, report)
	}
	checkKPIConsts(prog, report)
}

// statsType resolves the package's named type "Stats" when it is a struct
// with an Add(Stats) Stats method; nil otherwise.
func statsType(pkg *Package) (*types.Named, *types.Struct) {
	obj, ok := pkg.Pkg.Scope().Lookup("Stats").(*types.TypeName)
	if !ok {
		return nil, nil
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return nil, nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != "Add" {
			continue
		}
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() == 1 && sig.Results().Len() == 1 &&
			types.Identical(sig.Params().At(0).Type(), named) &&
			types.Identical(sig.Results().At(0).Type(), named) {
			return named, st
		}
	}
	return nil, nil
}

// counterFields lists the uint64 fields of the Stats struct — the
// counters the consistency rules cover (state enums, trace pointers and
// nested readouts are merged by other means and skipped).
func counterFields(st *types.Struct) []string {
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		b, ok := f.Type().Underlying().(*types.Basic)
		if ok && b.Kind() == types.Uint64 {
			out = append(out, f.Name())
		}
	}
	return out
}

func checkStatsRegistry(pkg *Package, report Reporter) {
	named, st := statsType(pkg)
	if named == nil {
		return
	}
	counters := counterFields(st)
	if len(counters) == 0 {
		return
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			switch {
			case fd.Name.Name == "Add" && isStatsMethod(pkg, fd, named):
				missing := unmentionedFields(pkg, fd, counters)
				for _, m := range missing {
					report(pkg, fd.Pos(),
						"Stats.%s is not merged in %s.Add: snapshots combined with Add silently drop the counter",
						m, shortPkg(pkg.Pkg.Path()))
				}
			case strings.EqualFold(fd.Name.Name, "snapshot") && returnsStats(pkg, fd, named):
				checkSnapshotLiterals(pkg, fd, named, counters, report)
			case fd.Name.Name == "WriteMetrics":
				missing := unmentionedFields(pkg, fd, counters)
				for _, m := range missing {
					report(pkg, fd.Pos(),
						"Stats.%s is never read in %s.WriteMetrics: the counter is maintained but not exported to /metrics",
						m, shortPkg(pkg.Pkg.Path()))
				}
			}
		}
	}
}

// isStatsMethod reports whether fd is declared on the Stats type (value
// or pointer receiver).
func isStatsMethod(pkg *Package, fd *ast.FuncDecl, named *types.Named) bool {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	t := pkg.Info.Types[fd.Recv.List[0].Type].Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.Identical(t, named)
}

// returnsStats reports whether the function's (single) result is Stats.
func returnsStats(pkg *Package, fd *ast.FuncDecl, named *types.Named) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 {
		return false
	}
	t := pkg.Info.Types[fd.Type.Results.List[0].Type].Type
	return t != nil && types.Identical(t, named)
}

// unmentionedFields returns the counter fields never selected (st.F) on a
// Stats-typed operand anywhere in the body, sorted for stable output.
func unmentionedFields(pkg *Package, fd *ast.FuncDecl, counters []string) []string {
	mentioned := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if s, ok := pkg.Info.Selections[e]; ok && s.Kind() == types.FieldVal {
				mentioned[e.Sel.Name] = true
			}
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						mentioned[id.Name] = true
					}
				}
			}
		}
		return true
	})
	var missing []string
	for _, c := range counters {
		if !mentioned[c] {
			missing = append(missing, c)
		}
	}
	sort.Strings(missing)
	return missing
}

// checkSnapshotLiterals requires every Stats composite literal inside a
// snapshot method to key every counter field.
func checkSnapshotLiterals(pkg *Package, fd *ast.FuncDecl, named *types.Named, counters []string, report Reporter) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		t := pkg.Info.Types[cl].Type
		if t == nil || !types.Identical(t, named) {
			return true
		}
		keyed := map[string]bool{}
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				return true // positional literal: the compiler enforces completeness
			}
			if id, ok := kv.Key.(*ast.Ident); ok {
				keyed[id.Name] = true
			}
		}
		var missing []string
		for _, c := range counters {
			if !keyed[c] {
				missing = append(missing, c)
			}
		}
		sort.Strings(missing)
		for _, m := range missing {
			report(pkg, cl.Pos(),
				"Stats.%s is missing from the snapshot literal in %s.%s: the counter reads zero forever",
				m, shortPkg(pkg.Pkg.Path()), fd.Name.Name)
		}
		return true
	})
}

// checkKPIConsts requires every KPI* string constant to be used somewhere
// in the module beyond its declaration.
func checkKPIConsts(prog *Program, report Reporter) {
	type kpiConst struct {
		pkg *Package
		pos token.Pos
		obj types.Object
	}
	var decls []kpiConst
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if !strings.HasPrefix(name.Name, "KPI") {
							continue
						}
						obj := pkg.Info.Defs[name]
						if obj == nil {
							continue
						}
						b, ok := obj.Type().Underlying().(*types.Basic)
						if !ok || b.Info()&types.IsString == 0 {
							continue
						}
						decls = append(decls, kpiConst{pkg: pkg, pos: name.Pos(), obj: obj})
					}
				}
			}
		}
	}
	if len(decls) == 0 {
		return
	}
	// A series is identified by its string value, not the constant's
	// identity: a facade alias (ranbooster.KPIBreaker = core.KPIBreaker)
	// is recorded whenever any constant carrying the same series name is.
	usedValue := map[string]bool{}
	for _, pkg := range prog.Packages {
		for _, obj := range pkg.Info.Uses {
			c, ok := obj.(*types.Const)
			if !ok || c.Pkg() == nil || !strings.HasPrefix(c.Name(), "KPI") {
				continue
			}
			usedValue[c.Val().ExactString()] = true
		}
	}
	for _, d := range decls {
		c := d.obj.(*types.Const)
		if !usedValue[c.Val().ExactString()] {
			report(d.pkg, d.pos,
				"KPI constant %s has no recording site: nothing in the module publishes or reads this series name",
				d.obj.Name())
		}
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// StateMach turns the engine's informal state-machine prose (the streamQ
// idle/queued/running FIFO argument, the breaker Open/Half-Open/Closed
// cycle, the shard health ladder) into a machine-checked transition
// table. A struct field is declared a state machine with a directive in
// its doc comment:
//
//	//ranvet:statemach wsIdle->wsQueued wsQueued->wsRunning ...
//	state atomic.Uint32
//
// Each A->B pair names two constants visible in the declaring package;
// a word that resolves to no constant is itself a finding (a table
// naming a misspelled or deleted state silently checks nothing). The
// analyzer then inspects every write to a declared field, module-wide:
//
//   - field.Store(v) / field.Swap(v): v must be a named state constant
//     (possibly behind an integer conversion), and some table entry must
//     target it — a Store is a transition whose origin the code did not
//     check, so only the destination can be validated statically
//   - field.CompareAndSwap(old, new): both must be named constants and
//     the exact (old -> new) pair must be in the table
//   - plain assignment to the field: same rule as Store
//
// A Store argument may also be a local variable, provided the analyzer
// can prove the variable only ever holds named states: every assignment
// to it within the enclosing function must be either a named state
// constant (each one validated as a transition target) or the field's
// own freshly-loaded value (`next := cur` where cur came from
// field.Load() — writing the current state back is not a transition).
// This admits the idiomatic decide-then-commit shape without weakening
// the check: the decision branches themselves must name the states.
//
// Anything else — arithmetic (health = cur - 1), a function result, a
// parameter — is flagged even when today's value happens to land on a
// legal state: the next state inserted into the enum turns the
// computation into an undeclared transition with no diff to review.
// Every transition the code makes is either in the table or a
// build-time finding.
var StateMach = &Analyzer{
	Name:  "statemach",
	Alias: "state",
	Doc:   "checks stores to //ranvet:statemach fields against the declared transition table",
	Run:   runStateMach,
}

const statemachDirective = "ranvet:statemach"

// stateTable is one declared state field: the set of legal (from, to)
// transition pairs, by constant name.
type stateTable struct {
	field fieldKey
	pairs map[[2]string]bool
	tos   map[string]bool // transition targets (for Store/assign checks)
	decl  token.Pos
	pkg   *Package
}

func runStateMach(prog *Program, report Reporter) {
	tables := collectStateTables(prog, report)
	if len(tables) == 0 {
		return
	}
	for _, pkg := range prog.Packages {
		checkStateStores(pkg, tables, report)
	}
}

// collectStateTables parses every //ranvet:statemach field directive in
// the module. Malformed tables (odd grammar, names that resolve to no
// constant in the declaring package) are reported immediately.
func collectStateTables(prog *Program, report Reporter) map[fieldKey]*stateTable {
	tables := map[fieldKey]*stateTable{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						args, ok := directiveArgs(field.Doc, statemachDirective)
						if !ok {
							continue
						}
						parseStateTable(pkg, ts, field, args, tables, report)
					}
				}
			}
		}
	}
	return tables
}

// parseStateTable validates one directive's transition list and indexes
// it under the field's canonical key.
func parseStateTable(pkg *Package, ts *ast.TypeSpec, field *ast.Field, args []string, tables map[fieldKey]*stateTable, report Reporter) {
	if len(field.Names) != 1 {
		report(pkg, field.Pos(), "ranvet:statemach must annotate exactly one named field")
		return
	}
	name := field.Names[0]
	tbl := &stateTable{
		field: fieldKey{pkg: pkg.Pkg.Path(), typ: ts.Name.Name, field: name.Name},
		pairs: map[[2]string]bool{},
		tos:   map[string]bool{},
		decl:  field.Pos(),
		pkg:   pkg,
	}
	if len(args) == 0 {
		report(pkg, field.Pos(), "ranvet:statemach on %s.%s declares no transitions", ts.Name.Name, name.Name)
		return
	}
	ok := true
	for _, a := range args {
		from, to, found := strings.Cut(a, "->")
		if !found || from == "" || to == "" {
			report(pkg, field.Pos(), "ranvet:statemach transition %q is not of the form From->To", a)
			ok = false
			continue
		}
		for _, cname := range []string{from, to} {
			if !isPackageConst(pkg, cname) {
				report(pkg, field.Pos(),
					"ranvet:statemach transition %q names %s, which is not a constant in package %s — the table checks nothing",
					a, cname, shortPkg(pkg.Pkg.Path()))
				ok = false
			}
		}
		tbl.pairs[[2]string{from, to}] = true
		tbl.tos[to] = true
	}
	if ok {
		tables[tbl.field] = tbl
	}
}

// isPackageConst reports whether name resolves to a constant at the
// declaring package's scope.
func isPackageConst(pkg *Package, name string) bool {
	_, obj := pkg.Pkg.Scope().LookupParent(name, token.NoPos)
	if obj == nil {
		obj = types.Universe.Lookup(name)
	}
	_, isConst := obj.(*types.Const)
	return isConst
}

// checkStateStores flags writes to declared state fields whose transition
// is not in the table. The walk tracks the enclosing function so a store
// of a local variable can be resolved through its assignments.
func checkStateStores(pkg *Package, tables map[fieldKey]*stateTable, report Reporter) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.CallExpr:
					sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					// The receiver chain of an atomic method call: state.Store(v)
					// selects Store on the field selector sel.X.
					fsel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
					if !ok {
						return true
					}
					key, ok := fieldOf(pkg, fsel)
					if !ok {
						return true
					}
					tbl, declared := tables[key]
					if !declared {
						return true
					}
					switch sel.Sel.Name {
					case "Store", "Swap":
						if len(e.Args) == 1 {
							checkStateTo(pkg, tbl, fd, e.Args[0], e.Pos(), sel.Sel.Name, report)
						}
					case "CompareAndSwap":
						if len(e.Args) == 2 {
							checkStatePair(pkg, tbl, e.Args[0], e.Args[1], e.Pos(), report)
						}
					}
				case *ast.AssignStmt:
					for i, lhs := range e.Lhs {
						fsel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						key, ok := fieldOf(pkg, fsel)
						if !ok {
							continue
						}
						tbl, declared := tables[key]
						if !declared {
							continue
						}
						if i < len(e.Rhs) && len(e.Lhs) == len(e.Rhs) {
							checkStateTo(pkg, tbl, fd, e.Rhs[i], e.Pos(), "assignment", report)
						}
					}
				}
				return true
			})
		}
	}
}

// checkStateTo validates a Store/Swap/assignment destination: a named
// constant (or a provably state-valued local variable) whose every
// target is in the table.
func checkStateTo(pkg *Package, tbl *stateTable, fn *ast.FuncDecl, arg ast.Expr, pos token.Pos, how string, report Reporter) {
	var names []string
	if name, ok := stateConstName(pkg, arg); ok {
		names = []string{name}
	} else if resolved, ok := localStateConsts(pkg, tbl, fn, arg); ok {
		names = resolved
	} else {
		report(pkg, pos,
			"%s to state field %s.%s stores a computed value, not a named state constant — every transition must be declared in the ranvet:statemach table at %s",
			how, tbl.field.typ, tbl.field.field, pkg.fset.Position(tbl.decl))
		return
	}
	for _, name := range names {
		if !tbl.tos[name] {
			report(pkg, pos,
				"%s of %s into state field %s.%s is an undeclared transition target — add From->%s to the ranvet:statemach table at %s or fix the store",
				how, name, tbl.field.typ, tbl.field.field, name, pkg.fset.Position(tbl.decl))
		}
	}
}

// localStateConsts resolves a store argument that is a local variable to
// the set of named constants it can hold. It accepts only shapes the
// analyzer can prove: every assignment to the variable inside fn is a
// named state constant, or the declared field's own freshly-loaded value
// (no transition). Anything else — arithmetic, a call result, a
// parameter, an unpacked tuple — refuses resolution.
func localStateConsts(pkg *Package, tbl *stateTable, fn *ast.FuncDecl, arg ast.Expr) ([]string, bool) {
	id, ok := unconvertIdent(pkg, arg)
	if !ok {
		return nil, false
	}
	obj, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return nil, false
	}
	vals := assignedValues(pkg, fn, obj)
	if len(vals) == 0 {
		return nil, false // a parameter, or assigned outside fn
	}
	var consts []string
	for _, rhs := range vals {
		if name, isConst := stateConstName(pkg, rhs); isConst {
			consts = append(consts, name)
			continue
		}
		if !isFieldSelfValue(pkg, tbl, fn, rhs, 4) {
			return nil, false
		}
	}
	return consts, true
}

// assignedValues collects every right-hand side assigned to obj inside
// fn (declarations included); an unattributable write — multi-value
// unpacking, a var declaration without initializer — is recorded as nil
// so the caller refuses resolution.
func assignedValues(pkg *Package, fn *ast.FuncDecl, obj types.Object) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				lobj := pkg.Info.Defs[lid]
				if lobj == nil {
					lobj = pkg.Info.Uses[lid]
				}
				if lobj != obj {
					continue
				}
				if len(st.Lhs) == len(st.Rhs) {
					out = append(out, st.Rhs[i])
				} else {
					out = append(out, nil)
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if pkg.Info.Defs[name] != obj {
					continue
				}
				if i < len(st.Values) && len(st.Names) == len(st.Values) {
					out = append(out, st.Values[i])
				} else {
					out = append(out, nil)
				}
			}
		}
		return true
	})
	return out
}

// isFieldSelfValue reports whether e is (a conversion of) the declared
// field's own loaded value: field.Load() directly, or a local variable
// all of whose assignments are themselves self-values (depth-bounded).
func isFieldSelfValue(pkg *Package, tbl *stateTable, fn *ast.FuncDecl, e ast.Expr, depth int) bool {
	if e == nil || depth == 0 {
		return false
	}
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if len(call.Args) == 1 {
			if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
				return isFieldSelfValue(pkg, tbl, fn, call.Args[0], depth)
			}
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Load" || len(call.Args) != 0 {
			return false
		}
		fsel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return false
		}
		key, ok := fieldOf(pkg, fsel)
		return ok && key == tbl.field
	}
	if id, ok := e.(*ast.Ident); ok {
		obj, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return false
		}
		vals := assignedValues(pkg, fn, obj)
		if len(vals) == 0 {
			return false
		}
		for _, v := range vals {
			if !isFieldSelfValue(pkg, tbl, fn, v, depth-1) {
				return false
			}
		}
		return true
	}
	return false
}

// unconvertIdent unwraps type conversions down to a plain identifier.
func unconvertIdent(pkg *Package, e ast.Expr) (*ast.Ident, bool) {
	for {
		e = ast.Unparen(e)
		if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
			if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
				e = call.Args[0]
				continue
			}
		}
		id, ok := e.(*ast.Ident)
		return id, ok
	}
}

// checkStatePair validates a CompareAndSwap against the exact declared
// (from -> to) pairs.
func checkStatePair(pkg *Package, tbl *stateTable, old, new ast.Expr, pos token.Pos, report Reporter) {
	from, okFrom := stateConstName(pkg, old)
	to, okTo := stateConstName(pkg, new)
	if !okFrom || !okTo {
		report(pkg, pos,
			"CompareAndSwap on state field %s.%s uses a computed value, not named state constants — every transition must be declared in the ranvet:statemach table at %s",
			tbl.field.typ, tbl.field.field, pkg.fset.Position(tbl.decl))
		return
	}
	if !tbl.pairs[[2]string{from, to}] {
		report(pkg, pos,
			"CompareAndSwap %s -> %s on state field %s.%s is not in the ranvet:statemach table at %s — declare the transition or fix the store",
			from, to, tbl.field.typ, tbl.field.field, pkg.fset.Position(tbl.decl))
	}
}

// stateConstName unwraps integer conversions (uint32(BreakerOpen)) down
// to a plain identifier and reports the named constant it denotes.
func stateConstName(pkg *Package, e ast.Expr) (string, bool) {
	for {
		ex := ast.Unparen(e)
		if call, ok := ex.(*ast.CallExpr); ok && len(call.Args) == 1 {
			if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
				e = call.Args[0]
				continue
			}
		}
		var id *ast.Ident
		switch v := ex.(type) {
		case *ast.Ident:
			id = v
		case *ast.SelectorExpr:
			id = v.Sel // pkg-qualified constant from another package
		default:
			return "", false
		}
		if _, isConst := pkg.Info.Uses[id].(*types.Const); !isConst {
			return "", false
		}
		return id.Name, true
	}
}

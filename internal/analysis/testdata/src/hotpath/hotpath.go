// Package hotpath is the hotpathalloc fixture: one annotated root, one
// transitively reached helper full of allocating constructs, and the
// negatives the analyzer must stay quiet about.
package hotpath

import "fmt"

type config struct{ n int }

// process is the hot-path root; everything it reaches is checked.
//
//ranvet:hotpath
func process(frames [][]byte) {
	for _, f := range frames {
		handle(f)
	}
}

func handle(f []byte) {
	m := make([]int, len(f)) // want `make allocates`
	_ = m
	c := &config{} // want `&composite literal`
	_ = c
	s := []int{1, 2} // want `slice/map literal`
	_ = s
	msg := "frame:" + string(rune(f[0])) // want `string concatenation`
	_ = msg
	fmt.Println(len(f)) // want `fmt\.Println allocates`
	fn := func() {}     // want `function literal`
	fn()
	_ = any(len(f)) // want `conversion to interface boxes`

	// Caller-owned destination: the append is the caller's amortization.
	_ = grow(nil, 1)

	// Panic-only path: a recover-bearing closure is the supervision
	// quarantine shape and stays unflagged, even when it allocates.
	defer func() {
		if r := recover(); r != nil {
			_ = fmt.Sprintf("recovered: %v", r)
		}
	}()

	// Crash path: allocating the message right before dying is fine.
	if len(f) == 0 {
		panic(fmt.Sprintf("empty frame %d", len(f)))
	}

	//ranvet:allow alloc per-batch table, amortized across the whole batch
	tbl := make([]int, 8)
	_ = tbl
}

// grow appends to its parameter: not flagged, the buffer is caller-owned.
func grow(dst []byte, b byte) []byte {
	return append(dst, b)
}

// cold is never reached from a root: allocate freely.
func cold() []int {
	return make([]int, 64)
}

// scratch models a pooled per-frame object (the bfp.Transcoder shape):
// the type-level directive roots every method without annotating each.
//
//ranvet:hotpath
type scratch struct{ buf []byte }

func (s *scratch) fill(n int) {
	b := make([]byte, n) // want `make allocates`
	_ = b
	// Receiver-owned destination: the pool amortizes the growth.
	s.buf = append(s.buf, 0)
}

func (s scratch) report() {
	fmt.Println(len(s.buf)) // want `fmt\.Println allocates`
}

// plain is not annotated and unreachable from any root: allocate freely.
type plain struct{ buf []byte }

func (p *plain) fill() {
	p.buf = make([]byte, 16)
}

// Package clockuser is the simclock fixture: its synthetic import path
// puts it under internal/, where wall-clock reads are forbidden.
package clockuser

import "time"

func stamp() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func wait() {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
}

func ticker() *time.Ticker {
	return time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
}

// span is pure duration arithmetic: fine.
func span(d time.Duration) time.Duration {
	return d * 2
}

// construct builds an explicit instant: fine.
func construct() time.Time {
	return time.Unix(0, 0)
}

//ranvet:allow simclock daemon-only retry backoff, outside the seeded datapath
func retry() { time.Sleep(time.Second) }

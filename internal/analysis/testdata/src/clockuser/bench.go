// bench.go measures real elapsed time on purpose; the file-wide
// directive keeps simclock quiet for every use in this file.
//
//ranvet:allowfile simclock this file measures real elapsed wall time by design
package clockuser

import "time"

func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

func now() time.Time {
	return time.Now()
}

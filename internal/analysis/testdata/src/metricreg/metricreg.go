// Package metricreg is the metricreg fixture: a Stats registry whose
// Add, snapshot and WriteMetrics each drop one counter, a KPI constant
// nobody records, the value-aliased and suppressed negatives.
package metricreg

import (
	"fmt"
	"io"
)

// Stats is the counter registry under test.
type Stats struct {
	Kept    uint64
	Lost    uint64
	Skipped uint64
	note    string // non-uint64: out of scope
}

// Add forgets Lost: merged snapshots silently drop it.
func (s Stats) Add(o Stats) Stats { // want `Stats\.Lost is not merged in metricreg\.Add`
	return Stats{
		Kept:    s.Kept + o.Kept,
		Skipped: s.Skipped + o.Skipped,
	}
}

type collector struct {
	kept, lost, skipped uint64
}

// snapshot forgets to key Skipped: the counter reads zero forever.
func (c *collector) snapshot() Stats {
	return Stats{ // want `Stats\.Skipped is missing from the snapshot literal`
		Kept: c.kept,
		Lost: c.lost,
	}
}

// WriteMetrics never reads Kept.
func WriteMetrics(w io.Writer, st Stats) { // want `Stats\.Kept is never read in metricreg\.WriteMetrics`
	fmt.Fprintf(w, "lost %d\nskipped %d\n", st.Lost, st.Skipped)
}

// KPIDrop is recorded below.
const KPIDrop = "fixture.drop"

// KPIOrphan has no recording site anywhere in the module.
const KPIOrphan = "fixture.orphan" // want `KPI constant KPIOrphan has no recording site`

// KPIAlias shares KPIDrop's series name: a facade alias of a recorded
// series is recorded.
const KPIAlias = "fixture.drop"

// KPIReserved is the suppressed negative.
//
//ranvet:allow metricreg reserved series name; an external scraper records it
const KPIReserved = "fixture.reserved"

func record() string { return KPIDrop }

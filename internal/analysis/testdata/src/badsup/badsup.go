// Package badsup holds malformed suppression directives; each must be
// reported instead of silently ignored.
package badsup

//ranvet:allow alloc
func missingReason() {}

//ranvet:allow nosuchanalyzer because reasons
func unknownAnalyzer() {}

//ranvet:allow
func missingName() {}

// Package stale exercises the staleallow driver pass: a directive whose
// analyzer no longer fires is a finding, a //ranvet:allow staleallow one
// level up excuses a deliberately retained directive, and a staleallow
// directive that excuses nothing is itself stale. The expectations live
// in TestStaleAllowFixture (a finding anchored to a directive line
// cannot carry a trailing want comment of its own).
package stale

// orphaned once excused a wall-clock read that was since removed: the
// simclock directive matches nothing and must be reported.
//
//ranvet:allow simclock the scheduler shim reads the wall clock
func orphaned() {}

// kept retains its directive while the tagged variant that needs it is
// gated off; the staleallow directive above it takes the blame.
//
//ranvet:allow staleallow the directive below covers the build-tagged variant of kept
//ranvet:allow atomicfield the tagged variant touches stats plainly
func kept() {}

// overreach excuses nothing: one level of recursion, then the chain
// ends.
//
//ranvet:allow staleallow nothing below is stale
func overreach() {}

// Package statemach is the statemach fixture: a declared transition
// table, legal stores and CAS pairs, the undeclared-transition and
// computed-value positives, the local-variable decide-then-commit shapes
// (provable and unprovable), and a suppressed restore path.
package statemach

import "sync/atomic"

// Queue states.
const (
	qIdle uint32 = iota
	qRun
	qDone
)

// qBad is a constant, but no table entry targets it.
const qBad uint32 = 9

type q struct {
	// state is the declared machine.
	//
	//ranvet:statemach qIdle->qRun qRun->qDone qDone->qIdle
	state atomic.Uint32
	// plain carries no table: stores to it are unchecked.
	plain atomic.Uint32
}

// good makes only declared transitions.
func good(x *q) {
	x.state.Store(qRun)
	x.state.CompareAndSwap(qIdle, qRun)
	x.state.Swap(qDone)
	x.plain.Store(12345)
}

// badTarget stores a constant no entry targets.
func badTarget(x *q) {
	x.state.Store(qBad) // want `Store of qBad into state field q\.state is an undeclared transition target`
}

// badPair uses two declared states in an undeclared combination.
func badPair(x *q) {
	x.state.CompareAndSwap(qDone, qRun) // want `CompareAndSwap qDone -> qRun on state field q\.state is not in the ranvet:statemach table`
}

// computed stores arithmetic on the current state.
func computed(x *q) {
	x.state.Store(x.state.Load() + 1) // want `stores a computed value, not a named state constant`
}

// decideGood is the provable decide-then-commit shape: every assignment
// to next is a named declared state or the field's own loaded value.
func decideGood(x *q, ready bool) {
	cur := x.state.Load()
	next := cur
	if ready && cur == qIdle {
		next = qRun
	}
	if next != cur {
		x.state.Store(next)
	}
}

// decideBad routes an undeclared state through the local variable.
func decideBad(x *q, abort bool) {
	next := qRun
	if abort {
		next = qBad
	}
	x.state.Store(next) // want `Store of qBad into state field q\.state is an undeclared transition target`
}

// decideOpaque assigns the variable from a call: unprovable, flagged.
func decideOpaque(x *q) {
	next := pick()
	x.state.Store(next) // want `stores a computed value, not a named state constant`
}

func pick() uint32 { return qRun }

// restore is the suppressed negative: a checkpoint decode validated the
// raw value before this store.
func restore(x *q, raw uint32) {
	//ranvet:allow statemach restoring a checkpointed state; the decoder validated raw against the enum
	x.state.Store(raw)
}

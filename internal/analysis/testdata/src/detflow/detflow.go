// Package detflow is the detflow fixture: one annotated deterministic
// root, a transitively reached drain full of nondeterminism sources, the
// suppressed order-independent walk, and the negatives the analyzer must
// stay quiet about (slice range, single-case select, a map range off the
// deterministic path).
package detflow

import "sync"

type table struct {
	m  map[int]int
	sm sync.Map
}

var shared table

// ingress is the deterministic-mode entry; everything it reaches is
// checked.
//
//ranvet:detpath
func ingress(frame []byte) {
	drain(frame)
	sweepAllowed()
}

func drain(frame []byte) {
	for k := range shared.m { // want `range over a map on the deterministic path`
		_ = k
	}
	go emit(frame) // want `go statement on the deterministic path`
	ch := make(chan int, 1)
	done := make(chan int, 1)
	select { // want `multi-case select on the deterministic path`
	case v := <-ch:
		_ = v
	case v := <-done:
		_ = v
	}
	shared.sm.Range(func(k, v any) bool { return true }) // want `sync\.Map\.Range on the deterministic path`

	// Negatives: a slice range is ordered, and a single communication
	// case plus default has a deterministic winner under one goroutine.
	for i := range frame {
		_ = i
	}
	select {
	case v := <-ch:
		_ = v
	default:
	}
}

func emit([]byte) {}

// sweepAllowed is the suppressed negative: an order-independent walk
// with a written reason.
func sweepAllowed() {
	//ranvet:allow detflow the walk deletes every expired key unconditionally; no emission or counter observes the order
	for k := range shared.m {
		delete(shared.m, k)
	}
}

// setup is not reachable from the detpath root: map iteration off the
// deterministic path is fine.
func setup() {
	for k := range shared.m {
		_ = k
	}
}

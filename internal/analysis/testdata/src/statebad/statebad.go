// Package statebad is the statemach bad-table fixture: a transition
// table whose grammar or state names are wrong is itself a finding — a
// table naming a misspelled state silently checks nothing.
package statebad

import "sync/atomic"

const sOK uint32 = 0

type m struct {
	// state's table has a bad pair grammar and a name that is no
	// constant.
	//
	//ranvet:statemach sOK=>sOK sOK->sMissing
	state atomic.Uint32 // want `transition "sOK=>sOK" is not of the form From->To` `names sMissing, which is not a constant`
}

type m2 struct {
	//ranvet:statemach
	state atomic.Uint32 // want `declares no transitions`
}

// Package atomicmix is the atomicfield fixture: a field accessed through
// sync/atomic in one place and plainly in another is a data race.
package atomicmix

import "sync/atomic"

type Stats struct {
	hits   uint64
	misses uint64
}

// recordHit is the atomic access site that puts hits in scope.
func (s *Stats) recordHit() { atomic.AddUint64(&s.hits, 1) }

// read mixes in a plain load: flagged.
func (s *Stats) read() uint64 {
	return s.hits // want `accessed with sync/atomic`
}

// write mixes in a plain store: flagged.
func (s *Stats) write() {
	s.hits = 0 // want `accessed with sync/atomic`
}

// ok reads through sync/atomic: fine.
func (s *Stats) ok() uint64 {
	return atomic.LoadUint64(&s.hits)
}

// plainOnly never touches an atomic-accessed field: fine.
func (s *Stats) plainOnly() uint64 {
	s.misses++
	return s.misses
}

// reset is single-goroutine by contract and says so.
func (s *Stats) reset() {
	//ranvet:allow atomic test-only helper, called with all workers stopped
	s.hits = 0
}

// Package spsc is the spscsingle fixture: a ring with annotated
// produce/consume entries, goroutine roots that violate the
// single-producer and single-consumer contracts, the suppressed
// mode-exclusive drain, and malformed directives.
package spsc

type ring struct {
	buf  []int
	head int
	tail int
}

// push is the producer-side entry.
//
//ranvet:spsc produce
func (r *ring) push(v int) {
	r.buf = append(r.buf, v)
	r.tail++
}

// pop is the consumer-side entry.
//
//ranvet:spsc consume
func (r *ring) pop() (int, bool) {
	if r.head == r.tail {
		return 0, false
	}
	v := r.buf[r.head]
	r.head++
	return v, true
}

var shared ring

// ingest is the intended producer goroutine.
//
//ranvet:goroutine ingest
func ingest(vs []int) {
	for _, v := range vs {
		shared.push(v) // want `has a second producer: call sites span goroutine roots flush, ingest`
	}
}

// flush is a second goroutine that also pushes: both sites are flagged.
//
//ranvet:goroutine flush
func flush() {
	shared.push(0) // want `has a second producer: call sites span goroutine roots flush, ingest`
}

// drainA and drainB share one consume site: the site itself is
// executable by two goroutines.
//
//ranvet:goroutine drainA
func drainA() { drainShared() }

//ranvet:goroutine drainB
func drainB() { drainShared() }

func drainShared() {
	_, _ = shared.pop() // want `reachable from 2 goroutine roots \(drainA, drainB\)`
}

// inlineDrain is the suppressed negative: a mode-exclusive drain with a
// written reason.
//
//ranvet:goroutine inline
func inlineDrain() {
	//ranvet:allow spscsingle mode-exclusive: inlineDrain runs only when drainA/drainB are not spawned
	_, _ = shared.pop()
}

// peek carries a malformed side.
//
//ranvet:spsc sideways
func (r *ring) peek() int { return 0 } // want `ranvet:spsc wants exactly one of produce\|consume`

// extra carries a malformed label list.
//
//ranvet:goroutine two labels
func extra() {} // want `ranvet:goroutine wants exactly one label`

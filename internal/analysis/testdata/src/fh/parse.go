// Package fh is the wirebounds fixture; the import path basename puts it
// in the codec scope where payload access needs a local length check.
package fh

func unchecked(b []byte) byte {
	return b[0] // want `indexing of "b" without a preceding len\(b\) check`
}

func checked(b []byte) (byte, bool) {
	if len(b) < 1 {
		return 0, false
	}
	return b[0], true
}

func uncheckedSlice(b []byte) []byte {
	return b[2:4] // want `slicing of "b" without a preceding len\(b\) check`
}

// selfLimited bounds the slice with len(b): fine.
func selfLimited(b []byte) []byte {
	return b[:len(b)/2]
}

// lastByte indexes relative to len(b): fine.
func lastByte(b []byte) byte {
	return b[len(b)-1]
}

func uncheckedArray(b []byte) *[2]byte {
	return (*[2]byte)(b) // want `array-pointer conversion of "b"`
}

func checkedArray(b []byte) *[2]byte {
	if len(b) < 2 {
		return nil
	}
	return (*[2]byte)(b)
}

// invariant documents why the access is safe instead of checking.
func invariant(b []byte) byte {
	//ranvet:allow bounds the framing contract guarantees four bytes here
	return b[3]
}

// notBytes: int slices are out of scope, the bug class is payload parsing.
func notBytes(v []int) int {
	return v[0]
}

// Package shardapp is the shardsafe fixture: a frame handler on a type
// without the Serial marker must not write receiver state unsynchronized.
// The Context/Packet types mirror the core.App handler shape.
package shardapp

import (
	"sync"
	"sync/atomic"
)

type Context struct{}

type Packet struct{}

// Racy writes receiver fields from Handle and a helper it calls.
type Racy struct {
	count int
	m     map[int]int
}

func (r *Racy) Handle(ctx *Context, pkt *Packet) error {
	r.count++      // want `writes receiver state`
	r.m[1] = 2     // want `writes receiver state`
	delete(r.m, 3) // want `writes receiver state`
	r.note()
	return nil
}

func (r *Racy) note() {
	r.count = 7 // want `writes receiver state`
}

// Locked guards its writes with a receiver-rooted mutex: fine.
type Locked struct {
	mu sync.Mutex
	n  int
}

func (l *Locked) Handle(ctx *Context, pkt *Packet) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.n++
	return nil
}

// Serialized declares Serial(): the engine gives it one worker, so plain
// writes are fine.
type Serialized struct{ n int }

func (s *Serialized) Handle(ctx *Context, pkt *Packet) error { s.n++; return nil }

func (s *Serialized) Serial() {}

// Counted uses an atomic field: method calls are not plain writes.
type Counted struct{ n atomic.Uint64 }

func (c *Counted) Handle(ctx *Context, pkt *Packet) error {
	c.n.Add(1)
	return nil
}

// Allowed documents why its plain write is safe.
type Allowed struct{ n int }

func (a *Allowed) Handle(ctx *Context, pkt *Packet) error {
	//ranvet:allow shard deployment pins this app to a single shard by config
	a.n++
	return nil
}

// locals only: writing non-receiver state is fine.
type Clean struct{ limit int }

func (c *Clean) Handle(ctx *Context, pkt *Packet) error {
	n := 0
	n += c.limit
	_ = n
	return nil
}

package analysis

import (
	"go/ast"
	"strings"
)

// SimClock keeps the wall clock out of the simulated datapath. Everything
// under internal/ runs on internal/sim's virtual clock so that a seeded
// run — including the fault injector's schedules and the trace pipeline's
// stamps — replays bit-identically; one stray time.Now() quietly breaks
// that. The analyzer forbids wall-clock reads and wall-clock-armed timers
// in internal/ packages outside internal/sim itself. Files that measure
// real elapsed time on purpose (the benchmark harness) carry a
// //ranvet:allowfile simclock <reason> directive.
var SimClock = &Analyzer{
	Name:  "simclock",
	Alias: "simclock",
	Doc:   "forbids wall-clock reads (time.Now etc.) in internal/ outside sim",
	Run:   runSimClock,
}

// simClockBanned are the time package functions that observe or schedule
// against the wall clock. Pure arithmetic (time.Duration, time.Unix) and
// explicit construction stay legal.
var simClockBanned = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"Sleep":     true,
}

// simClockApplies reports whether the package is in scope: an internal/
// package of this module, excluding the virtual clock itself.
func simClockApplies(path string) bool {
	i := strings.Index(path, "/internal/")
	if i < 0 {
		return false
	}
	rest := path[i+len("/internal/"):]
	return rest != "sim" && !strings.HasPrefix(rest, "sim/")
}

func runSimClock(prog *Program, report Reporter) {
	for _, pkg := range prog.Packages {
		if !simClockApplies(pkg.Path) {
			continue
		}
		pkg.inspect(func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := calleeFunc(pkg.Info, sel)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !simClockBanned[fn.Name()] {
				return true
			}
			report(pkg, sel.Pos(),
				"time.%s reads the wall clock; internal/ packages must use the sim clock so seeded runs replay bit-identically",
				fn.Name())
			return true
		})
	}
}

package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShardSafe enforces the core.App concurrency contract (DESIGN.md §6.1):
// on a multi-shard engine, Handle runs concurrently on several worker
// goroutines, so an App that is not marked SerialApp must not write its
// receiver's fields from the Handle path without synchronization —
// cross-stream state needs atomics or a lock, or the App must declare
// Serial() and forfeit parallel workers.
//
// The analyzer finds every type with a Handle(ctx *Context, ...) method
// and no Serial() marker, walks Handle plus the same-type methods it
// calls (within the package), and flags plain assignments, ++/--, and
// map/slice-element writes whose destination is rooted at the receiver.
// Writes through atomic types (a.ctr.Add(1)) are method calls, not
// assignments, and pass; a receiver-rooted mu.Lock() call earlier in the
// same function body disarms the check for that function.
var ShardSafe = &Analyzer{
	Name:  "shardsafe",
	Alias: "shard",
	Doc:   "flags non-SerialApp frame handlers writing receiver state unsynchronized",
	Run:   runShardSafe,
}

func runShardSafe(prog *Program, report Reporter) {
	for _, pkg := range prog.Packages {
		checkShardSafePkg(pkg, report)
	}
}

// appMethods collects the method declarations of each named type in the
// package, keyed by type name.
func appMethods(pkg *Package) map[string][]*ast.FuncDecl {
	methods := map[string][]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			name, ok := recvTypeName(fd)
			if !ok {
				continue
			}
			methods[name] = append(methods[name], fd)
		}
	}
	return methods
}

func recvTypeName(fd *ast.FuncDecl) (string, bool) {
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch e := t.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.IndexExpr: // generic receiver
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name, true
		}
	}
	return "", false
}

// isHandleMethod matches the core.App frame handler shape: a method named
// Handle whose first parameter is a pointer to a type named Context.
func isHandleMethod(fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Handle" || fd.Type.Params == nil || len(fd.Type.Params.List) == 0 {
		return false
	}
	t := fd.Type.Params.List[0].Type
	star, ok := t.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch e := star.X.(type) {
	case *ast.Ident:
		return e.Name == "Context"
	case *ast.SelectorExpr:
		return e.Sel.Name == "Context"
	}
	return false
}

func checkShardSafePkg(pkg *Package, report Reporter) {
	methods := appMethods(pkg)
	for typeName, decls := range methods {
		var handle *ast.FuncDecl
		serial := false
		for _, fd := range decls {
			if isHandleMethod(fd) {
				handle = fd
			}
			if fd.Name.Name == "Serial" && (fd.Type.Params == nil || len(fd.Type.Params.List) == 0) {
				serial = true
			}
		}
		if handle == nil || serial {
			continue
		}
		// Walk Handle and the same-type methods it (transitively) calls.
		visited := map[*ast.FuncDecl]bool{}
		queue := []*ast.FuncDecl{handle}
		for len(queue) > 0 {
			fd := queue[0]
			queue = queue[1:]
			if visited[fd] {
				continue
			}
			visited[fd] = true
			checkHandlerBody(pkg, typeName, fd, report)
			for _, callee := range sameTypeCallees(pkg, typeName, fd, methods[typeName]) {
				queue = append(queue, callee)
			}
		}
	}
}

// recvIdent returns the receiver's identifier object, if named.
func recvIdent(pkg *Package, fd *ast.FuncDecl) types.Object {
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	return pkg.Info.Defs[names[0]]
}

// rootedAtReceiver reports whether expr is a selector/index chain whose
// innermost operand is the receiver object (a.f, a.f[i], a.f.g, ...).
func rootedAtReceiver(pkg *Package, recv types.Object, expr ast.Expr) bool {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			return recv != nil && pkg.Info.Uses[e] == recv
		default:
			return false
		}
	}
}

// sameTypeCallees resolves calls like a.helper(...) to method decls of
// the same type within the package.
func sameTypeCallees(pkg *Package, typeName string, fd *ast.FuncDecl, decls []*ast.FuncDecl) []*ast.FuncDecl {
	byName := map[string]*ast.FuncDecl{}
	for _, d := range decls {
		byName[d.Name.Name] = d
	}
	recv := recvIdent(pkg, fd)
	var out []*ast.FuncDecl
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !rootedAtReceiver(pkg, recv, sel.X) {
			return true
		}
		if d, ok := byName[sel.Sel.Name]; ok {
			out = append(out, d)
		}
		return true
	})
	return out
}

// checkHandlerBody flags unsynchronized receiver writes in one method.
func checkHandlerBody(pkg *Package, typeName string, fd *ast.FuncDecl, report Reporter) {
	recv := recvIdent(pkg, fd)
	if recv == nil || fd.Body == nil {
		return
	}
	// A receiver-rooted Lock()/RLock() call disarms the check from that
	// position onward — the coarse but honest reading of "guarded".
	lockPos := token.Pos(-1)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") && rootedAtReceiver(pkg, recv, sel.X) {
			if lockPos < 0 || call.Pos() < lockPos {
				lockPos = call.Pos()
			}
		}
		return true
	})
	guarded := func(pos token.Pos) bool { return lockPos >= 0 && pos > lockPos }
	flag := func(pos token.Pos, what string) {
		if guarded(pos) {
			return
		}
		report(pkg, pos,
			"%s is not a SerialApp but its frame-handler path writes receiver state (%s) without atomics or a lock; "+
				"use atomics, guard with a mutex, or declare Serial()", typeName, what)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if target, ok := receiverWriteTarget(pkg, recv, lhs); ok {
					flag(lhs.Pos(), target)
				}
			}
		case *ast.IncDecStmt:
			if target, ok := receiverWriteTarget(pkg, recv, s.X); ok {
				flag(s.X.Pos(), target)
			}
		case *ast.CallExpr:
			// delete(a.m, k) mutates a receiver-held map.
			if id, ok := ast.Unparen(s.Fun).(*ast.Ident); ok {
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && len(s.Args) > 0 {
					if rootedAtReceiver(pkg, recv, s.Args[0]) {
						flag(s.Args[0].Pos(), exprString(pkg, s.Args[0]))
					}
				}
			}
		}
		return true
	})
}

// receiverWriteTarget reports whether lhs writes through the receiver
// (field assignment or element write of a receiver-held map/slice).
func receiverWriteTarget(pkg *Package, recv types.Object, lhs ast.Expr) (string, bool) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
		if rootedAtReceiver(pkg, recv, e) {
			return exprString(pkg, e), true
		}
	}
	return "", false
}

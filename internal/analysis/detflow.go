package analysis

import (
	"go/ast"
	"go/types"
)

// DetFlow guards the seed-identical replay guarantee (DESIGN.md §6.1:
// deterministic inline mode must replay bit-identically for a fixed
// seed). Functions annotated //ranvet:detpath are roots of the
// deterministic-mode datapath — the ingress entry points whose inline
// drain is the whole engine when Cores workers are not spawned. In code
// reachable from those roots the analyzer flags the constructs whose
// outcome depends on the runtime scheduler or the map hash seed rather
// than on program input:
//
//   - range over a map: iteration order is randomized per run, so any
//     frame emission, counter accumulation or table mutation driven by
//     the loop order diverges between seeded runs
//   - go statements: a spawned goroutine races the inline drain
//   - select with two or more communication cases: the winner is chosen
//     by readiness and a pseudo-random tie-break (a single case plus
//     default stays legal — readiness of one channel is deterministic
//     under single-goroutine execution)
//   - sync.Map iteration (Range): the concurrent map's order is as
//     unspecified as the built-in one's
//
// Order-independent map walks (a sweep that deletes expired entries, a
// reduction into a commutative sum) are real and stay suppressible with
// //ranvet:allow detflow <reason> — the reason must say why no emitted
// frame or counter observes the order.
var DetFlow = &Analyzer{
	Name:  "detflow",
	Alias: "det",
	Doc:   "flags nondeterminism sources reachable from //ranvet:detpath roots",
	Run:   runDetFlow,
}

const detpathDirective = "ranvet:detpath"

func runDetFlow(prog *Program, report Reporter) {
	g := prog.graph()
	roots := directiveRoots(prog, g, detpathDirective)
	visited, parent := g.reach(roots)
	for key := range visited {
		node := g.funcs[key]
		if node == nil {
			continue
		}
		checkDetFunc(node, g.chainTo(key, parent), report)
	}
}

func checkDetFunc(node *funcNode, via string, report Reporter) {
	info := node.pkg.Info
	pkg := node.pkg
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.RangeStmt:
			if isMapType(info, e.X) {
				report(pkg, e.Pos(),
					"range over a map on the deterministic path (%s): iteration order is randomized per run; iterate a sorted key slice or keep insertion order", via)
			}
		case *ast.GoStmt:
			report(pkg, e.Pos(),
				"go statement on the deterministic path (%s): a spawned goroutine races the inline drain under the runtime scheduler", via)
		case *ast.SelectStmt:
			if commCases(e) >= 2 {
				report(pkg, e.Pos(),
					"multi-case select on the deterministic path (%s): the winner is chosen by readiness and a random tie-break", via)
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Range" {
				if s, ok := info.Selections[sel]; ok && isSyncMap(s.Recv()) {
					report(pkg, e.Pos(),
						"sync.Map.Range on the deterministic path (%s): iteration order is unspecified", via)
				}
			}
		}
		return true
	})
}

// isMapType reports whether the expression's static type is a map.
func isMapType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// isSyncMap reports whether t is sync.Map (possibly behind a pointer).
func isSyncMap(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Map"
}

// commCases counts a select statement's communication clauses, default
// excluded.
func commCases(s *ast.SelectStmt) int {
	n := 0
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			n++
		}
	}
	return n
}

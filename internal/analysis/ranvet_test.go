package analysis

import (
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness mirrors go/analysis's analysistest: fixture files
// carry trailing comments of the form
//
//	// want `regex` [`regex` ...]
//
// and the test requires exactly the expected diagnostics on exactly those
// lines. Each regex is matched against "analyzer: message".

var wantRe = regexp.MustCompile("`([^`]*)`")

type wantKey struct {
	file string
	line int
}

// collectWants parses the // want comments of a loaded fixture.
func collectWants(t *testing.T, prog *Program) map[wantKey][]*regexp.Regexp {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					body, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Slash)
					for _, m := range wantRe.FindAllStringSubmatch(body, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						k := wantKey{file: pos.Filename, line: pos.Line}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}
	return wants
}

// loadFixture type-checks one testdata package under a synthetic import
// path and runs the full suite over it (analyzers must not interfere).
func loadFixture(t *testing.T, dir, importPath string) (*Program, []Diagnostic) {
	t.Helper()
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	prog, err := LoadDir(root, filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return prog, RunAnalyzers(prog, All())
}

// checkFixture requires the diagnostics to match the want comments 1:1.
func checkFixture(t *testing.T, prog *Program, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, prog)
	for _, d := range diags {
		k := wantKey{file: d.Pos.Filename, line: d.Pos.Line}
		text := d.Analyzer + ": " + d.Message
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(text) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				if len(wants[k]) == 0 {
					delete(wants, k)
				}
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, text)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

func TestHotPathAllocFixture(t *testing.T) {
	prog, diags := loadFixture(t, "hotpath", "ranvetfixture/hotpath")
	checkFixture(t, prog, diags)
}

func TestAtomicFieldFixture(t *testing.T) {
	prog, diags := loadFixture(t, "atomicmix", "ranvetfixture/atomicmix")
	checkFixture(t, prog, diags)
}

func TestShardSafeFixture(t *testing.T) {
	prog, diags := loadFixture(t, "shardapp", "ranvetfixture/shardapp")
	checkFixture(t, prog, diags)
}

func TestSimClockFixture(t *testing.T) {
	// The synthetic import path places the fixture under internal/ so the
	// wall-clock ban applies.
	prog, diags := loadFixture(t, "clockuser", "ranvetfixture/internal/clockuser")
	checkFixture(t, prog, diags)
}

func TestWireBoundsFixture(t *testing.T) {
	// The import path basename selects the codec scope.
	prog, diags := loadFixture(t, "fh", "ranvetfixture/fh")
	checkFixture(t, prog, diags)
}

func TestDetFlowFixture(t *testing.T) {
	prog, diags := loadFixture(t, "detflow", "ranvetfixture/detflow")
	checkFixture(t, prog, diags)
}

func TestStateMachFixture(t *testing.T) {
	prog, diags := loadFixture(t, "statemach", "ranvetfixture/statemach")
	checkFixture(t, prog, diags)
}

func TestStateMachBadTable(t *testing.T) {
	prog, diags := loadFixture(t, "statebad", "ranvetfixture/statebad")
	checkFixture(t, prog, diags)
}

func TestSPSCSingleFixture(t *testing.T) {
	prog, diags := loadFixture(t, "spsc", "ranvetfixture/spsc")
	checkFixture(t, prog, diags)
}

func TestMetricRegFixture(t *testing.T) {
	prog, diags := loadFixture(t, "metricreg", "ranvetfixture/metricreg")
	checkFixture(t, prog, diags)
}

// TestStaleAllowFixture asserts the driver's stale-suppression pass
// directly: a stale finding lands on the directive's own line, where a
// want comment cannot coexist with the directive, so the fixture is
// checked by message rather than by want comments.
func TestStaleAllowFixture(t *testing.T) {
	_, diags := loadFixture(t, "stale", "ranvetfixture/stale")
	var got []string
	for _, d := range diags {
		if d.Analyzer != StaleAllow.Name {
			t.Errorf("unexpected non-stale diagnostic: %s", d)
			continue
		}
		got = append(got, d.Message)
	}
	want := []string{
		"no simclock finding is silenced by this directive",
		"excuses no stale directive",
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if strings.Contains(g, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no stale diagnostic containing %q (got %v)", w, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d stale diagnostics, want %d: %v", len(got), len(want), got)
	}
}

// TestBadSuppressions requires malformed directives to be reported:
// a suppression without a reason (or naming an unknown analyzer) must
// fail the run, not silently stop matching.
func TestBadSuppressions(t *testing.T) {
	_, diags := loadFixture(t, "badsup", "ranvetfixture/badsup")
	var got []string
	for _, d := range diags {
		if d.Analyzer != "ranvet" {
			t.Errorf("unexpected non-directive diagnostic: %s", d)
			continue
		}
		got = append(got, d.Message)
	}
	want := []string{
		"needs a written reason",
		"unknown analyzer",
		"names no analyzer",
	}
	for _, w := range want {
		found := false
		for _, g := range got {
			if strings.Contains(g, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no directive diagnostic containing %q (got %v)", w, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d directive diagnostics, want %d: %v", len(got), len(want), got)
	}
}

// TestRanvetRepoClean is the meta-test the whole suite exists for: the
// repository's own code must satisfy every invariant, with each remaining
// suppression carrying a written reason. A finding here is a regression
// in the datapath contract, not in the analyzer.
func TestRanvetRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("re-type-checks the whole module; skipped in -short")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	prog, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags := RunAnalyzers(prog, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("ranvet found %d violation(s); fix them or add //ranvet:allow <analyzer> <reason>", len(diags))
	}
	// Sanity: the hot-path analyzer actually had roots to walk — if the
	// annotations disappear the suite silently checks nothing.
	roots := 0
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && hasDirective(fd.Doc, hotpathDirective) {
					roots++
				}
			}
		}
	}
	if roots < 5 {
		t.Fatalf("only %d //ranvet:hotpath roots in the module; the datapath annotations went missing", roots)
	}
}

// TestSuiteMetadata guards the suppression grammar: distinct names and
// aliases, docs present.
func TestSuiteMetadata(t *testing.T) {
	seen := map[string]string{}
	for _, a := range All() {
		for _, n := range []string{a.Name, a.Alias} {
			if other, dup := seen[n]; dup && other != a.Name {
				t.Errorf("name %q claimed by both %s and %s", n, other, a.Name)
			}
			seen[n] = a.Name
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s missing doc or run hook", a.Name)
		}
	}
	if len(All()) != 10 {
		t.Errorf("suite has %d analyzers, want 10", len(All()))
	}
}

// TestDiagnosticString pins the go-vet-style rendering the driver prints.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "simclock", Message: "msg"}
	d.Pos.Filename, d.Pos.Line, d.Pos.Column = "f.go", 3, 7
	if got, want := d.String(), "f.go:3:7: simclock: msg"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

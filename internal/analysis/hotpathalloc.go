package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc enforces the allocation-free hot path (DESIGN.md §6: "hot
// paths do not allocate"). Functions annotated //ranvet:hotpath are roots
// of the per-frame datapath — the shard worker loop, the frame decoder,
// the BFP codec, every App's Handle. A type annotated //ranvet:hotpath
// roots its entire method set — the shape of a pooled scratch object
// (bfp.Transcoder) whose every method runs per frame. The analyzer walks
// the static call graph (the shared reachability layer, reach.go) from
// those roots across the whole module and flags constructs that
// heap-allocate (or are very likely to):
//
//   - make, new, append (growth reallocates)
//   - &T{...} and slice/map composite literals
//   - string concatenation
//   - calls into package fmt
//   - function literals (closure environments escape)
//   - explicit conversions of concrete values to interface types
//
// Three deliberate blind spots keep the signal honest. An append whose
// destination is rooted at a parameter or the receiver is not flagged:
// that is the append-style API shape (dst = append(dst, ...)), where the
// amortization decision belongs to the caller who owns the buffer.
// Nothing inside a panic(...) argument is flagged: a crash path allocates
// once, right before dying. And a function literal whose body calls
// recover() is not flagged: that is the panic-isolation shape (the
// engine's supervision quarantine), a path that only runs once the hot
// path has already died.
//
// Interface method calls and func-typed values are not traversed (the
// callee is unknown statically); annotate implementations directly — the
// repo annotates every core.App Handle for exactly this reason.
// Intentional allocations (A2 replication buffers, once-per-symbol merge
// paths, error construction) carry //ranvet:allow alloc <reason>.
var HotPathAlloc = &Analyzer{
	Name:  "hotpathalloc",
	Alias: "alloc",
	Doc:   "flags heap allocations reachable from //ranvet:hotpath roots",
	Run:   runHotPathAlloc,
}

const hotpathDirective = "ranvet:hotpath"

func runHotPathAlloc(prog *Program, report Reporter) {
	g := prog.graph()
	roots := directiveRoots(prog, g, hotpathDirective)
	visited, parent := g.reach(roots)
	// Check in BFS order is not required — diagnostics are sorted by the
	// driver — so walk the visited set through the graph's stable index.
	for key := range visited {
		node := g.funcs[key]
		if node == nil {
			continue
		}
		checkHotFunc(node, g.chainTo(key, parent), report)
	}
}

// checkHotFunc flags allocating constructs inside one hot function.
func checkHotFunc(node *funcNode, via string, report Reporter) {
	info := node.pkg.Info
	pkg := node.pkg
	callerOwned := callerOwnedObjects(pkg, node.decl)
	flag := func(pos token.Pos, what string) {
		report(pkg, pos, "%s in hot path (%s)", what, via)
	}
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			// A closure whose body calls recover() is a panic-only path:
			// it runs when the hot path is already dead (the engine's
			// quarantine machinery), so its one-time environment
			// allocation is as acceptable as a panic message. Plain
			// closures still escape on every pass and stay flagged.
			if containsRecover(info, e.Body) {
				return false
			}
			flag(e.Pos(), "function literal (closure environment escapes)")
			return false // the literal runs later; its body is not this hot path
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					flag(e.Pos(), "&composite literal (escapes to heap)")
					return false
				}
			}
		case *ast.CompositeLit:
			if t := info.Types[e].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					flag(e.Pos(), "slice/map literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if t, ok := info.Types[e]; ok {
					if b, ok := t.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						flag(e.Pos(), "string concatenation allocates")
					}
				}
			}
		case *ast.CallExpr:
			if isPanicCall(info, e) {
				return false // crash path: allocating the message is fine
			}
			checkHotCall(node, e, callerOwned, flag)
		}
		return true
	})
}

// callerOwnedObjects collects the function's receiver and parameter
// objects: buffers rooted at these belong to the caller, so appending to
// them is the caller's amortization contract, not this function's alloc.
func callerOwnedObjects(pkg *Package, fd *ast.FuncDecl) map[types.Object]bool {
	owned := map[types.Object]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					owned[obj] = true
				}
			}
		}
	}
	addFields(fd.Recv)
	addFields(fd.Type.Params)
	return owned
}

// rootObj walks a selector/index/deref chain to its base identifier's
// object (a.f[i].g -> a), or nil when the base is not a plain identifier.
func rootObj(pkg *Package, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			return pkg.Info.Uses[e]
		default:
			return nil
		}
	}
}

// containsRecover reports whether the body calls the recover builtin
// anywhere in its subtree — the marker of a panic-only cleanup path.
func containsRecover(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "recover" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isPanicCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}

func checkHotCall(node *funcNode, call *ast.CallExpr, callerOwned map[types.Object]bool, flag func(token.Pos, string)) {
	info := node.pkg.Info
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				flag(call.Pos(), "make allocates")
			case "new":
				flag(call.Pos(), "new allocates")
			case "append":
				if len(call.Args) > 0 {
					if obj := rootObj(node.pkg, call.Args[0]); obj != nil && callerOwned[obj] {
						return // caller-owned buffer: the caller amortizes it
					}
				}
				flag(call.Pos(), "append may grow its backing array")
			}
			return
		}
	case *ast.SelectorExpr:
		if fn, ok := calleeFunc(info, fun); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			flag(call.Pos(), "fmt."+fn.Name()+" allocates (formatting boxes arguments)")
			return
		}
	}
	// Explicit conversion of a concrete value to an interface type boxes it.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at, ok := info.Types[call.Args[0]]; ok && at.Type != nil && !types.IsInterface(at.Type) {
				flag(call.Pos(), "conversion to interface boxes the value")
			}
		}
	}
}

// calleeFunc resolves a selector callee to its *types.Func, whether it is
// a method or a package-qualified function.
func calleeFunc(info *types.Info, sel *ast.SelectorExpr) (*types.Func, bool) {
	if s, ok := info.Selections[sel]; ok {
		fn, ok := s.Obj().(*types.Func)
		return fn, ok
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return fn, ok
}

package analysis

// StaleAllow keeps the suppression inventory honest: a //ranvet:allow (or
// allowfile) whose analyzer no longer fires on the covered lines is dead
// weight — the construct it excused was refactored away, but the
// directive keeps silencing whatever lands there next. The check runs
// inside the driver (RunAnalyzers tracks which suppressions matched a raw
// finding), so the analyzer's Run hook is empty; it exists as a suite
// member so the findings carry its name, -list shows it, and a directive
// can name it:
//
//	//ranvet:allow staleallow <reason>
//
// on the line above a directive that is intentionally kept while its
// finding is gated off (a build-tag-dependent construct, an analyzer
// temporarily disabled). A staleallow suppression that itself matches
// nothing is reported too — one level of recursion, then the chain ends.
//
// The remedy for a stale suppression is deletion, not a fresh reason:
// when the finding returns, so may the directive, with a reason written
// for the code as it is then.
var StaleAllow = &Analyzer{
	Name:  "staleallow",
	Alias: "stale",
	Doc:   "flags //ranvet:allow directives whose analyzer no longer fires there",
	Run:   func(prog *Program, report Reporter) {}, // driver-integrated; see RunAnalyzers
}

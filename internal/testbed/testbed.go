// Package testbed assembles the enterprise deployment of §6.1: five
// 50.9 m × 20.9 m floors with four ceiling RUs each, a top-of-rack
// switch, DUs on telco servers, UEs spread across the building, and
// RANBooster middleboxes in the fronthaul path. Examples, system tests
// and every experiment runner build their scenarios from these
// primitives.
package testbed

import (
	"fmt"
	"time"

	"ranbooster/internal/air"
	"ranbooster/internal/bfp"
	"ranbooster/internal/core"
	"ranbooster/internal/du"
	"ranbooster/internal/eth"
	"ranbooster/internal/fabric"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/ru"
	"ranbooster/internal/sim"
)

// BFP9 is the compression every testbed element uses (Fig. 2).
func BFP9() bfp.Params {
	return bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint}
}

// Floors in the building.
const Floors = 5

// RUXPositions are the ceiling-mount x coordinates of the four RUs per
// floor (Fig. 9a), evenly covering the 50.9 m length at y midline.
var RUXPositions = [4]float64{6.4, 19.1, 31.8, 44.5}

// RUPosition places standard RU i (0..3) of a floor.
func RUPosition(floor, i int) radio.Point {
	return radio.RUAt(floor, RUXPositions[i], radio.FloorWidth/2)
}

// TB is an assembled testbed.
type TB struct {
	Sched  *sim.Scheduler
	Air    *air.Air
	Switch *fabric.Switch
	RNG    *sim.RNG

	DUs []*du.DU
	RUs []*ru.RU

	macSeq byte
	ueSeq  int
}

// New builds an empty testbed: scheduler, radio model, TOR switch.
func New(seed uint64) *TB {
	sched := sim.NewScheduler()
	return &TB{
		Sched:  sched,
		Air:    air.New(sched, radio.DefaultModel()),
		Switch: fabric.NewSwitch(sched, "tor", 2*time.Microsecond, 100),
		RNG:    sim.NewRNG(seed),
	}
}

// NewMAC allocates a locally-administered unicast MAC.
func (tb *TB) NewMAC() eth.MAC {
	tb.macSeq++
	if tb.macSeq == 0 {
		panic("testbed: MAC space exhausted")
	}
	return eth.MAC{0x02, 0x00, 0x00, 0x00, 0x01, tb.macSeq}
}

// Carrier100 is the default 100 MHz band-78 carrier.
func Carrier100() phy.Carrier { return phy.NewCarrier(100, 3_460_000_000) }

// CellConfig builds a standard cell on a carrier. The PRACH occasion is
// placed on the frame's last uplink slot of the stack's TDD pattern (the
// per-vendor configuration difference §6.2 mentions).
func CellConfig(name string, pci int, carrier phy.Carrier, stack phy.StackProfile, maxLayers int) air.CellConfig {
	tdd := phy.MustTDD(stack.TDDPattern)
	prach := phy.DefaultPRACH()
	for s := phy.SlotsPerFrame - 1; s >= 0; s-- {
		if tdd.Kind(s) == phy.SlotUL {
			prach.Slot = s
			break
		}
	}
	return air.CellConfig{
		Name:      name,
		PCI:       pci,
		Carrier:   carrier,
		TDD:       tdd,
		Stack:     stack,
		SSB:       phy.DefaultSSB(),
		PRACH:     prach,
		MaxLayers: maxLayers,
	}
}

// RUOpts configures AddRU.
type RUOpts struct {
	Carrier phy.Carrier
	Ports   int
	// Cheap selects budget single-antenna-grade elements (Fig. 13).
	Cheap bool
	// Peer is where uplink goes (DU or middlebox MAC).
	Peer eth.MAC
	VLAN int
}

// AddRU creates an RU at pos, attaches it to the switch, and returns it
// with its MAC.
func (tb *TB) AddRU(name string, pos radio.Point, opts RUOpts) (*ru.RU, eth.MAC) {
	if opts.Ports <= 0 {
		opts.Ports = 4
	}
	if opts.Carrier.NumPRB == 0 {
		opts.Carrier = Carrier100()
	}
	mac := tb.NewMAC()
	els := make([]radio.Element, opts.Ports)
	for i := range els {
		if opts.Cheap {
			els[i] = radio.CheapRUElement(pos)
		} else {
			els[i] = radio.DefaultRUElement(pos)
		}
	}
	r := ru.New(tb.Sched, tb.Air, ru.Config{
		Name:     name,
		MAC:      mac,
		PeerMAC:  opts.Peer,
		VLAN:     opts.VLAN,
		Carrier:  opts.Carrier,
		Ports:    opts.Ports,
		Comp:     BFP9(),
		Elements: els,
	})
	port := tb.Switch.AddPort(name, r.Ingress)
	r.SetOutput(port.Send)
	tb.RUs = append(tb.RUs, r)
	return r, mac
}

// DUOpts configures AddDU.
type DUOpts struct {
	Cell air.CellConfig
	// Peer is where downlink goes (RU or middlebox MAC).
	Peer     eth.MAC
	VLAN     int
	DUPortID uint8
}

// AddDU creates a DU, attaches it to the switch and starts its slot loop.
func (tb *TB) AddDU(name string, opts DUOpts) (*du.DU, eth.MAC) {
	mac := tb.NewMAC()
	d := du.New(tb.Sched, tb.Air, du.Config{
		Name:     name,
		MAC:      mac,
		PeerMAC:  opts.Peer,
		VLAN:     opts.VLAN,
		Cell:     opts.Cell,
		Comp:     BFP9(),
		DUPortID: opts.DUPortID,
	})
	port := tb.Switch.AddPort(name, d.Ingress)
	d.SetOutput(port.Send)
	d.Start()
	tb.DUs = append(tb.DUs, d)
	return d, mac
}

// AddEngine attaches a middlebox engine to the switch behind its own MAC:
// only frames addressed to it are delivered (the bump-in-the-wire model
// of Fig. 3, where endpoints address the middlebox as their peer). The
// returned port carries the middlebox's ingress/egress byte counters
// (Fig. 15a's network-load measurement).
//
// Testbed engines run in the engine's deterministic mode: the fabric
// delivers frames from the scheduler goroutine and each is processed
// inline at its virtual arrival time, so runs are bit-identical across
// any Cores setting. Do not Start parallel workers on an attached
// engine — that mode is for wall-clock throughput outside a simulation.
func (tb *TB) AddEngine(e *core.Engine, mac eth.MAC) *fabric.Port {
	port := tb.Switch.AddPort(e.Name(), func(frame []byte) {
		if len(frame) >= 6 {
			var dst eth.MAC
			copy(dst[:], frame[:6])
			if dst != mac && !dst.IsBroadcast() {
				return
			}
		}
		e.Ingress(frame)
	})
	e.SetOutput(port.Send)
	return port
}

// AddUE places a UE on a floor and registers it.
func (tb *TB) AddUE(floor int, x, y float64) *air.UE {
	tb.ueSeq++
	u := air.NewUE(tb.ueSeq, radio.UEAt(floor, x, y))
	tb.Air.AddUE(u)
	return u
}

// Run advances the simulation by d, running per-frame UE mobility
// management (idle attach, handover, radio-link failure) on the way.
func (tb *TB) Run(d time.Duration) {
	end := tb.Sched.Now().Add(d)
	for tb.Sched.Now() < end {
		next := tb.Sched.Now().Add(phy.FrameDuration)
		next -= next % sim.Time(phy.FrameDuration)
		if next > end {
			next = end
		}
		tb.Sched.RunUntil(next)
		absSlot := phy.SlotAt(tb.Sched.Now())
		for _, u := range tb.Air.UEs() {
			tb.Air.MaintainUE(u, absSlot)
		}
	}
}

// Settle runs the testbed long enough for attachment and link adaptation
// to converge (a few PRACH periods).
func (tb *TB) Settle() { tb.Run(100 * time.Millisecond) }

// Measure zeroes all UE counters, runs for d, and returns the elapsed
// duration actually measured.
func (tb *TB) Measure(d time.Duration) time.Duration {
	start := tb.Sched.Now()
	for _, u := range tb.Air.UEs() {
		u.StartMeasurement(start)
	}
	tb.Run(d)
	return tb.Sched.Now().Sub(start)
}

// Mbps converts bits/s to Mbit/s for reporting.
func Mbps(bps float64) float64 { return bps / 1e6 }

// DirectCell wires a DU straight to one RU (no middlebox): the Table 2 /
// Fig. 10 baselines.
func (tb *TB) DirectCell(name string, cell air.CellConfig, pos radio.Point, ports int, cheap bool) (*du.DU, *ru.RU) {
	r, ruMAC := tb.AddRU(name+"-ru", pos, RUOpts{Carrier: cell.Carrier, Ports: ports, Cheap: cheap})
	d, duMAC := tb.AddDU(name+"-du", DUOpts{Cell: cell, Peer: ruMAC})
	r.SetPeer(duMAC)
	return d, r
}

// String summarizes the testbed.
func (tb *TB) String() string {
	return fmt.Sprintf("testbed(%d DUs, %d RUs, %d UEs)", len(tb.DUs), len(tb.RUs), len(tb.Air.UEs()))
}

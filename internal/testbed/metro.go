package testbed

import (
	"fmt"
	"math"
	"time"

	"ranbooster/internal/bfp"
	"ranbooster/internal/core"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/fabric"
	"ranbooster/internal/fh"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
	"ranbooster/internal/phy"
	"ranbooster/internal/sim"
)

// MetroConfig sizes a metro-scale scenario: the aggregation deployment of
// §7 where one operator fronthaul carries hundreds of RUs through a chain
// of RANBooster middleboxes on successive fabric hops. Unlike the
// building testbed (TB), a Metro does not model the air interface or
// per-UE state — cells are aggregate traffic sources whose per-slot
// arrivals follow a Poisson process drawn from the scenario RNG, which is
// what lets a single simulation hold thousands of eAxC streams without a
// goroutine per UE.
type MetroConfig struct {
	// Floors × CellsPerFloor is the cell (= RU) count. Defaults 5 × 4.
	Floors, CellsPerFloor int
	// PortsPerRU is the number of eAxC streams per RU (default 4). The
	// stream universe is Cells × PortsPerRU and must fit the 16-bit eAxC
	// space.
	PortsPerRU int
	// ChainDepth is how many middlebox engines the fronthaul traverses,
	// each on its own fabric switch (default 2, the Fig. 8 daisy chain).
	ChainDepth int
	// Cores per engine.
	Cores int
	// Scale selects the engines' admission layout (work stealing or the
	// static hash).
	Scale core.ScalePolicy
	// MeanPerSlot is the Poisson mean of U-plane frames per cell per slot
	// (default 1).
	MeanPerSlot float64
	// Seed drives every random draw; same seed, same run.
	Seed uint64
	// Trace turns on the engines' span collectors (latency percentiles).
	Trace bool
	// Kernel chains the hops with in-kernel XDP redirect rules instead of
	// a userspace forwarding app.
	Kernel bool
}

func (c MetroConfig) withDefaults() MetroConfig {
	if c.Floors == 0 {
		c.Floors = Floors
	}
	if c.CellsPerFloor == 0 {
		c.CellsPerFloor = 4
	}
	if c.PortsPerRU == 0 {
		c.PortsPerRU = 4
	}
	if c.ChainDepth == 0 {
		c.ChainDepth = 2
	}
	if c.MeanPerSlot == 0 {
		c.MeanPerSlot = 1
	}
	return c
}

// Cells is the RU count of the laid-out metro.
func (c MetroConfig) Cells() int { return c.Floors * c.CellsPerFloor }

// Streams is the eAxC stream count of the laid-out metro.
func (c MetroConfig) Streams() int { return c.Cells() * c.PortsPerRU }

// chainApp is the userspace middlebox of a chain hop: pure A1 redirection
// of every frame to the next hop (middlebox or sink), the minimal
// bump-in-the-wire of Fig. 3.
type chainApp struct {
	name       string
	next, self eth.MAC
}

func (a *chainApp) Name() string { return a.name }

func (a *chainApp) Handle(ctx *core.Context, pkt *fh.Packet) error {
	return ctx.Redirect(pkt, a.next, a.self, -1)
}

// metroCell is one aggregate traffic source: a fabric port, a builder
// holding per-eAxC sequence counters, and a forked RNG for its arrival
// process.
type metroCell struct {
	port    *fabric.Port
	b       *fh.Builder
	rng     *sim.RNG
	streams []ecpri.PcID
}

// MetroSinkStats is what the far end of the chain observed, the ground
// truth the conservation and FIFO checks compare against.
type MetroSinkStats struct {
	// Delivered counts frames that survived every hop.
	Delivered uint64
	// Gaps is the per-stream count of missing sequence numbers (frames
	// lost in flight); zero on a fault-free fabric.
	Gaps uint64
	// Duplicates and Reordered are per-eAxC FIFO violations: a healthy
	// chain never produces either, with or without loss.
	Duplicates, Reordered uint64
	// ParseErrors counts undecodable arrivals (corruption faults).
	ParseErrors uint64
	// Streams is how many distinct eAxC streams reached the sink.
	Streams int
}

// metroSink terminates the chain: it decodes every arrival and tracks
// per-eAxC sequence continuity the same way the engines do (delta 1 ok,
// small delta = gap, 0 = duplicate, large = reorder).
type metroSink struct {
	port  *fabric.Port
	last  map[uint16]uint8
	stats MetroSinkStats
}

func (s *metroSink) ingress(frame []byte) {
	var p fh.Packet
	if err := p.Decode(frame); err != nil {
		s.stats.ParseErrors++
		return
	}
	s.stats.Delivered++
	key := p.Ecpri.PcID.Uint16()
	seq := p.Ecpri.SeqID
	last, ok := s.last[key]
	if !ok {
		s.last[key] = seq
		return
	}
	switch delta := seq - last; {
	case delta == 0:
		s.stats.Duplicates++
	case delta < 128:
		s.stats.Gaps += uint64(delta) - 1
		s.last[key] = seq
	default:
		s.stats.Reordered++
	}
}

// Metro is an assembled metro scenario: ChainDepth switches in a line,
// one engine per switch, all cells attached to the first switch and the
// sink to the last, with every destination MAC primed into the fabric so
// accounting is exact from the first frame.
type Metro struct {
	Sched   *sim.Scheduler
	Topo    *fabric.Topology
	Trunks  []fabric.Trunk
	Engines []*core.Engine
	// EnginePorts carry the per-hop fabric counters (arrived/forwarded).
	EnginePorts []*fabric.Port

	cfg      MetroConfig
	cells    []*metroCell
	sink     *metroSink
	payload  []byte
	slot     int
	injected uint64
}

// NewMetro lays the scenario out. It fails on impossible dimensions (a
// stream universe beyond the 16-bit eAxC space, or an invalid engine
// configuration).
func NewMetro(cfg MetroConfig) (*Metro, error) {
	cfg = cfg.withDefaults()
	if cfg.Streams() > 1<<16 {
		return nil, fmt.Errorf("metro: %d streams exceed the 16-bit eAxC space", cfg.Streams())
	}
	sched := sim.NewScheduler()
	m := &Metro{Sched: sched, Topo: fabric.NewTopology(sched), cfg: cfg}
	rng := sim.NewRNG(cfg.Seed)

	sws := make([]*fabric.Switch, cfg.ChainDepth)
	for k := range sws {
		sw, err := m.Topo.AddSwitch(fmt.Sprintf("metro-%d", k), 2*time.Microsecond, 100)
		if err != nil {
			return nil, err
		}
		sws[k] = sw
	}
	trunks, err := m.Topo.Chain(sws...)
	if err != nil {
		return nil, err
	}
	m.Trunks = trunks

	engineMAC := func(k int) eth.MAC { return eth.MAC{0x02, 0, 0, 0, 0x02, byte(k + 1)} }
	sinkMAC := eth.MAC{0x02, 0, 0, 0, 0x02, 0xff}
	for k := 0; k < cfg.ChainDepth; k++ {
		next := sinkMAC
		if k < cfg.ChainDepth-1 {
			next = engineMAC(k + 1)
		}
		ecfg := core.Config{
			Name:        fmt.Sprintf("mbx-%d", k),
			Mode:        core.ModeDPDK,
			App:         &chainApp{name: fmt.Sprintf("chain-%d", k), next: next, self: engineMAC(k)},
			CarrierPRBs: Carrier100().NumPRB,
			Cores:       cfg.Cores,
			Scale:       cfg.Scale,
			Trace:       cfg.Trace,
		}
		if cfg.Kernel {
			nextHop := next
			ecfg.Mode = core.ModeXDP
			ecfg.App = nil
			ecfg.Kernel = &core.KernelProgram{Rules: []core.Rule{{
				Verdict: core.VerdictTx,
				Rewrite: &core.Rewrite{SetDst: &nextHop},
			}}}
		}
		e, err := core.NewEngine(sched, ecfg)
		if err != nil {
			return nil, err
		}
		mac := engineMAC(k)
		port := sws[k].AddPort(e.Name(), func(frame []byte) {
			if len(frame) >= 6 {
				var dst eth.MAC
				copy(dst[:], frame[:6])
				if dst != mac && !dst.IsBroadcast() {
					return
				}
			}
			e.Ingress(frame)
		})
		e.SetOutput(port.Send)
		if err := m.Topo.Learn(mac, -1, port); err != nil {
			return nil, err
		}
		m.Engines = append(m.Engines, e)
		m.EnginePorts = append(m.EnginePorts, port)
	}

	m.sink = &metroSink{last: make(map[uint16]uint8)}
	m.sink.port = sws[cfg.ChainDepth-1].AddPort("sink", m.sink.ingress)
	if err := m.Topo.Learn(sinkMAC, -1, m.sink.port); err != nil {
		return nil, err
	}

	// One shared 4-PRB BFP payload: cells differ by addressing and
	// sequence numbers, not IQ content, and sharing it keeps frame
	// synthesis cheap enough for metro-sized soaks.
	m.payload, err = bfp.CompressGrid(nil, iq.NewGrid(4), BFP9())
	if err != nil {
		return nil, err
	}

	for c := 0; c < cfg.Cells(); c++ {
		cellMAC := eth.MAC{0x02, 0, 0, 0x01, byte(c >> 8), byte(c)}
		cell := &metroCell{
			b:   fh.NewBuilder(cellMAC, engineMAC(0), -1),
			rng: rng.Fork(),
		}
		cell.port = sws[0].AddPort(fmt.Sprintf("cell-%d", c), nil)
		for p := 0; p < cfg.PortsPerRU; p++ {
			cell.streams = append(cell.streams, ecpri.PcIDFromUint16(uint16(c*cfg.PortsPerRU+p)))
		}
		m.cells = append(m.cells, cell)
	}
	return m, nil
}

// Config returns the resolved scenario dimensions.
func (m *Metro) Config() MetroConfig { return m.cfg }

// Injected counts frames the cells have put on the fabric so far.
func (m *Metro) Injected() uint64 { return m.injected }

// Sink returns the far end's observations.
func (m *Metro) Sink() MetroSinkStats {
	st := m.sink.stats
	st.Streams = len(m.sink.last)
	return st
}

// inject synthesizes one uplink U-plane frame on the given cell stream
// and puts it on the fabric, addressed to the first chain hop.
func (m *Metro) inject(cell *metroCell, stream ecpri.PcID) {
	msg := &oran.UPlaneMsg{
		Timing: oran.Timing{
			Direction:  oran.Uplink,
			FrameID:    uint8(m.slot / phy.SlotsPerFrame),
			SubframeID: uint8(m.slot % phy.SlotsPerFrame / phy.SlotsPerSubframe),
			SlotID:     uint8(m.slot % phy.SlotsPerSubframe),
		},
		Sections: []oran.USection{{NumPRB: 4, Comp: BFP9(), Payload: m.payload}},
	}
	cell.port.Send(cell.b.UPlane(stream, msg))
	m.injected++
}

// poisson draws from Poisson(mean) by Knuth inversion — fine for the
// small per-slot means cells use.
func poisson(rng *sim.RNG, mean float64) int {
	threshold := math.Exp(-mean)
	l := 1.0
	for k := 0; ; k++ {
		l *= rng.Float64()
		if l < threshold {
			return k
		}
	}
}

// RunSlots advances the scenario n slots: each slot, every cell draws
// its arrival count from its own Poisson process and injects on
// uniformly chosen eAxC streams, then the fabric and engines run to the
// slot boundary on the virtual clock.
func (m *Metro) RunSlots(n int) {
	start := m.Sched.Now()
	for s := 0; s < n; s++ {
		for _, cell := range m.cells {
			arrivals := poisson(cell.rng, m.cfg.MeanPerSlot)
			for i := 0; i < arrivals; i++ {
				m.inject(cell, cell.streams[cell.rng.Intn(len(cell.streams))])
			}
		}
		m.slot++
		m.Sched.RunUntil(start.Add(time.Duration(s+1) * phy.SlotDuration))
	}
	// Drain in-flight deliveries past the final slot boundary.
	m.Sched.Run()
}

// Flush pushes one more frame down every stream of every cell and drains
// the fabric. After a fault window this surfaces every outstanding
// sequence gap at the engines and the sink (a tail drop is invisible
// until the stream's next clean frame), making loss accounting exact.
func (m *Metro) Flush() {
	for _, cell := range m.cells {
		for _, stream := range cell.streams {
			m.inject(cell, stream)
		}
	}
	m.Sched.Run()
}

// HopReport is the conservation ledger of one chain hop.
type HopReport struct {
	Arrived   uint64 // frames the fabric delivered to the engine's port
	Forwarded uint64 // frames the engine put back on the fabric
	Lost      uint64 // engine-internal losses per the stats taxonomy
}

// ConservationReport is the frame ledger of a finished run.
type ConservationReport struct {
	Injected uint64
	Hops     []HopReport
	Sink     MetroSinkStats
	// TrunkDropped is fault-injector loss the caller accounts between
	// hops (zero on a clean fabric).
	TrunkDropped uint64
}

// Check verifies frame conservation end to end: every injected frame is
// delivered, dropped by a hop for an accounted reason, or dropped on a
// trunk by a fault injector — and each hop's own ledger balances.
func (r ConservationReport) Check() error {
	for k, h := range r.Hops {
		if h.Arrived != h.Forwarded+h.Lost {
			return fmt.Errorf("hop %d leaks frames: arrived %d != forwarded %d + lost %d",
				k, h.Arrived, h.Forwarded, h.Lost)
		}
	}
	accounted := r.Sink.Delivered + r.TrunkDropped
	for _, h := range r.Hops {
		accounted += h.Lost
	}
	if r.Injected != accounted {
		return fmt.Errorf("chain leaks frames: injected %d != accounted %d (delivered %d, trunk %d)",
			r.Injected, accounted, r.Sink.Delivered, r.TrunkDropped)
	}
	return nil
}

// Conservation assembles the ledger from the fabric port counters (the
// authoritative arrived/forwarded view) and the engine stats (the loss
// taxonomy). trunkDropped is the summed Dropped of any fault injectors
// the caller attached to the trunks.
func (m *Metro) Conservation(trunkDropped uint64) ConservationReport {
	r := ConservationReport{Injected: m.injected, Sink: m.Sink(), TrunkDropped: trunkDropped}
	for k, e := range m.Engines {
		ps := m.EnginePorts[k].Stats()
		st := e.Snapshot()
		r.Hops = append(r.Hops, HopReport{
			Arrived:   ps.RxFrames,
			Forwarded: ps.TxFrames,
			Lost: st.ParseError + st.InvalidFrames + st.AppDrops + st.AppErrors +
				st.KernelDrop + st.RingDrops + st.ShedUPlane + st.ShedPRACH + st.Quarantined,
		})
	}
	return r
}

package testbed

import (
	"reflect"
	"testing"
	"time"

	"ranbooster/internal/apps/resilience"
	"ranbooster/internal/core"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/fault"
	"ranbooster/internal/fh"
	"ranbooster/internal/oran"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/telemetry"
)

// TestChaosRUShareLoss runs the §4.3 shared RU with 5% i.i.d. loss on the
// RU's uplink: PRACH occasions must still reach the right DU often enough
// for both tenants' UEs to attach, and the engine's sequence tracking
// must see the loss the injector created.
func TestChaosRUShareLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("long system test")
	}
	tb := New(60)
	ruCarrier := Carrier100()
	dep, err := tb.SharedRU("loss", ruCarrier, RUPosition(0, 0), sharedCells(ruCarrier, true), core.ModeDPDK)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(tb.Sched, tb.RNG.Fork(), fault.Profile{Drop: 0.05})
	inj.Attach(tb.Switch.PortByName("loss-ru"))

	ua := tb.AddUE(0, RUXPositions[0]+4, radio.FloorWidth/2)
	ua.AllowedCell = "mnoA"
	ub := tb.AddUE(0, RUXPositions[0]-4, radio.FloorWidth/2)
	ub.AllowedCell = "mnoB"
	tb.Settle()
	tb.Run(300 * time.Millisecond)

	if !ua.Attached() || ua.Cell.Name != "mnoA" {
		t.Errorf("tenant A UE did not attach under 5%% uplink loss: %v", ua)
	}
	if !ub.Attached() || ub.Cell.Name != "mnoB" {
		t.Errorf("tenant B UE did not attach under 5%% uplink loss: %v", ub)
	}
	var prach uint64
	for _, d := range dep.DUs {
		prach += d.Stats().PRACHDetected
	}
	if prach == 0 {
		t.Error("no PRACH detected at either DU under loss")
	}
	if dep.App.PRACHMuxed.Load() == 0 {
		t.Error("PRACH occasions never traversed the mux path")
	}
	st := inj.Stats()
	if st.Dropped == 0 {
		t.Error("injector dropped nothing at 5% loss")
	}
	// Drop-only profile: delivery is inline, so the accounting identity is
	// exact even mid-run — no silent loss anywhere in the fabric.
	if st.Injected+st.Duplicated != st.Delivered+st.Dropped {
		t.Errorf("accounting broken: %v", st)
	}
	if eng := dep.Engine.Snapshot(); eng.SeqGaps == 0 {
		t.Errorf("engine saw no sequence gaps despite %d injector drops", st.Dropped)
	}
}

// TestChaosDMIMODelayedUplink delays one of two dMIMO RUs' uplink past
// the DU's reception window (ULDeadline is 49µs): the DU must count the
// late arrivals instead of silently mis-combining, and the cell must keep
// serving the UE on the punctual RU's antennas.
func TestChaosDMIMODelayedUplink(t *testing.T) {
	if testing.Short() {
		t.Skip("long system test")
	}
	run := func(delay time.Duration) (ulLate, ulRx uint64, attached bool, ul float64) {
		tb := New(61)
		cell := CellConfig("dmimo-cell", 1, Carrier100(), phy.StackSRSRAN, 4)
		positions := []radio.Point{
			radio.RUAt(0, 20, radio.FloorWidth/2),
			radio.RUAt(0, 25, radio.FloorWidth/2),
		}
		dep, err := tb.DMIMOCell("dm", cell, positions, DMIMOOpts{Mode: core.ModeDPDK, PortsPerRU: 2})
		if err != nil {
			t.Fatal(err)
		}
		if delay > 0 {
			inj := fault.NewInjector(tb.Sched, tb.RNG.Fork(), fault.Profile{Delay: delay})
			inj.Attach(tb.Switch.PortByName("dm-ru1"))
		}
		ue := tb.AddUE(0, 22.5, radio.FloorWidth/2+3)
		ue.OfferedDLbps = 1200e6
		ue.OfferedULbps = 100e6
		tb.Settle()
		tb.Measure(300 * time.Millisecond)
		st := dep.DU.Stats()
		return st.ULLate, st.ULRx, ue.Attached(), ue.ThroughputULbps(tb.Sched.Now())
	}

	cleanLate, _, cleanAttached, cleanUL := run(0)
	if !cleanAttached {
		t.Fatal("baseline dMIMO UE did not attach")
	}
	if cleanLate != 0 {
		t.Fatalf("baseline run already has %d late uplink frames", cleanLate)
	}

	late, rx, attached, ul := run(80 * time.Microsecond) // > 49µs ULDeadline
	if late == 0 {
		t.Fatalf("delaying RU1's uplink by 80µs produced no late frames (rx=%d)", rx)
	}
	if !attached {
		t.Error("UE fell off the cell when one RU's uplink went late")
	}
	if ul >= cleanUL {
		t.Errorf("UL throughput did not degrade: %.1f Mbps late vs %.1f clean", Mbps(ul), Mbps(cleanUL))
	}
	t.Logf("delayed RU: %d/%d uplink frames late, UL %.1f Mbps (clean %.1f)", late, rx, Mbps(ul), Mbps(cleanUL))
}

// TestChaosDeterminism replays the same fault script twice from the same
// seed and demands bit-identical engine and injector statistics — the
// property that makes every chaos scenario a regression test rather than
// a flake generator.
func TestChaosDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("long system test")
	}
	run := func() (core.Stats, fault.Stats) {
		tb := New(62)
		cell := CellConfig("det", 1, Carrier100(), phy.StackSRSRAN, 4)
		dep, err := tb.MonitoredCell("det", cell, RUPosition(0, 0), MonitorOpts{Mode: core.ModeDPDK})
		if err != nil {
			t.Fatal(err)
		}
		inj := fault.NewInjector(tb.Sched, tb.RNG.Fork(), fault.Profile{
			Drop: 0.03, Duplicate: 0.01, Reorder: 0.05,
			Burst: &fault.GilbertElliott{PGoodToBad: 0.002, PBadToGood: 0.2, LossBad: 0.9},
		})
		inj.Attach(tb.Switch.PortByName("det-du"))
		u := tb.AddUE(0, RUXPositions[0]+4, radio.FloorWidth/2)
		u.OfferedDLbps = 300e6
		tb.Settle()
		tb.Run(200 * time.Millisecond)
		return dep.Engine.Snapshot(), inj.Stats()
	}
	eng1, inj1 := run()
	eng2, inj2 := run()
	if !reflect.DeepEqual(eng1, eng2) {
		t.Errorf("engine stats diverged across identical runs:\n  %+v\n  %+v", eng1, eng2)
	}
	if inj1 != inj2 {
		t.Errorf("injector stats diverged across identical runs:\n  %+v\n  %+v", inj1, inj2)
	}
	if eng1.SeqGaps == 0 || inj1.Dropped == 0 {
		t.Errorf("fault script was a no-op: %+v / %+v", eng1, inj1)
	}
}

// TestChaosFailoverLatencyBound pins the detection-latency guarantee the
// chaos experiment reports: with a heartbeat probe arriving at the TDD
// uplink inter-arrival (DDDSU: one probe per 5 slots), a DU silenced by
// the fabric is failed over within FailoverAfter + one inter-arrival.
func TestChaosFailoverLatencyBound(t *testing.T) {
	if testing.Short() {
		t.Skip("long system test")
	}
	tb := New(63)
	mbMAC := tb.NewMAC()
	cellA := CellConfig("lat-a", 1, Carrier100(), phy.StackSRSRAN, 4)
	cellB := CellConfig("lat-b", 2, Carrier100(), phy.StackSRSRAN, 4)
	_, ruMAC := tb.AddRU("lat-ru", RUPosition(0, 0), RUOpts{Carrier: cellA.Carrier, Ports: 4, Peer: mbMAC})
	_, macA := tb.AddDU("lat-duA", DUOpts{Cell: cellA, Peer: mbMAC})
	_, macB := tb.AddDU("lat-duB", DUOpts{Cell: cellB, Peer: mbMAC})

	const failAfter = 3 * time.Millisecond
	app := resilience.New(resilience.Config{
		Name: "lat", MAC: mbMAC, DUs: []eth.MAC{macA, macB}, RU: ruMAC,
		FailoverAfter: failAfter,
	})
	eng, err := core.NewEngine(tb.Sched, core.Config{
		Name: app.Name(), Mode: core.ModeDPDK, App: app, CarrierPRBs: cellA.Carrier.NumPRB,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.AddEngine(eng, mbMAC)
	rec := telemetry.NewRecorder()
	rec.Attach(eng.Bus(), resilience.KPIFailover)

	// Heartbeat probe at the uplink inter-arrival: the RU's uplink is
	// solicited by DU C-plane, so a silenced DU silences the RU too; the
	// probe is what keeps liveness checks flowing.
	interArrival := phy.SlotDuration * 5 // DDDSU TDD period
	probe := tb.Switch.AddPort("lat-probe", nil)
	pb := fh.NewBuilder(tb.NewMAC(), mbMAC, -1)
	tb.Sched.Ticker(interArrival, func() {
		probe.Send(pb.CPlane(ecpri.PcID{}, &oran.CPlaneMsg{
			Timing:      oran.Timing{Direction: oran.Downlink, FrameID: 1},
			SectionType: oran.SectionType1,
			Comp:        BFP9(),
			Sections:    []oran.CSection{{NumPRB: 1, ReMask: 0xfff, NumSymbol: 1}},
		}))
	})

	inj := fault.NewInjector(tb.Sched, tb.RNG.Fork(), fault.Profile{})
	inj.Attach(tb.Switch.PortByName("lat-duA"))

	ue := tb.AddUE(0, RUXPositions[0]+4, radio.FloorWidth/2)
	ue.OfferedDLbps = 300e6
	tb.Settle()
	if !ue.Attached() {
		t.Fatal("UE did not attach")
	}
	tb.Run(200 * time.Millisecond) // arm the detector under load

	tFault := tb.Sched.Now()
	inj.SetDown(true)
	tb.Run(100 * time.Millisecond)

	ev, ok := rec.Last(resilience.KPIFailover)
	if !ok {
		t.Fatal("no failover despite silenced DU")
	}
	lat := time.Duration(ev.At.Sub(tFault))
	bound := failAfter + interArrival
	if lat > bound {
		t.Errorf("failover latency %v exceeds FailoverAfter + one uplink inter-arrival = %v", lat, bound)
	}
	t.Logf("failover in %v (bound %v, %d frames silenced)", lat, bound, inj.Stats().LinkDowns)
}

package testbed

import (
	"fmt"
	"math"
	"testing"
	"time"

	"ranbooster/internal/core"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/telemetry"
)

// TestPRBMonitoringFig10c reproduces §6.2.4 / Fig. 10c: Algorithm 1's
// utilization estimate tracks the MAC scheduling log across offered
// loads.
func TestPRBMonitoringFig10c(t *testing.T) {
	if testing.Short() {
		t.Skip("long system test")
	}
	for _, loadMbps := range []float64{100, 400, 700} {
		loadMbps := loadMbps
		t.Run(fmtMbps(loadMbps), func(t *testing.T) {
			tb := New(40)
			cell := CellConfig("mon-cell", 1, Carrier100(), phy.StackSRSRAN, 4)
			dep, err := tb.MonitoredCell("mon", cell, RUPosition(0, 0), MonitorOpts{Mode: core.ModeDPDK})
			if err != nil {
				t.Fatal(err)
			}
			rec := telemetry.NewRecorder()
			rec.Attach(dep.Engine.Bus(), "")

			ue := tb.AddUE(0, RUXPositions[0]+4, radio.FloorWidth/2)
			ue.OfferedDLbps = loadMbps * 1e6
			ue.OfferedULbps = loadMbps * 1e6 / 10
			tb.Settle()
			if !ue.Attached() {
				t.Fatal("UE did not attach through the monitor")
			}

			before := dep.DU.Stats()
			tb.Measure(500 * time.Millisecond)
			after := dep.DU.Stats()

			truthDL := float64(after.DLPRBSymSched-before.DLPRBSymSched) /
				float64(after.DLPRBSymTotal-before.DLPRBSymTotal)
			truthUL := float64(after.ULPRBSymSched-before.ULPRBSymSched) /
				float64(after.ULPRBSymTotal-before.ULPRBSymTotal)

			estDL := lastValue(rec, "prb.utilization.dl")
			estUL := lastValue(rec, "prb.utilization.ul")
			t.Logf("load %.0f Mbps: DL truth %.3f est %.3f | UL truth %.3f est %.3f",
				loadMbps, truthDL, estDL, truthUL, estUL)
			if math.IsNaN(estDL) || math.IsNaN(estUL) {
				t.Fatal("no telemetry published")
			}
			if math.Abs(estDL-truthDL) > 0.05 {
				t.Errorf("DL estimate %.3f vs ground truth %.3f (>|0.05|)", estDL, truthDL)
			}
			if math.Abs(estUL-truthUL) > 0.05 {
				t.Errorf("UL estimate %.3f vs ground truth %.3f (>|0.05|)", estUL, truthUL)
			}
		})
	}
}

func fmtMbps(v float64) string {
	return fmt.Sprintf("%.0fMbps", v)
}

func lastValue(rec *telemetry.Recorder, name string) float64 {
	s := rec.Series(name)
	if len(s) == 0 {
		return math.NaN()
	}
	return s[len(s)-1].Value
}

// TestPRBMonitoringXDPKernel verifies the pure-kernel variant: the XDP
// exponent counters agree with the DU's scheduling log.
func TestPRBMonitoringXDPKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("long system test")
	}
	tb := New(41)
	cell := CellConfig("mon-cell", 1, Carrier100(), phy.StackSRSRAN, 4)
	dep, err := tb.MonitoredCell("mon", cell, RUPosition(0, 0), MonitorOpts{Mode: core.ModeXDP})
	if err != nil {
		t.Fatal(err)
	}
	ue := tb.AddUE(0, RUXPositions[0]+4, radio.FloorWidth/2)
	ue.OfferedDLbps = 400e6
	tb.Settle()
	if !ue.Attached() {
		t.Fatal("UE did not attach through the XDP monitor")
	}
	beforeUtil := dep.Engine.CounterValue("prb.utilized.dl")
	before := dep.DU.Stats()
	tb.Measure(300 * time.Millisecond)
	after := dep.DU.Stats()
	utilized := dep.Engine.CounterValue("prb.utilized.dl") - beforeUtil

	truth := float64(after.DLPRBSymSched - before.DLPRBSymSched)
	est := float64(utilized)
	t.Logf("kernel counters: utilized %d vs MAC log %.0f PRB-symbols", utilized, truth)
	if truth == 0 {
		t.Fatal("no scheduling happened")
	}
	// The kernel path counts SSB PRBs too; allow a one-sided 10% margin.
	if est < truth*0.95 || est > truth*1.12 {
		t.Errorf("kernel estimate %.0f vs truth %.0f out of band", est, truth)
	}
	if dep.Engine.Snapshot().Punts != 0 {
		t.Errorf("pure-kernel monitor punted %d packets", dep.Engine.Snapshot().Punts)
	}
}

package testbed

import (
	"testing"
	"time"

	"ranbooster/internal/core"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
)

// TestDMIMOTable2 reproduces Table 2: distributed MIMO over two RUs
// placed ~5 m apart matches the co-located single-RU baseline at both 2
// and 4 layers, including the UE rank indicator.
func TestDMIMOTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("long system test")
	}
	type row struct {
		name       string
		layers     int
		portsPerRU int
		wantMbps   float64
	}
	rows := []row{
		{"2-layer dMIMO (two 1-antenna RUs)", 2, 1, 653.4},
		{"4-layer dMIMO (two 2-antenna RUs)", 4, 2, 898.2},
	}
	for _, r := range rows {
		r := r
		t.Run(r.name, func(t *testing.T) {
			tb := New(20)
			cell := CellConfig("dmimo-cell", 1, Carrier100(), phy.StackSRSRAN, r.layers)
			positions := []radio.Point{
				radio.RUAt(0, 20, radio.FloorWidth/2),
				radio.RUAt(0, 25, radio.FloorWidth/2),
			}
			dep, err := tb.DMIMOCell("dm", cell, positions, DMIMOOpts{
				Mode: core.ModeDPDK, PortsPerRU: r.portsPerRU,
			})
			if err != nil {
				t.Fatal(err)
			}
			ue := tb.AddUE(0, 22.5, radio.FloorWidth/2+3) // ~5 m from both RUs
			ue.OfferedDLbps = 1200e6
			ue.OfferedULbps = 100e6
			tb.Settle()
			if !ue.Attached() {
				t.Fatalf("UE did not attach: %v", ue)
			}
			tb.Measure(400 * time.Millisecond)
			dl := ue.ThroughputDLbps(tb.Sched.Now())
			ul := ue.ThroughputULbps(tb.Sched.Now())
			rank := dep.DU.RankIndicator(ue)
			t.Logf("DL %.1f Mbps (paper %.1f), UL %.1f Mbps, rank %d", Mbps(dl), r.wantMbps, Mbps(ul), rank)
			if rank != r.layers {
				t.Errorf("rank indicator = %d, want %d", rank, r.layers)
			}
			if dl < r.wantMbps*1e6*0.88 || dl > r.wantMbps*1e6*1.12 {
				t.Errorf("DL = %.1f Mbps, want %.1f ±12%%", Mbps(dl), r.wantMbps)
			}
			if ul < 55e6 || ul > 85e6 {
				t.Errorf("UL = %.1f Mbps, want ~70", Mbps(ul))
			}
		})
	}
}

// TestDMIMOSSBReplication reproduces the §4.2 SSB discussion: a UE far
// from the primary RU stays attached only when the middlebox copies the
// SSB to secondary antennas.
func TestDMIMOSSBReplication(t *testing.T) {
	if testing.Short() {
		t.Skip("long system test")
	}
	run := func(replicate bool) bool {
		tb := New(21)
		cell := CellConfig("dmimo-cell", 1, Carrier100(), phy.StackSRSRAN, 4)
		positions := []radio.Point{RUPosition(0, 0), RUPosition(0, 3)} // 38 m apart
		if _, err := tb.DMIMOCell("dm", cell, positions, DMIMOOpts{
			Mode: core.ModeDPDK, PortsPerRU: 2, DisableSSBReplication: !replicate,
		}); err != nil {
			t.Fatal(err)
		}
		// UE next to the *secondary* RU, far outside the primary's range.
		ue := tb.AddUE(0, RUXPositions[3]+2, radio.FloorWidth/2)
		tb.Run(300 * time.Millisecond)
		return ue.Attached()
	}
	if !run(true) {
		t.Error("with SSB replication the distant UE should attach")
	}
	if run(false) {
		t.Error("without SSB replication the distant UE should not attach (it never hears the SSB)")
	}
}

// TestDMIMOKernelXDP runs the 4-layer Table 2 row through the verified
// XDP kernel program instead of the userspace handler (Table 1: dMIMO is
// a kernel-space middlebox) and expects identical results.
func TestDMIMOKernelXDP(t *testing.T) {
	if testing.Short() {
		t.Skip("long system test")
	}
	tb := New(22)
	cell := CellConfig("dmimo-cell", 1, Carrier100(), phy.StackSRSRAN, 4)
	positions := []radio.Point{
		radio.RUAt(0, 20, radio.FloorWidth/2),
		radio.RUAt(0, 25, radio.FloorWidth/2),
	}
	dep, err := tb.DMIMOCell("dm", cell, positions, DMIMOOpts{Mode: core.ModeXDP, PortsPerRU: 2})
	if err != nil {
		t.Fatal(err)
	}
	ue := tb.AddUE(0, 22.5, radio.FloorWidth/2+3)
	ue.OfferedDLbps = 1200e6
	tb.Settle()
	if !ue.Attached() {
		t.Fatalf("UE did not attach via XDP dMIMO")
	}
	tb.Measure(300 * time.Millisecond)
	dl := ue.ThroughputDLbps(tb.Sched.Now())
	st := dep.Engine.Snapshot()
	t.Logf("XDP: DL %.1f Mbps, kernelTx %d, punts %d", Mbps(dl), st.KernelTx, st.Punts)
	if dl < 790e6 {
		t.Errorf("XDP dMIMO DL = %.1f Mbps, want ~898", Mbps(dl))
	}
	if st.KernelTx == 0 {
		t.Error("no kernel Tx: the program never matched")
	}
	if st.Punts > st.RxFrames/10 {
		t.Errorf("too many punts for a kernel-space middlebox: %d of %d", st.Punts, st.RxFrames)
	}
}

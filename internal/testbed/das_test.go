package testbed

import (
	"testing"
	"time"

	"ranbooster/internal/air"
	"ranbooster/internal/core"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
)

// TestDASFiveFloors reproduces §6.2.1 / Fig. 10a: one 100 MHz 4x4 cell
// replicated over one RU per floor. UEs on every floor attach (coverage
// extension), and aggregate throughput matches the single-RU baseline.
func TestDASFiveFloors(t *testing.T) {
	if testing.Short() {
		t.Skip("long system test")
	}
	tb := New(10)
	cell := CellConfig("das-cell", 1, Carrier100(), phy.StackSRSRAN, 4)
	var positions []radio.Point
	for f := 0; f < Floors; f++ {
		positions = append(positions, RUPosition(f, 1))
	}
	dep, err := tb.DASCell("das", cell, positions, DASOpts{Mode: core.ModeDPDK, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}

	ues := make([]*ueHandle, Floors)
	for f := 0; f < Floors; f++ {
		u := tb.AddUE(f, RUXPositions[1]+4, radio.FloorWidth/2)
		ues[f] = &ueHandle{u}
	}
	tb.Settle()
	for f, h := range ues {
		if !h.Attached() {
			t.Fatalf("floor %d UE did not attach through the DAS: %v", f, h.UE)
		}
	}

	// Simultaneous iperf on all floors: aggregate == baseline capacity.
	for _, h := range ues {
		h.OfferedDLbps = 300e6
		h.OfferedULbps = 30e6
	}
	tb.Measure(300 * time.Millisecond)
	now := tb.Sched.Now()
	var dl, ul float64
	for _, h := range ues {
		dl += h.ThroughputDLbps(now)
		ul += h.ThroughputULbps(now)
	}
	t.Logf("simultaneous: aggregate DL %.1f Mbps, UL %.1f Mbps (merges %d)", Mbps(dl), Mbps(ul), dep.App.Merges.Load())
	if dl < 790e6 || dl > 1000e6 {
		t.Errorf("aggregate DL = %.1f Mbps, want ~898 (single-cell baseline)", Mbps(dl))
	}
	if ul < 55e6 || ul > 85e6 {
		t.Errorf("aggregate UL = %.1f Mbps, want ~70", Mbps(ul))
	}
	if dep.App.Merges.Load() == 0 {
		t.Error("no uplink merges happened — DAS was not combining")
	}

	// Individual iperf (others idle): each floor alone sees ~baseline.
	for _, h := range ues {
		h.OfferedDLbps, h.OfferedULbps = 0, 0
	}
	u0 := ues[2] // middle floor
	u0.OfferedDLbps = 1000e6
	tb.Measure(200 * time.Millisecond)
	solo := u0.ThroughputDLbps(tb.Sched.Now())
	t.Logf("individual floor 2: DL %.1f Mbps", Mbps(solo))
	if solo < 790e6 || solo > 1000e6 {
		t.Errorf("individual DL = %.1f Mbps, want ~898", Mbps(solo))
	}
}

type ueHandle struct{ *air.UE }

package testbed

import (
	"testing"
	"time"

	"ranbooster/internal/air"
	"ranbooster/internal/core"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
)

// sharedCells builds two 40 MHz cells inside a 100 MHz RU carrier. When
// aligned is true, DU centers follow Appendix A.1.1 so their PRB grids
// land exactly on RU PRB boundaries.
func sharedCells(ruCarrier phy.Carrier, aligned bool) []air.CellConfig {
	duPRBs := phy.PRBsFor(40)
	c1 := phy.AlignedDUCenterHz(ruCarrier, 0, duPRBs)
	c2 := phy.AlignedDUCenterHz(ruCarrier, ruCarrier.NumPRB-duPRBs, duPRBs)
	if !aligned {
		c1 += phy.SCS / 2 // half-subcarrier shift: misaligned grids
		c2 += phy.SCS / 2
	}
	cellA := CellConfig("mnoA", 11, phy.Carrier{BandwidthMHz: 40, CenterHz: c1, NumPRB: duPRBs}, phy.StackSRSRAN, 4)
	cellB := CellConfig("mnoB", 12, phy.Carrier{BandwidthMHz: 40, CenterHz: c2, NumPRB: duPRBs}, phy.StackSRSRAN, 4)
	return []air.CellConfig{cellA, cellB}
}

// TestRUSharingFig10b reproduces §6.2.3 / Fig. 10b: two 40 MHz cells on a
// shared 100 MHz RU deliver the same per-cell throughput as a dedicated
// 40 MHz RU (~330 Mbps DL / ~25 Mbps UL).
func TestRUSharingFig10b(t *testing.T) {
	if testing.Short() {
		t.Skip("long system test")
	}
	// Baseline: dedicated 40 MHz cell.
	base := New(30)
	baseCell := CellConfig("dedicated", 1, phy.NewCarrier(40, 3_460_000_000), phy.StackSRSRAN, 4)
	base.DirectCell("base", baseCell, RUPosition(0, 0), 4, false)
	bu := base.AddUE(0, RUXPositions[0]+4, radio.FloorWidth/2)
	bu.OfferedDLbps, bu.OfferedULbps = 500e6, 50e6
	base.Settle()
	if !bu.Attached() {
		t.Fatal("baseline UE did not attach")
	}
	base.Measure(400 * time.Millisecond)
	baseDL := bu.ThroughputDLbps(base.Sched.Now())
	baseUL := bu.ThroughputULbps(base.Sched.Now())
	t.Logf("dedicated 40 MHz: DL %.1f Mbps, UL %.1f Mbps", Mbps(baseDL), Mbps(baseUL))
	if baseDL < 290e6 || baseDL > 380e6 {
		t.Errorf("baseline DL = %.1f Mbps, want ~330", Mbps(baseDL))
	}

	// Shared RU with two tenants, aligned grids.
	tb := New(31)
	ruCarrier := Carrier100()
	dep, err := tb.SharedRU("shared", ruCarrier, RUPosition(0, 0), sharedCells(ruCarrier, true), core.ModeDPDK)
	if err != nil {
		t.Fatal(err)
	}
	if !dep.App.Aligned(0) || !dep.App.Aligned(1) {
		t.Fatal("Appendix A.1.1 centers should be aligned")
	}
	ua := tb.AddUE(0, RUXPositions[0]+4, radio.FloorWidth/2)
	ua.AllowedCell = "mnoA"
	ub := tb.AddUE(0, RUXPositions[0]-4, radio.FloorWidth/2)
	ub.AllowedCell = "mnoB"
	ua.OfferedDLbps, ua.OfferedULbps = 500e6, 50e6
	ub.OfferedDLbps, ub.OfferedULbps = 500e6, 50e6
	tb.Settle()
	if !ua.Attached() || ua.Cell.Name != "mnoA" {
		t.Fatalf("UE A attach: %v", ua)
	}
	if !ub.Attached() || ub.Cell.Name != "mnoB" {
		t.Fatalf("UE B attach: %v", ub)
	}
	tb.Measure(400 * time.Millisecond)
	now := tb.Sched.Now()
	for name, u := range map[string]*air.UE{"A": ua, "B": ub} {
		dl, ul := u.ThroughputDLbps(now), u.ThroughputULbps(now)
		t.Logf("shared tenant %s: DL %.1f Mbps, UL %.1f Mbps", name, Mbps(dl), Mbps(ul))
		if dl < baseDL*0.9 || dl > baseDL*1.1 {
			t.Errorf("tenant %s DL = %.1f Mbps, want ≈ dedicated %.1f", name, Mbps(dl), Mbps(baseDL))
		}
		if ul < baseUL*0.85 || ul > baseUL*1.15 {
			t.Errorf("tenant %s UL = %.1f Mbps, want ≈ dedicated %.1f", name, Mbps(ul), Mbps(baseUL))
		}
	}
	if dep.App.Muxed.Load() == 0 || dep.App.Demuxed.Load() == 0 || dep.App.PRACHMuxed.Load() == 0 {
		t.Errorf("sharing paths unused: %+v", map[string]uint64{
			"mux": dep.App.Muxed.Load(), "demux": dep.App.Demuxed.Load(), "prach": dep.App.PRACHMuxed.Load()})
	}
	if dep.App.Recompress.Load() != 0 {
		t.Errorf("aligned deployment used the recompress path %d times", dep.App.Recompress.Load())
	}
}

// TestRUSharingMisaligned verifies the Fig. 6 slow path: misaligned DU
// grids still work but must transcode every relocated PRB.
func TestRUSharingMisaligned(t *testing.T) {
	if testing.Short() {
		t.Skip("long system test")
	}
	tb := New(32)
	ruCarrier := Carrier100()
	dep, err := tb.SharedRU("shared", ruCarrier, RUPosition(0, 0), sharedCells(ruCarrier, false), core.ModeDPDK)
	if err != nil {
		t.Fatal(err)
	}
	if dep.App.Aligned(0) || dep.App.Aligned(1) {
		t.Fatal("shifted centers should be misaligned")
	}
	ua := tb.AddUE(0, RUXPositions[0]+4, radio.FloorWidth/2)
	ua.AllowedCell = "mnoA"
	ua.OfferedDLbps = 500e6
	tb.Settle()
	if !ua.Attached() {
		t.Fatal("UE did not attach on misaligned sharing")
	}
	tb.Measure(200 * time.Millisecond)
	dl := ua.ThroughputDLbps(tb.Sched.Now())
	t.Logf("misaligned tenant: DL %.1f Mbps, recompress %d", Mbps(dl), dep.App.Recompress.Load())
	if dl < 290e6 {
		t.Errorf("misaligned DL = %.1f Mbps, want ~330 (correct, just slower)", Mbps(dl))
	}
	if dep.App.Recompress.Load() == 0 {
		t.Error("misaligned deployment never used the recompress path")
	}
	if dep.App.AlignedCopies.Load() != 0 {
		t.Error("misaligned deployment used the aligned fast path")
	}
}

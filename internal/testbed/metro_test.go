package testbed

import (
	"reflect"
	"runtime"
	"testing"

	"ranbooster/internal/core"
	"ranbooster/internal/fault"
	"ranbooster/internal/sim"
)

// soakSlots is the metro soak length: the full run is what `make soak`
// executes; CI's -short pass keeps the same scenario at a tenth of the
// duration.
func soakSlots(t *testing.T) int {
	if testing.Short() {
		return 1_000
	}
	return 10_000
}

func goroutines() int {
	runtime.GC()
	runtime.Gosched()
	return runtime.NumGoroutine()
}

// TestMetroSoak is the seeded metro soak of a 2-chain / 64-RU / 256-stream
// scenario over 10k+ sim slots: frame conservation must balance at every
// hop and end to end, per-eAxC FIFO must hold across both chain hops, the
// fabric must never flood or drop (the FDB is primed), and the run must
// not leak a single goroutine (the deterministic engines spawn none).
func TestMetroSoak(t *testing.T) {
	before := goroutines()
	m, err := NewMetro(MetroConfig{
		Floors: 16, CellsPerFloor: 4, PortsPerRU: 4,
		ChainDepth: 2,
		Cores:      4,
		Scale:      core.ScalePolicy{WorkSteal: true},
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.RunSlots(soakSlots(t))
	m.Flush() // touch every stream so the sink has seen all 256

	rep := m.Conservation(0)
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	sink := m.Sink()
	if sink.Delivered != m.Injected() {
		t.Fatalf("clean fabric lost frames: injected %d, delivered %d", m.Injected(), sink.Delivered)
	}
	if sink.Gaps != 0 || sink.Duplicates != 0 || sink.Reordered != 0 || sink.ParseErrors != 0 {
		t.Fatalf("per-eAxC FIFO violated across the chain: %+v", sink)
	}
	if want := m.Config().Streams(); sink.Streams != want {
		t.Fatalf("sink saw %d streams, want %d", sink.Streams, want)
	}
	for k, e := range m.Engines {
		st := e.Snapshot()
		if st.SeqGaps != 0 || st.Duplicates != 0 || st.Reordered != 0 {
			t.Fatalf("hop %d saw sequence damage on a clean fabric: %+v", k, st)
		}
	}
	for _, sw := range m.Topo.Switches() {
		if sw.Flooded() != 0 || sw.Dropped() != 0 {
			t.Fatalf("%v flooded %d / dropped %d despite FDB priming", sw, sw.Flooded(), sw.Dropped())
		}
	}
	if after := goroutines(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// metroFaultRun executes the chained-middlebox fault scenario once:
// Gilbert–Elliott burst loss on the inter-hop trunk (hop 0 → hop 1
// direction only), after a warmup that establishes every stream's
// sequence baseline at every hop so each subsequent drop is countable.
func metroFaultRun(t *testing.T, seed uint64) (ConservationReport, fault.Stats) {
	t.Helper()
	m, err := NewMetro(MetroConfig{
		Floors: 8, CellsPerFloor: 4, PortsPerRU: 4,
		ChainDepth: 2,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Flush() // warmup: every hop and the sink see every stream once

	inj := fault.NewInjector(m.Sched, sim.NewRNG(seed^0xFA01), fault.Profile{
		Burst: &fault.GilbertElliott{
			PGoodToBad: 0.02, PBadToGood: 0.25,
			LossGood: 0, LossBad: 0.8,
		},
	})
	inj.Attach(m.Trunks[0].B)
	slots := 2_000
	if testing.Short() {
		slots = 400
	}
	m.RunSlots(slots)
	inj.Detach(m.Trunks[0].B)
	m.Flush() // surface tail drops as gaps on every stream

	return m.Conservation(inj.Stats().Dropped), inj.Stats()
}

// TestMetroChainFaultAccounting pins the exact loss-accounting identity
// of a chained deployment: the downstream engine's SeqGaps counter must
// equal the trunk injector's drop count frame for frame — no drift, no
// double counting — and the end-to-end conservation ledger must balance
// with the trunk loss included. The upstream engine, ahead of the fault,
// must see no damage at all.
func TestMetroChainFaultAccounting(t *testing.T) {
	rep, fs := metroFaultRun(t, 7)
	if fs.Dropped == 0 {
		t.Fatal("fault profile dropped nothing; the test exercises no accounting")
	}
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	// Injector sits between hop 0 and hop 1: hop 0 is untouched.
	if rep.Hops[0].Arrived != rep.Injected || rep.Hops[0].Lost != 0 {
		t.Fatalf("upstream hop disturbed by downstream fault: %+v", rep.Hops[0])
	}
	if got, want := rep.Hops[1].Arrived, rep.Hops[0].Forwarded-fs.Dropped; got != want {
		t.Fatalf("hop 1 arrivals %d, want forwarded %d - dropped %d = %d",
			got, rep.Hops[0].Forwarded, fs.Dropped, want)
	}
	if rep.Sink.Gaps != fs.Dropped {
		t.Fatalf("sink gap accounting drifted: %d gaps, injector dropped %d", rep.Sink.Gaps, fs.Dropped)
	}
	if rep.Sink.Duplicates != 0 || rep.Sink.Reordered != 0 {
		t.Fatalf("loss-only fault produced FIFO violations: %+v", rep.Sink)
	}
}

// TestMetroChainFaultDeterminism replays the fault scenario with the
// same seed and requires bit-identical accounting: same injector
// decisions, same per-hop ledgers, same sink observations.
func TestMetroChainFaultDeterminism(t *testing.T) {
	rep1, fs1 := metroFaultRun(t, 99)
	rep2, fs2 := metroFaultRun(t, 99)
	if fs1 != fs2 {
		t.Fatalf("injector stats diverged between same-seed runs:\n%v\n%v", fs1, fs2)
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("conservation reports diverged between same-seed runs:\n%+v\n%+v", rep1, rep2)
	}
}

// TestMetroScaleCompletes runs the acceptance-scale scenario — 256 RUs,
// 1024 eAxC streams, chain depth 3 — to completion with work-stealing
// engines and bounded goroutines, verifying the conservation ledger and
// that every stream makes it through all three hops.
func TestMetroScaleCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("metro acceptance scale skipped in short mode")
	}
	before := goroutines()
	m, err := NewMetro(MetroConfig{
		Floors: 64, CellsPerFloor: 4, PortsPerRU: 4,
		ChainDepth:  3,
		Cores:       4,
		Scale:       core.ScalePolicy{WorkSteal: true},
		MeanPerSlot: 0.5,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Config().Streams(); got != 1024 {
		t.Fatalf("scenario holds %d streams, want 1024", got)
	}
	m.RunSlots(200)
	m.Flush()

	rep := m.Conservation(0)
	if err := rep.Check(); err != nil {
		t.Fatal(err)
	}
	sink := m.Sink()
	if sink.Streams != 1024 || sink.Delivered != m.Injected() {
		t.Fatalf("scale run incomplete: %+v of %d injected", sink, m.Injected())
	}
	if sink.Gaps != 0 || sink.Duplicates != 0 || sink.Reordered != 0 {
		t.Fatalf("FIFO violated at scale: %+v", sink)
	}
	if after := goroutines(); after > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

package testbed

import (
	"testing"
	"time"

	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
)

// TestBaselineCellAttachAndThroughput is the end-to-end smoke test of the
// whole substrate with no middlebox: a 100 MHz 4x4 cell, one RU, one UE
// at close range — the Table 2 row 3 baseline (~898 Mbps DL) and the
// §6.2.2 uplink (~70 Mbps).
func TestBaselineCellAttachAndThroughput(t *testing.T) {
	tb := New(1)
	cell := CellConfig("cell0", 1, Carrier100(), phy.StackSRSRAN, 4)
	d, _ := tb.DirectCell("c0", cell, RUPosition(0, 0), 4, false)

	ue := tb.AddUE(0, RUXPositions[0]+4, radio.FloorWidth/2)
	ue.OfferedDLbps = 1200e6
	ue.OfferedULbps = 100e6

	tb.Settle()
	if !ue.Attached() {
		t.Fatalf("UE did not attach: %v", ue)
	}
	if ue.Cell.Name != "cell0" {
		t.Fatalf("attached to %s", ue.Cell.Name)
	}

	elapsed := tb.Measure(500 * time.Millisecond)
	dl := ue.ThroughputDLbps(tb.Sched.Now())
	ul := ue.ThroughputULbps(tb.Sched.Now())
	t.Logf("elapsed %v: DL %.1f Mbps, UL %.1f Mbps, rank %d", elapsed, Mbps(dl), Mbps(ul), d.RankIndicator(ue))

	if dl < 800e6 || dl > 1000e6 {
		t.Errorf("DL throughput = %.1f Mbps, want ~898 (±10%%)", Mbps(dl))
	}
	if ul < 60e6 || ul > 82e6 {
		t.Errorf("UL throughput = %.1f Mbps, want ~70 (±15%%)", Mbps(ul))
	}
	if rank := d.RankIndicator(ue); rank != 4 {
		t.Errorf("rank indicator = %d, want 4", rank)
	}
	st := d.Stats()
	if st.ULLate > st.ULRx/100 {
		t.Errorf("late uplink packets: %d of %d", st.ULLate, st.ULRx)
	}
}

// TestUpperFloorUnattachable verifies the §6.2.1 negative result: a UE on
// the floor above a single ground-floor cell cannot attach.
func TestUpperFloorUnattachable(t *testing.T) {
	tb := New(2)
	cell := CellConfig("cell0", 1, Carrier100(), phy.StackSRSRAN, 4)
	tb.DirectCell("c0", cell, RUPosition(0, 0), 4, false)
	up := tb.AddUE(1, RUXPositions[0], radio.FloorWidth/2)
	tb.Run(200 * time.Millisecond)
	if up.Attached() {
		t.Fatalf("upper-floor UE attached: %v", up)
	}
}

// TestTwoUEsShareCell verifies aggregate capacity splits across UEs
// without loss (the Fig. 10a setup with two UEs near the RU).
func TestTwoUEsShareCell(t *testing.T) {
	tb := New(3)
	cell := CellConfig("cell0", 1, Carrier100(), phy.StackSRSRAN, 4)
	tb.DirectCell("c0", cell, RUPosition(0, 1), 4, false)
	a := tb.AddUE(0, RUXPositions[1]-3, radio.FloorWidth/2)
	b := tb.AddUE(0, RUXPositions[1]+3, radio.FloorWidth/2)
	a.OfferedDLbps = 600e6
	b.OfferedDLbps = 600e6
	tb.Settle()
	if !a.Attached() || !b.Attached() {
		t.Fatalf("attach failed: %v %v", a, b)
	}
	tb.Measure(300 * time.Millisecond)
	sum := a.ThroughputDLbps(tb.Sched.Now()) + b.ThroughputDLbps(tb.Sched.Now())
	if sum < 800e6 || sum > 1000e6 {
		t.Errorf("aggregate DL = %.1f Mbps, want ~898", Mbps(sum))
	}
}

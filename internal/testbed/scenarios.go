package testbed

import (
	"fmt"
	"time"

	"ranbooster/internal/air"
	"ranbooster/internal/apps/das"
	"ranbooster/internal/apps/dmimo"
	"ranbooster/internal/apps/prbmon"
	"ranbooster/internal/apps/rushare"
	"ranbooster/internal/core"
	"ranbooster/internal/du"
	"ranbooster/internal/eth"
	"ranbooster/internal/fabric"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/ru"
)

// Scenario constructors: the deployments of §4 and §6, assembled from
// testbed primitives. Each returns the live components so tests and
// experiment runners can probe them.

// DASDeployment is an assembled §4.1 scenario.
type DASDeployment struct {
	DU     *du.DU
	RUs    []*ru.RU
	App    *das.App
	Engine *core.Engine
	Port   *fabric.Port
}

// DASOpts tunes a DAS deployment.
type DASOpts struct {
	Mode  core.Mode
	Cores int
	// Cheap selects budget RU elements; Ports antennas per RU.
	Cheap bool
	Ports int
	// Trace enables the engine's frame-span trace collector.
	Trace bool
}

// DASCell deploys one cell whose signal a DAS middlebox replicates over
// RUs at the given positions.
func (tb *TB) DASCell(name string, cell air.CellConfig, positions []radio.Point, opts DASOpts) (*DASDeployment, error) {
	if opts.Ports <= 0 {
		opts.Ports = 4
	}
	if opts.Cores <= 0 {
		opts.Cores = 1
	}
	mbMAC := tb.NewMAC()

	var rus []*ru.RU
	var ruMACs []eth.MAC
	for i, pos := range positions {
		r, mac := tb.AddRU(fmt.Sprintf("%s-ru%d", name, i), pos, RUOpts{
			Carrier: cell.Carrier, Ports: opts.Ports, Cheap: opts.Cheap, Peer: mbMAC,
		})
		rus = append(rus, r)
		ruMACs = append(ruMACs, mac)
	}
	d, duMAC := tb.AddDU(name+"-du", DUOpts{Cell: cell, Peer: mbMAC})

	app := das.New(das.Config{
		Name: name + "-das", MAC: mbMAC, DU: duMAC, RUs: ruMACs,
		CarrierPRBs: cell.Carrier.NumPRB,
	})
	eng, err := core.NewEngine(tb.Sched, core.Config{
		Name: app.Name(), Mode: opts.Mode, Cores: opts.Cores, App: app,
		CarrierPRBs: cell.Carrier.NumPRB,
		Kernel:      dasKernel(),
		Trace:       opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	port := tb.AddEngine(eng, mbMAC)
	return &DASDeployment{DU: d, RUs: rus, App: app, Engine: eng, Port: port}, nil
}

// dasKernel is the DAS middlebox's XDP program: everything punts to
// userspace (Table 1: DAS processes in userspace — caching and IQ merging
// are beyond the kernel restrictions).
func dasKernel() *core.KernelProgram {
	return &core.KernelProgram{Rules: []core.Rule{{Verdict: core.VerdictPass}}}
}

// DMIMODeployment is an assembled §4.2 scenario.
type DMIMODeployment struct {
	DU     *du.DU
	RUs    []*ru.RU
	App    *dmimo.App
	Engine *core.Engine
}

// DMIMOOpts tunes a dMIMO deployment.
type DMIMOOpts struct {
	Mode core.Mode
	// PortsPerRU antennas contributed by each RU.
	PortsPerRU int
	Cheap      bool
	// DisableSSBReplication reproduces the §4.2 failure mode.
	DisableSSBReplication bool
	// Trace enables the engine's frame-span trace collector.
	Trace bool
}

// DMIMOCell combines RUs at the given positions into one virtual RU of
// Σports layers driven by a single cell.
func (tb *TB) DMIMOCell(name string, cell air.CellConfig, positions []radio.Point, opts DMIMOOpts) (*DMIMODeployment, error) {
	if opts.PortsPerRU <= 0 {
		opts.PortsPerRU = 1
	}
	mbMAC := tb.NewMAC()
	var rus []*ru.RU
	var slots []dmimo.RUSlot
	for i, pos := range positions {
		r, mac := tb.AddRU(fmt.Sprintf("%s-ru%d", name, i), pos, RUOpts{
			Carrier: cell.Carrier, Ports: opts.PortsPerRU, Cheap: opts.Cheap, Peer: mbMAC,
		})
		rus = append(rus, r)
		slots = append(slots, dmimo.RUSlot{MAC: mac, Ports: opts.PortsPerRU})
	}
	d, duMAC := tb.AddDU(name+"-du", DUOpts{Cell: cell, Peer: mbMAC})

	app := dmimo.New(dmimo.Config{
		Name: name + "-dmimo", MAC: mbMAC, DU: duMAC, RUs: slots,
		SSB: cell.SSB, ReplicateSSB: !opts.DisableSSBReplication,
		CarrierPRBs: cell.Carrier.NumPRB,
	})
	eng, err := core.NewEngine(tb.Sched, core.Config{
		Name: app.Name(), Mode: opts.Mode, App: app,
		Kernel:      app.KernelProgram(),
		CarrierPRBs: cell.Carrier.NumPRB,
		Trace:       opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	tb.AddEngine(eng, mbMAC)
	return &DMIMODeployment{DU: d, RUs: rus, App: app, Engine: eng}, nil
}

// SharedRUDeployment is an assembled §4.3 scenario.
type SharedRUDeployment struct {
	DUs    []*du.DU
	RU     *ru.RU
	App    *rushare.App
	Engine *core.Engine
}

// SharedRU deploys one RU whose spectrum the given cells share. Cell
// carriers must fit inside ruCarrier; alignment is whatever their center
// frequencies imply (Appendix A.1.1).
func (tb *TB) SharedRU(name string, ruCarrier phy.Carrier, pos radio.Point, cells []air.CellConfig, mode core.Mode) (*SharedRUDeployment, error) {
	mbMAC := tb.NewMAC()
	r, ruMAC := tb.AddRU(name+"-ru", pos, RUOpts{Carrier: ruCarrier, Ports: 4, Peer: mbMAC})

	var dus []*du.DU
	var infos []rushare.DUInfo
	for i, cell := range cells {
		d, duMAC := tb.AddDU(fmt.Sprintf("%s-du%d", name, i), DUOpts{
			Cell: cell, Peer: mbMAC, DUPortID: uint8(i + 1),
		})
		dus = append(dus, d)
		infos = append(infos, rushare.DUInfo{MAC: duMAC, Carrier: cell.Carrier, PortID: uint8(i + 1)})
	}
	app, err := rushare.New(rushare.Config{
		Name: name + "-rushare", MAC: mbMAC, RU: ruMAC,
		RUCarrier: ruCarrier, Comp: BFP9(), DUs: infos,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Name: app.Name(), Mode: mode, App: app,
		CarrierPRBs: ruCarrier.NumPRB,
	}
	if mode == core.ModeXDP {
		// Caching and PRB relocation exceed the kernel restrictions: the
		// whole datapath punts to userspace over AF_XDP (Table 1).
		cfg.Kernel = &core.KernelProgram{Rules: []core.Rule{{Verdict: core.VerdictPass}}}
	}
	eng, err := core.NewEngine(tb.Sched, cfg)
	if err != nil {
		return nil, err
	}
	tb.AddEngine(eng, mbMAC)
	return &SharedRUDeployment{DUs: dus, RU: r, App: app, Engine: eng}, nil
}

// MonitoredDeployment is an assembled §4.4 scenario: a direct cell with a
// PRB monitor bumped into the wire.
type MonitoredDeployment struct {
	DU     *du.DU
	RU     *ru.RU
	App    *prbmon.App
	Engine *core.Engine
}

// MonitorOpts tunes a MonitoredCell.
type MonitorOpts struct {
	Mode core.Mode
	// Estimator selects Algorithm 1's exponent shortcut or the
	// energy-threshold alternative (the §4.4 ablation).
	Estimator prbmon.Estimator
	// Trace enables the engine's frame-span trace collector.
	Trace bool
}

// MonitoredCell wires DU→monitor→RU.
func (tb *TB) MonitoredCell(name string, cell air.CellConfig, pos radio.Point, opts MonitorOpts) (*MonitoredDeployment, error) {
	mbMAC := tb.NewMAC()
	r, ruMAC := tb.AddRU(name+"-ru", pos, RUOpts{Carrier: cell.Carrier, Ports: 4, Peer: mbMAC})
	d, duMAC := tb.AddDU(name+"-du", DUOpts{Cell: cell, Peer: mbMAC})

	app := prbmon.New(prbmon.Config{
		Name: name + "-prbmon", MAC: mbMAC, DU: duMAC, RU: ruMAC,
		Carrier: cell.Carrier, TDD: cell.TDD,
		ThrDL: prbmon.DefaultThrDL, ThrUL: prbmon.DefaultThrUL,
		Method:   opts.Estimator,
		Interval: 100 * time.Millisecond,
	})
	eng, err := core.NewEngine(tb.Sched, core.Config{
		Name: app.Name(), Mode: opts.Mode, App: app,
		Kernel:      app.KernelProgram(),
		CarrierPRBs: cell.Carrier.NumPRB,
		Trace:       opts.Trace,
	})
	if err != nil {
		return nil, err
	}
	tb.AddEngine(eng, mbMAC)
	return &MonitoredDeployment{DU: d, RU: r, App: app, Engine: eng}, nil
}

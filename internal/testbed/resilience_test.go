package testbed

import (
	"testing"
	"time"

	"ranbooster/internal/apps/resilience"
	"ranbooster/internal/core"
	"ranbooster/internal/eth"
	"ranbooster/internal/radio"
	"ranbooster/internal/telemetry"

	"ranbooster/internal/phy"
)

// TestResilienceFailover exercises the §8.1 RAN-resilience middlebox: the
// active DU dies mid-run; the middlebox detects the downlink silence from
// inter-packet gaps and re-routes the RU to the standby DU within a few
// milliseconds, after which the UE re-attaches and traffic resumes — with
// no RU reconfiguration.
func TestResilienceFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("long system test")
	}
	tb := New(50)
	mbMAC := tb.NewMAC()
	// The standby is an independent cell (own PCI): a UE recovers by
	// re-attaching to it once the primary's SSB goes stale.
	cellA := CellConfig("res-a", 1, Carrier100(), phy.StackSRSRAN, 4)
	cellB := CellConfig("res-b", 2, Carrier100(), phy.StackSRSRAN, 4)

	_, ruMAC := tb.AddRU("res-ru", RUPosition(0, 0), RUOpts{Carrier: cellA.Carrier, Ports: 4, Peer: mbMAC})
	duA, macA := tb.AddDU("res-duA", DUOpts{Cell: cellA, Peer: mbMAC})
	_, macB := tb.AddDU("res-duB", DUOpts{Cell: cellB, Peer: mbMAC})

	app := resilience.New(resilience.Config{
		Name: "res", MAC: mbMAC, DUs: []eth.MAC{macA, macB}, RU: ruMAC,
		FailoverAfter: 3 * time.Millisecond,
	})
	eng, err := core.NewEngine(tb.Sched, core.Config{
		Name: app.Name(), Mode: core.ModeDPDK, App: app, CarrierPRBs: cellA.Carrier.NumPRB,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.AddEngine(eng, mbMAC)
	rec := telemetry.NewRecorder()
	rec.Attach(eng.Bus(), resilience.KPIFailover)

	ue := tb.AddUE(0, RUXPositions[0]+4, radio.FloorWidth/2)
	ue.OfferedDLbps = 300e6
	tb.Settle()
	if !ue.Attached() {
		t.Fatal("UE did not attach via the resilience middlebox")
	}
	tb.Measure(200 * time.Millisecond)
	before := ue.ThroughputDLbps(tb.Sched.Now())
	if before < 250e6 {
		t.Fatalf("pre-failure DL = %.1f Mbps", Mbps(before))
	}
	if app.Active() != 0 {
		t.Fatalf("active = %d before failure", app.Active())
	}

	// Kill the active DU.
	duA.Stop()
	tb.Run(100 * time.Millisecond)
	if app.Active() != 1 {
		t.Fatalf("failover did not happen: active = %d", app.Active())
	}
	if len(rec.Series(resilience.KPIFailover)) != 1 {
		t.Fatal("failover not published")
	}
	// The UE recovers on the standby (it re-attaches after the outage).
	tb.Run(300 * time.Millisecond)
	if !ue.Attached() || ue.Cell.Name != "res-b" {
		t.Fatalf("UE did not recover on the standby DU: %v", ue)
	}
	tb.Measure(200 * time.Millisecond)
	after := ue.ThroughputDLbps(tb.Sched.Now())
	if after < before*0.9 {
		t.Fatalf("post-failover DL = %.1f Mbps, want ≈ %.1f", Mbps(after), Mbps(before))
	}

	// Failover latency: the gap between the last DL and the published
	// failover must be within a few ms of the configured threshold.
	ev := rec.Series(resilience.KPIFailover)[0]
	if d := time.Duration(ev.At); d <= 0 {
		t.Fatalf("failover timestamp %v", d)
	}
}

// TestResilienceCascadingFailover kills the active DU twice: the detector
// must re-arm against each replacement (resilience.App.rearm), so when
// the first standby also dies the second one takes over in turn.
func TestResilienceCascadingFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("long system test")
	}
	tb := New(51)
	mbMAC := tb.NewMAC()
	cellA := CellConfig("casc-a", 1, Carrier100(), phy.StackSRSRAN, 4)
	cellB := CellConfig("casc-b", 2, Carrier100(), phy.StackSRSRAN, 4)
	cellC := CellConfig("casc-c", 3, Carrier100(), phy.StackSRSRAN, 4)

	_, ruMAC := tb.AddRU("casc-ru", RUPosition(0, 0), RUOpts{Carrier: cellA.Carrier, Ports: 4, Peer: mbMAC})
	duA, macA := tb.AddDU("casc-duA", DUOpts{Cell: cellA, Peer: mbMAC})
	duB, macB := tb.AddDU("casc-duB", DUOpts{Cell: cellB, Peer: mbMAC})
	_, macC := tb.AddDU("casc-duC", DUOpts{Cell: cellC, Peer: mbMAC})

	app := resilience.New(resilience.Config{
		Name: "casc", MAC: mbMAC, DUs: []eth.MAC{macA, macB, macC}, RU: ruMAC,
		FailoverAfter: 3 * time.Millisecond,
	})
	eng, err := core.NewEngine(tb.Sched, core.Config{
		Name: app.Name(), Mode: core.ModeDPDK, App: app, CarrierPRBs: cellA.Carrier.NumPRB,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.AddEngine(eng, mbMAC)
	rec := telemetry.NewRecorder()
	rec.Attach(eng.Bus(), resilience.KPIFailover)

	ue := tb.AddUE(0, RUXPositions[0]+4, radio.FloorWidth/2)
	ue.OfferedDLbps = 300e6
	tb.Settle()
	if !ue.Attached() {
		t.Fatal("UE did not attach")
	}
	tb.Run(200 * time.Millisecond) // loaded downlink arms the detector

	// First failure: A dies, B takes over.
	duA.Stop()
	tb.Run(100 * time.Millisecond)
	if app.Active() != 1 {
		t.Fatalf("first failover did not happen: active = %d", app.Active())
	}
	// Let the UE recover on B and the re-armed detector see B's loaded
	// cadence.
	tb.Run(300 * time.Millisecond)
	if !ue.Attached() || ue.Cell.Name != "casc-b" {
		t.Fatalf("UE did not recover on first standby: %v", ue)
	}
	tb.Run(200 * time.Millisecond)

	// Second failure: B dies too; the second standby must take over,
	// which only works if the detector re-armed against B.
	duB.Stop()
	tb.Run(100 * time.Millisecond)
	if app.Active() != 2 {
		t.Fatalf("cascading failover did not happen: active = %d", app.Active())
	}
	tb.Run(300 * time.Millisecond)
	if !ue.Attached() || ue.Cell.Name != "casc-c" {
		t.Fatalf("UE did not recover on second standby: %v", ue)
	}
	if got := len(rec.Series(resilience.KPIFailover)); got != 2 {
		t.Fatalf("published %d failovers, want 2", got)
	}
	if app.Failovers != 2 {
		t.Fatalf("Failovers = %d, want 2", app.Failovers)
	}
}

package phy

import (
	"fmt"
	"strings"
)

// SlotKind classifies a slot in a TDD pattern.
type SlotKind uint8

// Slot kinds.
const (
	SlotDL SlotKind = iota
	SlotUL
	SlotSpecial
)

// String renders the kind as the usual single letter.
func (k SlotKind) String() string {
	switch k {
	case SlotDL:
		return "D"
	case SlotUL:
		return "U"
	default:
		return "S"
	}
}

// TDD describes a repeating time-division duplex pattern, plus the symbol
// split inside special slots. The paper notes the TDD pattern was one of
// the few per-stack configuration differences.
type TDD struct {
	pattern []SlotKind
	// Special-slot symbol split: DL symbols, guard symbols, UL symbols.
	SpecialDL, SpecialGuard, SpecialUL int
}

// ParseTDD parses a pattern string such as "DDDSU" or "DDDDDDDSUU".
// The special split defaults to 10 DL / 2 guard / 2 UL symbols.
func ParseTDD(s string) (TDD, error) {
	if s == "" {
		return TDD{}, fmt.Errorf("phy: empty TDD pattern")
	}
	t := TDD{SpecialDL: 10, SpecialGuard: 2, SpecialUL: 2}
	for _, c := range strings.ToUpper(s) {
		switch c {
		case 'D':
			t.pattern = append(t.pattern, SlotDL)
		case 'U':
			t.pattern = append(t.pattern, SlotUL)
		case 'S':
			t.pattern = append(t.pattern, SlotSpecial)
		default:
			return TDD{}, fmt.Errorf("phy: bad TDD slot %q in %q", c, s)
		}
	}
	return t, nil
}

// MustTDD is ParseTDD for static configuration.
func MustTDD(s string) TDD {
	t, err := ParseTDD(s)
	if err != nil {
		panic(err)
	}
	return t
}

// Period returns the pattern length in slots.
func (t TDD) Period() int { return len(t.pattern) }

// Kind returns the kind of slot absSlot (absolute slot counter).
func (t TDD) Kind(absSlot int) SlotKind { return t.pattern[absSlot%len(t.pattern)] }

// String reconstitutes the pattern string.
func (t TDD) String() string {
	var b strings.Builder
	for _, k := range t.pattern {
		b.WriteString(k.String())
	}
	return b.String()
}

// SymbolDir reports whether symbol sym of absolute slot absSlot is a
// downlink or uplink symbol (guard symbols count as neither and report
// ok=false).
func (t TDD) SymbolDir(absSlot, sym int) (dl bool, ok bool) {
	switch t.Kind(absSlot) {
	case SlotDL:
		return true, true
	case SlotUL:
		return false, true
	default:
		if sym < t.SpecialDL {
			return true, true
		}
		if sym >= SymbolsPerSlot-t.SpecialUL {
			return false, true
		}
		return false, false
	}
}

// DLSymbolFraction returns the fraction of symbols in one pattern period
// that carry downlink.
func (t TDD) DLSymbolFraction() float64 {
	dl, total := 0, 0
	for _, k := range t.pattern {
		total += SymbolsPerSlot
		switch k {
		case SlotDL:
			dl += SymbolsPerSlot
		case SlotSpecial:
			dl += t.SpecialDL
		}
	}
	return float64(dl) / float64(total)
}

// ULSymbolFraction returns the uplink symbol fraction of one period.
func (t TDD) ULSymbolFraction() float64 {
	ul, total := 0, 0
	for _, k := range t.pattern {
		total += SymbolsPerSlot
		switch k {
		case SlotUL:
			ul += SymbolsPerSlot
		case SlotSpecial:
			ul += t.SpecialUL
		}
	}
	return float64(ul) / float64(total)
}

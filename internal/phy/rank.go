package phy

// AdaptRank picks the transmission rank that maximizes throughput for the
// given antenna-element SINRs, the way the DU's outer-loop link adaptation
// would: each candidate rank pools the element powers, splits them across
// layers, and the rank with the highest layers×efficiency product wins.
// It returns the chosen rank and its per-layer SINR.
//
// This is where distributed deployments differentiate themselves: a UE at
// a cell-edge under interference collapses to rank 1–2 (the dips of
// Fig. 11b), while a UE inside a dMIMO cluster sustains rank 4 (Table 2).
func AdaptRank(elementsLinear []float64, maxLayers int, capDB float64) (layers int, layerSINRdB float64) {
	if len(elementsLinear) == 0 {
		return 0, 0
	}
	if maxLayers > len(elementsLinear) {
		maxLayers = len(elementsLinear)
	}
	bestL, bestTput := 1, -1.0
	bestSINR := LayerSINRdB(elementsLinear, 1, capDB)
	for l := 1; l <= maxLayers; l++ {
		s := LayerSINRdB(elementsLinear, l, capDB)
		tput := float64(l) * EfficiencyForCQI(CQIFromSINR(s))
		if tput > bestTput {
			bestL, bestTput, bestSINR = l, tput, s
		}
	}
	return bestL, bestSINR
}

package phy

import (
	"time"

	"ranbooster/internal/sim"
)

// The simulation's absolute time grid: virtual time zero is the start of
// frame 0, slot 0, symbol 0. Every actor derives frame/slot/symbol
// coordinates from the shared clock, standing in for the PTP/SyncE
// synchronization of the real testbed.

// SlotStart returns the virtual time at which absSlot begins.
func SlotStart(absSlot int) sim.Time {
	return sim.Time(int64(absSlot) * int64(SlotDuration))
}

// SymbolStart returns the virtual time at which a symbol of absSlot begins.
func SymbolStart(absSlot, symbol int) sim.Time {
	return SlotStart(absSlot).Add(time.Duration(symbol) * SymbolDuration)
}

// SymbolEnd returns the virtual time at which a symbol of absSlot ends.
func SymbolEnd(absSlot, symbol int) sim.Time {
	return SymbolStart(absSlot, symbol).Add(SymbolDuration)
}

// SlotAt returns the absolute slot index containing time t.
func SlotAt(t sim.Time) int {
	return int(int64(t) / int64(SlotDuration))
}

// SlotCoords splits an absolute slot index into the (frame, subframe,
// slot) coordinates carried by fronthaul timing headers. FrameID wraps at
// 256 as on the wire.
func SlotCoords(absSlot int) (frame uint8, subframe uint8, slot uint8) {
	f := absSlot / SlotsPerFrame
	rem := absSlot % SlotsPerFrame
	return uint8(f % 256), uint8(rem / SlotsPerSubframe), uint8(rem % SlotsPerSubframe)
}

// FrameOf returns the frame number (not wrapped) of an absolute slot.
func FrameOf(absSlot int) int { return absSlot / SlotsPerFrame }

// SlotInFrame returns the slot index within its frame.
func SlotInFrame(absSlot int) int { return absSlot % SlotsPerFrame }

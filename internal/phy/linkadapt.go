package phy

import (
	"math"
	"time"
)

// Link adaptation: SINR → CQI → spectral efficiency, as a scheduler would
// run it. The constants below were calibrated once against the paper's
// measured throughputs (srsRAN, 100 MHz n78 cell; see EXPERIMENTS.md) and
// then frozen; all experiments share them.

// cqiEfficiency is the spectral efficiency (bits per resource element) of
// each 4-bit CQI index from the 256QAM table (3GPP TS 38.214 Table
// 5.2.2.1-3). Index 0 means out of range.
var cqiEfficiency = [16]float64{
	0, 0.1523, 0.3770, 0.8770, 1.4766, 1.9141, 2.4063, 2.7305,
	3.3223, 3.9023, 4.5234, 5.1152, 5.5547, 6.2266, 6.9141, 7.4063,
}

// cqiThresholdDB is the minimum SINR (dB) at which each CQI index is
// selected for a 10% BLER target (standard link-level curves).
var cqiThresholdDB = [16]float64{
	math.Inf(-1), -6.7, -4.7, -2.3, 0.2, 2.4, 4.3, 5.9,
	8.1, 10.3, 11.7, 14.1, 16.3, 18.7, 21.0, 22.7,
}

// Implementation limits of the testbed radios and stacks.
const (
	// SINRCapDL is the downlink SINR ceiling (dB) set by transmitter EVM:
	// no matter how close the UE stands, effective SINR saturates here.
	SINRCapDL = 22.0
	// SINRCapUL is the uplink equivalent; UE transmitters are worse.
	SINRCapUL = 13.0
	// PHYOverhead is the fraction of resource elements spent on DMRS,
	// control channels and other overhead.
	PHYOverhead = 0.14
)

// rankPenaltyDB is the effective per-layer SINR loss from inter-layer
// interference at each transmission rank (beyond the ideal power split,
// which Layers accounts for separately). Calibrated so that the Table 2
// throughputs reproduce.
var rankPenaltyDB = [5]float64{0, 0, 0, 5, 9}

// CQIFromSINR returns the highest CQI whose threshold the SINR meets.
func CQIFromSINR(sinrDB float64) int {
	cqi := 0
	for i := 1; i < len(cqiThresholdDB); i++ {
		if sinrDB >= cqiThresholdDB[i] {
			cqi = i
		}
	}
	return cqi
}

// EfficiencyForCQI returns bits per resource element at a CQI index.
func EfficiencyForCQI(cqi int) float64 {
	if cqi < 0 || cqi >= len(cqiEfficiency) {
		return 0
	}
	return cqiEfficiency[cqi]
}

// LayerSINRdB computes the per-layer SINR of a rank-layers transmission
// over antenna elements whose individual signal-to-(interference+noise)
// ratios are given in linear scale. Joint precoding pools the element
// powers and splits them across layers; the result is capped at capDB and
// reduced by the rank penalty. This one formula covers co-located MIMO,
// DAS (same signal everywhere) and distributed MIMO (unequal elements).
func LayerSINRdB(elementsLinear []float64, layers int, capDB float64) float64 {
	if layers <= 0 || len(elementsLinear) == 0 {
		return math.Inf(-1)
	}
	var sum float64
	for _, p := range elementsLinear {
		sum += p
	}
	perLayer := 10 * math.Log10(sum/float64(layers))
	if perLayer > capDB {
		perLayer = capDB
	}
	pen := rankPenaltyDB[4]
	if layers < len(rankPenaltyDB) {
		pen = rankPenaltyDB[layers]
	}
	return perLayer - pen
}

// StackProfile captures the per-vendor implementation differences the
// paper observed: "only differences in terms of the obtained throughput,
// caused by the variations in the implementation quality and cell
// configurations provided by each vendor" (§6.2).
type StackProfile struct {
	Name string
	// Efficiency scales the information rate below the PHY bound.
	Efficiency float64
	// TDDPattern is the stack's slot pattern.
	TDDPattern string
	// MaxDLLayers bounds downlink MIMO (all three stacks support 4).
	MaxDLLayers int
}

// The three RAN stacks of the paper's testbed.
var (
	StackSRSRAN    = StackProfile{Name: "srsRAN", Efficiency: 0.80, TDDPattern: "DDDSU", MaxDLLayers: 4}
	StackCapGemini = StackProfile{Name: "CapGemini", Efficiency: 0.86, TDDPattern: "DDDSUUDDDD", MaxDLLayers: 4}
	StackRadisys   = StackProfile{Name: "Radisys", Efficiency: 0.83, TDDPattern: "DDDSU", MaxDLLayers: 4}
)

// Stacks lists all vendor profiles for interoperability sweeps.
var Stacks = []StackProfile{StackSRSRAN, StackCapGemini, StackRadisys}

// REPerSecond returns the total resource elements per second of a carrier
// (both directions, before TDD split).
func REPerSecond(numPRB int) float64 {
	slotsPerSec := float64(SlotsPerFrame) * float64(time.Second/FrameDuration)
	return float64(numPRB) * SubcarriersPerPRB * SymbolsPerSlot * slotsPerSec
}

// ThroughputBps computes the achievable information rate in bits/second
// for a transmission with the given per-layer SINR, rank, carrier size,
// TDD direction fraction and stack efficiency. Each layer is adapted
// independently through the CQI table.
func ThroughputBps(numPRB int, dirFraction float64, layerSINRdB float64, layers int, stack StackProfile) float64 {
	se := EfficiencyForCQI(CQIFromSINR(layerSINRdB))
	re := REPerSecond(numPRB) * dirFraction * (1 - PHYOverhead)
	return re * se * float64(layers) * stack.Efficiency
}

// Package phy captures the 5G NR physical-layer structure the fronthaul
// schedules against: the µ=1 numerology used by band n78 testbeds (30 kHz
// subcarriers, 0.5 ms slots of 14 symbols), channel-bandwidth to PRB-count
// tables, TDD patterns, the PRB↔frequency arithmetic (including the RU
// sharing alignment formulas of Appendix A.1), and a calibrated link
// adaptation model mapping SINR and MIMO rank to achievable throughput.
package phy

import (
	"fmt"
	"time"
)

// Numerology µ=1 (30 kHz SCS), the configuration of the paper's testbed.
const (
	// SCS is the subcarrier spacing in Hz.
	SCS = 30_000
	// SubcarriersPerPRB matches iq.SubcarriersPerPRB (12).
	SubcarriersPerPRB = 12
	// PRBBandwidthHz is the width of one PRB.
	PRBBandwidthHz = SCS * SubcarriersPerPRB // 360 kHz
	// SymbolsPerSlot is the number of OFDM symbols per slot (normal CP).
	SymbolsPerSlot = 14
	// SlotsPerSubframe for µ=1.
	SlotsPerSubframe = 2
	// SubframesPerFrame is fixed by NR (1 ms subframes, 10 ms frames).
	SubframesPerFrame = 10
	// SlotsPerFrame for µ=1.
	SlotsPerFrame = SlotsPerSubframe * SubframesPerFrame
	// SlotDuration is 0.5 ms for µ=1.
	SlotDuration = 500 * time.Microsecond
	// SymbolDuration is the per-symbol scheduling increment the fronthaul
	// operates on ("a few tens of microseconds", §2.2).
	SymbolDuration = SlotDuration / SymbolsPerSlot
	// FrameDuration is 10 ms.
	FrameDuration = 10 * time.Millisecond
)

// prbTable maps channel bandwidth (MHz) to the maximum transmission
// bandwidth configuration N_RB for 30 kHz SCS (3GPP TS 38.101-1 Table
// 5.3.2-1). The 40 MHz entry (106) matches the Fig. 2 capture and the
// 100 MHz entry (273) the paper's headline cell.
var prbTable = map[int]int{
	10: 24, 15: 38, 20: 51, 25: 65, 30: 78, 40: 106,
	50: 133, 60: 162, 70: 189, 80: 217, 90: 245, 100: 273,
}

// PRBsFor returns the PRB count of a channel bandwidth in MHz. It panics on
// bandwidths outside the standard table: carrier configs are static inputs
// and a bad one is a programming error.
func PRBsFor(bwMHz int) int {
	n, ok := prbTable[bwMHz]
	if !ok {
		panic(fmt.Sprintf("phy: no PRB configuration for %d MHz at 30 kHz SCS", bwMHz))
	}
	return n
}

// Carrier describes one configured carrier: an RU's full spectrum or a
// DU cell's slice of it.
type Carrier struct {
	BandwidthMHz int
	CenterHz     int64
	NumPRB       int
}

// NewCarrier builds a Carrier from bandwidth and center frequency.
func NewCarrier(bwMHz int, centerHz int64) Carrier {
	return Carrier{BandwidthMHz: bwMHz, CenterHz: centerHz, NumPRB: PRBsFor(bwMHz)}
}

// PRB0Hz returns the frequency of the first resource element of PRB 0
// (Appendix A.1.1, eqs. 1–2):
//
//	PRB_0_frequency = center_of_frequency − 12·SCS·num_prb/2
func (c Carrier) PRB0Hz() int64 {
	return c.CenterHz - int64(SubcarriersPerPRB)*SCS*int64(c.NumPRB)/2
}

// PRBStartHz returns the frequency of the first resource element of PRB i.
func (c Carrier) PRBStartHz(i int) int64 {
	return c.PRB0Hz() + int64(i)*PRBBandwidthHz
}

// String describes the carrier.
func (c Carrier) String() string {
	return fmt.Sprintf("%dMHz@%.2fGHz (%d PRBs)", c.BandwidthMHz, float64(c.CenterHz)/1e9, c.NumPRB)
}

// AlignedDUCenterHz derives the DU center frequency that places the DU's
// PRB grid exactly prbOffset PRBs into the RU's grid (Appendix A.1.1,
// eqs. 3–4):
//
//	DU_center = PRB_0_frequency(RU) + 12·SCS·(prb_offset + du_num_prb/2)
//
// Choosing DU centers this way lets the RU-sharing middlebox relocate PRBs
// with a plain copy instead of decompress/recompress (Fig. 6, left).
func AlignedDUCenterHz(ru Carrier, prbOffset, duNumPRB int) int64 {
	return ru.PRB0Hz() + int64(SubcarriersPerPRB)*SCS*(int64(prbOffset)+int64(duNumPRB)/2)
}

// PRBOffset returns the position of the DU's PRB 0 within the RU's PRB
// grid, and whether the grids align exactly on a PRB boundary. A DU that
// is not aligned forces the slow (de)compression path of the RU-sharing
// middlebox (Fig. 6, right).
func PRBOffset(ru, du Carrier) (offset int, aligned bool) {
	deltaHz := du.PRB0Hz() - ru.PRB0Hz()
	offset = int(deltaHz / PRBBandwidthHz)
	aligned = deltaHz%PRBBandwidthHz == 0
	if deltaHz < 0 && !aligned {
		offset-- // floor division for negative offsets
	}
	return offset, aligned
}

// TranslateFreqOffset converts a PRACH C-plane freqOffset expressed against
// the DU's carrier into the equivalent offset against the RU's carrier
// (Appendix A.1.2, eq. 11):
//
//	freqOffset_RU = freqOffset_DU + (RU_center − DU_center) / (0.5·SCS)
//
// freqOffset is in half-subcarrier units, per the CUS-plane spec.
func TranslateFreqOffset(freqOffsetDU int32, du, ru Carrier) int32 {
	return freqOffsetDU + int32((ru.CenterHz-du.CenterHz)/(SCS/2))
}

// FreqOffsetForPRB returns the C-plane freqOffset (half-subcarrier units)
// locating the first RE of PRB prb of the carrier, measured from the
// carrier center. Positive offsets are below center in the CUS convention
// used by Appendix A.1.2 (frequency_re0rb0 = center − offset·0.5·SCS).
func FreqOffsetForPRB(c Carrier, prb int) int32 {
	offHz := c.CenterHz - c.PRBStartHz(prb)
	return int32(offHz / (SCS / 2))
}

// PRBForFreqOffset inverts FreqOffsetForPRB.
func PRBForFreqOffset(c Carrier, freqOffset int32) int {
	re0Hz := c.CenterHz - int64(freqOffset)*(SCS/2)
	return int((re0Hz - c.PRB0Hz()) / PRBBandwidthHz)
}

package phy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPRBTable(t *testing.T) {
	cases := map[int]int{40: 106, 100: 273, 25: 65, 20: 51}
	for bw, want := range cases {
		if got := PRBsFor(bw); got != want {
			t.Errorf("PRBsFor(%d) = %d, want %d", bw, got, want)
		}
	}
}

func TestPRBsForPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	PRBsFor(37)
}

func TestCarrierFrequencyMath(t *testing.T) {
	ru := NewCarrier(100, 3_460_000_000)
	// PRB0 = center - 12*30k*273/2 = 3.46e9 - 49.14e6
	if got := ru.PRB0Hz(); got != 3_460_000_000-49_140_000 {
		t.Fatalf("PRB0Hz = %d", got)
	}
	if ru.PRBStartHz(1)-ru.PRBStartHz(0) != PRBBandwidthHz {
		t.Fatal("PRB spacing")
	}
}

func TestAlignedDUCenterRoundTrip(t *testing.T) {
	// Paper scenario (Fig. 6): 100 MHz RU shared by two 40 MHz DUs.
	ru := NewCarrier(100, 3_460_000_000)
	duPRBs := PRBsFor(40)
	for _, off := range []int{0, 10, 105, 273 - 106} {
		center := AlignedDUCenterHz(ru, off, duPRBs)
		du := NewCarrier(40, center)
		gotOff, aligned := PRBOffset(ru, du)
		if !aligned {
			t.Fatalf("offset %d: not aligned", off)
		}
		if gotOff != off {
			t.Fatalf("offset %d: recovered %d", off, gotOff)
		}
	}
}

func TestPRBOffsetMisaligned(t *testing.T) {
	ru := NewCarrier(100, 3_460_000_000)
	du := NewCarrier(40, AlignedDUCenterHz(ru, 10, PRBsFor(40))+15_000) // half-subcarrier shift
	if _, aligned := PRBOffset(ru, du); aligned {
		t.Fatal("misaligned carriers reported aligned")
	}
}

func TestAlignedOffsetProperty(t *testing.T) {
	ru := NewCarrier(100, 3_460_000_000)
	f := func(rawOff uint8) bool {
		off := int(rawOff) % (273 - 106)
		du := NewCarrier(40, AlignedDUCenterHz(ru, off, 106))
		got, aligned := PRBOffset(ru, du)
		return aligned && got == off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTranslateFreqOffsetInverse(t *testing.T) {
	// Translating DU->RU then RU->DU must round-trip (eq. 11 is linear).
	ru := NewCarrier(100, 3_460_000_000)
	du := NewCarrier(40, 3_430_020_000)
	fo := int32(1234)
	there := TranslateFreqOffset(fo, du, ru)
	back := TranslateFreqOffset(there, ru, du)
	if back != fo {
		t.Fatalf("round trip: %d -> %d -> %d", fo, there, back)
	}
	if there == fo {
		t.Fatal("different centers must change the offset")
	}
}

func TestFreqOffsetPRBRoundTrip(t *testing.T) {
	c := NewCarrier(40, 3_430_020_000)
	for _, prb := range []int{0, 2, 50, 105} {
		fo := FreqOffsetForPRB(c, prb)
		if got := PRBForFreqOffset(c, fo); got != prb {
			t.Fatalf("prb %d -> fo %d -> prb %d", prb, fo, got)
		}
	}
}

func TestFreqOffsetTranslationLocatesSamePhysicalFrequency(t *testing.T) {
	// The physical frequency a DU freqOffset points at must equal the one
	// the translated RU freqOffset points at — the correctness condition
	// of PRACH handling in RU sharing.
	ru := NewCarrier(100, 3_460_000_000)
	du := NewCarrier(40, AlignedDUCenterHz(ru, 20, 106))
	foDU := FreqOffsetForPRB(du, 2)
	foRU := TranslateFreqOffset(foDU, du, ru)
	freqViaDU := du.CenterHz - int64(foDU)*(SCS/2)
	freqViaRU := ru.CenterHz - int64(foRU)*(SCS/2)
	if freqViaDU != freqViaRU {
		t.Fatalf("physical freq mismatch: %d vs %d", freqViaDU, freqViaRU)
	}
	// And it should land on RU PRB = offset + DU PRB.
	if got := PRBForFreqOffset(ru, foRU); got != 22 {
		t.Fatalf("RU PRB = %d, want 22", got)
	}
}

func TestTDDParse(t *testing.T) {
	p := MustTDD("DDDSU")
	if p.Period() != 5 {
		t.Fatal("period")
	}
	if p.Kind(0) != SlotDL || p.Kind(3) != SlotSpecial || p.Kind(4) != SlotUL || p.Kind(5) != SlotDL {
		t.Fatal("kinds")
	}
	if p.String() != "DDDSU" {
		t.Fatalf("String = %q", p.String())
	}
	if _, err := ParseTDD(""); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := ParseTDD("DDX"); err == nil {
		t.Fatal("bad char accepted")
	}
}

func TestTDDFractions(t *testing.T) {
	p := MustTDD("DDDSU")
	// DL: 3*14+10 = 52 of 70; UL: 14+2 = 16 of 70.
	if got := p.DLSymbolFraction(); math.Abs(got-52.0/70) > 1e-9 {
		t.Fatalf("DL fraction = %v", got)
	}
	if got := p.ULSymbolFraction(); math.Abs(got-16.0/70) > 1e-9 {
		t.Fatalf("UL fraction = %v", got)
	}
}

func TestTDDSymbolDir(t *testing.T) {
	p := MustTDD("DDDSU")
	if dl, ok := p.SymbolDir(0, 5); !ok || !dl {
		t.Fatal("DL slot")
	}
	if dl, ok := p.SymbolDir(4, 5); !ok || dl {
		t.Fatal("UL slot")
	}
	if dl, ok := p.SymbolDir(3, 0); !ok || !dl {
		t.Fatal("special DL part")
	}
	if _, ok := p.SymbolDir(3, 11); ok {
		t.Fatal("guard should not be ok")
	}
	if dl, ok := p.SymbolDir(3, 13); !ok || dl {
		t.Fatal("special UL part")
	}
}

func TestCQIMonotone(t *testing.T) {
	prev := 0
	for s := -10.0; s < 30; s += 0.25 {
		c := CQIFromSINR(s)
		if c < prev {
			t.Fatalf("CQI not monotone at %v", s)
		}
		prev = c
	}
	if CQIFromSINR(-20) != 0 {
		t.Fatal("deep fade should give CQI 0")
	}
	if CQIFromSINR(30) != 15 {
		t.Fatal("high SINR should give CQI 15")
	}
}

func TestEfficiencyForCQIBounds(t *testing.T) {
	if EfficiencyForCQI(-1) != 0 || EfficiencyForCQI(16) != 0 {
		t.Fatal("out of range CQI")
	}
	if EfficiencyForCQI(15) != 7.4063 {
		t.Fatal("cqi 15")
	}
}

func TestLayerSINR(t *testing.T) {
	// Four equal elements, rank 4: pooling/split cancel, only the penalty
	// and cap remain.
	el := []float64{100, 100, 100, 100} // 20 dB each
	got := LayerSINRdB(el, 4, SINRCapDL)
	if math.Abs(got-(20-rankPenaltyDB[4])) > 1e-9 {
		t.Fatalf("rank4 layer SINR = %v", got)
	}
	// Cap binds when elements are very strong.
	hot := []float64{1e6}
	if got := LayerSINRdB(hot, 1, SINRCapDL); got != SINRCapDL {
		t.Fatalf("cap: %v", got)
	}
	if !math.IsInf(LayerSINRdB(nil, 1, SINRCapDL), -1) {
		t.Fatal("empty elements")
	}
	if !math.IsInf(LayerSINRdB(el, 0, SINRCapDL), -1) {
		t.Fatal("zero layers")
	}
}

func TestCalibratedThroughputBands(t *testing.T) {
	// The frozen calibration must keep the paper's headline numbers in
	// band (±10%): Table 2 and the 40 MHz / uplink baselines.
	tdd := MustTDD(StackSRSRAN.TDDPattern)
	elements := func(n int) []float64 {
		e := make([]float64, n)
		for i := range e {
			e[i] = math.Pow(10, 30/10.0) // strong, cap-limited
		}
		return e
	}
	check := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want)/want > 0.10 {
			t.Errorf("%s = %.1f Mbps, want %.1f ±10%%", name, got/1e6, want/1e6)
		}
	}
	dl := tdd.DLSymbolFraction()
	ul := tdd.ULSymbolFraction()
	// Table 2 row 1: 2 layers, 100 MHz: 653.4 Mbps.
	s2 := LayerSINRdB(elements(2), 2, SINRCapDL)
	check("rank2 100MHz", ThroughputBps(273, dl, s2, 2, StackSRSRAN), 653.4e6)
	// Table 2 row 3: 4 layers, 100 MHz: 898.2 Mbps.
	s4 := LayerSINRdB(elements(4), 4, SINRCapDL)
	check("rank4 100MHz", ThroughputBps(273, dl, s4, 4, StackSRSRAN), 898.2e6)
	// Fig 10b baseline: 40 MHz cell ~330 Mbps DL, ~25 Mbps UL.
	check("rank4 40MHz", ThroughputBps(106, dl, LayerSINRdB(elements(4), 4, SINRCapDL), 4, StackSRSRAN), 330e6)
	sul := LayerSINRdB(elements(1), 1, SINRCapUL)
	check("UL SISO 40MHz", ThroughputBps(106, ul, sul, 1, StackSRSRAN), 25e6)
	// §6.2.2: UL SISO 100 MHz: 70 Mbps.
	check("UL SISO 100MHz", ThroughputBps(273, ul, sul, 1, StackSRSRAN), 70e6)
}

func TestSSBOccupies(t *testing.T) {
	c := DefaultSSB()
	if !c.Occupies(0, 0, 2) || !c.Occupies(0, 0, 5) {
		t.Fatal("SSB symbols")
	}
	if c.Occupies(0, 0, 6) || c.Occupies(0, 1, 2) || c.Occupies(1, 0, 2) {
		t.Fatal("outside SSB")
	}
	if !c.Occupies(2, 0, 2) {
		t.Fatal("periodicity")
	}
}

func TestPRACHOccupies(t *testing.T) {
	c := DefaultPRACH()
	if !c.Occupies(0, 19, 0) || !c.Occupies(0, 19, 1) {
		t.Fatal("PRACH symbols")
	}
	if c.Occupies(0, 19, 2) || c.Occupies(1, 19, 0) {
		t.Fatal("outside PRACH")
	}
}

func TestSlotKindString(t *testing.T) {
	if SlotDL.String() != "D" || SlotUL.String() != "U" || SlotSpecial.String() != "S" {
		t.Fatal("slot kind strings")
	}
}

package phy

// SSB and PRACH placement. Both are fixed, well-known positions on the
// resource grid — the property the dMIMO middlebox exploits to copy the
// SSB payload between antenna streams (§4.2), and the RU-sharing middlebox
// to recognize PRACH C-plane messages (§4.3, Appendix A.1.2).

// SSBConfig locates the synchronization signal block on the grid.
type SSBConfig struct {
	// PeriodFrames is the SSB period in 10 ms frames (default 2 = 20 ms).
	PeriodFrames int
	// Slot within frame carrying the (first) SSB.
	Slot int
	// StartSymbol is the first of the four SSB symbols in the slot.
	StartSymbol int
	// StartPRB is the first of the 20 PRBs the SSB occupies.
	StartPRB int
}

// SSB constants fixed by the NR specification.
const (
	SSBSymbols = 4
	SSBPRBs    = 20
)

// DefaultSSB is the placement used by all three stacks in the testbed.
func DefaultSSB() SSBConfig {
	return SSBConfig{PeriodFrames: 2, Slot: 0, StartSymbol: 2, StartPRB: 0}
}

// Occupies reports whether the SSB occupies the given frame/slot/symbol.
func (c SSBConfig) Occupies(frame, slot, symbol int) bool {
	if c.PeriodFrames > 1 && frame%c.PeriodFrames != 0 {
		return false
	}
	return slot == c.Slot && symbol >= c.StartSymbol && symbol < c.StartSymbol+SSBSymbols
}

// PRACHConfig locates random-access occasions.
type PRACHConfig struct {
	// PeriodFrames between PRACH occasions (default 2 = 20 ms).
	PeriodFrames int
	// Slot within frame of the occasion (must be UL in the TDD pattern).
	Slot int
	// StartSymbol of the occasion.
	StartSymbol int
	// NumSymbols of the occasion (short formats: 1..6).
	NumSymbols int
	// StartPRB within the DU carrier.
	StartPRB int
	// NumPRB of the occasion (format B4/short: 12).
	NumPRB int
}

// DefaultPRACH is the short-format placement used by the testbed cells.
func DefaultPRACH() PRACHConfig {
	return PRACHConfig{PeriodFrames: 2, Slot: 19, StartSymbol: 0, NumSymbols: 2, StartPRB: 2, NumPRB: 12}
}

// Occupies reports whether a PRACH occasion covers frame/slot/symbol.
func (c PRACHConfig) Occupies(frame, slot, symbol int) bool {
	if c.PeriodFrames > 1 && frame%c.PeriodFrames != 0 {
		return false
	}
	return slot == c.Slot && symbol >= c.StartSymbol && symbol < c.StartSymbol+c.NumSymbols
}

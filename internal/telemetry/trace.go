package telemetry

import (
	"fmt"
	"sync"
	"time"

	"ranbooster/internal/sim"
)

// Frame-level tracing: every frame that crosses an engine's datapath can
// leave a Span — the timestamps of its journey (ingress ring enqueue →
// service start → egress TX) plus the per-stage and per-action processing
// costs charged along the way. Spans land in per-shard fixed-size rings
// (allocation-free once constructed) while stage and action latencies feed
// the log-scale histograms, so both an offline slot replay (DumpTrace) and
// a live percentile readout (TraceStats) come from the same instrument.

// Stage labels one leg of a frame's journey through the datapath.
type Stage uint8

// Stages, in datapath order.
const (
	// StageQueue is the wait from ingress-ring enqueue to service start
	// (ring residency plus core contention).
	StageQueue Stage = iota
	// StageDecode is header dissection: Ethernet/eCPRI/O-RAN parse and
	// validity checks (plus driver and wakeup costs on an XDP engine).
	StageDecode
	// StageKernel is the in-kernel rule-program evaluation (XDP only).
	StageKernel
	// StageApp is the userspace handler: the App's Handle call including
	// every action cost it charged.
	StageApp
	// StageTotal is the frame's whole sojourn: enqueue to egress TX (or to
	// service completion for frames that die in the middlebox).
	StageTotal
	// NumStages sizes per-stage arrays.
	NumStages
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case StageQueue:
		return "queue"
	case StageDecode:
		return "decode"
	case StageKernel:
		return "kernel"
	case StageApp:
		return "app"
	case StageTotal:
		return "total"
	}
	return fmt.Sprintf("stage(%d)", uint8(s))
}

// Action labels one of the four RANBooster processing actions whose cost a
// span attributes (§3.1 of the paper).
type Action uint8

// Actions A1-A4.
const (
	// ActionRedirect is A1: redirection, forwarding and drops.
	ActionRedirect Action = iota
	// ActionReplicate is A2: packet replication.
	ActionReplicate
	// ActionCache is A3: packet caching (insert and take).
	ActionCache
	// ActionModify is A4: payload inspection and modification (header
	// rewrites, IQ merges, PRB relocation, exponent scans).
	ActionModify
	// NumActions sizes per-action arrays.
	NumActions
)

// String names the action the way the paper's cost tables do.
func (a Action) String() string {
	switch a {
	case ActionRedirect:
		return "A1-redirect"
	case ActionReplicate:
		return "A2-replicate"
	case ActionCache:
		return "A3-cache"
	case ActionModify:
		return "A4-modify"
	}
	return fmt.Sprintf("action(%d)", uint8(a))
}

// spanClassNames names Span.Class values. The table mirrors the traffic
// classes of the core engine (core.TrafficClass); core's tests assert the
// two stay aligned.
var spanClassNames = [...]string{"DL C-Plane", "DL U-Plane", "UL C-Plane", "UL U-Plane"}

// ClassName names a Span.Class value.
func ClassName(class uint8) string {
	if int(class) < len(spanClassNames) {
		return spanClassNames[class]
	}
	return fmt.Sprintf("class(%d)", class)
}

// Span is one frame's trace record. It is a fixed-size value — recording a
// span allocates nothing.
type Span struct {
	// EAxC is the frame's antenna-carrier stream (eCPRI PC_ID wire form).
	EAxC uint16
	// Frame, Subframe, Slot locate the frame on the air-interface grid.
	Frame, Subframe, Slot uint8
	// Class is the traffic class ordinal (see ClassName).
	Class uint8
	// Actions is a bitmask of 1<<Action for each action the handler used.
	Actions uint8
	// EnqueuedAt is the ingress-ring enqueue instant, StartAt the service
	// start (after core contention), DoneAt the egress TX instant (or
	// service completion for frames that were dropped).
	EnqueuedAt, StartAt, DoneAt sim.Time
	// Stages holds the per-stage durations (see Stage).
	Stages [NumStages]time.Duration
	// ActionCost attributes the App-stage cost to the actions that
	// incurred it.
	ActionCost [NumActions]time.Duration
}

// SlotKey formats the span's slot coordinates ("frame.subframe.slot").
func (s Span) SlotKey() string { return fmt.Sprintf("%d.%d.%d", s.Frame, s.Subframe, s.Slot) }

// SpanRing is a fixed-size ring of the most recent spans. Record is
// allocation-free; a short critical section makes concurrent Record and
// Snapshot race-safe without perturbing the single-writer fast path.
type SpanRing struct {
	mu    sync.Mutex
	spans []Span
	next  uint64
}

// NewSpanRing returns a ring retaining the last capacity spans (minimum 1).
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRing{spans: make([]Span, capacity)}
}

// Record stores one span, overwriting the oldest once the ring is full.
func (r *SpanRing) Record(s Span) {
	r.mu.Lock()
	r.spans[r.next%uint64(len(r.spans))] = s
	r.next++
	r.mu.Unlock()
}

// RecordBatch stores a vector of spans under one critical section — the
// burst datapath's amortized stamp: one lock acquisition per drained
// burst instead of one per frame.
func (r *SpanRing) RecordBatch(spans []Span) {
	if len(spans) == 0 {
		return
	}
	r.mu.Lock()
	for i := range spans {
		r.spans[r.next%uint64(len(r.spans))] = spans[i]
		r.next++
	}
	r.mu.Unlock()
}

// Recorded reports how many spans were ever recorded (not how many are
// retained).
func (r *SpanRing) Recorded() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Snapshot copies the retained spans, oldest first.
func (r *SpanRing) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	cap64 := uint64(len(r.spans))
	if n > cap64 {
		out := make([]Span, 0, cap64)
		out = append(out, r.spans[n%cap64:]...)
		out = append(out, r.spans[:n%cap64]...)
		return out
	}
	return append([]Span(nil), r.spans[:n]...)
}

// Tracer is one shard's trace instrument: the span ring plus per-stage and
// per-action latency histograms.
type Tracer struct {
	ring   *SpanRing
	stage  [NumStages]Hist
	action [NumActions]Hist
}

// NewTracer builds a tracer whose ring retains ringCap spans.
func NewTracer(ringCap int) *Tracer {
	return &Tracer{ring: NewSpanRing(ringCap)}
}

// Record stores the span and feeds the histograms. Stages and actions with
// zero cost that did not run (kernel on a DPDK engine, unused actions) are
// not observed, so their histograms reflect only real occurrences; the
// queue and total stages are always observed.
func (t *Tracer) Record(s Span) {
	t.ring.Record(s)
	t.observe(s)
}

// RecordBatch stores a burst's spans in one ring critical section and
// feeds the histograms, preserving per-span order. Equivalent to calling
// Record once per span, amortized.
func (t *Tracer) RecordBatch(spans []Span) {
	t.ring.RecordBatch(spans)
	for i := range spans {
		t.observe(spans[i])
	}
}

// observe feeds one span into the stage and action histograms.
func (t *Tracer) observe(s Span) {
	t.stage[StageQueue].Observe(s.Stages[StageQueue])
	t.stage[StageTotal].Observe(s.Stages[StageTotal])
	for st := StageDecode; st < StageTotal; st++ {
		if d := s.Stages[st]; d > 0 {
			t.stage[st].Observe(d)
		}
	}
	for a := Action(0); a < NumActions; a++ {
		if s.Actions&(1<<a) != 0 {
			t.action[a].Observe(s.ActionCost[a])
		}
	}
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span { return t.ring.Snapshot() }

// Stats snapshots the tracer's histograms.
func (t *Tracer) Stats() TraceStats {
	var s TraceStats
	s.Spans = t.ring.Recorded()
	for i := range t.stage {
		s.Stage[i] = t.stage[i].Snapshot()
	}
	for i := range t.action {
		s.Action[i] = t.action[i].Snapshot()
	}
	return s
}

// TraceStats is a merged histogram readout: per-stage and per-action
// latency distributions plus the total span count. The zero value is an
// empty readout; Merge combines per-shard (or per-engine) snapshots.
type TraceStats struct {
	Spans  uint64
	Stage  [NumStages]HistSnapshot
	Action [NumActions]HistSnapshot
}

// Merge returns the combination of s and o.
func (s TraceStats) Merge(o TraceStats) TraceStats {
	out := TraceStats{Spans: s.Spans + o.Spans}
	for i := range s.Stage {
		out.Stage[i] = s.Stage[i].Add(o.Stage[i])
	}
	for i := range s.Action {
		out.Action[i] = s.Action[i].Add(o.Action[i])
	}
	return out
}

package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// DumpTrace writes a slot-replay of the given spans: frames grouped by
// their air-interface slot in arrival order, each line carrying the wire
// timestamps of the frame's journey. The enqueue and TX timestamps are the
// same virtual instants a pcap capture of the run records (the fabric tap
// stamps frames with the scheduler clock), so a span line and its capture
// packets correlate by timestamp and eAxC for offline inspection.
func DumpTrace(w io.Writer, spans []Span) error {
	if len(spans) == 0 {
		_, err := fmt.Fprintln(w, "trace: no spans recorded")
		return err
	}
	ordered := append([]Span(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].EnqueuedAt != ordered[j].EnqueuedAt {
			return ordered[i].EnqueuedAt < ordered[j].EnqueuedAt
		}
		return ordered[i].DoneAt < ordered[j].DoneAt
	})
	var slot string
	for _, s := range ordered {
		if k := s.SlotKey(); k != slot {
			slot = k
			if _, err := fmt.Fprintf(w, "== slot %s (frame %d, subframe %d, slot %d) ==\n",
				k, s.Frame, s.Subframe, s.Slot); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "  rx %-12v eAxC 0x%04x %-10s queue %-10v decode %-8v kernel %-8v app %-10v tx %-12v actions %s\n",
			s.EnqueuedAt, s.EAxC, ClassName(s.Class),
			s.Stages[StageQueue], s.Stages[StageDecode], s.Stages[StageKernel],
			s.Stages[StageApp], s.DoneAt, actionMask(s.Actions)); err != nil {
			return err
		}
	}
	return nil
}

// actionMask renders a span's action bitmask ("A1+A3", "-" when none).
func actionMask(m uint8) string {
	var parts []string
	for a := Action(0); a < NumActions; a++ {
		if m&(1<<a) != 0 {
			parts = append(parts, fmt.Sprintf("A%d", a+1))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, "+")
}

// DumpTraceStats writes a human-readable percentile table of a TraceStats
// readout — the quick textual form of the latency-breakdown experiment.
func DumpTraceStats(w io.Writer, ts TraceStats) error {
	if _, err := fmt.Fprintf(w, "trace: %d spans\n", ts.Spans); err != nil {
		return err
	}
	row := func(kind string, h HistSnapshot) error {
		if h.Count == 0 {
			return nil
		}
		p50, _ := h.Quantile(0.50)
		p99, _ := h.Quantile(0.99)
		p999, _ := h.Quantile(0.999)
		_, err := fmt.Fprintf(w, "  %-14s n=%-8d p50 %-10v p99 %-10v p99.9 %-10v mean %v\n",
			kind, h.Count, p50, p99, p999, h.Mean())
		return err
	}
	for st := Stage(0); st < NumStages; st++ {
		if err := row(st.String(), ts.Stage[st]); err != nil {
			return err
		}
	}
	for a := Action(0); a < NumActions; a++ {
		if err := row(a.String(), ts.Action[a]); err != nil {
			return err
		}
	}
	return nil
}

// Quantiles is a convenience readout of the common percentile triple.
func Quantiles(h HistSnapshot) (p50, p99, p999 time.Duration) {
	p50, _ = h.Quantile(0.50)
	p99, _ = h.Quantile(0.99)
	p999, _ = h.Quantile(0.999)
	return
}

package telemetry

import (
	"strings"
	"testing"
	"time"

	"ranbooster/internal/sim"
)

func span(eaxc uint16, enq sim.Time, total time.Duration) Span {
	s := Span{EAxC: eaxc, EnqueuedAt: enq, StartAt: enq, DoneAt: enq + sim.Time(total)}
	s.Stages[StageQueue] = 0
	s.Stages[StageDecode] = total / 2
	s.Stages[StageTotal] = total
	return s
}

func TestSpanRingWraps(t *testing.T) {
	r := NewSpanRing(4)
	for i := 0; i < 6; i++ {
		r.Record(span(uint16(i), sim.Time(i), time.Microsecond))
	}
	if r.Recorded() != 6 {
		t.Fatalf("Recorded = %d, want 6", r.Recorded())
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("Snapshot len = %d, want 4 (ring capacity)", len(got))
	}
	for i, s := range got {
		if want := uint16(i + 2); s.EAxC != want {
			t.Fatalf("span %d: EAxC = %d, want %d (oldest-first after wrap)", i, s.EAxC, want)
		}
	}
}

func TestSpanRingPartial(t *testing.T) {
	r := NewSpanRing(8)
	r.Record(span(7, 1, time.Microsecond))
	got := r.Snapshot()
	if len(got) != 1 || got[0].EAxC != 7 {
		t.Fatalf("Snapshot = %+v, want the single recorded span", got)
	}
}

func TestTracerStats(t *testing.T) {
	tr := NewTracer(16)
	s := span(1, 0, 10*time.Microsecond)
	s.Stages[StageApp] = 4 * time.Microsecond
	s.Actions = 1<<ActionCache | 1<<ActionModify
	s.ActionCost[ActionCache] = time.Microsecond
	s.ActionCost[ActionModify] = 3 * time.Microsecond
	tr.Record(s)
	tr.Record(span(2, 5, 20*time.Microsecond))

	st := tr.Stats()
	if st.Spans != 2 {
		t.Fatalf("Spans = %d, want 2", st.Spans)
	}
	if st.Stage[StageTotal].Count != 2 || st.Stage[StageQueue].Count != 2 {
		t.Fatalf("total/queue counts = %d/%d, want 2/2",
			st.Stage[StageTotal].Count, st.Stage[StageQueue].Count)
	}
	if st.Stage[StageApp].Count != 1 {
		t.Fatalf("app observations = %d, want 1 (zero-cost stages unobserved)", st.Stage[StageApp].Count)
	}
	if st.Stage[StageKernel].Count != 0 {
		t.Fatalf("kernel observations = %d, want 0", st.Stage[StageKernel].Count)
	}
	if st.Action[ActionCache].Count != 1 || st.Action[ActionModify].Count != 1 ||
		st.Action[ActionRedirect].Count != 0 {
		t.Fatalf("action counts = %+v", st.Action)
	}
	if st.Action[ActionModify].Sum != 3*time.Microsecond {
		t.Fatalf("A4 sum = %v, want 3µs", st.Action[ActionModify].Sum)
	}

	merged := st.Merge(st)
	if merged.Spans != 4 || merged.Stage[StageTotal].Count != 4 {
		t.Fatalf("Merge: spans=%d total=%d, want 4/4", merged.Spans, merged.Stage[StageTotal].Count)
	}
}

func TestStageAndActionNames(t *testing.T) {
	wantStages := []string{"queue", "decode", "kernel", "app", "total"}
	for st := Stage(0); st < NumStages; st++ {
		if st.String() != wantStages[st] {
			t.Fatalf("Stage(%d) = %q, want %q", st, st.String(), wantStages[st])
		}
	}
	wantActions := []string{"A1-redirect", "A2-replicate", "A3-cache", "A4-modify"}
	for a := Action(0); a < NumActions; a++ {
		if a.String() != wantActions[a] {
			t.Fatalf("Action(%d) = %q, want %q", a, a.String(), wantActions[a])
		}
	}
	if ClassName(1) != "DL U-Plane" || !strings.Contains(ClassName(9), "9") {
		t.Fatalf("ClassName mapping broken: %q / %q", ClassName(1), ClassName(9))
	}
}

func TestDumpTrace(t *testing.T) {
	s1 := span(0x0102, 100, 10*time.Microsecond)
	s1.Frame, s1.Subframe, s1.Slot = 1, 2, 3
	s1.Actions = 1<<ActionRedirect | 1<<ActionCache
	s2 := span(0x0103, 50, 5*time.Microsecond)
	s2.Frame, s2.Subframe, s2.Slot = 1, 2, 4

	var b strings.Builder
	if err := DumpTrace(&b, []Span{s1, s2}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	i1, i4 := strings.Index(out, "slot 1.2.3"), strings.Index(out, "slot 1.2.4")
	if i1 < 0 || i4 < 0 {
		t.Fatalf("missing slot headers:\n%s", out)
	}
	if i4 > i1 {
		t.Fatalf("spans not replayed in enqueue order (slot 1.2.4 arrived first):\n%s", out)
	}
	if !strings.Contains(out, "eAxC 0x0102") || !strings.Contains(out, "A1+A3") {
		t.Fatalf("span line missing eAxC or action mask:\n%s", out)
	}

	b.Reset()
	if err := DumpTrace(&b, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no spans") {
		t.Fatalf("empty dump = %q", b.String())
	}
}

func TestDumpTraceStats(t *testing.T) {
	tr := NewTracer(4)
	tr.Record(span(1, 0, 10*time.Microsecond))
	var b strings.Builder
	if err := DumpTraceStats(&b, tr.Stats()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"1 spans", "total", "p50", "p99.9"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats dump missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "kernel") {
		t.Fatalf("stats dump includes a stage with no observations:\n%s", out)
	}
}

func TestPromWriter(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("rx_total", "frames received", Labels{"engine": "das"}, 42)
	p.Counter("rx_total", "", Labels{"engine": "mon"}, 7)
	p.Gauge("health", "engine health", nil, 1)

	var h Hist
	h.Observe(100 * time.Nanosecond)
	h.Observe(3 * time.Microsecond)
	p.Histogram("stage_seconds", "latency", Labels{"stage": "total"}, h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	if strings.Count(out, "# TYPE rx_total counter") != 1 {
		t.Fatalf("HELP/TYPE not deduplicated per metric name:\n%s", out)
	}
	for _, want := range []string{
		`rx_total{engine="das"} 42`,
		`rx_total{engine="mon"} 7`,
		"health 1",
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="total",le="+Inf"} 2`,
		`stage_seconds_count{stage="total"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// le bounds are cumulative: the 100ns observation must be counted in
	// every bucket that covers 3µs too.
	if !strings.Contains(out, `stage_seconds_bucket{stage="total",le="1.28e-07"} 1`) {
		t.Fatalf("expected 128ns bucket with count 1:\n%s", out)
	}
}

func TestPromTraceStats(t *testing.T) {
	tr := NewTracer(4)
	s := span(1, 0, 10*time.Microsecond)
	s.Actions = 1 << ActionModify
	s.ActionCost[ActionModify] = time.Microsecond
	tr.Record(s)

	var b strings.Builder
	p := NewPromWriter(&b)
	p.TraceStats("ranbooster_trace", Labels{"engine": "das"}, tr.Stats())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`ranbooster_trace_spans_total{engine="das"} 1`,
		`stage="total"`,
		`action="A4-modify"`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, `stage="kernel"`) {
		t.Fatalf("empty stage exported:\n%s", out)
	}
}

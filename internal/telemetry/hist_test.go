package telemetry

import (
	"math"
	"testing"
	"time"
)

// TestHistIndexMonotone walks the full bucket range: indexes must be
// monotone in the value, and every bucket's low bound must map back to
// that bucket (the two functions agree).
func TestHistIndexMonotone(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<22; v++ {
		idx := histIndex(v)
		if idx < prev {
			t.Fatalf("histIndex(%d) = %d < previous %d", v, idx, prev)
		}
		prev = idx
	}
	for idx := 0; idx < HistBuckets; idx++ {
		low := histBucketLow(idx)
		if got := histIndex(low); got != idx {
			t.Fatalf("histIndex(histBucketLow(%d)=%d) = %d", idx, low, got)
		}
		if idx > 0 {
			if got := histIndex(low - 1); got != idx-1 {
				t.Fatalf("histIndex(%d) = %d, want %d (bucket %d low-1)", low-1, got, idx-1, idx)
			}
		}
	}
}

// TestHistRelativeError asserts the design property: the representative
// value of any bucket is within ~1/histSub of every value in it.
func TestHistRelativeError(t *testing.T) {
	for _, v := range []int64{100, 999, 12_345, 1_000_000, 87_654_321, 5_000_000_000} {
		var h Hist
		h.Observe(time.Duration(v))
		p, ok := h.Snapshot().Quantile(0.5)
		if !ok {
			t.Fatalf("Quantile on non-empty hist reported empty")
		}
		rel := math.Abs(float64(p)-float64(v)) / float64(v)
		if rel > 1.0/histSub {
			t.Fatalf("value %d: representative %v off by %.1f%% (> %.1f%%)",
				v, p, rel*100, 100.0/histSub)
		}
	}
}

func TestHistQuantileAndMean(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count)
	}
	wantMean := 500500 * time.Microsecond / 1000
	if got := s.Mean(); got != wantMean {
		t.Fatalf("Mean = %v, want %v", got, wantMean)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Microsecond}, {0.99, 990 * time.Microsecond}, {0.999, 999 * time.Microsecond}}
	for _, c := range checks {
		got, ok := s.Quantile(c.q)
		if !ok {
			t.Fatalf("Quantile(%v) reported empty", c.q)
		}
		rel := math.Abs(float64(got)-float64(c.want)) / float64(c.want)
		if rel > 1.0/histSub {
			t.Fatalf("Quantile(%v) = %v, want ~%v (off %.1f%%)", c.q, got, c.want, rel*100)
		}
	}
	if _, ok := (HistSnapshot{}).Quantile(0.5); ok {
		t.Fatal("Quantile on empty snapshot reported data")
	}
	if got := (HistSnapshot{}).Mean(); got != 0 {
		t.Fatalf("empty Mean = %v", got)
	}
}

func TestHistAddMerges(t *testing.T) {
	var a, b Hist
	for i := 0; i < 10; i++ {
		a.Observe(time.Microsecond)
		b.Observe(time.Millisecond)
	}
	m := a.Snapshot().Add(b.Snapshot())
	if m.Count != 20 {
		t.Fatalf("merged Count = %d, want 20", m.Count)
	}
	if want := 10*time.Microsecond + 10*time.Millisecond; m.Sum != want {
		t.Fatalf("merged Sum = %v, want %v", m.Sum, want)
	}
	lo, _ := m.Quantile(0.25)
	hi, _ := m.Quantile(0.75)
	if lo >= 2*time.Microsecond || hi < 900*time.Microsecond {
		t.Fatalf("merged quantiles p25=%v p75=%v do not straddle the two modes", lo, hi)
	}
}

func TestHistNegativeAndOverflow(t *testing.T) {
	var h Hist
	h.Observe(-time.Second) // counts as zero
	h.Observe(time.Duration(math.MaxInt64))
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("Count = %d, want 2", s.Count)
	}
	if s.Buckets[0] != 1 || s.Buckets[HistBuckets-1] != 1 {
		t.Fatalf("expected one observation in first and last bucket, got %d / %d",
			s.Buckets[0], s.Buckets[HistBuckets-1])
	}
	if s.Sum != time.Duration(math.MaxInt64) {
		t.Fatalf("negative observation leaked into Sum: %v", s.Sum)
	}
}

func TestCumulativeOctaves(t *testing.T) {
	var h Hist
	for _, v := range []time.Duration{3, 100, 1000, 1_000_000} {
		h.Observe(v)
	}
	bounds, counts := h.Snapshot().CumulativeOctaves()
	if len(bounds) != len(counts) || len(bounds) == 0 {
		t.Fatalf("bounds/counts = %d/%d", len(bounds), len(counts))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] != bounds[i-1]*2 {
			t.Fatalf("bounds not octaves: %v", bounds)
		}
		if counts[i] < counts[i-1] {
			t.Fatalf("counts not cumulative: %v", counts)
		}
	}
	if last := counts[len(counts)-1]; last != 4 {
		t.Fatalf("final cumulative count = %d, want 4", last)
	}
	// An empty histogram exposes no octaves.
	if b, c := (HistSnapshot{}).CumulativeOctaves(); b != nil || c != nil {
		t.Fatalf("empty CumulativeOctaves = %v/%v", b, c)
	}
}

package telemetry

import (
	"sync"
	"testing"
	"time"

	"ranbooster/internal/sim"
)

// The telemetry layer's concurrency contracts, in the mold of
// fabric.TestPortStatsConcurrentRead: every instrument must tolerate
// readers snapshotting while writers record. These tests are meaningful
// under `go test -race`; without synchronization they are data races.

// TestHistConcurrent hammers one Hist from several writers while a reader
// snapshots; every snapshot must be monotone in Count and the final totals
// exact.
func TestHistConcurrent(t *testing.T) {
	const writers, perWriter = 4, 20_000
	var h Hist
	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		var prev uint64
		for {
			select {
			case <-done:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count < prev {
				t.Errorf("snapshot Count went backwards: %d after %d", s.Count, prev)
				return
			}
			prev = s.Count
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	close(done)
	readers.Wait()

	if s := h.Snapshot(); s.Count != writers*perWriter {
		t.Fatalf("final Count = %d, want %d", s.Count, writers*perWriter)
	}
}

// TestSpanRingConcurrent records spans from several goroutines while a
// reader snapshots. The shard datapath is single-writer, but the ring's
// contract is stronger (any-writer safe) so management-plane probes can
// never corrupt it.
func TestSpanRingConcurrent(t *testing.T) {
	const writers, perWriter = 4, 10_000
	r := NewSpanRing(64)
	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if got := r.Snapshot(); len(got) > 64 {
				t.Errorf("snapshot longer than capacity: %d", len(got))
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(Span{EAxC: uint16(w), EnqueuedAt: sim.Time(i)})
			}
		}(w)
	}
	wg.Wait()
	close(done)
	readers.Wait()

	if r.Recorded() != writers*perWriter {
		t.Fatalf("Recorded = %d, want %d", r.Recorded(), writers*perWriter)
	}
	if got := r.Snapshot(); len(got) != 64 {
		t.Fatalf("retained %d spans, want 64", len(got))
	}
}

// TestTracerConcurrent drives whole tracers the way a parallel engine
// does: one writer per shard-tracer, a reader merging Stats across them.
func TestTracerConcurrent(t *testing.T) {
	const shards, perShard = 4, 10_000
	tracers := make([]*Tracer, shards)
	for i := range tracers {
		tracers[i] = NewTracer(32)
	}
	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		var prev uint64
		for {
			select {
			case <-done:
				return
			default:
			}
			var m TraceStats
			for _, tr := range tracers {
				m = m.Merge(tr.Stats())
			}
			if m.Spans < prev {
				t.Errorf("merged span count went backwards: %d after %d", m.Spans, prev)
				return
			}
			prev = m.Spans
		}
	}()

	var wg sync.WaitGroup
	for i, tr := range tracers {
		wg.Add(1)
		go func(i int, tr *Tracer) {
			defer wg.Done()
			var s Span
			s.Actions = 1 << ActionCache
			for j := 0; j < perShard; j++ {
				s.EAxC = uint16(i)
				s.Stages[StageTotal] = time.Duration(j) * time.Nanosecond
				tr.Record(s)
			}
		}(i, tr)
	}
	wg.Wait()
	close(done)
	readers.Wait()

	var m TraceStats
	for _, tr := range tracers {
		m = m.Merge(tr.Stats())
	}
	if m.Spans != shards*perShard {
		t.Fatalf("merged Spans = %d, want %d", m.Spans, shards*perShard)
	}
	if m.Action[ActionCache].Count != shards*perShard {
		t.Fatalf("merged A3 count = %d, want %d", m.Action[ActionCache].Count, shards*perShard)
	}
}

// TestBusRecorderConcurrent publishes on a Bus from several goroutines
// while subscribers attach and a Recorder is queried — the §3.2 telemetry
// interface under management-plane concurrency.
func TestBusRecorderConcurrent(t *testing.T) {
	const publishers, perPublisher = 4, 5_000
	b := NewBus()
	r := NewRecorder()
	r.Attach(b, "")

	done := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			for _, name := range r.Names() {
				r.Last(name)
				r.Mean(name)
				r.Series(name) // concurrent Series read mid-storm
			}
			b.Subscribe("probe", func(Sample) {})
			// Attach-during-Publish: late recorders join while the
			// publishers are mid-storm, like a management-plane probe
			// attaching to a running engine.
			NewRecorder().Attach(b, "a")
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			name := []string{"a", "b", "c", "d"}[p]
			for i := 0; i < perPublisher; i++ {
				b.Publish(Sample{Name: name, At: sim.Time(i), Value: float64(i)})
			}
		}(p)
	}
	wg.Wait()
	close(done)
	readers.Wait()

	for _, name := range []string{"a", "b", "c", "d"} {
		if got := len(r.Series(name)); got != perPublisher {
			t.Fatalf("series %q has %d samples, want %d", name, got, perPublisher)
		}
	}
}

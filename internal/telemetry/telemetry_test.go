package telemetry

import (
	"sync"
	"testing"
)

func TestPublishSubscribe(t *testing.T) {
	b := NewBus()
	var got []Sample
	b.Subscribe("prb.util", func(s Sample) { got = append(got, s) })
	b.Publish(Sample{Name: "prb.util", At: 10, Value: 0.5})
	b.Publish(Sample{Name: "other", At: 11, Value: 1})
	if len(got) != 1 || got[0].Value != 0.5 {
		t.Fatalf("got %+v", got)
	}
}

func TestWildcardSubscription(t *testing.T) {
	b := NewBus()
	n := 0
	b.Subscribe("", func(Sample) { n++ })
	b.Publish(Sample{Name: "a"})
	b.Publish(Sample{Name: "b"})
	if n != 2 {
		t.Fatalf("wildcard received %d", n)
	}
}

func TestRecorder(t *testing.T) {
	b := NewBus()
	r := NewRecorder()
	r.Attach(b, "kpi")
	for i := 1; i <= 4; i++ {
		b.Publish(Sample{Name: "kpi", At: 0, Value: float64(i)})
	}
	s := r.Series("kpi")
	if len(s) != 4 || s[3].Value != 4 {
		t.Fatalf("series = %+v", s)
	}
	if m := r.Mean("kpi"); m != 2.5 {
		t.Fatalf("mean = %v", m)
	}
	if m := r.Mean("missing"); m != 0 {
		t.Fatalf("missing mean = %v", m)
	}
}

func TestRecorderNames(t *testing.T) {
	b := NewBus()
	r := NewRecorder()
	r.Attach(b, "")
	b.Publish(Sample{Name: "z"})
	b.Publish(Sample{Name: "a"})
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Fatalf("names = %v", names)
	}
}

func TestSeriesIsCopy(t *testing.T) {
	b := NewBus()
	r := NewRecorder()
	r.Attach(b, "k")
	b.Publish(Sample{Name: "k", Value: 1})
	s := r.Series("k")
	s[0].Value = 99
	if r.Series("k")[0].Value != 1 {
		t.Fatal("Series aliases internal storage")
	}
}

func TestConcurrentPublish(t *testing.T) {
	b := NewBus()
	r := NewRecorder()
	r.Attach(b, "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Publish(Sample{Name: "k", Value: 1})
			}
		}()
	}
	wg.Wait()
	if got := len(r.Series("k")); got != 800 {
		t.Fatalf("recorded %d", got)
	}
}

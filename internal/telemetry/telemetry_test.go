package telemetry

import (
	"sync"
	"testing"
)

func TestPublishSubscribe(t *testing.T) {
	b := NewBus()
	var got []Sample
	b.Subscribe("prb.util", func(s Sample) { got = append(got, s) })
	b.Publish(Sample{Name: "prb.util", At: 10, Value: 0.5})
	b.Publish(Sample{Name: "other", At: 11, Value: 1})
	if len(got) != 1 || got[0].Value != 0.5 {
		t.Fatalf("got %+v", got)
	}
}

func TestWildcardSubscription(t *testing.T) {
	b := NewBus()
	n := 0
	b.Subscribe("", func(Sample) { n++ })
	b.Publish(Sample{Name: "a"})
	b.Publish(Sample{Name: "b"})
	if n != 2 {
		t.Fatalf("wildcard received %d", n)
	}
}

func TestRecorder(t *testing.T) {
	b := NewBus()
	r := NewRecorder()
	r.Attach(b, "kpi")
	for i := 1; i <= 4; i++ {
		b.Publish(Sample{Name: "kpi", At: 0, Value: float64(i)})
	}
	s := r.Series("kpi")
	if len(s) != 4 || s[3].Value != 4 {
		t.Fatalf("series = %+v", s)
	}
	if m := r.Mean("kpi"); m != 2.5 {
		t.Fatalf("mean = %v", m)
	}
	if m := r.Mean("missing"); m != 0 {
		t.Fatalf("missing mean = %v", m)
	}
}

func TestRecorderNames(t *testing.T) {
	b := NewBus()
	r := NewRecorder()
	r.Attach(b, "")
	b.Publish(Sample{Name: "z"})
	b.Publish(Sample{Name: "a"})
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "z" {
		t.Fatalf("names = %v", names)
	}
}

func TestSeriesIsCopy(t *testing.T) {
	b := NewBus()
	r := NewRecorder()
	r.Attach(b, "k")
	b.Publish(Sample{Name: "k", Value: 1})
	s := r.Series("k")
	s[0].Value = 99
	if r.Series("k")[0].Value != 1 {
		t.Fatal("Series aliases internal storage")
	}
}

func TestConcurrentPublish(t *testing.T) {
	b := NewBus()
	r := NewRecorder()
	r.Attach(b, "k")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Publish(Sample{Name: "k", Value: 1})
			}
		}()
	}
	wg.Wait()
	if got := len(r.Series("k")); got != 800 {
		t.Fatalf("recorded %d", got)
	}
}

func TestCountersStriped(t *testing.T) {
	cs := NewCounters(4)
	if cs.Stripes() != 4 {
		t.Fatalf("stripes = %d, want 4", cs.Stripes())
	}
	c := cs.Get("rx")
	if c != cs.Get("rx") {
		t.Fatal("Get returned distinct handles for one name")
	}
	for stripe := 0; stripe < 4; stripe++ {
		c.Add(stripe, uint64(stripe+1))
	}
	if got := c.Value(); got != 1+2+3+4 {
		t.Fatalf("merged value = %d, want 10", got)
	}
	if got := cs.Value("rx"); got != 10 {
		t.Fatalf("store value = %d, want 10", got)
	}
	if got := cs.Value("missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
	c.Add(99, 5) // out of range folds to stripe 0, never panics
	if got := c.Value(); got != 15 {
		t.Fatalf("after fold = %d, want 15", got)
	}
	cs.Get("a")
	names := cs.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "rx" {
		t.Fatalf("names = %v, want [a rx]", names)
	}
	if c.Name() != "rx" {
		t.Fatalf("name = %q", c.Name())
	}
}

func TestCountersConcurrent(t *testing.T) {
	cs := NewCounters(8)
	var wg sync.WaitGroup
	for stripe := 0; stripe < 8; stripe++ {
		wg.Add(1)
		go func(stripe int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				cs.Get("shared").Add(stripe, 1)
			}
		}(stripe)
	}
	wg.Wait()
	if got := cs.Value("shared"); got != 8000 {
		t.Fatalf("value = %d, want 8000", got)
	}
}

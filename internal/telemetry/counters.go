package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counters is a store of named, shard-striped counters — the reproduction
// of the per-CPU BPF maps a RANBooster kernel program shares with
// userspace. Each counter holds one cache-line-padded cell per stripe
// (datapath shard); writers touch only their own stripe, so concurrent
// workers never contend or false-share, and readers merge the stripes
// into a consistent total. All methods are safe for concurrent use.
type Counters struct {
	stripes int

	mu sync.RWMutex
	m  map[string]*Counter
}

// NewCounters returns an empty store with the given stripe count (one per
// datapath shard; values below 1 are raised to 1).
func NewCounters(stripes int) *Counters {
	if stripes < 1 {
		stripes = 1
	}
	return &Counters{stripes: stripes, m: make(map[string]*Counter)}
}

// Stripes reports the per-counter stripe count.
func (cs *Counters) Stripes() int { return cs.stripes }

// Get returns the named counter, creating it if needed. The returned
// handle can be cached by a shard to avoid the map lookup on the hot path.
func (cs *Counters) Get(name string) *Counter {
	cs.mu.RLock()
	c := cs.m[name]
	cs.mu.RUnlock()
	if c != nil {
		return c
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if c = cs.m[name]; c == nil {
		//ranvet:allow alloc once per counter name for the process lifetime; shards cache the handle
		c = &Counter{name: name, cells: make([]counterCell, cs.stripes)}
		cs.m[name] = c
	}
	return c
}

// Value returns the merged total of the named counter, 0 if it was never
// written.
func (cs *Counters) Value(name string) uint64 {
	cs.mu.RLock()
	c := cs.m[name]
	cs.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// Names returns the existing counter names, sorted.
func (cs *Counters) Names() []string {
	cs.mu.RLock()
	defer cs.mu.RUnlock()
	out := make([]string, 0, len(cs.m))
	for k := range cs.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// counterCell pads each stripe to its own cache line.
type counterCell struct {
	v atomic.Uint64
	_ [56]byte
}

// Counter is one named striped counter.
type Counter struct {
	name  string
	cells []counterCell
}

// Name returns the counter's name.
func (c *Counter) Name() string { return c.name }

// Add increments the given stripe by d. The stripe index must be the
// caller's own shard id (out-of-range indexes fold onto stripe 0 rather
// than corrupting a neighbour).
func (c *Counter) Add(stripe int, d uint64) {
	if stripe < 0 || stripe >= len(c.cells) {
		stripe = 0
	}
	c.cells[stripe].v.Add(d)
}

// Value returns the merged total across all stripes.
func (c *Counter) Value() uint64 {
	var sum uint64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}

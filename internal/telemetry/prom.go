package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4), the contract of a /metrics endpoint. It is a plain
// serializer — callers gather their snapshots (engine stats, counters,
// histograms) and emit them; errors stick and are reported once at the
// end, in the fmt.Fprintf style.
type PromWriter struct {
	w      io.Writer
	err    error
	headed map[string]bool
}

// Labels are metric labels; rendered sorted by key for stable output.
type Labels map[string]string

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: w, headed: make(map[string]bool)}
}

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...interface{}) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// head emits the HELP/TYPE preamble once per metric name.
func (p *PromWriter) head(name, typ, help string) {
	if p.headed[name] {
		return
	}
	p.headed[name] = true
	if help != "" {
		p.printf("# HELP %s %s\n", name, help)
	}
	p.printf("# TYPE %s %s\n", name, typ)
}

func renderLabels(l Labels, extra ...string) string {
	if len(l) == 0 && len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if b.Len() > 1 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter emits a monotonically increasing metric.
func (p *PromWriter) Counter(name, help string, labels Labels, v uint64) {
	p.head(name, "counter", help)
	p.printf("%s%s %d\n", name, renderLabels(labels), v)
}

// Gauge emits a point-in-time value.
func (p *PromWriter) Gauge(name, help string, labels Labels, v float64) {
	p.head(name, "gauge", help)
	p.printf("%s%s %g\n", name, renderLabels(labels), v)
}

// Histogram emits a HistSnapshot as a Prometheus histogram with
// power-of-two le bounds in seconds.
func (p *PromWriter) Histogram(name, help string, labels Labels, h HistSnapshot) {
	p.head(name, "histogram", help)
	bounds, counts := h.CumulativeOctaves()
	for i := range bounds {
		p.printf("%s_bucket%s %d\n", name,
			renderLabels(labels, "le", fmt.Sprintf("%g", float64(bounds[i])/1e9)), counts[i])
	}
	p.printf("%s_bucket%s %d\n", name, renderLabels(labels, "le", "+Inf"), h.Count)
	p.printf("%s_sum%s %g\n", name, renderLabels(labels), h.Sum.Seconds())
	p.printf("%s_count%s %d\n", name, renderLabels(labels), h.Count)
}

// TraceStats emits a whole trace readout under the given metric prefix,
// labelling stage and action histograms — the export form of the span
// collector's aggregates.
func (p *PromWriter) TraceStats(prefix string, labels Labels, ts TraceStats) {
	p.Counter(prefix+"_spans_total", "frame spans recorded by the trace collector", labels, ts.Spans)
	for st := Stage(0); st < NumStages; st++ {
		if ts.Stage[st].Count == 0 {
			continue
		}
		l := Labels{"stage": st.String()}
		for k, v := range labels {
			l[k] = v
		}
		p.Histogram(prefix+"_stage_seconds", "per-stage frame latency", l, ts.Stage[st])
	}
	for a := Action(0); a < NumActions; a++ {
		if ts.Action[a].Count == 0 {
			continue
		}
		l := Labels{"action": a.String()}
		for k, v := range labels {
			l[k] = v
		}
		p.Histogram(prefix+"_action_seconds", "per-action processing cost", l, ts.Action[a])
	}
}

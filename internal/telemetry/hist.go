package telemetry

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Log-scale latency histogram in the HDR style: power-of-two major buckets
// subdivided into histSub linear sub-buckets, so relative error is bounded
// by 1/histSub (~12.5%) at every magnitude from 1 ns to tens of seconds.
// Observations are lock-free atomic adds, cheap enough for the per-frame
// datapath; snapshots merge across shards by plain addition.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	// HistBuckets bounds the bucket array; the last bucket absorbs
	// overflow (values beyond ~34 s of latency).
	HistBuckets = 256
)

// histIndex maps a non-negative nanosecond value to its bucket.
func histIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	k := bits.Len64(uint64(v))
	if k <= histSubBits+1 {
		return int(v) // exact buckets below 2*histSub
	}
	shift := uint(k - histSubBits - 1)
	idx := int(shift)<<histSubBits + int(v>>shift)
	if idx >= HistBuckets {
		idx = HistBuckets - 1
	}
	return idx
}

// histBucketLow returns the smallest value that lands in bucket idx.
func histBucketLow(idx int) int64 {
	if idx < 2*histSub {
		return int64(idx)
	}
	shift := uint(idx>>histSubBits - 1)
	return int64(histSub+idx&(histSub-1)) << shift
}

// Hist is a concurrent latency histogram. The zero value is ready to use.
// Observe may be called from any number of goroutines; Snapshot may run
// concurrently with writers (fields may trail each other by in-flight
// observations, as with any per-CPU counter readout).
type Hist struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one duration. Negative durations count as zero.
func (h *Hist) Observe(d time.Duration) {
	h.buckets[histIndex(int64(d))].Add(1)
	h.count.Add(1)
	if d > 0 {
		h.sum.Add(int64(d))
	}
}

// Snapshot returns a point-in-time copy suitable for merging and quantile
// queries.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is an immutable histogram readout; the value combinator
// used to merge per-shard histograms into an engine-wide view.
type HistSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Buckets [HistBuckets]uint64
}

// Add returns the bucket-wise sum of s and o.
func (s HistSnapshot) Add(o HistSnapshot) HistSnapshot {
	out := HistSnapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum}
	for i := range out.Buckets {
		out.Buckets[i] = s.Buckets[i] + o.Buckets[i]
	}
	return out
}

// Quantile returns the q-th quantile (0..1) as the representative value of
// the bucket holding it (mid-bucket for wide buckets, exact for the small
// ones), and false when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) (time.Duration, bool) {
	if s.Count == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, n := range s.Buckets {
		cum += n
		if cum >= target {
			low := histBucketLow(i)
			width := histBucketLow(i+1) - low
			if width <= 1 {
				return time.Duration(low), true
			}
			return time.Duration(low + width/2), true
		}
	}
	return time.Duration(histBucketLow(HistBuckets - 1)), true
}

// Mean returns the average observation (0 when empty).
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// CumulativeOctaves reports the cumulative count at each power-of-two
// nanosecond boundary up to and including the first boundary covering the
// maximum observation — the coarse view a Prometheus histogram exposes.
// The returned slices are parallel: bounds[i] is an upper bound in
// nanoseconds, counts[i] the observations at or below it.
func (s HistSnapshot) CumulativeOctaves() (bounds []int64, counts []uint64) {
	maxIdx := -1
	for i := HistBuckets - 1; i >= 0; i-- {
		if s.Buckets[i] != 0 {
			maxIdx = i
			break
		}
	}
	if maxIdx < 0 {
		return nil, nil
	}
	var cum uint64
	i := 0
	for b := int64(1); ; b <<= 1 {
		for i < HistBuckets && histBucketLow(i+1)-1 <= b {
			cum += s.Buckets[i]
			i++
		}
		bounds = append(bounds, b)
		counts = append(counts, cum)
		if i > maxIdx || b >= histBucketLow(HistBuckets-1) {
			break
		}
	}
	return bounds, counts
}

// Package telemetry implements the monitoring and management side of a
// RANBooster middlebox (§3.2): a publish/subscribe bus for KPI samples
// (how the PRB-monitoring middlebox exposes sub-millisecond utilization to
// applications) and a recorder that retains series for experiments.
package telemetry

import (
	"sort"
	"sync"

	"ranbooster/internal/sim"
)

// Sample is one KPI observation.
type Sample struct {
	Name  string
	At    sim.Time
	Value float64
}

// Bus fans samples out to subscribers. It is safe for concurrent use,
// although the simulation publishes from a single goroutine.
type Bus struct {
	mu   sync.Mutex
	subs map[string][]func(Sample)
	any  []func(Sample)
}

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[string][]func(Sample))}
}

// Subscribe registers fn for samples with the given name. An empty name
// subscribes to everything.
func (b *Bus) Subscribe(name string, fn func(Sample)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if name == "" {
		b.any = append(b.any, fn)
		return
	}
	b.subs[name] = append(b.subs[name], fn)
}

// Publish delivers a sample synchronously to all matching subscribers.
func (b *Bus) Publish(s Sample) {
	b.mu.Lock()
	//ranvet:allow alloc subscriber snapshot taken outside the lock; Publish fires on violations, not per frame
	fns := make([]func(Sample), 0, len(b.subs[s.Name])+len(b.any))
	//ranvet:allow alloc event bus: Publish fires on violations and faults, not per frame
	fns = append(fns, b.subs[s.Name]...)
	//ranvet:allow alloc event bus: Publish fires on violations and faults, not per frame
	fns = append(fns, b.any...)
	b.mu.Unlock()
	for _, fn := range fns {
		fn(s)
	}
}

// Recorder retains every sample of the KPIs it subscribes to.
type Recorder struct {
	mu      sync.Mutex
	samples map[string][]Sample
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{samples: make(map[string][]Sample)}
}

// Attach subscribes the recorder to a KPI on a bus ("" records everything).
func (r *Recorder) Attach(b *Bus, name string) {
	b.Subscribe(name, r.record)
}

func (r *Recorder) record(s Sample) {
	r.mu.Lock()
	r.samples[s.Name] = append(r.samples[s.Name], s)
	r.mu.Unlock()
}

// Series returns the recorded samples of a KPI in publish order.
func (r *Recorder) Series(name string) []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Sample(nil), r.samples[name]...)
}

// Last returns the most recent sample of a KPI and whether one exists —
// the readout a recovery check uses ("what was the final health state?").
func (r *Recorder) Last(name string) (Sample, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.samples[name]
	if len(s) == 0 {
		return Sample{}, false
	}
	return s[len(s)-1], true
}

// Names returns the recorded KPI names, sorted.
func (r *Recorder) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.samples))
	for k := range r.samples {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Mean returns the average value of a KPI series (0 if empty).
func (r *Recorder) Mean(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.samples[name]
	if len(s) == 0 {
		return 0
	}
	var sum float64
	for _, v := range s {
		sum += v.Value
	}
	return sum / float64(len(s))
}

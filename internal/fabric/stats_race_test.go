package fabric

import (
	"sync"
	"testing"
	"time"

	"ranbooster/internal/sim"
)

// TestPortStatsConcurrentRead exercises the Port.Stats contract: snapshots
// may be taken from any goroutine while the scheduler delivers frames.
// Meaningful under `go test -race` — with plain uint64 counters this is a
// data race; with the atomic counters it must be clean, and every snapshot
// must be monotonic per counter.
func TestPortStatsConcurrentRead(t *testing.T) {
	s := sim.NewScheduler()
	sw := NewSwitch(s, "tor", time.Microsecond, 100)
	pa := sw.AddPort("a", nil)
	pb := sw.AddPort("b", func([]byte) {})

	// Teach the FDB both directions so traffic is unicast.
	pa.Send(frame(macA, macB, -1, 0))
	pb.Send(frame(macB, macA, -1, 0))
	s.Run()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, p := range []*Port{pa, pb} {
		wg.Add(1)
		go func(p *Port) {
			defer wg.Done()
			var prev PortStats
			for {
				select {
				case <-done:
					return
				default:
				}
				st := p.Stats()
				if st.TxFrames < prev.TxFrames || st.RxFrames < prev.RxFrames ||
					st.TxBytes < prev.TxBytes || st.RxBytes < prev.RxBytes {
					t.Errorf("port %s stats went backwards: %+v after %+v", p.Name(), st, prev)
					return
				}
				prev = st
			}
		}(p)
	}

	for i := 0; i < 5000; i++ {
		pa.Send(frame(macA, macB, -1, byte(i)))
		pb.Send(frame(macB, macA, -1, byte(i)))
		s.Run()
	}
	close(done)
	wg.Wait()

	if st := pa.Stats(); st.TxFrames != 5001 {
		t.Fatalf("pa TxFrames = %d, want 5001", st.TxFrames)
	}
	if st := pb.Stats(); st.RxFrames != 5001 {
		t.Fatalf("pb RxFrames = %d, want 5001", st.RxFrames)
	}
}

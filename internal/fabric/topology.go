package fabric

import (
	"errors"
	"fmt"
	"time"

	"ranbooster/internal/eth"
	"ranbooster/internal/sim"
)

// Topology assembles multiple switches into a metro fabric: the
// aggregation tree of §6.1 where chained middleboxes sit on distinct
// fabric hops rather than on one shared segment. Switches join the
// topology with AddSwitch and are wired with Link, which creates a
// full-duplex trunk — a pair of ports whose receive handlers forward
// into the peer switch — so frames traverse each hop with its own
// serialization and forwarding latency.
type Topology struct {
	sched    *sim.Scheduler
	switches []*Switch
	byName   map[string]*Switch
	trunks   []Trunk
	owner    map[*Switch]bool
}

// Trunk is a full-duplex inter-switch link. A is the port on the first
// switch passed to Link, B on the second. Frames flowing A's-switch →
// B's-switch transit B.Send, so a fault injector attached with
// B.SetTxInterceptor models loss on that direction of the trunk (and
// symmetrically for A).
type Trunk struct {
	A, B *Port
}

// Topology construction errors, matched with errors.Is.
var (
	// ErrDupSwitch rejects a second switch with the same name.
	ErrDupSwitch = errors.New("fabric: duplicate switch name")
	// ErrForeignSwitch rejects a Link endpoint not created by AddSwitch
	// on this topology.
	ErrForeignSwitch = errors.New("fabric: switch does not belong to topology")
	// ErrSelfLink rejects a trunk from a switch to itself.
	ErrSelfLink = errors.New("fabric: trunk endpoints must differ")
	// ErrForeignPort rejects a Learn home port on a switch outside the
	// topology.
	ErrForeignPort = errors.New("fabric: port does not belong to topology")
)

// NewTopology creates an empty topology on the simulation clock.
func NewTopology(sched *sim.Scheduler) *Topology {
	return &Topology{
		sched:  sched,
		byName: make(map[string]*Switch),
		owner:  make(map[*Switch]bool),
	}
}

// AddSwitch creates a switch inside the topology with the given
// forwarding latency and port line rate (see NewSwitch).
func (t *Topology) AddSwitch(name string, latency time.Duration, lineRateGbps float64) (*Switch, error) {
	if _, ok := t.byName[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDupSwitch, name)
	}
	sw := NewSwitch(t.sched, name, latency, lineRateGbps)
	t.switches = append(t.switches, sw)
	t.byName[name] = sw
	t.owner[sw] = true
	return sw, nil
}

// Switch returns the named switch, or nil.
func (t *Topology) Switch(name string) *Switch { return t.byName[name] }

// Switches returns the topology's switches in creation order.
func (t *Topology) Switches() []*Switch { return t.switches }

// Trunks returns the inter-switch links in creation order.
func (t *Topology) Trunks() []Trunk { return t.trunks }

// Link wires a full-duplex trunk between two switches of the topology.
// Each side gets a port named "trunk:<peer>"; what one switch delivers to
// its trunk port is transmitted into the peer switch by the other side,
// so the peer learns source MACs on its own trunk port and multi-hop
// forwarding converges without any central routing.
func (t *Topology) Link(a, b *Switch) (Trunk, error) {
	if !t.owner[a] || !t.owner[b] {
		return Trunk{}, ErrForeignSwitch
	}
	if a == b {
		return Trunk{}, ErrSelfLink
	}
	var tr Trunk
	tr.A = a.AddPort("trunk:"+b.name, func(frame []byte) { tr.B.Send(frame) })
	tr.B = b.AddPort("trunk:"+a.name, func(frame []byte) { tr.A.Send(frame) })
	t.trunks = append(t.trunks, tr)
	return tr, nil
}

// Chain links the switches into a line — sws[0] ↔ sws[1] ↔ … — the
// daisy-chained middlebox arrangement of Fig. 8, and returns the trunks
// in hop order.
func (t *Topology) Chain(sws ...*Switch) ([]Trunk, error) {
	trunks := make([]Trunk, 0, len(sws)-1)
	for i := 1; i < len(sws); i++ {
		tr, err := t.Link(sws[i-1], sws[i])
		if err != nil {
			return nil, err
		}
		trunks = append(trunks, tr)
	}
	return trunks, nil
}

// Learn programs mac into the forwarding tables of every switch so that
// frames addressed to it forward hop by hop toward home — the port the
// device owning mac is attached to — without an initial flood. Real
// fabrics converge the same state from source learning on the first
// frames; priming it makes conservation accounting exact from slot zero
// (a flood would deliver duplicate copies to every edge port). vlan
// follows the builder convention: negative means untagged.
func (t *Topology) Learn(mac eth.MAC, vlan int, home *Port) error {
	if home == nil || !t.owner[home.sw] {
		return ErrForeignPort
	}
	v := uint16(untaggedVLAN)
	if vlan >= 0 {
		v = uint16(vlan)
	}
	key := fdbKey{vlan: v, mac: mac}
	home.sw.fdb[key] = home

	// BFS over the trunk graph: each unvisited neighbor exits toward the
	// home switch through its own side of the trunk that reached it.
	visited := map[*Switch]bool{home.sw: true}
	queue := []*Switch{home.sw}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, tr := range t.trunks {
			var peer *Switch
			var exit *Port
			switch cur {
			case tr.A.sw:
				peer, exit = tr.B.sw, tr.B
			case tr.B.sw:
				peer, exit = tr.A.sw, tr.A
			default:
				continue
			}
			if visited[peer] {
				continue
			}
			visited[peer] = true
			peer.fdb[key] = exit
			queue = append(queue, peer)
		}
	}
	return nil
}

package fabric

import (
	"errors"
	"testing"
	"time"

	"ranbooster/internal/sim"
)

func newChain(t *testing.T, s *sim.Scheduler, n int) (*Topology, []*Switch, []Trunk) {
	t.Helper()
	topo := NewTopology(s)
	sws := make([]*Switch, n)
	for i := range sws {
		sw, err := topo.AddSwitch(string(rune('a'+i)), time.Microsecond, 100)
		if err != nil {
			t.Fatal(err)
		}
		sws[i] = sw
	}
	trunks, err := topo.Chain(sws...)
	if err != nil {
		t.Fatal(err)
	}
	return topo, sws, trunks
}

func TestTopologyValidation(t *testing.T) {
	s := sim.NewScheduler()
	topo := NewTopology(s)
	a, err := topo.AddSwitch("a", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.AddSwitch("a", 0, 0); !errors.Is(err, ErrDupSwitch) {
		t.Fatalf("duplicate name: got %v, want ErrDupSwitch", err)
	}
	if _, err := topo.Link(a, a); !errors.Is(err, ErrSelfLink) {
		t.Fatalf("self link: got %v, want ErrSelfLink", err)
	}
	foreign := NewSwitch(s, "x", 0, 0)
	if _, err := topo.Link(a, foreign); !errors.Is(err, ErrForeignSwitch) {
		t.Fatalf("foreign switch: got %v, want ErrForeignSwitch", err)
	}
	if err := topo.Learn(macA, -1, foreign.AddPort("p", nil)); !errors.Is(err, ErrForeignPort) {
		t.Fatalf("foreign port: got %v, want ErrForeignPort", err)
	}
	if topo.Switch("a") != a || topo.Switch("zz") != nil {
		t.Fatal("Switch lookup broken")
	}
}

// TestTrunkForwarding wires two switches and checks that learning
// converges across the trunk: the first frame floods through it, the
// reply unicasts back, and from then on cross-switch traffic is unicast
// in both directions.
func TestTrunkForwarding(t *testing.T) {
	s := sim.NewScheduler()
	_, sws, _ := newChain(t, s, 2)
	var gotA, gotB [][]byte
	pa := sws[0].AddPort("hostA", func(f []byte) { gotA = append(gotA, f) })
	pb := sws[1].AddPort("hostB", func(f []byte) { gotB = append(gotB, f) })

	pa.Send(frame(macA, macB, -1, 1)) // floods across the trunk
	s.Run()
	if len(gotB) != 1 {
		t.Fatalf("flood across trunk: B got %d frames", len(gotB))
	}
	pb.Send(frame(macB, macA, -1, 2)) // unicast back: both switches know macA
	s.Run()
	if len(gotA) != 1 {
		t.Fatalf("reply across trunk: A got %d frames", len(gotA))
	}
	if sws[1].Flooded() != 1 {
		t.Fatalf("downstream floods = %d, want only the initial teach frame", sws[1].Flooded())
	}
	pa.Send(frame(macA, macB, -1, 3))
	s.Run()
	if len(gotB) != 2 || sws[0].Flooded() != 1 {
		t.Fatalf("steady state not unicast: B=%d floods=%d", len(gotB), sws[0].Flooded())
	}
}

// TestTopologyLearn primes a three-hop chain and checks the very first
// frame crosses two trunks unicast — zero floods anywhere — which is
// what makes metro conservation accounting exact from slot zero.
func TestTopologyLearn(t *testing.T) {
	s := sim.NewScheduler()
	topo, sws, _ := newChain(t, s, 3)
	var got [][]byte
	pa := sws[0].AddPort("src", nil)
	pc := sws[2].AddPort("dst", func(f []byte) { got = append(got, f) })
	if err := topo.Learn(macC, -1, pc); err != nil {
		t.Fatal(err)
	}

	pa.Send(frame(macA, macC, -1, 7))
	s.Run()
	if len(got) != 1 {
		t.Fatalf("primed unicast delivered %d frames, want 1", len(got))
	}
	for i, sw := range sws {
		if sw.Flooded() != 0 {
			t.Fatalf("switch %d flooded %d frames despite priming", i, sw.Flooded())
		}
	}
}

// TestTrunkInterceptorDirection pins the documented fault-injection
// contract: an interceptor on Trunk.B sees exactly the A-side→B-side
// direction and can drop frames there.
func TestTrunkInterceptorDirection(t *testing.T) {
	s := sim.NewScheduler()
	topo, sws, trunks := newChain(t, s, 2)
	var gotA, gotB int
	pa := sws[0].AddPort("hostA", func([]byte) { gotA++ })
	pb := sws[1].AddPort("hostB", func([]byte) { gotB++ })
	if err := topo.Learn(macA, -1, pa); err != nil {
		t.Fatal(err)
	}
	if err := topo.Learn(macB, -1, pb); err != nil {
		t.Fatal(err)
	}

	var crossed, dropped int
	trunks[0].B.SetTxInterceptor(func(f []byte, forward func([]byte)) {
		crossed++
		if crossed%2 == 0 {
			dropped++
			return
		}
		forward(f)
	})
	for i := 0; i < 4; i++ {
		pa.Send(frame(macA, macB, -1, byte(i))) // A→B: intercepted
		pb.Send(frame(macB, macA, -1, byte(i))) // B→A: untouched
	}
	s.Run()
	if crossed != 4 || dropped != 2 {
		t.Fatalf("interceptor saw %d frames, dropped %d; want 4/2", crossed, dropped)
	}
	if gotB != 2 {
		t.Fatalf("B received %d frames, want 2 after drops", gotB)
	}
	if gotA != 4 {
		t.Fatalf("A received %d frames, want all 4 (reverse direction untouched)", gotA)
	}
}

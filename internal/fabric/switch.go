// Package fabric is the Ethernet substrate of the testbed: a virtual
// VLAN-aware learning switch standing in for the 100GbE Arista fabric of
// §6.1, and an SR-IOV NIC model whose virtual functions and embedded
// switch realize the middlebox chaining of Fig. 8 (including the PCIe
// throughput bookkeeping that §5 identifies as the chaining bottleneck).
//
// Frames are delivered on the simulation clock with per-link serialization
// delay plus a fixed forwarding latency, so end-to-end fronthaul deadline
// checks see realistic transport times. Ownership rule: a frame buffer
// passed to Send belongs to the fabric; each receiver gets a buffer it may
// mutate freely (flooded copies are made per extra receiver).
package fabric

import (
	"fmt"
	"sync/atomic"
	"time"

	"ranbooster/internal/eth"
	"ranbooster/internal/sim"
)

// PortStats counts traffic through a port, from the device's perspective:
// Tx is what the device sent into the fabric.
type PortStats struct {
	TxFrames, TxBytes uint64
	RxFrames, RxBytes uint64
}

// portCounters is the live, atomically-updated form of PortStats. The
// fabric path mutates them on the scheduler goroutine, but an engine in
// parallel worker mode transmits through Port.Send from its worker
// goroutines, and tests read Stats concurrently — so the counters must be
// atomic rather than plain words.
type portCounters struct {
	txFrames, txBytes atomic.Uint64
	rxFrames, rxBytes atomic.Uint64
}

// Port is an attachment point on a switch. Devices transmit with Send and
// receive through the handler registered at creation.
type Port struct {
	name    string
	sw      *Switch
	index   int
	handler func(frame []byte)
	stats   portCounters
	// tx, when set, interposes on the device→fabric direction (fault
	// injection); see SetTxInterceptor.
	tx func(frame []byte, forward func(frame []byte))
	// busyUntil models egress serialization: one frame at a time per port.
	busyUntil sim.Time
}

// Name returns the port name.
func (p *Port) Name() string { return p.name }

// Stats returns a snapshot of the port counters. It is safe to call while
// frames flow, including from outside the scheduler goroutine.
func (p *Port) Stats() PortStats {
	return PortStats{
		TxFrames: p.stats.txFrames.Load(),
		TxBytes:  p.stats.txBytes.Load(),
		RxFrames: p.stats.rxFrames.Load(),
		RxBytes:  p.stats.rxBytes.Load(),
	}
}

// SetTxInterceptor interposes fn on the device→fabric direction: Send
// hands each frame to fn together with the forward continuation instead
// of forwarding into the switch directly. fn may forward the frame
// unchanged, mutate it in place (the interceptor owns the buffer, like
// the fabric it stands in for), forward it several times, forward it
// later from a scheduler event, or not at all — the hook point a fault
// injector models a lossy link through. A nil fn removes the
// interceptor.
func (p *Port) SetTxInterceptor(fn func(frame []byte, forward func(frame []byte))) {
	p.tx = fn
}

// Send transmits a frame from the attached device into the switch. The
// fabric takes ownership of the buffer.
func (p *Port) Send(frame []byte) {
	if p.tx != nil {
		p.tx(frame, func(f []byte) { p.sw.ingress(p, f) })
		return
	}
	p.sw.ingress(p, frame)
}

type fdbKey struct {
	vlan uint16
	mac  eth.MAC
}

const untaggedVLAN = 0xffff

// Switch is a VLAN-aware learning L2 switch.
type Switch struct {
	name    string
	sched   *sim.Scheduler
	ports   []*Port
	fdb     map[fdbKey]*Port
	latency time.Duration
	// LineRateGbps sets per-port serialization speed (0 disables the model).
	lineRateGbps float64

	flooded uint64
	dropped uint64

	tap func(frame []byte)
}

// SetTap installs a port-mirroring tap: fn observes every frame entering
// the switch (the capture hook behind cmd/fhdissect). The frame belongs
// to the fabric; taps must copy if they retain it.
func (s *Switch) SetTap(fn func(frame []byte)) { s.tap = fn }

// NewSwitch creates a switch with the given forwarding latency and port
// line rate in Gbit/s.
func NewSwitch(sched *sim.Scheduler, name string, latency time.Duration, lineRateGbps float64) *Switch {
	return &Switch{
		name:         name,
		sched:        sched,
		fdb:          make(map[fdbKey]*Port),
		latency:      latency,
		lineRateGbps: lineRateGbps,
	}
}

// AddPort attaches a device. The handler runs on the simulation goroutine
// when a frame is delivered.
func (s *Switch) AddPort(name string, handler func(frame []byte)) *Port {
	p := &Port{name: name, sw: s, index: len(s.ports), handler: handler}
	s.ports = append(s.ports, p)
	return p
}

// Ports returns the switch's attachment points in creation order.
func (s *Switch) Ports() []*Port { return s.ports }

// PortByName returns the named port, or nil — the lookup experiment
// runners use to attach fault injectors to an assembled testbed.
func (s *Switch) PortByName(name string) *Port {
	for _, p := range s.ports {
		if p.name == name {
			return p
		}
	}
	return nil
}

// Flooded reports how many frames were flooded (unknown unicast, broadcast).
func (s *Switch) Flooded() uint64 { return s.flooded }

// Dropped reports frames dropped for lack of any destination.
func (s *Switch) Dropped() uint64 { return s.dropped }

func vlanOf(h *eth.Header) uint16 {
	if h.HasVLAN {
		return h.VLANID
	}
	return untaggedVLAN
}

func (s *Switch) ingress(in *Port, frame []byte) {
	in.stats.txFrames.Add(1)
	in.stats.txBytes.Add(uint64(len(frame)))
	if s.tap != nil {
		s.tap(frame)
	}
	var h eth.Header
	if _, err := h.DecodeFromBytes(frame); err != nil {
		s.dropped++
		return
	}
	vlan := vlanOf(&h)
	// Learn the source.
	if !h.Src.IsZero() {
		s.fdb[fdbKey{vlan: vlan, mac: h.Src}] = in
	}
	if !h.Dst.IsBroadcast() {
		if out, ok := s.fdb[fdbKey{vlan: vlan, mac: h.Dst}]; ok {
			if out != in {
				s.deliver(out, frame)
			} else {
				s.dropped++ // hairpin: destination learned on the ingress port
			}
			return
		}
	}
	// Flood.
	s.flooded++
	first := true
	for _, p := range s.ports {
		if p == in {
			continue
		}
		if first {
			s.deliver(p, frame)
			first = false
			continue
		}
		cp := make([]byte, len(frame))
		copy(cp, frame)
		s.deliver(p, cp)
	}
	if first {
		s.dropped++ // nowhere to go
	}
}

func (s *Switch) deliver(out *Port, frame []byte) {
	now := s.sched.Now()
	start := now
	if out.busyUntil > start {
		start = out.busyUntil
	}
	var ser time.Duration
	if s.lineRateGbps > 0 {
		ser = time.Duration(float64(len(frame)*8) / s.lineRateGbps) // ns per bit at G bits/s
	}
	out.busyUntil = start.Add(ser)
	at := out.busyUntil.Add(s.latency)
	s.sched.At(at, func() {
		out.stats.rxFrames.Add(1)
		out.stats.rxBytes.Add(uint64(len(frame)))
		if out.handler != nil {
			out.handler(frame)
		}
	})
}

// String identifies the switch.
func (s *Switch) String() string { return fmt.Sprintf("switch(%s, %d ports)", s.name, len(s.ports)) }

package fabric

import (
	"testing"
	"time"

	"ranbooster/internal/eth"
	"ranbooster/internal/sim"
)

var (
	macA = eth.MAC{2, 0, 0, 0, 0, 0xA}
	macB = eth.MAC{2, 0, 0, 0, 0, 0xB}
	macC = eth.MAC{2, 0, 0, 0, 0, 0xC}
)

func frame(src, dst eth.MAC, vlan int, payload byte) []byte {
	h := eth.Header{Dst: dst, Src: src, EtherType: eth.TypeECPRI}
	if vlan >= 0 {
		h.HasVLAN = true
		h.VLANID = uint16(vlan)
	}
	b := h.AppendTo(nil)
	return append(b, payload)
}

func TestLearningAndUnicast(t *testing.T) {
	s := sim.NewScheduler()
	sw := NewSwitch(s, "tor", time.Microsecond, 100)
	var gotB, gotC [][]byte
	pa := sw.AddPort("a", nil)
	pb := sw.AddPort("b", func(f []byte) { gotB = append(gotB, f) })
	pc := sw.AddPort("c", func(f []byte) { gotC = append(gotC, f) })
	_ = pc

	// First frame A->B floods (B unknown), and teaches the switch where A is.
	pa.Send(frame(macA, macB, -1, 1))
	s.Run()
	if len(gotB) != 1 || len(gotC) != 1 {
		t.Fatalf("flood: B=%d C=%d", len(gotB), len(gotC))
	}
	if sw.Flooded() != 1 {
		t.Fatalf("flooded = %d", sw.Flooded())
	}
	// B replies: unicast straight to A's port, and teaches B's location.
	pb.Send(frame(macB, macA, -1, 2))
	s.Run()
	// Now A->B is unicast: C must not see it.
	pa.Send(frame(macA, macB, -1, 3))
	s.Run()
	if len(gotC) != 1 {
		t.Fatalf("unicast leaked to C: %d", len(gotC))
	}
	if len(gotB) != 2 {
		t.Fatalf("B frames = %d", len(gotB))
	}
}

func TestVLANSeparation(t *testing.T) {
	s := sim.NewScheduler()
	sw := NewSwitch(s, "tor", 0, 0)
	pa := sw.AddPort("a", nil)
	nB := 0
	pb := sw.AddPort("b", func([]byte) { nB++ })
	// Teach macB on VLAN 6 via port b.
	pb.Send(frame(macB, macC, 6, 0))
	s.Run()
	nB = 0
	// A unicast to macB on VLAN 7 must flood (separate FDB space), on
	// VLAN 6 it must unicast.
	pa.Send(frame(macA, macB, 7, 1))
	pa.Send(frame(macA, macB, 6, 2))
	s.Run()
	if nB != 2 {
		t.Fatalf("B received %d", nB)
	}
	if sw.Flooded() < 2 { // first teach-frame also flooded
		t.Fatalf("flooded = %d", sw.Flooded())
	}
}

func TestBroadcastFloods(t *testing.T) {
	s := sim.NewScheduler()
	sw := NewSwitch(s, "tor", 0, 0)
	pa := sw.AddPort("a", nil)
	n := 0
	sw.AddPort("b", func([]byte) { n++ })
	sw.AddPort("c", func([]byte) { n++ })
	pa.Send(frame(macA, eth.Broadcast, -1, 1))
	s.Run()
	if n != 2 {
		t.Fatalf("broadcast reached %d ports", n)
	}
}

func TestFloodCopiesAreIndependent(t *testing.T) {
	s := sim.NewScheduler()
	sw := NewSwitch(s, "tor", 0, 0)
	pa := sw.AddPort("a", nil)
	var bufs [][]byte
	sw.AddPort("b", func(f []byte) { bufs = append(bufs, f) })
	sw.AddPort("c", func(f []byte) { bufs = append(bufs, f) })
	pa.Send(frame(macA, eth.Broadcast, -1, 9))
	s.Run()
	if len(bufs) != 2 {
		t.Fatalf("copies = %d", len(bufs))
	}
	bufs[0][0] ^= 0xff
	if bufs[1][0] == bufs[0][0] {
		t.Fatal("receivers share a buffer")
	}
}

func TestForwardingLatencyAndSerialization(t *testing.T) {
	s := sim.NewScheduler()
	// 1 Gbit/s, 10 µs latency: a 1250-byte frame serializes in 10 µs.
	sw := NewSwitch(s, "tor", 10*time.Microsecond, 1)
	pa := sw.AddPort("a", nil)
	var at []sim.Time
	pb := sw.AddPort("b", func([]byte) { at = append(at, s.Now()) })
	// Teach B's MAC.
	pb.Send(frame(macB, macA, -1, 0))
	s.Run()
	base := s.Now()
	f1 := frame(macA, macB, -1, 1)
	f1 = append(f1, make([]byte, 1250-len(f1))...)
	f2 := frame(macA, macB, -1, 2)
	f2 = append(f2, make([]byte, 1250-len(f2))...)
	pa.Send(f1)
	pa.Send(f2) // queues behind f1 on B's egress
	s.Run()
	if len(at) != 2 {
		t.Fatalf("deliveries = %d", len(at))
	}
	d1, d2 := at[0].Sub(base), at[1].Sub(base)
	if d1 != 20*time.Microsecond {
		t.Fatalf("first delivery after %v, want 20µs", d1)
	}
	if d2 != 30*time.Microsecond {
		t.Fatalf("second delivery after %v, want 30µs (queued)", d2)
	}
}

func TestPortStats(t *testing.T) {
	s := sim.NewScheduler()
	sw := NewSwitch(s, "tor", 0, 0)
	pa := sw.AddPort("a", nil)
	pb := sw.AddPort("b", nil)
	f := frame(macA, eth.Broadcast, -1, 1)
	n := len(f)
	pa.Send(f)
	s.Run()
	if st := pa.Stats(); st.TxFrames != 1 || st.TxBytes != uint64(n) {
		t.Fatalf("a stats = %+v", st)
	}
	if st := pb.Stats(); st.RxFrames != 1 || st.RxBytes != uint64(n) {
		t.Fatalf("b stats = %+v", st)
	}
}

func TestMalformedFrameDropped(t *testing.T) {
	s := sim.NewScheduler()
	sw := NewSwitch(s, "tor", 0, 0)
	pa := sw.AddPort("a", nil)
	pa.Send([]byte{1, 2, 3})
	s.Run()
	if sw.Dropped() != 1 {
		t.Fatalf("dropped = %d", sw.Dropped())
	}
}

func TestHairpinDropped(t *testing.T) {
	s := sim.NewScheduler()
	sw := NewSwitch(s, "tor", 0, 0)
	pa := sw.AddPort("a", nil)
	sw.AddPort("b", nil)
	// Teach macB on port a, then send a->macB: destination is the ingress
	// port, which must not loop back.
	pa.Send(frame(macB, macC, -1, 0))
	s.Run()
	drops := sw.Dropped()
	pa.Send(frame(macA, macB, -1, 1))
	s.Run()
	if sw.Dropped() != drops+1 {
		t.Fatalf("hairpin not dropped: %d", sw.Dropped())
	}
}

func TestNICVFChaining(t *testing.T) {
	s := sim.NewScheduler()
	ext := NewSwitch(s, "tor", time.Microsecond, 100)
	n := NewNIC(s, ext, "nic0", 200)

	// External host on the TOR switch.
	var hostGot [][]byte
	host := ext.AddPort("host", func(f []byte) { hostGot = append(hostGot, f) })

	// Two chained middlebox VFs: vf1 receives external traffic for macB,
	// rewrites nothing and hands to vf2's MAC; vf2 sends out to macC.
	var vf1, vf2 *Port
	vf1 = n.AddVF("vf1", func(f []byte) {
		if err := eth.Rewrite(f, macC, macB, -1); err != nil {
			t.Errorf("rewrite: %v", err)
		}
		n.SendFromVF(vf1, f)
	})
	_ = vf2

	// Teach locations: host is macA (on ext), vf1 is macB (on embedded),
	// and macC lives back out on the host side.
	n.SendFromVF(vf1, frame(macB, macA, -1, 0)) // vf1 -> uplink -> ext, teaches both switches
	host.Send(frame(macC, macB, -1, 0))         // teaches ext+embedded that macC is outside
	s.Run()
	hostGot = nil

	host.Send(frame(macA, macB, -1, 7))
	s.Run()
	if len(hostGot) != 1 {
		t.Fatalf("chained frame did not return to host: %d", len(hostGot))
	}
	var h eth.Header
	if _, err := h.DecodeFromBytes(hostGot[0]); err != nil {
		t.Fatal(err)
	}
	if h.Dst != macC || h.Src != macB {
		t.Fatalf("rewritten frame = %+v", h)
	}
	if n.PCIeBytes() == 0 {
		t.Fatal("PCIe accounting missed the VF crossings")
	}
}

func TestNICPCIeBudget(t *testing.T) {
	s := sim.NewScheduler()
	ext := NewSwitch(s, "tor", 0, 0)
	n := NewNIC(s, ext, "nic0", 1) // 1 Gbit/s budget
	vf := n.AddVF("vf", nil)
	payload := make([]byte, 1500)
	copy(payload, frame(macA, macB, -1, 0))
	for i := 0; i < 100; i++ {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		n.SendFromVF(vf, cp)
	}
	s.Run()
	// 150 KB over 1 ms ≈ 1.2 Gbit/s > budget.
	if !n.ExceedsPCIe(time.Millisecond) {
		t.Fatalf("PCIe budget not exceeded: %.2f Gbps", n.PCIeGbpsOver(time.Millisecond))
	}
	if n.ExceedsPCIe(time.Second) {
		t.Fatal("long window should be under budget")
	}
}

func TestStrings(t *testing.T) {
	s := sim.NewScheduler()
	ext := NewSwitch(s, "tor", 0, 0)
	n := NewNIC(s, ext, "nic0", 100)
	if ext.String() == "" || n.String() == "" || n.Uplink().Name() == "" {
		t.Fatal("empty strings")
	}
	if n.Embedded() == nil {
		t.Fatal("embedded switch")
	}
}

package fabric

import (
	"fmt"
	"time"

	"ranbooster/internal/sim"
)

// NIC models an SR-IOV capable adapter (the testbed's ConnectX-6 class):
// one uplink port on the external switch, an embedded switch, and virtual
// functions that middleboxes attach to. Frames moving between VFs (or
// between a VF and the uplink) cross the PCIe bus; the NIC accounts those
// bytes so experiments can observe the chaining bottleneck of §5.
type NIC struct {
	name     string
	sched    *sim.Scheduler
	embedded *Switch
	uplink   *Port // port on the external switch
	upIn     *Port // uplink's representor on the embedded switch

	pcieBytes  uint64
	pcieGbps   float64
	pcieDrops  uint64
	windowFrom sim.Time
}

// NewNIC attaches a NIC to an external switch. pcieGbps bounds the PCIe
// budget used by ExceedsPCIe checks (a typical x16 Gen4 slot carries
// ~250 Gbit/s of raw bandwidth; real deliverable is lower).
func NewNIC(sched *sim.Scheduler, ext *Switch, name string, pcieGbps float64) *NIC {
	n := &NIC{
		name:     name,
		sched:    sched,
		embedded: NewSwitch(sched, name+"/eswitch", 500*time.Nanosecond, 0),
		pcieGbps: pcieGbps,
	}
	// External frames enter the embedded switch through the uplink
	// representor; embedded egress to the representor leaves on the wire.
	n.uplink = ext.AddPort(name+"/uplink", func(frame []byte) {
		n.upIn.Send(frame)
	})
	n.upIn = n.embedded.AddPort(name+"/uplink-rep", func(frame []byte) {
		n.uplink.Send(frame)
	})
	return n
}

// AddVF creates a virtual function: the attachment point of one middlebox
// (Fig. 8). Bytes received or sent by a VF cross the PCIe bus.
func (n *NIC) AddVF(name string, handler func(frame []byte)) *Port {
	var vf *Port
	vf = n.embedded.AddPort(name, func(frame []byte) {
		n.pcieBytes += uint64(len(frame))
		if handler != nil {
			handler(frame)
		}
	})
	return vf
}

// SendFromVF transmits a frame from a VF into the embedded switch,
// accounting its PCIe crossing.
func (n *NIC) SendFromVF(vf *Port, frame []byte) {
	n.pcieBytes += uint64(len(frame))
	vf.Send(frame)
}

// PCIeBytes reports total bytes moved across the PCIe bus.
func (n *NIC) PCIeBytes() uint64 { return n.pcieBytes }

// PCIeGbpsOver reports the average PCIe throughput in Gbit/s over a
// window of simulated time ending now.
func (n *NIC) PCIeGbpsOver(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(n.pcieBytes) * 8 / float64(window.Nanoseconds())
}

// ExceedsPCIe reports whether the average PCIe throughput over the window
// exceeds the configured budget — the condition under which §5 says SR-IOV
// chaining stops scaling.
func (n *NIC) ExceedsPCIe(window time.Duration) bool {
	return n.PCIeGbpsOver(window) > n.pcieGbps
}

// Embedded exposes the embedded switch for inspection in tests.
func (n *NIC) Embedded() *Switch { return n.embedded }

// Uplink returns the NIC's port on the external switch.
func (n *NIC) Uplink() *Port { return n.uplink }

// String identifies the NIC.
func (n *NIC) String() string { return fmt.Sprintf("nic(%s)", n.name) }

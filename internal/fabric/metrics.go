package fabric

import "ranbooster/internal/telemetry"

// WriteMetrics exports the switch's per-port traffic counters in the
// Prometheus text format. Only the atomically-maintained port counters are
// exported, so the method is safe to call from a scrape handler while
// frames flow; the switch-level flood/drop tallies live on the scheduler
// goroutine and are reported by Flooded/Dropped instead.
func (s *Switch) WriteMetrics(p *telemetry.PromWriter) {
	for _, port := range s.ports {
		st := port.Stats()
		l := telemetry.Labels{"switch": s.name, "port": port.name}
		p.Counter("ranbooster_port_tx_frames_total", "frames the attached device sent into the fabric", l, st.TxFrames)
		p.Counter("ranbooster_port_tx_bytes_total", "bytes the attached device sent into the fabric", l, st.TxBytes)
		p.Counter("ranbooster_port_rx_frames_total", "frames delivered to the attached device", l, st.RxFrames)
		p.Counter("ranbooster_port_rx_bytes_total", "bytes delivered to the attached device", l, st.RxBytes)
	}
}

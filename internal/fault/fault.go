// Package fault is the deterministic fault-injection layer for the
// simulated fronthaul. The real system's pitch (§8.1) is that middleboxes
// survive a hostile transport — DU silence, loss bursts, reordering — yet
// a perfect simulated fabric never exercises any of that machinery. An
// Injector interposes on one port's device→fabric direction (via
// fabric.Port.SetTxInterceptor) and can drop, duplicate, reorder,
// delay/jitter and bit-corrupt frames, model bursty loss with a two-state
// Gilbert–Elliott chain, and take the link down and up on a schedule.
//
// Everything is driven off internal/sim's virtual clock and SplitMix64
// RNG: the same seed and fault profile replay bit-identically, which is
// what makes chaos experiments regression-testable.
package fault

import (
	"fmt"
	"time"

	"ranbooster/internal/fabric"
	"ranbooster/internal/sim"
)

// Profile describes the fault behaviour of one link direction. The zero
// value injects nothing and forwards every frame untouched.
type Profile struct {
	// Drop is the i.i.d. probability a frame is silently discarded.
	Drop float64
	// Duplicate is the probability a frame is forwarded twice.
	Duplicate float64
	// Corrupt is the probability one payload bit is flipped. The flip is
	// confined to offsets past the Ethernet MACs (byte 14 onward) so the
	// fabric still forwards the frame and the corruption reaches the
	// receiver's validity checks instead of vanishing in the switch FDB.
	Corrupt float64
	// Delay is added to every forwarded frame; Jitter adds a further
	// uniform random amount in [0, Jitter). Zero means forward inline.
	Delay  time.Duration
	Jitter time.Duration
	// Reorder is the probability a frame is held back by ReorderDelay
	// (default 100µs) so later frames of the same stream overtake it.
	// Held frames are always eventually forwarded — reordering never
	// loses a frame, keeping the accounting identity exact.
	Reorder      float64
	ReorderDelay time.Duration
	// Burst, when non-nil, overlays Gilbert–Elliott burst loss on top of
	// the i.i.d. Drop probability.
	Burst *GilbertElliott
}

// GilbertElliott is the classic two-state burst-loss channel: a Markov
// chain alternates between a Good and a Bad state with per-frame
// transition probabilities, and each state has its own loss rate.
type GilbertElliott struct {
	// PGoodToBad and PBadToGood are per-frame transition probabilities.
	PGoodToBad, PBadToGood float64
	// LossGood and LossBad are the per-frame drop probabilities within
	// each state (classically LossGood ≈ 0, LossBad ≈ 1).
	LossGood, LossBad float64
}

// Stats counts what the injector did. Every frame handed to the injector
// is accounted for — once the scheduler has drained any in-flight delayed
// deliveries, Injected + Duplicated == Delivered + Dropped (duplicate
// copies are included in Delivered). Corrupted, Reordered and Delayed
// count frames that were delivered after the respective mangling.
type Stats struct {
	Injected  uint64 // frames handed to the injector by the device
	Delivered uint64 // forwards into the fabric (original + duplicates)
	Dropped   uint64 // frames discarded (random, burst, or link down)

	Duplicated uint64 // extra copies forwarded
	Corrupted  uint64 // frames delivered with a flipped bit
	Reordered  uint64 // frames delivered late via the reorder path
	Delayed    uint64 // frames delivered via a scheduled (delay/jitter) event
	LinkDowns  uint64 // frames dropped specifically because the link was down
}

// Injector applies a Profile to one port's transmit direction. It must
// only be touched from the scheduler goroutine (it holds no locks): the
// deterministic testbed delivers frames and flap events there already.
type Injector struct {
	sched   *sim.Scheduler
	rng     *sim.RNG
	profile Profile

	down     bool
	badState bool // Gilbert–Elliott: currently in the Bad state

	stats Stats
}

// NewInjector builds an injector with its own RNG stream. Fork the
// scenario RNG per injector so adding one injector does not perturb the
// random streams of the rest of the simulation.
func NewInjector(sched *sim.Scheduler, rng *sim.RNG, p Profile) *Injector {
	if p.ReorderDelay == 0 {
		p.ReorderDelay = 100 * time.Microsecond
	}
	return &Injector{sched: sched, rng: rng, profile: p}
}

// Attach interposes the injector on the port's transmit direction.
func (j *Injector) Attach(p *fabric.Port) {
	p.SetTxInterceptor(j.Tx)
}

// Detach restores the port's direct path.
func (j *Injector) Detach(p *fabric.Port) {
	p.SetTxInterceptor(nil)
}

// Stats snapshots the injector counters.
func (j *Injector) Stats() Stats { return j.stats }

// Profile returns the active fault profile.
func (j *Injector) Profile() Profile { return j.profile }

// SetDown forces the link state: while down, every frame is dropped.
func (j *Injector) SetDown(down bool) { j.down = down }

// Down reports whether the link is currently down.
func (j *Injector) Down() bool { return j.down }

// FlapAt schedules a link flap: down at the given virtual time, back up
// after d. Flaps may be scripted before the scenario runs; they execute
// on the scheduler like any other event.
func (j *Injector) FlapAt(at sim.Time, d time.Duration) {
	j.sched.At(at, func() { j.down = true })
	j.sched.At(at.Add(d), func() { j.down = false })
}

// Tx is the fabric.Port interceptor: it decides each frame's fate. It is
// exported so an injector can also wrap non-fabric paths (e.g. a direct
// engine feed) with the same accounting.
func (j *Injector) Tx(frame []byte, forward func([]byte)) {
	j.stats.Injected++

	if j.down {
		j.stats.Dropped++
		j.stats.LinkDowns++
		return
	}
	if j.burstDrop() || j.chance(j.profile.Drop) {
		j.stats.Dropped++
		return
	}

	if j.chance(j.profile.Corrupt) && j.flipBit(frame) {
		j.stats.Corrupted++
	}

	dup := j.chance(j.profile.Duplicate)

	delay := j.profile.Delay
	if j.profile.Jitter > 0 {
		delay += time.Duration(j.rng.Float64() * float64(j.profile.Jitter))
	}
	reordered := j.chance(j.profile.Reorder)
	if reordered {
		delay += j.profile.ReorderDelay
	}

	deliver := func(f []byte) {
		j.stats.Delivered++
		if reordered {
			j.stats.Reordered++
		}
		forward(f)
	}

	var cp []byte
	if dup {
		cp = append([]byte(nil), frame...)
	}
	if delay > 0 {
		j.stats.Delayed++ // counted at decision time; delivery is committed
		j.sched.After(delay, func() { deliver(frame) })
	} else {
		deliver(frame)
	}
	if dup {
		j.stats.Duplicated++
		if delay > 0 {
			j.stats.Delayed++
			j.sched.After(delay, func() { deliver(cp) })
		} else {
			deliver(cp)
		}
	}
}

// burstDrop advances the Gilbert–Elliott chain one frame and reports
// whether this frame is lost to the burst process.
func (j *Injector) burstDrop() bool {
	ge := j.profile.Burst
	if ge == nil {
		return false
	}
	if j.badState {
		if j.rng.Float64() < ge.PBadToGood {
			j.badState = false
		}
	} else {
		if j.rng.Float64() < ge.PGoodToBad {
			j.badState = true
		}
	}
	loss := ge.LossGood
	if j.badState {
		loss = ge.LossBad
	}
	return j.chance(loss)
}

func (j *Injector) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return j.rng.Float64() < p
}

// flipBit flips one random bit at byte offset >= 14 (past dst/src MAC),
// so the frame still reaches its destination and the corruption is seen
// by the receiver, not eaten by the switch. Returns false for frames too
// short to corrupt safely.
func (j *Injector) flipBit(frame []byte) bool {
	if len(frame) <= 14 {
		return false
	}
	off := 14 + j.rng.Intn(len(frame)-14)
	frame[off] ^= 1 << uint(j.rng.Intn(8))
	return true
}

// String summarizes the counters for recovery tables and logs.
func (s Stats) String() string {
	return fmt.Sprintf("injected=%d delivered=%d dropped=%d (dup=%d corrupt=%d reorder=%d delayed=%d linkdown=%d)",
		s.Injected, s.Delivered, s.Dropped, s.Duplicated, s.Corrupted, s.Reordered, s.Delayed, s.LinkDowns)
}

// Add combines two snapshots (per-link stats merged for a scenario table).
func (s Stats) Add(o Stats) Stats {
	s.Injected += o.Injected
	s.Delivered += o.Delivered
	s.Dropped += o.Dropped
	s.Duplicated += o.Duplicated
	s.Corrupted += o.Corrupted
	s.Reordered += o.Reordered
	s.Delayed += o.Delayed
	s.LinkDowns += o.LinkDowns
	return s
}

package fault

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"

	"ranbooster/internal/bfp"
	"ranbooster/internal/core"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
	"ranbooster/internal/sim"
	"ranbooster/internal/telemetry"
)

// nopApp ignores its arguments; a pure invocation counter target.
type nopApp struct{}

func (nopApp) Name() string                           { return "nop" }
func (nopApp) Handle(*core.Context, *fh.Packet) error { return nil }

// nopBurst is a burst-aware nopApp.
type nopBurst struct{ nopApp }

func (nopBurst) HandleBurst(*core.Context, []*fh.Packet) error { return nil }

// fwdApp forwards every packet unchanged — the identity middlebox, so a
// chaos run's expected output is exactly its input.
type fwdApp struct{}

func (fwdApp) Name() string { return "fwd" }
func (fwdApp) Handle(ctx *core.Context, pkt *fh.Packet) error {
	ctx.Forward(pkt)
	return nil
}

// firedIndices runs 1-based calls 1..total through a PanicEvery(nop)
// wrapper and returns the indices that panicked.
func firedIndices(t *testing.T, every int, seed uint64, total int) []int {
	t.Helper()
	app, stats := PanicEvery(nopApp{}, every, seed)
	var fired []int
	for i := 1; i <= total; i++ {
		func() {
			defer func() {
				if recover() != nil {
					fired = append(fired, i)
				}
			}()
			_ = app.Handle(nil, nil)
		}()
	}
	if stats.Calls() != uint64(total) {
		t.Fatalf("Calls = %d, want %d", stats.Calls(), total)
	}
	if int(stats.Panics()) != len(fired) {
		t.Fatalf("Panics = %d, fired %d", stats.Panics(), len(fired))
	}
	return fired
}

func TestPanicEveryDeterministic(t *testing.T) {
	const every, total = 50, 300
	for _, seed := range []uint64{0, 7, 12345} {
		a := firedIndices(t, every, seed, total)
		b := firedIndices(t, every, seed, total)
		if len(a) != total/every {
			t.Fatalf("seed %d: %d panics in %d calls, want %d", seed, len(a), total, total/every)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d not replayable: %v vs %v", seed, a, b)
			}
			if phase := seed % every; uint64(a[i])%every != phase {
				t.Fatalf("seed %d: call %d fired off-phase (want n %% %d == %d)", seed, a[i], every, phase)
			}
		}
	}
	// Distinct seeds shift the phase.
	if a, b := firedIndices(t, every, 1, total), firedIndices(t, every, 2, total); a[0] == b[0] {
		t.Fatalf("seeds 1 and 2 fire on the same calls (%v)", a[:1])
	}
}

func TestPanicEveryPreservesBurstContract(t *testing.T) {
	plain, _ := PanicEvery(nopApp{}, 10, 0)
	if _, ok := plain.(core.BurstApp); ok {
		t.Fatal("wrapping a plain App produced a BurstApp")
	}
	wrapped, stats := PanicEvery(nopBurst{}, 2, 0)
	burst, ok := wrapped.(core.BurstApp)
	if !ok {
		t.Fatal("wrapping a BurstApp lost the burst contract")
	}
	// Bursts count as one invocation each; the trip happens before
	// delegation.
	if err := burst.HandleBurst(nil, nil); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("second burst did not trip")
			}
		}()
		_ = burst.HandleBurst(nil, nil)
	}()
	if stats.Calls() != 2 || stats.Panics() != 1 {
		t.Fatalf("stats = %d calls / %d panics, want 2/1", stats.Calls(), stats.Panics())
	}
}

func TestStallForWedgesExactlyOnce(t *testing.T) {
	app, ctl := StallFor(nopApp{}, 3)
	if _, ok := app.(core.BurstApp); ok {
		t.Fatal("wrapping a plain App produced a BurstApp")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5; i++ {
			_ = app.Handle(nil, nil)
		}
	}()
	deadline := time.After(5 * time.Second)
	for !ctl.Stalled() {
		select {
		case <-deadline:
			t.Fatal("call 3 never stalled")
		default:
			runtime.Gosched()
		}
	}
	if ctl.Calls() != 3 {
		t.Fatalf("Calls = %d at stall, want 3", ctl.Calls())
	}
	ctl.Release()
	select {
	case <-done:
	case <-deadline:
		t.Fatal("Release did not unblock the stalled call")
	}
	if ctl.Stalled() {
		t.Fatal("Stalled still true after release")
	}
	ctl.Release() // idempotent
	if ctl.Calls() != 5 {
		t.Fatalf("Calls = %d, want 5 (no further stalls)", ctl.Calls())
	}
}

func TestStallArmReleasesOnVirtualTime(t *testing.T) {
	s := sim.NewScheduler()
	app, ctl := StallFor(nopApp{}, 1)
	stop := ctl.Arm(s, 10*time.Millisecond, time.Millisecond)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = app.Handle(nil, nil)
	}()
	deadline := time.After(5 * time.Second)
	for !ctl.Stalled() {
		select {
		case <-deadline:
			t.Fatal("call never stalled")
		default:
			runtime.Gosched()
		}
	}
	// One poll observes the stall, then d more virtual time releases it.
	s.RunFor(12 * time.Millisecond)
	select {
	case <-done:
	case <-deadline:
		t.Fatal("armed release never fired")
	}
}

// chaosFrame builds a downlink U-plane frame whose payload encodes seq,
// so every frame of a stream is byte-unique and order is observable.
func chaosFrame(t *testing.T, b *fh.Builder, port uint8, seq int) []byte {
	t.Helper()
	g := iq.NewGrid(4)
	for i := range g {
		for j := range g[i] {
			g[i][j] = iq.Sample{I: int16(seq % 2048), Q: -int16(seq % 1024)}
		}
	}
	p := bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint}
	payload, err := bfp.CompressGrid(nil, g, p)
	if err != nil {
		t.Fatal(err)
	}
	msg := &oran.UPlaneMsg{
		Timing: oran.Timing{Direction: oran.Downlink,
			FrameID: uint8(seq / 160 % 256), SubframeID: uint8(seq / 16 % 10), SlotID: uint8(seq % 16 % 2),
			SymbolID: uint8(seq % 14)},
		Sections: []oran.USection{{NumPRB: 4, Comp: p, Payload: payload}},
	}
	return b.UPlane(ecpri.PcID{RUPort: port}, msg)
}

// TestChaosSupervisionAcceptance is the seeded end-to-end chaos run of
// DESIGN.md §6.7: a parallel 2-core engine whose App panics on a fixed
// schedule AND wedges once, under full supervision. The run must finish
// with zero crashes, the non-stalled stream byte-identical to a clean
// run (the App is the identity forwarder, so the clean run's output is
// the input), the breaker observed cycling Open → Half-Open → Closed,
// and the stall detected within the watchdog deadline plus one poll.
func TestChaosSupervisionAcceptance(t *testing.T) {
	const (
		seed       = 42
		streams    = 2
		perFlow    = 1500
		panicEvery = 250
		stallCall  = 1101
		stallAfter = time.Millisecond
		poll       = stallAfter / 2
	)
	inner, pstats := PanicEvery(fwdApp{}, panicEvery, seed)
	app, stall := StallFor(inner, stallCall)

	s := sim.NewScheduler()
	e, err := core.NewEngine(s, core.Config{
		Name: "chaos", Mode: core.ModeDPDK, Cores: streams, App: app,
		CarrierPRBs: 106, RingSize: 1024,
		Supervise: core.SupervisePolicy{
			PanicBudget:     2,
			BreakerCooldown: 2 * time.Millisecond,
			StallAfter:      stallAfter,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var outMu sync.Mutex
	outs := make([][][]byte, streams)
	e.SetOutput(func(f []byte) {
		cp := append([]byte(nil), f...)
		var p fh.Packet
		if p.Decode(cp) != nil {
			return
		}
		port := p.EAxC().RUPort
		outMu.Lock()
		outs[port] = append(outs[port], cp)
		outMu.Unlock()
	})
	rec := telemetry.NewRecorder()
	rec.Attach(e.Bus(), core.KPIBreaker)

	// Pre-build the whole offered load, interleaved across streams.
	builders := make([]*fh.Builder, streams)
	for p := range builders {
		builders[p] = fh.NewBuilder(
			eth.MAC{0x02, 0, 0, 0, 0, 0x01}, eth.MAC{0x02, 0, 0, 0, 0, 0x02}, 6)
	}
	inputs := make([][][]byte, streams)
	var frames [][]byte
	for seq := 0; seq < perFlow; seq++ {
		for p := 0; p < streams; p++ {
			f := chaosFrame(t, builders[p], uint8(p), seq)
			inputs[p] = append(inputs[p], f)
			frames = append(frames, f)
		}
	}

	// The wedged App releases on its own after 10x the watchdog deadline
	// of virtual time — long after the shard was restarted around it.
	stopArm := stall.Arm(s, 10*stallAfter, poll)
	defer stopArm()

	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	var tStall, tRestart sim.Time
	step := func() {
		// Yield the P before advancing time: on a single-CPU box the
		// workers are otherwise starved for whole stretches of virtual
		// time, which is not the regime supervision is meant to model.
		for i := 0; i < 8; i++ {
			runtime.Gosched()
		}
		s.RunFor(poll)
		e.Supervise()
		if tStall == 0 && stall.Stalled() {
			tStall = s.Now()
		}
		if tRestart == 0 && e.Snapshot().ShardRestarts > 0 {
			tRestart = s.Now()
		}
	}
	for i, f := range frames {
		for !e.TryIngress(f) {
			step()
			runtime.Gosched()
		}
		if i%32 == 0 {
			step()
		}
	}
	for i := 0; i < 200 && (tRestart == 0 || e.Snapshot().RxFrames < uint64(len(frames))); i++ {
		step()
	}
	e.Stop()

	st := e.Snapshot()
	if st.ShardRestarts != 1 {
		t.Fatalf("ShardRestarts = %d, want 1", st.ShardRestarts)
	}
	if tStall == 0 || tRestart == 0 {
		t.Fatal("stall or restart never observed")
	}
	// Detection latency: the watchdog needs one poll to baseline the
	// wedged invocation and StallAfter to declare it stuck; tStall itself
	// is observed at poll granularity.
	if lat := tRestart.Sub(tStall); lat > stallAfter+2*poll {
		t.Fatalf("restart latency %v, want <= StallAfter + 2 polls (%v)", lat, stallAfter+2*poll)
	}
	if pstats.Panics() == 0 || st.AppPanics != pstats.Panics() {
		t.Fatalf("panics: injector %d, engine %d — isolation lost panics", pstats.Panics(), st.AppPanics)
	}
	if st.Quarantined < st.AppPanics {
		t.Fatalf("Quarantined = %d < AppPanics = %d", st.Quarantined, st.AppPanics)
	}
	if st.RingDrops != 0 || st.ShedUPlane != 0 || st.ShedPRACH != 0 {
		t.Fatalf("frames lost outside the stall: %+v", st)
	}

	// The breaker cycled through Open → Half-Open → Closed (as a
	// subsequence of the KPI series: panics keep arriving, so the
	// machine may cycle several times).
	var wantSeq = []core.BreakerState{core.BreakerOpen, core.BreakerHalfOpen, core.BreakerClosed}
	i := 0
	for _, smp := range rec.Series(core.KPIBreaker) {
		if i < len(wantSeq) && core.BreakerState(smp.Value) == wantSeq[i] {
			i++
		}
	}
	if i != len(wantSeq) {
		t.Fatalf("breaker never completed Open → Half-Open → Closed (series %v)", rec.Series(core.KPIBreaker))
	}

	// Stream integrity versus the clean run. With the identity forwarder
	// every clean-run output equals its input, so: each emitted stream
	// must be an in-order subsequence of its input, at most one stream
	// (the stalled shard's) may be missing frames, and its loss must be
	// one contiguous run — the burst abandoned with the wedged worker.
	outMu.Lock()
	defer outMu.Unlock()
	stalledStreams := 0
	for p := 0; p < streams; p++ {
		skipped := make([]int, 0, 8)
		j := 0
		for _, f := range outs[p] {
			match := j
			for match < len(inputs[p]) && !bytes.Equal(inputs[p][match], f) {
				match++
			}
			if match == len(inputs[p]) {
				t.Fatalf("stream %d emitted a frame not in its input (reordered or corrupted)", p)
			}
			for k := j; k < match; k++ {
				skipped = append(skipped, k)
			}
			j = match + 1
		}
		for k := j; k < len(inputs[p]); k++ {
			skipped = append(skipped, k)
		}
		if len(skipped) == 0 {
			continue
		}
		stalledStreams++
		for i := 1; i < len(skipped); i++ {
			if skipped[i] != skipped[i-1]+1 {
				t.Fatalf("stream %d lost non-contiguous frames %v", p, skipped)
			}
		}
		// The only legal loss is the burst abandoned with the wedged
		// worker: at most one drain's worth of frames.
		if len(skipped) > core.DefaultBatch {
			t.Fatalf("stream %d lost %d frames, more than one burst", p, len(skipped))
		}
	}
	if stalledStreams != 1 {
		t.Fatalf("%d streams lost frames, want exactly the stalled shard's", stalledStreams)
	}
}

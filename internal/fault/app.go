// App-level fault injection: deterministic misbehaving-middlebox
// wrappers for exercising the engine's supervision machinery (panic
// isolation, circuit breaker, stall watchdog). Where fault.Injector
// attacks the transport, these attack the App itself — the other half of
// the robustness story: a middlebox platform must survive not only a
// hostile fronthaul but also its own buggy payload.
//
// Both wrappers are transparent interposers: they preserve the inner
// App's Name, delegate every call they do not sabotage, and keep the
// burst contract — wrapping a core.BurstApp yields a core.BurstApp,
// wrapping a plain core.App yields a plain core.App. Sabotage happens
// BEFORE delegation, so a panicked or stalled call leaves its frames
// untouched; the engine's quarantine path then fails them to the wire
// byte-identical to what arrived.
//
// Like the link injectors, everything is deterministic: PanicEvery
// derives its firing phase from a seed, StallFor wedges exactly one
// numbered call, and the same seed and call sequence replay
// bit-identically.
package fault

import (
	"fmt"
	"sync/atomic"
	"time"

	"ranbooster/internal/core"
	"ranbooster/internal/fh"
	"ranbooster/internal/sim"
)

// PanicStats is the observer handle PanicEvery returns alongside the
// wrapped App: it counts invocations and injected panics. Safe for
// concurrent use from parallel shard workers.
type PanicStats struct {
	calls  atomic.Uint64
	panics atomic.Uint64
}

// Calls returns how many times the wrapped App has been invoked
// (Handle calls, or HandleBurst calls for a burst-aware inner App).
func (s *PanicStats) Calls() uint64 { return s.calls.Load() }

// Panics returns how many invocations panicked instead of delegating.
func (s *PanicStats) Panics() uint64 { return s.panics.Load() }

// trip counts one invocation and panics when it lands on the injector's
// phase. It runs before any delegation so the frames of a tripped call
// are never touched.
func (s *PanicStats) trip(every, phase uint64) {
	n := s.calls.Add(1)
	if n%every == phase {
		s.panics.Add(1)
		panic(fmt.Sprintf("fault: injected app panic (call %d)", n))
	}
}

// panicApp wraps a plain core.App.
type panicApp struct {
	inner core.App
	every uint64
	phase uint64
	stats *PanicStats
}

func (a *panicApp) Name() string { return a.inner.Name() }

func (a *panicApp) Handle(ctx *core.Context, pkt *fh.Packet) error {
	a.stats.trip(a.every, a.phase)
	return a.inner.Handle(ctx, pkt)
}

// panicBurstApp additionally forwards the burst contract: one counted
// invocation per drained burst, matching how the engine charges the App.
type panicBurstApp struct {
	panicApp
	burst core.BurstApp
}

func (a *panicBurstApp) HandleBurst(ctx *core.Context, pkts []*fh.Packet) error {
	a.stats.trip(a.every, a.phase)
	return a.burst.HandleBurst(ctx, pkts)
}

// PanicEvery wraps inner so that every n-th invocation panics instead of
// delegating. The seed picks which call inside each window of n fires
// (phase = seed mod n), so distinct seeds shift the pattern while the
// rate stays exactly 1/n; the same seed replays the same call indices.
// Panics are raised before inner sees the frames, so the engine's
// quarantine forwards them exactly as they arrived.
//
// The returned App is burst-aware iff inner is. The PanicStats handle
// observes the injector from outside the engine.
func PanicEvery(inner core.App, n int, seed uint64) (core.App, *PanicStats) {
	if n <= 0 {
		panic("fault: PanicEvery needs n >= 1")
	}
	st := &PanicStats{}
	pa := panicApp{inner: inner, every: uint64(n), phase: seed % uint64(n), stats: st}
	if b, ok := inner.(core.BurstApp); ok {
		return &panicBurstApp{panicApp: pa, burst: b}, st
	}
	return &pa, st
}

// Stall states.
const (
	stallArmed    uint32 = iota // waiting for the trigger call
	stallWedged                 // a worker goroutine is blocked inside Handle
	stallReleased               // the block has been (or will never be) taken
)

// Stall is the control handle StallFor returns alongside the wrapped
// App. Exactly one invocation — the onCall-th — blocks inside the App
// until Release is called; the shard watchdog should detect the wedged
// worker and restart the shard around it long before that.
type Stall struct {
	calls   atomic.Uint64
	state   atomic.Uint32
	release chan struct{}
}

// Stalled reports whether a worker goroutine is currently wedged inside
// the stalled call.
func (s *Stall) Stalled() bool { return s.state.Load() == stallWedged }

// Calls returns how many times the wrapped App has been invoked.
func (s *Stall) Calls() uint64 { return s.calls.Load() }

// Release unblocks the wedged call (and disarms a stall that has not
// fired yet). Idempotent.
func (s *Stall) Release() {
	for {
		st := s.state.Load()
		if st == stallReleased {
			return
		}
		if s.state.CompareAndSwap(st, stallReleased) {
			close(s.release)
			return
		}
	}
}

// Arm installs a virtual-time release policy on the scheduler: a poll
// ticker watches for the stall to fire and, once it has, schedules
// Release after d more virtual time. This is how a chaos run expresses
// "the app wedges for d" without wall-clock sleeps. The returned stop
// function cancels the ticker.
func (s *Stall) Arm(sched *sim.Scheduler, d, poll time.Duration) (stop func()) {
	scheduled := false
	return sched.Ticker(poll, func() {
		if !scheduled && s.Stalled() {
			scheduled = true
			sched.After(d, s.Release)
		}
	})
}

// maybeStall counts one invocation and blocks when it is the trigger.
func (s *Stall) maybeStall(onCall uint64) {
	if s.calls.Add(1) != onCall {
		return
	}
	if s.state.CompareAndSwap(stallArmed, stallWedged) {
		<-s.release
	}
}

// stallApp wraps a plain core.App.
type stallApp struct {
	inner  core.App
	onCall uint64
	ctl    *Stall
}

func (a *stallApp) Name() string { return a.inner.Name() }

func (a *stallApp) Handle(ctx *core.Context, pkt *fh.Packet) error {
	a.ctl.maybeStall(a.onCall)
	return a.inner.Handle(ctx, pkt)
}

// stallBurstApp forwards the burst contract.
type stallBurstApp struct {
	stallApp
	burst core.BurstApp
}

func (a *stallBurstApp) HandleBurst(ctx *core.Context, pkts []*fh.Packet) error {
	a.ctl.maybeStall(a.onCall)
	return a.burst.HandleBurst(ctx, pkts)
}

// StallFor wraps inner so that exactly the onCall-th invocation (1-based;
// Handle calls, or HandleBurst calls for a burst-aware inner) blocks
// until the returned Stall handle releases it — a deterministic model of
// an App deadlocking or spinning forever on one unlucky input. The
// blocked call holds only the App's own goroutine: a supervised engine
// detects the wedge via its watchdog and restarts the shard around it.
//
// The returned App is burst-aware iff inner is.
func StallFor(inner core.App, onCall uint64) (core.App, *Stall) {
	if onCall == 0 {
		panic("fault: StallFor needs a 1-based call index")
	}
	ctl := &Stall{release: make(chan struct{})}
	sa := stallApp{inner: inner, onCall: onCall, ctl: ctl}
	if b, ok := inner.(core.BurstApp); ok {
		return &stallBurstApp{stallApp: sa, burst: b}, ctl
	}
	return &sa, ctl
}

package fault

import (
	"bytes"
	"testing"
	"time"

	"ranbooster/internal/eth"
	"ranbooster/internal/fabric"
	"ranbooster/internal/sim"
)

var (
	macA = eth.MAC{2, 0, 0, 0, 0, 0xA}
	macB = eth.MAC{2, 0, 0, 0, 0, 0xB}
)

func frame(src, dst eth.MAC, payload byte) []byte {
	h := eth.Header{Dst: dst, Src: src, EtherType: eth.TypeECPRI}
	b := h.AppendTo(nil)
	return append(b, payload, payload, payload, payload)
}

// pair wires A->B through a switch with an injector on A's port and
// returns (scheduler, A's port, received payload bytes).
func pair(t *testing.T, seed uint64, p Profile) (*sim.Scheduler, *Injector, *fabric.Port, *[]byte) {
	t.Helper()
	s := sim.NewScheduler()
	sw := fabric.NewSwitch(s, "tor", time.Microsecond, 100)
	var got []byte
	pa := sw.AddPort("a", nil)
	pb := sw.AddPort("b", func(f []byte) {
		if len(f) > 14 {
			got = append(got, f[14])
		}
	})
	// Teach the FDB so nothing floods back.
	pa.Send(frame(macA, macB, 0xFF))
	pb.Send(frame(macB, macA, 0xFF))
	s.Run()
	got = nil

	inj := NewInjector(s, sim.NewRNG(seed), p)
	inj.Attach(pa)
	return s, inj, pa, &got
}

func checkAccounting(t *testing.T, st Stats) {
	t.Helper()
	if st.Injected+st.Duplicated != st.Delivered+st.Dropped {
		t.Fatalf("accounting identity violated: %v", st)
	}
}

func TestPassThrough(t *testing.T) {
	s, inj, pa, got := pair(t, 1, Profile{})
	for i := 0; i < 100; i++ {
		pa.Send(frame(macA, macB, byte(i)))
		s.Run()
	}
	st := inj.Stats()
	if st.Injected != 100 || st.Delivered != 100 || st.Dropped != 0 {
		t.Fatalf("pass-through stats: %v", st)
	}
	if len(*got) != 100 {
		t.Fatalf("received %d frames, want 100", len(*got))
	}
	for i, b := range *got {
		if b != byte(i) {
			t.Fatalf("frame %d: payload %d (misordered?)", i, b)
		}
	}
	checkAccounting(t, st)
}

func TestRandomDrop(t *testing.T) {
	const n = 10000
	s, inj, pa, got := pair(t, 7, Profile{Drop: 0.1})
	for i := 0; i < n; i++ {
		pa.Send(frame(macA, macB, byte(i)))
	}
	s.Run()
	st := inj.Stats()
	if st.Injected != n {
		t.Fatalf("injected = %d", st.Injected)
	}
	if st.Dropped < n/20 || st.Dropped > n/5 {
		t.Fatalf("dropped = %d, want ~%d", st.Dropped, n/10)
	}
	if uint64(len(*got)) != st.Delivered {
		t.Fatalf("received %d, delivered %d", len(*got), st.Delivered)
	}
	checkAccounting(t, st)
}

func TestDuplicate(t *testing.T) {
	const n = 2000
	s, inj, pa, got := pair(t, 3, Profile{Duplicate: 0.2})
	for i := 0; i < n; i++ {
		pa.Send(frame(macA, macB, byte(i)))
	}
	s.Run()
	st := inj.Stats()
	if st.Duplicated == 0 {
		t.Fatal("no duplicates at p=0.2")
	}
	if st.Delivered != st.Injected+st.Duplicated {
		t.Fatalf("delivered = %d, want injected+dup = %d", st.Delivered, st.Injected+st.Duplicated)
	}
	if uint64(len(*got)) != st.Delivered {
		t.Fatalf("received %d, delivered %d", len(*got), st.Delivered)
	}
	checkAccounting(t, st)
}

func TestCorruptConfinedPastMACs(t *testing.T) {
	s := sim.NewScheduler()
	sw := fabric.NewSwitch(s, "tor", time.Microsecond, 100)
	var rx [][]byte
	pa := sw.AddPort("a", nil)
	pb := sw.AddPort("b", func(f []byte) { rx = append(rx, append([]byte(nil), f...)) })
	pa.Send(frame(macA, macB, 0))
	pb.Send(frame(macB, macA, 0))
	s.Run()
	rx = nil

	inj := NewInjector(s, sim.NewRNG(11), Profile{Corrupt: 1})
	inj.Attach(pa)

	want := frame(macA, macB, 0x55)
	for i := 0; i < 50; i++ {
		pa.Send(append([]byte(nil), want...))
	}
	s.Run()

	st := inj.Stats()
	if st.Corrupted != 50 {
		t.Fatalf("corrupted = %d, want 50", st.Corrupted)
	}
	// Every frame must still arrive (MACs untouched) and must differ from
	// the original in exactly one bit past offset 14.
	if len(rx) != 50 {
		t.Fatalf("received %d frames, want 50", len(rx))
	}
	for _, f := range rx {
		if bytes.Equal(f, want) {
			t.Fatal("frame not corrupted")
		}
		if !bytes.Equal(f[:14], want[:14]) {
			t.Fatal("corruption touched the Ethernet MACs")
		}
		diff := 0
		for i := 14; i < len(f); i++ {
			for b := f[i] ^ want[i]; b != 0; b &= b - 1 {
				diff++
			}
		}
		if diff != 1 {
			t.Fatalf("%d bits flipped, want 1", diff)
		}
	}
}

func TestReorderDelivered(t *testing.T) {
	const n = 500
	s, inj, pa, got := pair(t, 5, Profile{Reorder: 0.1, ReorderDelay: 50 * time.Microsecond})
	for i := 0; i < n; i++ {
		pa.Send(frame(macA, macB, byte(i)))
		s.RunFor(5 * time.Microsecond)
	}
	s.Run()
	st := inj.Stats()
	if st.Reordered == 0 {
		t.Fatal("no reordered frames at p=0.1")
	}
	// Reordering must never lose a frame.
	if st.Delivered != n || st.Dropped != 0 {
		t.Fatalf("reorder lost frames: %v", st)
	}
	if len(*got) != n {
		t.Fatalf("received %d, want %d", len(*got), n)
	}
	// And the receive order must actually differ from the send order.
	inOrder := true
	for i, b := range *got {
		if b != byte(i) {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Fatal("reorder produced in-order delivery")
	}
	checkAccounting(t, st)
}

func TestGilbertElliottBurstiness(t *testing.T) {
	const n = 20000
	// Bad state is rare but lossy: bursts of consecutive loss should be
	// much longer than under i.i.d. loss of the same average rate.
	s, inj, pa, got := pair(t, 9, Profile{Burst: &GilbertElliott{
		PGoodToBad: 0.01, PBadToGood: 0.2, LossGood: 0, LossBad: 0.9,
	}})
	for i := 0; i < n; i++ {
		pa.Send(frame(macA, macB, byte(i)))
	}
	s.Run()
	st := inj.Stats()
	if st.Dropped == 0 {
		t.Fatal("GE model dropped nothing")
	}
	checkAccounting(t, st)

	// Reconstruct loss runs from the received payload sequence.
	seen := make([]bool, n)
	pos := 0
	for _, b := range *got {
		// payloads wrap at 256; recover index by scanning forward
		for pos < n && byte(pos) != b {
			pos++
		}
		if pos < n {
			seen[pos] = true
			pos++
		}
	}
	maxRun, run := 0, 0
	for _, ok := range seen {
		if !ok {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	// With ~5% avg loss i.i.d., a run of >=5 has probability ~3e-7 per
	// position; GE with LossBad=0.9 and mean bad dwell of 5 frames
	// produces them readily.
	if maxRun < 5 {
		t.Fatalf("max loss run %d — losses not bursty", maxRun)
	}
}

func TestLinkFlap(t *testing.T) {
	s, inj, pa, got := pair(t, 2, Profile{})
	// Down for [1ms, 2ms).
	inj.FlapAt(sim.Time(1*time.Millisecond), time.Millisecond)
	for i := 0; i < 30; i++ {
		i := i
		s.At(sim.Time(i)*sim.Time(100*time.Microsecond), func() {
			pa.Send(frame(macA, macB, byte(i)))
		})
	}
	s.Run()
	st := inj.Stats()
	if st.LinkDowns != 10 {
		t.Fatalf("link-down drops = %d, want 10", st.LinkDowns)
	}
	if len(*got) != 20 {
		t.Fatalf("received %d, want 20", len(*got))
	}
	checkAccounting(t, st)
}

func TestDelayJitter(t *testing.T) {
	s, inj, pa, got := pair(t, 4, Profile{Delay: 200 * time.Microsecond, Jitter: 50 * time.Microsecond})
	start := s.Now()
	var arrival sim.Time
	_ = arrival
	pa.Send(frame(macA, macB, 1))
	s.Run()
	if len(*got) != 1 {
		t.Fatalf("received %d", len(*got))
	}
	elapsed := s.Now().Sub(start)
	if elapsed < 200*time.Microsecond {
		t.Fatalf("frame arrived after %v, want >= 200µs of injected delay", elapsed)
	}
	st := inj.Stats()
	if st.Delayed != 1 {
		t.Fatalf("delayed = %d", st.Delayed)
	}
	checkAccounting(t, st)
}

// TestDeterminism: identical seed + profile + send schedule must yield
// identical stats and identical receive byte streams.
func TestDeterminism(t *testing.T) {
	run := func() (Stats, []byte) {
		s, inj, pa, got := pair(t, 42, Profile{
			Drop: 0.05, Duplicate: 0.05, Corrupt: 0.05,
			Reorder: 0.05, ReorderDelay: 30 * time.Microsecond,
			Delay: 10 * time.Microsecond, Jitter: 20 * time.Microsecond,
			Burst: &GilbertElliott{PGoodToBad: 0.02, PBadToGood: 0.3, LossBad: 0.8},
		})
		for i := 0; i < 3000; i++ {
			pa.Send(frame(macA, macB, byte(i)))
			s.RunFor(2 * time.Microsecond)
		}
		s.Run()
		return inj.Stats(), append([]byte(nil), (*got)...)
	}
	s1, g1 := run()
	s2, g2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs:\n%v\n%v", s1, s2)
	}
	if !bytes.Equal(g1, g2) {
		t.Fatal("receive streams differ across identical runs")
	}
	checkAccounting(t, s1)
}

package pcap

import (
	"bytes"
	"io"
	"testing"
	"time"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frames := [][]byte{
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 0xae, 0xfe},
		bytes.Repeat([]byte{0xab}, 7700), // jumbo
	}
	for i, f := range frames {
		if err := w.WritePacket(time.Duration(i)*1500*time.Microsecond, f); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range frames {
		p, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(p.Frame, want) {
			t.Fatalf("packet %d bytes mismatch", i)
		}
		if p.TS != time.Duration(i)*1500*time.Microsecond {
			t.Fatalf("packet %d ts = %v", i, p.TS)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader(make([]byte, 64)))
	if _, err := r.Next(); err != ErrBadMagic {
		t.Fatalf("err = %v", err)
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(0, make([]byte, MaxSnapLen+1)); err == nil {
		t.Fatal("oversize frame accepted")
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WritePacket(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	r := NewReader(bytes.NewReader(data[:len(data)-2]))
	if _, err := r.Next(); err == nil {
		t.Fatal("truncated packet read successfully")
	}
}

func TestHeaderOnlyStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WritePacket(0, []byte{1})
	// Drop everything after the global header + one record, then read two.
	r := NewReader(bytes.NewReader(buf.Bytes()))
	if _, err := r.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("second read: %v", err)
	}
}

// Package pcap reads and writes classic libpcap capture files
// (LINKTYPE_ETHERNET), so fronthaul traffic from the simulated testbed
// can be captured, replayed and inspected — with this repo's dissector or
// with Wireshark, which decodes eCPRI/O-RAN natively (Fig. 2).
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

const (
	magicMicros  = 0xa1b2c3d4
	versionMajor = 2
	versionMinor = 4
	linkEthernet = 1
	// MaxSnapLen accommodates fronthaul jumbo frames.
	MaxSnapLen = 16384
)

// Writer emits a pcap stream.
type Writer struct {
	w      io.Writer
	wroteH bool
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

func (w *Writer) header() error {
	var h [24]byte
	binary.LittleEndian.PutUint32(h[0:], magicMicros)
	binary.LittleEndian.PutUint16(h[4:], versionMajor)
	binary.LittleEndian.PutUint16(h[6:], versionMinor)
	binary.LittleEndian.PutUint32(h[16:], MaxSnapLen)
	binary.LittleEndian.PutUint32(h[20:], linkEthernet)
	_, err := w.w.Write(h[:])
	return err
}

// WritePacket appends one frame with the given capture timestamp.
func (w *Writer) WritePacket(ts time.Duration, frame []byte) error {
	if !w.wroteH {
		if err := w.header(); err != nil {
			return err
		}
		w.wroteH = true
	}
	if len(frame) > MaxSnapLen {
		return fmt.Errorf("pcap: frame of %d bytes exceeds snap length", len(frame))
	}
	var h [16]byte
	binary.LittleEndian.PutUint32(h[0:], uint32(ts/time.Second))
	binary.LittleEndian.PutUint32(h[4:], uint32(ts%time.Second/time.Microsecond))
	binary.LittleEndian.PutUint32(h[8:], uint32(len(frame)))
	binary.LittleEndian.PutUint32(h[12:], uint32(len(frame)))
	if _, err := w.w.Write(h[:]); err != nil {
		return err
	}
	_, err := w.w.Write(frame)
	return err
}

// Packet is one captured frame.
type Packet struct {
	TS    time.Duration
	Frame []byte
}

// ErrBadMagic reports a stream that is not little-endian classic pcap.
var ErrBadMagic = errors.New("pcap: bad magic (only little-endian classic pcap supported)")

// Reader consumes a pcap stream.
type Reader struct {
	r     io.Reader
	readH bool
}

// NewReader wraps r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next returns the next packet, or io.EOF at end of stream.
func (r *Reader) Next() (Packet, error) {
	if !r.readH {
		var h [24]byte
		if _, err := io.ReadFull(r.r, h[:]); err != nil {
			return Packet{}, err
		}
		if binary.LittleEndian.Uint32(h[0:]) != magicMicros {
			return Packet{}, ErrBadMagic
		}
		r.readH = true
	}
	var h [16]byte
	if _, err := io.ReadFull(r.r, h[:]); err != nil {
		return Packet{}, err
	}
	n := binary.LittleEndian.Uint32(h[8:])
	if n > MaxSnapLen {
		return Packet{}, fmt.Errorf("pcap: captured length %d exceeds snap length", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r.r, frame); err != nil {
		return Packet{}, err
	}
	ts := time.Duration(binary.LittleEndian.Uint32(h[0:]))*time.Second +
		time.Duration(binary.LittleEndian.Uint32(h[4:]))*time.Microsecond
	return Packet{TS: ts, Frame: frame}, nil
}

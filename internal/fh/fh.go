// Package fh ties the fronthaul protocol stack together: one type, Packet,
// represents a full on-wire frame (Ethernet + optional VLAN + eCPRI +
// O-RAN CUS payload) with cheap access to each layer.
//
// Middleboxes work on Packets: action A1 rewrites addressing in place,
// A2 clones, A3 stores Packets in symbol-keyed caches, and A4 decodes the
// O-RAN payload, mutates it and re-encodes. The decode path is lazy and
// allocation-conscious in the gopacket style: Ethernet and eCPRI headers
// are parsed eagerly (they are fixed-size), the O-RAN message only on
// demand.
package fh

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/oran"
)

// Plane classifies a fronthaul packet.
type Plane uint8

// Plane values.
const (
	PlaneUnknown Plane = iota
	PlaneC             // control
	PlaneU             // user (IQ data)
)

// String names the plane as captures do.
func (p Plane) String() string {
	switch p {
	case PlaneC:
		return "C-Plane"
	case PlaneU:
		return "U-Plane"
	default:
		return "Unknown"
	}
}

// Errors returned by the packet layer.
var (
	ErrNotECPRI = errors.New("fh: not an eCPRI frame")
	ErrPlane    = errors.New("fh: wrong plane for this accessor")
)

// Packet is a decoded fronthaul frame. Frame always holds the full wire
// bytes; header structs are views decoded from it. App aliases Frame.
type Packet struct {
	Frame []byte
	Eth   eth.Header
	Ecpri ecpri.Header
	// App is the O-RAN application payload (timing header onward).
	App []byte
	// appOff is the offset of App within Frame, for in-place patching.
	appOff int
}

// Decode parses the Ethernet and eCPRI layers of frame into p. The O-RAN
// payload is left un-decoded; use UPlane/CPlane/Timing. p is reusable.
//
//ranvet:hotpath
func (p *Packet) Decode(frame []byte) error {
	p.Frame = frame
	rest, err := p.Eth.DecodeFromBytes(frame)
	if err != nil {
		return err
	}
	if p.Eth.EtherType != eth.TypeECPRI {
		return ErrNotECPRI
	}
	app, err := p.Ecpri.DecodeFromBytes(rest)
	if err != nil {
		return err
	}
	p.App = app
	p.appOff = len(frame) - len(rest) + ecpri.HeaderLen
	return nil
}

// Plane reports whether the packet is C-plane or U-plane.
func (p *Packet) Plane() Plane {
	switch p.Ecpri.Type {
	case ecpri.MsgIQData:
		return PlaneU
	case ecpri.MsgRTControl:
		return PlaneC
	default:
		return PlaneUnknown
	}
}

// Timing peeks at the radio application header without decoding sections.
func (p *Packet) Timing() (oran.Timing, error) {
	var t oran.Timing
	_, err := t.DecodeFromBytes(p.App)
	return t, err
}

// UPlane decodes the U-plane message into msg (reusable across calls).
// carrierPRBs resolves "all PRBs" section encodings.
func (p *Packet) UPlane(msg *oran.UPlaneMsg, carrierPRBs int) error {
	if p.Plane() != PlaneU {
		return ErrPlane
	}
	return msg.DecodeFromBytes(p.App, carrierPRBs)
}

// CPlane decodes the C-plane message into msg (reusable across calls).
func (p *Packet) CPlane(msg *oran.CPlaneMsg, carrierPRBs int) error {
	if p.Plane() != PlaneC {
		return ErrPlane
	}
	return msg.DecodeFromBytes(p.App, carrierPRBs)
}

// EAxC returns the extended antenna-carrier identifier of the packet.
func (p *Packet) EAxC() ecpri.PcID { return p.Ecpri.PcID }

// PeekEAxC extracts the eCPRI eAxC identifier from a raw frame without a
// full decode — the RSS-style peek a NIC performs to spread flows across
// receive queues. It reads only the fixed-offset Ethernet type (skipping
// one optional 802.1Q tag) and the PC_ID field of the eCPRI common
// header. ok is false when the frame is too short or not eCPRI; such
// frames carry no flow identity and may be steered anywhere.
func PeekEAxC(frame []byte) (uint16, bool) {
	if len(frame) < eth.HeaderLen {
		return 0, false
	}
	off := eth.HeaderLen
	et := binary.BigEndian.Uint16(frame[12:14])
	if et == eth.TypeVLAN {
		if len(frame) < eth.VLANHeaderLen {
			return 0, false
		}
		off = eth.VLANHeaderLen
		et = binary.BigEndian.Uint16(frame[16:18])
	}
	// PC_ID occupies bytes 4-5 of the 8-byte eCPRI common header.
	if et != eth.TypeECPRI || len(frame) < off+ecpri.HeaderLen {
		return 0, false
	}
	return binary.BigEndian.Uint16(frame[off+4 : off+6]), true
}

// PeekPlane classifies a raw frame as C-plane or U-plane without a full
// decode — the cheap peek the engine's overload-shedding policy uses to
// admit C-plane frames when an ingress ring nears overflow. It reads only
// the Ethernet type (skipping one optional 802.1Q tag) and the eCPRI
// message-type byte. Frames too short or not eCPRI are PlaneUnknown.
func PeekPlane(frame []byte) Plane {
	if len(frame) < eth.HeaderLen {
		return PlaneUnknown
	}
	off := eth.HeaderLen
	et := binary.BigEndian.Uint16(frame[12:14])
	if et == eth.TypeVLAN {
		if len(frame) < eth.VLANHeaderLen {
			return PlaneUnknown
		}
		off = eth.VLANHeaderLen
		et = binary.BigEndian.Uint16(frame[16:18])
	}
	if et != eth.TypeECPRI || len(frame) < off+ecpri.HeaderLen {
		return PlaneUnknown
	}
	switch ecpri.MessageType(frame[off+1]) {
	case ecpri.MsgIQData:
		return PlaneU
	case ecpri.MsgRTControl:
		return PlaneC
	}
	return PlaneUnknown
}

// PeekShedClass classifies a raw frame for the adaptive shedder: the
// plane, and for U-plane frames whether the payload is PRACH (timing
// filter index 1), which the shedder sacrifices last. Like PeekPlane it
// reads only fixed-offset bytes — the Ethernet type (skipping one
// optional 802.1Q tag), the eCPRI message-type byte, and the first
// payload byte holding the O-RAN filter index — so it is cheap enough
// for the ingress admission path. prach is meaningful only for PlaneU.
func PeekShedClass(frame []byte) (plane Plane, prach bool) {
	if len(frame) < eth.HeaderLen {
		return PlaneUnknown, false
	}
	off := eth.HeaderLen
	et := binary.BigEndian.Uint16(frame[12:14])
	if et == eth.TypeVLAN {
		if len(frame) < eth.VLANHeaderLen {
			return PlaneUnknown, false
		}
		off = eth.VLANHeaderLen
		et = binary.BigEndian.Uint16(frame[16:18])
	}
	if et != eth.TypeECPRI || len(frame) < off+ecpri.HeaderLen {
		return PlaneUnknown, false
	}
	switch ecpri.MessageType(frame[off+1]) {
	case ecpri.MsgRTControl:
		return PlaneC, false
	case ecpri.MsgIQData:
		if len(frame) < off+ecpri.HeaderLen+1 {
			return PlaneU, false
		}
		// Byte 0 of the O-RAN application header: dataDirection,
		// payloadVersion, filterIndex (low nibble). PRACH = index 1.
		return PlaneU, frame[off+ecpri.HeaderLen]&0x0f == 1
	}
	return PlaneUnknown, false
}

// Key identifies the (symbol, eAxC, direction) a packet belongs to — the
// cache key of RANBooster's A3 action: the DAS middlebox collects all RU
// uplink packets for the same key before merging them.
type Key struct {
	Sym  oran.SymbolRef
	EAxC uint16
	Dir  oran.Direction
}

// KeyOf builds the cache key of a packet; it needs only the timing peek.
func KeyOf(p *Packet) (Key, error) {
	t, err := p.Timing()
	if err != nil {
		return Key{}, err
	}
	return Key{Sym: oran.SymbolOf(t), EAxC: p.Ecpri.PcID.Uint16(), Dir: t.Direction}, nil
}

// String summarizes the packet the way a capture tool would.
func (p *Packet) String() string {
	t, err := p.Timing()
	if err != nil {
		return fmt.Sprintf("%s %s (undecodable timing)", p.Plane(), p.Ecpri.PcID)
	}
	return fmt.Sprintf("%s, Id: %d %s — %s", p.Plane(), p.Ecpri.PcID.RUPort, p.Ecpri.PcID, t)
}

// Clone deep-copies the packet (frame bytes included). This is the A2
// replication primitive; the clone can be rewritten and re-addressed
// independently of the original.
func (p *Packet) Clone() *Packet {
	//ranvet:allow alloc Clone is the A2 replication primitive: the copy is the point, charged as CostReplicate
	frame := make([]byte, len(p.Frame))
	copy(frame, p.Frame)
	var q Packet
	if err := q.Decode(frame); err != nil {
		// The source packet decoded; a byte-identical copy must too.
		panic("fh: clone of decodable packet failed: " + err.Error())
	}
	return &q
}

// SetEAxC patches the packet's eCPRI PC_ID in place (frame and view) —
// the antenna-port remapping primitive of the dMIMO middlebox. The
// packet must have been decoded; calling it on a zero Packet panics
// with a diagnosable message instead of an index error.
func (p *Packet) SetEAxC(pc ecpri.PcID) {
	off := p.appOff - 4 // PC_ID sits 4 bytes into the 8-byte eCPRI header
	if off < 0 || off+2 > len(p.Frame) {
		panic("fh: SetEAxC on an undecoded packet")
	}
	p.Frame[off] = byte(pc.Uint16() >> 8)
	p.Frame[off+1] = byte(pc.Uint16())
	p.Ecpri.PcID = pc
}

// Redirect rewrites destination and source MACs in place (action A1).
// vlan < 0 keeps the existing VLAN id.
func (p *Packet) Redirect(dst, src eth.MAC, vlan int) error {
	if err := eth.Rewrite(p.Frame, dst, src, vlan); err != nil {
		return err
	}
	p.Eth.Dst, p.Eth.Src = dst, src
	if vlan >= 0 && p.Eth.HasVLAN {
		p.Eth.VLANID = uint16(vlan)
	}
	return nil
}

package fh

import (
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/oran"
)

// Builder constructs complete fronthaul frames for one DU↔RU association:
// it holds the Ethernet addressing and keeps per-eAxC sequence counters,
// exactly the state a real DU or RU fronthaul driver maintains.
type Builder struct {
	Src, Dst eth.MAC
	// VLANID tags frames when >= 0 (the testbed uses VLAN-separated
	// fronthaul segments, like the Fig. 2 capture's VLAN 6).
	VLANID   int
	Priority uint8

	seq map[uint16]uint8
}

// NewBuilder returns a Builder for the given addressing. vlanID < 0 emits
// untagged frames.
func NewBuilder(src, dst eth.MAC, vlanID int) *Builder {
	return &Builder{Src: src, Dst: dst, VLANID: vlanID, seq: make(map[uint16]uint8)}
}

func (b *Builder) header(pc ecpri.PcID, typ ecpri.MessageType, appLen int) (eth.Header, ecpri.Header) {
	eh := eth.Header{Dst: b.Dst, Src: b.Src, EtherType: eth.TypeECPRI}
	if b.VLANID >= 0 {
		eh.HasVLAN = true
		eh.VLANID = uint16(b.VLANID)
		eh.Priority = b.Priority
	}
	key := pc.Uint16()
	seq := b.seq[key]
	b.seq[key] = seq + 1
	ch := ecpri.Header{
		Version:     1,
		Type:        typ,
		PayloadSize: uint16(appLen + 4),
		PcID:        pc,
		SeqID:       seq,
		EBit:        true,
	}
	return eh, ch
}

// UPlane builds a complete U-plane frame for the eAxC.
func (b *Builder) UPlane(pc ecpri.PcID, msg *oran.UPlaneMsg) []byte {
	eh, ch := b.header(pc, ecpri.MsgIQData, msg.EncodedLen())
	buf := make([]byte, 0, eh.Len()+ecpri.HeaderLen+msg.EncodedLen())
	buf = eh.AppendTo(buf)
	buf = ch.AppendTo(buf)
	return msg.AppendTo(buf)
}

// CPlane builds a complete C-plane frame for the eAxC.
func (b *Builder) CPlane(pc ecpri.PcID, msg *oran.CPlaneMsg) []byte {
	eh, ch := b.header(pc, ecpri.MsgRTControl, msg.EncodedLen())
	buf := make([]byte, 0, eh.Len()+ecpri.HeaderLen+msg.EncodedLen())
	buf = eh.AppendTo(buf)
	buf = ch.AppendTo(buf)
	return msg.AppendTo(buf)
}

// Rebuild re-encodes a mutated O-RAN message into packet p, preserving p's
// Ethernet/eCPRI addressing and sequence fields but refreshing the payload
// and size. It returns a packet backed by a fresh buffer. This is the
// re-serialization half of action A4.
func Rebuild(p *Packet, encode func(b []byte) []byte) *Packet {
	//ranvet:allow alloc Rebuild produces a new frame by definition (A4 payload modification), charged by the cost model
	buf := make([]byte, 0, len(p.Frame))
	buf = p.Eth.AppendTo(buf)
	ch := p.Ecpri
	start := len(buf)
	buf = ch.AppendTo(buf)
	appStart := len(buf)
	buf = encode(buf)
	_ = ecpri.SetPayloadSize(buf, start, len(buf)-appStart)
	var q Packet
	if err := q.Decode(buf); err != nil {
		panic("fh: rebuild produced undecodable frame: " + err.Error())
	}
	return &q
}

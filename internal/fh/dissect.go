package fh

import (
	"fmt"
	"strings"

	"ranbooster/internal/bfp"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
)

// Dissect renders a fronthaul frame the way the Wireshark capture of
// Fig. 2 presents it: Ethernet, eCPRI, the O-RAN CUS header, sections,
// and (for U-plane packets) the compression header, per-PRB exponents and
// the first decoded IQ samples.
func Dissect(frame []byte, carrierPRBs int) string {
	var b strings.Builder
	var p Packet
	if err := p.Decode(frame); err != nil {
		fmt.Fprintf(&b, "undecodable frame (%d bytes): %v\n", len(frame), err)
		return b.String()
	}
	fmt.Fprintf(&b, "Frame: %d bytes on wire\n", len(frame))
	fmt.Fprintf(&b, "Ethernet II, Src: %s, Dst: %s\n", p.Eth.Src, p.Eth.Dst)
	if p.Eth.HasVLAN {
		fmt.Fprintf(&b, "802.1Q Virtual LAN, PRI: %d, ID: %d\n", p.Eth.Priority, p.Eth.VLANID)
	}
	fmt.Fprintf(&b, "evolved Common Public Radio Interface\n")
	fmt.Fprintf(&b, "    ecpriMessage: %s, PayloadSize: %d\n", p.Ecpri.Type, p.Ecpri.PayloadSize)
	fmt.Fprintf(&b, "    ecpriPcid %s\n", p.Ecpri.PcID)
	fmt.Fprintf(&b, "    ecpriSeqid, SeqId: %d, SubSeqId: %d, E: %t\n", p.Ecpri.SeqID, p.Ecpri.SubSeqID, p.Ecpri.EBit)

	t, err := p.Timing()
	if err != nil {
		fmt.Fprintf(&b, "O-RAN header undecodable: %v\n", err)
		return b.String()
	}
	switch p.Plane() {
	case PlaneU:
		fmt.Fprintf(&b, "O-RAN Fronthaul CUS-U\n")
		fmt.Fprintf(&b, "    Timing header %s\n", t)
		var msg oran.UPlaneMsg
		if err := p.UPlane(&msg, carrierPRBs); err != nil {
			fmt.Fprintf(&b, "    sections undecodable: %v\n", err)
			return b.String()
		}
		for i := range msg.Sections {
			dissectUSection(&b, &msg.Sections[i])
		}
	case PlaneC:
		fmt.Fprintf(&b, "O-RAN Fronthaul CUS-C\n")
		fmt.Fprintf(&b, "    Timing header %s (startSymbol)\n", t)
		var msg oran.CPlaneMsg
		if err := p.CPlane(&msg, carrierPRBs); err != nil {
			fmt.Fprintf(&b, "    sections undecodable: %v\n", err)
			return b.String()
		}
		fmt.Fprintf(&b, "    sectionType: %d, udCompHdr (IqWidth=%d, udCompMeth=%s)\n",
			msg.SectionType, msg.Comp.EffectiveWidth(), msg.Comp.Method)
		if msg.SectionType == oran.SectionType3 {
			fmt.Fprintf(&b, "    timeOffset: %d, frameStructure: 0x%02x, cpLength: %d\n",
				msg.TimeOffset, msg.FrameStructure, msg.CPLength)
		}
		for i := range msg.Sections {
			s := &msg.Sections[i]
			fmt.Fprintf(&b, "    Section, Id: %d (PRB: %d-%d), reMask: 0x%03x, numSymbol: %d, beamId: %d\n",
				s.SectionID, s.StartPRB, s.StartPRB+s.NumPRB-1, s.ReMask, s.NumSymbol, s.BeamID)
			if msg.SectionType == oran.SectionType3 {
				fmt.Fprintf(&b, "        frequencyOffset: %d (half-subcarriers)\n", s.FreqOffset)
			}
		}
	default:
		fmt.Fprintf(&b, "unknown eCPRI payload\n")
	}
	return b.String()
}

func dissectUSection(b *strings.Builder, s *oran.USection) {
	fmt.Fprintf(b, "    Section, Id: %d (PRB: %d-%d)\n", s.SectionID, s.StartPRB, s.StartPRB+s.NumPRB-1)
	fmt.Fprintf(b, "        udCompHdr (IqWidth=%d, udCompMeth=%s)\n", s.Comp.EffectiveWidth(), s.Comp.Method)
	if s.Comp.Method != bfp.MethodBlockFloatingPoint {
		return
	}
	// One batched sweep collects every PRB's exponent; only the first two
	// PRBs are decoded for sample display.
	exps, err := bfp.AppendExponents(nil, s.Payload, s.Comp)
	if err != nil {
		return
	}
	size := s.Comp.PRBSize()
	shown := 0
	for off := 0; off+size <= len(s.Payload) && shown < len(exps) && shown < 2; off += size {
		fmt.Fprintf(b, "        PRB %d (12 samples)\n", s.StartPRB+shown)
		fmt.Fprintf(b, "            udCompParam (Exponent=%d)\n", exps[shown])
		var prb iq.PRB
		if _, _, err := bfp.DecompressPRB(s.Payload[off:], &prb, s.Comp); err == nil {
			for j := 0; j < 2; j++ {
				fmt.Fprintf(b, "            iSample: %+.12f  qSample: %+.12f (sample-%d)\n",
					float64(prb[j].I)/32768, float64(prb[j].Q)/32768, j)
			}
		}
		shown++
	}
	if total := len(exps); total > shown {
		fmt.Fprintf(b, "        ... %d more PRBs\n", total-shown)
	}
}

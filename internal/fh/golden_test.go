package fh

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ranbooster/internal/bfp"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
)

// The golden vectors freeze the wire format: every builder output is
// checked bit-for-bit against a hex dump in testdata/, and every dump must
// decode and re-encode to the identical bytes. A diff here means the wire
// format changed — bump the vectors deliberately with -update, never by
// accident.
var updateGolden = flag.Bool("update", false, "rewrite golden testdata files")

// goldenCarrierPRBs matches the testbed's 100 MHz carrier.
const goldenCarrierPRBs = 273

type goldenVector struct {
	name  string
	frame []byte
}

// goldenRamp fills a grid with a fixed, quantization-friendly IQ pattern:
// every sample is a multiple of 8, so it survives BFP at iqWidth >= 9 with
// the exponents the vectors pin.
func goldenRamp(nPRB int) iq.Grid {
	g := iq.NewGrid(nPRB)
	for p := range g {
		for k := range g[p] {
			g[p][k].I = int16((p*96 + k*8) - 256)
			g[p][k].Q = int16(1024 - (p*64 + k*16))
		}
	}
	return g
}

// goldenVectors builds the frames the conformance suite pins: both C-plane
// section types and U-plane payloads at two BFP widths plus uncompressed.
// Everything is deterministic — same addressing, same sequence numbers,
// same IQ ramp — so the builder output is reproducible bit-for-bit.
func goldenVectors(t testing.TB) []goldenVector {
	src := eth.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	dst := eth.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x02}
	pc := ecpri.PcID{DUPort: 0, BandSector: 1, CC: 0, RUPort: 2}
	bld := NewBuilder(src, dst, 6) // VLAN 6, like the Fig. 2 capture
	bld.Priority = 7

	var vecs []goldenVector
	vecs = append(vecs, goldenVector{"cplane_type1", bld.CPlane(pc, &oran.CPlaneMsg{
		Timing:      oran.Timing{Direction: oran.Downlink, PayloadVersion: 1, FrameID: 63, SubframeID: 2, SlotID: 1},
		SectionType: oran.SectionType1,
		Comp:        bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint},
		Sections: []oran.CSection{
			{SectionID: 1, NumPRB: 64, ReMask: 0xfff, NumSymbol: 14, BeamID: 7},
			// numPrbc 0 on the wire: "all carrier PRBs".
			{SectionID: 2, StartPRB: 0, NumPRB: goldenCarrierPRBs, ReMask: 0xfff, NumSymbol: 14},
		},
	})})
	vecs = append(vecs, goldenVector{"cplane_type3", bld.CPlane(pc, &oran.CPlaneMsg{
		Timing:      oran.Timing{Direction: oran.Uplink, PayloadVersion: 1, FilterIndex: 1, FrameID: 9, SubframeID: 7, SlotID: 0},
		SectionType: oran.SectionType3,
		TimeOffset:  100, FrameStructure: 0x41, CPLength: 20,
		Comp: bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint},
		Sections: []oran.CSection{
			// Negative frequency offset exercises the 24-bit sign extension.
			{SectionID: 3, StartPRB: 10, NumPRB: 12, ReMask: 0xfff, NumSymbol: 1, BeamID: 0x4001, FreqOffset: -3276},
		},
	})})
	for _, u := range []struct {
		name string
		comp bfp.Params
	}{
		{"uplane_bfp9", bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint}},
		{"uplane_bfp14", bfp.Params{IQWidth: 14, Method: bfp.MethodBlockFloatingPoint}},
		{"uplane_none", bfp.Params{Method: bfp.MethodNone}},
	} {
		grid := goldenRamp(4)
		payload, err := bfp.CompressGrid(nil, grid, u.comp)
		if err != nil {
			t.Fatalf("%s: compress: %v", u.name, err)
		}
		vecs = append(vecs, goldenVector{u.name, bld.UPlane(pc, &oran.UPlaneMsg{
			Timing: oran.Timing{Direction: oran.Uplink, PayloadVersion: 1, FrameID: 5, SubframeID: 1, SlotID: 3, SymbolID: 7},
			Sections: []oran.USection{
				{SectionID: 1, StartPRB: 8, NumPRB: len(grid), Comp: u.comp, Payload: payload},
			},
		})})
	}
	return vecs
}

func goldenPath(name, ext string) string { return filepath.Join("testdata", name+ext) }

// readGoldenHex loads a testdata hex dump, ignoring whitespace and
// #-comment lines.
func readGoldenHex(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(goldenPath(name, ".hex"))
	if err != nil {
		t.Fatalf("missing golden vector (run with -update to generate): %v", err)
	}
	var sb strings.Builder
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sb.WriteString(line)
	}
	frame, err := hex.DecodeString(sb.String())
	if err != nil {
		t.Fatalf("%s: bad hex: %v", name, err)
	}
	return frame
}

func writeGoldenHex(t *testing.T, name string, frame []byte) {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "# %s: %d bytes on wire\n", name, len(frame))
	for off := 0; off < len(frame); off += 16 {
		end := off + 16
		if end > len(frame) {
			end = len(frame)
		}
		fmt.Fprintf(&sb, "%s\n", hex.EncodeToString(frame[off:end]))
	}
	if err := os.WriteFile(goldenPath(name, ".hex"), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenBuild pins the encoder: the builder must reproduce each golden
// frame bit-for-bit.
func TestGoldenBuild(t *testing.T) {
	for _, v := range goldenVectors(t) {
		t.Run(v.name, func(t *testing.T) {
			if *updateGolden {
				writeGoldenHex(t, v.name, v.frame)
				return
			}
			want := readGoldenHex(t, v.name)
			if !bytes.Equal(v.frame, want) {
				t.Errorf("builder output diverged from golden vector\n got: %x\nwant: %x", v.frame, want)
			}
		})
	}
}

// TestGoldenRoundtrip pins the decoder against the encoder: every golden
// frame must decode, and re-encoding the decoded layers must reproduce the
// original bytes exactly. This is the property the middleboxes' A4 action
// (decode, mutate, re-encode) relies on.
func TestGoldenRoundtrip(t *testing.T) {
	for _, v := range goldenVectors(t) {
		t.Run(v.name, func(t *testing.T) {
			frame := readGoldenHex(t, v.name)
			var p Packet
			if err := p.Decode(frame); err != nil {
				t.Fatalf("decode: %v", err)
			}
			buf := p.Eth.AppendTo(nil)
			buf = p.Ecpri.AppendTo(buf)
			switch p.Plane() {
			case PlaneC:
				var msg oran.CPlaneMsg
				if err := p.CPlane(&msg, goldenCarrierPRBs); err != nil {
					t.Fatalf("C-plane sections: %v", err)
				}
				buf = msg.AppendTo(buf)
			case PlaneU:
				var msg oran.UPlaneMsg
				if err := p.UPlane(&msg, goldenCarrierPRBs); err != nil {
					t.Fatalf("U-plane sections: %v", err)
				}
				buf = msg.AppendTo(buf)
			default:
				t.Fatalf("unknown plane %v", p.Plane())
			}
			if !bytes.Equal(buf, frame) {
				t.Errorf("decode → re-encode not bit-identical\n got: %x\nwant: %x", buf, frame)
			}
		})
	}
}

// TestGoldenDissect pins the human-readable render, so capture-style output
// stays comparable across versions (and the dissector is exercised on every
// golden frame).
func TestGoldenDissect(t *testing.T) {
	for _, v := range goldenVectors(t) {
		t.Run(v.name, func(t *testing.T) {
			frame := readGoldenHex(t, v.name)
			got := Dissect(frame, goldenCarrierPRBs)
			path := goldenPath(v.name, ".dissect")
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden dissect (run with -update to generate): %v", err)
			}
			if got != string(want) {
				t.Errorf("dissect output diverged:\n got:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

package fh

import (
	"bytes"
	"strings"
	"testing"

	"ranbooster/internal/bfp"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/oran"
)

var (
	duMAC = eth.MAC{0x02, 0x00, 0x00, 0x00, 0x00, 0x01}
	ruMAC = eth.MAC{0x6c, 0xad, 0xad, 0x00, 0x0b, 0x6c}
)

func bfp9() bfp.Params { return bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint} }

func sampleUPlane() *oran.UPlaneMsg {
	return &oran.UPlaneMsg{
		Timing: oran.Timing{Direction: oran.Downlink, PayloadVersion: 1, FrameID: 46, SubframeID: 9, SlotID: 1, SymbolID: 13},
		Sections: []oran.USection{{
			SectionID: 0, NumPRB: 4, Comp: bfp9(), Payload: make([]byte, 4*28),
		}},
	}
}

func sampleCPlane() *oran.CPlaneMsg {
	return &oran.CPlaneMsg{
		Timing:      oran.Timing{Direction: oran.Downlink, FrameID: 46, SubframeID: 9, SlotID: 1, SymbolID: 0},
		SectionType: oran.SectionType1,
		Comp:        bfp9(),
		Sections:    []oran.CSection{{NumPRB: 106, ReMask: 0xfff, NumSymbol: 14}},
	}
}

func TestBuilderUPlaneDecode(t *testing.T) {
	b := NewBuilder(duMAC, ruMAC, 6)
	pc := ecpri.PcID{RUPort: 3}
	frame := b.UPlane(pc, sampleUPlane())

	var p Packet
	if err := p.Decode(frame); err != nil {
		t.Fatal(err)
	}
	if p.Plane() != PlaneU {
		t.Fatalf("plane = %v", p.Plane())
	}
	if p.Eth.Dst != ruMAC || p.Eth.Src != duMAC || p.Eth.VLANID != 6 {
		t.Fatalf("eth = %+v", p.Eth)
	}
	if p.EAxC() != pc {
		t.Fatalf("eAxC = %+v", p.EAxC())
	}
	tm, err := p.Timing()
	if err != nil {
		t.Fatal(err)
	}
	if tm.FrameID != 46 || tm.SymbolID != 13 {
		t.Fatalf("timing = %+v", tm)
	}
	var msg oran.UPlaneMsg
	if err := p.UPlane(&msg, 106); err != nil {
		t.Fatal(err)
	}
	if msg.Sections[0].NumPRB != 4 {
		t.Fatalf("section = %+v", msg.Sections[0])
	}
}

func TestBuilderCPlaneDecode(t *testing.T) {
	b := NewBuilder(duMAC, ruMAC, -1) // untagged
	frame := b.CPlane(ecpri.PcID{RUPort: 1}, sampleCPlane())
	var p Packet
	if err := p.Decode(frame); err != nil {
		t.Fatal(err)
	}
	if p.Plane() != PlaneC {
		t.Fatalf("plane = %v", p.Plane())
	}
	if p.Eth.HasVLAN {
		t.Fatal("unexpected VLAN")
	}
	var msg oran.CPlaneMsg
	if err := p.CPlane(&msg, 106); err != nil {
		t.Fatal(err)
	}
	if msg.Sections[0].NumPRB != 106 {
		t.Fatalf("numPRB = %d", msg.Sections[0].NumPRB)
	}
	// Wrong-plane accessors must refuse.
	var u oran.UPlaneMsg
	if err := p.UPlane(&u, 106); err != ErrPlane {
		t.Fatalf("UPlane on C-plane: %v", err)
	}
}

func TestBuilderSequencesPerEAxC(t *testing.T) {
	b := NewBuilder(duMAC, ruMAC, 6)
	pc0, pc1 := ecpri.PcID{RUPort: 0}, ecpri.PcID{RUPort: 1}
	var p Packet
	for want := 0; want < 3; want++ {
		frame := b.UPlane(pc0, sampleUPlane())
		if err := p.Decode(frame); err != nil {
			t.Fatal(err)
		}
		if int(p.Ecpri.SeqID) != want {
			t.Fatalf("pc0 seq = %d, want %d", p.Ecpri.SeqID, want)
		}
	}
	frame := b.UPlane(pc1, sampleUPlane())
	if err := p.Decode(frame); err != nil {
		t.Fatal(err)
	}
	if p.Ecpri.SeqID != 0 {
		t.Fatalf("pc1 seq = %d, want 0 (independent counter)", p.Ecpri.SeqID)
	}
}

func TestKeyOf(t *testing.T) {
	b := NewBuilder(duMAC, ruMAC, 6)
	pc := ecpri.PcID{RUPort: 2}
	var p Packet
	if err := p.Decode(b.UPlane(pc, sampleUPlane())); err != nil {
		t.Fatal(err)
	}
	k, err := KeyOf(&p)
	if err != nil {
		t.Fatal(err)
	}
	want := Key{
		Sym:  oran.SymbolRef{Slot: oran.Slot{Frame: 46, Subframe: 9, Slot: 1}, Symbol: 13},
		EAxC: pc.Uint16(),
		Dir:  oran.Downlink,
	}
	if k != want {
		t.Fatalf("key = %+v, want %+v", k, want)
	}
}

func TestClone(t *testing.T) {
	b := NewBuilder(duMAC, ruMAC, 6)
	var p Packet
	if err := p.Decode(b.UPlane(ecpri.PcID{}, sampleUPlane())); err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	if !bytes.Equal(q.Frame, p.Frame) {
		t.Fatal("clone bytes differ")
	}
	q.Frame[0] ^= 0xff
	if bytes.Equal(q.Frame, p.Frame) {
		t.Fatal("clone aliases original")
	}
}

func TestRedirect(t *testing.T) {
	b := NewBuilder(duMAC, ruMAC, 6)
	var p Packet
	if err := p.Decode(b.UPlane(ecpri.PcID{}, sampleUPlane())); err != nil {
		t.Fatal(err)
	}
	other := eth.MAC{9, 9, 9, 9, 9, 9}
	if err := p.Redirect(other, duMAC, 42); err != nil {
		t.Fatal(err)
	}
	var q Packet
	if err := q.Decode(p.Frame); err != nil {
		t.Fatal(err)
	}
	if q.Eth.Dst != other || q.Eth.VLANID != 42 {
		t.Fatalf("redirect not on wire: %+v", q.Eth)
	}
	if p.Eth.Dst != other || p.Eth.VLANID != 42 {
		t.Fatalf("redirect not in view: %+v", p.Eth)
	}
}

func TestRebuildPreservesAddressingAndSizes(t *testing.T) {
	b := NewBuilder(duMAC, ruMAC, 6)
	msg := sampleUPlane()
	var p Packet
	if err := p.Decode(b.UPlane(ecpri.PcID{RUPort: 1}, msg)); err != nil {
		t.Fatal(err)
	}
	// Mutate: grow the payload to 8 PRBs.
	var decoded oran.UPlaneMsg
	if err := p.UPlane(&decoded, 106); err != nil {
		t.Fatal(err)
	}
	decoded.Sections[0].NumPRB = 8
	decoded.Sections[0].Payload = make([]byte, 8*28)
	q := Rebuild(&p, func(buf []byte) []byte { return decoded.AppendTo(buf) })
	if q.Eth != p.Eth || q.Ecpri.PcID != p.Ecpri.PcID || q.Ecpri.SeqID != p.Ecpri.SeqID {
		t.Fatalf("addressing changed: %+v vs %+v", q.Ecpri, p.Ecpri)
	}
	var out oran.UPlaneMsg
	if err := q.UPlane(&out, 106); err != nil {
		t.Fatal(err)
	}
	if out.Sections[0].NumPRB != 8 || len(out.Sections[0].Payload) != 8*28 {
		t.Fatalf("mutation lost: %+v", out.Sections[0])
	}
	if int(q.Ecpri.PayloadSize) != out.EncodedLen()+4 {
		t.Fatalf("payload size = %d, want %d", q.Ecpri.PayloadSize, out.EncodedLen()+4)
	}
}

func TestDecodeRejectsNonECPRI(t *testing.T) {
	h := eth.Header{Dst: ruMAC, Src: duMAC, EtherType: 0x0800}
	frame := h.AppendTo(nil)
	frame = append(frame, make([]byte, 20)...)
	var p Packet
	if err := p.Decode(frame); err != ErrNotECPRI {
		t.Fatalf("err = %v", err)
	}
}

func TestPlaneString(t *testing.T) {
	if PlaneC.String() != "C-Plane" || PlaneU.String() != "U-Plane" || PlaneUnknown.String() != "Unknown" {
		t.Fatal("plane names")
	}
}

func TestPacketString(t *testing.T) {
	b := NewBuilder(duMAC, ruMAC, 6)
	var p Packet
	if err := p.Decode(b.UPlane(ecpri.PcID{RUPort: 3}, sampleUPlane())); err != nil {
		t.Fatal(err)
	}
	if s := p.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func BenchmarkDecodePacket(b *testing.B) {
	bd := NewBuilder(duMAC, ruMAC, 6)
	frame := bd.UPlane(ecpri.PcID{}, sampleUPlane())
	var p Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.Decode(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPeekEAxC(t *testing.T) {
	pc := ecpri.PcID{DUPort: 2, BandSector: 1, CC: 3, RUPort: 5}
	tagged := NewBuilder(duMAC, ruMAC, 6).UPlane(pc, sampleUPlane())
	untagged := NewBuilder(duMAC, ruMAC, -1).UPlane(pc, sampleUPlane())
	for name, frame := range map[string][]byte{"vlan": tagged, "untagged": untagged} {
		got, ok := PeekEAxC(frame)
		if !ok {
			t.Fatalf("%s: PeekEAxC failed", name)
		}
		if got != pc.Uint16() {
			t.Fatalf("%s: PeekEAxC = %#04x, want %#04x", name, got, pc.Uint16())
		}
		// The peek must agree with the full decode.
		var p Packet
		if err := p.Decode(frame); err != nil {
			t.Fatal(err)
		}
		if p.EAxC().Uint16() != got {
			t.Fatalf("%s: peek %#04x disagrees with decode %#04x", name, got, p.EAxC().Uint16())
		}
	}
	if _, ok := PeekEAxC([]byte{1, 2, 3}); ok {
		t.Fatal("short frame peeked")
	}
	notEcpri := append([]byte{}, untagged...)
	notEcpri[12], notEcpri[13] = 0x08, 0x00 // IPv4 ethertype
	if _, ok := PeekEAxC(notEcpri); ok {
		t.Fatal("non-eCPRI frame peeked")
	}
	if _, ok := PeekEAxC(tagged[:16]); ok {
		t.Fatal("truncated VLAN frame peeked")
	}
}

// SetEAxC on a packet that was never decoded used to panic with a bare
// negative-index runtime error deep in the frame write; it must fail with
// a message that names the misuse (ranvet: wirebounds hardening).
func TestSetEAxCUndecodedPanicsClearly(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("SetEAxC on an undecoded packet did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "undecoded") {
			t.Fatalf("panic = %v, want message naming the undecoded packet", r)
		}
	}()
	var p Packet
	p.SetEAxC(ecpri.PcID{RUPort: 1})
}

// SetEAxC on a decoded packet keeps working and patches frame and view.
func TestSetEAxCDecoded(t *testing.T) {
	b := NewBuilder(duMAC, ruMAC, 6)
	var p Packet
	if err := p.Decode(b.UPlane(ecpri.PcID{RUPort: 3}, sampleUPlane())); err != nil {
		t.Fatal(err)
	}
	p.SetEAxC(ecpri.PcID{RUPort: 9})
	var q Packet
	if err := q.Decode(p.Frame); err != nil {
		t.Fatal(err)
	}
	if q.Ecpri.PcID.RUPort != 9 {
		t.Fatalf("RUPort = %d, want 9", q.Ecpri.PcID.RUPort)
	}
}

package fh

import (
	"strings"
	"testing"

	"ranbooster/internal/bfp"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
)

func TestDissectUPlane(t *testing.T) {
	b := NewBuilder(duMAC, ruMAC, 6)
	g := iq.NewGrid(3)
	g[0][0] = iq.Sample{I: -1536, Q: 512}
	payload, err := bfp.CompressGrid(nil, g, bfp9())
	if err != nil {
		t.Fatal(err)
	}
	msg := &oran.UPlaneMsg{
		Timing: oran.Timing{Direction: oran.Uplink, FrameID: 46, SubframeID: 9, SlotID: 1, SymbolID: 13},
		Sections: []oran.USection{{
			SectionID: 0, StartPRB: 0, NumPRB: 3, Comp: bfp9(), Payload: payload,
		}},
	}
	out := Dissect(b.UPlane(ecpri.PcID{RUPort: 3}, msg), 106)
	for _, want := range []string{
		"Ethernet II",
		"802.1Q Virtual LAN",
		"RU_Port_ID: 3",
		"Uplink, Frame: 46, Subframe: 9, Slot: 1, Symbol: 13",
		"udCompHdr (IqWidth=9, udCompMeth=Block floating point compression)",
		"udCompParam (Exponent=",
		"iSample:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dissection missing %q:\n%s", want, out)
		}
	}
}

func TestDissectCPlaneType3(t *testing.T) {
	b := NewBuilder(duMAC, ruMAC, -1)
	msg := &oran.CPlaneMsg{
		Timing:      oran.Timing{Direction: oran.Uplink, FilterIndex: 1},
		SectionType: oran.SectionType3,
		Comp:        bfp9(),
		Sections:    []oran.CSection{{SectionID: 2, StartPRB: 2, NumPRB: 12, FreqOffset: -321}},
	}
	out := Dissect(b.CPlane(ecpri.PcID{}, msg), 106)
	if !strings.Contains(out, "sectionType: 3") || !strings.Contains(out, "frequencyOffset: -321") {
		t.Fatalf("type-3 fields missing:\n%s", out)
	}
}

func TestDissectGarbage(t *testing.T) {
	if out := Dissect([]byte{1, 2, 3}, 106); !strings.Contains(out, "undecodable") {
		t.Fatalf("garbage not flagged: %s", out)
	}
}

package fh

import (
	"bytes"
	"testing"

	"ranbooster/internal/bfp"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
)

// fuzzCarrierPRBs matches the 100 MHz carrier the testbed runs: it makes
// the "all PRBs" wire encoding (numPrb == 0) take the >255 branch.
const fuzzCarrierPRBs = 273

// fuzzSeedFrames builds well-formed frames of every flavor the builder can
// produce, so the fuzzer starts from deep inside the grammar instead of
// having to discover the Ethernet/eCPRI framing byte by byte.
func fuzzSeedFrames() [][]byte {
	src := eth.MAC{0x02, 0, 0, 0, 0, 0x01}
	dst := eth.MAC{0x02, 0, 0, 0, 0, 0x02}
	pc := ecpri.PcID{DUPort: 0, BandSector: 1, CC: 0, RUPort: 2}

	var frames [][]byte
	for _, vlan := range []int{-1, 6} {
		b := NewBuilder(src, dst, vlan)
		frames = append(frames, b.CPlane(pc, &oran.CPlaneMsg{
			Timing:      oran.Timing{Direction: oran.Downlink, PayloadVersion: 1, FrameID: 63, SubframeID: 2, SlotID: 1},
			SectionType: oran.SectionType1,
			Comp:        bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint},
			Sections: []oran.CSection{
				{SectionID: 1, NumPRB: 64, ReMask: 0xfff, NumSymbol: 14, BeamID: 7},
				{SectionID: 2, StartPRB: 64, NumPRB: fuzzCarrierPRBs - 64, ReMask: 0xfff, NumSymbol: 14},
			},
		}))
		frames = append(frames, b.CPlane(pc, &oran.CPlaneMsg{
			Timing:      oran.Timing{Direction: oran.Uplink, PayloadVersion: 1, FilterIndex: 1, FrameID: 9},
			SectionType: oran.SectionType3,
			TimeOffset:  100, FrameStructure: 0x41, CPLength: 20,
			Comp: bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint},
			Sections: []oran.CSection{
				{SectionID: 3, StartPRB: 10, NumPRB: 12, ReMask: 0xfff, NumSymbol: 1, FreqOffset: -3276},
			},
		}))
		for _, comp := range []bfp.Params{
			{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint},
			{Method: bfp.MethodNone},
		} {
			grid := iq.NewGrid(4)
			for p := range grid {
				for k := range grid[p] {
					grid[p][k].I = int16(p*256 + k*16)
					grid[p][k].Q = int16(-(p*128 + k*8))
				}
			}
			payload, err := bfp.CompressGrid(nil, grid, comp)
			if err != nil {
				panic(err)
			}
			frames = append(frames, b.UPlane(pc, &oran.UPlaneMsg{
				Timing: oran.Timing{Direction: oran.Uplink, PayloadVersion: 1, FrameID: 5, SlotID: 3, SymbolID: 7},
				Sections: []oran.USection{
					{SectionID: 1, StartPRB: 8, NumPRB: len(grid), Comp: comp, Payload: payload},
				},
			}))
		}
	}
	return frames
}

// FuzzDissect throws arbitrary bytes at the full receive path: the
// dissector, the lazy Packet decode and every accessor a middlebox calls.
// Malformed input must come back as an error (or an "undecodable" render),
// never a panic or out-of-range access.
func FuzzDissect(f *testing.F) {
	for _, frame := range fuzzSeedFrames() {
		f.Add(frame)
		f.Add(frame[:len(frame)/2]) // truncated mid-message
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if out := Dissect(data, fuzzCarrierPRBs); out == "" {
			t.Fatal("Dissect returned empty output")
		}
		var p Packet
		if err := p.Decode(data); err != nil {
			return
		}
		// The NIC-style peeks must agree with the full decode whenever the
		// full decode succeeds: RSS steering and shed policy rely on it.
		if eaxc, ok := PeekEAxC(data); !ok || eaxc != p.Ecpri.PcID.Uint16() {
			t.Fatalf("PeekEAxC = (%#x, %v), decode says %#x", eaxc, ok, p.Ecpri.PcID.Uint16())
		}
		if pl := PeekPlane(data); pl != p.Plane() {
			t.Fatalf("PeekPlane = %v, decode says %v", pl, p.Plane())
		}
		_, _ = p.Timing()
		_, _ = KeyOf(&p)
		_ = p.String()
		switch p.Plane() {
		case PlaneU:
			var msg oran.UPlaneMsg
			_ = p.UPlane(&msg, fuzzCarrierPRBs)
		case PlaneC:
			var msg oran.CPlaneMsg
			_ = p.CPlane(&msg, fuzzCarrierPRBs)
		}
		// A decodable packet must survive the A2 replication primitive.
		cp := p.Clone()
		if !bytes.Equal(cp.Frame, p.Frame) {
			t.Fatal("Clone changed frame bytes")
		}
	})
}

package ru

import (
	"testing"
	"time"

	"ranbooster/internal/air"
	"ranbooster/internal/bfp"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/oran"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/sim"
)

var (
	duMAC = eth.MAC{2, 0, 0, 0, 0, 0x50}
	ruMAC = eth.MAC{2, 0, 0, 0, 0, 0x51}
)

func bfp9() bfp.Params { return bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint} }

func newRU(t *testing.T) (*sim.Scheduler, *air.Air, *RU, *[][]byte) {
	t.Helper()
	s := sim.NewScheduler()
	a := air.New(s, radio.DefaultModel())
	els := []radio.Element{
		radio.DefaultRUElement(radio.RUAt(0, 10, 10)),
		radio.DefaultRUElement(radio.RUAt(0, 10, 10)),
	}
	r := New(s, a, Config{
		Name: "ru0", MAC: ruMAC, PeerMAC: duMAC, VLAN: -1,
		Carrier: phy.NewCarrier(40, 3_460_000_000), Ports: 2,
		Comp: bfp9(), Elements: els,
	})
	var out [][]byte
	r.SetOutput(func(f []byte) { out = append(out, f) })
	return s, a, r, &out
}

func TestRegistersWithOracle(t *testing.T) {
	_, a, r, _ := newRU(t)
	if a.RU(r.Name()) == nil {
		t.Fatal("RU not registered")
	}
	if r.MAC() != ruMAC {
		t.Fatal("MAC")
	}
}

func TestULCPlaneGeneratesUPlanePerSymbol(t *testing.T) {
	s, _, r, out := newRU(t)
	b := fh.NewBuilder(duMAC, ruMAC, -1)
	msg := &oran.CPlaneMsg{
		Timing:      oran.Timing{Direction: oran.Uplink, FrameID: 0, SubframeID: 2, SlotID: 0, SymbolID: 0},
		SectionType: oran.SectionType1,
		Comp:        bfp9(),
		Sections:    []oran.CSection{{StartPRB: 0, NumPRB: 106, ReMask: 0xfff, NumSymbol: 3}},
	}
	r.Ingress(b.CPlane(ecpri.PcID{RUPort: 1}, msg))
	s.RunFor(10 * time.Millisecond)
	if len(*out) != 3 {
		t.Fatalf("UL U-plane messages = %d, want 3 (one per symbol)", len(*out))
	}
	var p fh.Packet
	if err := p.Decode((*out)[0]); err != nil {
		t.Fatal(err)
	}
	if p.Eth.Dst != duMAC || p.EAxC().RUPort != 1 {
		t.Fatalf("reply dst=%v port=%d", p.Eth.Dst, p.EAxC().RUPort)
	}
	var u oran.UPlaneMsg
	if err := p.UPlane(&u, 106); err != nil {
		t.Fatal(err)
	}
	if u.Timing.Direction != oran.Uplink || u.Sections[0].NumPRB != 106 {
		t.Fatalf("uplane %+v", u.Sections[0])
	}
	// With no UE transmissions registered, the payload is noise: every
	// exponent at or below Algorithm 1's uplink threshold.
	size := u.Sections[0].Comp.PRBSize()
	for off := 0; off+size <= len(u.Sections[0].Payload); off += size {
		if exp, _ := bfp.PeekExponent(u.Sections[0].Payload[off:]); exp > 2 {
			t.Fatalf("noise PRB exponent %d", exp)
		}
	}
}

func TestULContainsRegisteredSignal(t *testing.T) {
	s, a, r, out := newRU(t)
	cell := a.RegisterCell(air.CellConfig{
		Name: "c", PCI: 1, Carrier: phy.NewCarrier(40, 3_460_000_000),
		TDD: phy.MustTDD("DDDSU"), Stack: phy.StackSRSRAN,
		SSB: phy.DefaultSSB(), PRACH: phy.DefaultPRACH(), MaxLayers: 2,
	})
	u := air.NewUE(1, radio.UEAt(0, 12, 10))
	a.AddUE(u)
	timing := oran.Timing{Direction: oran.Uplink, FrameID: 0, SubframeID: 2, SlotID: 0, SymbolID: 0}
	a.RegisterUL(cell, air.AbsSlot(timing), u, 10, 20)

	b := fh.NewBuilder(duMAC, ruMAC, -1)
	msg := &oran.CPlaneMsg{
		Timing:      timing,
		SectionType: oran.SectionType1,
		Comp:        bfp9(),
		Sections:    []oran.CSection{{StartPRB: 0, NumPRB: 106, ReMask: 0xfff, NumSymbol: 1}},
	}
	r.Ingress(b.CPlane(ecpri.PcID{RUPort: 0}, msg))
	s.RunFor(10 * time.Millisecond)
	if len(*out) != 1 {
		t.Fatalf("out = %d", len(*out))
	}
	var p fh.Packet
	if err := p.Decode((*out)[0]); err != nil {
		t.Fatal(err)
	}
	var up oran.UPlaneMsg
	if err := p.UPlane(&up, 106); err != nil {
		t.Fatal(err)
	}
	size := up.Sections[0].Comp.PRBSize()
	expOf := func(prb int) uint8 {
		e, _ := bfp.PeekExponent(up.Sections[0].Payload[prb*size:])
		return e
	}
	if expOf(5) > 2 {
		t.Fatalf("unscheduled PRB 5 exponent %d", expOf(5))
	}
	if expOf(15) <= 2 {
		t.Fatalf("scheduled PRB 15 exponent %d, want data-level", expOf(15))
	}
}

func TestDLReportedToOracle(t *testing.T) {
	s, a, r, _ := newRU(t)
	cell := a.RegisterCell(air.CellConfig{
		Name: "c", PCI: 1, Carrier: phy.NewCarrier(40, 3_460_000_000),
		TDD: phy.MustTDD("DDDSU"), Stack: phy.StackSRSRAN,
		SSB: phy.DefaultSSB(), PRACH: phy.DefaultPRACH(), MaxLayers: 2,
	})
	b := fh.NewBuilder(duMAC, ruMAC, -1)
	// SSB-window DL U-plane with energy: RU must report, oracle must mark
	// the RU active for the cell.
	payload := make([]byte, 20*28)
	payload[0] = 5 // exponent 5: energy
	msg := &oran.UPlaneMsg{
		Timing:   oran.Timing{Direction: oran.Downlink, FrameID: 0, SubframeID: 0, SlotID: 0, SymbolID: 2},
		Sections: []oran.USection{{StartPRB: 0, NumPRB: 20, Comp: bfp9(), Payload: payload}},
	}
	r.Ingress(b.UPlane(ecpri.PcID{BandSector: 1, RUPort: 0}, msg))
	s.RunFor(time.Millisecond)
	if len(a.ActiveRUs(cell)) != 1 {
		t.Fatal("SSB transmission not reported")
	}
	if r.Stats().RxUPlane != 1 {
		t.Fatalf("stats %+v", r.Stats())
	}
}

func TestLateDLDropped(t *testing.T) {
	s, _, r, _ := newRU(t)
	b := fh.NewBuilder(duMAC, ruMAC, -1)
	// Frame for symbol 0 of slot 0 arriving after its air time.
	s.RunFor(phy.SlotDuration) // now past slot 0
	msg := &oran.UPlaneMsg{
		Timing:   oran.Timing{Direction: oran.Downlink, FrameID: 0, SubframeID: 0, SlotID: 0, SymbolID: 0},
		Sections: []oran.USection{{StartPRB: 0, NumPRB: 4, Comp: bfp9(), Payload: make([]byte, 4*28)}},
	}
	r.Ingress(b.UPlane(ecpri.PcID{}, msg))
	if r.Stats().LateDL != 1 {
		t.Fatalf("late = %d", r.Stats().LateDL)
	}
}

func TestIgnoresForeignDestination(t *testing.T) {
	_, _, r, _ := newRU(t)
	b := fh.NewBuilder(duMAC, eth.MAC{9, 9, 9, 9, 9, 9}, -1)
	msg := &oran.UPlaneMsg{
		Timing:   oran.Timing{Direction: oran.Downlink},
		Sections: []oran.USection{{NumPRB: 1, Comp: bfp9(), Payload: make([]byte, 28)}},
	}
	r.Ingress(b.UPlane(ecpri.PcID{}, msg))
	if r.Stats().RxUPlane != 0 {
		t.Fatal("foreign frame processed")
	}
}

func TestPRACHResponseCarriesPreamble(t *testing.T) {
	s, a, r, out := newRU(t)
	cell := a.RegisterCell(air.CellConfig{
		Name: "c", PCI: 1, Carrier: phy.NewCarrier(40, 3_460_000_000),
		TDD: phy.MustTDD("DDDSU"), Stack: phy.StackSRSRAN,
		SSB: phy.DefaultSSB(), PRACH: phy.DefaultPRACH(), MaxLayers: 2,
	})
	u := air.NewUE(1, radio.UEAt(0, 12, 10))
	a.AddUE(u)
	timing := oran.Timing{Direction: oran.Uplink, FilterIndex: 1, FrameID: 0, SubframeID: 9, SlotID: 1, SymbolID: 0}
	abs := air.AbsSlot(timing)
	a.SendPRACH(u, cell, abs)

	b := fh.NewBuilder(duMAC, ruMAC, -1)
	msg := &oran.CPlaneMsg{
		Timing:      timing,
		SectionType: oran.SectionType3,
		Comp:        bfp9(),
		Sections: []oran.CSection{{
			SectionID: 4, StartPRB: 2, NumPRB: 12, ReMask: 0xfff, NumSymbol: 2,
			FreqOffset: phy.FreqOffsetForPRB(cell.Carrier, 2),
		}},
	}
	r.Ingress(b.CPlane(ecpri.PcID{RUPort: 0}, msg))
	s.RunFor(20 * time.Millisecond)
	if len(*out) != 1 {
		t.Fatalf("out = %d", len(*out))
	}
	var p fh.Packet
	if err := p.Decode((*out)[0]); err != nil {
		t.Fatal(err)
	}
	tm, _ := p.Timing()
	if tm.FilterIndex != 1 {
		t.Fatal("PRACH response must keep filterIndex 1")
	}
	var up oran.UPlaneMsg
	if err := p.UPlane(&up, 106); err != nil {
		t.Fatal(err)
	}
	if up.Sections[0].SectionID != 4 {
		t.Fatalf("section id %d", up.Sections[0].SectionID)
	}
	exp, _ := bfp.PeekExponent(up.Sections[0].Payload)
	if exp <= 2 {
		t.Fatalf("preamble exponent %d, want energy", exp)
	}
	if got := a.CapturedPreambles("c", abs); len(got) != 1 {
		t.Fatalf("captured = %d", len(got))
	}
}

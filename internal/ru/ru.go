// Package ru simulates a Cat-A O-RAN radio unit (the testbed's Foxconn
// RPQN-7800 class): it terminates the fronthaul — interpreting C-plane
// scheduling, radiating downlink U-plane IQ (reported to the air oracle),
// synthesizing uplink U-plane IQ from what its antennas capture, and
// answering PRACH requests — while staying completely ignorant of cells,
// UEs and middleboxes, exactly like the real hardware.
package ru

import (
	"fmt"
	"time"

	"ranbooster/internal/air"
	"ranbooster/internal/bfp"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/iqsynth"
	"ranbooster/internal/oran"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/sim"
)

// Config describes one RU.
type Config struct {
	Name string
	MAC  eth.MAC
	// PeerMAC is where uplink traffic goes: the DU, or the middlebox
	// standing in for it.
	PeerMAC eth.MAC
	VLAN    int
	Carrier phy.Carrier
	// Ports is the number of antenna ports (eAxC RU ports) exposed.
	Ports int
	Comp  bfp.Params
	// Elements are the physical antennas (len == Ports).
	Elements []radio.Element
	// ProcDelay is the RU's internal processing latency before an uplink
	// packet leaves.
	ProcDelay time.Duration
}

// Stats counts RU datapath events.
type Stats struct {
	RxCPlane uint64
	RxUPlane uint64
	TxUPlane uint64
	// LateDL counts downlink U-plane packets that missed their symbol's
	// air time and were discarded — the deadline violations of §6.4.1.
	LateDL     uint64
	BadPackets uint64
}

// RU is the simulator actor.
type RU struct {
	cfg    Config
	sched  *sim.Scheduler
	oracle *air.Air
	out    func(frame []byte)

	builder *fh.Builder
	synth   *iqsynth.Cache
	stats   Stats
	seed    int
}

// New creates an RU and registers its antennas with the air oracle.
func New(sched *sim.Scheduler, oracle *air.Air, cfg Config) *RU {
	if cfg.Ports <= 0 || cfg.Ports != len(cfg.Elements) {
		panic(fmt.Sprintf("ru %s: Ports (%d) must match Elements (%d)", cfg.Name, cfg.Ports, len(cfg.Elements)))
	}
	if cfg.ProcDelay == 0 {
		cfg.ProcDelay = 10 * time.Microsecond
	}
	oracle.RegisterRU(cfg.Name, cfg.Elements)
	r := &RU{
		cfg:     cfg,
		sched:   sched,
		oracle:  oracle,
		builder: fh.NewBuilder(cfg.MAC, cfg.PeerMAC, cfg.VLAN),
		synth:   iqsynth.New(cfg.Comp),
		seed:    int(cfg.MAC[5]),
	}
	return r
}

// Name returns the RU name.
func (r *RU) Name() string { return r.cfg.Name }

// MAC returns the RU's fronthaul address.
func (r *RU) MAC() eth.MAC { return r.cfg.MAC }

// SetPeer points the RU's uplink at a new DU-side address (re-homing an
// RU onto a middlebox is an M-plane reconfiguration in practice).
func (r *RU) SetPeer(mac eth.MAC) {
	r.cfg.PeerMAC = mac
	r.builder.Dst = mac
}

// Stats returns a snapshot of the counters.
func (r *RU) Stats() Stats { return r.stats }

// SetOutput wires the RU's transmit side (a fabric port's Send).
func (r *RU) SetOutput(fn func(frame []byte)) { r.out = fn }

// Ingress is the RU's receive entry point.
func (r *RU) Ingress(frame []byte) {
	var pkt fh.Packet
	if err := pkt.Decode(frame); err != nil {
		r.stats.BadPackets++
		return
	}
	if pkt.Eth.Dst != r.cfg.MAC && !pkt.Eth.Dst.IsBroadcast() {
		return // not ours (flooded frame on the segment)
	}
	switch pkt.Plane() {
	case fh.PlaneC:
		r.stats.RxCPlane++
		r.handleCPlane(&pkt)
	case fh.PlaneU:
		r.stats.RxUPlane++
		r.handleDLUPlane(&pkt)
	default:
		r.stats.BadPackets++
	}
}

// handleDLUPlane radiates a downlink symbol: each section's PRB span is
// reported to the air oracle with its energy state (scanned from the BFP
// exponents, never decompressed).
func (r *RU) handleDLUPlane(pkt *fh.Packet) {
	var msg oran.UPlaneMsg
	if err := pkt.UPlane(&msg, r.cfg.Carrier.NumPRB); err != nil {
		r.stats.BadPackets++
		return
	}
	if msg.Timing.Direction != oran.Downlink {
		r.stats.BadPackets++
		return
	}
	absSlot := air.AbsSlotNear(r.sched.Now(), msg.Timing)
	// Deadline: IQ for a symbol must be at the RU before its air time.
	if r.sched.Now() > phy.SymbolStart(absSlot, int(msg.Timing.SymbolID)) {
		r.stats.LateDL++
		return
	}
	port := pkt.EAxC().RUPort
	sector := pkt.EAxC().BandSector
	for i := range msg.Sections {
		s := &msg.Sections[i]
		lo := r.cfg.Carrier.PRBStartHz(s.StartPRB)
		hi := r.cfg.Carrier.PRBStartHz(s.StartPRB + s.NumPRB)
		r.oracle.ReportDL(r.cfg.Name, port, sector, msg.Timing, lo, hi, sectionHasEnergy(s))
	}
}

// sectionHasEnergy scans BFP exponents for any utilized PRB.
func sectionHasEnergy(s *oran.USection) bool {
	if s.Comp.Method != bfp.MethodBlockFloatingPoint {
		return len(s.Payload) > 0
	}
	size := s.Comp.PRBSize()
	for off := 0; off+size <= len(s.Payload); off += size {
		if exp, err := bfp.PeekExponent(s.Payload[off:]); err == nil && exp > 0 {
			return true
		}
	}
	return false
}

// handleCPlane interprets scheduling instructions.
func (r *RU) handleCPlane(pkt *fh.Packet) {
	var msg oran.CPlaneMsg
	if err := pkt.CPlane(&msg, r.cfg.Carrier.NumPRB); err != nil {
		r.stats.BadPackets++
		return
	}
	switch {
	case msg.SectionType == oran.SectionType3 && msg.Timing.Direction == oran.Uplink:
		r.schedulePRACH(pkt, &msg)
	case msg.Timing.Direction == oran.Uplink:
		r.scheduleUplink(pkt, &msg)
	default:
		// Downlink C-plane: scheduling metadata only; the DL U-plane that
		// follows carries everything the model needs.
	}
}

// scheduleUplink arranges transmission of uplink U-plane for every
// (symbol, PRB range) the C-plane requests.
func (r *RU) scheduleUplink(pkt *fh.Packet, msg *oran.CPlaneMsg) {
	absSlot := air.AbsSlotNear(r.sched.Now(), msg.Timing)
	port := pkt.EAxC().RUPort
	if int(port) >= r.cfg.Ports {
		return // no such antenna
	}
	pc := pkt.EAxC()
	for i := range msg.Sections {
		s := msg.Sections[i] // copy: the decode buffer is reused
		first := int(msg.Timing.SymbolID)
		n := int(s.NumSymbol)
		if n == 0 {
			n = 1
		}
		for sym := first; sym < first+n && sym < phy.SymbolsPerSlot; sym++ {
			sym := sym
			at := phy.SymbolEnd(absSlot, sym).Add(r.cfg.ProcDelay)
			r.sched.At(at, func() {
				r.emitUplink(pc, absSlot, sym, s.StartPRB, s.NumPRB)
			})
		}
	}
}

// emitUplink synthesizes and sends one uplink U-plane message: scheduled
// transmissions that reach this RU become data-amplitude PRBs, everything
// else is the noise floor.
func (r *RU) emitUplink(pc ecpri.PcID, absSlot, sym, startPRB, nPRB int) {
	lo := r.cfg.Carrier.PRBStartHz(startPRB)
	hi := r.cfg.Carrier.PRBStartHz(startPRB + nPRB)
	signals := r.oracle.SampleUL(r.cfg.Name, absSlot, lo, hi)

	payload := make([]byte, 0, nPRB*r.cfg.Comp.PRBSize())
	payload = r.synth.Append(payload, nPRB, r.seed+absSlot+sym, func(i int) int16 {
		f := r.cfg.Carrier.PRBStartHz(startPRB + i)
		amp := int16(air.NoiseAmplitude)
		for _, sig := range signals {
			if f >= sig.FreqLo && f < sig.FreqHi && sig.Amplitude > amp {
				amp = sig.Amplitude
			}
		}
		return amp
	})

	frame, subframe, slot := phy.SlotCoords(absSlot)
	msg := &oran.UPlaneMsg{
		Timing: oran.Timing{
			Direction: oran.Uplink, PayloadVersion: 1,
			FrameID: frame, SubframeID: subframe, SlotID: slot, SymbolID: uint8(sym),
		},
		Sections: []oran.USection{{
			StartPRB: startPRB, NumPRB: nPRB, Comp: r.cfg.Comp, Payload: payload,
		}},
	}
	r.send(r.builder.UPlane(pc, msg))
}

// schedulePRACH answers a section type 3 request: at the occasion, sample
// the physical frequencies the (possibly translated) freqOffset denotes.
func (r *RU) schedulePRACH(pkt *fh.Packet, msg *oran.CPlaneMsg) {
	absSlot := air.AbsSlotNear(r.sched.Now(), msg.Timing)
	pc := pkt.EAxC()
	type prachSection struct {
		id     uint16
		numPRB int
		lo, hi int64
	}
	secs := make([]prachSection, 0, len(msg.Sections))
	for i := range msg.Sections {
		s := &msg.Sections[i]
		// Appendix A.1.2: freqOffset locates the first RE of the PRACH
		// span relative to the carrier center, in half-subcarrier units.
		reLo := r.cfg.Carrier.CenterHz - int64(s.FreqOffset)*(phy.SCS/2)
		secs = append(secs, prachSection{
			id:     s.SectionID,
			numPRB: s.NumPRB,
			lo:     reLo,
			hi:     reLo + int64(s.NumPRB)*phy.PRBBandwidthHz,
		})
	}
	sym := int(msg.Timing.SymbolID)
	at := phy.SymbolEnd(absSlot, sym).Add(r.cfg.ProcDelay)
	r.sched.At(at, func() {
		frame, subframe, slot := phy.SlotCoords(absSlot)
		out := &oran.UPlaneMsg{
			Timing: oran.Timing{
				Direction: oran.Uplink, PayloadVersion: 1, FilterIndex: 1,
				FrameID: frame, SubframeID: subframe, SlotID: slot, SymbolID: uint8(sym),
			},
		}
		for _, sec := range secs {
			amp := int16(air.NoiseAmplitude)
			if ues := r.oracle.SamplePRACH(r.cfg.Name, absSlot, sec.lo, sec.hi); len(ues) > 0 {
				amp = iqsynth.PreambleAmplitude
			}
			payload := r.synth.Uniform(nil, sec.numPRB, r.seed+absSlot, amp)
			out.Sections = append(out.Sections, oran.USection{
				SectionID: sec.id, NumPRB: sec.numPRB, Comp: r.cfg.Comp, Payload: payload,
			})
		}
		r.send(r.builder.UPlane(pc, out))
	})
}

func (r *RU) send(frame []byte) {
	r.stats.TxUPlane++
	if r.out != nil {
		r.out(frame)
	}
}

package sim

import (
	"testing"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now() = %v, want 30", s.Now())
	}
}

func TestSchedulerFIFOAtSameTime(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-timestamp events not FIFO: %v", got)
		}
	}
}

func TestSchedulerPastEventClamped(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.At(100, func() {
		s.At(50, func() { // in the past: must run "now", not rewind the clock
			if s.Now() != 100 {
				t.Errorf("past event ran at %v, want 100", s.Now())
			}
			ran = true
		})
	})
	s.Run()
	if !ran {
		t.Fatal("past event never ran")
	}
}

func TestRunUntilLeavesFutureEvents(t *testing.T) {
	s := NewScheduler()
	ran := 0
	s.At(10, func() { ran++ })
	s.At(200, func() { ran++ })
	s.RunUntil(100)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if s.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
}

func TestTicker(t *testing.T) {
	s := NewScheduler()
	n := 0
	var stop func()
	stop = s.Ticker(10*time.Nanosecond, func() {
		n++
		if n == 5 {
			stop()
		}
	})
	s.RunUntil(1000)
	if n != 5 {
		t.Fatalf("ticks = %d, want 5", n)
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := NewScheduler()
	var at Time
	s.At(40, func() {
		s.After(5*time.Nanosecond, func() { at = s.Now() })
	})
	s.Run()
	if at != 45 {
		t.Fatalf("After fired at %v, want 45", at)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collide too often: %d/1000", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Fatalf("mean = %v, want ~0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Fatalf("variance = %v, want ~1", variance)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestTimeHelpers(t *testing.T) {
	x := Time(1000)
	if x.Add(500*time.Nanosecond) != 1500 {
		t.Fatal("Add")
	}
	if Time(2500).Sub(x) != 1500*time.Nanosecond {
		t.Fatal("Sub")
	}
	if x.String() == "" {
		t.Fatal("String empty")
	}
}

package sim

// RNG is a small deterministic pseudo-random generator (SplitMix64 core,
// xorshift-style mixing). The testbed never uses math/rand's global state so
// that every experiment is reproducible from its seed; this also keeps the
// hot paths free of locks.
type RNG struct {
	state uint64
}

// NewRNG returns a generator for the given seed. Distinct seeds give
// independent streams; seed 0 is remapped so the state never sticks at zero.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns an approximately standard-normal variate using the
// sum-of-uniforms method (Irwin–Hall with 12 terms), which is accurate to a
// few percent in the tails — more than enough for shadow fading.
func (r *RNG) NormFloat64() float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.Float64()
	}
	return s - 6
}

// Fork derives an independent generator from this one, for handing separate
// deterministic streams to sub-components.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// Package sim provides the discrete-event simulation substrate on which the
// whole RANBooster testbed runs.
//
// The paper's system operates against wall-clock deadlines measured in tens
// of microseconds, enforced by PTP-synchronized hardware. A garbage-collected
// runtime cannot honour those deadlines in real time, so the reproduction
// runs every component (DU, RU, fabric, middlebox engines) on a shared
// virtual clock: events are executed in timestamp order and "processing
// time" is charged by advancing virtual time, which makes deadline checks
// exact and runs deterministic.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration aliases time.Duration for readability at call sites; virtual
// durations have the same nanosecond granularity as real ones.
type Duration = time.Duration

// String renders the time with microsecond precision, the natural unit of
// fronthaul timing.
func (t Time) String() string {
	return fmt.Sprintf("t=%.3fµs", float64(t)/1e3)
}

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among equal timestamps
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; all actors run callbacks on the scheduler goroutine,
// which mirrors the run-to-completion model of a DPDK poll loop.
type Scheduler struct {
	now    Time
	events eventHeap
	seq    uint64
	nRun   uint64
}

// NewScheduler returns a scheduler positioned at time zero.
func NewScheduler() *Scheduler {
	s := &Scheduler{}
	heap.Init(&s.events)
	return s
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Processed reports how many events have executed, useful for progress
// assertions in tests.
func (s *Scheduler) Processed() uint64 { return s.nRun }

// At schedules fn to run at virtual time t. Scheduling in the past (or the
// present) runs the event at the current time after already-queued events
// with earlier sequence numbers.
func (s *Scheduler) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	//ranvet:allow alloc deterministic-mode scheduler: the parallel hot path never enqueues events
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d after the current virtual time.
func (s *Scheduler) After(d Duration, fn func()) { s.At(s.now.Add(d), fn) }

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	if s.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.at
	s.nRun++
	e.fn()
	return true
}

// Run executes events until the queue drains.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
// Events scheduled beyond t remain queued.
func (s *Scheduler) RunUntil(t Time) {
	for s.events.Len() > 0 && s.events[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// RunFor advances the simulation by d.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Pending reports the number of queued events.
func (s *Scheduler) Pending() int { return s.events.Len() }

// Clock is a read-only view of virtual time. *Scheduler implements it for
// code running on the scheduler goroutine. Code running OFF the scheduler
// goroutine (real worker threads, as in the parallel datapath engine) must
// not read the advancing scheduler clock — that would race with event
// execution and make runs irreproducible. Such code receives a Frozen
// clock instead: virtual time stands still while wall-clock workers run,
// which keeps every virtual-time computation deterministic.
type Clock interface {
	// Now returns the current virtual time.
	Now() Time
}

// Frozen returns a Clock pinned at t — the deterministic time source for
// worker goroutines detached from the scheduler.
func Frozen(t Time) Clock { return frozenClock(t) }

type frozenClock Time

func (c frozenClock) Now() Time { return Time(c) }

// Ticker invokes fn every period until the returned stop function is called.
// The first invocation happens one period from now.
func (s *Scheduler) Ticker(period Duration, fn func()) (stop func()) {
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			s.After(period, tick)
		}
	}
	s.After(period, tick)
	return func() { stopped = true }
}

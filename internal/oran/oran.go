// Package oran implements the O-RAN WG4 CUS-plane application protocol:
// the C-plane (control) and U-plane (IQ data) message formats exchanged
// between a DU and an RU inside eCPRI PDUs.
//
// The subset implemented is the one the paper's middleboxes manipulate:
// the common radio-application (timing) header, U-plane data sections with
// per-section compression headers, C-plane section type 1 (DL/UL channel
// data) and section type 3 (PRACH and mixed-numerology channels, carrying
// the frequency offset that RU sharing must translate — Appendix A.1.2).
//
// Codecs follow the gopacket idiom: DecodeFromBytes fills reusable structs
// and aliases the input for payloads; AppendTo serializes onto a caller
// buffer. Hot paths do not allocate.
package oran

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Direction is the dataDirection bit of the radio application header.
type Direction uint8

// Data directions. The fronthaul is RU-centric: uplink flows from the RU
// toward the DU.
const (
	Uplink   Direction = 0
	Downlink Direction = 1
)

// String names the direction.
func (d Direction) String() string {
	if d == Downlink {
		return "Downlink"
	}
	return "Uplink"
}

// Section types of the C-plane used here.
const (
	// SectionType1 schedules DL/UL channel data for regular symbols.
	SectionType1 uint8 = 1
	// SectionType3 schedules PRACH and mixed-numerology channels; its
	// sections carry a frequency offset.
	SectionType3 uint8 = 3
)

// TimingLen is the encoded size of the radio application (timing) header.
const TimingLen = 4

// Timing is the radio application header present in every C/U-plane
// message, locating the message on the air-interface time grid.
type Timing struct {
	Direction      Direction
	PayloadVersion uint8 // 3 bits; always 1 on the wire today
	FilterIndex    uint8 // 4 bits; 0 for standard channels, 1 for PRACH
	FrameID        uint8 // 0..255, 10 ms radio frames
	SubframeID     uint8 // 4 bits, 1 ms subframes
	SlotID         uint8 // 6 bits, slot within subframe (numerology-dependent)
	SymbolID       uint8 // 6 bits; startSymbolId on the C-plane
}

// String renders the timing in the capture format of Fig. 2.
func (t Timing) String() string {
	return fmt.Sprintf("%s, Frame: %d, Subframe: %d, Slot: %d, Symbol: %d",
		t.Direction, t.FrameID, t.SubframeID, t.SlotID, t.SymbolID)
}

// AppendTo serializes the timing header.
func (t Timing) AppendTo(b []byte) []byte {
	b0 := byte(t.Direction&1)<<7 | (t.PayloadVersion&0x7)<<4 | t.FilterIndex&0xf
	hi := uint16(t.SubframeID&0xf)<<12 | uint16(t.SlotID&0x3f)<<6 | uint16(t.SymbolID&0x3f)
	b = append(b, b0, t.FrameID)
	return binary.BigEndian.AppendUint16(b, hi)
}

// DecodeFromBytes parses the timing header and returns the remainder.
func (t *Timing) DecodeFromBytes(b []byte) ([]byte, error) {
	if len(b) < TimingLen {
		return nil, ErrTruncated
	}
	t.Direction = Direction(b[0] >> 7)
	t.PayloadVersion = b[0] >> 4 & 0x7
	t.FilterIndex = b[0] & 0xf
	t.FrameID = b[1]
	hi := binary.BigEndian.Uint16(b[2:4])
	t.SubframeID = uint8(hi >> 12)
	t.SlotID = uint8(hi>>6) & 0x3f
	t.SymbolID = uint8(hi) & 0x3f
	return b[4:], nil
}

// Slot identifies an absolute slot on the timing grid, usable as a map key.
type Slot struct {
	Frame    uint8
	Subframe uint8
	Slot     uint8
}

// SlotOf extracts the slot coordinates of a timing header.
func SlotOf(t Timing) Slot { return Slot{Frame: t.FrameID, Subframe: t.SubframeID, Slot: t.SlotID} }

// SymbolRef identifies one symbol within one slot, the unit RANBooster's
// packet caches are keyed on (together with the eAxC).
type SymbolRef struct {
	Slot   Slot
	Symbol uint8
}

// SymbolOf extracts the symbol coordinates of a timing header.
func SymbolOf(t Timing) SymbolRef { return SymbolRef{Slot: SlotOf(t), Symbol: t.SymbolID} }

// Errors shared by the codecs.
var (
	ErrTruncated   = errors.New("oran: truncated message")
	ErrSectionType = errors.New("oran: unsupported section type")
	ErrBadSection  = errors.New("oran: malformed section")
)

// maxNumPRBWire is the largest PRB count the 8-bit numPrb field can carry
// explicitly; larger allocations (e.g. all 273 PRBs of a 100 MHz carrier)
// use the wire value 0, meaning "all PRBs of the carrier".
const maxNumPRBWire = 255

func encodeNumPRB(n int) byte {
	if n > maxNumPRBWire {
		return 0
	}
	return byte(n)
}

func decodeNumPRB(b byte, carrierPRBs int) int {
	if b == 0 {
		return carrierPRBs
	}
	return int(b)
}

// sectionHdr packs sectionId(12) | rb(1) | symInc(1) | startPrb(10).
func appendSectionHdr(b []byte, id uint16, rb, symInc bool, startPRB uint16) []byte {
	v := uint32(id&0xfff)<<12 | uint32(startPRB&0x3ff)
	if rb {
		v |= 1 << 11
	}
	if symInc {
		v |= 1 << 10
	}
	return append(b, byte(v>>16), byte(v>>8), byte(v))
}

// decodeSectionHdr takes an array pointer so that callers prove the
// three header bytes exist at the conversion site rather than here.
func decodeSectionHdr(b *[3]byte) (id uint16, rb, symInc bool, startPRB uint16) {
	v := uint32(b[0])<<16 | uint32(b[1])<<8 | uint32(b[2])
	return uint16(v>>12) & 0xfff, v&(1<<11) != 0, v&(1<<10) != 0, uint16(v) & 0x3ff
}

package oran

import (
	"reflect"
	"testing"

	"ranbooster/internal/bfp"
)

// fuzzCPlaneSeeds returns encoded well-formed C-plane messages of both
// section types, so the fuzzer starts past the framing checks.
func fuzzCPlaneSeeds() [][]byte {
	msgs := []CPlaneMsg{
		{
			Timing:      Timing{Direction: Downlink, PayloadVersion: 1, FrameID: 63, SubframeID: 2, SlotID: 1},
			SectionType: SectionType1,
			Comp:        bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint},
			Sections: []CSection{
				{SectionID: 1, NumPRB: 64, ReMask: 0xfff, NumSymbol: 14, BeamID: 7},
				{SectionID: 2, StartPRB: 64, NumPRB: 209, ReMask: 0xfff, NumSymbol: 14, EF: true},
			},
		},
		{
			Timing:      Timing{Direction: Uplink, PayloadVersion: 1, FilterIndex: 1, FrameID: 9},
			SectionType: SectionType3,
			TimeOffset:  100, FrameStructure: 0x41, CPLength: 20,
			Comp: bfp.Params{IQWidth: 14, Method: bfp.MethodBlockFloatingPoint},
			Sections: []CSection{
				{SectionID: 3, StartPRB: 10, NumPRB: 12, ReMask: 0xfff, NumSymbol: 1, FreqOffset: -3276},
				{SectionID: 4, RB: true, SymInc: true, NumPRB: 273, FreqOffset: 1 << 22},
			},
		},
	}
	var out [][]byte
	for i := range msgs {
		out = append(out, msgs[i].AppendTo(nil))
	}
	return out
}

// FuzzCPlane checks that the C-plane codec never panics on arbitrary bytes
// and that a successful decode is canonical: re-encoding the decoded
// message and decoding again must yield the identical message, with the
// encoded size matching EncodedLen.
func FuzzCPlane(f *testing.F) {
	for _, b := range fuzzCPlaneSeeds() {
		f.Add(b, uint16(273))
		f.Add(b[:len(b)-1], uint16(106))
	}
	f.Add([]byte{}, uint16(0))
	f.Fuzz(func(t *testing.T, data []byte, carrier uint16) {
		carrierPRBs := int(carrier)
		var m CPlaneMsg
		if err := m.DecodeFromBytes(data, carrierPRBs); err != nil {
			return
		}
		enc := m.AppendTo(nil)
		if len(enc) != m.EncodedLen() {
			t.Fatalf("encoded %d bytes, EncodedLen says %d", len(enc), m.EncodedLen())
		}
		var m2 CPlaneMsg
		if err := m2.DecodeFromBytes(enc, carrierPRBs); err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode → encode → decode not a fixed point:\n%+v\n%+v", m, m2)
		}
	})
}

// FuzzUPlane applies the same canonicality property to the U-plane codec;
// here the decoded payloads alias the input, so a fixed-point failure
// would also indicate unsound aliasing.
func FuzzUPlane(f *testing.F) {
	seed := UPlaneMsg{
		Timing: Timing{Direction: Uplink, PayloadVersion: 1, FrameID: 5, SlotID: 3, SymbolID: 7},
		Sections: []USection{
			{SectionID: 1, StartPRB: 8, NumPRB: 2, Comp: bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint},
				Payload: make([]byte, 2*28)},
			{SectionID: 2, StartPRB: 10, NumPRB: 1, Comp: bfp.Params{Method: bfp.MethodNone},
				Payload: make([]byte, 48)},
		},
	}
	b := seed.AppendTo(nil)
	f.Add(b, uint16(273))
	f.Add(b[:len(b)-5], uint16(273))
	f.Add([]byte{}, uint16(0))
	f.Fuzz(func(t *testing.T, data []byte, carrier uint16) {
		carrierPRBs := int(carrier)
		var m UPlaneMsg
		if err := m.DecodeFromBytes(data, carrierPRBs); err != nil {
			return
		}
		enc := m.AppendTo(nil)
		if len(enc) != m.EncodedLen() {
			t.Fatalf("encoded %d bytes, EncodedLen says %d", len(enc), m.EncodedLen())
		}
		var m2 UPlaneMsg
		if err := m2.DecodeFromBytes(enc, carrierPRBs); err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode → encode → decode not a fixed point:\n%+v\n%+v", m, m2)
		}
	})
}

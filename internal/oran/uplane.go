package oran

import "ranbooster/internal/bfp"

// USection is one data section of a U-plane message: a run of PRBs for the
// message's symbol and eAxC, preceded by its compression header.
type USection struct {
	SectionID uint16 // 12 bits; correlates with the C-plane section
	RB        bool   // rb: every other PRB used
	SymInc    bool   // symInc: increment symbol number
	StartPRB  int    // startPrbu: first PRB of the section (10 bits)
	NumPRB    int    // number of PRBs carried (wire 0 = all carrier PRBs)
	Comp      bfp.Params
	// Payload is the compressed PRB data: NumPRB blocks of Comp.PRBSize()
	// bytes. On decode it aliases the input buffer.
	Payload []byte
}

// uSectionFixedLen is the encoded size of a U-plane section header:
// 3 bytes section fields + 1 byte numPrbu + udCompHdr + reserved.
const uSectionFixedLen = 6

// EncodedLen returns the on-wire size of the section.
func (s *USection) EncodedLen() int { return uSectionFixedLen + len(s.Payload) }

// AppendTo serializes the section.
func (s *USection) AppendTo(b []byte) []byte {
	b = appendSectionHdr(b, s.SectionID, s.RB, s.SymInc, uint16(s.StartPRB))
	b = append(b, encodeNumPRB(s.NumPRB), s.Comp.Byte(), 0 /* reserved */)
	return append(b, s.Payload...)
}

// UPlaneMsg is a U-plane (IQ data) message: timing header plus one or more
// data sections. It is the application payload of an eCPRI type-0 PDU.
type UPlaneMsg struct {
	Timing   Timing
	Sections []USection
}

// AppendTo serializes the message.
func (m *UPlaneMsg) AppendTo(b []byte) []byte {
	b = m.Timing.AppendTo(b)
	for i := range m.Sections {
		b = m.Sections[i].AppendTo(b)
	}
	return b
}

// EncodedLen returns the on-wire size of the message.
func (m *UPlaneMsg) EncodedLen() int {
	n := TimingLen
	for i := range m.Sections {
		n += m.Sections[i].EncodedLen()
	}
	return n
}

// DecodeFromBytes parses a U-plane message. Section payload sizes are
// implied by numPrbu and the compression header; carrierPRBs resolves the
// "all PRBs" wire encoding (numPrbu == 0). Section slices and payloads
// alias b. The Sections slice is reused across calls when capacity allows.
func (m *UPlaneMsg) DecodeFromBytes(b []byte, carrierPRBs int) error {
	rest, err := m.Timing.DecodeFromBytes(b)
	if err != nil {
		return err
	}
	m.Sections = m.Sections[:0]
	for len(rest) > 0 {
		if len(rest) < uSectionFixedLen {
			return ErrTruncated
		}
		var s USection
		var start uint16
		s.SectionID, s.RB, s.SymInc, start = decodeSectionHdr((*[3]byte)(rest))
		s.StartPRB = int(start)
		s.NumPRB = decodeNumPRB(rest[3], carrierPRBs)
		s.Comp = bfp.ParamsFromByte(rest[4])
		rest = rest[uSectionFixedLen:]
		plen := s.NumPRB * s.Comp.PRBSize()
		if plen < 0 || plen > len(rest) {
			return ErrTruncated
		}
		s.Payload = rest[:plen:plen]
		rest = rest[plen:]
		m.Sections = append(m.Sections, s)
	}
	if len(m.Sections) == 0 {
		return ErrBadSection
	}
	return nil
}

package oran

import (
	"encoding/binary"

	"ranbooster/internal/bfp"
)

// CSection is one section of a C-plane message: a scheduling instruction
// covering a PRB range over one or more symbols for the message's eAxC.
type CSection struct {
	SectionID uint16 // 12 bits
	RB        bool
	SymInc    bool
	StartPRB  int    // startPrbc
	NumPRB    int    // numPrbc (wire 0 = all carrier PRBs)
	ReMask    uint16 // 12 bits, resource-element mask; 0xfff = all REs
	NumSymbol uint8  // 4 bits, symbols this section applies to
	EF        bool   // extension flag (no extensions implemented)
	BeamID    uint16 // 15 bits
	// FreqOffset is present only in section type 3 (PRACH): the offset of
	// the first RE of the scheduled channel from the carrier center, in
	// half-subcarrier units, as a 24-bit signed value. This is the field
	// the RU-sharing middlebox translates between DU and RU spectra
	// (Appendix A.1.2, equations 5-11).
	FreqOffset int32
}

// Encoded section sizes per section type.
const (
	cSectionLen1 = 8  // type 1
	cSectionLen3 = 12 // type 3: + freqOffset(3) + reserved(1)
)

// CPlaneMsg is a C-plane real-time control message (eCPRI type 2 payload):
// the timing header, a section-type-specific common header, and sections.
type CPlaneMsg struct {
	Timing      Timing
	SectionType uint8 // SectionType1 or SectionType3

	// Type 3 common fields (PRACH).
	TimeOffset     uint16
	FrameStructure uint8
	CPLength       uint16

	Comp     bfp.Params // udCompHdr governing the matching U-plane data
	Sections []CSection
}

// EncodedLen returns the on-wire size of the message.
func (m *CPlaneMsg) EncodedLen() int {
	n := TimingLen + 2 // + numberOfSections + sectionType
	switch m.SectionType {
	case SectionType1:
		n += 2 // udCompHdr + reserved
		n += len(m.Sections) * cSectionLen1
	case SectionType3:
		n += 6 // timeOffset(2) frameStructure(1) cpLength(2) udCompHdr(1)
		n += len(m.Sections) * cSectionLen3
	}
	return n
}

// AppendTo serializes the message.
func (m *CPlaneMsg) AppendTo(b []byte) []byte {
	b = m.Timing.AppendTo(b)
	b = append(b, byte(len(m.Sections)), m.SectionType)
	switch m.SectionType {
	case SectionType1:
		b = append(b, m.Comp.Byte(), 0 /* reserved */)
	case SectionType3:
		b = binary.BigEndian.AppendUint16(b, m.TimeOffset)
		b = append(b, m.FrameStructure)
		b = binary.BigEndian.AppendUint16(b, m.CPLength)
		b = append(b, m.Comp.Byte())
	}
	for i := range m.Sections {
		s := &m.Sections[i]
		b = appendSectionHdr(b, s.SectionID, s.RB, s.SymInc, uint16(s.StartPRB))
		b = append(b, encodeNumPRB(s.NumPRB))
		b = binary.BigEndian.AppendUint16(b, (s.ReMask&0xfff)<<4|uint16(s.NumSymbol&0xf))
		beam := s.BeamID & 0x7fff
		if s.EF {
			beam |= 0x8000
		}
		b = binary.BigEndian.AppendUint16(b, beam)
		if m.SectionType == SectionType3 {
			fo := uint32(s.FreqOffset) & 0xffffff
			b = append(b, byte(fo>>16), byte(fo>>8), byte(fo), 0 /* reserved */)
		}
	}
	return b
}

// DecodeFromBytes parses a C-plane message. carrierPRBs resolves the
// "all PRBs" numPrbc encoding. The Sections slice is reused when capacity
// allows; nothing aliases b after return.
func (m *CPlaneMsg) DecodeFromBytes(b []byte, carrierPRBs int) error {
	rest, err := m.Timing.DecodeFromBytes(b)
	if err != nil {
		return err
	}
	if len(rest) < 2 {
		return ErrTruncated
	}
	nSections := int(rest[0])
	m.SectionType = rest[1]
	rest = rest[2:]
	var secLen int
	switch m.SectionType {
	case SectionType1:
		if len(rest) < 2 {
			return ErrTruncated
		}
		m.Comp = bfp.ParamsFromByte(rest[0])
		m.TimeOffset, m.FrameStructure, m.CPLength = 0, 0, 0
		rest = rest[2:]
		secLen = cSectionLen1
	case SectionType3:
		if len(rest) < 6 {
			return ErrTruncated
		}
		m.TimeOffset = binary.BigEndian.Uint16(rest[0:2])
		m.FrameStructure = rest[2]
		m.CPLength = binary.BigEndian.Uint16(rest[3:5])
		m.Comp = bfp.ParamsFromByte(rest[5])
		rest = rest[6:]
		secLen = cSectionLen3
	default:
		return ErrSectionType
	}
	if len(rest) < nSections*secLen {
		return ErrTruncated
	}
	m.Sections = m.Sections[:0]
	for i := 0; i < nSections; i++ {
		sb := rest[i*secLen : (i+1)*secLen]
		if len(sb) < secLen {
			// Unreachable given the aggregate check above, but keeps the
			// per-section bounds invariant local to the loop body.
			return ErrTruncated
		}
		var s CSection
		var start uint16
		s.SectionID, s.RB, s.SymInc, start = decodeSectionHdr((*[3]byte)(sb))
		s.StartPRB = int(start)
		s.NumPRB = decodeNumPRB(sb[3], carrierPRBs)
		mk := binary.BigEndian.Uint16(sb[4:6])
		s.ReMask = mk >> 4
		s.NumSymbol = uint8(mk) & 0xf
		beam := binary.BigEndian.Uint16(sb[6:8])
		s.EF = beam&0x8000 != 0
		s.BeamID = beam & 0x7fff
		if m.SectionType == SectionType3 {
			fo := uint32(sb[8])<<16 | uint32(sb[9])<<8 | uint32(sb[10])
			s.FreqOffset = int32(fo<<8) >> 8 // sign-extend 24 bits
		}
		m.Sections = append(m.Sections, s)
	}
	if len(m.Sections) == 0 {
		return ErrBadSection
	}
	return nil
}

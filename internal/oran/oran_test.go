package oran

import (
	"bytes"
	"testing"
	"testing/quick"

	"ranbooster/internal/bfp"
	"ranbooster/internal/iq"
)

func bfp9() bfp.Params { return bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint} }

func TestTimingRoundTrip(t *testing.T) {
	// The Fig. 2 capture: Uplink, Frame: 46, Subframe: 9, Slot: 1, Symbol: 13.
	tm := Timing{
		Direction: Uplink, PayloadVersion: 1, FilterIndex: 0,
		FrameID: 46, SubframeID: 9, SlotID: 1, SymbolID: 13,
	}
	buf := tm.AppendTo(nil)
	if len(buf) != TimingLen {
		t.Fatalf("len = %d", len(buf))
	}
	var got Timing
	rest, err := got.DecodeFromBytes(append(buf, 0xff))
	if err != nil {
		t.Fatal(err)
	}
	if got != tm {
		t.Fatalf("round trip: %+v != %+v", got, tm)
	}
	if len(rest) != 1 {
		t.Fatalf("rest = %d", len(rest))
	}
	want := "Uplink, Frame: 46, Subframe: 9, Slot: 1, Symbol: 13"
	if got.String() != want {
		t.Fatalf("String = %q", got.String())
	}
}

func TestTimingRoundTripProperty(t *testing.T) {
	f := func(dir bool, pv, fi, frame, sf, slot, sym uint8) bool {
		tm := Timing{
			PayloadVersion: pv & 0x7, FilterIndex: fi & 0xf,
			FrameID: frame, SubframeID: sf & 0xf, SlotID: slot & 0x3f, SymbolID: sym & 0x3f,
		}
		if dir {
			tm.Direction = Downlink
		}
		var got Timing
		_, err := got.DecodeFromBytes(tm.AppendTo(nil))
		return err == nil && got == tm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTimingTruncated(t *testing.T) {
	var tm Timing
	if _, err := tm.DecodeFromBytes(make([]byte, 3)); err != ErrTruncated {
		t.Fatalf("err = %v", err)
	}
}

func TestSlotAndSymbolKeys(t *testing.T) {
	tm := Timing{FrameID: 5, SubframeID: 2, SlotID: 1, SymbolID: 9}
	if SlotOf(tm) != (Slot{Frame: 5, Subframe: 2, Slot: 1}) {
		t.Fatal("SlotOf")
	}
	if SymbolOf(tm) != (SymbolRef{Slot: Slot{Frame: 5, Subframe: 2, Slot: 1}, Symbol: 9}) {
		t.Fatal("SymbolOf")
	}
}

func makeUPayload(t *testing.T, nPRB int) []byte {
	t.Helper()
	g := iq.NewGrid(nPRB)
	for i := range g {
		g[i][0] = iq.Sample{I: int16(i), Q: int16(-i)}
	}
	buf, err := bfp.CompressGrid(nil, g, bfp9())
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestUPlaneRoundTrip(t *testing.T) {
	payload := makeUPayload(t, 106)
	m := UPlaneMsg{
		Timing: Timing{Direction: Downlink, PayloadVersion: 1, FrameID: 1, SubframeID: 2, SlotID: 0, SymbolID: 3},
		Sections: []USection{{
			SectionID: 7, StartPRB: 0, NumPRB: 106, Comp: bfp9(), Payload: payload,
		}},
	}
	buf := m.AppendTo(nil)
	if len(buf) != m.EncodedLen() {
		t.Fatalf("EncodedLen = %d, wire = %d", m.EncodedLen(), len(buf))
	}
	var got UPlaneMsg
	if err := got.DecodeFromBytes(buf, 106); err != nil {
		t.Fatal(err)
	}
	if got.Timing != m.Timing || len(got.Sections) != 1 {
		t.Fatalf("got %+v", got)
	}
	s := got.Sections[0]
	if s.SectionID != 7 || s.StartPRB != 0 || s.NumPRB != 106 || s.Comp != bfp9() {
		t.Fatalf("section %+v", s)
	}
	if !bytes.Equal(s.Payload, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestUPlaneAllPRBsEncoding(t *testing.T) {
	// 273 PRBs (100 MHz) exceeds the 8-bit numPrbu: wire value must be 0
	// ("all") and decode must resolve it against the carrier size.
	payload := makeUPayload(t, 273)
	m := UPlaneMsg{
		Timing:   Timing{Direction: Uplink, SymbolID: 4},
		Sections: []USection{{NumPRB: 273, Comp: bfp9(), Payload: payload}},
	}
	buf := m.AppendTo(nil)
	if buf[TimingLen+3] != 0 {
		t.Fatalf("numPrbu wire byte = %d, want 0", buf[TimingLen+3])
	}
	var got UPlaneMsg
	if err := got.DecodeFromBytes(buf, 273); err != nil {
		t.Fatal(err)
	}
	if got.Sections[0].NumPRB != 273 {
		t.Fatalf("NumPRB = %d", got.Sections[0].NumPRB)
	}
	// A 100 MHz U-plane frame is a jumbo frame (paper: >7KB).
	if len(buf) < 7000 {
		t.Fatalf("273-PRB message only %d bytes; expected jumbo", len(buf))
	}
}

func TestUPlaneMultiSection(t *testing.T) {
	p1 := makeUPayload(t, 10)
	p2 := makeUPayload(t, 20)
	m := UPlaneMsg{
		Timing: Timing{Direction: Uplink},
		Sections: []USection{
			{SectionID: 1, StartPRB: 0, NumPRB: 10, Comp: bfp9(), Payload: p1},
			{SectionID: 2, StartPRB: 50, NumPRB: 20, Comp: bfp9(), Payload: p2},
		},
	}
	buf := m.AppendTo(nil)
	var got UPlaneMsg
	if err := got.DecodeFromBytes(buf, 106); err != nil {
		t.Fatal(err)
	}
	if len(got.Sections) != 2 {
		t.Fatalf("sections = %d", len(got.Sections))
	}
	if got.Sections[1].StartPRB != 50 || got.Sections[1].NumPRB != 20 {
		t.Fatalf("section 2: %+v", got.Sections[1])
	}
	if !bytes.Equal(got.Sections[1].Payload, p2) {
		t.Fatal("payload 2 mismatch")
	}
}

func TestUPlaneDecodeErrors(t *testing.T) {
	var m UPlaneMsg
	if err := m.DecodeFromBytes(make([]byte, 2), 106); err != ErrTruncated {
		t.Fatalf("short timing: %v", err)
	}
	tm := Timing{}
	onlyTiming := tm.AppendTo(nil)
	if err := m.DecodeFromBytes(onlyTiming, 106); err != ErrBadSection {
		t.Fatalf("no sections: %v", err)
	}
	// Section header claiming more payload than present.
	msg := UPlaneMsg{Sections: []USection{{NumPRB: 50, Comp: bfp9(), Payload: makeUPayload(t, 50)}}}
	buf := msg.AppendTo(nil)
	if err := m.DecodeFromBytes(buf[:len(buf)-10], 106); err != ErrTruncated {
		t.Fatalf("truncated payload: %v", err)
	}
}

func TestCPlaneType1RoundTrip(t *testing.T) {
	m := CPlaneMsg{
		Timing:      Timing{Direction: Downlink, PayloadVersion: 1, FrameID: 9, SubframeID: 3, SlotID: 1, SymbolID: 0},
		SectionType: SectionType1,
		Comp:        bfp9(),
		Sections: []CSection{
			{SectionID: 1, StartPRB: 0, NumPRB: 106, ReMask: 0xfff, NumSymbol: 14, BeamID: 0},
			{SectionID: 2, StartPRB: 106, NumPRB: 100, ReMask: 0xabc, NumSymbol: 2, EF: false, BeamID: 77},
		},
	}
	buf := m.AppendTo(nil)
	if len(buf) != m.EncodedLen() {
		t.Fatalf("EncodedLen = %d, wire = %d", m.EncodedLen(), len(buf))
	}
	var got CPlaneMsg
	if err := got.DecodeFromBytes(buf, 273); err != nil {
		t.Fatal(err)
	}
	if got.Timing != m.Timing || got.SectionType != SectionType1 || got.Comp != m.Comp {
		t.Fatalf("header: %+v", got)
	}
	for i := range m.Sections {
		if got.Sections[i] != m.Sections[i] {
			t.Fatalf("section %d: got %+v want %+v", i, got.Sections[i], m.Sections[i])
		}
	}
}

func TestCPlaneType3RoundTrip(t *testing.T) {
	m := CPlaneMsg{
		Timing:         Timing{Direction: Uplink, FilterIndex: 1, FrameID: 4, SymbolID: 0},
		SectionType:    SectionType3,
		TimeOffset:     1234,
		FrameStructure: 0x41,
		CPLength:       567,
		Comp:           bfp9(),
		Sections: []CSection{
			{SectionID: 3, StartPRB: 0, NumPRB: 12, ReMask: 0xfff, NumSymbol: 1, BeamID: 0, FreqOffset: -3456},
		},
	}
	buf := m.AppendTo(nil)
	if len(buf) != m.EncodedLen() {
		t.Fatalf("EncodedLen = %d, wire = %d", m.EncodedLen(), len(buf))
	}
	var got CPlaneMsg
	if err := got.DecodeFromBytes(buf, 273); err != nil {
		t.Fatal(err)
	}
	if got.TimeOffset != 1234 || got.FrameStructure != 0x41 || got.CPLength != 567 {
		t.Fatalf("type3 common: %+v", got)
	}
	if got.Sections[0].FreqOffset != -3456 {
		t.Fatalf("freqOffset = %d", got.Sections[0].FreqOffset)
	}
}

func TestCPlaneFreqOffsetSignProperty(t *testing.T) {
	f := func(fo int32) bool {
		fo = fo << 8 >> 8 // clamp to 24-bit signed range
		m := CPlaneMsg{
			SectionType: SectionType3,
			Sections:    []CSection{{NumPRB: 1, FreqOffset: fo}},
		}
		var got CPlaneMsg
		if err := got.DecodeFromBytes(m.AppendTo(nil), 273); err != nil {
			return false
		}
		return got.Sections[0].FreqOffset == fo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCPlaneAllPRBs(t *testing.T) {
	m := CPlaneMsg{
		SectionType: SectionType1,
		Sections:    []CSection{{NumPRB: 273, ReMask: 0xfff, NumSymbol: 14}},
	}
	var got CPlaneMsg
	if err := got.DecodeFromBytes(m.AppendTo(nil), 273); err != nil {
		t.Fatal(err)
	}
	if got.Sections[0].NumPRB != 273 {
		t.Fatalf("NumPRB = %d", got.Sections[0].NumPRB)
	}
}

func TestCPlaneDecodeErrors(t *testing.T) {
	var got CPlaneMsg
	if err := got.DecodeFromBytes(make([]byte, 3), 106); err != ErrTruncated {
		t.Fatalf("short: %v", err)
	}
	valid := CPlaneMsg{SectionType: SectionType1, Sections: []CSection{{NumPRB: 1}}}
	buf := valid.AppendTo(nil)
	buf[TimingLen+1] = 9 // patch sectionType to an unsupported value
	if err := got.DecodeFromBytes(buf, 106); err != ErrSectionType {
		t.Fatalf("unsupported type: %v", err)
	}
	ok := CPlaneMsg{SectionType: SectionType1, Sections: []CSection{{NumPRB: 1}, {NumPRB: 2}}}
	full := ok.AppendTo(nil)
	if err := got.DecodeFromBytes(full[:len(full)-4], 106); err != ErrTruncated {
		t.Fatalf("truncated sections: %v", err)
	}
}

func TestCPlaneZeroSections(t *testing.T) {
	m := CPlaneMsg{SectionType: SectionType1}
	var got CPlaneMsg
	if err := got.DecodeFromBytes(m.AppendTo(nil), 106); err != ErrBadSection {
		t.Fatalf("zero sections: %v", err)
	}
}

func TestDirectionString(t *testing.T) {
	if Uplink.String() != "Uplink" || Downlink.String() != "Downlink" {
		t.Fatal("direction names")
	}
}

func BenchmarkUPlaneDecode(b *testing.B) {
	payload := make([]byte, 273*28)
	m := UPlaneMsg{Sections: []USection{{NumPRB: 273, Comp: bfp9(), Payload: payload}}}
	buf := m.AppendTo(nil)
	b.ReportAllocs()
	var got UPlaneMsg
	for i := 0; i < b.N; i++ {
		if err := got.DecodeFromBytes(buf, 273); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPlaneEncode(b *testing.B) {
	m := CPlaneMsg{
		SectionType: SectionType1,
		Comp:        bfp9(),
		Sections:    []CSection{{NumPRB: 273, ReMask: 0xfff, NumSymbol: 14}},
	}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = m.AppendTo(buf[:0])
	}
}

package iq

import (
	"testing"
	"testing/quick"
)

func TestAddSatBasic(t *testing.T) {
	got := AddSat(Sample{I: 100, Q: -50}, Sample{I: 23, Q: 7})
	if got != (Sample{I: 123, Q: -43}) {
		t.Fatalf("got %+v", got)
	}
}

func TestAddSatSaturates(t *testing.T) {
	hi := AddSat(Sample{I: 32000, Q: 0}, Sample{I: 32000, Q: 0})
	if hi.I != 32767 {
		t.Fatalf("positive saturation: %d", hi.I)
	}
	lo := AddSat(Sample{I: -32000, Q: -32768}, Sample{I: -32000, Q: -1})
	if lo.I != -32768 || lo.Q != -32768 {
		t.Fatalf("negative saturation: %+v", lo)
	}
}

func TestAddSatCommutative(t *testing.T) {
	f := func(a, b Sample) bool { return AddSat(a, b) == AddSat(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddSatMonotone(t *testing.T) {
	// Adding a non-negative I component never decreases the result I.
	f := func(a Sample, delta uint8) bool {
		b := Sample{I: int16(delta), Q: 0}
		return AddSat(a, b).I >= a.I
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPRBEnergy(t *testing.T) {
	var p PRB
	if p.Energy() != 0 || !p.IsZero() {
		t.Fatal("zero PRB should have zero energy")
	}
	p[0] = Sample{I: 3, Q: 4}
	if p.Energy() != 25 {
		t.Fatalf("energy = %d, want 25", p.Energy())
	}
	if p.IsZero() {
		t.Fatal("non-zero PRB reported zero")
	}
}

func TestMaxMagnitude(t *testing.T) {
	var p PRB
	p[3] = Sample{I: -30000, Q: 100}
	p[7] = Sample{I: 5, Q: 29999}
	if got := p.MaxMagnitude(); got != 30000 {
		t.Fatalf("MaxMagnitude = %d, want 30000", got)
	}
	p[8] = Sample{I: -32768, Q: 0}
	if got := p.MaxMagnitude(); got != 32768 {
		t.Fatalf("MaxMagnitude = %d, want 32768", got)
	}
}

func TestPRBAddSat(t *testing.T) {
	var a, b PRB
	for i := range a {
		a[i] = Sample{I: int16(i), Q: int16(-i)}
		b[i] = Sample{I: 10, Q: 10}
	}
	a.AddSat(&b)
	for i := range a {
		if a[i].I != int16(i+10) || a[i].Q != int16(10-i) {
			t.Fatalf("sample %d = %+v", i, a[i])
		}
	}
}

func TestScale(t *testing.T) {
	var p PRB
	p[0] = Sample{I: 100, Q: -100}
	p.Scale(1, 2)
	if p[0].I != 50 || p[0].Q != -50 {
		t.Fatalf("half scale: %+v", p[0])
	}
	p[1] = Sample{I: 20000, Q: 0}
	p.Scale(3, 1)
	if p[1].I != 32767 {
		t.Fatalf("scale should saturate: %d", p[1].I)
	}
}

func TestScalePanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var p PRB
	p.Scale(1, 0)
}

func TestGridAddSat(t *testing.T) {
	a, b := NewGrid(4), NewGrid(4)
	a[2][5] = Sample{I: 1, Q: 2}
	b[2][5] = Sample{I: 10, Q: 20}
	a.AddSat(b)
	if a[2][5] != (Sample{I: 11, Q: 22}) {
		t.Fatalf("grid add: %+v", a[2][5])
	}
}

func TestGridAddSatLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewGrid(3).AddSat(NewGrid(4))
}

func TestGridCopyRange(t *testing.T) {
	src := NewGrid(10)
	for i := range src {
		src[i][0] = Sample{I: int16(i + 1)}
	}
	dst := NewGrid(20)
	dst.CopyRange(5, src, 2, 3)
	for i := 0; i < 3; i++ {
		if dst[5+i][0].I != int16(3+i) {
			t.Fatalf("dst[%d] = %+v", 5+i, dst[5+i][0])
		}
	}
	if dst[4][0].I != 0 || dst[8][0].I != 0 {
		t.Fatal("copy touched PRBs outside range")
	}
}

func TestSampleString(t *testing.T) {
	s := Sample{I: -16384, Q: 8192}
	if got := s.String(); got != "(-0.500000+0.250000j)" {
		t.Fatalf("String() = %q", got)
	}
}

// Package iq defines the fixed-point IQ sample representation carried in
// fronthaul U-plane payloads, and the arithmetic RANBooster middleboxes
// perform on it (most importantly the element-wise, per-subcarrier summing
// that merges the uplink signals of a DAS).
//
// Each IQ sample is a complex number whose real (I) and imaginary (Q) parts
// are signed 16-bit fixed-point values, matching the 32-bit-per-sample
// uncompressed format described in §2.2 of the paper. Twelve consecutive
// samples — one per subcarrier — form a physical resource block (PRB).
package iq

import "fmt"

// SubcarriersPerPRB is the number of orthogonal subcarriers (and therefore
// IQ samples per antenna stream) in one physical resource block.
const SubcarriersPerPRB = 12

// Sample is one fixed-point IQ sample: I is the real part, Q the imaginary.
// Full scale is ±32767, i.e. Q15 fixed point.
type Sample struct {
	I int16
	Q int16
}

// String renders the sample in the normalized float form Wireshark uses
// (Fig. 2 of the paper).
func (s Sample) String() string {
	return fmt.Sprintf("(%+.6f%+.6fj)", float64(s.I)/32768, float64(s.Q)/32768)
}

// Energy returns I²+Q² as a widening integer, proportional to the power of
// the subcarrier.
func (s Sample) Energy() int64 {
	return int64(s.I)*int64(s.I) + int64(s.Q)*int64(s.Q)
}

// AddSat returns the saturating sum of two samples. Saturation (rather than
// wraparound) mirrors fixed-point DSP hardware and keeps a merged DAS signal
// monotone in its inputs.
func AddSat(a, b Sample) Sample {
	return Sample{I: satAdd16(a.I, b.I), Q: satAdd16(a.Q, b.Q)}
}

func satAdd16(a, b int16) int16 {
	s := int32(a) + int32(b)
	if s > 32767 {
		return 32767
	}
	if s < -32768 {
		return -32768
	}
	return int16(s)
}

// PRB is the payload of one physical resource block for one antenna stream:
// 12 IQ samples, one per subcarrier.
type PRB [SubcarriersPerPRB]Sample

// AddSat accumulates other into p element-wise with saturation. This is the
// A4 merge operation of the DAS middlebox: summing the uplink IQ samples of
// several RUs on a per-subcarrier basis.
func (p *PRB) AddSat(other *PRB) {
	for i := range p {
		p[i] = AddSat(p[i], other[i])
	}
}

// Energy returns the total sample energy of the PRB.
func (p *PRB) Energy() int64 {
	var e int64
	for i := range p {
		e += p[i].Energy()
	}
	return e
}

// IsZero reports whether every sample in the PRB is zero.
func (p *PRB) IsZero() bool {
	for i := range p {
		if p[i] != (Sample{}) {
			return false
		}
	}
	return true
}

// MaxMagnitude returns the largest absolute I or Q value in the PRB, the
// quantity that determines the BFP exponent.
func (p *PRB) MaxMagnitude() int32 {
	var m int32
	for i := range p {
		if v := abs32(int32(p[i].I)); v > m {
			m = v
		}
		if v := abs32(int32(p[i].Q)); v > m {
			m = v
		}
	}
	return m
}

// abs32 is the branch-free two's-complement absolute value. It is exact for
// every int16-derived input (the only caller widens from int16, so v is
// never math.MinInt32).
func abs32(v int32) int32 {
	s := v >> 31
	return (v ^ s) - s
}

// Scale multiplies every sample by num/den with rounding toward zero and
// saturation. Used to model power scaling when replicating a signal.
func (p *PRB) Scale(num, den int32) {
	if den == 0 {
		panic("iq: Scale by zero denominator")
	}
	for i := range p {
		p[i].I = satI32(int32(p[i].I) * num / den)
		p[i].Q = satI32(int32(p[i].Q) * num / den)
	}
}

func satI32(v int32) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// Grid is a contiguous run of PRBs for one symbol and antenna stream, the
// natural payload unit of a U-plane section.
type Grid []PRB

// NewGrid allocates a zeroed grid of n PRBs.
func NewGrid(n int) Grid { return make(Grid, n) }

// Clear zeroes every PRB in g. Reused scratch grids must be cleared (or
// fully overwritten) before accumulating into them.
func (g Grid) Clear() {
	clear(g)
}

// AddSat accumulates other into g element-wise. Grids must be equal length.
func (g Grid) AddSat(other Grid) {
	if len(g) != len(other) {
		panic(fmt.Sprintf("iq: grid length mismatch %d != %d", len(g), len(other)))
	}
	for i := range g {
		g[i].AddSat(&other[i])
	}
}

// CopyRange copies n PRBs from src starting at srcOff into g at dstOff.
// This is the RU-sharing PRB relocation primitive (Fig. 6): moving a DU's
// PRBs to their position in the shared RU's wider spectrum.
func (g Grid) CopyRange(dstOff int, src Grid, srcOff, n int) {
	copy(g[dstOff:dstOff+n], src[srcOff:srcOff+n])
}

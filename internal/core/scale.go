package core

import "fmt"

// Metro-scale admission (DESIGN.md §6.8): the static eAxC→shard hash
// keys on the RU-port nibble, so at metro scale — hundreds of RUs,
// thousands of antenna-carrier streams — whole classes of streams
// collide on one shard and a single hot cell starves its neighbours.
// ScalePolicy opts the engine into per-stream admission instead: every
// distinct eAxC gets its own SPSC queue, and the shard workers become a
// work-stealing pool that drains whichever streams have backlog
// (per-worker deques, steal-half, hedged pickup of stale streams — see
// wsteal.go for the mechanism and the FIFO argument).

// ScalePolicy defaults and bounds.
const (
	// DefaultStreamRing is the per-stream ingress queue capacity when
	// ScalePolicy.StreamRing is 0.
	DefaultStreamRing = 256
	// DefaultMaxStreams bounds distinct stream queues when
	// ScalePolicy.MaxStreams is 0.
	DefaultMaxStreams = 4096
	// DefaultHedgePolls is the idle-poll age after which a queued stream
	// counts as stale for hedged pickup, when ScalePolicy.HedgeAfterPolls
	// is 0.
	DefaultHedgePolls = 8
	// MaxStreams is the hard ceiling on ScalePolicy.MaxStreams — one
	// queue per possible 16-bit eAxC id.
	MaxStreams = 1 << 16
)

// ScalePolicy groups the metro-scale admission knobs of Config. The zero
// value keeps the classic static eAxC→shard hash — existing deployments
// are untouched.
type ScalePolicy struct {
	// WorkSteal replaces the static eAxC→shard hash with per-stream
	// queues drained by a work-stealing worker pool. Per-eAxC FIFO order
	// and the ≤1 alloc/frame budget are preserved; per-stream state (the
	// sequence tracker, the A3 cache) migrates with the stream, so A3
	// entries written while processing one stream are visible to every
	// later invocation for that stream regardless of which worker runs
	// it.
	//
	// Trade-off: streams are keyed by the full 16-bit eAxC, so tenants
	// that share an RU by addressing the same RU port from different DU
	// ports (distinct eAxC ids) no longer share an A3 cache. Deployments
	// relying on cross-tenant cache hits should keep the hash layout.
	//
	// WorkSteal is incompatible with the shard stall watchdog
	// (SupervisePolicy.StallAfter) and AIMD shedding (watermarks) — both
	// assume the static shard-per-stream layout — and NewEngine rejects
	// the combination with ErrScaleSupervise. Panic isolation composes
	// fine.
	WorkSteal bool
	// StreamRing is the per-stream ingress queue capacity, rounded up to
	// a power of two (default DefaultStreamRing; values above MaxRingSize
	// are rejected with ErrBadRing). Config.CPlaneHeadroom applies per
	// stream queue, clamped to StreamRing/8.
	StreamRing int
	// MaxStreams bounds how many distinct stream queues the pool creates
	// (default DefaultMaxStreams, ceiling MaxStreams — rejected with
	// ErrBadMaxStreams beyond it). Once the pool is at capacity a new
	// eAxC folds onto an existing queue; the fold is stable, so per-eAxC
	// FIFO still holds.
	MaxStreams int
	// HedgeAfterPolls is the overdrive knob: an idle worker that found
	// nothing to steal under the leave-one rule picks up a queued stream
	// anyway once the stream has waited this many pool-wide idle polls —
	// the hedged pickup that keeps a straggler's backlog moving. Negative
	// values are rejected with ErrBadHedge; 0 defaults to
	// DefaultHedgePolls.
	HedgeAfterPolls int
}

// withDefaults resolves zero fields to the documented defaults.
func (p ScalePolicy) withDefaults() ScalePolicy {
	if !p.WorkSteal {
		return p
	}
	if p.StreamRing == 0 {
		p.StreamRing = DefaultStreamRing
	}
	if p.MaxStreams == 0 {
		p.MaxStreams = DefaultMaxStreams
	}
	if p.HedgeAfterPolls == 0 {
		p.HedgeAfterPolls = DefaultHedgePolls
	}
	return p
}

// validate rejects out-of-range knobs with the typed errors of errors.go.
func (p ScalePolicy) validate() error {
	if p.StreamRing < 0 || p.StreamRing > MaxRingSize {
		return fmt.Errorf("%w: stream ring %d", ErrBadRing, p.StreamRing)
	}
	if p.MaxStreams < 0 || p.MaxStreams > MaxStreams {
		return fmt.Errorf("%w: %d", ErrBadMaxStreams, p.MaxStreams)
	}
	if p.HedgeAfterPolls < 0 {
		return fmt.Errorf("%w: %d", ErrBadHedge, p.HedgeAfterPolls)
	}
	return nil
}

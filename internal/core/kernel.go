package core

import (
	"fmt"

	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/oran"
)

// The XDP half of a middlebox (§5, Fig. 7 right): a restricted rule
// program loaded "at the NIC driver hook". Rules are declarative so they
// can be verified before loading, the way the kernel verifier bounds eBPF:
// matches read only headers (plus BFP exponent bytes, which sit at fixed
// strides), actions rewrite only addressing and eAxC fields, and fan-out
// is bounded. Anything heavier must return VerdictPass, punting the packet
// to the userspace App over the AF_XDP-style handoff.

// KernelVerdict is the outcome of the kernel program for one packet.
type KernelVerdict uint8

// Verdicts, mirroring XDP_PASS / XDP_TX / XDP_DROP.
const (
	VerdictPass KernelVerdict = iota // hand to userspace via AF_XDP
	VerdictTx                        // rewrite and transmit in kernel
	VerdictDrop
)

// Range is an inclusive integer interval used by matches.
type Range struct{ Min, Max int }

// Contains reports whether v lies in the range.
func (r Range) Contains(v int) bool { return v >= r.Min && v <= r.Max }

// Match selects packets. The zero Match matches everything; nil pointer
// fields mean "any".
type Match struct {
	// Src matches the Ethernet source address (nil = any) — how a kernel
	// program tells DU-originated from RU-originated traffic apart.
	Src *eth.MAC
	// Plane filters C- vs U-plane (PlaneUnknown = any).
	Plane fh.Plane
	// Dir filters by data direction (nil = any).
	Dir *oran.Direction
	// FilterIndex filters the timing header's filter index (nil = any);
	// PRACH C/U-plane traffic uses index 1.
	FilterIndex *uint8
	// RUPorts bounds the eAxC RU port (nil = any).
	RUPorts *Range
	// FrameMod/FrameVal match FrameID%FrameMod == FrameVal when FrameMod > 0.
	FrameMod, FrameVal int
	// Subframe / Slot match exact values when non-nil.
	Subframe, Slot *uint8
	// Symbols bounds the symbol id (nil = any).
	Symbols *Range
}

// Matches reports whether the packet satisfies the match.
func (m *Match) Matches(pkt *fh.Packet, t oran.Timing) bool {
	if m.Src != nil && pkt.Eth.Src != *m.Src {
		return false
	}
	if m.Plane != fh.PlaneUnknown && pkt.Plane() != m.Plane {
		return false
	}
	if m.Dir != nil && t.Direction != *m.Dir {
		return false
	}
	if m.FilterIndex != nil && t.FilterIndex != *m.FilterIndex {
		return false
	}
	if m.RUPorts != nil && !m.RUPorts.Contains(int(pkt.EAxC().RUPort)) {
		return false
	}
	if m.FrameMod > 0 && int(t.FrameID)%m.FrameMod != m.FrameVal {
		return false
	}
	if m.Subframe != nil && t.SubframeID != *m.Subframe {
		return false
	}
	if m.Slot != nil && t.SlotID != *m.Slot {
		return false
	}
	if m.Symbols != nil && !m.Symbols.Contains(int(t.SymbolID)) {
		return false
	}
	return true
}

// Rewrite is the header mutation a kernel action may perform.
type Rewrite struct {
	SetDst, SetSrc *eth.MAC
	SetVLAN        *uint16
	// RUPortMap remaps the eAxC RU port: entry i gives the new port for
	// input port i. nil keeps ports untouched.
	RUPortMap *[16]uint8
	// SetDUPort overrides the eAxC DU port field.
	SetDUPort *uint8
}

// apply mutates the packet in place.
func (r *Rewrite) apply(pkt *fh.Packet) {
	if r.SetDst != nil || r.SetSrc != nil || r.SetVLAN != nil {
		dst, src := pkt.Eth.Dst, pkt.Eth.Src
		if r.SetDst != nil {
			dst = *r.SetDst
		}
		if r.SetSrc != nil {
			src = *r.SetSrc
		}
		vlan := -1
		if r.SetVLAN != nil {
			vlan = int(*r.SetVLAN)
		}
		// Addressing was decoded once already; a rewrite on a decoded
		// packet cannot fail.
		if err := pkt.Redirect(dst, src, vlan); err != nil {
			panic("core: kernel rewrite failed: " + err.Error())
		}
	}
	if r.RUPortMap != nil || r.SetDUPort != nil {
		pc := pkt.EAxC()
		if r.RUPortMap != nil {
			pc.RUPort = r.RUPortMap[pc.RUPort&0xf]
		}
		if r.SetDUPort != nil {
			pc.DUPort = *r.SetDUPort
		}
		pkt.SetEAxC(pc)
	}
}

// IdentityPortMap returns a RUPortMap that keeps every port.
func IdentityPortMap() *[16]uint8 {
	var m [16]uint8
	for i := range m {
		m[i] = uint8(i)
	}
	return &m
}

// ExponentStats configures the in-kernel half of Algorithm 1: scan the BFP
// exponent of every PRB in matching U-plane packets and update the shared
// counters "prb.seen.<dir>" and "prb.utilized.<dir>".
type ExponentStats struct {
	// ThrDL / ThrUL are the utilization thresholds of Algorithm 1
	// (exponent strictly greater ⇒ utilized).
	ThrDL, ThrUL uint8
}

// Rule is one verified kernel rule.
type Rule struct {
	Match   Match
	Verdict KernelVerdict
	// Rewrite applies on VerdictTx.
	Rewrite *Rewrite
	// Mirrors emit additional rewritten copies on VerdictTx (bounded; this
	// models XDP clone-and-redirect, used for the dMIMO SSB fan-out).
	Mirrors []Rewrite
	// Exponents, when set, runs the Algorithm 1 scan on the matched packet
	// (valid for U-plane matches only).
	Exponents *ExponentStats
}

// KernelProgram is the ordered rule set; the first matching rule decides.
// A packet matching no rule passes to userspace.
type KernelProgram struct {
	Rules []Rule
}

// Verifier limits, in the spirit of the eBPF verifier's complexity bounds.
const (
	MaxKernelRules   = 64
	MaxKernelMirrors = 4
)

// Verify checks the program against the kernel restrictions. A program
// that fails verification cannot be loaded into an XDP engine.
func (p *KernelProgram) Verify() error {
	if len(p.Rules) == 0 {
		return fmt.Errorf("core: empty kernel program")
	}
	if len(p.Rules) > MaxKernelRules {
		return fmt.Errorf("core: %d rules exceed the %d-rule bound", len(p.Rules), MaxKernelRules)
	}
	for i := range p.Rules {
		r := &p.Rules[i]
		if len(r.Mirrors) > MaxKernelMirrors {
			return fmt.Errorf("core: rule %d: %d mirrors exceed the %d bound", i, len(r.Mirrors), MaxKernelMirrors)
		}
		if r.Verdict == VerdictTx && r.Rewrite == nil && len(r.Mirrors) == 0 {
			return fmt.Errorf("core: rule %d: Tx verdict with no rewrite or mirror", i)
		}
		if r.Verdict != VerdictTx && (r.Rewrite != nil || len(r.Mirrors) > 0) {
			return fmt.Errorf("core: rule %d: rewrite/mirror on non-Tx verdict", i)
		}
		if r.Exponents != nil && r.Match.Plane != fh.PlaneU {
			return fmt.Errorf("core: rule %d: exponent stats require a U-plane match", i)
		}
		if rw := r.Rewrite; rw != nil && rw.SetVLAN != nil && *rw.SetVLAN > 0x0fff {
			return fmt.Errorf("core: rule %d: VLAN %d out of range", i, *rw.SetVLAN)
		}
		for j := range r.Mirrors {
			if v := r.Mirrors[j].SetVLAN; v != nil && *v > 0x0fff {
				return fmt.Errorf("core: rule %d mirror %d: VLAN out of range", i, j)
			}
		}
	}
	return nil
}

// scanExponents runs Algorithm 1 over the packet's U-plane sections,
// returning (seen, utilized) PRB counts. It reads one byte per PRB — the
// udCompParam exponent — exactly the cheap inspection XDP can do. The
// decode message and the exponent buffer come from the worker's scratch,
// so the scan allocates nothing in steady state.
func scanExponents(w *worker, pkt *fh.Packet, carrierPRBs int, es *ExponentStats, t oran.Timing) (seen, utilized int) {
	msg := &w.msgs[0]
	if err := pkt.UPlane(msg, carrierPRBs); err != nil {
		return 0, 0
	}
	thr := es.ThrDL
	if t.Direction == oran.Uplink {
		thr = es.ThrUL
	}
	for i := range msg.Sections {
		s := &msg.Sections[i]
		exps, err := w.txc.Exponents(s.Payload, s.Comp)
		if err != nil {
			continue // not BFP (or an invalid width): nothing to scan
		}
		seen += len(exps)
		for _, e := range exps {
			if e > thr {
				utilized++
			}
		}
	}
	return seen, utilized
}

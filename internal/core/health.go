package core

import "ranbooster/internal/telemetry"

// Health is the graceful-degradation state of a shard (and, max-merged
// across shards, of the whole engine): the coarse signal an operator or a
// control loop reads to decide whether the middlebox is keeping up with a
// misbehaving fronthaul.
type Health uint8

// Health states, ordered by severity (Stats.Add merges them with max).
const (
	// Healthy: the last observation window saw no transport faults and no
	// ring pressure.
	Healthy Health = iota
	// Degraded: the datapath is absorbing transport faults (sequence
	// gaps, duplicates, reordering, corrupted frames) but keeping up.
	Degraded
	// Stalled: a shard is shedding at ingress (ring overflow or U-plane
	// shed) — the datapath is no longer keeping up with offered load.
	Stalled
)

// String names the state.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Stalled:
		return "stalled"
	default:
		return "unknown"
	}
}

// KPIHealth is published on the engine's telemetry bus at every per-shard
// health transition; the sample value is the new Health state.
const KPIHealth = "engine.health"

// healthWindow is the health machine's observation window: the state is
// re-evaluated every healthWindow frames processed by a shard.
const healthWindow = 256

// maxHealth returns the worse of two states.
func maxHealth(a, b Health) Health {
	if a > b {
		return a
	}
	return b
}

// updateHealth re-evaluates the shard's health from the counter deltas of
// the window that just closed: any ring-pressure event escalates straight
// to Stalled, any transport-fault event to at least Degraded, and a clean
// window steps the state down one level (Stalled recovers through
// Degraded, not directly to Healthy). It runs on the shard's consumer
// goroutine only; transitions are published as KPIHealth samples.
//
// Every branch assigns a named Health constant — never arithmetic on the
// current state — so the statemach transition table on shardStats.health
// stays checkable: a new severity level inserted into the enum forces
// every transition here to be revisited instead of silently renumbering
// a `cur - 1` step-down.
func (sh *shard) updateHealth() {
	ring := sh.stats.ringDrops.Load() + sh.stats.shedUPlane.Load() +
		sh.stats.shedPRACH.Load()
	faults := sh.stats.seqGaps.Load() + sh.stats.duplicates.Load() +
		sh.stats.reordered.Load() + sh.stats.invalidFrames.Load() +
		sh.stats.parseError.Load() + sh.stats.appPanics.Load()
	cur := Health(sh.stats.health.Load())
	next := cur
	switch {
	case ring > sh.lastRing:
		next = Stalled
	case faults > sh.lastFaults:
		// Escalate to at least Degraded; an already-Stalled shard stays
		// Stalled until it sees a clean window.
		if cur == Healthy {
			next = Degraded
		}
	case cur == Stalled:
		next = Degraded
	case cur == Degraded:
		next = Healthy
	}
	// A breaker that is Open (or probing Half-Open) means the App is
	// being bypassed: the shard cannot be considered healthy while raw
	// passthrough substitutes for its workload.
	if next == Healthy && BreakerState(sh.brk.state.Load()) != BreakerClosed {
		next = Degraded
	}
	sh.lastRing, sh.lastFaults = ring, faults
	if next == cur {
		return
	}
	sh.stats.health.Store(uint32(next))
	sh.eng.bus.Publish(telemetry.Sample{Name: KPIHealth, At: sh.now(), Value: float64(next)})
}

package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"ranbooster/internal/fh"
	"ranbooster/internal/sim"
	"ranbooster/internal/telemetry"
)

// Engine supervision (DESIGN.md §6.7): the paper's middlebox is a
// transparent bump-in-the-wire — if it misbehaves, the cell goes down —
// so the datapath must never let a buggy or overloaded *app* become the
// single point of failure. Three mechanisms, all opt-in through
// SupervisePolicy and all fail-to-wire (frames keep forwarding):
//
//   - Panic isolation: an App panic is recovered per frame (or per
//     burst), the offending frames are quarantined to raw passthrough,
//     and a per-app circuit breaker trips after PanicBudget panics —
//     Open (passthrough only) → Half-Open (one probe) → Closed.
//   - Shard watchdog: Engine.Supervise detects a worker stuck inside
//     Handle past StallAfter via progress counters and performs a
//     hitless shard restart — the wedged goroutine is abandoned, a
//     fresh worker incarnation takes over the same ingress ring, and
//     frames never popped keep their per-eAxC FIFO order.
//   - Adaptive shedding: an AIMD controller on ring occupancy replaces
//     the static C-plane headroom check, shedding in priority order
//     (U-plane data first, U-plane PRACH only under sustained overload,
//     C-plane never) with hysteresis so clean workloads see zero sheds.

// DefaultBreakerCooldown is the Open → Half-Open delay when panic
// isolation is enabled with SupervisePolicy.BreakerCooldown zero.
const DefaultBreakerCooldown = time.Millisecond

// SupervisePolicy groups the engine-supervision knobs of Config. The
// zero value disables all three mechanisms — today's behavior: panics
// propagate, stalls wedge their shard, and shedding follows the static
// Config.CPlaneHeadroom check.
type SupervisePolicy struct {
	// PanicBudget enables panic isolation when positive: an App panic is
	// recovered, the frame (or burst) is quarantined to raw passthrough
	// (Stats.AppPanics, Stats.Quarantined), and after PanicBudget panics
	// the per-shard circuit breaker opens. 0 disables isolation (panics
	// propagate and crash, as without supervision); negative values are
	// rejected with ErrBadPanicBudget.
	PanicBudget int
	// BreakerCooldown is how long an Open breaker quarantines everything
	// before Half-Open admits one probe invocation. 0 defaults to
	// DefaultBreakerCooldown when PanicBudget is set; negative values are
	// rejected with ErrBadCooldown.
	BreakerCooldown time.Duration
	// StallAfter enables the shard watchdog when positive: a worker that
	// has been inside one Handle/HandleBurst call for StallAfter of
	// virtual time (as observed by Engine.Supervise polls) is declared
	// Stalled and its shard is restarted hitlessly. 0 disables the
	// watchdog; negative values are rejected with ErrBadStallAfter.
	StallAfter time.Duration
	// ShedHighWater / ShedLowWater enable AIMD overload shedding when
	// set: ring occupancy at or above the high water mark additively
	// raises the shed level, occupancy at or below the low water mark
	// multiplicatively decays it (hysteresis — between the marks the
	// level holds). Both zero disables AIMD and keeps the static
	// CPlaneHeadroom check; otherwise 0 <= low < high <= 1 is required
	// (ErrBadShedWater).
	ShedHighWater float64
	ShedLowWater  float64
}

// withDefaults resolves zero fields to the documented defaults.
func (p SupervisePolicy) withDefaults() SupervisePolicy {
	if p.PanicBudget > 0 && p.BreakerCooldown == 0 {
		p.BreakerCooldown = DefaultBreakerCooldown
	}
	return p
}

// validate rejects out-of-range knobs with the typed errors of errors.go.
func (p SupervisePolicy) validate() error {
	if p.PanicBudget < 0 {
		return fmt.Errorf("%w: %d", ErrBadPanicBudget, p.PanicBudget)
	}
	if p.BreakerCooldown < 0 {
		return fmt.Errorf("%w: %v", ErrBadCooldown, p.BreakerCooldown)
	}
	if p.StallAfter < 0 {
		return fmt.Errorf("%w: %v", ErrBadStallAfter, p.StallAfter)
	}
	if p.ShedHighWater != 0 || p.ShedLowWater != 0 {
		if p.ShedLowWater < 0 || p.ShedLowWater >= p.ShedHighWater || p.ShedHighWater > 1 {
			return fmt.Errorf("%w: low %.3f high %.3f", ErrBadShedWater, p.ShedLowWater, p.ShedHighWater)
		}
	}
	return nil
}

// aimd reports whether adaptive shedding is enabled.
func (p SupervisePolicy) aimd() bool { return p.ShedHighWater > 0 }

// BreakerState is the circuit breaker's position, ordered by severity so
// Stats.Add merges shard states with max.
type BreakerState uint8

// Breaker states.
const (
	// BreakerClosed: invocations flow to the App normally.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the cooldown elapsed; the next invocation is a
	// probe — success closes the breaker, a panic re-opens it.
	BreakerHalfOpen
	// BreakerOpen: the panic budget is exhausted; every frame is
	// quarantined to raw passthrough without invoking the App.
	BreakerOpen
)

// String names the state.
func (b BreakerState) String() string {
	switch b {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// KPIBreaker is published on the engine's telemetry bus at every breaker
// transition; the sample value is the new BreakerState.
const KPIBreaker = "engine.breaker"

// errShardRetired unwinds an abandoned worker goroutine: after a
// restart bumped the shard's epoch, the old incarnation's first step
// back from the App (or out of its idle block) panics with this
// sentinel and worker.retire exits the goroutine quietly.
var errShardRetired = errors.New("core: shard worker retired by supervisor")

// breaker is one shard's circuit breaker. state/openedAt are atomics —
// the worker trips and probes, Engine.Supervise thaws, Snapshot reads —
// while panics is touched only by worker incarnations (handoff between
// incarnations is ordered by the supervision mutex).
type breaker struct {
	// state is the trip/probe/recover cycle: the worker trips (any state
	// can reach Open), Supervise or an admitting worker thaws
	// Open->HalfOpen after the cooldown, and the probe outcome settles
	// HalfOpen back to Closed (success) or Open (another panic).
	//
	//ranvet:statemach BreakerClosed->BreakerOpen BreakerHalfOpen->BreakerOpen BreakerOpen->BreakerHalfOpen BreakerHalfOpen->BreakerClosed
	state    atomic.Uint32
	openedAt atomic.Int64
	// panics counts budget consumed since the last clean probe/trip.
	panics int
}

// AIMD curve constants. The shed level lives in [0, aimdMax]: the
// fraction min(level, 1) of U-plane data frames is shed, and only the
// excess above 1 — sustained overload that data shedding alone did not
// relieve — sheds PRACH. C-plane is never shed.
const (
	aimdStep  = 1.0 / 16 // additive increase per admission at/above high water
	aimdDecay = 0.5      // multiplicative decrease per admission at/below low water
	aimdMax   = 2.0
	aimdFloor = 1.0 / 1024 // below this the level snaps to zero
)

// aimdState is the producer-side AIMD shedding controller. All fields
// are touched only from the ingress (producer) goroutine; shedding is
// deterministic — a credit accumulator, not a random draw — so seeded
// runs replay bit-identically.
type aimdState struct {
	high, low float64
	level     float64
	// acc / accPr are the shed-credit accumulators for U-plane data and
	// PRACH respectively: each sheddable frame adds its shed probability,
	// and a whole credit sheds one frame.
	acc, accPr float64
}

// shed applies the AIMD controller to one arriving frame, reporting true
// when the frame is shed (with the shed accounted).
func (sh *shard) shed(frame []byte) bool {
	a := sh.aimd
	occ := float64(sh.in.queued()) / float64(len(sh.in.buf))
	switch {
	case occ >= a.high:
		if a.level += aimdStep; a.level > aimdMax {
			a.level = aimdMax
		}
	case occ <= a.low:
		if a.level *= aimdDecay; a.level < aimdFloor {
			a.level = 0
		}
	}
	if a.level == 0 {
		return false
	}
	plane, prach := fh.PeekShedClass(frame)
	if plane == fh.PlaneC {
		return false // C-plane is never shed: a lost C-plane wedges a slot's schedule
	}
	if prach {
		p := a.level - 1
		if p <= 0 {
			return false // PRACH sheds only under sustained overload
		}
		if a.accPr += p; a.accPr >= 1 {
			a.accPr--
			sh.stats.shedPRACH.Add(1)
			return true
		}
		return false
	}
	p := a.level
	if p > 1 {
		p = 1
	}
	if a.acc += p; a.acc >= 1 {
		a.acc--
		sh.stats.shedUPlane.Add(1)
		return true
	}
	return false
}

// Supervise runs one management-plane supervision poll: it thaws open
// breakers whose cooldown elapsed and restarts shards whose worker has
// been stuck inside one App invocation for SupervisePolicy.StallAfter.
// Call it periodically (e.g. from a sim.Ticker) on the producer/
// scheduler goroutine — the same single-caller contract as Ingress. It
// is a no-op in deterministic inline mode, where an App stall would
// block the caller itself and the breaker thaws on the datapath.
func (e *Engine) Supervise() {
	if !e.parallel {
		return
	}
	now := e.sched.Now()
	sup := e.cfg.Supervise
	for _, sh := range e.shards {
		if sup.PanicBudget > 0 {
			sh.thawBreaker(now)
		}
		if sup.StallAfter <= 0 {
			continue
		}
		// Progress counters, not timestamps: worker clocks are frozen in
		// parallel mode, so "stuck" means the invocation counter advanced
		// past the completion counter and stayed there across polls.
		w := sh.w
		seq, done := w.appSeq.Load(), w.appDone.Load()
		if seq == done {
			sh.wdSince = 0
			continue
		}
		if seq != sh.wdLastSeq || sh.wdSince == 0 {
			sh.wdLastSeq, sh.wdSince = seq, now
			continue
		}
		if now.Sub(sh.wdSince) >= sup.StallAfter {
			e.restartShard(sh, now)
		}
	}
}

// thawBreaker moves an Open breaker whose cooldown elapsed to Half-Open.
// Supervisor-side counterpart of the worker's breakerAdmits thaw: in
// parallel mode the workers' clocks are frozen, so only the supervisor
// observes virtual time advancing.
func (sh *shard) thawBreaker(now sim.Time) {
	b := &sh.brk
	if BreakerState(b.state.Load()) != BreakerOpen {
		return
	}
	if now.Sub(sim.Time(b.openedAt.Load())) < sh.eng.cfg.Supervise.BreakerCooldown {
		return
	}
	if b.state.CompareAndSwap(uint32(BreakerOpen), uint32(BreakerHalfOpen)) {
		sh.eng.bus.Publish(telemetry.Sample{Name: KPIBreaker, At: now, Value: float64(BreakerHalfOpen)})
	}
}

// restartShard performs the hitless shard restart: under the supervision
// mutex it re-checks the stall, bumps the shard's epoch (which retires
// the wedged goroutine at its first step back into datapath code),
// installs a fresh worker incarnation over the same ingress ring, and
// respawns. Frames still queued in the ring were never popped, so their
// per-eAxC FIFO order is untouched; the wedged burst's in-flight frames
// are abandoned with the old incarnation.
func (e *Engine) restartShard(sh *shard, now sim.Time) {
	sh.superMu.Lock()
	w := sh.w
	if w.appSeq.Load() == w.appDone.Load() {
		// The worker escaped the App between our poll and the lock; with
		// the mutex held it cannot be inside the App now — not a stall.
		sh.superMu.Unlock()
		sh.wdSince = 0
		return
	}
	sh.epoch.Add(1)
	sh.stats.shardRestarts.Add(1)
	if Health(sh.stats.health.Load()) != Stalled {
		sh.stats.health.Store(uint32(Stalled))
		e.bus.Publish(telemetry.Sample{Name: KPIHealth, At: now, Value: float64(Stalled)})
	}
	nw := newWorker(sh)
	sh.w = nw
	sh.wdLastSeq, sh.wdSince = 0, 0
	sh.spawn(e.stopc)
	sh.superMu.Unlock()
}

package core

import (
	"fmt"

	"ranbooster/internal/fh"
)

// Burst-mode datapath knobs and the burst-aware App extension (DESIGN.md
// §6.6). The shard loop dequeues vectors of frames per poll and amortizes
// per-frame dispatch overhead — ring wakeups, cadence checks, trace
// stamping, counter adds — across the vector, the DPDK burst-processing
// lesson. On an XDP engine the kernel half additionally retires A1/A2-only
// frames entirely in kernel: redirect and replicate verdicts complete
// without constructing a userspace fh.Packet or invoking App.Handle.

// Burst sizing bounds validated by NewEngine.
const (
	// MaxBatch bounds BurstPolicy.Batch — a burst larger than a NIC RX
	// descriptor ring's worth of frames amortizes nothing further.
	MaxBatch = 4096
	// DefaultIdlePolls is the BurstPolicy.MaxIdlePolls default: one empty
	// poll and the worker blocks on its wake channel.
	DefaultIdlePolls = 1
)

// BurstPolicy groups the burst-datapath knobs of Config. The zero value
// keeps the engine's defaults (DefaultBatch-frame bursts, block after one
// empty poll, kernel retirement on), so existing callers need not change.
type BurstPolicy struct {
	// Batch bounds how many frames a worker drains per wakeup; the burst
	// loop amortizes per-frame overhead across the vector. 16-64 is the
	// useful range; 0 defaults to DefaultBatch. Negative values and values
	// above MaxBatch are rejected with ErrBadBatch.
	Batch int
	// MaxIdlePolls is how many consecutive empty polls a parallel worker
	// tolerates (yielding the processor between polls) before blocking on
	// its wake channel. Higher values trade idle CPU for wakeup latency,
	// the poll-versus-interrupt dial of §5. 0 defaults to
	// DefaultIdlePolls; negative values are rejected with ErrBadIdlePolls.
	MaxIdlePolls int
	// DisableKernelRetire turns off in-kernel completion of A1/A2-only
	// frames on an XDP engine: Tx and Drop verdicts then construct the
	// userspace packet exactly as the pre-burst datapath did. The emitted
	// bytes are identical either way; only the per-frame allocation and
	// Stats.KernelRetired attribution differ.
	DisableKernelRetire bool
}

// withDefaults resolves zero fields to the documented defaults.
func (p BurstPolicy) withDefaults() BurstPolicy {
	if p.Batch == 0 {
		p.Batch = DefaultBatch
	}
	if p.MaxIdlePolls == 0 {
		p.MaxIdlePolls = DefaultIdlePolls
	}
	return p
}

// validate rejects out-of-range knobs with the typed errors of errors.go.
func (p BurstPolicy) validate() error {
	if p.Batch < 0 || p.Batch > MaxBatch {
		return fmt.Errorf("%w: %d", ErrBadBatch, p.Batch)
	}
	if p.MaxIdlePolls < 0 {
		return fmt.Errorf("%w: %d", ErrBadIdlePolls, p.MaxIdlePolls)
	}
	return nil
}

// BurstApp is the optional burst-aware extension of App: an App that also
// implements HandleBurst receives each drained burst's userspace frames in
// one call instead of len(pkts) Handle calls, amortizing per-invocation
// overhead (context setup, synchronization, batched service work).
//
// The engine detects the interface at construction. Apps that do not
// implement it keep the exact per-frame Handle contract — the engine's
// internal adapter invokes Handle once per frame of the burst.
//
// # Contract
//
// HandleBurst is called with 1 ≤ len(pkts) ≤ BurstPolicy.Batch packets, in
// ingress order; on a multi-core engine all packets of one call belong to
// one shard (App's concurrency contract applies unchanged). Each packet
// belongs to the handler, exactly as with Handle. Returning an error drops
// the entire burst and counts len(pkts) app errors; for per-packet
// failures that should not discard the rest of the burst, report them with
// Context.PacketError and continue.
type BurstApp interface {
	App
	// HandleBurst processes one drained burst of packets.
	HandleBurst(ctx *Context, pkts []*fh.Packet) error
}

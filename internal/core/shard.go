package core

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ranbooster/internal/bfp"
	"ranbooster/internal/cpu"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/oran"
	"ranbooster/internal/sim"
	"ranbooster/internal/telemetry"
)

// The sharded datapath (§5, §6.4.1: "each CPU core handles only a subset
// of the RU antennas"): the engine owns one shard per configured core,
// and every frame is steered to the shard owning its eAxC RU port. A
// shard has its own ingress ring, CPU core, A3 cache, latency window and
// counters, so distinct antenna-carrier streams process in parallel with
// no shared mutable state while packets of one stream stay in FIFO order.
//
// Two execution modes share the shard code path:
//
//   - deterministic (the default): Ingress drains the shard's ring inline
//     on the caller's goroutine. Under the discrete-event scheduler this
//     reproduces the seed semantics exactly — virtual-time parallelism
//     across cores, bit-identical runs. Inline drains always see bursts of
//     one frame, so burst amortization degenerates to the per-frame path.
//   - parallel (Start/Stop): one worker goroutine per shard drains its
//     ring in bursts of up to BurstPolicy.Batch frames per poll, for real
//     wall-clock parallelism. Virtual time is frozen while workers run.
//
// The burst pipeline (DESIGN.md §6.6) runs in two halves. processBurst
// decodes each dequeued frame into the shard's pooled packet scratch and
// lets the kernel program retire A1/A2-only frames on the spot; frames
// bound for userspace are parked on the pend list. flushApp then delivers
// the parked frames — one HandleBurst call for a BurstApp, or per-frame
// Handle calls through the adapter loop — and a retired frame always
// flushes the parked frames first, so kernel completions never overtake
// userspace completions and per-stream FIFO order survives mixed verdicts.

// ring is a bounded single-producer/single-consumer frame queue — the
// software equivalent of a per-core NIC RX descriptor ring. push is safe
// only from one producer goroutine, pop/popN only from one consumer; the
// two may run concurrently.
type ring struct {
	buf [][]byte
	// ts is the enqueue-timestamp sidecar for the trace collector: slot i
	// carries the virtual instant buf[i] was pushed. It shares the ring's
	// SPSC discipline (the producer stamps before publishing tail, the
	// consumer reads before advancing head), so tracing adds one store to
	// push and no synchronization.
	ts   []sim.Time
	mask uint64

	head atomic.Uint64 // consumer cursor: next slot to pop
	_    [56]byte      // keep the cursors on separate cache lines
	tail atomic.Uint64 // producer cursor: next slot to fill
	_    [56]byte
}

// newRing allocates a ring with capacity rounded up to a power of two.
func newRing(size int) *ring {
	n := 1
	for n < size {
		n <<= 1
	}
	return &ring{buf: make([][]byte, n), ts: make([]sim.Time, n), mask: uint64(n - 1)}
}

// push enqueues a frame stamped with its arrival instant, reporting false
// when the ring is full.
//
//ranvet:spsc produce
func (r *ring) push(frame []byte, at sim.Time) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = frame
	r.ts[t&r.mask] = at
	r.tail.Store(t + 1)
	return true
}

// pop dequeues the oldest frame and its enqueue stamp, reporting false
// when the ring is empty.
//
//ranvet:spsc consume
func (r *ring) pop() ([]byte, sim.Time, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil, 0, false
	}
	f := r.buf[h&r.mask]
	at := r.ts[h&r.mask]
	r.buf[h&r.mask] = nil
	r.head.Store(h + 1)
	return f, at, true
}

// popN bulk-dequeues up to len(frames) queued frames and their enqueue
// stamps into the caller's vectors, returning how many were dequeued. One
// head load, one publish: the burst equivalent of a NIC RX burst read,
// paying the cross-core cursor synchronization once per vector instead of
// once per frame.
//
//ranvet:spsc consume
func (r *ring) popN(frames [][]byte, stamps []sim.Time) int {
	h := r.head.Load()
	n := int(r.tail.Load() - h)
	if n == 0 {
		return 0
	}
	if n > len(frames) {
		n = len(frames)
	}
	for i := 0; i < n; i++ {
		idx := (h + uint64(i)) & r.mask
		frames[i] = r.buf[idx]
		stamps[i] = r.ts[idx]
		r.buf[idx] = nil
	}
	r.head.Store(h + uint64(n))
	return n
}

// queued reports how many frames are waiting (approximate under
// concurrent access).
func (r *ring) queued() int { return int(r.tail.Load() - r.head.Load()) }

// shardStats is the atomic mirror of Stats one shard accumulates. The
// owning worker writes the datapath counters; ringDrops, shedUPlane and
// shedPRACH are written by the producer (Ingress). Snapshot merges all
// shards.
type shardStats struct {
	rxFrames, txFrames, parseError  atomic.Uint64
	kernelTx, kernelDrop, punts     atomic.Uint64
	kernelRetired                   atomic.Uint64
	appDrops, appErrors, ringDrops  atomic.Uint64
	shedUPlane, seqGaps, duplicates atomic.Uint64
	reordered, invalidFrames        atomic.Uint64
	appPanics, quarantined          atomic.Uint64
	shardRestarts, shedPRACH        atomic.Uint64
	steals                          atomic.Uint64
	// health is the graceful-degradation ladder (health.go): escalation
	// may skip levels, recovery steps through Degraded one window at a
	// time, and a supervisor restart lands on Stalled.
	//
	//ranvet:statemach Healthy->Degraded Healthy->Stalled Degraded->Stalled Degraded->Healthy Stalled->Degraded
	health atomic.Uint32
}

func (s *shardStats) snapshot() Stats {
	return Stats{
		RxFrames:      s.rxFrames.Load(),
		TxFrames:      s.txFrames.Load(),
		ParseError:    s.parseError.Load(),
		KernelTx:      s.kernelTx.Load(),
		KernelDrop:    s.kernelDrop.Load(),
		KernelRetired: s.kernelRetired.Load(),
		Punts:         s.punts.Load(),
		AppDrops:      s.appDrops.Load(),
		AppErrors:     s.appErrors.Load(),
		RingDrops:     s.ringDrops.Load(),
		ShedUPlane:    s.shedUPlane.Load(),
		SeqGaps:       s.seqGaps.Load(),
		Duplicates:    s.duplicates.Load(),
		Reordered:     s.reordered.Load(),

		InvalidFrames: s.invalidFrames.Load(),
		AppPanics:     s.appPanics.Load(),
		Quarantined:   s.quarantined.Load(),
		ShardRestarts: s.shardRestarts.Load(),
		ShedPRACH:     s.shedPRACH.Load(),
		Steals:        s.steals.Load(),
		Health:        Health(s.health.Load()),
	}
}

// pendFrame is one decoded frame parked between the kernel half of the
// burst pipeline and the userspace flush: the fresh packet plus everything
// the flush needs to charge and trace it (the costs accrued so far, its
// identity class, and its timestamps).
type pendFrame struct {
	pkt     *fh.Packet
	class   TrafficClass
	enq     sim.Time
	arrival sim.Time
	// decode is the frame's parse(+driver) cost, without the interrupt-
	// wake surcharge — that is resolved at charge time (see chargeStart).
	// kernel includes the rule-program evaluation and, for punts, the
	// AF_XDP handoff.
	decode, kernel time.Duration
}

// shard is one worker's slice of the datapath: the shared half — ring,
// stats, health, latency windows, sequence tracking, supervision state —
// that survives worker restarts. The scratch an App can reach through
// its Context lives on the worker incarnation instead (see worker), so
// a wedged goroutine abandoned by the watchdog can never race a fresh
// incarnation on shared mutable state.
type shard struct {
	id   int
	eng  *Engine
	core *cpu.Core
	in   *ring
	// seq holds the last eCPRI sequence number seen per source stream —
	// the middlebox-side view of a Builder's per-eAxC counter. Frames of
	// one stream always land on one shard (shardFor keys on the eAxC RU
	// port), so the map needs no lock.
	seq map[seqKey]uint8
	// lastRing / lastFaults are the counter totals at the previous health
	// window boundary (consumer goroutine only; see updateHealth).
	lastRing, lastFaults uint64
	// tracer is the shard's trace instrument (span ring + stage/action
	// histograms), nil when tracing is off. Set at construction or by
	// Engine.EnableTracing (never while workers run), so both the producer
	// (enqueue stamping) and the consumer read a stable pointer.
	tracer *telemetry.Tracer

	stats shardStats
	latMu sync.Mutex
	lat   [classCount][]time.Duration

	// kpkt is the shard's pooled decode packet: every frame is dissected
	// into it first, and only frames that cross into userspace are copied
	// out to a fresh allocation. Kernel-retired and passthrough frames
	// live and die in this scratch — zero allocations. It is safe to keep
	// on the shard across restarts: an abandoned worker executes no
	// datapath code after retirement, and the App never sees it.
	kpkt fh.Packet
	// burstFrames/burstTs receive each popN vector; pend parks decoded
	// userspace-bound frames until the flush; spanBuf collects the
	// burst's spans for one batched Tracer record. All are consumer-
	// goroutine scratch sized by BurstPolicy.Batch and reused burst after
	// burst (a fresh worker incarnation resets them before use).
	burstFrames [][]byte
	burstTs     []sim.Time
	pend        []pendFrame
	spanBuf     []telemetry.Span
	// passthrough and kernelEmits are consumer-goroutine scratch for the
	// kernel-only paths: both are handed to emitAll and fully consumed
	// before the next frame, so the storage is reused, never reallocated.
	passthrough [1]*fh.Packet
	kernelEmits []*fh.Packet
	// stealBuf is the worker's steal scratch (work-stealing layout only):
	// one steal's stream pointers pass through here between the victim
	// unlock and the own-deque append, reused steal after steal.
	stealBuf []*streamQ

	// w is the current worker incarnation. Written at construction and by
	// restartShard (scheduler goroutine, under superMu); read by the
	// producer (inline drains, supervision polls) on the same goroutine,
	// so no synchronization is needed — parallel workers never read it.
	w *worker
	// epoch is bumped by restartShard; a worker whose epoch trails it is
	// abandoned and unwinds at its next guard step (see worker.appExit).
	epoch atomic.Uint32
	// superMu is the supervision guard: a watchdog-guarded worker holds
	// it for all datapath work, releasing it only around App invocations
	// and its idle block — exactly the windows a restart may interleave.
	superMu sync.Mutex
	// done closes when the current worker incarnation's goroutine exits;
	// Stop waits on it. Replaced (with sh.w) on restart.
	done chan struct{}
	// brk is the per-shard circuit breaker; it survives restarts.
	brk breaker
	// aimd is the producer-owned adaptive shedding controller, nil unless
	// SupervisePolicy enables AIMD watermarks.
	aimd *aimdState
	// wdLastSeq / wdSince are the watchdog's observation state: the app-
	// invocation counter last seen and the instant it was first seen
	// unfinished (supervisor/producer goroutine only).
	wdLastSeq uint64
	wdSince   sim.Time

	wake chan struct{}
}

// worker is one incarnation of a shard's consumer: everything an App can
// reach through its Context — the reusable context itself, the A3 cache,
// the transcoder and message scratch, the resolved-counter map — plus
// the supervision bookkeeping that decides this incarnation's fate. A
// hitless restart abandons the whole incarnation and builds a fresh one,
// so the wedged goroutine (still inside Handle) can keep touching its
// own scratch without racing the replacement.
type worker struct {
	sh  *shard
	eng *Engine
	// epoch is the shard epoch this incarnation was built under; once the
	// shard moves on, the incarnation's next guard step unwinds it.
	epoch uint32
	// guarded is set at run() entry when the watchdog is enabled: the
	// worker then brackets App invocations and idle blocks with the
	// supervision mutex. Inline drains (deterministic mode, whitebox
	// tests) never set it and pay no synchronization.
	guarded bool
	// isolate is set when SupervisePolicy.PanicBudget > 0 and an App is
	// configured: App invocations run under a recover and feed the
	// circuit breaker.
	isolate bool
	// appSeq / appDone are the watchdog's progress counters: appSeq
	// increments entering an App invocation, appDone leaving it. Stuck
	// means appSeq != appDone with appSeq unchanged across two polls.
	appSeq, appDone atomic.Uint64
	// seq is the sequence-tracking table trackSeq writes: the shard's
	// own table in the hash layout, swapped to the running stream's
	// private table by the work-stealing drains.
	seq map[seqKey]uint8

	// ctx is the worker's reusable app context. The App contract (see
	// Context) says the value is valid only for the duration of Handle,
	// so the single consumer goroutine resets and hands out the same
	// allocation for every frame; only the emits backing array survives
	// a reset, trimmed to length zero.
	ctx Context
	// cache is the incarnation's private A3 store. Keys embed the eAxC RU
	// port the shard is selected by, so every packet touching a key is
	// processed by the key's owning shard — cache access never locks.
	// A restart forfeits the old incarnation's cached packets (the
	// abandoned App may still hold references into them).
	cache *Cache
	// counters caches resolved handles into the engine's striped store;
	// the map is incarnation-owned, so the hot path pays no lock after
	// the first use of a name.
	counters map[string]*telemetry.Counter
	// txc is the incarnation's BFP transcode scratch, pre-sized to the
	// carrier: grids, payload arena and exponent buffer for the A4 decode
	// → modify → re-encode cycle, reused frame after frame (handed to
	// apps via Context.Transcoder).
	txc *bfp.Transcoder
	// msgs are reusable U-plane message decode slots (the section slices
	// inside are recycled by oran.UPlaneMsg.DecodeFromBytes). Slot 0 is
	// the kernel/app decode scratch, slot 1 the re-encode staging message;
	// handed to apps via Context.UPlaneScratch.
	msgs [2]oran.UPlaneMsg
	// burstPkts is the packet vector handed to a BurstApp (app-reachable,
	// hence per-incarnation), resliced per burst, never grown.
	burstPkts []*fh.Packet
}

func newShard(e *Engine, id int) *shard {
	batch := e.cfg.Burst.Batch
	sh := &shard{
		id:          id,
		eng:         e,
		core:        e.pool.Core(id),
		in:          newRing(e.cfg.RingSize),
		seq:         make(map[seqKey]uint8),
		burstFrames: make([][]byte, batch),
		burstTs:     make([]sim.Time, batch),
		pend:        make([]pendFrame, 0, batch),
		wake:        make(chan struct{}, 1),
	}
	if e.cfg.Scale.WorkSteal {
		sh.stealBuf = make([]*streamQ, wsStealMax)
	}
	if e.cfg.Trace {
		sh.tracer = telemetry.NewTracer(e.cfg.TraceRing)
		sh.spanBuf = make([]telemetry.Span, 0, batch)
	}
	if e.cfg.Supervise.aimd() {
		sh.aimd = &aimdState{high: e.cfg.Supervise.ShedHighWater, low: e.cfg.Supervise.ShedLowWater}
	}
	sh.w = newWorker(sh)
	return sh
}

// newWorker builds a fresh worker incarnation for sh at the shard's
// current epoch, with its own app-reachable scratch, and resets the
// shard-level burst scratch the previous incarnation may have left
// mid-burst.
func newWorker(sh *shard) *worker {
	e := sh.eng
	w := &worker{
		sh:       sh,
		eng:      e,
		epoch:    sh.epoch.Load(),
		isolate:  e.cfg.Supervise.PanicBudget > 0 && e.cfg.App != nil,
		seq:      sh.seq,
		cache:    NewCache(e.cfg.CacheMaxAge),
		counters: make(map[string]*telemetry.Counter),
		txc:      bfp.NewTranscoder(),
	}
	w.txc.Reserve(e.cfg.CarrierPRBs)
	w.burstPkts = make([]*fh.Packet, 0, e.cfg.Burst.Batch)
	for i := range sh.pend {
		sh.pend[i].pkt = nil
	}
	sh.pend = sh.pend[:0]
	sh.spanBuf = sh.spanBuf[:0]
	return w
}

// spawn launches the current worker incarnation's goroutine and arms the
// done channel Stop waits on. Called by Start for the initial workers
// and by restartShard for replacements.
func (sh *shard) spawn(stop <-chan struct{}) {
	done := make(chan struct{})
	sh.done = done
	w := sh.w
	ws := sh.eng.ws != nil
	go func() {
		defer close(done)
		if ws {
			w.runWS(stop)
		} else {
			w.run(stop)
		}
	}()
}

// seqKey identifies one eCPRI sequence stream at a middlebox: each
// transmitter (source MAC) increments an independent SeqID per eAxC.
type seqKey struct {
	src  eth.MAC
	eaxc uint16
}

// admit applies the overload-shedding policy and enqueues the frame,
// reporting false (with the drop accounted) when it was shed or the ring
// was full. With AIMD shedding enabled (SupervisePolicy watermarks) the
// adaptive controller decides — U-plane data first, PRACH only under
// sustained overload, C-plane never. Otherwise the static headroom check
// applies: within the last CPlaneHeadroom free slots only C-plane frames
// are admitted — a U-plane loss costs one symbol of IQ, a C-plane loss
// wedges a slot's schedule — so C-plane is only ever dropped once the
// ring is completely full and every U-plane shed is exhausted.
func (sh *shard) admit(frame []byte) bool {
	if sh.aimd != nil {
		if sh.shed(frame) {
			return false
		}
	} else if h := sh.eng.cfg.CPlaneHeadroom; h > 0 && len(sh.in.buf)-sh.in.queued() <= h {
		if fh.PeekPlane(frame) != fh.PlaneC {
			sh.stats.shedUPlane.Add(1)
			return false
		}
	}
	if !sh.enqueue(frame) {
		sh.stats.ringDrops.Add(1)
		return false
	}
	return true
}

// enqueue pushes the frame on the ingress ring, stamped with the enqueue
// instant when the trace collector is on (untraced frames skip the clock
// read; the stale stamp is never consumed).
func (sh *shard) enqueue(frame []byte) bool {
	var at sim.Time
	if sh.tracer != nil {
		at = sh.now()
	}
	return sh.in.push(frame, at)
}

// trackSeq runs gap detection over the packet's eCPRI sequence number.
// uint8 arithmetic classifies the delta from the stream's last number:
// 0 is a duplicate, 1 in-order, 2..127 a forward jump (delta-1 frames
// missing), >=128 a late frame overtaken by successors (reordered; the
// high-water mark is kept). The table written is w.seq — the shard's own
// in the hash layout, the stream's private table under work stealing —
// so the map never needs a lock in either layout.
func (w *worker) trackSeq(pkt *fh.Packet) {
	sh := w.sh
	key := seqKey{src: pkt.Eth.Src, eaxc: pkt.Ecpri.PcID.Uint16()}
	seq := pkt.Ecpri.SeqID
	last, ok := w.seq[key]
	if !ok {
		w.seq[key] = seq
		return
	}
	switch delta := seq - last; {
	case delta == 0:
		sh.stats.duplicates.Add(1)
	case delta == 1:
		w.seq[key] = seq
	case delta < 128:
		sh.stats.seqGaps.Add(uint64(delta) - 1)
		w.seq[key] = seq
	default:
		sh.stats.reordered.Add(1)
	}
}

// valid guards the datapath against corrupted input: a frame whose
// headers decoded but carry an impossible eCPRI version, an unknown
// plane, or an undecodable radio-application header is counted in
// InvalidFrames and dropped rather than propagated into apps.
func (sh *shard) valid(pkt *fh.Packet) bool {
	if pkt.Ecpri.Version != 1 || pkt.Plane() == fh.PlaneUnknown {
		return false
	}
	_, err := pkt.Timing()
	return err == nil
}

// now reads the shard's time source: the scheduler clock in deterministic
// mode, a frozen instant while parallel workers run.
func (sh *shard) now() sim.Time { return sh.eng.clock.Now() }

func (w *worker) counter(name string) *telemetry.Counter {
	c := w.counters[name]
	if c == nil {
		c = w.eng.counters.Get(name)
		w.counters[name] = c
	}
	return c
}

// wakeUp nudges the shard's worker; a single buffered token makes the
// notification lossless without blocking the producer.
func (sh *shard) wakeUp() {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// drain is the shard-level entry into the current worker incarnation's
// drain loop — the deterministic inline path (and whitebox tests) go
// through here; parallel workers call their own incarnation directly.
func (sh *shard) drain(max int) int { return sh.w.drain(max) }

// drain processes up to max queued frames in bursts and reports how many
// ran. In deterministic mode the ring holds at most the frame Ingress
// just admitted, so every burst is a single frame and the burst path is
// semantically the per-frame path.
func (w *worker) drain(max int) int {
	sh := w.sh
	total := 0
	for total < max {
		want := max - total
		if want > len(sh.burstFrames) {
			want = len(sh.burstFrames)
		}
		//ranvet:allow spscsingle mode-exclusive: the producer reaches drain only through the deterministic inline path, where workers are never spawned
		n := sh.in.popN(sh.burstFrames[:want], sh.burstTs[:want])
		if n == 0 {
			break
		}
		w.processBurst(sh.burstFrames[:n], sh.burstTs[:n])
		total += n
	}
	return total
}

// run is the parallel-mode worker loop: burst dequeue to amortize the
// wakeup, spin through BurstPolicy.MaxIdlePolls empty polls before
// blocking, final-drain on stop so no accepted frame is lost. With the
// watchdog enabled the loop runs under the supervision guard: the mutex
// is held for all datapath work and released only around App invocations
// and the idle block, so a restart can only interleave at those points.
//
//ranvet:hotpath
//ranvet:goroutine shard-worker
func (w *worker) run(stop <-chan struct{}) {
	w.guarded = w.eng.cfg.Supervise.StallAfter > 0
	defer w.retire()
	if w.guarded {
		w.sh.superMu.Lock()
	}
	batch := w.eng.cfg.Burst.Batch
	maxIdle := w.eng.cfg.Burst.MaxIdlePolls
	idle := 0
	for {
		if w.drain(batch) > 0 {
			idle = 0
			continue
		}
		if idle++; idle < maxIdle {
			runtime.Gosched()
			continue
		}
		idle = 0
		w.pauseGuard()
		select {
		case <-w.sh.wake:
			w.resumeGuard()
		case <-stop:
			w.resumeGuard()
			for w.drain(batch) > 0 {
			}
			return
		}
	}
}

// retire is the worker goroutine's exit hatch. A normal return releases
// the supervision guard; the errShardRetired sentinel (thrown by a guard
// step that found the shard's epoch moved on) exits quietly — the guard
// was already released and a fresh incarnation owns the shard; any other
// panic is a real App panic with isolation off and crashes as before.
func (w *worker) retire() {
	r := recover()
	g := w.guarded
	w.guarded = false
	switch r {
	case nil:
		if g {
			w.sh.superMu.Unlock()
		}
	case errShardRetired:
		// Abandoned: the supervisor restarted the shard while this
		// incarnation was wedged. Nothing to release, nothing to drain.
	default:
		panic(r)
	}
}

// appEnter opens an App-invocation window: progress is published for the
// watchdog and the supervision guard is released so a restart can claim
// the shard if this invocation never returns.
func (w *worker) appEnter() {
	if !w.guarded {
		return
	}
	w.appSeq.Add(1)
	w.sh.superMu.Unlock()
}

// appExit closes the window: the guard is re-acquired, and if the shard
// moved to a new epoch while the App ran, this incarnation is abandoned
// and unwinds via errShardRetired.
func (w *worker) appExit() {
	if !w.guarded {
		return
	}
	w.sh.superMu.Lock()
	if w.sh.epoch.Load() != w.epoch {
		w.sh.superMu.Unlock()
		panic(errShardRetired)
	}
	w.appDone.Add(1)
}

// pauseGuard / resumeGuard bracket the idle block the same way appEnter/
// appExit bracket App invocations (without touching the progress
// counters — an idle worker is not stuck).
func (w *worker) pauseGuard() {
	if w.guarded {
		w.sh.superMu.Unlock()
	}
}

func (w *worker) resumeGuard() {
	if !w.guarded {
		return
	}
	w.sh.superMu.Lock()
	if w.sh.epoch.Load() != w.epoch {
		w.sh.superMu.Unlock()
		panic(errShardRetired)
	}
}

// processBurst runs one dequeued vector of frames through the datapath.
// Per-burst overhead is paid once here — the rxFrames counter add, the
// clock read, and the cache-sweep / health cadence checks (which fire when
// the burst crosses a cadence boundary, exactly the frames the per-frame
// modulo checks used to fire on) — then each frame runs the kernel half
// inline and the userspace half is flushed at burst end.
func (w *worker) processBurst(frames [][]byte, stamps []sim.Time) {
	sh := w.sh
	n := uint64(len(frames))
	rx := sh.stats.rxFrames.Add(n)
	now := sh.now()
	if rx/sweepEvery != (rx-n)/sweepEvery {
		w.cache.Sweep(now)
	}
	if rx/healthWindow != (rx-n)/healthWindow {
		sh.updateHealth()
	}
	for i, frame := range frames {
		w.processOne(frame, stamps[i], now)
	}
	w.flushApp()
	sh.flushSpans()
}

// processOne runs one frame of a burst through decode and the kernel
// half. Frames the kernel retires (Tx/Drop) or that bypass userspace
// (no App) complete here against the shard's pooled packet — no
// allocation; frames bound for the App are copied to a fresh packet and
// parked on the pend list for flushApp. enq is the frame's ingress-ring
// enqueue stamp (meaningful only while the trace collector is on); now is
// the burst's arrival instant.
func (w *worker) processOne(frame []byte, enq, now sim.Time) {
	sh := w.sh
	e := w.eng
	kpkt := &sh.kpkt
	if err := kpkt.Decode(frame); err != nil {
		sh.stats.parseError.Add(1)
		return
	}
	if !sh.valid(kpkt) {
		// Dropped wholesale, untracked: a corrupted header's SeqID is not
		// trustworthy, and the stream's next clean frame will surface the
		// consumed sequence number as a gap.
		sh.stats.invalidFrames.Add(1)
		return
	}
	w.trackSeq(kpkt)
	decodeCost := cpu.CostParse
	if e.cfg.Mode == ModeXDP {
		decodeCost += cpu.CostKernelDriver
	}

	class := Classify(kpkt)
	var kernelCost time.Duration
	pkt := kpkt
	if e.cfg.Mode == ModeXDP {
		if e.cfg.Burst.DisableKernelRetire {
			// Pre-burst semantics: every kernel verdict operates on a
			// userspace packet.
			//ranvet:allow alloc kernel retirement disabled by policy: the compatibility path constructs the userspace packet per frame
			pkt = &fh.Packet{}
			*pkt = sh.kpkt
		}
		verdict, kCost, emits := e.runKernel(w, pkt)
		kernelCost = kCost
		switch verdict {
		case VerdictTx:
			// A kernel completion must not overtake parked userspace
			// frames of the same burst: flush them first, then emit.
			w.flushApp()
			sh.stats.kernelTx.Add(1)
			if pkt == kpkt {
				sh.stats.kernelRetired.Add(1)
			}
			start, decode := sh.chargeStart(now, decodeCost)
			cost := decode + kernelCost
			fin := sh.core.Charge(start, cost)
			sh.recordLatency(class, cost)
			sh.stampSpan(pkt, class, enq, start, fin, decode, kernelCost, 0, 0, nil)
			sh.emitAll(emits, fin)
			return
		case VerdictDrop:
			w.flushApp()
			sh.stats.kernelDrop.Add(1)
			if pkt == kpkt {
				sh.stats.kernelRetired.Add(1)
			}
			start, decode := sh.chargeStart(now, decodeCost)
			fin := sh.core.Charge(start, decode+kernelCost)
			sh.stampSpan(pkt, class, enq, start, fin, decode, kernelCost, 0, 0, nil)
			return
		default:
			sh.stats.punts.Add(1)
			// The AF_XDP handoff belongs to the kernel stage: it is the
			// cost of leaving it.
			kernelCost += cpu.CostAFXDPHandoff
		}
	}
	if e.cfg.App == nil {
		// Pure-kernel middlebox with no userspace half: passed packets
		// continue unmodified (the XDP program returned PASS). Nothing
		// retains the packet, so the pooled scratch is emitted directly.
		start, decode := sh.chargeStart(now, decodeCost)
		cost := decode + kernelCost + cpu.CostForward
		fin := sh.core.Charge(start, cost)
		sh.recordLatency(class, cost)
		sh.stampSpan(pkt, class, enq, start, fin, decode, kernelCost, 0, 0, nil)
		sh.passthrough[0] = pkt
		sh.emitAll(sh.passthrough[:], fin)
		return
	}
	if pkt == kpkt {
		// The packet crosses into userspace, which may retain it beyond
		// this burst (A3 caching, A2 replication), so it must be fresh.
		//ranvet:allow alloc the packet must be fresh per userspace frame: A3 caching and A2 replication retain it beyond the burst
		pkt = &fh.Packet{}
		*pkt = sh.kpkt
	}
	w.sh.pend = append(w.sh.pend, pendFrame{
		pkt: pkt, class: class, enq: enq, arrival: now,
		decode: decodeCost, kernel: kernelCost,
	})
}

// chargeStart resolves one frame's service start and final decode cost at
// charge time: the interrupt-wake surcharge of the XDP path applies only
// when the core is genuinely idle at arrival. The first charged frame of
// a wakeup pushes busyUntil past the burst's arrival instant, so followers
// see a busy core and the wake is paid once per wakeup batch.
func (sh *shard) chargeStart(arrival sim.Time, decode time.Duration) (sim.Time, time.Duration) {
	start := sh.core.Acquire(arrival)
	if sh.eng.cfg.Mode == ModeXDP && start == arrival && sh.core.BusyUntil() < arrival {
		decode += cpu.CostInterruptWake
	}
	return start, decode
}

// flushApp delivers the burst's parked userspace frames: one HandleBurst
// call when the App is burst-aware, otherwise per-frame Handle calls
// through the adapter loop. Charging happens here, in frame order, so the
// virtual-time accounting is identical to the pre-burst per-frame path.
// The pend list is empty between bursts and after any kernel completion.
func (w *worker) flushApp() {
	sh := w.sh
	if len(sh.pend) == 0 {
		return
	}
	if w.eng.burst != nil {
		w.flushBurst()
	} else {
		w.flushEach()
	}
	for i := range sh.pend {
		sh.pend[i].pkt = nil
	}
	sh.pend = sh.pend[:0]
}

// invoke runs one guarded, recovered Handle call: the supervision window
// opens around the invocation and any App panic is caught and reported
// instead of unwinding the worker.
func (w *worker) invoke(ctx *Context, pkt *fh.Packet) (err error, panicked bool) {
	w.appEnter()
	err, panicked = w.protectedHandle(ctx, pkt)
	w.appExit()
	return err, panicked
}

// protectedHandle is the recover boundary for per-frame isolation. The
// deferred catchPanic is a plain function call with a stack-resident
// pointer argument, so the quarantine machinery adds no allocation to
// the hot path.
func (w *worker) protectedHandle(ctx *Context, pkt *fh.Packet) (err error, panicked bool) {
	defer catchPanic(&panicked)
	return w.eng.cfg.App.Handle(ctx, pkt), false
}

// invokeBurst is invoke for HandleBurst.
func (w *worker) invokeBurst(ctx *Context, pkts []*fh.Packet) (err error, panicked bool) {
	w.appEnter()
	err, panicked = w.protectedHandleBurst(ctx, pkts)
	w.appExit()
	return err, panicked
}

func (w *worker) protectedHandleBurst(ctx *Context, pkts []*fh.Packet) (err error, panicked bool) {
	defer catchPanic(&panicked)
	return w.eng.burst.HandleBurst(ctx, pkts), false
}

// catchPanic converts a panic into a flag. It must be the directly
// deferred function for recover to engage.
func catchPanic(p *bool) {
	if recover() != nil {
		*p = true
	}
}

// breakerAdmits reports whether the circuit breaker lets an invocation
// through. An Open breaker whose cooldown elapsed thaws to Half-Open here
// on the deterministic path (where the worker's clock advances); in
// parallel mode Engine.Supervise thaws it instead.
func (w *worker) breakerAdmits() bool {
	b := &w.sh.brk
	if BreakerState(b.state.Load()) != BreakerOpen {
		return true
	}
	if w.sh.now().Sub(sim.Time(b.openedAt.Load())) >= w.eng.cfg.Supervise.BreakerCooldown &&
		b.state.CompareAndSwap(uint32(BreakerOpen), uint32(BreakerHalfOpen)) {
		w.publishBreaker(BreakerHalfOpen)
		return true
	}
	return false
}

// notePanic counts a recovered App panic against the breaker budget:
// exhausting the budget — or panicking on a Half-Open probe — opens the
// breaker.
func (w *worker) notePanic() {
	sh := w.sh
	sh.stats.appPanics.Add(1)
	b := &sh.brk
	switch BreakerState(b.state.Load()) {
	case BreakerHalfOpen:
		b.openedAt.Store(int64(sh.now()))
		b.state.Store(uint32(BreakerOpen))
		w.publishBreaker(BreakerOpen)
	case BreakerClosed:
		if b.panics++; b.panics >= w.eng.cfg.Supervise.PanicBudget {
			b.panics = 0
			b.openedAt.Store(int64(sh.now()))
			b.state.Store(uint32(BreakerOpen))
			w.publishBreaker(BreakerOpen)
		}
	}
}

// noteAppOK closes a Half-Open breaker after a successful probe.
func (w *worker) noteAppOK() {
	b := &w.sh.brk
	if BreakerState(b.state.Load()) == BreakerHalfOpen {
		b.panics = 0
		b.state.Store(uint32(BreakerClosed))
		w.publishBreaker(BreakerClosed)
	}
}

func (w *worker) publishBreaker(s BreakerState) {
	w.eng.bus.Publish(telemetry.Sample{Name: KPIBreaker, At: w.sh.now(), Value: float64(s)})
}

// quarantine fails one parked frame to the wire: the packet is forwarded
// raw, untouched by the App — the transparent bump-in-the-wire keeps the
// cell alive even when its workload is misbehaving. The caller has
// already resolved the frame's charge start and decode cost.
func (w *worker) quarantine(p *pendFrame, start sim.Time, decode time.Duration) {
	sh := w.sh
	fin := sh.core.Charge(start, decode+p.kernel+cpu.CostForward)
	sh.stats.quarantined.Add(1)
	sh.stampSpan(p.pkt, p.class, p.enq, start, fin, decode, p.kernel, 0, 0, nil)
	sh.passthrough[0] = p.pkt
	sh.emitAll(sh.passthrough[:], fin)
}

// quarantinePend quarantines every parked frame (breaker open, or a
// HandleBurst panic poisoned the whole burst).
func (w *worker) quarantinePend() {
	sh := w.sh
	for i := range sh.pend {
		p := &sh.pend[i]
		start, decode := sh.chargeStart(p.arrival, p.decode)
		w.quarantine(p, start, decode)
	}
}

// flushEach is the per-frame adapter: Apps without HandleBurst keep the
// exact pre-burst Handle contract — a Context per frame, per-frame error
// accounting, per-frame emission. With panic isolation on, each Handle
// runs recovered: a panicking frame is quarantined to passthrough and
// the rest of the burst proceeds (unless the breaker opened).
func (w *worker) flushEach() {
	sh := w.sh
	e := w.eng
	for i := range sh.pend {
		p := &sh.pend[i]
		start, decode := sh.chargeStart(p.arrival, p.decode)
		base := decode + p.kernel
		ctx := &w.ctx
		*ctx = Context{w: w, now: p.arrival, cost: base, emits: ctx.emits[:0]}
		var err error
		switch {
		case w.isolate:
			if !w.breakerAdmits() {
				w.quarantine(p, start, decode)
				continue
			}
			var panicked bool
			err, panicked = w.invoke(ctx, p.pkt)
			if panicked {
				w.notePanic()
				w.quarantine(p, start, decode)
				continue
			}
			w.noteAppOK()
		case w.guarded:
			w.appEnter()
			err = e.cfg.App.Handle(ctx, p.pkt)
			w.appExit()
		default:
			err = e.cfg.App.Handle(ctx, p.pkt)
		}
		if err != nil {
			sh.stats.appErrors.Add(1)
			fin := sh.core.Charge(start, ctx.cost)
			sh.stampSpan(p.pkt, p.class, p.enq, start, fin, decode, p.kernel, ctx.cost-base, ctx.actions, &ctx.actCost)
			continue
		}
		fin := sh.core.Charge(start, ctx.cost)
		sh.recordLatency(p.class, ctx.cost)
		sh.stampSpan(p.pkt, p.class, p.enq, start, fin, decode, p.kernel, ctx.cost-base, ctx.actions, &ctx.actCost)
		sh.emitAll(ctx.emits, fin)
	}
}

// flushBurst hands the parked frames to the App's HandleBurst in one call.
// The burst shares one Context; its app-stage cost and action attribution
// are amortized equally across the burst's frames for latency samples and
// spans. A handler error drops the whole burst (len(pend) app errors);
// per-packet failures should use Context.PacketError instead. With panic
// isolation on, a HandleBurst panic quarantines the whole burst to
// passthrough — the engine cannot know which packet poisoned it.
func (w *worker) flushBurst() {
	sh := w.sh
	if w.isolate && !w.breakerAdmits() {
		w.quarantinePend()
		return
	}
	// pend never outgrows one burst, so the pre-sized packet vector is
	// resliced, not grown.
	n := len(sh.pend)
	pkts := w.burstPkts[:n]
	var base time.Duration
	start, decode0 := sh.chargeStart(sh.pend[0].arrival, sh.pend[0].decode)
	sh.pend[0].decode = decode0
	for i := range sh.pend {
		p := &sh.pend[i]
		base += p.decode + p.kernel
		pkts[i] = p.pkt
	}
	ctx := &w.ctx
	*ctx = Context{w: w, now: sh.pend[0].arrival, cost: base, emits: ctx.emits[:0]}
	var err error
	switch {
	case w.isolate:
		var panicked bool
		err, panicked = w.invokeBurst(ctx, pkts)
		if panicked {
			w.notePanic()
			// The burst's service start was already acquired; charge the
			// base work plus one forward per quarantined frame, then fail
			// every packet to the wire at that instant.
			fin := sh.core.Charge(start, base+time.Duration(n)*cpu.CostForward)
			sh.stats.quarantined.Add(uint64(n))
			for i := range sh.pend {
				p := &sh.pend[i]
				sh.stampSpan(p.pkt, p.class, p.enq, start, fin, p.decode, p.kernel, 0, 0, nil)
				sh.passthrough[0] = p.pkt
				sh.emitAll(sh.passthrough[:], fin)
			}
			for i := range pkts {
				pkts[i] = nil
			}
			w.burstPkts = pkts[:0]
			return
		}
		w.noteAppOK()
	case w.guarded:
		w.appEnter()
		err = w.eng.burst.HandleBurst(ctx, pkts)
		w.appExit()
	default:
		err = w.eng.burst.HandleBurst(ctx, pkts)
	}
	fin := sh.core.Charge(start, ctx.cost)
	share := (ctx.cost - base) / time.Duration(n)
	var shareCost [telemetry.NumActions]time.Duration
	if sh.tracer != nil {
		for a := range ctx.actCost {
			shareCost[a] = ctx.actCost[a] / time.Duration(n)
		}
	}
	if err != nil {
		sh.stats.appErrors.Add(uint64(n))
		for i := range sh.pend {
			p := &sh.pend[i]
			sh.stampSpan(p.pkt, p.class, p.enq, start, fin, p.decode, p.kernel, share, ctx.actions, &shareCost)
		}
	} else {
		for i := range sh.pend {
			p := &sh.pend[i]
			sh.recordLatency(p.class, p.decode+p.kernel+share)
			sh.stampSpan(p.pkt, p.class, p.enq, start, fin, p.decode, p.kernel, share, ctx.actions, &shareCost)
		}
		sh.emitAll(ctx.emits, fin)
	}
	for i := range pkts {
		pkts[i] = nil
	}
	w.burstPkts = pkts[:0]
}

// stampSpan collects one frame's span into the burst's span buffer when
// the trace collector is on. The stage durations come from the cost model
// (decode, kernel, app); the queue stage is measured from the enqueue
// stamp to service start, so it captures ring residency plus core
// contention; total spans enqueue to egress TX. actions/actCost carry the
// per-action attribution (zero/nil on paths that never reach the App).
// The buffer is recorded in one batch at burst end (flushSpans).
func (sh *shard) stampSpan(pkt *fh.Packet, class TrafficClass, enq, start, fin sim.Time,
	decode, kernel, app time.Duration, actions uint8, actCost *[telemetry.NumActions]time.Duration) {
	if sh.tracer == nil {
		return
	}
	var s telemetry.Span
	s.EAxC = pkt.Ecpri.PcID.Uint16()
	if tm, err := pkt.Timing(); err == nil {
		s.Frame, s.Subframe, s.Slot = tm.FrameID, tm.SubframeID, tm.SlotID
	}
	s.Class = uint8(class)
	s.EnqueuedAt, s.StartAt, s.DoneAt = enq, start, fin
	if start > enq {
		s.Stages[telemetry.StageQueue] = time.Duration(start - enq)
	}
	s.Stages[telemetry.StageDecode] = decode
	s.Stages[telemetry.StageKernel] = kernel
	s.Stages[telemetry.StageApp] = app
	if fin > enq {
		s.Stages[telemetry.StageTotal] = time.Duration(fin - enq)
	}
	s.Actions = actions
	if actCost != nil {
		s.ActionCost = *actCost
	}
	sh.spanBuf = append(sh.spanBuf, s)
}

// flushSpans records the burst's collected spans in one batched Tracer
// call — one ring critical section per burst instead of one per frame.
func (sh *shard) flushSpans() {
	if len(sh.spanBuf) == 0 {
		return
	}
	sh.tracer.RecordBatch(sh.spanBuf)
	sh.spanBuf = sh.spanBuf[:0]
}

// emitAll hands processed packets to the egress. Deterministically they
// are scheduled at their virtual finish time; under parallel workers the
// output function is invoked directly (and must be safe for concurrent
// use).
func (sh *shard) emitAll(pkts []*fh.Packet, at sim.Time) {
	e := sh.eng
	if len(pkts) == 0 {
		return
	}
	sh.stats.txFrames.Add(uint64(len(pkts)))
	for _, p := range pkts {
		frame := p.Frame
		if e.parallel {
			if e.out != nil {
				e.out(frame)
			}
			continue
		}
		//ranvet:allow alloc deterministic mode only: the parallel hot path continues before this branch
		e.sched.At(at, func() {
			if e.out != nil {
				e.out(frame)
			}
		})
	}
}

func (sh *shard) recordLatency(class TrafficClass, d time.Duration) {
	sh.latMu.Lock()
	if len(sh.lat[class]) < 1<<16 { // bound memory on long runs
		sh.lat[class] = append(sh.lat[class], d)
	}
	sh.latMu.Unlock()
}

// latencySamples appends the shard's samples for a class to dst.
func (sh *shard) latencySamples(dst []time.Duration, class TrafficClass) []time.Duration {
	sh.latMu.Lock()
	dst = append(dst, sh.lat[class]...)
	sh.latMu.Unlock()
	return dst
}

func (sh *shard) resetLatency() {
	sh.latMu.Lock()
	for i := range sh.lat {
		sh.lat[i] = sh.lat[i][:0]
	}
	sh.latMu.Unlock()
}

package core

import (
	"sync"
	"sync/atomic"
	"time"

	"ranbooster/internal/bfp"
	"ranbooster/internal/cpu"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/oran"
	"ranbooster/internal/sim"
	"ranbooster/internal/telemetry"
)

// The sharded datapath (§5, §6.4.1: "each CPU core handles only a subset
// of the RU antennas"): the engine owns one shard per configured core,
// and every frame is steered to the shard owning its eAxC RU port. A
// shard has its own ingress ring, CPU core, A3 cache, latency window and
// counters, so distinct antenna-carrier streams process in parallel with
// no shared mutable state while packets of one stream stay in FIFO order.
//
// Two execution modes share the shard code path:
//
//   - deterministic (the default): Ingress drains the shard's ring inline
//     on the caller's goroutine. Under the discrete-event scheduler this
//     reproduces the seed semantics exactly — virtual-time parallelism
//     across cores, bit-identical runs.
//   - parallel (Start/Stop): one worker goroutine per shard drains its
//     ring in batches of up to Config.Batch frames per wakeup, for real
//     wall-clock parallelism. Virtual time is frozen while workers run.

// ring is a bounded single-producer/single-consumer frame queue — the
// software equivalent of a per-core NIC RX descriptor ring. push is safe
// only from one producer goroutine, pop only from one consumer; the two
// may run concurrently.
type ring struct {
	buf [][]byte
	// ts is the enqueue-timestamp sidecar for the trace collector: slot i
	// carries the virtual instant buf[i] was pushed. It shares the ring's
	// SPSC discipline (the producer stamps before publishing tail, the
	// consumer reads before advancing head), so tracing adds one store to
	// push and no synchronization.
	ts   []sim.Time
	mask uint64

	head atomic.Uint64 // consumer cursor: next slot to pop
	_    [56]byte      // keep the cursors on separate cache lines
	tail atomic.Uint64 // producer cursor: next slot to fill
	_    [56]byte
}

// newRing allocates a ring with capacity rounded up to a power of two.
func newRing(size int) *ring {
	n := 1
	for n < size {
		n <<= 1
	}
	return &ring{buf: make([][]byte, n), ts: make([]sim.Time, n), mask: uint64(n - 1)}
}

// push enqueues a frame stamped with its arrival instant, reporting false
// when the ring is full.
func (r *ring) push(frame []byte, at sim.Time) bool {
	t := r.tail.Load()
	if t-r.head.Load() == uint64(len(r.buf)) {
		return false
	}
	r.buf[t&r.mask] = frame
	r.ts[t&r.mask] = at
	r.tail.Store(t + 1)
	return true
}

// pop dequeues the oldest frame and its enqueue stamp, reporting false
// when the ring is empty.
func (r *ring) pop() ([]byte, sim.Time, bool) {
	h := r.head.Load()
	if h == r.tail.Load() {
		return nil, 0, false
	}
	f := r.buf[h&r.mask]
	at := r.ts[h&r.mask]
	r.buf[h&r.mask] = nil
	r.head.Store(h + 1)
	return f, at, true
}

// queued reports how many frames are waiting (approximate under
// concurrent access).
func (r *ring) queued() int { return int(r.tail.Load() - r.head.Load()) }

// shardStats is the atomic mirror of Stats one shard accumulates. The
// owning worker writes the datapath counters; ringDrops and shedUPlane
// are written by the producer (Ingress). Snapshot merges all shards.
type shardStats struct {
	rxFrames, txFrames, parseError  atomic.Uint64
	kernelTx, kernelDrop, punts     atomic.Uint64
	appDrops, appErrors, ringDrops  atomic.Uint64
	shedUPlane, seqGaps, duplicates atomic.Uint64
	reordered, invalidFrames        atomic.Uint64
	health                          atomic.Uint32
}

func (s *shardStats) snapshot() Stats {
	return Stats{
		RxFrames:   s.rxFrames.Load(),
		TxFrames:   s.txFrames.Load(),
		ParseError: s.parseError.Load(),
		KernelTx:   s.kernelTx.Load(),
		KernelDrop: s.kernelDrop.Load(),
		Punts:      s.punts.Load(),
		AppDrops:   s.appDrops.Load(),
		AppErrors:  s.appErrors.Load(),
		RingDrops:  s.ringDrops.Load(),
		ShedUPlane: s.shedUPlane.Load(),
		SeqGaps:    s.seqGaps.Load(),
		Duplicates: s.duplicates.Load(),
		Reordered:  s.reordered.Load(),

		InvalidFrames: s.invalidFrames.Load(),
		Health:        Health(s.health.Load()),
	}
}

// shard is one worker's slice of the datapath.
type shard struct {
	id   int
	eng  *Engine
	core *cpu.Core
	// cache is the shard's private A3 store. Keys embed the eAxC RU port
	// the shard is selected by, so every packet touching a key is
	// processed by the key's owning shard — cache access never locks.
	cache *Cache
	in    *ring
	// counters caches resolved handles into the engine's striped store;
	// the map is shard-owned, so the hot path pays no lock after the
	// first use of a name.
	counters map[string]*telemetry.Counter
	// seq holds the last eCPRI sequence number seen per source stream —
	// the middlebox-side view of a Builder's per-eAxC counter. Frames of
	// one stream always land on one shard (shardFor keys on the eAxC RU
	// port), so the map needs no lock.
	seq map[seqKey]uint8
	// lastRing / lastFaults are the counter totals at the previous health
	// window boundary (consumer goroutine only; see updateHealth).
	lastRing, lastFaults uint64
	// tracer is the shard's trace instrument (span ring + stage/action
	// histograms), nil when tracing is off. Set at construction or by
	// Engine.EnableTracing (never while workers run), so both the producer
	// (enqueue stamping) and the consumer read a stable pointer.
	tracer *telemetry.Tracer

	stats shardStats
	latMu sync.Mutex
	lat   [classCount][]time.Duration

	// ctx is the shard's reusable app context. The App contract (see
	// Context) says the value is valid only for the duration of Handle,
	// so the single consumer goroutine resets and hands out the same
	// allocation for every frame; only the emits backing array survives
	// a reset, trimmed to length zero.
	ctx Context
	// passthrough and kernelEmits are consumer-goroutine scratch for the
	// kernel-only paths: both are handed to emitAll and fully consumed
	// before the next frame, so the storage is reused, never reallocated.
	passthrough [1]*fh.Packet
	kernelEmits []*fh.Packet
	// txc is the shard's BFP transcode scratch, pre-sized to the carrier:
	// grids, payload arena and exponent buffer for the A4 decode → modify
	// → re-encode cycle, reused frame after frame (consumer goroutine
	// only; handed to apps via Context.Transcoder).
	txc *bfp.Transcoder
	// msgs are reusable U-plane message decode slots (the section slices
	// inside are recycled by oran.UPlaneMsg.DecodeFromBytes). Slot 0 is
	// the kernel/app decode scratch, slot 1 the re-encode staging message;
	// handed to apps via Context.UPlaneScratch.
	msgs [2]oran.UPlaneMsg

	wake chan struct{}
}

func newShard(e *Engine, id int) *shard {
	sh := &shard{
		id:       id,
		eng:      e,
		core:     e.pool.Core(id),
		cache:    NewCache(e.cfg.CacheMaxAge),
		in:       newRing(e.cfg.RingSize),
		counters: make(map[string]*telemetry.Counter),
		seq:      make(map[seqKey]uint8),
		txc:      bfp.NewTranscoder(),
		wake:     make(chan struct{}, 1),
	}
	sh.txc.Reserve(e.cfg.CarrierPRBs)
	if e.cfg.Trace {
		sh.tracer = telemetry.NewTracer(e.cfg.TraceRing)
	}
	return sh
}

// seqKey identifies one eCPRI sequence stream at a middlebox: each
// transmitter (source MAC) increments an independent SeqID per eAxC.
type seqKey struct {
	src  eth.MAC
	eaxc uint16
}

// admit applies the overload-shedding policy and enqueues the frame,
// reporting false (with the drop accounted) when it was shed or the ring
// was full. Within the last CPlaneHeadroom free slots only C-plane frames
// are admitted — a U-plane loss costs one symbol of IQ, a C-plane loss
// wedges a slot's schedule — so C-plane is only ever dropped once the
// ring is completely full and every U-plane shed is exhausted.
func (sh *shard) admit(frame []byte) bool {
	if h := sh.eng.cfg.CPlaneHeadroom; h > 0 && len(sh.in.buf)-sh.in.queued() <= h {
		if fh.PeekPlane(frame) != fh.PlaneC {
			sh.stats.shedUPlane.Add(1)
			return false
		}
	}
	if !sh.enqueue(frame) {
		sh.stats.ringDrops.Add(1)
		return false
	}
	return true
}

// enqueue pushes the frame on the ingress ring, stamped with the enqueue
// instant when the trace collector is on (untraced frames skip the clock
// read; the stale stamp is never consumed).
func (sh *shard) enqueue(frame []byte) bool {
	var at sim.Time
	if sh.tracer != nil {
		at = sh.now()
	}
	return sh.in.push(frame, at)
}

// trackSeq runs gap detection over the packet's eCPRI sequence number.
// uint8 arithmetic classifies the delta from the stream's last number:
// 0 is a duplicate, 1 in-order, 2..127 a forward jump (delta-1 frames
// missing), >=128 a late frame overtaken by successors (reordered; the
// high-water mark is kept).
func (sh *shard) trackSeq(pkt *fh.Packet) {
	key := seqKey{src: pkt.Eth.Src, eaxc: pkt.Ecpri.PcID.Uint16()}
	seq := pkt.Ecpri.SeqID
	last, ok := sh.seq[key]
	if !ok {
		sh.seq[key] = seq
		return
	}
	switch delta := seq - last; {
	case delta == 0:
		sh.stats.duplicates.Add(1)
	case delta == 1:
		sh.seq[key] = seq
	case delta < 128:
		sh.stats.seqGaps.Add(uint64(delta) - 1)
		sh.seq[key] = seq
	default:
		sh.stats.reordered.Add(1)
	}
}

// valid guards the datapath against corrupted input: a frame whose
// headers decoded but carry an impossible eCPRI version, an unknown
// plane, or an undecodable radio-application header is counted in
// InvalidFrames and dropped rather than propagated into apps.
func (sh *shard) valid(pkt *fh.Packet) bool {
	if pkt.Ecpri.Version != 1 || pkt.Plane() == fh.PlaneUnknown {
		return false
	}
	_, err := pkt.Timing()
	return err == nil
}

// now reads the shard's time source: the scheduler clock in deterministic
// mode, a frozen instant while parallel workers run.
func (sh *shard) now() sim.Time { return sh.eng.clock.Now() }

func (sh *shard) counter(name string) *telemetry.Counter {
	c := sh.counters[name]
	if c == nil {
		c = sh.eng.counters.Get(name)
		sh.counters[name] = c
	}
	return c
}

// wakeUp nudges the shard's worker; a single buffered token makes the
// notification lossless without blocking the producer.
func (sh *shard) wakeUp() {
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// drain processes up to max queued frames and reports how many ran.
func (sh *shard) drain(max int) int {
	n := 0
	for n < max {
		frame, enq, ok := sh.in.pop()
		if !ok {
			break
		}
		sh.process(frame, enq)
		n++
	}
	return n
}

// run is the parallel-mode worker loop: batched dequeue to amortize the
// wakeup, block when idle, final-drain on stop so no accepted frame is
// lost.
//
//ranvet:hotpath
func (sh *shard) run(stop <-chan struct{}) {
	batch := sh.eng.cfg.Batch
	for {
		if sh.drain(batch) > 0 {
			continue
		}
		select {
		case <-sh.wake:
		case <-stop:
			for sh.drain(batch) > 0 {
			}
			return
		}
	}
}

// process runs one frame through the shard's datapath: decode, optional
// kernel program, userspace App. enq is the frame's ingress-ring enqueue
// stamp (meaningful only while the trace collector is on).
func (sh *shard) process(frame []byte, enq sim.Time) {
	e := sh.eng
	n := sh.stats.rxFrames.Add(1)
	if n%sweepEvery == 0 {
		sh.cache.Sweep(sh.now())
	}
	if n%healthWindow == 0 {
		sh.updateHealth()
	}
	//ranvet:allow alloc the packet must be fresh per frame: A3 caching and A2 replication retain it beyond process
	pkt := &fh.Packet{}
	if err := pkt.Decode(frame); err != nil {
		sh.stats.parseError.Add(1)
		return
	}
	if !sh.valid(pkt) {
		// Dropped wholesale, untracked: a corrupted header's SeqID is not
		// trustworthy, and the stream's next clean frame will surface the
		// consumed sequence number as a gap.
		sh.stats.invalidFrames.Add(1)
		return
	}
	sh.trackSeq(pkt)
	arrival := sh.now()
	start := sh.core.Acquire(arrival)
	decodeCost := cpu.CostParse
	if e.cfg.Mode == ModeXDP {
		decodeCost += cpu.CostKernelDriver
		if start == arrival && sh.core.BusyUntil() < arrival {
			// Interrupt-driven wakeup from idle.
			decodeCost += cpu.CostInterruptWake
		}
	}
	cost := decodeCost

	class := Classify(pkt)
	var kernelCost time.Duration
	if e.cfg.Mode == ModeXDP {
		verdict, kCost, emits := e.runKernel(sh, pkt)
		kernelCost = kCost
		cost += kCost
		switch verdict {
		case VerdictTx:
			sh.stats.kernelTx.Add(1)
			fin := sh.core.Charge(start, cost)
			sh.recordLatency(class, cost)
			sh.traceSpan(pkt, class, enq, start, fin, decodeCost, kernelCost, 0, nil)
			sh.emitAll(emits, fin)
			return
		case VerdictDrop:
			sh.stats.kernelDrop.Add(1)
			fin := sh.core.Charge(start, cost)
			sh.traceSpan(pkt, class, enq, start, fin, decodeCost, kernelCost, 0, nil)
			return
		default:
			sh.stats.punts.Add(1)
			// The AF_XDP handoff belongs to the kernel stage: it is the
			// cost of leaving it.
			kernelCost += cpu.CostAFXDPHandoff
			cost += cpu.CostAFXDPHandoff
		}
	}
	if e.cfg.App == nil {
		// Pure-kernel middlebox with no userspace half: passed packets
		// continue unmodified (the XDP program returned PASS).
		fin := sh.core.Charge(start, cost+cpu.CostForward)
		sh.recordLatency(class, cost+cpu.CostForward)
		sh.traceSpan(pkt, class, enq, start, fin, decodeCost, kernelCost, 0, nil)
		sh.passthrough[0] = pkt
		sh.emitAll(sh.passthrough[:], fin)
		return
	}

	ctx := &sh.ctx
	*ctx = Context{sh: sh, now: sh.now(), cost: cost, emits: ctx.emits[:0]}
	if err := e.cfg.App.Handle(ctx, pkt); err != nil {
		sh.stats.appErrors.Add(1)
		fin := sh.core.Charge(start, ctx.cost)
		sh.traceSpan(pkt, class, enq, start, fin, decodeCost, kernelCost, ctx.cost-cost, ctx)
		return
	}
	fin := sh.core.Charge(start, ctx.cost)
	sh.recordLatency(class, ctx.cost)
	sh.traceSpan(pkt, class, enq, start, fin, decodeCost, kernelCost, ctx.cost-cost, ctx)
	sh.emitAll(ctx.emits, fin)
}

// traceSpan records one frame's span when the trace collector is on. The
// stage durations come from the cost model (decode, kernel, app); the
// queue stage is measured from the enqueue stamp to service start, so it
// captures ring residency plus core contention; total spans enqueue to
// egress TX. ctx carries the per-action attribution (nil on paths that
// never reach the App).
func (sh *shard) traceSpan(pkt *fh.Packet, class TrafficClass, enq, start, fin sim.Time,
	decode, kernel, app time.Duration, ctx *Context) {
	t := sh.tracer
	if t == nil {
		return
	}
	var s telemetry.Span
	s.EAxC = pkt.Ecpri.PcID.Uint16()
	if tm, err := pkt.Timing(); err == nil {
		s.Frame, s.Subframe, s.Slot = tm.FrameID, tm.SubframeID, tm.SlotID
	}
	s.Class = uint8(class)
	s.EnqueuedAt, s.StartAt, s.DoneAt = enq, start, fin
	if start > enq {
		s.Stages[telemetry.StageQueue] = time.Duration(start - enq)
	}
	s.Stages[telemetry.StageDecode] = decode
	s.Stages[telemetry.StageKernel] = kernel
	s.Stages[telemetry.StageApp] = app
	if fin > enq {
		s.Stages[telemetry.StageTotal] = time.Duration(fin - enq)
	}
	if ctx != nil {
		s.Actions = ctx.actions
		s.ActionCost = ctx.actCost
	}
	t.Record(s)
}

// emitAll hands processed packets to the egress. Deterministically they
// are scheduled at their virtual finish time; under parallel workers the
// output function is invoked directly (and must be safe for concurrent
// use).
func (sh *shard) emitAll(pkts []*fh.Packet, at sim.Time) {
	e := sh.eng
	for _, p := range pkts {
		frame := p.Frame
		sh.stats.txFrames.Add(1)
		if e.parallel {
			if e.out != nil {
				e.out(frame)
			}
			continue
		}
		//ranvet:allow alloc deterministic mode only: the parallel hot path continues before this branch
		e.sched.At(at, func() {
			if e.out != nil {
				e.out(frame)
			}
		})
	}
}

func (sh *shard) recordLatency(class TrafficClass, d time.Duration) {
	sh.latMu.Lock()
	if len(sh.lat[class]) < 1<<16 { // bound memory on long runs
		sh.lat[class] = append(sh.lat[class], d)
	}
	sh.latMu.Unlock()
}

// latencySamples appends the shard's samples for a class to dst.
func (sh *shard) latencySamples(dst []time.Duration, class TrafficClass) []time.Duration {
	sh.latMu.Lock()
	dst = append(dst, sh.lat[class]...)
	sh.latMu.Unlock()
	return dst
}

func (sh *shard) resetLatency() {
	sh.latMu.Lock()
	for i := range sh.lat {
		sh.lat[i] = sh.lat[i][:0]
	}
	sh.latMu.Unlock()
}

package core

import (
	"time"

	"ranbooster/internal/fh"
	"ranbooster/internal/sim"
)

// Cache is the A3 packet store: packets keyed by (symbol, eAxC, direction)
// awaiting combination with packets that arrive later or from different
// sources. Entries that are never taken (e.g. a DU that went quiet in the
// RU-sharing scenario) are swept once they exceed MaxAge, so a stalled
// peer cannot leak memory.
type Cache struct {
	// MaxAge bounds how long an entry may wait; symbol-scoped state is
	// stale after a couple of slots.
	MaxAge time.Duration

	entries map[fh.Key]*cacheEntry
	// order is the insertion-order sweep queue: entry stamps are
	// monotone in a run, so expired entries form a prefix and Sweep
	// scans exactly that prefix — never the map, whose iteration order
	// is randomized per process and would make seeded replays diverge.
	// A record whose key was Taken (or re-inserted) in the meantime is
	// recognized by its stale stamp and skipped.
	order []sweepRecord
	swept uint64
}

type cacheEntry struct {
	pkts     []*fh.Packet
	inserted sim.Time
}

// sweepRecord is one insertion event in the sweep queue.
type sweepRecord struct {
	key      fh.Key
	inserted sim.Time
}

// NewCache returns an empty cache with the given entry lifetime.
func NewCache(maxAge time.Duration) *Cache {
	return &Cache{MaxAge: maxAge, entries: make(map[fh.Key]*cacheEntry)}
}

// Put appends a packet under key.
func (c *Cache) Put(key fh.Key, pkt *fh.Packet, now sim.Time) {
	e := c.entries[key]
	if e == nil {
		//ranvet:allow alloc one entry per active (symbol, port) key, reclaimed by Sweep
		e = &cacheEntry{inserted: now}
		c.entries[key] = e
		c.order = append(c.order, sweepRecord{key: key, inserted: now})
	}
	//ranvet:allow alloc the A3 store retains packets beyond the frame; growth is the action's documented cost
	e.pkts = append(e.pkts, pkt)
}

// Peek returns the packets under key without removing them. The returned
// slice must not be retained across further cache operations.
func (c *Cache) Peek(key fh.Key) []*fh.Packet {
	if e := c.entries[key]; e != nil {
		return e.pkts
	}
	return nil
}

// Take removes and returns the packets under key.
func (c *Cache) Take(key fh.Key) []*fh.Packet {
	e := c.entries[key]
	if e == nil {
		return nil
	}
	delete(c.entries, key)
	return e.pkts
}

// Sweep drops entries older than MaxAge and reports how many packets were
// discarded. It walks the insertion-order queue, not the map, so the scan
// touches only the expired prefix and runs identically under a fixed
// seed: map iteration here would randomize nothing observable today, but
// any future per-entry effect (an eviction callback, an early exit)
// would silently start replaying differently.
func (c *Cache) Sweep(now sim.Time) int {
	dropped := 0
	i := 0
	for ; i < len(c.order); i++ {
		rec := c.order[i]
		if now.Sub(rec.inserted) <= c.MaxAge {
			break // stamps are monotone: everything after is fresher
		}
		e := c.entries[rec.key]
		if e == nil || e.inserted != rec.inserted {
			continue // taken, or re-created since this record was queued
		}
		dropped += len(e.pkts)
		delete(c.entries, rec.key)
	}
	if i > 0 {
		c.order = c.order[:copy(c.order, c.order[i:])]
	}
	c.swept += uint64(dropped)
	return dropped
}

// Len reports the number of live keys.
func (c *Cache) Len() int { return len(c.entries) }

// Swept reports the total packets discarded by sweeps.
func (c *Cache) Swept() uint64 { return c.swept }

package core

import "ranbooster/internal/telemetry"

// WriteMetrics exports the engine's datapath counters, health, shared
// counter store and (when tracing is on) the trace histograms in the
// Prometheus text format. Everything it reads is race-safe while parallel
// workers run — it is the scrape handler behind ranboosterd's /metrics.
func (e *Engine) WriteMetrics(p *telemetry.PromWriter) {
	st := e.Snapshot()
	l := telemetry.Labels{"engine": e.cfg.Name, "mode": e.cfg.Mode.String()}
	counters := []struct {
		name, help string
		v          uint64
	}{
		{"ranbooster_rx_frames_total", "frames received by the engine", st.RxFrames},
		{"ranbooster_tx_frames_total", "frames transmitted by the engine", st.TxFrames},
		{"ranbooster_parse_errors_total", "frames dropped with undecodable headers", st.ParseError},
		{"ranbooster_invalid_frames_total", "decoded frames dropped by validity checks", st.InvalidFrames},
		{"ranbooster_kernel_tx_total", "frames transmitted by the kernel rule program", st.KernelTx},
		{"ranbooster_kernel_drop_total", "frames dropped by the kernel rule program", st.KernelDrop},
		{"ranbooster_kernel_retired_total", "frames fully retired in-kernel without a userspace packet", st.KernelRetired},
		{"ranbooster_punts_total", "AF_XDP handoffs to the userspace app", st.Punts},
		{"ranbooster_app_drops_total", "frames dropped by the app (A1)", st.AppDrops},
		{"ranbooster_app_errors_total", "app handler failures", st.AppErrors},
		{"ranbooster_ring_drops_total", "frames dropped on full ingress rings", st.RingDrops},
		{"ranbooster_shed_uplane_total", "U-plane frames shed to preserve C-plane headroom", st.ShedUPlane},
		{"ranbooster_seq_gaps_total", "missing eCPRI sequence numbers", st.SeqGaps},
		{"ranbooster_seq_duplicates_total", "duplicate eCPRI sequence numbers", st.Duplicates},
		{"ranbooster_seq_reordered_total", "late frames behind their stream's high-water mark", st.Reordered},
		{"ranbooster_app_panics_total", "recovered app panics (panic isolation)", st.AppPanics},
		{"ranbooster_quarantined_total", "frames failed to the wire as raw passthrough", st.Quarantined},
		{"ranbooster_shard_restarts_total", "hitless shard restarts by the stall watchdog", st.ShardRestarts},
		{"ranbooster_shed_prach_total", "PRACH frames shed under sustained overload (AIMD)", st.ShedPRACH},
		{"ranbooster_steals_total", "streams taken from another worker's deque (work-stealing admission)", st.Steals},
		{"ranbooster_shed_total", "all U-plane frames shed at ingress (data + PRACH)", st.ShedUPlane + st.ShedPRACH},
	}
	for _, c := range counters {
		p.Counter(c.name, c.help, l, c.v)
	}
	p.Gauge("ranbooster_health", "engine degradation state (0 healthy, rising with severity)", l, float64(st.Health))
	p.Gauge("ranbooster_breaker_state", "panic circuit breaker (0 closed, 1 half-open, 2 open)", l, float64(st.Breaker))
	for _, name := range e.CounterNames() {
		cl := telemetry.Labels{"engine": e.cfg.Name, "mode": e.cfg.Mode.String(), "counter": name}
		p.Counter("ranbooster_app_counter", "shared kernel/userspace counter map entries", cl, e.CounterValue(name))
	}
	if st.Trace != nil {
		p.TraceStats("ranbooster_trace", l, *st.Trace)
	}
}

package core

import (
	"bytes"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"ranbooster/internal/bfp"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/fh"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
	"ranbooster/internal/sim"
)

// burstRecorder is a BurstApp that records how frames were delivered.
type burstRecorder struct {
	sizes   []int // one entry per HandleBurst call
	handled int   // per-frame Handle calls (adapter fallback)
	fail    bool  // HandleBurst returns an error for the whole burst
	failPkt int   // 1-based index within each burst to report via PacketError
}

func (b *burstRecorder) Name() string { return "burst-rec" }

func (b *burstRecorder) Handle(ctx *Context, pkt *fh.Packet) error {
	b.handled++
	ctx.Forward(pkt)
	return nil
}

func (b *burstRecorder) HandleBurst(ctx *Context, pkts []*fh.Packet) error {
	b.sizes = append(b.sizes, len(pkts))
	if b.fail {
		return errors.New("burst boom")
	}
	for i, pkt := range pkts {
		if b.failPkt > 0 && i == b.failPkt-1 {
			ctx.PacketError(pkt, errors.New("pkt boom"))
			continue
		}
		ctx.Forward(pkt)
	}
	return nil
}

func TestBurstPolicyValidation(t *testing.T) {
	s := sim.NewScheduler()
	base := Config{Name: "x", Mode: ModeDPDK, App: &forwarder{}, CarrierPRBs: 106}

	cfg := base
	cfg.Burst = BurstPolicy{Batch: -1}
	if _, err := NewEngine(s, cfg); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("negative batch: got %v, want ErrBadBatch", err)
	}
	cfg.Burst = BurstPolicy{Batch: MaxBatch + 1}
	if _, err := NewEngine(s, cfg); !errors.Is(err, ErrBadBatch) {
		t.Fatalf("oversized batch: got %v, want ErrBadBatch", err)
	}
	cfg.Burst = BurstPolicy{MaxIdlePolls: -1}
	if _, err := NewEngine(s, cfg); !errors.Is(err, ErrBadIdlePolls) {
		t.Fatalf("negative idle polls: got %v, want ErrBadIdlePolls", err)
	}

	// The zero value resolves to the documented defaults.
	e, err := NewEngine(s, base)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.cfg.Burst; got.Batch != DefaultBatch || got.MaxIdlePolls != DefaultIdlePolls || got.DisableKernelRetire {
		t.Fatalf("zero BurstPolicy resolved to %+v", got)
	}
	if _, err := NewEngine(s, Config{Name: "x", Mode: ModeDPDK, App: &forwarder{},
		CarrierPRBs: 106, Burst: BurstPolicy{Batch: MaxBatch, MaxIdlePolls: 8}}); err != nil {
		t.Fatalf("in-range policy rejected: %v", err)
	}
}

// drainDirect enqueues the frames on shard 0 and drains them as one burst
// through the direct-emit (parallel) path, without worker goroutines —
// the deterministic inline path always sees 1-frame bursts, so burst
// delivery is exercised whitebox.
func drainDirect(t *testing.T, e *Engine, frames [][]byte) {
	t.Helper()
	e.parallel = true
	defer func() { e.parallel = false }()
	sh := e.shards[0]
	for _, f := range frames {
		if !sh.enqueue(f) {
			t.Fatal("ring full")
		}
	}
	sh.drain(e.cfg.Burst.Batch)
}

func TestBurstAppReceivesWholeBurst(t *testing.T) {
	app := &burstRecorder{}
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: app, CarrierPRBs: 106,
		Burst: BurstPolicy{Batch: 16}})
	if err != nil {
		t.Fatal(err)
	}
	var tx atomic.Uint64
	e.SetOutput(func([]byte) { tx.Add(1) })
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	frames := make([][]byte, 10)
	for i := range frames {
		frames[i] = uplaneFrame(t, b, oran.Downlink, 0, uint8(i%14), 100)
	}
	drainDirect(t, e, frames)
	if len(app.sizes) != 1 || app.sizes[0] != 10 {
		t.Fatalf("burst sizes = %v, want one burst of 10", app.sizes)
	}
	if app.handled != 0 {
		t.Fatalf("per-frame Handle invoked %d times on a BurstApp", app.handled)
	}
	if tx.Load() != 10 || e.Snapshot().TxFrames != 10 {
		t.Fatalf("tx = %d, TxFrames = %d, want 10", tx.Load(), e.Snapshot().TxFrames)
	}
}

func TestBurstAdapterFallsBackPerFrame(t *testing.T) {
	app := &forwarder{} // no HandleBurst: the adapter loop must call Handle per frame
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: app, CarrierPRBs: 106,
		Burst: BurstPolicy{Batch: 16}})
	if err != nil {
		t.Fatal(err)
	}
	e.SetOutput(func([]byte) {})
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	frames := make([][]byte, 10)
	for i := range frames {
		frames[i] = uplaneFrame(t, b, oran.Downlink, 0, uint8(i%14), 100)
	}
	drainDirect(t, e, frames)
	if app.handled.Load() != 10 {
		t.Fatalf("Handle invoked %d times, want 10", app.handled.Load())
	}
	if st := e.Snapshot(); st.TxFrames != 10 {
		t.Fatalf("TxFrames = %d, want 10", st.TxFrames)
	}
}

func TestBurstErrorDropsWholeBurst(t *testing.T) {
	app := &burstRecorder{fail: true}
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: app, CarrierPRBs: 106,
		Burst: BurstPolicy{Batch: 16}})
	if err != nil {
		t.Fatal(err)
	}
	var tx atomic.Uint64
	e.SetOutput(func([]byte) { tx.Add(1) })
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	frames := make([][]byte, 8)
	for i := range frames {
		frames[i] = uplaneFrame(t, b, oran.Downlink, 0, uint8(i%14), 100)
	}
	drainDirect(t, e, frames)
	if st := e.Snapshot(); st.AppErrors != 8 || st.TxFrames != 0 || tx.Load() != 0 {
		t.Fatalf("stats = %+v tx=%d, want 8 app errors and no emissions", st, tx.Load())
	}
}

func TestBurstPacketErrorIsolatesFrame(t *testing.T) {
	app := &burstRecorder{failPkt: 3}
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: app, CarrierPRBs: 106,
		Burst: BurstPolicy{Batch: 16}})
	if err != nil {
		t.Fatal(err)
	}
	e.SetOutput(func([]byte) {})
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	frames := make([][]byte, 8)
	for i := range frames {
		frames[i] = uplaneFrame(t, b, oran.Downlink, 0, uint8(i%14), 100)
	}
	drainDirect(t, e, frames)
	if st := e.Snapshot(); st.AppErrors != 1 || st.TxFrames != 7 {
		t.Fatalf("stats = %+v, want 1 app error and 7 emissions", st)
	}
}

// TestKernelRetirement pins the fast-path contract: on an XDP engine whose
// program fully decides a frame (Tx or Drop), the frame retires in kernel —
// the App is never invoked, no punt happens, and KernelRetired attributes
// the completion.
func TestKernelRetirement(t *testing.T) {
	prog := &KernelProgram{Rules: []Rule{
		{Match: Match{Plane: fh.PlaneU}, Verdict: VerdictTx, Rewrite: &Rewrite{SetDst: &ru2MAC}},
		{Match: Match{Plane: fh.PlaneC}, Verdict: VerdictDrop},
	}}
	app := &forwarder{}
	s, e, out := newXDP(t, prog, app)
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	for i := 0; i < 6; i++ {
		e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, uint8(i), 50))
	}
	for i := 0; i < 2; i++ {
		e.Ingress(cplaneFrame(t, b, oran.Downlink, 0))
	}
	s.Run()
	if app.handled.Load() != 0 {
		t.Fatalf("App.Handle invoked %d times for kernel-retired traffic", app.handled.Load())
	}
	st := e.Snapshot()
	if st.KernelTx != 6 || st.KernelDrop != 2 || st.KernelRetired != 8 || st.Punts != 0 {
		t.Fatalf("stats = %+v, want KernelTx 6 / KernelDrop 2 / KernelRetired 8 / Punts 0", st)
	}
	if len(*out) != 6 {
		t.Fatalf("out = %d, want 6", len(*out))
	}
	var p fh.Packet
	if err := p.Decode((*out)[0]); err != nil {
		t.Fatal(err)
	}
	if p.Eth.Dst != ru2MAC {
		t.Fatalf("retired Tx frame dst = %v, want %v", p.Eth.Dst, ru2MAC)
	}
}

// TestKernelRetireByteIdentical replays a replicate fan-out program with
// retirement on and off (BurstPolicy.DisableKernelRetire) and requires the
// emitted byte streams to match exactly: retirement changes allocation and
// attribution, never the wire output.
func TestKernelRetireByteIdentical(t *testing.T) {
	run := func(disable bool) ([][]byte, Stats) {
		prog := &KernelProgram{Rules: []Rule{{
			Match:   Match{Plane: fh.PlaneU, Dir: dirPtr(oran.Downlink)},
			Verdict: VerdictTx,
			Rewrite: &Rewrite{SetDst: &ruMAC},
			Mirrors: []Rewrite{{SetDst: &ru2MAC}},
		}}}
		s := sim.NewScheduler()
		e, err := NewEngine(s, Config{Name: "xdp", Mode: ModeXDP, Kernel: prog, CarrierPRBs: 106,
			Burst: BurstPolicy{DisableKernelRetire: disable}})
		if err != nil {
			t.Fatal(err)
		}
		var out [][]byte
		e.SetOutput(func(f []byte) { out = append(out, append([]byte(nil), f...)) })
		b := fh.NewBuilder(duMAC, ruMAC, 6)
		for i := 0; i < 5; i++ {
			e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, uint8(i), 77))
		}
		s.Run()
		return out, e.Snapshot()
	}
	fast, fastStats := run(false)
	compat, compatStats := run(true)
	if len(fast) != len(compat) {
		t.Fatalf("emissions differ: retired %d, compat %d", len(fast), len(compat))
	}
	for i := range fast {
		if !bytes.Equal(fast[i], compat[i]) {
			t.Fatalf("frame %d differs between retired and compat paths", i)
		}
	}
	if fastStats.KernelRetired != 5 || fastStats.KernelTx != 5 {
		t.Fatalf("retired stats = %+v, want 5 retired", fastStats)
	}
	if compatStats.KernelRetired != 0 || compatStats.KernelTx != 5 {
		t.Fatalf("compat stats = %+v, want 0 retired", compatStats)
	}
}

// burstSeqFrame builds a downlink U-plane frame whose FrameID carries a
// per-stream sequence number, so output order is observable per eAxC.
func burstSeqFrame(t *testing.T, b *fh.Builder, port uint8, seq int) []byte {
	t.Helper()
	payload, err := bfp.CompressGrid(nil, iq.NewGrid(4), bfp9())
	if err != nil {
		t.Fatal(err)
	}
	msg := &oran.UPlaneMsg{
		Timing:   oran.Timing{Direction: oran.Downlink, FrameID: uint8(seq)},
		Sections: []oran.USection{{NumPRB: 4, Comp: bfp9(), Payload: payload}},
	}
	return b.UPlane(ecpri.PcID{RUPort: port}, msg)
}

// TestBurstFIFOMixedKernelVerdicts is the ordering contract under kernel
// retirement: with parallel workers draining bursts and a program that
// retires every even-FrameID frame while punting odd ones to userspace,
// each eAxC stream's emissions must still leave in arrival order — a
// kernel completion may never overtake a punted predecessor parked in the
// same burst.
func TestBurstFIFOMixedKernelVerdicts(t *testing.T) {
	const (
		streams = 8
		perFlow = 100
		cores   = 2
	)
	prog := &KernelProgram{Rules: []Rule{{
		Match:   Match{Plane: fh.PlaneU, FrameMod: 2, FrameVal: 0},
		Verdict: VerdictTx,
		Rewrite: &Rewrite{SetDst: &ru2MAC},
	}}}
	var punted atomic.Uint64
	app := appFunc(func(ctx *Context, pkt *fh.Packet) error {
		punted.Add(1)
		ctx.Forward(pkt)
		return nil
	})
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mix", Mode: ModeXDP, Kernel: prog, App: app,
		CarrierPRBs: 106, Cores: cores, RingSize: 1024, Burst: BurstPolicy{Batch: 32}})
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu   sync.Mutex
		seen [streams][]int
	)
	e.SetOutput(func(f []byte) {
		var p fh.Packet
		if err := p.Decode(f); err != nil {
			return
		}
		tm, err := p.Timing()
		if err != nil {
			return
		}
		mu.Lock()
		port := p.EAxC().RUPort
		seen[port] = append(seen[port], int(tm.FrameID))
		mu.Unlock()
	})
	builders := make([]*fh.Builder, streams)
	for p := range builders {
		builders[p] = fh.NewBuilder(duMAC, ruMAC, -1)
	}
	frames := make([][]byte, 0, streams*perFlow)
	for seq := 0; seq < perFlow; seq++ {
		for p := 0; p < streams; p++ {
			frames = append(frames, burstSeqFrame(t, builders[p], uint8(p), seq))
		}
	}
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		for !e.TryIngress(f) {
			runtime.Gosched()
		}
	}
	e.Stop()

	st := e.Snapshot()
	if st.RxFrames != streams*perFlow {
		t.Fatalf("RxFrames = %d, want %d", st.RxFrames, streams*perFlow)
	}
	if want := uint64(streams * perFlow / 2); st.KernelRetired != want || st.Punts != want || punted.Load() != want {
		t.Fatalf("retired=%d punts=%d handled=%d, want %d each", st.KernelRetired, st.Punts, punted.Load(), want)
	}
	for p := 0; p < streams; p++ {
		if len(seen[p]) != perFlow {
			t.Fatalf("stream %d: %d emissions, want %d", p, len(seen[p]), perFlow)
		}
		for i, seq := range seen[p] {
			if seq != i {
				t.Fatalf("stream %d: position %d got seq %d — FIFO violated across kernel/userspace boundary", p, i, seq)
			}
		}
	}
}

// TestBurstPathAllocs pins the burst datapath's allocation budget on the
// parallel (direct-emit) path: at most one allocation per frame — the
// fresh userspace packet — for an App engine, and none at all for frames
// the kernel retires.
func TestBurstPathAllocs(t *testing.T) {
	const batch = 32
	measure := func(e *Engine) float64 {
		t.Helper()
		e.SetOutput(func([]byte) {})
		e.parallel = true
		defer func() { e.parallel = false }()
		sh := e.shards[0]
		b := fh.NewBuilder(duMAC, ruMAC, 6)
		frame := uplaneFrame(t, b, oran.Downlink, 0, 3, 100)
		fill := func() {
			for i := 0; i < batch; i++ {
				if !sh.enqueue(frame) {
					t.Fatal("ring full")
				}
			}
			sh.drain(batch)
		}
		// Warm scratch buffers and the latency window's backing arrays so
		// steady state is measured, not first-touch growth.
		for i := 0; i < 64; i++ {
			fill()
		}
		sh.resetLatency()
		return testing.AllocsPerRun(50, fill)
	}

	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: &forwarder{},
		CarrierPRBs: 106, RingSize: 256, Burst: BurstPolicy{Batch: batch}})
	if err != nil {
		t.Fatal(err)
	}
	if avg := measure(e); avg > batch {
		t.Fatalf("userspace burst path allocates %.1f objects per %d-frame burst, budget %d (1/frame)", avg, batch, batch)
	}

	prog := &KernelProgram{Rules: []Rule{{
		Match: Match{Plane: fh.PlaneU}, Verdict: VerdictTx, Rewrite: &Rewrite{SetDst: &ru2MAC},
	}}}
	e2, err := NewEngine(s, Config{Name: "xdp", Mode: ModeXDP, Kernel: prog,
		CarrierPRBs: 106, RingSize: 256, Burst: BurstPolicy{Batch: batch}})
	if err != nil {
		t.Fatal(err)
	}
	if avg := measure(e2); avg > 0 {
		t.Fatalf("kernel-retired burst path allocates %.1f objects per %d-frame burst, want 0", avg, batch)
	}
	if st := e2.Snapshot(); st.KernelRetired == 0 {
		t.Fatal("kernel retirement never engaged")
	}
}

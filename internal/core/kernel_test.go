package core

import (
	"testing"
	"time"

	"ranbooster/internal/ecpri"
	"ranbooster/internal/fh"
	"ranbooster/internal/oran"
	"ranbooster/internal/sim"
)

func dirPtr(d oran.Direction) *oran.Direction { return &d }
func u8Ptr(v uint8) *uint8                    { return &v }

func newXDP(t *testing.T, prog *KernelProgram, app App) (*sim.Scheduler, *Engine, *[][]byte) {
	t.Helper()
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "xdp", Mode: ModeXDP, Kernel: prog, App: app, CarrierPRBs: 106})
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	e.SetOutput(func(f []byte) { out = append(out, f) })
	return s, e, &out
}

func TestVerifierRejects(t *testing.T) {
	cases := []struct {
		name string
		prog KernelProgram
	}{
		{"empty", KernelProgram{}},
		{"too many rules", KernelProgram{Rules: make([]Rule, MaxKernelRules+1)}},
		{"tx without rewrite", KernelProgram{Rules: []Rule{{Verdict: VerdictTx}}}},
		{"rewrite on drop", KernelProgram{Rules: []Rule{{Verdict: VerdictDrop, Rewrite: &Rewrite{}}}}},
		{"exponents on cplane", KernelProgram{Rules: []Rule{{
			Match: Match{Plane: fh.PlaneC}, Verdict: VerdictPass, Exponents: &ExponentStats{},
		}}}},
		{"vlan out of range", KernelProgram{Rules: []Rule{{
			Verdict: VerdictTx, Rewrite: &Rewrite{SetVLAN: u16Ptr(5000)},
		}}}},
		{"too many mirrors", KernelProgram{Rules: []Rule{{
			Verdict: VerdictTx, Mirrors: make([]Rewrite, MaxKernelMirrors+1),
		}}}},
	}
	for _, c := range cases {
		// Fill dummy rules (zero rule = pass-any) so only the property
		// under test is invalid.
		for i := range c.prog.Rules {
			if c.prog.Rules[i].Verdict == VerdictTx && c.prog.Rules[i].Rewrite == nil && len(c.prog.Rules[i].Mirrors) == 0 && c.name != "tx without rewrite" {
				c.prog.Rules[i].Rewrite = &Rewrite{}
			}
		}
		if err := c.prog.Verify(); err == nil {
			t.Errorf("%s: verified", c.name)
		}
	}
}

func u16Ptr(v uint16) *uint16 { return &v }

func TestVerifierAccepts(t *testing.T) {
	prog := &KernelProgram{Rules: []Rule{
		{
			Match:   Match{Plane: fh.PlaneU, Dir: dirPtr(oran.Downlink), RUPorts: &Range{2, 3}},
			Verdict: VerdictTx,
			Rewrite: &Rewrite{SetDst: &ru2MAC, RUPortMap: IdentityPortMap()},
		},
		{Match: Match{Plane: fh.PlaneU}, Verdict: VerdictPass, Exponents: &ExponentStats{ThrUL: 2}},
	}}
	if err := prog.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestKernelTxPortRemap(t *testing.T) {
	// The dMIMO downlink kernel rule: DU ports 2,3 are remapped to 0,1 and
	// steered to RU2 — entirely in kernel (Table 1).
	pm := IdentityPortMap()
	pm[2], pm[3] = 0, 1
	prog := &KernelProgram{Rules: []Rule{{
		Match:   Match{Plane: fh.PlaneU, Dir: dirPtr(oran.Downlink), RUPorts: &Range{2, 3}},
		Verdict: VerdictTx,
		Rewrite: &Rewrite{SetDst: &ru2MAC, RUPortMap: pm},
	}}}
	s, e, out := newXDP(t, prog, nil)
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 3, 2, 50))
	s.Run()
	if len(*out) != 1 {
		t.Fatalf("out = %d", len(*out))
	}
	var p fh.Packet
	if err := p.Decode((*out)[0]); err != nil {
		t.Fatal(err)
	}
	if p.Eth.Dst != ru2MAC {
		t.Fatalf("dst = %v", p.Eth.Dst)
	}
	if p.EAxC().RUPort != 1 {
		t.Fatalf("port = %d, want 1", p.EAxC().RUPort)
	}
	if e.Snapshot().KernelTx != 1 || e.Snapshot().Punts != 0 {
		t.Fatalf("stats = %+v", e.Snapshot())
	}
}

func TestKernelNoMatchPunts(t *testing.T) {
	prog := &KernelProgram{Rules: []Rule{{
		Match:   Match{Plane: fh.PlaneU, Dir: dirPtr(oran.Downlink), RUPorts: &Range{2, 3}},
		Verdict: VerdictTx,
		Rewrite: &Rewrite{SetDst: &ru2MAC},
	}}}
	app := &forwarder{}
	s, e, out := newXDP(t, prog, app)
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 2, 50)) // port 0: no match
	s.Run()
	if app.handled.Load() != 1 {
		t.Fatal("packet did not reach userspace")
	}
	if e.Snapshot().Punts != 1 {
		t.Fatalf("stats = %+v", e.Snapshot())
	}
	if len(*out) != 1 {
		t.Fatalf("out = %d", len(*out))
	}
}

func TestKernelDrop(t *testing.T) {
	prog := &KernelProgram{Rules: []Rule{{
		Match:   Match{Plane: fh.PlaneC},
		Verdict: VerdictDrop,
	}}}
	s, e, out := newXDP(t, prog, nil)
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(cplaneFrame(t, b, oran.Downlink, 0))
	s.Run()
	if len(*out) != 0 || e.Snapshot().KernelDrop != 1 {
		t.Fatalf("out=%d stats=%+v", len(*out), e.Snapshot())
	}
}

func TestKernelMirror(t *testing.T) {
	// SSB fan-out: a matched packet is mirrored to a second RU while the
	// original continues.
	prog := &KernelProgram{Rules: []Rule{{
		Match:   Match{Plane: fh.PlaneU, Dir: dirPtr(oran.Downlink)},
		Verdict: VerdictTx,
		Rewrite: &Rewrite{SetDst: &ruMAC},
		Mirrors: []Rewrite{{SetDst: &ru2MAC}},
	}}}
	s, e, out := newXDP(t, prog, nil)
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 2, 50))
	s.Run()
	if len(*out) != 2 {
		t.Fatalf("out = %d", len(*out))
	}
	var a, c fh.Packet
	if err := a.Decode((*out)[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.Decode((*out)[1]); err != nil {
		t.Fatal(err)
	}
	dsts := map[string]bool{a.Eth.Dst.String(): true, c.Eth.Dst.String(): true}
	if !dsts[ruMAC.String()] || !dsts[ru2MAC.String()] {
		t.Fatalf("dsts = %v", dsts)
	}
}

func TestKernelExponentStats(t *testing.T) {
	// Algorithm 1's kernel half: count utilized PRBs without decompressing.
	prog := &KernelProgram{Rules: []Rule{{
		Match:     Match{Plane: fh.PlaneU},
		Verdict:   VerdictPass,
		Exponents: &ExponentStats{ThrDL: 0, ThrUL: 2},
	}}}
	s, e, _ := newXDP(t, prog, &forwarder{})
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	// Strong samples (exponent > 0) — all 4 PRBs utilized on DL.
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 2, 20000))
	// Zero-ish samples — idle.
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 3, 1))
	s.Run()
	if got := e.CounterValue("prb.seen.dl"); got != 8 {
		t.Fatalf("seen = %d", got)
	}
	if got := e.CounterValue("prb.utilized.dl"); got != 4 {
		t.Fatalf("utilized = %d", got)
	}
}

func TestKernelTimeWindowMatch(t *testing.T) {
	// SSB-style window: frame%2==0, slot 0, symbols 2..5.
	prog := &KernelProgram{Rules: []Rule{{
		Match: Match{
			Plane: fh.PlaneU, Dir: dirPtr(oran.Downlink),
			FrameMod: 2, FrameVal: 1, // our test frames use FrameID 1
			Slot: u8Ptr(0), Symbols: &Range{2, 5},
		},
		Verdict: VerdictDrop, // drop so matching is observable
	}}}
	s, e, out := newXDP(t, prog, &forwarder{})
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 3, 50)) // symbol 3: in window
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 7, 50)) // symbol 7: out
	s.Run()
	if e.Snapshot().KernelDrop != 1 {
		t.Fatalf("drops = %d", e.Snapshot().KernelDrop)
	}
	if len(*out) != 1 {
		t.Fatalf("out = %d", len(*out))
	}
}

func TestXDPIdleUtilizationLow(t *testing.T) {
	prog := &KernelProgram{Rules: []Rule{{Match: Match{}, Verdict: VerdictPass}}}
	s, e, _ := newXDP(t, prog, &forwarder{})
	e.ResetMeasurement()
	s.RunFor(10 * time.Millisecond)
	if u := e.Utilization(); u != 0 {
		t.Fatalf("idle XDP utilization = %v", u)
	}
	// Traffic raises it.
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	for i := 0; i < 100; i++ {
		e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, uint8(i%14), 50))
	}
	s.RunFor(time.Millisecond)
	if u := e.Utilization(); u <= 0 {
		t.Fatalf("loaded XDP utilization = %v", u)
	}
}

func TestFilterIndexMatch(t *testing.T) {
	// PRACH C-plane uses filterIndex 1.
	prog := &KernelProgram{Rules: []Rule{{
		Match:   Match{Plane: fh.PlaneC, FilterIndex: u8Ptr(1)},
		Verdict: VerdictDrop,
	}}}
	s, e, out := newXDP(t, prog, &forwarder{})
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	prach := &oran.CPlaneMsg{
		Timing:      oran.Timing{Direction: oran.Uplink, FilterIndex: 1},
		SectionType: oran.SectionType3,
		Sections:    []oran.CSection{{NumPRB: 12}},
	}
	e.Ingress(b.CPlane(ecpri.PcID{}, prach))
	e.Ingress(cplaneFrame(t, b, oran.Downlink, 0)) // filterIndex 0: passes
	s.Run()
	if e.Snapshot().KernelDrop != 1 || len(*out) != 1 {
		t.Fatalf("drops=%d out=%d", e.Snapshot().KernelDrop, len(*out))
	}
}

package core

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ranbooster/internal/bfp"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/fh"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
	"ranbooster/internal/sim"
)

func TestRing(t *testing.T) {
	r := newRing(3) // rounds up to 4
	if len(r.buf) != 4 {
		t.Fatalf("capacity = %d, want 4", len(r.buf))
	}
	if _, _, ok := r.pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
	for i := 0; i < 4; i++ {
		if !r.push([]byte{byte(i)}, sim.Time(i)) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.push([]byte{9}, 9) {
		t.Fatal("push into full ring succeeded")
	}
	if r.queued() != 4 {
		t.Fatalf("queued = %d, want 4", r.queued())
	}
	// FIFO across a wraparound; the enqueue stamp rides along with its
	// frame.
	for round := 0; round < 3; round++ {
		for i := 0; i < 4; i++ {
			f, at, ok := r.pop()
			if !ok || f[0] != byte(i) || at != sim.Time(i) {
				t.Fatalf("round %d: pop = %v,%v,%v, want [%d] at %d", round, f, at, ok, i, i)
			}
			if !r.push([]byte{byte(i)}, sim.Time(i)) {
				t.Fatalf("round %d: refill %d failed", round, i)
			}
		}
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{RxFrames: 1, TxFrames: 2, ParseError: 3, KernelTx: 4, KernelDrop: 5, Punts: 6, AppDrops: 7, AppErrors: 8, RingDrops: 9}
	b := Stats{RxFrames: 10, TxFrames: 20, ParseError: 30, KernelTx: 40, KernelDrop: 50, Punts: 60, AppDrops: 70, AppErrors: 80, RingDrops: 90}
	got := a.Add(b)
	want := Stats{RxFrames: 11, TxFrames: 22, ParseError: 33, KernelTx: 44, KernelDrop: 55, Punts: 66, AppDrops: 77, AppErrors: 88, RingDrops: 99}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
}

// seqFrame builds a downlink U-plane frame on the given RU port carrying a
// per-stream sequence number in its radio timing (seq = FrameID*16 +
// SubframeID).
func seqFrame(t *testing.T, b *fh.Builder, port uint8, seq int) []byte {
	t.Helper()
	g := iq.NewGrid(4)
	payload, err := bfp.CompressGrid(nil, g, bfp9())
	if err != nil {
		t.Fatal(err)
	}
	msg := &oran.UPlaneMsg{
		Timing:   oran.Timing{Direction: oran.Downlink, FrameID: uint8(seq / 16), SubframeID: uint8(seq % 16)},
		Sections: []oran.USection{{NumPRB: 4, Comp: bfp9(), Payload: payload}},
	}
	return b.UPlane(ecpri.PcID{RUPort: port}, msg)
}

// TestShardFIFOOrdering is the sharding contract test: with parallel
// workers over 4 shards and 8 eAxC streams, frames of one stream must be
// handled in arrival order while distinct streams are free to interleave.
func TestShardFIFOOrdering(t *testing.T) {
	const (
		streams = 8
		perFlow = 200
		cores   = 4
	)
	var (
		seen     [streams][]int // written only by the owning shard
		inflight atomic.Int32
		maxConc  atomic.Int32
	)
	app := appFunc(func(ctx *Context, pkt *fh.Packet) error {
		n := inflight.Add(1)
		for {
			m := maxConc.Load()
			if n <= m || maxConc.CompareAndSwap(m, n) {
				break
			}
		}
		tim, err := pkt.Timing()
		if err != nil {
			return err
		}
		port := pkt.EAxC().RUPort
		seen[port] = append(seen[port], int(tim.FrameID)*16+int(tim.SubframeID))
		time.Sleep(20 * time.Microsecond) // widen the race window
		inflight.Add(-1)
		ctx.Forward(pkt)
		return nil
	})
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, Cores: cores, App: app, CarrierPRBs: 106, RingSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	var tx atomic.Uint64
	e.SetOutput(func([]byte) { tx.Add(1) })

	// Pre-build all frames, interleaved round-robin across the streams.
	frames := make([][]byte, 0, streams*perFlow)
	builders := make([]*fh.Builder, streams)
	for p := range builders {
		builders[p] = fh.NewBuilder(duMAC, ruMAC, -1)
	}
	for seq := 0; seq < perFlow; seq++ {
		for p := 0; p < streams; p++ {
			frames = append(frames, seqFrame(t, builders[p], uint8(p), seq))
		}
	}

	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		for !e.TryIngress(f) {
			runtime.Gosched()
		}
	}
	e.Stop()

	st := e.Snapshot()
	if st.RxFrames != streams*perFlow {
		t.Fatalf("RxFrames = %d, want %d", st.RxFrames, streams*perFlow)
	}
	if tx.Load() != streams*perFlow {
		t.Fatalf("tx = %d, want %d", tx.Load(), streams*perFlow)
	}
	for p := 0; p < streams; p++ {
		if len(seen[p]) != perFlow {
			t.Fatalf("stream %d: %d frames, want %d", p, len(seen[p]), perFlow)
		}
		for i, seq := range seen[p] {
			if seq != i {
				t.Fatalf("stream %d: position %d got seq %d — FIFO order violated", p, i, seq)
			}
		}
	}
	if maxConc.Load() < 2 {
		t.Fatalf("max concurrency = %d, want >= 2 (workers never overlapped)", maxConc.Load())
	}
}

func TestStartStopLifecycle(t *testing.T) {
	s, e, out := newDPDK(t, &forwarder{})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); !errors.Is(err, ErrRunning) {
		t.Fatalf("second Start: got %v, want ErrRunning", err)
	}
	e.Stop()
	e.Stop() // idempotent
	// Back in deterministic mode: inline processing plus scheduled emission.
	b := fh.NewBuilder(duMAC, ruMAC, -1)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 0, 1))
	s.Run()
	if len(*out) != 1 {
		t.Fatalf("deterministic mode after Stop emitted %d frames, want 1", len(*out))
	}
	if err := e.Start(); err != nil {
		t.Fatalf("restart after Stop: %v", err)
	}
	e.Stop()
}

type serialForwarder struct{ forwarder }

func (*serialForwarder) Serial() {}

func TestSerialAppRefusesParallelShards(t *testing.T) {
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, Cores: 2, App: &serialForwarder{}, CarrierPRBs: 106})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Start(); !errors.Is(err, ErrSerialApp) {
		t.Fatalf("Start: got %v, want ErrSerialApp", err)
	}
	// A single shard is fine: there is nothing to parallelize across.
	e1, err := NewEngine(s, Config{Name: "mb1", Mode: ModeDPDK, Cores: 1, App: &serialForwarder{}, CarrierPRBs: 106})
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Start(); err != nil {
		t.Fatalf("single-shard serial Start: %v", err)
	}
	e1.Stop()
}

// TestIngressRingDrops saturates a tiny ring behind a blocked worker and
// checks the drop accounting: every pushed frame is either processed or
// counted in RingDrops.
func TestIngressRingDrops(t *testing.T) {
	const pushed = 8
	gate := make(chan struct{})
	var once sync.Once
	app := appFunc(func(ctx *Context, pkt *fh.Packet) error {
		once.Do(func() { <-gate })
		ctx.Forward(pkt)
		return nil
	})
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, Cores: 1, App: app, CarrierPRBs: 106, RingSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.SetOutput(func([]byte) {})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	b := fh.NewBuilder(duMAC, ruMAC, -1)
	for i := 0; i < pushed; i++ {
		e.Ingress(seqFrame(t, b, 0, i))
	}
	close(gate)
	e.Stop()
	st := e.Snapshot()
	if st.RxFrames+st.RingDrops != pushed {
		t.Fatalf("RxFrames(%d) + RingDrops(%d) != pushed(%d)", st.RxFrames, st.RingDrops, pushed)
	}
	if st.RingDrops < pushed-3 { // at most ring(2) + 1 in-flight accepted
		t.Fatalf("RingDrops = %d, want >= %d", st.RingDrops, pushed-3)
	}
}

// TestSnapshotMergesShards checks that per-shard counters sum into one
// engine-wide view and that undecodable frames land on shard 0's parse
// error counter.
func TestSnapshotMergesShards(t *testing.T) {
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, Cores: 4, App: &forwarder{}, CarrierPRBs: 106})
	if err != nil {
		t.Fatal(err)
	}
	e.SetOutput(func([]byte) {})
	b := fh.NewBuilder(duMAC, ruMAC, -1)
	for port := 0; port < 8; port++ {
		e.Ingress(seqFrame(t, b, uint8(port), 0))
	}
	e.Ingress([]byte{0xde, 0xad}) // too short for any header
	s.Run()
	st := e.Snapshot()
	if st.RxFrames != 9 || st.TxFrames != 8 || st.ParseError != 1 {
		t.Fatalf("Snapshot = %+v, want Rx 9 / Tx 8 / ParseError 1", st)
	}
}

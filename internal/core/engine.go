package core

import (
	"fmt"
	"sort"
	"time"

	"ranbooster/internal/cpu"
	"ranbooster/internal/fh"
	"ranbooster/internal/sim"
	"ranbooster/internal/telemetry"
)

// Mode selects the datapath technology (§5).
type Mode uint8

// Datapath modes.
const (
	// ModeDPDK is the kernel-bypass poll-mode datapath: lowest latency,
	// but its cores spin at 100% regardless of load.
	ModeDPDK Mode = iota
	// ModeXDP is the in-kernel, interrupt-driven datapath: a verified rule
	// program handles cheap actions at the driver hook; everything else is
	// punted to the userspace App over an AF_XDP-style handoff.
	ModeXDP
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeXDP {
		return "XDP"
	}
	return "DPDK"
}

// Config describes one middlebox instance.
type Config struct {
	Name string
	Mode Mode
	// Cores is the number of datapath cores (work spreads by eAxC).
	Cores int
	// App is the userspace handler (may be nil for a pure-kernel XDP
	// middlebox such as PRB monitoring).
	App App
	// Kernel is the XDP rule program (ModeXDP only); it must verify.
	Kernel *KernelProgram
	// CarrierPRBs resolves "all PRBs" encodings during payload access.
	CarrierPRBs int
	// CacheMaxAge bounds A3 entries (default 2 slots).
	CacheMaxAge time.Duration
}

// Stats are the engine's datapath counters.
type Stats struct {
	RxFrames   uint64
	TxFrames   uint64
	ParseError uint64
	// Kernel program outcomes (ModeXDP).
	KernelTx   uint64
	KernelDrop uint64
	Punts      uint64 // AF_XDP handoffs to userspace
	// Userspace outcomes.
	AppDrops  uint64
	AppErrors uint64
}

// Engine runs one middlebox over a fronthaul attachment point (a switch
// port or NIC VF).
type Engine struct {
	cfg   Config
	sched *sim.Scheduler
	pool  *cpu.Pool
	out   func(frame []byte)

	cache    *Cache
	bus      *telemetry.Bus
	counters map[string]*uint64

	stats Stats
	lat   [classCount][]time.Duration
}

// sweepEvery bounds how many ingress frames may pass between cache sweeps.
const sweepEvery = 1024

// NewEngine builds and validates an engine. Kernel programs are verified
// here; a program that fails verification refuses to load, like the eBPF
// verifier would.
func NewEngine(sched *sim.Scheduler, cfg Config) (*Engine, error) {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	if cfg.CarrierPRBs <= 0 {
		return nil, fmt.Errorf("core: %s: CarrierPRBs must be set", cfg.Name)
	}
	if cfg.CacheMaxAge <= 0 {
		cfg.CacheMaxAge = time.Millisecond
	}
	switch cfg.Mode {
	case ModeDPDK:
		if cfg.App == nil {
			return nil, fmt.Errorf("core: %s: DPDK engine requires an App", cfg.Name)
		}
	case ModeXDP:
		if cfg.Kernel == nil {
			return nil, fmt.Errorf("core: %s: XDP engine requires a kernel program", cfg.Name)
		}
		if err := cfg.Kernel.Verify(); err != nil {
			return nil, fmt.Errorf("core: %s: kernel program rejected: %w", cfg.Name, err)
		}
	default:
		return nil, fmt.Errorf("core: %s: unknown mode %d", cfg.Name, cfg.Mode)
	}
	e := &Engine{
		cfg:      cfg,
		sched:    sched,
		pool:     cpu.NewPool(cfg.Cores),
		cache:    NewCache(cfg.CacheMaxAge),
		bus:      telemetry.NewBus(),
		counters: make(map[string]*uint64),
	}
	e.pool.ResetWindows(sched.Now())
	return e, nil
}

// Name returns the configured middlebox name.
func (e *Engine) Name() string { return e.cfg.Name }

// Mode returns the datapath mode.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// SetOutput attaches the transmit function (e.g. a fabric port's Send).
func (e *Engine) SetOutput(fn func(frame []byte)) { e.out = fn }

// Bus returns the middlebox telemetry bus.
func (e *Engine) Bus() *telemetry.Bus { return e.bus }

// Stats returns a snapshot of the datapath counters.
func (e *Engine) Stats() Stats { return e.stats }

// Counter returns (creating if needed) a shared counter — the moral
// equivalent of a pinned BPF map entry, readable from kernel rules and
// userspace alike.
func (e *Engine) Counter(name string) *uint64 {
	c := e.counters[name]
	if c == nil {
		c = new(uint64)
		e.counters[name] = c
	}
	return c
}

// Control forwards a management command to the App (§3.2's management
// interface). It fails if the App is absent or not controllable.
func (e *Engine) Control(cmd string, args map[string]string) error {
	if c, ok := e.cfg.App.(Controllable); ok {
		return c.Control(cmd, args)
	}
	return fmt.Errorf("core: %s: app does not expose a management interface", e.cfg.Name)
}

// Utilization returns the busiest core's utilization since the last
// ResetMeasurement. Poll-mode engines always report 1.0 (Fig. 16).
func (e *Engine) Utilization() float64 {
	return e.pool.MaxUtilization(e.sched.Now(), e.cfg.Mode == ModeDPDK)
}

// ResetMeasurement starts a fresh utilization/latency window.
func (e *Engine) ResetMeasurement() {
	e.pool.ResetWindows(e.sched.Now())
	for i := range e.lat {
		e.lat[i] = e.lat[i][:0]
	}
}

// LatencyPercentile returns the p-th percentile (0..1) of per-packet
// processing (service) time for a traffic class, and whether samples
// exist. Queueing delay is excluded — it shows up in emission times and
// therefore in endpoint deadline misses, matching how the paper reports
// Fig. 15b.
func (e *Engine) LatencyPercentile(class TrafficClass, p float64) (time.Duration, bool) {
	s := e.lat[class]
	if len(s) == 0 {
		return 0, false
	}
	cp := append([]time.Duration(nil), s...)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := int(p * float64(len(cp)-1))
	return cp[idx], true
}

// Ingress is the receive entry point; wire it to a fabric port handler.
func (e *Engine) Ingress(frame []byte) {
	e.stats.RxFrames++
	if e.stats.RxFrames%sweepEvery == 0 {
		e.cache.Sweep(e.sched.Now())
	}
	pkt := &fh.Packet{}
	if err := pkt.Decode(frame); err != nil {
		e.stats.ParseError++
		return
	}
	arrival := e.sched.Now()
	core := e.pool.ForKey(pkt.EAxC().Uint16())
	start := core.Acquire(arrival)
	cost := cpu.CostParse
	if e.cfg.Mode == ModeXDP {
		cost += cpu.CostKernelDriver
		if start == arrival && core.BusyUntil < arrival {
			// Interrupt-driven wakeup from idle.
			cost += cpu.CostInterruptWake
		}
	}

	class := Classify(pkt)
	if e.cfg.Mode == ModeXDP {
		verdict, kCost, emits := e.runKernel(pkt)
		cost += kCost
		switch verdict {
		case VerdictTx:
			e.stats.KernelTx++
			fin := core.Charge(start, cost)
			e.recordLatency(class, cost)
			e.emitAll(emits, fin)
			return
		case VerdictDrop:
			e.stats.KernelDrop++
			core.Charge(start, cost)
			return
		default:
			e.stats.Punts++
			cost += cpu.CostAFXDPHandoff
		}
	}
	if e.cfg.App == nil {
		// Pure-kernel middlebox with no userspace half: passed packets
		// continue unmodified (the XDP program returned PASS).
		fin := core.Charge(start, cost+cpu.CostForward)
		e.recordLatency(class, cost+cpu.CostForward)
		e.emitAll([]*fh.Packet{pkt}, fin)
		return
	}

	ctx := &Context{eng: e, now: e.sched.Now(), cost: cost}
	if err := e.cfg.App.Handle(ctx, pkt); err != nil {
		e.stats.AppErrors++
		core.Charge(start, ctx.cost)
		return
	}
	fin := core.Charge(start, ctx.cost)
	e.recordLatency(class, ctx.cost)
	e.emitAll(ctx.emits, fin)
}

// runKernel evaluates the rule program. It returns the verdict, the CPU
// cost of the evaluation, and the packets to transmit on VerdictTx.
func (e *Engine) runKernel(pkt *fh.Packet) (KernelVerdict, time.Duration, []*fh.Packet) {
	t, err := pkt.Timing()
	if err != nil {
		return VerdictDrop, cpu.CostKernelRule, nil
	}
	var cost time.Duration
	for i := range e.cfg.Kernel.Rules {
		r := &e.cfg.Kernel.Rules[i]
		cost += cpu.CostKernelRule
		if !r.Match.Matches(pkt, t) {
			continue
		}
		if r.Exponents != nil {
			seen, used := scanExponents(pkt, e.cfg.CarrierPRBs, r.Exponents, t)
			cost += cpu.ExponentScanCost(seen)
			dir := "dl"
			if t.Direction == 0 {
				dir = "ul"
			}
			*e.Counter("prb.seen." + dir) += uint64(seen)
			*e.Counter("prb.utilized." + dir) += uint64(used)
		}
		switch r.Verdict {
		case VerdictDrop:
			return VerdictDrop, cost, nil
		case VerdictPass:
			return VerdictPass, cost, nil
		case VerdictTx:
			emits := make([]*fh.Packet, 0, 1+len(r.Mirrors))
			for j := range r.Mirrors {
				cp := pkt.Clone()
				r.Mirrors[j].apply(cp)
				cost += cpu.CostReplicate + cpu.CostHeaderMod
				emits = append(emits, cp)
			}
			if r.Rewrite != nil {
				r.Rewrite.apply(pkt)
				cost += cpu.CostHeaderMod
				emits = append(emits, pkt)
			}
			cost += cpu.CostKernelTx
			return VerdictTx, cost, emits
		}
	}
	return VerdictPass, cost, nil
}

func (e *Engine) emitAll(pkts []*fh.Packet, at sim.Time) {
	for _, p := range pkts {
		frame := p.Frame
		e.stats.TxFrames++
		e.sched.At(at, func() {
			if e.out != nil {
				e.out(frame)
			}
		})
	}
}

func (e *Engine) recordLatency(class TrafficClass, d time.Duration) {
	if len(e.lat[class]) < 1<<16 { // bound memory on long runs
		e.lat[class] = append(e.lat[class], d)
	}
}

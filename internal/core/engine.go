package core

import (
	"fmt"
	"sort"
	"time"

	"ranbooster/internal/cpu"
	"ranbooster/internal/fh"
	"ranbooster/internal/sim"
	"ranbooster/internal/telemetry"
)

// Mode selects the datapath technology (§5).
type Mode uint8

// Datapath modes.
const (
	// ModeDPDK is the kernel-bypass poll-mode datapath: lowest latency,
	// but its cores spin at 100% regardless of load.
	ModeDPDK Mode = iota
	// ModeXDP is the in-kernel, interrupt-driven datapath: a verified rule
	// program handles cheap actions at the driver hook; everything else is
	// punted to the userspace App over an AF_XDP-style handoff.
	ModeXDP
)

// String names the mode.
func (m Mode) String() string {
	if m == ModeXDP {
		return "XDP"
	}
	return "DPDK"
}

// Sizing bounds validated by NewEngine.
const (
	// MaxCores bounds Config.Cores, in the spirit of a real server's
	// socket size.
	MaxCores = 64
	// MaxRingSize bounds the per-shard ingress ring.
	MaxRingSize = 1 << 20
	// DefaultBatch is the per-wakeup drain bound when BurstPolicy.Batch
	// is 0.
	DefaultBatch = 32
	// DefaultRingSize is the per-shard ring capacity when Config.RingSize
	// is 0.
	DefaultRingSize = 1024
	// DefaultTraceRing is the per-shard span-ring capacity when tracing is
	// enabled with Config.TraceRing 0.
	DefaultTraceRing = 1024
)

// Config describes one middlebox instance. It is construction-time input:
// NewEngine validates and copies it, and the engine owns the copy from
// then on. Mutating a Config (or the structures it points to, such as the
// kernel program's rules) after NewEngine returned is deprecated and
// unsupported — under parallel workers it is also a data race. Use the
// management interface (Engine.Control) to retune a running middlebox.
type Config struct {
	Name string
	Mode Mode
	// Cores is the number of datapath workers (shards). Work spreads
	// across shards by the eAxC RU port, so packets of one antenna-
	// carrier stream stay ordered while distinct streams process in
	// parallel. 0 defaults to 1; values outside [0, MaxCores] are
	// rejected with ErrBadCores.
	Cores int
	// App is the userspace handler (may be nil for a pure-kernel XDP
	// middlebox such as PRB monitoring). See the App documentation for
	// the concurrency contract Handle must meet on multi-core engines.
	App App
	// Kernel is the XDP rule program (ModeXDP only); it must verify.
	Kernel *KernelProgram
	// CarrierPRBs resolves "all PRBs" encodings during payload access.
	CarrierPRBs int
	// CacheMaxAge bounds A3 entries (default 2 slots).
	CacheMaxAge time.Duration
	// Burst tunes the burst-mode datapath: the per-wakeup batch size, the
	// worker's idle-poll tolerance, and kernel fast-path retirement. The
	// zero value keeps the defaults (see BurstPolicy); out-of-range knobs
	// are rejected with ErrBadBatch / ErrBadIdlePolls.
	Burst BurstPolicy
	// RingSize is the per-shard ingress ring capacity, rounded up to a
	// power of two (default DefaultRingSize).
	RingSize int
	// CPlaneHeadroom reserves ring slots for C-plane frames: once a
	// shard's free slots fall to the headroom, Ingress sheds U-plane (and
	// unclassifiable) frames — counted in Stats.ShedUPlane — so late
	// control messages still get in. Losing a C-plane frame wedges a whole
	// slot's schedule; losing a U-plane frame costs one symbol, so C-plane
	// is dropped only when the ring is completely full. 0 defaults to
	// RingSize/8; a negative value disables shedding; values >= RingSize
	// are rejected with ErrBadHeadroom.
	CPlaneHeadroom int
	// Supervise tunes the engine-supervision subsystem: App panic
	// isolation with a circuit breaker, the shard stall watchdog, and
	// AIMD overload shedding (see SupervisePolicy). The zero value
	// disables all three — the unsupervised behavior. Out-of-range knobs
	// are rejected with ErrBadPanicBudget / ErrBadCooldown /
	// ErrBadStallAfter / ErrBadShedWater.
	Supervise SupervisePolicy
	// Scale tunes metro-scale admission: ScalePolicy.WorkSteal replaces
	// the static eAxC→shard hash with per-stream queues drained by a
	// work-stealing worker pool (see ScalePolicy). The zero value keeps
	// the hash layout. Out-of-range knobs are rejected with ErrBadRing /
	// ErrBadMaxStreams / ErrBadHedge; combinations with the shard
	// watchdog or AIMD shedding are rejected with ErrScaleSupervise.
	Scale ScalePolicy
	// Trace enables the frame-span trace collector: every processed frame
	// leaves a telemetry.Span in its shard's fixed-size ring and feeds the
	// per-stage/per-action latency histograms merged into Snapshot. Off by
	// default — the disabled datapath pays only a nil check per frame.
	Trace bool
	// TraceRing is the per-shard span-ring capacity when Trace is set
	// (default DefaultTraceRing; values above MaxRingSize are rejected
	// with ErrBadRing).
	TraceRing int
}

// Stats are the engine's datapath counters. Obtain them with
// Engine.Snapshot, which merges the per-shard counters race-safely.
type Stats struct {
	RxFrames   uint64
	TxFrames   uint64
	ParseError uint64
	// Kernel program outcomes (ModeXDP).
	KernelTx   uint64
	KernelDrop uint64
	// KernelRetired counts frames the kernel half completed without ever
	// constructing a userspace packet or invoking the App — the A1/A2-only
	// fast path of the burst datapath (a subset of KernelTx+KernelDrop;
	// zero when BurstPolicy.DisableKernelRetire is set).
	KernelRetired uint64
	Punts         uint64 // AF_XDP handoffs to userspace
	// Userspace outcomes.
	AppDrops  uint64
	AppErrors uint64
	// RingDrops counts frames dropped because a shard's ingress ring was
	// full (parallel workers only; the deterministic path drains inline).
	RingDrops uint64
	// ShedUPlane counts U-plane frames shed at ingress to preserve the
	// C-plane headroom while a ring was nearly full (see
	// Config.CPlaneHeadroom).
	ShedUPlane uint64
	// Fault-visibility counters: per-eAxC eCPRI sequence tracking in the
	// shard datapath. SeqGaps accumulates missing sequence numbers,
	// Duplicates counts re-seen ones, Reordered counts late arrivals
	// (delivered, but behind the stream's high-water mark).
	SeqGaps    uint64
	Duplicates uint64
	Reordered  uint64
	// InvalidFrames counts frames whose eCPRI/O-RAN headers decoded but
	// failed validity checks (bad version, unknown plane, undecodable
	// timing) — corrupted input dropped instead of propagated to apps.
	InvalidFrames uint64
	// Supervision counters (SupervisePolicy). AppPanics counts recovered
	// App panics; Quarantined counts frames failed to the wire as raw
	// passthrough because of a panic or an open breaker; ShardRestarts
	// counts hitless watchdog restarts; ShedPRACH counts PRACH frames
	// shed by the AIMD controller under sustained overload (data-plane
	// sheds stay in ShedUPlane).
	AppPanics     uint64
	Quarantined   uint64
	ShardRestarts uint64
	ShedPRACH     uint64
	// Steals counts streams a work-stealing worker took from another
	// worker's deque — regular steal-half batches and hedged pickups of
	// stale stragglers alike (ScalePolicy.WorkSteal; always zero in the
	// hash layout and in deterministic inline mode).
	Steals uint64
	// Health is the engine's degradation state: the worst per-shard state
	// (Add merges with max, not sum).
	Health Health
	// Breaker is the panic circuit breaker's position: the worst
	// per-shard state (Add merges with max — Open dominates Half-Open
	// dominates Closed).
	Breaker BreakerState
	// Trace is the merged trace readout (span count, per-stage and
	// per-action latency histograms) when tracing is enabled, nil
	// otherwise. Add merges readouts histogram-wise.
	Trace *telemetry.TraceStats
}

// Add returns the field-wise sum of s and o — the combinator used to
// merge per-shard or per-engine snapshots.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		RxFrames:      s.RxFrames + o.RxFrames,
		TxFrames:      s.TxFrames + o.TxFrames,
		ParseError:    s.ParseError + o.ParseError,
		KernelTx:      s.KernelTx + o.KernelTx,
		KernelDrop:    s.KernelDrop + o.KernelDrop,
		KernelRetired: s.KernelRetired + o.KernelRetired,
		Punts:         s.Punts + o.Punts,
		AppDrops:      s.AppDrops + o.AppDrops,
		AppErrors:     s.AppErrors + o.AppErrors,
		RingDrops:     s.RingDrops + o.RingDrops,
		ShedUPlane:    s.ShedUPlane + o.ShedUPlane,
		SeqGaps:       s.SeqGaps + o.SeqGaps,
		Duplicates:    s.Duplicates + o.Duplicates,
		Reordered:     s.Reordered + o.Reordered,

		InvalidFrames: s.InvalidFrames + o.InvalidFrames,
		AppPanics:     s.AppPanics + o.AppPanics,
		Quarantined:   s.Quarantined + o.Quarantined,
		ShardRestarts: s.ShardRestarts + o.ShardRestarts,
		ShedPRACH:     s.ShedPRACH + o.ShedPRACH,
		Steals:        s.Steals + o.Steals,
		Health:        maxHealth(s.Health, o.Health),
		Breaker:       maxBreaker(s.Breaker, o.Breaker),
		Trace:         mergeTrace(s.Trace, o.Trace),
	}
}

// maxBreaker returns the worse of two breaker states.
func maxBreaker(a, b BreakerState) BreakerState {
	if a > b {
		return a
	}
	return b
}

// mergeTrace combines two optional trace readouts without mutating either.
func mergeTrace(a, b *telemetry.TraceStats) *telemetry.TraceStats {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	m := a.Merge(*b)
	return &m
}

// Engine runs one middlebox over a fronthaul attachment point (a switch
// port or NIC VF). The datapath is sharded: each configured core owns a
// single-producer/single-consumer ingress ring, an A3 cache, a latency
// window and a slice of the counter store, keyed by the eAxC RU port (see
// shard.go for the execution modes).
type Engine struct {
	cfg   Config
	sched *sim.Scheduler
	clock sim.Clock
	pool  *cpu.Pool
	out   func(frame []byte)

	bus      *telemetry.Bus
	counters *telemetry.Counters

	shards []*shard
	// ws is the work-stealing admission pool when ScalePolicy.WorkSteal
	// is set, nil in the classic hash layout. Set at construction, never
	// reassigned — workers and the producer read a stable pointer.
	ws     *wsPool
	serial bool
	// burst is the App's burst-aware extension when it implements
	// BurstApp, nil otherwise (the shard's flush loop then adapts bursts
	// to per-frame Handle calls).
	burst BurstApp

	// parallel is true while Start'ed workers run. It is written only
	// with no workers alive (before launch, after Stop joined every
	// shard's done channel), so workers and the producer read a stable
	// value.
	parallel bool
	stopc    chan struct{}
}

// sweepEvery bounds how many ingress frames may pass between cache sweeps
// on one shard.
const sweepEvery = 1024

// NewEngine builds and validates an engine. Kernel programs are verified
// here; a program that fails verification refuses to load, like the eBPF
// verifier would. Validation failures wrap the typed errors of errors.go
// (ErrNoApp, ErrBadCores, ErrKernelUnverified, ...) — match with
// errors.Is.
func NewEngine(sched *sim.Scheduler, cfg Config) (*Engine, error) {
	fail := func(err error) (*Engine, error) {
		return nil, fmt.Errorf("core: %s: %w", cfg.Name, err)
	}
	if cfg.Cores < 0 || cfg.Cores > MaxCores {
		return fail(fmt.Errorf("%w: %d", ErrBadCores, cfg.Cores))
	}
	if cfg.Cores == 0 {
		cfg.Cores = 1
	}
	if cfg.CarrierPRBs <= 0 {
		return fail(ErrBadCarrierPRBs)
	}
	if cfg.CacheMaxAge <= 0 {
		cfg.CacheMaxAge = time.Millisecond
	}
	if err := cfg.Burst.validate(); err != nil {
		return fail(err)
	}
	cfg.Burst = cfg.Burst.withDefaults()
	if err := cfg.Supervise.validate(); err != nil {
		return fail(err)
	}
	cfg.Supervise = cfg.Supervise.withDefaults()
	if err := cfg.Scale.validate(); err != nil {
		return fail(err)
	}
	cfg.Scale = cfg.Scale.withDefaults()
	if cfg.Scale.WorkSteal {
		if cfg.Supervise.StallAfter > 0 {
			return fail(fmt.Errorf("%w: shard watchdog (StallAfter)", ErrScaleSupervise))
		}
		if cfg.Supervise.aimd() {
			return fail(fmt.Errorf("%w: AIMD shedding watermarks", ErrScaleSupervise))
		}
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.RingSize > MaxRingSize {
		return fail(fmt.Errorf("%w: %d", ErrBadRing, cfg.RingSize))
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = DefaultTraceRing
	}
	if cfg.TraceRing > MaxRingSize {
		return fail(fmt.Errorf("%w: trace ring %d", ErrBadRing, cfg.TraceRing))
	}
	if cfg.CPlaneHeadroom >= cfg.RingSize {
		return fail(fmt.Errorf("%w: headroom %d with ring size %d", ErrBadHeadroom, cfg.CPlaneHeadroom, cfg.RingSize))
	}
	if cfg.CPlaneHeadroom == 0 {
		cfg.CPlaneHeadroom = cfg.RingSize / 8
	} else if cfg.CPlaneHeadroom < 0 {
		cfg.CPlaneHeadroom = 0 // shedding disabled
	}
	switch cfg.Mode {
	case ModeDPDK:
		if cfg.App == nil {
			return fail(ErrNoApp)
		}
	case ModeXDP:
		if cfg.Kernel == nil {
			return fail(ErrNoKernel)
		}
		if err := cfg.Kernel.Verify(); err != nil {
			return fail(fmt.Errorf("%w: %v", ErrKernelUnverified, err))
		}
	default:
		return fail(fmt.Errorf("%w: %d", ErrBadMode, cfg.Mode))
	}
	e := &Engine{
		cfg:      cfg,
		sched:    sched,
		clock:    sched,
		pool:     cpu.NewPool(cfg.Cores),
		bus:      telemetry.NewBus(),
		counters: telemetry.NewCounters(cfg.Cores),
	}
	_, e.serial = cfg.App.(SerialApp)
	e.burst, _ = cfg.App.(BurstApp)
	e.shards = make([]*shard, cfg.Cores)
	for i := range e.shards {
		e.shards[i] = newShard(e, i)
	}
	if cfg.Scale.WorkSteal {
		e.ws = newWSPool(e)
	}
	e.pool.ResetWindows(sched.Now())
	return e, nil
}

// Name returns the configured middlebox name.
func (e *Engine) Name() string { return e.cfg.Name }

// Mode returns the datapath mode.
func (e *Engine) Mode() Mode { return e.cfg.Mode }

// Shards returns the number of datapath workers.
func (e *Engine) Shards() int { return len(e.shards) }

// SetOutput attaches the transmit function (e.g. a fabric port's Send).
// While parallel workers run, the function is called from every worker
// goroutine and must be safe for concurrent use.
func (e *Engine) SetOutput(fn func(frame []byte)) { e.out = fn }

// Bus returns the middlebox telemetry bus.
func (e *Engine) Bus() *telemetry.Bus { return e.bus }

// Snapshot returns a merged, race-safe view of the datapath counters
// across all shards. It may be called while parallel workers run; the
// result is a consistent per-field sum (fields may trail each other by
// in-flight packets, as with any per-CPU counter readout).
func (e *Engine) Snapshot() Stats {
	var s Stats
	for _, sh := range e.shards {
		st := sh.stats.snapshot()
		st.Breaker = BreakerState(sh.brk.state.Load())
		if sh.tracer != nil {
			ts := sh.tracer.Stats()
			st.Trace = &ts
		}
		s = s.Add(st)
	}
	return s
}

// TraceEnabled reports whether the frame-span trace collector is on.
func (e *Engine) TraceEnabled() bool { return e.shards[0].tracer != nil }

// EnableTracing turns the frame-span trace collector on for an engine that
// was built without Config.Trace, giving every shard a span ring of
// ringCap entries (0 means DefaultTraceRing). It is a management-plane
// call: it fails with ErrRunning while parallel workers run, and is a
// no-op on an engine already tracing.
func (e *Engine) EnableTracing(ringCap int) error {
	if e.parallel {
		return fmt.Errorf("core: %s: %w", e.cfg.Name, ErrRunning)
	}
	if ringCap <= 0 {
		ringCap = DefaultTraceRing
	}
	if ringCap > MaxRingSize {
		return fmt.Errorf("core: %s: %w: trace ring %d", e.cfg.Name, ErrBadRing, ringCap)
	}
	e.cfg.Trace = true
	e.cfg.TraceRing = ringCap
	for _, sh := range e.shards {
		if sh.tracer == nil {
			sh.tracer = telemetry.NewTracer(ringCap)
		}
	}
	return nil
}

// TraceSpans returns the retained frame spans of every shard (each shard's
// run oldest-first; order across shards follows shard ids — sort by
// Span.EnqueuedAt, as telemetry.DumpTrace does, for a global timeline).
// It returns nil when tracing is off.
func (e *Engine) TraceSpans() []telemetry.Span {
	var spans []telemetry.Span
	for _, sh := range e.shards {
		if sh.tracer != nil {
			spans = append(spans, sh.tracer.Spans()...)
		}
	}
	return spans
}

// CounterValue returns the merged value of a named shared counter — the
// userspace readout of the kernel program's per-CPU map entries.
func (e *Engine) CounterValue(name string) uint64 { return e.counters.Value(name) }

// CounterNames lists the shared counters that exist, sorted.
func (e *Engine) CounterNames() []string { return e.counters.Names() }

// Control forwards a management command to the App (§3.2's management
// interface). It fails if the App is absent or not controllable.
// Control is a management-plane call: on an engine with running parallel
// workers the App must serialize Control against its Handle path itself.
func (e *Engine) Control(cmd string, args map[string]string) error {
	if c, ok := e.cfg.App.(Controllable); ok {
		return c.Control(cmd, args)
	}
	return fmt.Errorf("core: %s: app does not expose a management interface", e.cfg.Name)
}

// Utilization returns the busiest core's utilization since the last
// ResetMeasurement. Poll-mode engines always report 1.0 (Fig. 16).
func (e *Engine) Utilization() float64 {
	return e.pool.MaxUtilization(e.sched.Now(), e.cfg.Mode == ModeDPDK)
}

// ResetMeasurement starts a fresh utilization/latency window.
func (e *Engine) ResetMeasurement() {
	e.pool.ResetWindows(e.sched.Now())
	for _, sh := range e.shards {
		sh.resetLatency()
	}
}

// LatencyPercentile returns the p-th percentile (0..1) of per-packet
// processing (service) time for a traffic class across all shards, and
// whether samples exist. Queueing delay is excluded — it shows up in
// emission times and therefore in endpoint deadline misses, matching how
// the paper reports Fig. 15b.
func (e *Engine) LatencyPercentile(class TrafficClass, p float64) (time.Duration, bool) {
	var cp []time.Duration
	for _, sh := range e.shards {
		cp = sh.latencySamples(cp, class)
	}
	if len(cp) == 0 {
		return 0, false
	}
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	idx := int(p * float64(len(cp)-1))
	return cp[idx], true
}

// Start launches one worker goroutine per shard: the parallel execution
// mode, for wall-clock throughput on real cores. Virtual time freezes at
// the current instant while workers run, which keeps every virtual-time
// computation deterministic; outputs are emitted synchronously from the
// workers (SetOutput's function must tolerate concurrent calls). Do not
// Start an engine that is attached to a live simulated testbed — the
// fabric expects the deterministic inline mode.
//
// Start fails with ErrSerialApp when a multi-shard engine hosts an App
// that declared itself serial, and with ErrRunning when workers are
// already running.
func (e *Engine) Start() error {
	if e.parallel {
		return fmt.Errorf("core: %s: %w", e.cfg.Name, ErrRunning)
	}
	if e.serial && len(e.shards) > 1 {
		return fmt.Errorf("core: %s: %w", e.cfg.Name, ErrSerialApp)
	}
	e.clock = sim.Frozen(e.sched.Now())
	e.parallel = true
	e.stopc = make(chan struct{})
	for _, sh := range e.shards {
		sh.spawn(e.stopc)
	}
	return nil
}

// Stop halts the parallel workers, draining every accepted frame first,
// and returns the engine to the deterministic inline mode. It is a no-op
// on an engine that was never started. Stop joins each shard's *current*
// worker incarnation; goroutines the watchdog abandoned exit on their
// own when their wedged App call finally returns (see DESIGN.md §6.7) —
// a worker wedged forever without a supervising restart would hang Stop,
// exactly as it would have hung the pre-supervision engine.
func (e *Engine) Stop() {
	if !e.parallel {
		return
	}
	close(e.stopc)
	for _, sh := range e.shards {
		<-sh.done
	}
	e.parallel = false
	e.clock = e.sched
}

// shardFor steers a frame: packets sharing an eAxC RU port always land on
// the same shard (per-antenna spreading, §6.4.1), so per-stream FIFO
// order and per-shard cache affinity hold by construction. Frames with no
// readable eAxC go to shard 0, whose full decode will count the parse
// error.
func (e *Engine) shardFor(frame []byte) *shard {
	if len(e.shards) == 1 {
		return e.shards[0]
	}
	eaxc, ok := fh.PeekEAxC(frame)
	if !ok {
		return e.shards[0]
	}
	// The RU port is the low nibble of the eAxC wire form. Keying on it —
	// rather than the full id — keeps every packet that can share an A3
	// cache entry (RU-sharing tenants address the same RU port from
	// different DU ports) on one shard.
	return e.shards[int(eaxc&0xf)%len(e.shards)]
}

// Ingress is the receive entry point; wire it to a fabric port handler.
// Like a NIC RX queue it has a single-producer contract: calls must not
// overlap (the simulated fabric delivers from the scheduler goroutine,
// which guarantees this). In deterministic mode the frame is processed
// inline; under parallel workers it is enqueued on its shard's ring.
// When a ring nears overflow, admission degrades gracefully: inside the
// last Config.CPlaneHeadroom free slots U-plane frames are shed (counted
// in Stats.ShedUPlane) to keep room for C-plane, and only a completely
// full ring drops a frame unconditionally (Stats.RingDrops) — as a
// saturated NIC queue would. Every frame handed to Ingress is therefore
// accounted for as processed, shed, or ring-dropped.
//
//ranvet:detpath
//ranvet:goroutine producer
func (e *Engine) Ingress(frame []byte) {
	if e.ws != nil {
		e.wsIngress(frame, true)
		return
	}
	sh := e.shardFor(frame)
	if !sh.admit(frame) {
		return
	}
	if e.parallel {
		sh.wakeUp()
	} else {
		sh.drain(e.cfg.Burst.Batch)
	}
}

// TryIngress is the backpressure variant of Ingress for producers that
// prefer retry over drop: it reports whether the frame was accepted and
// never counts a drop.
//
//ranvet:detpath
//ranvet:goroutine producer
func (e *Engine) TryIngress(frame []byte) bool {
	if e.ws != nil {
		return e.wsIngress(frame, false)
	}
	sh := e.shardFor(frame)
	if !sh.enqueue(frame) {
		return false
	}
	if e.parallel {
		sh.wakeUp()
	} else {
		sh.drain(e.cfg.Burst.Batch)
	}
	return true
}

// runKernel evaluates the rule program on w's shard. It returns the
// verdict, the CPU cost of the evaluation, and the packets to transmit
// on VerdictTx.
func (e *Engine) runKernel(w *worker, pkt *fh.Packet) (KernelVerdict, time.Duration, []*fh.Packet) {
	sh := w.sh
	t, err := pkt.Timing()
	if err != nil {
		return VerdictDrop, cpu.CostKernelRule, nil
	}
	var cost time.Duration
	for i := range e.cfg.Kernel.Rules {
		r := &e.cfg.Kernel.Rules[i]
		cost += cpu.CostKernelRule
		if !r.Match.Matches(pkt, t) {
			continue
		}
		if r.Exponents != nil {
			seen, used := scanExponents(w, pkt, e.cfg.CarrierPRBs, r.Exponents, t)
			cost += cpu.ExponentScanCost(seen)
			// Constant names: concatenating per frame would allocate.
			seenName, usedName := "prb.seen.dl", "prb.utilized.dl"
			if t.Direction == 0 {
				seenName, usedName = "prb.seen.ul", "prb.utilized.ul"
			}
			w.counter(seenName).Add(sh.id, uint64(seen))
			w.counter(usedName).Add(sh.id, uint64(used))
		}
		switch r.Verdict {
		case VerdictDrop:
			return VerdictDrop, cost, nil
		case VerdictPass:
			return VerdictPass, cost, nil
		case VerdictTx:
			// The emit list lives in a per-shard scratch buffer: process
			// hands it to emitAll before the next frame, so the backing
			// array is reused instead of reallocated per Tx verdict.
			sh.kernelEmits = sh.kernelEmits[:0]
			for j := range r.Mirrors {
				cp := pkt.Clone()
				r.Mirrors[j].apply(cp)
				cost += cpu.CostReplicate + cpu.CostHeaderMod
				w.sh.kernelEmits = append(w.sh.kernelEmits, cp)
			}
			if r.Rewrite != nil {
				r.Rewrite.apply(pkt)
				cost += cpu.CostHeaderMod
				w.sh.kernelEmits = append(w.sh.kernelEmits, pkt)
			}
			cost += cpu.CostKernelTx
			return VerdictTx, cost, sh.kernelEmits
		}
	}
	return VerdictPass, cost, nil
}

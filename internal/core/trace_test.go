package core

import (
	"errors"
	"testing"
	"time"

	"ranbooster/internal/fh"
	"ranbooster/internal/oran"
	"ranbooster/internal/sim"
	"ranbooster/internal/telemetry"
)

// TestTraceSpansRecorded drives a traced DPDK engine and checks the span's
// identity fields, stage accounting, and action attribution end to end.
func TestTraceSpansRecorded(t *testing.T) {
	app := appFunc(func(ctx *Context, pkt *fh.Packet) error {
		key, err := fh.KeyOf(pkt)
		if err != nil {
			return err
		}
		ctx.Cache(key, ctx.Replicate(pkt))
		ctx.ChargeHeaderMod()
		ctx.Forward(pkt)
		return nil
	})
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: app, CarrierPRBs: 106, Trace: true, TraceRing: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !e.TraceEnabled() {
		t.Fatal("TraceEnabled = false on a Config.Trace engine")
	}
	e.SetOutput(func([]byte) {})
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 3, 2, 100))
	s.Run()

	spans := e.TraceSpans()
	if len(spans) != 1 {
		t.Fatalf("TraceSpans = %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.EAxC != 3 || sp.Frame != 1 || sp.Subframe != 0 || sp.Slot != 0 {
		t.Fatalf("span identity = eAxC %d slot %s, want eAxC 3 slot 1.0.0", sp.EAxC, sp.SlotKey())
	}
	if sp.Class != uint8(ClassDLU) {
		t.Fatalf("span class = %s, want DL U-Plane", telemetry.ClassName(sp.Class))
	}
	if sp.Stages[telemetry.StageDecode] <= 0 {
		t.Fatalf("decode stage not charged: %+v", sp.Stages)
	}
	if sp.Stages[telemetry.StageKernel] != 0 {
		t.Fatalf("kernel stage charged on a DPDK engine: %v", sp.Stages[telemetry.StageKernel])
	}
	wantActions := uint8(1<<telemetry.ActionRedirect | 1<<telemetry.ActionReplicate |
		1<<telemetry.ActionCache | 1<<telemetry.ActionModify)
	if sp.Actions != wantActions {
		t.Fatalf("action mask = %08b, want %08b", sp.Actions, wantActions)
	}
	var actionSum time.Duration
	for _, d := range sp.ActionCost {
		if d <= 0 {
			t.Fatalf("flagged action with no cost: %+v", sp.ActionCost)
		}
		actionSum += d
	}
	if app := sp.Stages[telemetry.StageApp]; app != actionSum {
		t.Fatalf("app stage %v != sum of action costs %v", app, actionSum)
	}
	total := sp.Stages[telemetry.StageQueue] + sp.Stages[telemetry.StageDecode] +
		sp.Stages[telemetry.StageApp]
	if sp.Stages[telemetry.StageTotal] != total {
		t.Fatalf("total %v != queue+decode+app %v", sp.Stages[telemetry.StageTotal], total)
	}
	if got := time.Duration(sp.DoneAt - sp.EnqueuedAt); got != sp.Stages[telemetry.StageTotal] {
		t.Fatalf("DoneAt-EnqueuedAt %v != total stage %v", got, sp.Stages[telemetry.StageTotal])
	}

	st := e.Snapshot()
	if st.Trace == nil {
		t.Fatal("Snapshot.Trace nil on a traced engine")
	}
	if st.Trace.Spans != 1 || st.Trace.Stage[telemetry.StageTotal].Count != 1 {
		t.Fatalf("Snapshot.Trace = %d spans, total count %d", st.Trace.Spans, st.Trace.Stage[telemetry.StageTotal].Count)
	}
	if st.Trace.Action[telemetry.ActionCache].Count != 1 {
		t.Fatalf("A3 histogram count = %d, want 1", st.Trace.Action[telemetry.ActionCache].Count)
	}
}

// TestTraceDisabledByDefault: an untraced engine records nothing and its
// snapshot carries no trace block, so the disabled path stays free.
func TestTraceDisabledByDefault(t *testing.T) {
	s, e, _ := newDPDK(t, &forwarder{})
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 3, 100))
	s.Run()
	if e.TraceEnabled() {
		t.Fatal("TraceEnabled on a default engine")
	}
	if spans := e.TraceSpans(); spans != nil {
		t.Fatalf("TraceSpans = %d spans on an untraced engine", len(spans))
	}
	if st := e.Snapshot(); st.Trace != nil {
		t.Fatalf("Snapshot.Trace = %+v, want nil", st.Trace)
	}
}

// TestEnableTracing retrofits tracing onto a running deployment the way
// scenario code does, and checks the management-plane guards.
func TestEnableTracing(t *testing.T) {
	s, e, _ := newDPDK(t, &forwarder{})
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 1, 100))
	s.Run()

	if err := e.EnableTracing(8); err != nil {
		t.Fatal(err)
	}
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 2, 100))
	s.Run()
	if spans := e.TraceSpans(); len(spans) != 1 {
		t.Fatalf("spans after EnableTracing = %d, want 1 (pre-enable frame untraced)", len(spans))
	}
	// Idempotent, and ring-capacity validation still applies.
	if err := e.EnableTracing(0); err != nil {
		t.Fatalf("re-enable: %v", err)
	}
	if err := e.EnableTracing(MaxRingSize + 1); !errors.Is(err, ErrBadRing) {
		t.Fatalf("oversized trace ring: err = %v, want ErrBadRing", err)
	}

	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer e.Stop()
	if err := e.EnableTracing(8); !errors.Is(err, ErrRunning) {
		t.Fatalf("EnableTracing while running: err = %v, want ErrRunning", err)
	}
}

// TestTraceRingValidation rejects oversized span rings at construction.
func TestTraceRingValidation(t *testing.T) {
	s := sim.NewScheduler()
	_, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: &forwarder{}, CarrierPRBs: 106,
		Trace: true, TraceRing: MaxRingSize + 1})
	if !errors.Is(err, ErrBadRing) {
		t.Fatalf("err = %v, want ErrBadRing", err)
	}
}

// TestTraceXDPKernelStage: on an XDP engine the kernel stage is charged,
// and kernel-handled frames leave spans with no app stage.
func TestTraceXDPKernelStage(t *testing.T) {
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{
		Name: "mon", Mode: ModeXDP, CarrierPRBs: 106, Trace: true,
		Kernel: &KernelProgram{Rules: []Rule{{Verdict: VerdictDrop}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 1, 100))
	s.Run()
	spans := e.TraceSpans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1 (kernel drops are traced)", len(spans))
	}
	sp := spans[0]
	if sp.Stages[telemetry.StageKernel] <= 0 {
		t.Fatalf("kernel stage not charged: %+v", sp.Stages)
	}
	if sp.Stages[telemetry.StageApp] != 0 || sp.Actions != 0 {
		t.Fatalf("kernel-dropped frame carries app accounting: %+v", sp)
	}
}

// TestTrafficClassNamesAligned pins telemetry's span-class name table to
// core's TrafficClass, the contract ClassName relies on.
func TestTrafficClassNamesAligned(t *testing.T) {
	for c := TrafficClass(0); c < classCount; c++ {
		if got := telemetry.ClassName(uint8(c)); got != c.String() {
			t.Fatalf("telemetry.ClassName(%d) = %q, core name %q", c, got, c.String())
		}
	}
}

// TestStatsAddMergesTrace: the Stats combinator must merge optional trace
// readouts nil-safely.
func TestStatsAddMergesTrace(t *testing.T) {
	tr := telemetry.NewTracer(4)
	var sp telemetry.Span
	sp.Stages[telemetry.StageTotal] = time.Microsecond
	tr.Record(sp)
	ts := tr.Stats()

	a := Stats{RxFrames: 1, Trace: &ts}
	b := Stats{RxFrames: 2}
	if got := a.Add(b); got.Trace == nil || got.Trace.Spans != 1 {
		t.Fatalf("nil-right merge lost trace: %+v", got.Trace)
	}
	if got := b.Add(a); got.Trace == nil || got.Trace.Spans != 1 {
		t.Fatalf("nil-left merge lost trace: %+v", got.Trace)
	}
	got := a.Add(a)
	if got.Trace.Spans != 2 || got.Trace.Stage[telemetry.StageTotal].Count != 2 {
		t.Fatalf("merge = %d spans, total count %d, want 2/2", got.Trace.Spans, got.Trace.Stage[telemetry.StageTotal].Count)
	}
	if ts.Spans != 1 {
		t.Fatalf("merge mutated its input: %d spans", ts.Spans)
	}
}

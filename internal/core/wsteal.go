package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"ranbooster/internal/fh"
	"ranbooster/internal/sim"
)

// The work-stealing admission pool (ScalePolicy.WorkSteal, DESIGN.md
// §6.8). Every distinct eAxC owns a streamQ — an SPSC ring plus the
// stream's private state (sequence tracker, A3 cache) — and the shard
// workers drain whichever streams have backlog:
//
//   - The producer pushes a frame onto its stream's ring and, when the
//     stream was idle, publishes the stream on its home worker's deque.
//   - Workers pop streams from their own deque first, then steal the
//     oldest half of the deepest victim deque (leaving the victim's last
//     stream for its owner), and finally hedge: once a queued stream has
//     waited HedgeAfterPolls pool-wide idle polls, an idle worker takes
//     it even if it is the victim's last — the overdrive that keeps a
//     straggler's backlog moving while the straggler is buried in a hot
//     stream. Stolen and hedged pickups are counted in Stats.Steals.
//
// FIFO argument: a stream is in exactly one of three states — idle (not
// published), queued (in exactly one deque), running (owned by exactly
// one worker). The only transition out of idle is a compare-and-swap, so
// a stream is never published twice; a worker drains the stream's ring
// in order; and the runner's exit protocol (store idle, re-check the
// ring, re-publish on a successful idle→queued CAS) closes the window
// where the producer pushed a frame after the runner's last pop but
// before the state store. Exactly one publisher wins, so no frame is
// stranded and no two workers ever drain one stream concurrently —
// per-eAxC FIFO order is preserved by construction. Cross-worker
// visibility of the stream's seq map and cache is ordered by the deque
// mutex (publish under lock happens-before pickup under the same lock).
//
// In deterministic inline mode the state machine is bypassed entirely:
// Ingress drains the stream on the spot through its home shard's worker,
// so seeded runs replay bit-identically and Stats.Steals stays zero.

// Stream state machine values (streamQ.state).
const (
	wsIdle uint32 = iota
	wsQueued
	wsRunning
)

// wsNoEAxC keys the fallback stream for frames with no readable eAxC;
// the full decode in processOne accounts the parse error.
const wsNoEAxC = 1 << 16

// wsStealMax bounds how many streams one steal moves; a thief that could
// take more comes back for the rest, which keeps the per-shard steal
// scratch fixed-size.
const wsStealMax = 32

// streamQ is one eAxC stream's admission state: the SPSC ingress ring
// plus everything that must migrate with the stream when a different
// worker picks it up.
type streamQ struct {
	// key is the stream's eAxC wire id (or wsNoEAxC).
	key uint32
	// home is the shard whose deque the producer publishes to and whose
	// worker drains the stream inline in deterministic mode. Derived from
	// key, so seeded runs are reproducible.
	home int
	in   *ring
	// state is the idle/queued/running machine documented above.
	//
	//ranvet:statemach wsIdle->wsQueued wsQueued->wsRunning wsRunning->wsQueued wsRunning->wsIdle
	state atomic.Uint32
	// queuedAt is the pool poll-epoch when the stream was last published
	// — the staleness clock for hedged pickup.
	queuedAt atomic.Uint64
	// seq and cache are the stream's private slices of what shard.seq and
	// worker.cache hold in the hash layout; the running worker swaps them
	// in before processing (handoff ordered by the deque mutex).
	seq   map[seqKey]uint8
	cache *Cache
}

// wsDeque is one worker's stream backlog: owner pushes and pops at
// opposite ends of a compacting slice, thieves take from the head (the
// oldest streams — exactly the ones a buried owner is slowest to reach).
type wsDeque struct {
	mu   sync.Mutex
	q    []*streamQ
	head int
}

// push appends a stream to the deque tail.
func (d *wsDeque) push(sq *streamQ) {
	d.mu.Lock()
	d.q = append(d.q, sq)
	d.mu.Unlock()
}

// pushAll appends a stolen batch under one lock acquisition.
func (d *wsDeque) pushAll(sqs []*streamQ) {
	d.mu.Lock()
	d.q = append(d.q, sqs...)
	d.mu.Unlock()
}

// pop takes the oldest stream, nil when the deque is empty.
func (d *wsDeque) pop() *streamQ {
	d.mu.Lock()
	if d.head == len(d.q) {
		d.mu.Unlock()
		return nil
	}
	sq := d.q[d.head]
	d.q[d.head] = nil
	d.head++
	if d.head == len(d.q) {
		d.q, d.head = d.q[:0], 0
	}
	d.mu.Unlock()
	return sq
}

// size reports the backlog depth.
func (d *wsDeque) size() int {
	d.mu.Lock()
	n := len(d.q) - d.head
	d.mu.Unlock()
	return n
}

// steal moves up to half of d's backlog (oldest first) into buf and
// returns how many moved. Unless takeAll — the final drain on Stop — the
// victim keeps at least one stream, so an owner between bursts is never
// left idle by its thieves. The copy-out-then-release shape (the thief
// appends to its own deque after unlocking) keeps lock acquisition
// one-at-a-time: thieves stealing from each other cannot deadlock.
func (d *wsDeque) steal(buf []*streamQ, takeAll bool) int {
	d.mu.Lock()
	avail := len(d.q) - d.head
	take := avail / 2
	if takeAll {
		take = avail
	}
	if take > len(buf) {
		take = len(buf)
	}
	for i := 0; i < take; i++ {
		buf[i] = d.q[d.head]
		d.q[d.head] = nil
		d.head++
	}
	if d.head == len(d.q) {
		d.q, d.head = d.q[:0], 0
	}
	d.mu.Unlock()
	return take
}

// takeStale takes the deque's oldest stream iff it has been queued for
// at least `after` pool-wide idle polls — the hedged pickup.
func (d *wsDeque) takeStale(now uint64, after int) *streamQ {
	d.mu.Lock()
	if d.head < len(d.q) {
		sq := d.q[d.head]
		if now-sq.queuedAt.Load() >= uint64(after) {
			d.q[d.head] = nil
			d.head++
			if d.head == len(d.q) {
				d.q, d.head = d.q[:0], 0
			}
			d.mu.Unlock()
			return sq
		}
	}
	d.mu.Unlock()
	return nil
}

// wsPool is the engine's work-stealing admission state: the stream table
// (producer goroutine only — the single-producer Ingress contract) and
// one deque per shard worker.
type wsPool struct {
	eng    *Engine
	policy ScalePolicy
	// headroom is the per-stream C-plane reserve, Config.CPlaneHeadroom
	// clamped to StreamRing/8.
	headroom int
	// byKey/order are the stream table. Producer-owned: looked up and
	// grown only from Ingress/TryIngress.
	byKey map[uint32]*streamQ
	order []*streamQ
	// deques[i] is shard i's backlog.
	deques []wsDeque
	// polls counts pool-wide empty worker polls — the virtual staleness
	// clock for hedged pickup (advancing exactly when someone is idle,
	// which is exactly when hedging matters).
	polls atomic.Uint64
	// rr rotates the secondary wake target (producer goroutine only).
	rr uint64
}

func newWSPool(e *Engine) *wsPool {
	p := &wsPool{
		eng:      e,
		policy:   e.cfg.Scale,
		headroom: e.cfg.CPlaneHeadroom,
		byKey:    make(map[uint32]*streamQ),
		deques:   make([]wsDeque, len(e.shards)),
	}
	if max := p.policy.StreamRing / 8; p.headroom > max {
		p.headroom = max
	}
	return p
}

// stream resolves a frame to its stream queue, creating it on first
// sight (the only allocation on this path, paid once per stream).
func (p *wsPool) stream(frame []byte) *streamQ {
	key := uint32(wsNoEAxC)
	if eaxc, ok := fh.PeekEAxC(frame); ok {
		key = uint32(eaxc)
	}
	if sq := p.byKey[key]; sq != nil {
		return sq
	}
	return p.addStream(key)
}

func (p *wsPool) addStream(key uint32) *streamQ {
	if len(p.order) >= p.policy.MaxStreams {
		// At capacity: fold the new key onto an existing queue. The fold
		// is a pure function of the key and the (now frozen) pool size,
		// so it is stable — per-eAxC FIFO holds through the shared queue.
		sq := p.order[int(key)%len(p.order)]
		p.byKey[key] = sq
		return sq
	}
	sq := &streamQ{
		key: key,
		// Fibonacci-style spread over the full id: unlike the RU-port
		// nibble hash, distinct streams of one cell land on distinct
		// home workers.
		home:  int((key * 2654435761) >> 16 % uint32(len(p.deques))),
		in:    newRing(p.policy.StreamRing),
		seq:   make(map[seqKey]uint8),
		cache: NewCache(p.eng.cfg.CacheMaxAge),
	}
	p.byKey[key] = sq
	p.order = append(p.order, sq)
	return sq
}

// Streams reports how many distinct stream queues exist. Producer
// goroutine only (like Ingress).
func (p *wsPool) Streams() int { return len(p.order) }

// wsIngress is Ingress/TryIngress for the work-stealing layout. account
// selects the Ingress semantics (shed and drop with the loss counted on
// the stream's home shard); without it the push is the backpressure
// variant that never counts a drop.
func (e *Engine) wsIngress(frame []byte, account bool) bool {
	p := e.ws
	sq := p.stream(frame)
	home := e.shards[sq.home]
	if account && p.headroom > 0 && len(sq.in.buf)-sq.in.queued() <= p.headroom {
		if fh.PeekPlane(frame) != fh.PlaneC {
			home.stats.shedUPlane.Add(1)
			return false
		}
	}
	var at sim.Time
	if home.tracer != nil {
		at = home.now()
	}
	if !sq.in.push(frame, at) {
		if account {
			home.stats.ringDrops.Add(1)
		}
		return false
	}
	if !e.parallel {
		// Deterministic inline mode: drain the stream on the spot through
		// its home worker — the state machine never engages, seeded runs
		// replay bit-identically.
		home.w.drainStream(sq)
		return true
	}
	if sq.state.CompareAndSwap(wsIdle, wsQueued) {
		sq.queuedAt.Store(p.polls.Load())
		p.deques[sq.home].push(sq)
	}
	home.wakeUp()
	// Secondary wake, rotating: if the home worker is buried in another
	// stream, some awake worker will steal or hedge this one.
	p.rr++
	e.shards[int(p.rr)%len(e.shards)].wakeUp()
	return true
}

// next hands sh's worker its next stream: own deque, then steal-half
// from the deepest victim, then hedged pickup of a stale straggler. The
// claimed stream is moved to running; stolen and hedged streams are
// counted in Stats.Steals on the thief's shard. In final mode (Stop's
// drain) the leave-one rule and the staleness bar are waived so every
// published stream is drained.
func (p *wsPool) next(sh *shard, final bool) *streamQ {
	self := sh.id
	if sq := p.deques[self].pop(); sq != nil {
		sq.state.Store(wsRunning)
		return sq
	}
	n := len(p.deques)
	if n == 1 {
		return nil
	}
	// Deepest victim first: steals drain toward the pool's center of
	// mass instead of ping-ponging singletons.
	floor := 1 // leave-one: a singleton backlog is its owner's
	if final {
		floor = 0
	}
	best, bestLen := -1, floor
	for i := 1; i < n; i++ {
		j := (self + i) % n
		if l := p.deques[j].size(); l > bestLen {
			best, bestLen = j, l
		}
	}
	if best >= 0 {
		buf := sh.stealBuf[:wsStealMax]
		if k := p.deques[best].steal(buf, final); k > 0 {
			sh.stats.steals.Add(uint64(k))
			sq := buf[0]
			sq.state.Store(wsRunning)
			if k > 1 {
				p.deques[self].pushAll(buf[1:k])
			}
			for i := 0; i < k; i++ {
				buf[i] = nil
			}
			return sq
		}
	}
	if final {
		return nil
	}
	now := p.polls.Load()
	for i := 1; i < n; i++ {
		j := (self + i) % n
		if sq := p.deques[j].takeStale(now, p.policy.HedgeAfterPolls); sq != nil {
			sh.stats.steals.Add(1)
			sq.state.Store(wsRunning)
			return sq
		}
	}
	return nil
}

// runWS is the parallel-mode worker loop of the work-stealing layout —
// the counterpart of worker.run. Same spin-then-block cadence; the
// drain step claims whole streams instead of polling one ring.
//
//ranvet:hotpath
//ranvet:goroutine shard-worker
func (w *worker) runWS(stop <-chan struct{}) {
	defer w.retire()
	p := w.eng.ws
	maxIdle := w.eng.cfg.Burst.MaxIdlePolls
	idle := 0
	for {
		if sq := p.next(w.sh, false); sq != nil {
			w.runStream(sq)
			idle = 0
			continue
		}
		p.polls.Add(1)
		if idle++; idle < maxIdle {
			runtime.Gosched()
			continue
		}
		idle = 0
		select {
		case <-w.sh.wake:
		case <-stop:
			// Final drain: claim and drain published streams until the
			// pool is dry. A stream another worker is still running is
			// that worker's to finish — its own final loop drains it.
			for {
				sq := p.next(w.sh, true)
				if sq == nil {
					return
				}
				w.runStream(sq)
			}
		}
	}
}

// runStream drains one burst from a claimed stream through the ordinary
// burst pipeline, with the stream's private seq map and A3 cache swapped
// in, then releases the claim: a stream with leftover backlog goes back
// on this worker's deque; an empty one parks idle, with the
// re-check-and-republish step that closes the producer race (see the
// FIFO argument at the top of the file).
func (w *worker) runStream(sq *streamQ) {
	sh := w.sh
	w.cache = sq.cache
	w.seq = sq.seq
	//ranvet:allow spscsingle mode-exclusive: runStream runs only under parallel workers; the producer's inline drain (drainStream) exists only when workers are not spawned
	n := sq.in.popN(sh.burstFrames, sh.burstTs)
	if n > 0 {
		w.processBurst(sh.burstFrames[:n], sh.burstTs[:n])
	}
	p := w.eng.ws
	if sq.in.queued() > 0 {
		sq.state.Store(wsQueued)
		sq.queuedAt.Store(p.polls.Load())
		p.deques[sh.id].push(sq)
		return
	}
	sq.state.Store(wsIdle)
	if sq.in.queued() > 0 && sq.state.CompareAndSwap(wsIdle, wsQueued) {
		sq.queuedAt.Store(p.polls.Load())
		p.deques[sh.id].push(sq)
	}
}

// drainStream is the deterministic inline drain: the producer goroutine
// empties the stream through its home worker immediately, so inline
// semantics (and bit-identical seeded replays) are preserved.
func (w *worker) drainStream(sq *streamQ) {
	sh := w.sh
	w.cache = sq.cache
	w.seq = sq.seq
	for {
		//ranvet:allow spscsingle mode-exclusive: the inline drain runs on the producer goroutine only in deterministic mode, where worker goroutines are never spawned
		n := sq.in.popN(sh.burstFrames, sh.burstTs)
		if n == 0 {
			return
		}
		w.processBurst(sh.burstFrames[:n], sh.burstTs[:n])
	}
}

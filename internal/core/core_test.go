package core

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"ranbooster/internal/bfp"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
	"ranbooster/internal/sim"
)

var (
	duMAC  = eth.MAC{0x02, 0, 0, 0, 0, 0x01}
	ruMAC  = eth.MAC{0x02, 0, 0, 0, 0, 0x02}
	ru2MAC = eth.MAC{0x02, 0, 0, 0, 0, 0x03}
)

func bfp9() bfp.Params { return bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint} }

func uplaneFrame(t *testing.T, b *fh.Builder, dir oran.Direction, port uint8, sym uint8, fill int16) []byte {
	t.Helper()
	g := iq.NewGrid(4)
	for i := range g {
		for j := range g[i] {
			g[i][j] = iq.Sample{I: fill, Q: -fill}
		}
	}
	payload, err := bfp.CompressGrid(nil, g, bfp9())
	if err != nil {
		t.Fatal(err)
	}
	msg := &oran.UPlaneMsg{
		Timing:   oran.Timing{Direction: dir, FrameID: 1, SubframeID: 0, SlotID: 0, SymbolID: sym},
		Sections: []oran.USection{{NumPRB: 4, Comp: bfp9(), Payload: payload}},
	}
	return b.UPlane(ecpri.PcID{RUPort: port}, msg)
}

func cplaneFrame(t *testing.T, b *fh.Builder, dir oran.Direction, port uint8) []byte {
	t.Helper()
	msg := &oran.CPlaneMsg{
		Timing:      oran.Timing{Direction: dir, FrameID: 1, SymbolID: 0},
		SectionType: oran.SectionType1,
		Comp:        bfp9(),
		Sections:    []oran.CSection{{NumPRB: 106, ReMask: 0xfff, NumSymbol: 14}},
	}
	return b.CPlane(ecpri.PcID{RUPort: port}, msg)
}

// forwarder forwards every packet unchanged. handled is atomic because
// the work-stealing tests run this app on several shard workers at once.
type forwarder struct{ handled atomic.Int64 }

func (f *forwarder) Name() string { return "forwarder" }
func (f *forwarder) Handle(ctx *Context, pkt *fh.Packet) error {
	f.handled.Add(1)
	ctx.Forward(pkt)
	return nil
}

func newDPDK(t *testing.T, app App) (*sim.Scheduler, *Engine, *[][]byte) {
	t.Helper()
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: app, CarrierPRBs: 106})
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	e.SetOutput(func(f []byte) { out = append(out, f) })
	return s, e, &out
}

func TestEngineForwards(t *testing.T) {
	app := &forwarder{}
	s, e, out := newDPDK(t, app)
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 3, 100))
	s.Run()
	if app.handled.Load() != 1 || len(*out) != 1 {
		t.Fatalf("handled=%d out=%d", app.handled.Load(), len(*out))
	}
	st := e.Snapshot()
	if st.RxFrames != 1 || st.TxFrames != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEngineLatencyCharged(t *testing.T) {
	s, e, _ := newDPDK(t, &forwarder{})
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 3, 100))
	s.Run()
	lat, ok := e.LatencyPercentile(ClassDLU, 0.5)
	if !ok {
		t.Fatal("no latency samples")
	}
	// Parse + forward: well under 300 ns (Fig. 15b's DL bound).
	if lat <= 0 || lat >= 300*time.Nanosecond {
		t.Fatalf("DL latency = %v", lat)
	}
}

func TestEngineQueueingDelaysEmission(t *testing.T) {
	// Two packets on the same core: the second's emission must queue
	// behind the first's processing.
	slow := appFunc(func(ctx *Context, pkt *fh.Packet) error {
		ctx.AddCost(10 * time.Microsecond)
		ctx.Forward(pkt)
		return nil
	})
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: slow, CarrierPRBs: 106})
	if err != nil {
		t.Fatal(err)
	}
	var at []sim.Time
	e.SetOutput(func([]byte) { at = append(at, s.Now()) })
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 3, 100))
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 4, 100))
	s.Run()
	if len(at) != 2 {
		t.Fatalf("emissions = %d", len(at))
	}
	if at[1].Sub(at[0]) < 10*time.Microsecond {
		t.Fatalf("no queueing: %v then %v", at[0], at[1])
	}
}

type appFunc func(ctx *Context, pkt *fh.Packet) error

func (appFunc) Name() string                            { return "func" }
func (f appFunc) Handle(c *Context, p *fh.Packet) error { return f(c, p) }

func TestEngineMultiCoreParallelism(t *testing.T) {
	slow := appFunc(func(ctx *Context, pkt *fh.Packet) error {
		ctx.AddCost(10 * time.Microsecond)
		ctx.Forward(pkt)
		return nil
	})
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, Cores: 2, App: slow, CarrierPRBs: 106})
	if err != nil {
		t.Fatal(err)
	}
	var at []sim.Time
	e.SetOutput(func([]byte) { at = append(at, s.Now()) })
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 3, 100)) // core 0
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 1, 3, 100)) // core 1
	s.Run()
	if len(at) != 2 {
		t.Fatalf("emissions = %d", len(at))
	}
	if at[1].Sub(at[0]) > time.Microsecond {
		t.Fatalf("ports on different cores should process in parallel: %v vs %v", at[0], at[1])
	}
}

func TestCacheActions(t *testing.T) {
	var taken int
	app := appFunc(func(ctx *Context, pkt *fh.Packet) error {
		key, err := fh.KeyOf(pkt)
		if err != nil {
			return err
		}
		ctx.Cache(key, pkt)
		if ctx.CachedCount(key) == 2 {
			taken = len(ctx.TakeCached(key))
		}
		return nil
	})
	s, e, _ := newDPDK(t, app)
	_ = e
	b1 := fh.NewBuilder(duMAC, ruMAC, 6)
	b2 := fh.NewBuilder(duMAC, ru2MAC, 6)
	// Same symbol + port from two sources.
	e.Ingress(uplaneFrame(t, b1, oran.Uplink, 0, 3, 100))
	e.Ingress(uplaneFrame(t, b2, oran.Uplink, 0, 3, 200))
	s.Run()
	if taken != 2 {
		t.Fatalf("taken = %d", taken)
	}
}

func TestCacheSweep(t *testing.T) {
	c := NewCache(time.Millisecond)
	var p fh.Packet
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	if err := p.Decode(b.CPlane(ecpri.PcID{}, &oran.CPlaneMsg{
		SectionType: oran.SectionType1, Sections: []oran.CSection{{NumPRB: 1}}})); err != nil {
		t.Fatal(err)
	}
	key := fh.Key{}
	c.Put(key, &p, 0)
	if n := c.Sweep(sim.Time(500_000)); n != 0 {
		t.Fatalf("early sweep dropped %d", n)
	}
	if n := c.Sweep(sim.Time(2_000_000)); n != 1 {
		t.Fatalf("late sweep dropped %d", n)
	}
	if c.Len() != 0 || c.Swept() != 1 {
		t.Fatalf("len=%d swept=%d", c.Len(), c.Swept())
	}
	if c.Take(key) != nil {
		t.Fatal("swept entry still takeable")
	}
}

// TestCacheSweepQueue pins the insertion-order sweep introduced when the
// map-range sweep was removed (detflow: map iteration order is
// randomized per process). The sweep must drop exactly the expired
// entries even when the queue holds stale records: a Taken key must not
// be double-counted, and a key re-inserted after Take must survive a
// sweep that expires only its original record.
func TestCacheSweepQueue(t *testing.T) {
	c := NewCache(time.Millisecond)
	var p fh.Packet
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	if err := p.Decode(b.CPlane(ecpri.PcID{}, &oran.CPlaneMsg{
		SectionType: oran.SectionType1, Sections: []oran.CSection{{NumPRB: 1}}})); err != nil {
		t.Fatal(err)
	}
	k1 := fh.Key{EAxC: 1}
	k2 := fh.Key{EAxC: 2}
	k3 := fh.Key{EAxC: 3}
	c.Put(k1, &p, sim.Time(0))
	c.Put(k2, &p, sim.Time(100_000))
	c.Put(k3, &p, sim.Time(200_000))
	// k2 leaves through Take; its queue record goes stale.
	if c.Take(k2) == nil {
		t.Fatal("take k2")
	}
	// k2 comes back young: the stale record must not evict the fresh entry.
	c.Put(k2, &p, sim.Time(900_000))
	// At t=1.15ms the originals (t=0, 0.1ms) are expired, k3 (0.2ms) is
	// not — MaxAge is 1ms — and neither is the re-inserted k2.
	if n := c.Sweep(sim.Time(1_150_000)); n != 1 {
		t.Fatalf("sweep dropped %d packets, want 1 (k1 only)", n)
	}
	if c.Peek(k1) != nil {
		t.Fatal("k1 survived its expiry")
	}
	if c.Peek(k2) == nil || c.Peek(k3) == nil {
		t.Fatal("sweep evicted a live entry via a stale queue record")
	}
	// Everything expires eventually; repeated sweeps stay idempotent.
	if n := c.Sweep(sim.Time(5_000_000)); n != 2 {
		t.Fatalf("final sweep dropped %d packets, want 2", n)
	}
	if n := c.Sweep(sim.Time(6_000_000)); n != 0 || c.Len() != 0 {
		t.Fatalf("idempotent re-sweep dropped %d, len=%d", n, c.Len())
	}
}

func TestAppErrorCounted(t *testing.T) {
	bad := appFunc(func(ctx *Context, pkt *fh.Packet) error { return errors.New("boom") })
	s, e, out := newDPDK(t, bad)
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 3, 100))
	s.Run()
	if e.Snapshot().AppErrors != 1 || len(*out) != 0 {
		t.Fatalf("stats = %+v out=%d", e.Snapshot(), len(*out))
	}
}

func TestModifyUPlane(t *testing.T) {
	app := appFunc(func(ctx *Context, pkt *fh.Packet) error {
		q, err := ctx.ModifyUPlane(pkt, 106, func(msg *oran.UPlaneMsg) error {
			msg.Sections[0].StartPRB = 50
			return nil
		})
		if err != nil {
			return err
		}
		ctx.Forward(q)
		return nil
	})
	s, e, out := newDPDK(t, app)
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 3, 100))
	s.Run()
	if len(*out) != 1 {
		t.Fatalf("out = %d", len(*out))
	}
	var p fh.Packet
	if err := p.Decode((*out)[0]); err != nil {
		t.Fatal(err)
	}
	var msg oran.UPlaneMsg
	if err := p.UPlane(&msg, 106); err != nil {
		t.Fatal(err)
	}
	if msg.Sections[0].StartPRB != 50 {
		t.Fatalf("mutation lost: %+v", msg.Sections[0])
	}
}

func TestReplicateIndependence(t *testing.T) {
	app := appFunc(func(ctx *Context, pkt *fh.Packet) error {
		cp := ctx.Replicate(pkt)
		if err := cp.Redirect(ru2MAC, duMAC, -1); err != nil {
			return err
		}
		ctx.Forward(pkt)
		ctx.Forward(cp)
		return nil
	})
	s, e, out := newDPDK(t, app)
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 3, 100))
	s.Run()
	if len(*out) != 2 {
		t.Fatalf("out = %d", len(*out))
	}
	var a, c fh.Packet
	if err := a.Decode((*out)[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.Decode((*out)[1]); err != nil {
		t.Fatal(err)
	}
	if a.Eth.Dst == c.Eth.Dst {
		t.Fatal("replica addressing leaked into original")
	}
}

func TestEngineConfigValidation(t *testing.T) {
	s := sim.NewScheduler()
	if _, err := NewEngine(s, Config{Name: "x", Mode: ModeDPDK, App: &forwarder{}}); !errors.Is(err, ErrBadCarrierPRBs) {
		t.Fatalf("missing CarrierPRBs: got %v, want ErrBadCarrierPRBs", err)
	}
	if _, err := NewEngine(s, Config{Name: "x", Mode: ModeDPDK, CarrierPRBs: 106}); !errors.Is(err, ErrNoApp) {
		t.Fatalf("DPDK without app: got %v, want ErrNoApp", err)
	}
	if _, err := NewEngine(s, Config{Name: "x", Mode: ModeXDP, CarrierPRBs: 106}); !errors.Is(err, ErrNoKernel) {
		t.Fatalf("XDP without kernel: got %v, want ErrNoKernel", err)
	}
	if _, err := NewEngine(s, Config{Name: "x", Mode: Mode(9), CarrierPRBs: 106}); !errors.Is(err, ErrBadMode) {
		t.Fatalf("bad mode: got %v, want ErrBadMode", err)
	}
	if _, err := NewEngine(s, Config{Name: "x", Mode: ModeDPDK, App: &forwarder{}, CarrierPRBs: 106, Cores: -1}); !errors.Is(err, ErrBadCores) {
		t.Fatalf("negative cores: got %v, want ErrBadCores", err)
	}
	if _, err := NewEngine(s, Config{Name: "x", Mode: ModeDPDK, App: &forwarder{}, CarrierPRBs: 106, Cores: MaxCores + 1}); !errors.Is(err, ErrBadCores) {
		t.Fatalf("oversized cores: got %v, want ErrBadCores", err)
	}
	if _, err := NewEngine(s, Config{Name: "x", Mode: ModeDPDK, App: &forwarder{}, CarrierPRBs: 106, RingSize: MaxRingSize + 1}); !errors.Is(err, ErrBadRing) {
		t.Fatalf("oversized ring: got %v, want ErrBadRing", err)
	}
	bad := &KernelProgram{Rules: make([]Rule, MaxKernelRules+1)}
	if _, err := NewEngine(s, Config{Name: "x", Mode: ModeXDP, Kernel: bad, CarrierPRBs: 106}); !errors.Is(err, ErrKernelUnverified) {
		t.Fatalf("unverifiable kernel: got %v, want ErrKernelUnverified", err)
	}
	e, err := NewEngine(s, Config{Name: "x", Mode: ModeDPDK, App: &forwarder{}, CarrierPRBs: 106})
	if err != nil {
		t.Fatal(err)
	}
	if e.Shards() != 1 {
		t.Fatalf("Cores=0 should default to one shard, got %d", e.Shards())
	}
}

func TestClassify(t *testing.T) {
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	var p fh.Packet
	if err := p.Decode(uplaneFrame(t, b, oran.Downlink, 0, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if Classify(&p) != ClassDLU {
		t.Fatal("DL U")
	}
	if err := p.Decode(uplaneFrame(t, b, oran.Uplink, 0, 3, 1)); err != nil {
		t.Fatal(err)
	}
	if Classify(&p) != ClassULU {
		t.Fatal("UL U")
	}
	if err := p.Decode(cplaneFrame(t, b, oran.Downlink, 0)); err != nil {
		t.Fatal(err)
	}
	if Classify(&p) != ClassDLC {
		t.Fatal("DL C")
	}
	for _, c := range []TrafficClass{ClassDLC, ClassDLU, ClassULC, ClassULU, TrafficClass(9)} {
		if c.String() == "" {
			t.Fatal("class name")
		}
	}
}

func TestUtilizationModes(t *testing.T) {
	s, e, _ := newDPDK(t, &forwarder{})
	s.RunFor(time.Millisecond)
	if u := e.Utilization(); u != 1 {
		t.Fatalf("DPDK idle utilization = %v, want 1 (poll mode)", u)
	}
	if e.Mode().String() != "DPDK" || ModeXDP.String() != "XDP" {
		t.Fatal("mode names")
	}
}

func TestControlInterface(t *testing.T) {
	s, e, _ := newDPDK(t, &forwarder{})
	_ = s
	if err := e.Control("set", nil); err == nil {
		t.Fatal("non-controllable app accepted command")
	}
}

// TestEngineSteadyStateAllocs pins the per-frame allocation budget of the
// deterministic datapath. The shard reuses its Context, pass-through
// scratch and kernel emit buffer across frames, so a steady-state frame
// should cost only the packet itself, the deterministic-mode emit closure
// and the scheduler event. A jump here means a reuse path regressed.
func TestEngineSteadyStateAllocs(t *testing.T) {
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: &forwarder{}, CarrierPRBs: 106})
	if err != nil {
		t.Fatal(err)
	}
	e.SetOutput(func([]byte) {})
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	frame := uplaneFrame(t, b, oran.Downlink, 0, 3, 100)
	// Warm up: let ring buffers, trace reservoirs and counters settle.
	for i := 0; i < 64; i++ {
		e.Ingress(frame)
		s.Run()
	}
	avg := testing.AllocsPerRun(200, func() {
		e.Ingress(frame)
		s.Run()
	})
	const budget = 4 // measured 3: packet + emit closure + scheduler event
	if avg > budget {
		t.Fatalf("steady-state datapath allocates %.1f objects/frame, budget %d", avg, budget)
	}
	t.Logf("steady-state allocations per frame: %.1f", avg)
}

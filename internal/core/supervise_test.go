package core

import (
	"bytes"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ranbooster/internal/bfp"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/fh"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
	"ranbooster/internal/sim"
	"ranbooster/internal/telemetry"
)

// prachFrame builds an uplink U-plane frame with timing filter index 1 —
// PRACH traffic, the class the AIMD shedder sacrifices last.
func prachFrame(t *testing.T, b *fh.Builder, port uint8) []byte {
	t.Helper()
	payload, err := bfp.CompressGrid(nil, iq.NewGrid(4), bfp9())
	if err != nil {
		t.Fatal(err)
	}
	msg := &oran.UPlaneMsg{
		Timing:   oran.Timing{Direction: oran.Uplink, FilterIndex: 1, FrameID: 1},
		Sections: []oran.USection{{NumPRB: 4, Comp: bfp9(), Payload: payload}},
	}
	return b.UPlane(ecpri.PcID{RUPort: port}, msg)
}

func TestSupervisePolicyValidation(t *testing.T) {
	s := sim.NewScheduler()
	base := Config{Name: "x", Mode: ModeDPDK, App: &forwarder{}, CarrierPRBs: 106}

	cases := []struct {
		pol  SupervisePolicy
		want error
	}{
		{SupervisePolicy{PanicBudget: -1}, ErrBadPanicBudget},
		{SupervisePolicy{BreakerCooldown: -time.Millisecond}, ErrBadCooldown},
		{SupervisePolicy{StallAfter: -time.Millisecond}, ErrBadStallAfter},
		{SupervisePolicy{ShedHighWater: 0.5, ShedLowWater: 0.5}, ErrBadShedWater},
		{SupervisePolicy{ShedHighWater: 1.5, ShedLowWater: 0.1}, ErrBadShedWater},
		{SupervisePolicy{ShedHighWater: 0, ShedLowWater: 0.1}, ErrBadShedWater},
		{SupervisePolicy{ShedLowWater: -0.1, ShedHighWater: 0.5}, ErrBadShedWater},
	}
	for _, c := range cases {
		cfg := base
		cfg.Supervise = c.pol
		if _, err := NewEngine(s, cfg); !errors.Is(err, c.want) {
			t.Errorf("policy %+v: got %v, want %v", c.pol, err, c.want)
		}
	}

	// The zero value is valid and disables everything.
	e, err := NewEngine(s, base)
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.Supervise != (SupervisePolicy{}) {
		t.Fatalf("zero policy resolved to %+v", e.cfg.Supervise)
	}
	// PanicBudget defaults the cooldown.
	cfg := base
	cfg.Supervise = SupervisePolicy{PanicBudget: 3}
	e, err = NewEngine(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.cfg.Supervise.BreakerCooldown != DefaultBreakerCooldown {
		t.Fatalf("cooldown = %v, want default %v", e.cfg.Supervise.BreakerCooldown, DefaultBreakerCooldown)
	}
}

// TestPanicIsolationQuarantinesFrame: an App panic on one frame must not
// unwind the engine — the frame fails to the wire raw and the rest of
// the traffic processes normally.
func TestPanicIsolationQuarantinesFrame(t *testing.T) {
	calls := 0
	app := appFunc(func(ctx *Context, pkt *fh.Packet) error {
		calls++
		if calls == 2 {
			panic("app bug")
		}
		ctx.Forward(pkt)
		return nil
	})
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: app, CarrierPRBs: 106,
		Supervise: SupervisePolicy{PanicBudget: 10}})
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	e.SetOutput(func(f []byte) { out = append(out, f) })
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	frames := [][]byte{
		uplaneFrame(t, b, oran.Downlink, 0, 1, 10),
		uplaneFrame(t, b, oran.Downlink, 0, 2, 20),
		uplaneFrame(t, b, oran.Downlink, 0, 3, 30),
	}
	for _, f := range frames {
		e.Ingress(f)
	}
	s.Run()
	if len(out) != 3 {
		t.Fatalf("out = %d frames, want 3", len(out))
	}
	// The panicked frame reached the wire untouched, in order.
	if !bytes.Equal(out[1], frames[1]) {
		t.Fatal("quarantined frame is not byte-identical to its input")
	}
	st := e.Snapshot()
	if st.AppPanics != 1 || st.Quarantined != 1 {
		t.Fatalf("AppPanics=%d Quarantined=%d, want 1/1", st.AppPanics, st.Quarantined)
	}
	if st.Breaker != BreakerClosed {
		t.Fatalf("breaker = %v, want closed (budget 10, one panic)", st.Breaker)
	}
	if st.TxFrames != 3 || st.AppErrors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPanicWithoutIsolationPropagates: with the zero policy an App panic
// crashes the engine exactly as before supervision existed.
func TestPanicWithoutIsolationPropagates(t *testing.T) {
	app := appFunc(func(ctx *Context, pkt *fh.Packet) error { panic("app bug") })
	s, e, _ := newDPDK(t, app)
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate with supervision off")
		}
	}()
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 1, 10))
	s.Run()
}

// TestBreakerCycle drives the circuit breaker through its full state
// machine on the deterministic path: Closed → Open on budget exhaustion,
// quarantine-only while Open, Half-Open probe after the cooldown, Closed
// on probe success — all observable through the KPIBreaker samples.
func TestBreakerCycle(t *testing.T) {
	bad := true
	invocations := 0
	app := appFunc(func(ctx *Context, pkt *fh.Packet) error {
		invocations++
		if bad {
			panic("app bug")
		}
		ctx.Forward(pkt)
		return nil
	})
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: app, CarrierPRBs: 106,
		Supervise: SupervisePolicy{PanicBudget: 2, BreakerCooldown: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	e.SetOutput(func([]byte) {})
	rec := telemetry.NewRecorder()
	rec.Attach(e.Bus(), KPIBreaker)
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	frame := func() []byte { return uplaneFrame(t, b, oran.Downlink, 0, 1, 10) }

	// Two panics exhaust the budget: the breaker opens.
	e.Ingress(frame())
	e.Ingress(frame())
	if st := e.Snapshot(); st.Breaker != BreakerOpen || st.AppPanics != 2 {
		t.Fatalf("after budget: breaker=%v panics=%d, want open/2", st.Breaker, st.AppPanics)
	}
	// Open: frames quarantine without touching the App.
	e.Ingress(frame())
	if invocations != 2 {
		t.Fatalf("open breaker still invoked the app (%d invocations)", invocations)
	}
	if st := e.Snapshot(); st.Quarantined != 3 {
		t.Fatalf("Quarantined = %d, want 3", st.Quarantined)
	}
	// Cooldown elapses; the next frame is the Half-Open probe. The App
	// has been fixed, so the probe closes the breaker.
	s.RunFor(2 * time.Millisecond)
	bad = false
	e.Ingress(frame())
	if invocations != 3 {
		t.Fatalf("probe never reached the app (%d invocations)", invocations)
	}
	if st := e.Snapshot(); st.Breaker != BreakerClosed {
		t.Fatalf("after probe: breaker = %v, want closed", st.Breaker)
	}
	s.Run()

	var states []BreakerState
	for _, smp := range rec.Series(KPIBreaker) {
		states = append(states, BreakerState(smp.Value))
	}
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(states) != len(want) {
		t.Fatalf("KPI transitions = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("KPI transitions = %v, want %v", states, want)
		}
	}
}

// TestBreakerReopensOnFailedProbe: a panic on the Half-Open probe
// re-opens the breaker instead of closing it.
func TestBreakerReopensOnFailedProbe(t *testing.T) {
	app := appFunc(func(ctx *Context, pkt *fh.Packet) error { panic("still broken") })
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: app, CarrierPRBs: 106,
		Supervise: SupervisePolicy{PanicBudget: 1, BreakerCooldown: time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	e.SetOutput(func([]byte) {})
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 1, 10)) // opens
	s.RunFor(2 * time.Millisecond)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 1, 10)) // probe panics
	if st := e.Snapshot(); st.Breaker != BreakerOpen || st.AppPanics != 2 {
		t.Fatalf("breaker=%v panics=%d, want re-opened/2", st.Breaker, st.AppPanics)
	}
}

// TestBurstPanicQuarantinesBurst: a HandleBurst panic poisons the whole
// burst — every parked frame fails to the wire raw, in order.
func TestBurstPanicQuarantinesBurst(t *testing.T) {
	app := &panickyBurst{}
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: app, CarrierPRBs: 106,
		RingSize: 64, Burst: BurstPolicy{Batch: 8}, Supervise: SupervisePolicy{PanicBudget: 10}})
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	e.SetOutput(func(f []byte) { out = append(out, f) })
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	frames := make([][]byte, 4)
	for i := range frames {
		frames[i] = uplaneFrame(t, b, oran.Downlink, 0, uint8(i), int16(10*i+10))
	}
	drainDirect(t, e, frames)
	if len(out) != 4 {
		t.Fatalf("out = %d frames, want 4", len(out))
	}
	for i := range frames {
		if !bytes.Equal(out[i], frames[i]) {
			t.Fatalf("quarantined frame %d differs from its input", i)
		}
	}
	st := e.Snapshot()
	if st.AppPanics != 1 || st.Quarantined != 4 {
		t.Fatalf("AppPanics=%d Quarantined=%d, want 1/4", st.AppPanics, st.Quarantined)
	}
}

// panickyBurst is a BurstApp whose burst handler always panics.
type panickyBurst struct{}

func (p *panickyBurst) Name() string                             { return "panicky" }
func (p *panickyBurst) Handle(*Context, *fh.Packet) error        { panic("per-frame") }
func (p *panickyBurst) HandleBurst(*Context, []*fh.Packet) error { panic("burst bug") }

// TestAIMDShedding drives the adaptive shedder whitebox: sustained high
// ring occupancy raises the shed level (U-plane data first, PRACH only
// past level 1), C-plane is never shed, and low occupancy decays the
// level back to zero.
func TestAIMDShedding(t *testing.T) {
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: &forwarder{}, CarrierPRBs: 106,
		RingSize: 64, Supervise: SupervisePolicy{ShedHighWater: 0.5, ShedLowWater: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	e.SetOutput(func([]byte) {})
	sh := e.shards[0]
	if sh.aimd == nil {
		t.Fatal("AIMD controller not armed")
	}
	// Park the engine in parallel mode without workers so admissions
	// accumulate in the ring instead of draining inline.
	e.parallel = true
	defer func() { e.parallel = false }()

	b := fh.NewBuilder(duMAC, ruMAC, 6)
	data := uplaneFrame(t, b, oran.Uplink, 0, 1, 10)
	prach := prachFrame(t, b, 0)
	cplane := cplaneFrame(t, b, oran.Downlink, 0)

	// Fill to the high water mark: every admission from here on raises
	// the level additively.
	for sh.in.queued() < 32 {
		if !sh.enqueue(data) {
			t.Fatal("ring full during fill")
		}
	}
	// Push the level to 1.0 (16 admissions at +1/16): all data credit.
	for i := 0; i < 16; i++ {
		sh.admit(data)
	}
	if lvl := sh.aimd.level; lvl < 0.99 {
		t.Fatalf("level = %.3f after 16 high-occupancy admissions, want ~1", lvl)
	}
	st := e.Snapshot()
	if st.ShedUPlane == 0 {
		t.Fatal("no U-plane data shed at level ~1")
	}
	if st.ShedPRACH != 0 {
		t.Fatalf("PRACH shed at level <= 1 (%d)", st.ShedPRACH)
	}
	// PRACH is spared until the level exceeds 1 — sustained overload.
	sh.admit(prach)
	if e.Snapshot().ShedPRACH != 0 {
		t.Fatal("PRACH shed before sustained overload")
	}
	for i := 0; i < 32; i++ {
		sh.admit(data)
	}
	if lvl := sh.aimd.level; lvl < 1.5 {
		t.Fatalf("level = %.3f after sustained overload, want > 1.5", lvl)
	}
	shedBefore := e.Snapshot().ShedPRACH
	for i := 0; i < 8; i++ {
		sh.admit(prach)
	}
	if e.Snapshot().ShedPRACH == shedBefore {
		t.Fatal("no PRACH shed under sustained overload")
	}
	// C-plane is never shed, at any level.
	for i := 0; i < 8; i++ {
		if sh.shed(cplane) {
			t.Fatal("C-plane frame shed")
		}
	}
	// Drain the ring below the low water mark: the level decays to zero.
	for sh.in.queued() > 8 {
		sh.in.pop()
	}
	for i := 0; i < 16; i++ {
		sh.shed(cplane) // C-plane probes update the level without shedding
	}
	if lvl := sh.aimd.level; lvl != 0 {
		t.Fatalf("level = %.4f after decay, want 0", lvl)
	}
}

// TestAIMDCleanWorkloadZeroSheds: hysteresis means a workload that never
// crosses the high water mark sees no sheds at all.
func TestAIMDCleanWorkloadZeroSheds(t *testing.T) {
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: &forwarder{}, CarrierPRBs: 106,
		RingSize: 64, Supervise: SupervisePolicy{ShedHighWater: 0.75, ShedLowWater: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	e.SetOutput(func([]byte) {})
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	for i := 0; i < 2000; i++ {
		e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, uint8(i%14), 10))
	}
	s.Run()
	st := e.Snapshot()
	if st.ShedUPlane != 0 || st.ShedPRACH != 0 || st.RingDrops != 0 {
		t.Fatalf("clean workload shed frames: %+v", st)
	}
	if st.RxFrames != 2000 || st.TxFrames != 2000 {
		t.Fatalf("stats = %+v", st)
	}
}

// wedgeApp blocks Handle exactly once, on the first frame whose RU port
// matches, until release is closed. entered signals the block began.
type wedgeApp struct {
	port    uint8
	armed   atomic.Bool
	entered chan struct{}
	release chan struct{}
}

func newWedgeApp(port uint8) *wedgeApp {
	w := &wedgeApp{port: port, entered: make(chan struct{}), release: make(chan struct{})}
	w.armed.Store(true)
	return w
}

func (a *wedgeApp) Name() string { return "wedge" }
func (a *wedgeApp) Handle(ctx *Context, pkt *fh.Packet) error {
	if pkt.EAxC().RUPort == a.port && a.armed.CompareAndSwap(true, false) {
		close(a.entered)
		<-a.release
	}
	ctx.Forward(pkt)
	return nil
}

// TestWatchdogRestartsStalledShard wedges one shard's worker inside
// Handle and requires the supervisor to detect the stall, restart the
// shard hitlessly, and keep per-eAxC FIFO order for the frames that were
// still queued behind the wedge.
func TestWatchdogRestartsStalledShard(t *testing.T) {
	const stallAfter = time.Millisecond
	app := newWedgeApp(1)
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, Cores: 2, App: app,
		CarrierPRBs: 106, RingSize: 64, Supervise: SupervisePolicy{StallAfter: stallAfter}})
	if err != nil {
		t.Fatal(err)
	}
	var outMu sync.Mutex
	var outSeq []int // FrameID*16+Subframe of port-1 emissions, in order
	e.SetOutput(func(f []byte) {
		var p fh.Packet
		if p.Decode(f) != nil {
			return
		}
		if p.EAxC().RUPort != 1 {
			return
		}
		tm, err := p.Timing()
		if err != nil {
			return
		}
		outMu.Lock()
		outSeq = append(outSeq, int(tm.FrameID)*16+int(tm.SubframeID))
		outMu.Unlock()
	})
	rec := telemetry.NewRecorder()
	rec.Attach(e.Bus(), KPIHealth)
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer close(app.release)

	b1 := fh.NewBuilder(duMAC, ruMAC, -1)
	// Frame 0 wedges the port-1 shard.
	for !e.TryIngress(seqFrame(t, b1, 1, 0)) {
		runtime.Gosched()
	}
	<-app.entered
	// Followers queue behind the wedge, never popped by the stuck worker.
	for i := 1; i <= 8; i++ {
		for !e.TryIngress(seqFrame(t, b1, 1, i)) {
			runtime.Gosched()
		}
	}
	// Supervision polls on the scheduler goroutine: within StallAfter
	// plus one poll interval the stall is detected and the shard
	// restarted.
	for i := 0; i < 10 && e.Snapshot().ShardRestarts == 0; i++ {
		s.RunFor(stallAfter)
		e.Supervise()
	}
	st := e.Snapshot()
	if st.ShardRestarts != 1 {
		t.Fatalf("ShardRestarts = %d, want 1", st.ShardRestarts)
	}
	if st.Health != Stalled {
		t.Fatalf("health = %v after restart, want stalled", st.Health)
	}
	if smp, ok := rec.Last(KPIHealth); !ok || Health(smp.Value) != Stalled {
		t.Fatal("no Stalled KPIHealth sample published on restart")
	}
	// The fresh incarnation drains the queued followers; Stop joins it.
	e.Stop()
	outMu.Lock()
	got := append([]int(nil), outSeq...)
	outMu.Unlock()
	// Frame 0 was abandoned mid-Handle with the wedged incarnation; the
	// 8 followers must all emerge, in FIFO order.
	if len(got) != 8 {
		t.Fatalf("port-1 emissions = %v, want the 8 followers", got)
	}
	for i, seq := range got {
		if seq != i+1 {
			t.Fatalf("port-1 order = %v — FIFO violated across restart", got)
		}
	}
}

// TestHealthMergeSupervision: a shard restart reports Stalled, merges
// max-wise with another shard's Degraded through Snapshot, and steps
// back down over clean health windows.
func TestHealthMergeSupervision(t *testing.T) {
	const stallAfter = time.Millisecond
	app := newWedgeApp(1)
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, Cores: 2, App: app,
		CarrierPRBs: 106, RingSize: 256, Supervise: SupervisePolicy{StallAfter: stallAfter}})
	if err != nil {
		t.Fatal(err)
	}
	e.SetOutput(func([]byte) {})
	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	defer close(app.release)

	// Shard 0 is Degraded (transport faults observed in a past window).
	e.shards[0].stats.health.Store(uint32(Degraded))

	b1 := fh.NewBuilder(duMAC, ruMAC, -1)
	for !e.TryIngress(seqFrame(t, b1, 1, 0)) {
		runtime.Gosched()
	}
	<-app.entered
	for i := 0; i < 10 && e.Snapshot().ShardRestarts == 0; i++ {
		s.RunFor(stallAfter)
		e.Supervise()
	}
	// One shard restarting (Stalled) while the other is Degraded: the
	// engine reports the max.
	if st := e.Snapshot(); st.ShardRestarts != 1 || st.Health != Stalled {
		t.Fatalf("mid-restart: restarts=%d health=%v, want 1/stalled", st.ShardRestarts, st.Health)
	}
	// Clean traffic through the restarted shard steps it down one level
	// per health window: Stalled → Degraded → Healthy. Shard 0 stays
	// Degraded (no windows close there), so the merge floors at Degraded.
	// Frames are pre-built: a retried TryIngress must resend the same
	// frame, not burn a fresh builder sequence number.
	clean := make([][]byte, 3*healthWindow)
	for i := range clean {
		clean[i] = seqFrame(t, b1, 1, i+1)
	}
	for _, f := range clean {
		for !e.TryIngress(f) {
			runtime.Gosched()
		}
	}
	e.Stop()
	if h := Health(e.shards[1].stats.health.Load()); h != Healthy {
		t.Fatalf("restarted shard health = %v after clean windows, want healthy", h)
	}
	if st := e.Snapshot(); st.Health != Degraded {
		t.Fatalf("merged health = %v, want degraded (shard 0)", st.Health)
	}
}

// TestBreakerDegradesHealth: a non-Closed breaker clamps the shard's
// health at Degraded even over otherwise clean windows.
func TestBreakerDegradesHealth(t *testing.T) {
	bad := true
	app := appFunc(func(ctx *Context, pkt *fh.Packet) error {
		if bad {
			panic("app bug")
		}
		ctx.Forward(pkt)
		return nil
	})
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: app, CarrierPRBs: 106,
		Supervise: SupervisePolicy{PanicBudget: 1, BreakerCooldown: time.Hour}})
	if err != nil {
		t.Fatal(err)
	}
	e.SetOutput(func([]byte) {})
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	// One panic opens the breaker; enough clean windows follow that the
	// health machine would otherwise step down to Healthy.
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 1, 10))
	bad = false
	for i := 0; i < 3*healthWindow; i++ {
		e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, uint8(i%14), 10))
	}
	s.Run()
	st := e.Snapshot()
	if st.Breaker != BreakerOpen {
		t.Fatalf("breaker = %v, want open (hour-long cooldown)", st.Breaker)
	}
	if st.Health != Degraded {
		t.Fatalf("health = %v with an open breaker, want degraded", st.Health)
	}
}

// TestSupervisedBurstPathAllocs re-runs the burst allocation gate with
// panic isolation armed: the recover boundary must not cost the hot path
// a single allocation — the budget stays at one fresh packet per frame.
func TestSupervisedBurstPathAllocs(t *testing.T) {
	const batch = 32
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: &forwarder{},
		CarrierPRBs: 106, RingSize: 256, Burst: BurstPolicy{Batch: batch},
		Supervise: SupervisePolicy{PanicBudget: 3}})
	if err != nil {
		t.Fatal(err)
	}
	e.SetOutput(func([]byte) {})
	e.parallel = true
	defer func() { e.parallel = false }()
	sh := e.shards[0]
	if !sh.w.isolate {
		t.Fatal("panic isolation not armed")
	}
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	frame := uplaneFrame(t, b, oran.Downlink, 0, 3, 100)
	fill := func() {
		for i := 0; i < batch; i++ {
			if !sh.enqueue(frame) {
				t.Fatal("ring full")
			}
		}
		sh.drain(batch)
	}
	for i := 0; i < 64; i++ {
		fill()
	}
	sh.resetLatency()
	if avg := testing.AllocsPerRun(50, fill); avg > batch {
		t.Fatalf("supervised burst path allocates %.1f objects per %d-frame burst, budget %d (1/frame)", avg, batch, batch)
	}
}

// TestSupervisionMetricsExported: the supervision counters and the
// breaker gauge must appear in the Prometheus export alongside the
// classic engine series.
func TestSupervisionMetricsExported(t *testing.T) {
	calls := 0
	app := appFunc(func(ctx *Context, pkt *fh.Packet) error {
		calls++
		if calls == 1 {
			panic("app bug")
		}
		ctx.Forward(pkt)
		return nil
	})
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: app, CarrierPRBs: 106,
		Supervise: SupervisePolicy{PanicBudget: 1}})
	if err != nil {
		t.Fatal(err)
	}
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	e.Ingress(uplaneFrame(t, b, oran.Downlink, 0, 1, 10))
	s.Run()

	var buf bytes.Buffer
	e.WriteMetrics(telemetry.NewPromWriter(&buf))
	got := buf.String()
	for _, series := range []string{
		"ranbooster_app_panics_total",
		"ranbooster_quarantined_total",
		"ranbooster_shard_restarts_total",
		"ranbooster_shed_total",
		"ranbooster_shed_prach_total",
		"ranbooster_breaker_state",
	} {
		if !strings.Contains(got, series) {
			t.Errorf("metrics export is missing %s", series)
		}
	}
	// The budget-1 panic opened the breaker: the gauge must read Open.
	if !strings.Contains(got, `ranbooster_breaker_state{engine="mb",mode="DPDK"} 2`) {
		t.Errorf("breaker gauge does not read open (2):\n%s", got)
	}
}

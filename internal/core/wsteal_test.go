package core

import (
	"bytes"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"ranbooster/internal/bfp"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/fh"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
	"ranbooster/internal/sim"
)

// wsSeqFrame builds a downlink U-plane frame for an arbitrary full eAxC
// id, with the FrameID carrying a per-stream sequence number so output
// order is observable per stream (mod 256).
func wsSeqFrame(t *testing.T, b *fh.Builder, key uint16, seq int) []byte {
	t.Helper()
	payload, err := bfp.CompressGrid(nil, iq.NewGrid(4), bfp9())
	if err != nil {
		t.Fatal(err)
	}
	msg := &oran.UPlaneMsg{
		Timing:   oran.Timing{Direction: oran.Downlink, FrameID: uint8(seq)},
		Sections: []oran.USection{{NumPRB: 4, Comp: bfp9(), Payload: payload}},
	}
	return b.UPlane(ecpri.PcIDFromUint16(key), msg)
}

func wsConfig(cores int) Config {
	return Config{Name: "ws", Mode: ModeDPDK, App: &forwarder{}, CarrierPRBs: 106,
		Cores: cores, Scale: ScalePolicy{WorkSteal: true}}
}

func TestScalePolicyValidation(t *testing.T) {
	s := sim.NewScheduler()
	base := wsConfig(2)

	cfg := base
	cfg.Scale.StreamRing = MaxRingSize + 1
	if _, err := NewEngine(s, cfg); !errors.Is(err, ErrBadRing) {
		t.Fatalf("oversized stream ring: got %v, want ErrBadRing", err)
	}
	cfg = base
	cfg.Scale.MaxStreams = MaxStreams + 1
	if _, err := NewEngine(s, cfg); !errors.Is(err, ErrBadMaxStreams) {
		t.Fatalf("oversized max streams: got %v, want ErrBadMaxStreams", err)
	}
	cfg = base
	cfg.Scale.HedgeAfterPolls = -1
	if _, err := NewEngine(s, cfg); !errors.Is(err, ErrBadHedge) {
		t.Fatalf("negative hedge polls: got %v, want ErrBadHedge", err)
	}
	cfg = base
	cfg.Supervise.StallAfter = 1
	if _, err := NewEngine(s, cfg); !errors.Is(err, ErrScaleSupervise) {
		t.Fatalf("watchdog + worksteal: got %v, want ErrScaleSupervise", err)
	}
	cfg = base
	cfg.Supervise.ShedHighWater, cfg.Supervise.ShedLowWater = 0.9, 0.5
	if _, err := NewEngine(s, cfg); !errors.Is(err, ErrScaleSupervise) {
		t.Fatalf("AIMD + worksteal: got %v, want ErrScaleSupervise", err)
	}

	e, err := NewEngine(s, base)
	if err != nil {
		t.Fatal(err)
	}
	got := e.cfg.Scale
	if got.StreamRing != DefaultStreamRing || got.MaxStreams != DefaultMaxStreams ||
		got.HedgeAfterPolls != DefaultHedgePolls {
		t.Fatalf("zero ScalePolicy resolved to %+v", got)
	}
	// The hash layout's zero value must stay untouched by defaults.
	e2, err := NewEngine(s, Config{Name: "hash", Mode: ModeDPDK, App: &forwarder{}, CarrierPRBs: 106})
	if err != nil {
		t.Fatal(err)
	}
	if e2.ws != nil || e2.cfg.Scale != (ScalePolicy{}) {
		t.Fatalf("zero Scale built a pool: %+v", e2.cfg.Scale)
	}
}

// wsKeysHomedOn returns n distinct eAxC keys whose stream queues all home
// on the given shard, probing the engine's own placement function.
func wsKeysHomedOn(t *testing.T, e *Engine, home, n int) []uint16 {
	t.Helper()
	keys := make([]uint16, 0, n)
	for k := 0; k < 1<<16 && len(keys) < n; k++ {
		if e.ws.addStream(uint32(k)).home == home {
			keys = append(keys, uint16(k))
		}
	}
	if len(keys) < n {
		t.Fatalf("found only %d keys homed on shard %d", len(keys), home)
	}
	return keys
}

// TestWorkStealStealHalfAndHedge drives the pool whitebox — no worker
// goroutines — through its three pickup tiers: own deque, steal-half
// with the leave-one rule, and the hedged pickup of a stale singleton.
func TestWorkStealStealHalfAndHedge(t *testing.T) {
	s := sim.NewScheduler()
	e, err := NewEngine(s, wsConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	e.SetOutput(func([]byte) {})
	e.parallel = true
	defer func() { e.parallel = false }()
	p := e.ws

	keys := wsKeysHomedOn(t, e, 0, 4)
	for _, k := range keys {
		b := fh.NewBuilder(duMAC, ruMAC, -1)
		if !e.TryIngress(wsSeqFrame(t, b, k, 0)) {
			t.Fatal("ingress rejected")
		}
	}
	if got := p.deques[0].size(); got != 4 {
		t.Fatalf("deque0 backlog = %d, want 4", got)
	}

	// Tier 2: a thief with an empty deque steals half of the deepest
	// victim (4 → take 2), runs the first and keeps the second.
	sq := p.next(e.shards[1], false)
	if sq == nil {
		t.Fatal("steal-half found nothing")
	}
	if got := e.Snapshot().Steals; got != 2 {
		t.Fatalf("Steals = %d after steal-half, want 2", got)
	}
	if p.deques[0].size() != 2 || p.deques[1].size() != 1 {
		t.Fatalf("deque sizes after steal = %d/%d, want 2/1", p.deques[0].size(), p.deques[1].size())
	}
	e.shards[1].w.runStream(sq)

	// Tier 1: the kept stream comes from the thief's own deque — no
	// steal is counted.
	sq = p.next(e.shards[1], false)
	if sq == nil {
		t.Fatal("own deque pickup found nothing")
	}
	e.shards[1].w.runStream(sq)
	if got := e.Snapshot().Steals; got != 2 {
		t.Fatalf("Steals = %d after own-deque pop, want 2", got)
	}

	// deque0 still has 2: another thief halves it to a singleton.
	sq = p.next(e.shards[2], false)
	if sq == nil {
		t.Fatal("second steal found nothing")
	}
	e.shards[2].w.runStream(sq)
	if got := p.deques[0].size(); got != 1 {
		t.Fatalf("deque0 backlog = %d, want singleton", got)
	}

	// Tier 3: the leave-one rule protects the singleton from stealing...
	if sq := p.next(e.shards[3], false); sq != nil {
		t.Fatalf("singleton stolen despite leave-one rule (stream %#x)", sq.key)
	}
	// ...until it turns stale, when an idle worker hedges it anyway.
	p.polls.Add(uint64(e.cfg.Scale.HedgeAfterPolls))
	sq = p.next(e.shards[3], false)
	if sq == nil {
		t.Fatal("stale singleton not hedged")
	}
	e.shards[3].w.runStream(sq)
	if got := e.Snapshot().Steals; got != 4 {
		t.Fatalf("Steals = %d after hedge, want 4", got)
	}
	if st := e.Snapshot(); st.RxFrames != 4 || st.TxFrames != 4 {
		t.Fatalf("stats = %+v, want 4 rx/tx", st)
	}
}

// TestWorkStealSkewedLoad is the property test for the skewed regime the
// pool exists for: one hot eAxC carrying 90% of the load, with every
// stream homed on the same worker — the static hash's worst case. All
// frames must be delivered, per-eAxC FIFO order must hold on every
// stream (hot and cold), cold streams must not be starved, and steals
// must be recorded.
func TestWorkStealSkewedLoad(t *testing.T) {
	const (
		cores  = 4
		cold   = 8
		hotN   = 1800 // 90%
		coldN  = 25   // ×8 = 10%
		frames = hotN + cold*coldN
	)
	s := sim.NewScheduler()
	e, err := NewEngine(s, wsConfig(cores))
	if err != nil {
		t.Fatal(err)
	}
	keys := wsKeysHomedOn(t, e, 0, cold+1)
	hot, coldKeys := keys[0], keys[1:]

	var (
		mu   sync.Mutex
		seen = map[uint16][]int{}
	)
	e.SetOutput(func(f []byte) {
		var p fh.Packet
		if err := p.Decode(f); err != nil {
			return
		}
		tm, err := p.Timing()
		if err != nil {
			return
		}
		key := p.Ecpri.PcID.Uint16()
		mu.Lock()
		seen[key] = append(seen[key], int(tm.FrameID))
		mu.Unlock()
	})

	// One builder per stream; a seeded shuffle interleaves hot and cold
	// arrivals the same way every run.
	builders := map[uint16]*fh.Builder{}
	for _, k := range keys {
		builders[k] = fh.NewBuilder(duMAC, ruMAC, -1)
	}
	rng := sim.NewRNG(0xC0FFEE)
	sched := make([]uint16, 0, frames)
	for i := 0; i < hotN; i++ {
		sched = append(sched, hot)
	}
	for _, k := range coldKeys {
		for i := 0; i < coldN; i++ {
			sched = append(sched, k)
		}
	}
	for i := len(sched) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		sched[i], sched[j] = sched[j], sched[i]
	}
	next := map[uint16]int{}
	input := make([][]byte, frames)
	for i, k := range sched {
		input[i] = wsSeqFrame(t, builders[k], k, next[k])
		next[k]++
	}

	if err := e.Start(); err != nil {
		t.Fatal(err)
	}
	for _, f := range input {
		for !e.TryIngress(f) {
			runtime.Gosched()
		}
	}
	e.Stop()

	st := e.Snapshot()
	if st.RxFrames != frames || st.TxFrames != frames {
		t.Fatalf("rx=%d tx=%d, want %d each", st.RxFrames, st.TxFrames, frames)
	}
	if st.Steals == 0 {
		t.Fatal("Steals = 0: every stream was homed on one worker, yet nothing was stolen")
	}
	if len(seen[hot]) != hotN {
		t.Fatalf("hot stream delivered %d frames, want %d", len(seen[hot]), hotN)
	}
	for _, k := range coldKeys {
		if len(seen[k]) != coldN {
			t.Fatalf("cold stream %#x delivered %d frames, want %d — starved", k, len(seen[k]), coldN)
		}
	}
	for k, seqs := range seen {
		for i, got := range seqs {
			if got != i%256 {
				t.Fatalf("stream %#x: position %d got seq %d, want %d — per-eAxC FIFO violated", k, i, got, i%256)
			}
		}
	}
}

// TestWorkStealDeterminism pins the deterministic inline contract of the
// work-stealing layout: same seed, same traffic → bit-identical output
// stream and identical Snapshot, with Stats.Steals zero (inline drains
// never engage the deques).
func TestWorkStealDeterminism(t *testing.T) {
	run := func() ([][]byte, Stats) {
		s := sim.NewScheduler()
		e, err := NewEngine(s, wsConfig(4))
		if err != nil {
			t.Fatal(err)
		}
		var out [][]byte
		e.SetOutput(func(f []byte) { out = append(out, append([]byte(nil), f...)) })
		rng := sim.NewRNG(42)
		builders := map[uint16]*fh.Builder{}
		next := map[uint16]int{}
		for i := 0; i < 400; i++ {
			key := uint16(rng.Intn(96))
			b := builders[key]
			if b == nil {
				b = fh.NewBuilder(duMAC, ruMAC, -1)
				builders[key] = b
			}
			e.Ingress(wsSeqFrame(t, b, key, next[key]))
			next[key]++
		}
		s.Run()
		return out, e.Snapshot()
	}
	out1, st1 := run()
	out2, st2 := run()
	if st1.Steals != 0 {
		t.Fatalf("Steals = %d in deterministic inline mode, want 0", st1.Steals)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("snapshots differ:\n%+v\n%+v", st1, st2)
	}
	if len(out1) != len(out2) {
		t.Fatalf("emission counts differ: %d vs %d", len(out1), len(out2))
	}
	for i := range out1 {
		if !bytes.Equal(out1[i], out2[i]) {
			t.Fatalf("emission %d differs between same-seed runs", i)
		}
	}
	if st1.RxFrames != 400 || st1.TxFrames != 400 {
		t.Fatalf("stats = %+v, want 400 rx/tx", st1)
	}
}

// TestWorkStealFoldAtMaxStreams: beyond ScalePolicy.MaxStreams new eAxC
// ids fold onto existing queues — bounded memory, FIFO intact.
func TestWorkStealFoldAtMaxStreams(t *testing.T) {
	s := sim.NewScheduler()
	cfg := wsConfig(2)
	cfg.Scale.MaxStreams = 2
	e, err := NewEngine(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var tx int
	e.SetOutput(func([]byte) { tx++ })
	for key := uint16(0); key < 8; key++ {
		b := fh.NewBuilder(duMAC, ruMAC, -1)
		for i := 0; i < 4; i++ {
			e.Ingress(wsSeqFrame(t, b, key, i))
		}
	}
	s.Run()
	if got := e.ws.Streams(); got != 2 {
		t.Fatalf("stream queues = %d, want MaxStreams fold to 2", got)
	}
	if st := e.Snapshot(); st.RxFrames != 32 || st.TxFrames != 32 || tx != 32 {
		t.Fatalf("stats = %+v tx=%d, want 32 frames through", st, tx)
	}
}

// TestWorkStealPathAllocs extends the TestBurstPathAllocs gate to the
// work-stealing admission path: at most one allocation per frame — the
// fresh userspace packet — through wsIngress + claim + runStream, and
// zero for kernel-retired traffic.
func TestWorkStealPathAllocs(t *testing.T) {
	const batch = 32
	measure := func(e *Engine) float64 {
		t.Helper()
		e.SetOutput(func([]byte) {})
		e.parallel = true
		defer func() { e.parallel = false }()
		b := fh.NewBuilder(duMAC, ruMAC, 6)
		frame := uplaneFrame(t, b, oran.Downlink, 0, 3, 100)
		home := e.shards[e.ws.stream(frame).home]
		fill := func() {
			for i := 0; i < batch; i++ {
				if !e.TryIngress(frame) {
					t.Fatal("stream ring full")
				}
			}
			sq := e.ws.next(home, false)
			if sq == nil {
				t.Fatal("published stream not found")
			}
			home.w.runStream(sq)
		}
		for i := 0; i < 64; i++ {
			fill()
		}
		home.resetLatency()
		return testing.AllocsPerRun(50, fill)
	}

	s := sim.NewScheduler()
	cfg := wsConfig(2)
	cfg.Burst = BurstPolicy{Batch: batch}
	e, err := NewEngine(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if avg := measure(e); avg > batch {
		t.Fatalf("work-stealing userspace path allocates %.1f objects per %d-frame burst, budget %d (1/frame)", avg, batch, batch)
	}

	prog := &KernelProgram{Rules: []Rule{{
		Match: Match{Plane: fh.PlaneU}, Verdict: VerdictTx, Rewrite: &Rewrite{SetDst: &ru2MAC},
	}}}
	cfg2 := Config{Name: "xdp-ws", Mode: ModeXDP, Kernel: prog, CarrierPRBs: 106,
		Cores: 2, Burst: BurstPolicy{Batch: batch}, Scale: ScalePolicy{WorkSteal: true}}
	e2, err := NewEngine(s, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if avg := measure(e2); avg > 0 {
		t.Fatalf("work-stealing kernel-retired path allocates %.1f objects per %d-frame burst, want 0", avg, batch)
	}
	if st := e2.Snapshot(); st.KernelRetired == 0 {
		t.Fatal("kernel retirement never engaged under work stealing")
	}
}

package core

import "errors"

// Typed construction and lifecycle errors. NewEngine and Start wrap these
// with the middlebox name; match them with errors.Is.
var (
	// ErrNoApp rejects a DPDK engine with no userspace handler (the
	// poll-mode datapath has nowhere else to send packets).
	ErrNoApp = errors.New("engine requires an App")
	// ErrNoKernel rejects an XDP engine with no rule program to load.
	ErrNoKernel = errors.New("XDP engine requires a kernel program")
	// ErrKernelUnverified rejects a rule program that failed verification,
	// the way the eBPF verifier refuses to load an unbounded program.
	ErrKernelUnverified = errors.New("kernel program failed verification")
	// ErrBadCores rejects a core count outside [0, MaxCores] (0 defaults
	// to one core).
	ErrBadCores = errors.New("core count out of range")
	// ErrBadCarrierPRBs rejects a missing carrier width; payload access
	// cannot resolve "all PRBs" encodings without it.
	ErrBadCarrierPRBs = errors.New("CarrierPRBs must be positive")
	// ErrBadMode rejects an unknown datapath mode.
	ErrBadMode = errors.New("unknown datapath mode")
	// ErrBadRing rejects a ring capacity above MaxRingSize.
	ErrBadRing = errors.New("ring size out of range")
	// ErrBadBatch rejects a burst batch size outside [0, MaxBatch] (0
	// defaults to DefaultBatch).
	ErrBadBatch = errors.New("burst batch size out of range")
	// ErrBadIdlePolls rejects a negative BurstPolicy.MaxIdlePolls (0
	// defaults to DefaultIdlePolls).
	ErrBadIdlePolls = errors.New("max idle polls out of range")
	// ErrBadHeadroom rejects a C-plane headroom that consumes the whole
	// ring (no slot would ever admit U-plane traffic).
	ErrBadHeadroom = errors.New("C-plane headroom out of range")
	// ErrBadPanicBudget rejects a negative SupervisePolicy.PanicBudget
	// (0 disables panic isolation).
	ErrBadPanicBudget = errors.New("panic budget out of range")
	// ErrBadCooldown rejects a negative SupervisePolicy.BreakerCooldown
	// (0 defaults to DefaultBreakerCooldown when isolation is on).
	ErrBadCooldown = errors.New("breaker cooldown out of range")
	// ErrBadStallAfter rejects a negative SupervisePolicy.StallAfter
	// (0 disables the shard watchdog).
	ErrBadStallAfter = errors.New("stall deadline out of range")
	// ErrBadShedWater rejects AIMD shedding watermarks that are not
	// 0 <= low < high <= 1 (both zero disables AIMD shedding).
	ErrBadShedWater = errors.New("shed watermarks out of range")
	// ErrBadMaxStreams rejects a ScalePolicy.MaxStreams outside
	// [0, MaxStreams] (0 defaults to DefaultMaxStreams).
	ErrBadMaxStreams = errors.New("max streams out of range")
	// ErrBadHedge rejects a negative ScalePolicy.HedgeAfterPolls (0
	// defaults to DefaultHedgePolls).
	ErrBadHedge = errors.New("hedge poll threshold out of range")
	// ErrScaleSupervise rejects combining the work-stealing admission
	// pool with supervision mechanisms that assume the static
	// shard-per-stream layout (the shard watchdog, AIMD shedding).
	ErrScaleSupervise = errors.New("work-stealing admission incompatible with supervision mechanism")
	// ErrSerialApp refuses to start parallel workers for an App that
	// declared itself serial (see SerialApp) on a multi-shard engine.
	ErrSerialApp = errors.New("serial app cannot run parallel workers over multiple shards")
	// ErrRunning rejects Start on an engine whose workers already run.
	ErrRunning = errors.New("engine workers already running")
)

package core

// White-box tests for the graceful-degradation path: sequence-gap
// detection, frame-validity guards, the C-plane-over-U-plane shedding
// policy, and the per-shard health state machine.

import (
	"errors"
	"testing"

	"ranbooster/internal/fh"
	"ranbooster/internal/oran"
	"ranbooster/internal/sim"
	"ranbooster/internal/telemetry"
)

func TestSeqGapDetection(t *testing.T) {
	s, e, out := newDPDK(t, &forwarder{})
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	// Build 10 consecutive frames of one stream, deliver only every third:
	// indices 0,3,6,9 — three gaps of two missing frames each.
	frames := make([][]byte, 10)
	for i := range frames {
		frames[i] = uplaneFrame(t, b, oran.Downlink, 0, 3, 100)
	}
	for i := 0; i < len(frames); i += 3 {
		e.Ingress(frames[i])
	}
	s.Run()
	st := e.Snapshot()
	if st.SeqGaps != 6 {
		t.Fatalf("SeqGaps = %d, want 6", st.SeqGaps)
	}
	if st.Duplicates != 0 || st.Reordered != 0 {
		t.Fatalf("unexpected duplicate/reorder counts: %+v", st)
	}
	if len(*out) != 4 {
		t.Fatalf("delivered %d frames, want 4", len(*out))
	}
}

func TestDuplicateAndReorderDetection(t *testing.T) {
	s, e, _ := newDPDK(t, &forwarder{})
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	f0 := uplaneFrame(t, b, oran.Downlink, 0, 3, 100) // seq 0
	f1 := uplaneFrame(t, b, oran.Downlink, 0, 4, 100) // seq 1
	f2 := uplaneFrame(t, b, oran.Downlink, 0, 5, 100) // seq 2

	e.Ingress(f0)
	e.Ingress(f2)                         // seq 1 overtaken: one gap
	e.Ingress(append([]byte(nil), f2...)) // exact duplicate of seq 2
	e.Ingress(f1)                         // the late frame arrives: reordered
	s.Run()
	st := e.Snapshot()
	if st.SeqGaps != 1 {
		t.Fatalf("SeqGaps = %d, want 1", st.SeqGaps)
	}
	if st.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", st.Duplicates)
	}
	if st.Reordered != 1 {
		t.Fatalf("Reordered = %d, want 1", st.Reordered)
	}
}

// TestSeqStreamsIndependent: sequence tracking is per (source, eAxC) —
// interleaved streams must not alias into false gaps.
func TestSeqStreamsIndependent(t *testing.T) {
	s, e, _ := newDPDK(t, &forwarder{})
	b1 := fh.NewBuilder(duMAC, ruMAC, 6)
	b2 := fh.NewBuilder(ru2MAC, ruMAC, 6)
	for i := 0; i < 20; i++ {
		e.Ingress(uplaneFrame(t, b1, oran.Downlink, 0, 3, 100))
		e.Ingress(uplaneFrame(t, b2, oran.Downlink, 0, 3, 100)) // same eAxC, other source
		e.Ingress(uplaneFrame(t, b1, oran.Downlink, 1, 3, 100)) // same source, other eAxC
	}
	s.Run()
	st := e.Snapshot()
	if st.SeqGaps != 0 || st.Duplicates != 0 || st.Reordered != 0 {
		t.Fatalf("clean interleaved streams miscounted: %+v", st)
	}
}

func TestInvalidFrameDropped(t *testing.T) {
	app := &forwarder{}
	s, e, out := newDPDK(t, app)
	b := fh.NewBuilder(duMAC, ruMAC, 6)

	good := uplaneFrame(t, b, oran.Downlink, 0, 3, 100)
	badVersion := append([]byte(nil), good...)
	badVersion[18] = (badVersion[18] & 0x0f) | (7 << 4) // eCPRI version 7 (VLAN-tagged: eCPRI at 18)
	badType := append([]byte(nil), good...)
	badType[19] = 0x3f // unknown eCPRI message type

	e.Ingress(badVersion)
	e.Ingress(badType)
	e.Ingress(good)
	s.Run()
	st := e.Snapshot()
	if st.InvalidFrames != 2 {
		t.Fatalf("InvalidFrames = %d, want 2", st.InvalidFrames)
	}
	if app.handled.Load() != 1 || len(*out) != 1 {
		t.Fatalf("app saw %d frames, out %d — corrupted input leaked", app.handled.Load(), len(*out))
	}
}

// TestShedUPlaneBeforeCPlane drives the admission policy directly (admit
// does not drain, unlike Ingress in deterministic mode): with the ring
// nearly full, U-plane frames must be shed while C-plane still gets in,
// and C-plane is dropped only when the ring is completely full.
func TestShedUPlaneBeforeCPlane(t *testing.T) {
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{
		Name: "mb", Mode: ModeDPDK, App: &forwarder{}, CarrierPRBs: 106,
		RingSize: 8, CPlaneHeadroom: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetOutput(func([]byte) {})
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	sh := e.shards[0]

	// Stuff the ring up to the headroom boundary: 6 of 8 slots.
	for i := 0; i < 6; i++ {
		if !sh.admit(uplaneFrame(t, b, oran.Downlink, 0, 3, 100)) {
			t.Fatalf("admit below headroom failed at %d", i)
		}
	}
	uFrame := func() []byte { return uplaneFrame(t, b, oran.Downlink, 0, 3, 100) }
	cFrame := func() []byte { return cplaneFrame(t, b, oran.Downlink, 0) }

	if sh.admit(uFrame()) {
		t.Fatal("U-plane admitted inside C-plane headroom")
	}
	if !sh.admit(cFrame()) {
		t.Fatal("C-plane shed while slots remained")
	}
	if sh.admit(uFrame()) {
		t.Fatal("U-plane admitted inside C-plane headroom")
	}
	if !sh.admit(cFrame()) {
		t.Fatal("C-plane shed while the last slot remained")
	}
	// Ring is now completely full: only now may C-plane drop.
	if sh.admit(cFrame()) {
		t.Fatal("C-plane admitted into a full ring")
	}
	st := e.Snapshot()
	if st.ShedUPlane != 2 {
		t.Fatalf("ShedUPlane = %d, want 2", st.ShedUPlane)
	}
	if st.RingDrops != 1 {
		t.Fatalf("RingDrops = %d, want 1", st.RingDrops)
	}

	// Accounting: drain and check offered == processed + shed + dropped.
	for sh.drain(100) > 0 {
	}
	s.Run()
	st = e.Snapshot()
	offered := uint64(6 + 5) // 6 stuffed + 5 admit attempts
	if st.RxFrames+st.ShedUPlane+st.RingDrops != offered {
		t.Fatalf("accounting: rx %d + shed %d + drops %d != offered %d",
			st.RxFrames, st.ShedUPlane, st.RingDrops, offered)
	}
}

func TestBadHeadroomRejected(t *testing.T) {
	s := sim.NewScheduler()
	_, err := NewEngine(s, Config{
		Name: "mb", Mode: ModeDPDK, App: &forwarder{}, CarrierPRBs: 106,
		RingSize: 8, CPlaneHeadroom: 8,
	})
	if !errors.Is(err, ErrBadHeadroom) {
		t.Fatalf("err = %v, want ErrBadHeadroom", err)
	}
	// Negative disables shedding and is accepted.
	if _, err := NewEngine(s, Config{
		Name: "mb", Mode: ModeDPDK, App: &forwarder{}, CarrierPRBs: 106,
		RingSize: 8, CPlaneHeadroom: -1,
	}); err != nil {
		t.Fatalf("negative headroom rejected: %v", err)
	}
}

// TestHealthMachine walks the state machine through its transitions via
// the shard's window evaluation, checking both the Snapshot surface and
// the KPIHealth telemetry publications.
func TestHealthMachine(t *testing.T) {
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: &forwarder{}, CarrierPRBs: 106})
	if err != nil {
		t.Fatal(err)
	}
	e.SetOutput(func([]byte) {})
	rec := telemetry.NewRecorder()
	rec.Attach(e.Bus(), KPIHealth)
	sh := e.shards[0]

	if e.Snapshot().Health != Healthy {
		t.Fatalf("initial health = %v", e.Snapshot().Health)
	}
	// A window with transport faults degrades.
	sh.stats.seqGaps.Add(3)
	sh.updateHealth()
	if got := e.Snapshot().Health; got != Degraded {
		t.Fatalf("after faults: %v, want degraded", got)
	}
	// Ring pressure escalates to stalled.
	sh.stats.shedUPlane.Add(1)
	sh.updateHealth()
	if got := e.Snapshot().Health; got != Stalled {
		t.Fatalf("after shed: %v, want stalled", got)
	}
	// Recovery steps down one level per clean window, not straight home.
	sh.updateHealth()
	if got := e.Snapshot().Health; got != Degraded {
		t.Fatalf("first clean window: %v, want degraded", got)
	}
	sh.updateHealth()
	if got := e.Snapshot().Health; got != Healthy {
		t.Fatalf("second clean window: %v, want healthy", got)
	}
	// Four transitions published: degraded, stalled, degraded, healthy.
	series := rec.Series(KPIHealth)
	want := []Health{Degraded, Stalled, Degraded, Healthy}
	if len(series) != len(want) {
		t.Fatalf("published %d transitions, want %d", len(series), len(want))
	}
	for i, smp := range series {
		if Health(smp.Value) != want[i] {
			t.Fatalf("transition %d = %v, want %v", i, Health(smp.Value), want[i])
		}
	}
	if last, ok := rec.Last(KPIHealth); !ok || Health(last.Value) != Healthy {
		t.Fatalf("Last = %+v, %v", last, ok)
	}
}

// TestHealthNamedTransitions pins the branch semantics updateHealth kept
// when its arithmetic step-down (next = cur - 1, flagged by statemach as
// an undeclared transition) was rewritten into named-constant branches:
// faults during Stalled must not step the state anywhere, and an open
// breaker floors recovery at Degraded without ever blocking the
// Stalled -> Degraded step.
func TestHealthNamedTransitions(t *testing.T) {
	s := sim.NewScheduler()
	e, err := NewEngine(s, Config{Name: "mb", Mode: ModeDPDK, App: &forwarder{}, CarrierPRBs: 106})
	if err != nil {
		t.Fatal(err)
	}
	e.SetOutput(func([]byte) {})
	sh := e.shards[0]

	// Stall the shard, then observe a faulty (not clean) window: Stalled
	// absorbs the fault without a transition.
	sh.stats.ringDrops.Add(1)
	sh.updateHealth()
	if got := e.Snapshot().Health; got != Stalled {
		t.Fatalf("after ring drop: %v, want stalled", got)
	}
	sh.stats.seqGaps.Add(1)
	sh.updateHealth()
	if got := e.Snapshot().Health; got != Stalled {
		t.Fatalf("faults while stalled: %v, want stalled (no step-down)", got)
	}

	// With the breaker open, clean windows recover Stalled -> Degraded
	// and then hold: a bypassed App keeps the shard at least Degraded.
	sh.brk.state.Store(uint32(BreakerOpen))
	sh.updateHealth()
	if got := e.Snapshot().Health; got != Degraded {
		t.Fatalf("clean window while stalled: %v, want degraded", got)
	}
	sh.updateHealth()
	sh.updateHealth()
	if got := e.Snapshot().Health; got != Degraded {
		t.Fatalf("clean windows with open breaker: %v, want degraded floor", got)
	}

	// Breaker closes: the next clean window completes the recovery.
	sh.brk.state.Store(uint32(BreakerClosed))
	sh.updateHealth()
	if got := e.Snapshot().Health; got != Healthy {
		t.Fatalf("clean window after breaker closed: %v, want healthy", got)
	}
}

// TestHealthViaDatapath: a lossy stream long enough to cross window
// boundaries must surface Degraded through the normal datapath.
func TestHealthViaDatapath(t *testing.T) {
	s, e, _ := newDPDK(t, &forwarder{})
	b := fh.NewBuilder(duMAC, ruMAC, 6)
	for i := 0; i < 2*healthWindow; i++ {
		f := uplaneFrame(t, b, oran.Downlink, 0, 3, 100)
		if i%2 == 0 { // drop every other frame before the engine
			continue
		}
		e.Ingress(f)
	}
	s.Run()
	st := e.Snapshot()
	if st.SeqGaps == 0 {
		t.Fatal("lossy stream produced no gaps")
	}
	if st.Health != Degraded {
		t.Fatalf("health = %v, want degraded", st.Health)
	}
}

func TestStatsAddFaultFields(t *testing.T) {
	a := Stats{SeqGaps: 1, Duplicates: 2, Reordered: 3, InvalidFrames: 4, ShedUPlane: 5, Health: Stalled}
	b := Stats{SeqGaps: 10, Duplicates: 20, Reordered: 30, InvalidFrames: 40, ShedUPlane: 50, Health: Degraded}
	got := a.Add(b)
	if got.SeqGaps != 11 || got.Duplicates != 22 || got.Reordered != 33 ||
		got.InvalidFrames != 44 || got.ShedUPlane != 55 {
		t.Fatalf("Add = %+v", got)
	}
	if got.Health != Stalled {
		t.Fatalf("Health merged to %v, want max (stalled)", got.Health)
	}
}

func TestHealthString(t *testing.T) {
	for h, want := range map[Health]string{Healthy: "healthy", Degraded: "degraded", Stalled: "stalled", Health(9): "unknown"} {
		if h.String() != want {
			t.Fatalf("%d.String() = %q", h, h.String())
		}
	}
}

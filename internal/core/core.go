// Package core implements the RANBooster middlebox framework (§3 of the
// paper): the templated middlebox design, the four processing actions —
//
//	A1  packet redirection and drop,
//	A2  packet replication,
//	A3  packet caching,
//	A4  payload inspection and modification,
//
// — and the two datapath engines the paper evaluates: a DPDK-like
// poll-mode engine and an XDP-like engine with a restricted, verified
// in-kernel rule program plus an AF_XDP-style userspace handoff.
//
// A middlebox is an App: user code invoked per fronthaul packet with a
// Context exposing the actions. The engine owns CPU accounting (per-action
// costs charged to virtual cores), per-traffic-class latency statistics,
// a BPF-map-like counter store shared between the kernel program and
// userspace, and the telemetry/management interfaces of §3.2.
package core

import (
	"fmt"
	"time"

	"ranbooster/internal/bfp"
	"ranbooster/internal/cpu"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/oran"
	"ranbooster/internal/sim"
	"ranbooster/internal/telemetry"
)

// App is the middlebox template (§3.2.2): RANBooster initializes the
// datapath and calls Handle for every C- and U-plane packet; the handler
// realizes its logic through the Context's action methods.
//
// # Concurrency contract
//
// The engine shards its datapath by eAxC RU port: on an engine with
// Cores > 1, Handle may be invoked concurrently from multiple worker
// goroutines — but never concurrently for packets of the same RU port,
// and all Context action methods (including the A3 cache, whose keys are
// RU-port-scoped) touch only shard-local state. Therefore:
//
//   - Per-stream state keyed by eAxC / RU port needs no synchronization;
//     the sharding serializes it.
//   - Cross-stream state (global counters, maps indexed by something
//     other than the stream) must be shard-safe: use atomics, or declare
//     the App serial via SerialApp and forgo parallel workers.
//   - Control is a management-plane call from outside the workers; an App
//     that mutates Handle-visible state there must synchronize it.
type App interface {
	// Name identifies the middlebox in telemetry and logs.
	Name() string
	// Handle processes one packet. The packet belongs to the handler: it
	// may be forwarded, cached, mutated, replicated or dropped. Returning
	// an error drops the packet and counts a processing failure.
	Handle(ctx *Context, pkt *fh.Packet) error
}

// SerialApp marks an App whose Handle keeps cross-stream mutable state
// that is not shard-safe. The engine still shards such an App's traffic
// deterministically (inline processing is single-threaded regardless),
// but Start refuses to launch parallel workers over more than one shard.
type SerialApp interface {
	App
	// Serial is a marker; it has no behavior.
	Serial()
}

// Controllable is the optional management interface of a middlebox
// (§3.2: "expose monitoring and management interfaces to modify their
// behavior on-the-fly").
type Controllable interface {
	Control(cmd string, args map[string]string) error
}

// Context carries one packet's processing state: the action API, cost
// accounting, and access to the owning shard's cache, counters and the
// engine telemetry. A Context is valid only for the duration of the
// Handle call it was passed to.
type Context struct {
	w     *worker
	now   sim.Time
	cost  time.Duration
	emits []*fh.Packet
	// actions / actCost attribute the handler's charged cost to the four
	// processing actions for the trace collector (bitmask of
	// 1<<telemetry.Action; maintained only while tracing is on).
	actions uint8
	actCost [telemetry.NumActions]time.Duration
}

// noteAction charges d and, when the trace collector is on, attributes it
// to action a in the packet's span.
func (c *Context) noteAction(a telemetry.Action, d time.Duration) {
	c.cost += d
	if c.w.sh.tracer != nil {
		c.actions |= 1 << a
		c.actCost[a] += d
	}
}

// Now returns the current virtual time.
func (c *Context) Now() sim.Time { return c.now }

// AddCost charges extra processing time beyond the built-in action costs
// (apps with unusual per-packet logic can model it explicitly).
func (c *Context) AddCost(d time.Duration) { c.cost += d }

// Forward queues the packet for transmission as currently addressed (A1).
func (c *Context) Forward(pkt *fh.Packet) {
	c.noteAction(telemetry.ActionRedirect, cpu.CostForward)
	c.emits = append(c.emits, pkt)
}

// Redirect rewrites the packet's addressing and forwards it (A1). vlan < 0
// keeps the current VLAN.
func (c *Context) Redirect(pkt *fh.Packet, dst, src eth.MAC, vlan int) error {
	if err := pkt.Redirect(dst, src, vlan); err != nil {
		return err
	}
	c.Forward(pkt)
	return nil
}

// Drop discards the packet (A1).
func (c *Context) Drop(pkt *fh.Packet) {
	c.noteAction(telemetry.ActionRedirect, cpu.CostDrop)
	c.w.sh.stats.appDrops.Add(1)
}

// Replicate clones the packet (A2). The clone is independent: it can be
// re-addressed and forwarded separately.
func (c *Context) Replicate(pkt *fh.Packet) *fh.Packet {
	c.noteAction(telemetry.ActionReplicate, cpu.CostReplicate)
	return pkt.Clone()
}

// Cache stores the packet under key for later combination (A3). The
// store is shard-local: a key is only ever visible to the shard owning
// its eAxC RU port, which is exactly the shard the key's packets arrive
// on.
func (c *Context) Cache(key fh.Key, pkt *fh.Packet) {
	c.noteAction(telemetry.ActionCache, cpu.CostCacheInsert)
	c.w.cache.Put(key, pkt, c.now)
}

// Cached returns the packets stored under key without removing them (A3).
func (c *Context) Cached(key fh.Key) []*fh.Packet {
	return c.w.cache.Peek(key)
}

// CachedCount returns how many packets are stored under key.
func (c *Context) CachedCount(key fh.Key) int { return len(c.w.cache.Peek(key)) }

// TakeCached removes and returns the packets stored under key (A3).
func (c *Context) TakeCached(key fh.Key) []*fh.Packet {
	c.noteAction(telemetry.ActionCache, cpu.CostCacheTake)
	return c.w.cache.Take(key)
}

// ModifyUPlane decodes the packet's U-plane message, applies fn, and
// returns a re-encoded packet with the original addressing (A4). The
// header-level cost is charged here; fn must charge IQ-level work through
// ChargeMerge / ChargeCopy / ChargeRecompress as it performs it.
func (c *Context) ModifyUPlane(pkt *fh.Packet, carrierPRBs int, fn func(msg *oran.UPlaneMsg) error) (*fh.Packet, error) {
	c.noteAction(telemetry.ActionModify, cpu.CostHeaderMod)
	var msg oran.UPlaneMsg
	if err := pkt.UPlane(&msg, carrierPRBs); err != nil {
		return nil, err
	}
	if err := fn(&msg); err != nil {
		return nil, err
	}
	return fh.Rebuild(pkt, msg.AppendTo), nil
}

// ModifyCPlane is ModifyUPlane for C-plane messages (A4).
func (c *Context) ModifyCPlane(pkt *fh.Packet, carrierPRBs int, fn func(msg *oran.CPlaneMsg) error) (*fh.Packet, error) {
	c.noteAction(telemetry.ActionModify, cpu.CostHeaderMod)
	var msg oran.CPlaneMsg
	if err := pkt.CPlane(&msg, carrierPRBs); err != nil {
		return nil, err
	}
	if err := fn(&msg); err != nil {
		return nil, err
	}
	return fh.Rebuild(pkt, msg.AppendTo), nil
}

// Transcoder returns the shard's pooled BFP transcode scratch (A4): grid
// slots, a payload arena and an exponent buffer, pre-sized to the carrier
// and reused for every frame the shard processes. Apps running the decode
// → modify → re-encode cycle should call Reset once per Handle and draw
// all working buffers from it — in steady state the cycle then performs
// zero allocations. The scratch is shard-local: frames of one eAxC stream
// always land on the same shard, so no synchronization is needed.
func (c *Context) Transcoder() *bfp.Transcoder { return c.w.txc }

// UPlaneScratch returns one of the shard's two reusable U-plane message
// slots (decoding into a reused message recycles its section slice).
// Conventionally slot 0 is the decode scratch and slot 1 the re-encode
// staging message. Like the Transcoder, the slots are valid only within
// the current Handle call and must not be retained.
func (c *Context) UPlaneScratch(slot int) *oran.UPlaneMsg { return &c.w.msgs[slot] }

// ChargeHeaderMod charges one in-place header-field modification (A4).
func (c *Context) ChargeHeaderMod() { c.noteAction(telemetry.ActionModify, cpu.CostHeaderMod) }

// ChargeMerge charges an IQ merge of nStreams compressed streams of nPRB
// PRBs (A4) — the DAS uplink combination.
func (c *Context) ChargeMerge(nPRB, nStreams int) {
	c.noteAction(telemetry.ActionModify, cpu.MergeCost(nPRB, nStreams))
}

// ChargeCopyAligned charges relocation of nPRB compressed PRBs without
// recompression (the RU-sharing aligned fast path).
func (c *Context) ChargeCopyAligned(nPRB int) {
	c.noteAction(telemetry.ActionModify, cpu.AlignedCopyCost(nPRB))
}

// ChargeRecompress charges relocation of nPRB PRBs through the misaligned
// decompress/copy/recompress path.
func (c *Context) ChargeRecompress(nPRB int) {
	c.noteAction(telemetry.ActionModify, cpu.RecompressCopyCost(nPRB))
}

// ChargeExponentScan charges Algorithm 1's per-PRB exponent inspection.
func (c *Context) ChargeExponentScan(nPRB int) {
	c.noteAction(telemetry.ActionModify, cpu.ExponentScanCost(nPRB))
}

// PacketError reports a per-packet processing failure from inside a
// BurstApp's HandleBurst without failing the rest of the burst: the
// packet is counted in Stats.AppErrors and simply not forwarded (do not
// Forward it afterwards). Returning an error from HandleBurst instead
// drops the entire burst; returning an error from a per-frame Handle
// keeps its one-packet meaning.
func (c *Context) PacketError(pkt *fh.Packet, err error) {
	c.w.sh.stats.appErrors.Add(1)
}

// Publish emits a telemetry sample on the middlebox's bus.
func (c *Context) Publish(name string, value float64) {
	c.w.eng.bus.Publish(telemetry.Sample{Name: name, At: c.now, Value: value})
}

// AddCounter increments the named shared counter (the userspace view of
// the kernel program's per-CPU maps) by delta, on this shard's stripe.
func (c *Context) AddCounter(name string, delta uint64) {
	c.w.counter(name).Add(c.w.sh.id, delta)
}

// CounterValue returns the merged value of the named shared counter.
func (c *Context) CounterValue(name string) uint64 {
	return c.w.counter(name).Value()
}

// TrafficClass buckets packets for the latency statistics of Fig. 15b.
type TrafficClass uint8

// Traffic classes.
const (
	ClassDLC TrafficClass = iota
	ClassDLU
	ClassULC
	ClassULU
	classCount
)

// String names the class as the paper's figure does.
func (t TrafficClass) String() string {
	switch t {
	case ClassDLC:
		return "DL C-Plane"
	case ClassDLU:
		return "DL U-Plane"
	case ClassULC:
		return "UL C-Plane"
	case ClassULU:
		return "UL U-Plane"
	}
	return fmt.Sprintf("class(%d)", uint8(t))
}

// Classify buckets a packet by plane and direction.
func Classify(pkt *fh.Packet) TrafficClass {
	t, err := pkt.Timing()
	dl := err == nil && t.Direction == oran.Downlink
	if pkt.Plane() == fh.PlaneC {
		if dl {
			return ClassDLC
		}
		return ClassULC
	}
	if dl {
		return ClassDLU
	}
	return ClassULU
}

// Package iqsynth generates compressed U-plane payloads cheaply. DU and
// RU simulators synthesize millions of PRBs per simulated second; encoding
// each through the BFP codec would dominate runtime, so payloads are
// assembled from a small cache of pre-compressed PRB templates keyed by
// sample amplitude. The templates are produced by the real codec, so every
// byte on the wire remains bit-faithful BFP that middleboxes can
// decompress, merge and re-compress.
package iqsynth

import (
	"fmt"

	"ranbooster/internal/bfp"
	"ranbooster/internal/iq"
)

// Variants is the number of distinct sample patterns cached per amplitude,
// so adjacent noise PRBs don't look byte-identical.
const Variants = 4

// Cache holds pre-compressed PRB templates for one compression config.
type Cache struct {
	comp bfp.Params
	m    map[int16][][]byte
}

// New builds a template cache for the compression parameters.
func New(comp bfp.Params) *Cache {
	return &Cache{comp: comp, m: make(map[int16][][]byte)}
}

// Comp returns the cache's compression parameters.
func (c *Cache) Comp() bfp.Params { return c.comp }

// PRB returns the encoded bytes of a PRB whose samples have the given
// amplitude. The returned slice is shared — callers must copy, which
// Append does.
func (c *Cache) PRB(amp int16, variant int) []byte {
	vs := c.m[amp]
	if vs == nil {
		vs = make([][]byte, Variants)
		for v := range vs {
			var prb iq.PRB
			for i := range prb {
				// A deterministic, variant-dependent pattern at the target
				// amplitude: full-scale I with alternating sign, quadrature
				// at half amplitude.
				sign := int16(1)
				if (i+v)%2 == 1 {
					sign = -1
				}
				prb[i] = iq.Sample{I: sign * amp, Q: -amp / 2}
			}
			buf, err := bfp.CompressPRB(nil, &prb, c.comp)
			if err != nil {
				panic(fmt.Sprintf("iqsynth: template compression failed: %v", err))
			}
			vs[v] = buf
		}
		c.m[amp] = vs
	}
	return vs[variant%Variants]
}

// Append appends nPRB encoded PRBs to dst, with per-PRB amplitude chosen
// by ampFor(i) and the variant rotated by i+seed.
func (c *Cache) Append(dst []byte, nPRB int, seed int, ampFor func(i int) int16) []byte {
	for i := 0; i < nPRB; i++ {
		dst = append(dst, c.PRB(ampFor(i), i+seed)...)
	}
	return dst
}

// Uniform appends nPRB PRBs of a single amplitude.
func (c *Cache) Uniform(dst []byte, nPRB, seed int, amp int16) []byte {
	return c.Append(dst, nPRB, seed, func(int) int16 { return amp })
}

// Standard synthesis amplitudes. DataAmplitude compresses with a large
// BFP exponent (utilized); ZeroAmplitude and noise-level payloads stay at
// or below Algorithm 1's thresholds.
const (
	DataAmplitude     = 16000
	SSBAmplitude      = 20000
	PreambleAmplitude = 12000
	ZeroAmplitude     = 0
)

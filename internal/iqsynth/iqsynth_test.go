package iqsynth

import (
	"bytes"
	"testing"

	"ranbooster/internal/bfp"
	"ranbooster/internal/iq"
)

func bfp9() bfp.Params { return bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint} }

func TestPRBDecodesAtRequestedAmplitude(t *testing.T) {
	c := New(bfp9())
	buf := c.PRB(DataAmplitude, 0)
	if len(buf) != bfp9().PRBSize() {
		t.Fatalf("template size %d", len(buf))
	}
	var prb iq.PRB
	if _, _, err := bfp.DecompressPRB(buf, &prb, bfp9()); err != nil {
		t.Fatal(err)
	}
	if m := prb.MaxMagnitude(); m < DataAmplitude*9/10 || m > DataAmplitude*11/10 {
		t.Fatalf("decoded magnitude %d, want ~%d", m, DataAmplitude)
	}
}

func TestVariantsDiffer(t *testing.T) {
	c := New(bfp9())
	if bytes.Equal(c.PRB(300, 0), c.PRB(300, 1)) {
		t.Fatal("adjacent variants identical")
	}
	if !bytes.Equal(c.PRB(300, 0), c.PRB(300, Variants)) {
		t.Fatal("variant index should wrap")
	}
}

func TestTemplatesCached(t *testing.T) {
	c := New(bfp9())
	a := c.PRB(1234, 2)
	b := c.PRB(1234, 2)
	if &a[0] != &b[0] {
		t.Fatal("template re-encoded instead of cached")
	}
}

func TestAppendAndUniform(t *testing.T) {
	c := New(bfp9())
	buf := c.Uniform(nil, 5, 0, DataAmplitude)
	if len(buf) != 5*bfp9().PRBSize() {
		t.Fatalf("uniform size %d", len(buf))
	}
	mixed := c.Append(nil, 4, 0, func(i int) int16 {
		if i%2 == 0 {
			return DataAmplitude
		}
		return 300
	})
	g := iq.NewGrid(4)
	if _, err := bfp.DecompressGrid(mixed, g, bfp9()); err != nil {
		t.Fatal(err)
	}
	if g[0].MaxMagnitude() < 10000 || g[1].MaxMagnitude() > 1000 {
		t.Fatalf("amplitude pattern lost: %d %d", g[0].MaxMagnitude(), g[1].MaxMagnitude())
	}
}

func TestExponentClassesMatchAlgorithm1Thresholds(t *testing.T) {
	// The synthesis amplitudes must land on the right side of Algorithm
	// 1's thresholds: noise <= 2 < data.
	c := New(bfp9())
	noise, _ := bfp.PeekExponent(c.PRB(300, 0))
	data, _ := bfp.PeekExponent(c.PRB(DataAmplitude, 0))
	zero, _ := bfp.PeekExponent(c.PRB(ZeroAmplitude, 0))
	if noise > 2 {
		t.Fatalf("noise exponent %d > uplink threshold 2", noise)
	}
	if data <= 2 {
		t.Fatalf("data exponent %d not above threshold", data)
	}
	if zero != 0 {
		t.Fatalf("zero exponent %d", zero)
	}
}

package experiments

import (
	"fmt"
	"time"

	"ranbooster/internal/air"
	"ranbooster/internal/apps/das"
	"ranbooster/internal/core"
	"ranbooster/internal/du"
	"ranbooster/internal/eth"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/testbed"
)

func init() {
	register("fig11", Fig11)
	register("fig12", Fig12)
	register("fig13", Fig13)
}

// walkXs are the measurement positions of the floor walk.
var walkXs = []float64{4, 10, 16, 22, 28, 34, 40, 47}

// walkThroughput walks the mobile UE across the floor measuring downlink
// goodput at each position.
func walkThroughput(tb *testbed.TB, mobile *air.UE) []float64 {
	var out []float64
	for _, x := range walkXs {
		mobile.Pos = radio.UEAt(0, x, radio.FloorWidth/2)
		tb.Run(150 * time.Millisecond) // settle: handover, link adaptation
		tb.Measure(150 * time.Millisecond)
		out = append(out, mobile.ThroughputDLbps(tb.Sched.Now()))
	}
	return out
}

// Fig11 regenerates Fig. 11: covering one floor with four RUs as (O1)
// four 25 MHz cells on separate frequencies, (O2) four 100 MHz cells with
// full frequency reuse, and (O3) one 100 MHz cell distributed by the DAS
// middlebox. A static UE near RU 1 pulls 100 Mbps; the mobile UE walks
// the floor running a 700 Mbps test.
func Fig11() *Table {
	t := &Table{
		ID:      "fig11",
		Title:   "Floor deployment options: mobile-UE DL Mbps at each walk position",
		Columns: append([]string{"option"}, walkLabels()...),
	}

	multiCell := func(label string, bwMHz int, reuse bool) {
		tb := testbed.New(110)
		var centers []int64
		for i := 0; i < 4; i++ {
			if reuse {
				centers = append(centers, 3_460_000_000)
			} else {
				// Non-overlapping 25 MHz blocks inside the 100 MHz.
				centers = append(centers, 3_410_000_000+int64(i)*26_000_000)
			}
		}
		for i := 0; i < 4; i++ {
			carrier := phy.NewCarrier(bwMHz, centers[i])
			cell := testbed.CellConfig(fmt.Sprintf("cell%d", i), i+1, carrier, phy.StackSRSRAN, 4)
			tb.DirectCell(fmt.Sprintf("c%d", i), cell, testbed.RUPosition(0, i), 4, false)
		}
		static := tb.AddUE(0, testbed.RUXPositions[0]+1, radio.FloorWidth/2)
		static.AllowedCell = "cell0"
		static.OfferedDLbps = 100e6
		mobile := tb.AddUE(0, 4, radio.FloorWidth/2)
		mobile.OfferedDLbps = 700e6
		tb.Settle()
		row := []string{label}
		for _, v := range walkThroughput(tb, mobile) {
			row = append(row, mbpsCell(v))
		}
		t.AddRow(row...)
	}
	multiCell("O1: four 25 MHz cells", 25, false)
	multiCell("O2: four 100 MHz cells (reuse-1)", 100, true)

	// O3: RANBooster DAS.
	{
		tb := testbed.New(111)
		cell := testbed.CellConfig("das", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		positions := []radio.Point{
			testbed.RUPosition(0, 0), testbed.RUPosition(0, 1),
			testbed.RUPosition(0, 2), testbed.RUPosition(0, 3),
		}
		if _, err := tb.DASCell("das", cell, positions, testbed.DASOpts{Mode: core.ModeDPDK, Cores: 2}); err != nil {
			panic(err)
		}
		static := tb.AddUE(0, testbed.RUXPositions[0]+1, radio.FloorWidth/2)
		static.OfferedDLbps = 100e6
		mobile := tb.AddUE(0, 4, radio.FloorWidth/2)
		mobile.OfferedDLbps = 700e6
		tb.Settle()
		row := []string{"O3: RANBooster DAS (one 100 MHz cell)"}
		for _, v := range walkThroughput(tb, mobile) {
			row = append(row, mbpsCell(v))
		}
		t.AddRow(row...)
	}
	t.Note("paper: O1 caps at ~200 Mbps; O2 dips at cell boundaries from inter-cell interference; O3 sustains ~700 Mbps everywhere")
	return t
}

func walkLabels() []string {
	out := make([]string, len(walkXs))
	for i, x := range walkXs {
		out[i] = fmt.Sprintf("x=%.0fm", x)
	}
	return out
}

// Fig12 regenerates Fig. 12 / §6.3.2: RU-sharing chained with DAS to host
// two MNOs over four shared 100 MHz RUs, 40 MHz each.
func Fig12() *Table {
	t := &Table{
		ID:      "fig12",
		Title:   "Chained RU sharing + DAS: two MNOs over the same four RUs",
		Columns: []string{"tenant", "DL Mbps across floor", "paper"},
	}
	tb, _, ues := buildFig12(700e6)
	tb.Settle()
	tb.Measure(300 * time.Millisecond)
	now := tb.Sched.Now()
	t.AddRow("MNO 1 (40 MHz)", mbpsCell(ues[0].ThroughputDLbps(now)), "~350")
	t.AddRow("MNO 2 (40 MHz)", mbpsCell(ues[1].ThroughputDLbps(now)), "~350")
	t.Note("RU sharing and DAS middleboxes are chained; no infrastructure change, software only")
	return t
}

// buildFig12 assembles the chained deployment: two 40 MHz DUs → RU-sharing
// middlebox → DAS middlebox → four 100 MHz RUs.
func buildFig12(offered float64) (*testbed.TB, []*du.DU, []*air.UE) {
	tb := testbed.New(112)
	ruCarrier := testbed.Carrier100()
	duPRBs := phy.PRBsFor(40)

	dasMAC := tb.NewMAC()
	// The DAS distributes the shared-RU downstream across the floor.
	var ruMACs []eth.MAC
	for i := 0; i < 4; i++ {
		_, mac := tb.AddRU(fmt.Sprintf("f12-ru%d", i), testbed.RUPosition(0, i), testbed.RUOpts{
			Carrier: ruCarrier, Ports: 4, Peer: dasMAC,
		})
		ruMACs = append(ruMACs, mac)
	}

	// RU-sharing tenants, aligned per Appendix A.1.1.
	shareMAC := tb.NewMAC()
	cells := []air.CellConfig{
		testbed.CellConfig("mno1", 21, phy.Carrier{BandwidthMHz: 40, CenterHz: phy.AlignedDUCenterHz(ruCarrier, 0, duPRBs), NumPRB: duPRBs}, phy.StackSRSRAN, 4),
		testbed.CellConfig("mno2", 22, phy.Carrier{BandwidthMHz: 40, CenterHz: phy.AlignedDUCenterHz(ruCarrier, ruCarrier.NumPRB-duPRBs, duPRBs), NumPRB: duPRBs}, phy.StackSRSRAN, 4),
	}
	var dus []*du.DU
	var infos []rushareInfo
	for i, cell := range cells {
		d, duMAC := tb.AddDU(fmt.Sprintf("f12-du%d", i), testbed.DUOpts{Cell: cell, Peer: shareMAC, DUPortID: uint8(i + 1)})
		dus = append(dus, d)
		infos = append(infos, rushareInfo{mac: duMAC, carrier: cell.Carrier, port: uint8(i + 1)})
	}
	// Sharing middlebox: its "RU" is the DAS middlebox.
	shareEng := buildRushareEngine(tb, "f12-rushare", shareMAC, dasMAC, ruCarrier, infos)
	tb.AddEngine(shareEng, shareMAC)

	// DAS middlebox: its "DU" is the sharing middlebox.
	dasApp := das.New(das.Config{
		Name: "f12-das", MAC: dasMAC, DU: shareMAC, RUs: ruMACs,
		CarrierPRBs: ruCarrier.NumPRB,
	})
	dasEng, err := core.NewEngine(tb.Sched, core.Config{
		Name: dasApp.Name(), Mode: core.ModeDPDK, Cores: 2, App: dasApp,
		CarrierPRBs: ruCarrier.NumPRB,
	})
	if err != nil {
		panic(err)
	}
	tb.AddEngine(dasEng, dasMAC)

	u1 := tb.AddUE(0, testbed.RUXPositions[1]+3, radio.FloorWidth/2)
	u1.AllowedCell = "mno1"
	u1.OfferedDLbps = offered
	u2 := tb.AddUE(0, testbed.RUXPositions[2]-3, radio.FloorWidth/2)
	u2.AllowedCell = "mno2"
	u2.OfferedDLbps = offered
	return tb, dus, []*air.UE{u1, u2}
}

// Fig13 regenerates Fig. 13 / §6.3.2: a floor of four cheap 1-antenna RUs
// run first as a SISO DAS, then swapped (software only) to a 4-layer
// dMIMO middlebox.
func Fig13() *Table {
	t := &Table{
		ID:      "fig13",
		Title:   "DAS (SISO) vs dMIMO middlebox on the same four 1-antenna RUs",
		Columns: append([]string{"middlebox"}, walkLabels()...),
	}
	positions := []radio.Point{
		testbed.RUPosition(0, 0), testbed.RUPosition(0, 1),
		testbed.RUPosition(0, 2), testbed.RUPosition(0, 3),
	}
	// DAS with a SISO cell.
	{
		tb := testbed.New(113)
		cell := testbed.CellConfig("siso", 1, testbed.Carrier100(), phy.StackSRSRAN, 1)
		if _, err := tb.DASCell("f13das", cell, positions, testbed.DASOpts{
			Mode: core.ModeDPDK, Ports: 1, Cheap: true,
		}); err != nil {
			panic(err)
		}
		mobile := tb.AddUE(0, 4, radio.FloorWidth/2)
		mobile.OfferedDLbps = 900e6
		tb.Settle()
		row := []string{"vendor A: DAS middlebox (SISO)"}
		for _, v := range walkThroughput(tb, mobile) {
			row = append(row, mbpsCell(v))
		}
		t.AddRow(row...)
	}
	// dMIMO on the same RUs.
	{
		tb := testbed.New(114)
		cell := testbed.CellConfig("dmimo", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		if _, err := tb.DMIMOCell("f13dm", cell, positions, testbed.DMIMOOpts{
			Mode: core.ModeDPDK, PortsPerRU: 1, Cheap: true,
		}); err != nil {
			panic(err)
		}
		mobile := tb.AddUE(0, 4, radio.FloorWidth/2)
		mobile.OfferedDLbps = 900e6
		tb.Settle()
		row := []string{"vendor B: dMIMO middlebox (4 layers)"}
		for _, v := range walkThroughput(tb, mobile) {
			row = append(row, mbpsCell(v))
		}
		t.AddRow(row...)
	}
	t.Note("paper: DAS ~250 Mbps; dMIMO 2-3x higher depending on location; no infrastructure change")
	return t
}

package experiments

import (
	"fmt"
	"time"

	"ranbooster/internal/air"
	"ranbooster/internal/core"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/testbed"
)

func init() {
	register("fig16", Fig16)
	register("table1", Table1)
}

// mbDeployment abstracts "a middlebox over a 40 MHz cell with two RUs"
// for the Fig. 16 and Table 1 sweeps.
type mbDeployment struct {
	tb     *testbed.TB
	engine *core.Engine
	addUE  func(traffic bool) *air.UE
}

func deployDAS40(mode core.Mode, seed uint64) *mbDeployment {
	tb := testbed.New(seed)
	cell := testbed.CellConfig("f16", 1, phy.NewCarrier(40, 3_460_000_000), phy.StackSRSRAN, 4)
	positions := []radio.Point{testbed.RUPosition(0, 1), testbed.RUPosition(0, 2)}
	dep, err := tb.DASCell("f16das", cell, positions, testbed.DASOpts{Mode: mode})
	if err != nil {
		panic(err)
	}
	return &mbDeployment{tb: tb, engine: dep.Engine, addUE: mkAddUE(tb)}
}

func deployDMIMO40(mode core.Mode, seed uint64) *mbDeployment {
	tb := testbed.New(seed)
	cell := testbed.CellConfig("f16", 1, phy.NewCarrier(40, 3_460_000_000), phy.StackSRSRAN, 4)
	positions := []radio.Point{testbed.RUPosition(0, 1), testbed.RUPosition(0, 2)}
	dep, err := tb.DMIMOCell("f16dm", cell, positions, testbed.DMIMOOpts{Mode: mode, PortsPerRU: 2})
	if err != nil {
		panic(err)
	}
	return &mbDeployment{tb: tb, engine: dep.Engine, addUE: mkAddUE(tb)}
}

func mkAddUE(tb *testbed.TB) func(bool) *air.UE {
	return func(traffic bool) *air.UE {
		u := tb.AddUE(0, testbed.RUXPositions[1]+3, radio.FloorWidth/2)
		if traffic {
			u.OfferedDLbps = 500e6
		}
		return u
	}
}

// measureUtilization runs one cell condition and reads the middlebox's
// core utilization.
func measureUtilization(build func(core.Mode, uint64) *mbDeployment, mode core.Mode, condition string) float64 {
	d := build(mode, 160)
	switch condition {
	case "idle":
		// No UE at all.
	case "attached":
		d.addUE(false)
	case "traffic":
		d.addUE(true)
	}
	d.tb.Settle()
	d.engine.ResetMeasurement()
	d.tb.Run(200 * time.Millisecond)
	return d.engine.Utilization()
}

// Fig16 regenerates Fig. 16: CPU utilization of DPDK vs XDP middlebox
// implementations (40 MHz cell) under three cell conditions.
func Fig16() *Table {
	t := &Table{
		ID:      "fig16",
		Title:   "CPU utilization: DPDK vs XDP (40 MHz cell, one core)",
		Columns: []string{"middlebox", "datapath", "idle cell", "UE attached", "traffic"},
	}
	type row struct {
		name  string
		build func(core.Mode, uint64) *mbDeployment
	}
	for _, r := range []row{{"DAS", deployDAS40}, {"dMIMO", deployDMIMO40}} {
		for _, mode := range []core.Mode{core.ModeDPDK, core.ModeXDP} {
			t.AddRow(r.name, mode.String(),
				pctCell(measureUtilization(r.build, mode, "idle")),
				pctCell(measureUtilization(r.build, mode, "attached")),
				pctCell(measureUtilization(r.build, mode, "traffic")))
		}
	}
	t.Note("paper: DPDK pins its poll core at 100%%; XDP scales with traffic, and DAS costs ~25-30%% more than dMIMO under load (userspace IQ work + context switches)")
	return t
}

// Table1 regenerates Table 1: where each application's packet processing
// runs in the XDP implementation, measured as the fraction of packets the
// kernel program handles without an AF_XDP punt.
func Table1() *Table {
	t := &Table{
		ID:      "table1",
		Title:   "XDP packet-processing location per application (measured)",
		Columns: []string{"application", "kernel-handled", "location", "paper"},
	}
	type probe struct {
		name  string
		paper string
		run   func() core.Stats
	}
	probes := []probe{
		{"DAS", "userspace", func() core.Stats {
			d := deployDAS40(core.ModeXDP, 161)
			d.addUE(true)
			d.tb.Settle()
			d.tb.Run(100 * time.Millisecond)
			return d.engine.Snapshot()
		}},
		{"dMIMO", "kernel", func() core.Stats {
			d := deployDMIMO40(core.ModeXDP, 162)
			d.addUE(true)
			d.tb.Settle()
			d.tb.Run(100 * time.Millisecond)
			return d.engine.Snapshot()
		}},
		{"RU sharing", "userspace", func() core.Stats {
			tb := testbed.New(163)
			ruCarrier := testbed.Carrier100()
			duPRBs := phy.PRBsFor(40)
			cells := []air.CellConfig{
				testbed.CellConfig("t1A", 11, phy.Carrier{BandwidthMHz: 40, CenterHz: phy.AlignedDUCenterHz(ruCarrier, 0, duPRBs), NumPRB: duPRBs}, phy.StackSRSRAN, 4),
				testbed.CellConfig("t1B", 12, phy.Carrier{BandwidthMHz: 40, CenterHz: phy.AlignedDUCenterHz(ruCarrier, ruCarrier.NumPRB-duPRBs, duPRBs), NumPRB: duPRBs}, phy.StackSRSRAN, 4),
			}
			dep, err := tb.SharedRU("t1", ruCarrier, testbed.RUPosition(0, 0), cells, core.ModeXDP)
			if err != nil {
				panic(err)
			}
			u := tb.AddUE(0, testbed.RUXPositions[0]+3, radio.FloorWidth/2)
			u.AllowedCell = "t1A"
			u.OfferedDLbps = 300e6
			tb.Settle()
			tb.Run(100 * time.Millisecond)
			return dep.Engine.Snapshot()
		}},
		{"PRB monitoring", "kernel", func() core.Stats {
			tb := testbed.New(164)
			cell := testbed.CellConfig("t1m", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
			dep, err := tb.MonitoredCell("t1m", cell, testbed.RUPosition(0, 0), testbed.MonitorOpts{Mode: core.ModeXDP})
			if err != nil {
				panic(err)
			}
			u := tb.AddUE(0, testbed.RUXPositions[0]+3, radio.FloorWidth/2)
			u.OfferedDLbps = 300e6
			tb.Settle()
			tb.Run(100 * time.Millisecond)
			return dep.Engine.Snapshot()
		}},
	}
	for _, p := range probes {
		st := p.run()
		handled := 0.0
		if st.RxFrames > 0 {
			handled = float64(st.RxFrames-st.Punts) / float64(st.RxFrames)
		}
		loc := "userspace"
		if st.Punts == 0 {
			loc = "kernel"
		}
		t.AddRow(p.name, fmt.Sprintf("%.0f%%", handled*100), loc, p.paper)
	}
	return t
}

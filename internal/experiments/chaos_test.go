package experiments

import (
	"strings"
	"testing"
)

// TestSuperviseScenarios smoke-runs the supervision rows of the chaos
// experiment — panic isolation, stall watchdog, AIMD shedding — without
// the expensive testbed scenarios. These are the `make chaos-supervise`
// regressions: they must complete (no crash, no hang) and report the
// supervision outcomes the design promises.
func TestSuperviseScenarios(t *testing.T) {
	tbl := &Table{ID: "supervise", Columns: []string{"scenario", "fault script", "recovery / accuracy", "detail"}}
	chaosPanicIsolation(tbl)
	chaosStallDetection(tbl)
	chaosShedAIMD(tbl)
	if len(tbl.Rows) != 2+3+6 {
		t.Fatalf("got %d rows, want 11:\n%s", len(tbl.Rows), tbl)
	}
	for _, row := range tbl.Rows {
		switch {
		case strings.HasPrefix(row[0], "panic isolation"):
			if row[2] != "0 of 5000 frames lost" {
				t.Errorf("%s: %q — isolation lost frames", row[0], row[2])
			}
		case strings.HasPrefix(row[0], "stall watchdog"):
			if row[2] == "NO RESTART" {
				t.Errorf("%s: watchdog never restarted the shard", row[0])
			}
		case strings.HasPrefix(row[0], "overload shedding"):
			// The 96-frame offered load sits below every watermark: both
			// policies must shed nothing there (hysteresis).
			if strings.Contains(row[1], "96 frames") && row[2] != "shed 0 data + 0 PRACH, dropped 0" {
				t.Errorf("%s @ light load: %q, want zero sheds", row[0], row[2])
			}
		}
	}
	t.Logf("\n%s", tbl)
}

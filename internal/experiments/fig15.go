package experiments

import (
	"fmt"
	"time"

	"ranbooster/internal/core"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/testbed"
)

func init() {
	register("fig15a", Fig15a)
	register("fig15b", Fig15b)
}

// runDASScale deploys a DPDK DAS over n 100 MHz 4x4 RUs with full DL+UL
// load and measures loss and middlebox port traffic over window.
type dasScaleResult struct {
	lossFraction float64
	egressBps    float64
	ingressBps   float64
	dep          *testbed.DASDeployment
}

func runDASScale(n, cores int, window time.Duration) dasScaleResult {
	tb := testbed.New(uint64(150 + n))
	cell := testbed.CellConfig("scale", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
	var positions []radio.Point
	for i := 0; i < n; i++ {
		positions = append(positions, testbed.RUPosition(i%testbed.Floors, i%4))
	}
	dep, err := tb.DASCell("scale", cell, positions, testbed.DASOpts{Mode: core.ModeDPDK, Cores: cores})
	if err != nil {
		panic(err)
	}
	u := tb.AddUE(0, testbed.RUXPositions[0]+3, radio.FloorWidth/2)
	u.OfferedDLbps, u.OfferedULbps = 1200e6, 120e6
	tb.Settle()

	stBefore := dep.Port.Stats()
	duBefore := dep.DU.Stats()
	var ruLateBefore, ruRxBefore uint64
	for _, r := range dep.RUs {
		ruLateBefore += r.Stats().LateDL
		ruRxBefore += r.Stats().RxUPlane
	}
	dep.Engine.ResetMeasurement()
	tb.Measure(window)
	stAfter := dep.Port.Stats()
	duAfter := dep.DU.Stats()
	var ruLateAfter, ruRxAfter uint64
	for _, r := range dep.RUs {
		ruLateAfter += r.Stats().LateDL
		ruRxAfter += r.Stats().RxUPlane
	}

	ulRx := duAfter.ULRx - duBefore.ULRx
	ulLate := duAfter.ULLate - duBefore.ULLate
	dlRx := ruRxAfter - ruRxBefore
	dlLate := ruLateAfter - ruLateBefore
	loss := 0.0
	if ulRx+dlRx > 0 {
		loss = float64(ulLate+dlLate) / float64(ulRx+dlRx)
	}
	sec := window.Seconds()
	return dasScaleResult{
		lossFraction: loss,
		egressBps:    float64(stAfter.TxBytes-stBefore.TxBytes) * 8 / sec,
		ingressBps:   float64(stAfter.RxBytes-stBefore.RxBytes) * 8 / sec,
		dep:          dep,
	}
}

// Fig15a regenerates Fig. 15a: CPU cores and fronthaul traffic needed by
// the DAS middlebox as RUs are added. One core carries up to four RUs
// without loss; beyond that a second core is required.
func Fig15a() *Table {
	t := &Table{
		ID:      "fig15a",
		Title:   "DAS scalability: cores and middlebox traffic vs number of RUs (100 MHz 4x4, DPDK)",
		Columns: []string{"RUs", "cores needed", "loss @1 core", "egress Gbps", "ingress Gbps"},
	}
	const window = 200 * time.Millisecond
	for n := 2; n <= 6; n++ {
		one := runDASScale(n, 1, window)
		cores := 1
		res := one
		if one.lossFraction > 0.001 {
			cores = 2
			res = runDASScale(n, 2, window)
			if res.lossFraction > 0.001 {
				cores = 3
				res = runDASScale(n, 3, window)
			}
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", cores),
			pctCell(one.lossFraction), gbpsCell(res.egressBps), gbpsCell(res.ingressBps))
	}
	t.Note("paper: a single core supports up to four RUs without loss; traffic grows linearly, well below NIC capacity")
	return t
}

// Fig15b regenerates Fig. 15b: per-packet middlebox processing latency by
// traffic type as RUs are added. Downlink stays under 300 ns; uplink is
// bimodal — cache-only packets are cheap, the per-antenna merges cost
// 4–6 µs and grow with the RU count.
func Fig15b() *Table {
	t := &Table{
		ID:      "fig15b",
		Title:   "DAS per-packet latency by traffic type (p50 / p99)",
		Columns: []string{"RUs", "DL C-Plane", "DL U-Plane", "UL U-Plane p50", "UL U-Plane p99"},
	}
	for n := 2; n <= 4; n++ {
		res := runDASScale(n, 1, 150*time.Millisecond)
		e := res.dep.Engine
		dlc, _ := e.LatencyPercentile(core.ClassDLC, 0.99)
		dlu, _ := e.LatencyPercentile(core.ClassDLU, 0.99)
		ulu50, _ := e.LatencyPercentile(core.ClassULU, 0.50)
		ulu99, _ := e.LatencyPercentile(core.ClassULU, 0.99)
		t.AddRow(fmt.Sprintf("%d", n), dlc.String(), dlu.String(), ulu50.String(), ulu99.String())
	}
	t.Note("paper: DL under 300 ns; ~75%% of UL packets under 300 ns, merges at 4-6 µs growing with RUs")
	return t
}

package experiments

import "fmt"

func init() {
	register("costs", CostsA2)
}

// CapEx model of Appendix A.2: the Cambridge deployment's commodity bill
// of materials versus a conventional DAS quote.
type CapExItem struct {
	Item  string
	Cost  float64
	Notes string
}

// CambridgeBOM is the itemization behind the paper's "$60,000" commodity
// estimate (16 RUs across four floors plus fabric and compute).
var CambridgeBOM = []CapExItem{
	{"16 commodity O-RAN RUs", 28800, "$1.8k each"},
	{"cabling, mounting, building work", 12000, ""},
	{"switching fabric (100GbE)", 9000, ""},
	{"PTP grandmaster clock", 4200, ""},
	{"NICs", 2000, ""},
	{"8 CPU cores for middleboxes (amortized)", 4000, ""},
}

// Deployment geometry from Appendix A.2.
const (
	SquareFeetPerFloor = 15403.0
	CambridgeFloors    = 5
	// ConventionalDASPerSqFt is the conservative reference price.
	ConventionalDASPerSqFt = 2.0
	// VendorMargin is the speculative RANBooster offering's profit margin.
	VendorMargin = 0.5
)

// CommodityCost sums the bill of materials.
func CommodityCost() float64 {
	var sum float64
	for _, it := range CambridgeBOM {
		sum += it.Cost
	}
	return sum
}

// ConventionalDASCost prices a conventional deployment of the same area.
func ConventionalDASCost() float64 {
	return SquareFeetPerFloor * CambridgeFloors * ConventionalDASPerSqFt
}

// SavingsFraction is the Appendix A.2 headline: cost reduction after the
// vendor margin.
func SavingsFraction() float64 {
	offered := CommodityCost() * (1 + VendorMargin)
	return 1 - offered/ConventionalDASCost()
}

// CostsA2 regenerates the Appendix A.2 CapEx comparison.
func CostsA2() *Table {
	t := &Table{
		ID:      "costs",
		Title:   "Appendix A.2: CapEx of the Cambridge deployment",
		Columns: []string{"item", "cost USD"},
	}
	for _, it := range CambridgeBOM {
		label := it.Item
		if it.Notes != "" {
			label += " (" + it.Notes + ")"
		}
		t.AddRow(label, fmt.Sprintf("%.0f", it.Cost))
	}
	t.AddRow("commodity total", fmt.Sprintf("%.0f", CommodityCost()))
	t.AddRow("with 50% vendor margin", fmt.Sprintf("%.0f", CommodityCost()*(1+VendorMargin)))
	t.AddRow(fmt.Sprintf("conventional DAS (%.0f sqft x $%.0f)", SquareFeetPerFloor*CambridgeFloors, ConventionalDASPerSqFt),
		fmt.Sprintf("%.0f", ConventionalDASCost()))
	t.AddRow("savings", fmt.Sprintf("%.0f%%", SavingsFraction()*100))
	t.Note("paper: commodity ~$60k; conventional ~$154k; ~41%% cheaper even with a 50%% margin")
	return t
}

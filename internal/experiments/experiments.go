// Package experiments regenerates every table and figure of the paper's
// evaluation (§6, plus Appendix A.2) on the simulated testbed. Each
// runner returns a Table carrying the same rows/series the paper reports,
// alongside the paper's reference numbers, so shape comparisons are
// immediate. EXPERIMENTS.md records a full run.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one regenerated result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Runner produces one result.
type Runner func() *Table

// Registry maps experiment ids to runners.
var Registry = map[string]Runner{}

// order preserves a stable listing.
var order []string

func register(id string, r Runner) {
	Registry[id] = r
	order = append(order, id)
}

// IDs returns the registered experiment ids in registration order.
func IDs() []string {
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}

func mbpsCell(bps float64) string { return fmt.Sprintf("%.1f", bps/1e6) }
func refCell(v float64) string    { return fmt.Sprintf("%.1f", v) }
func pctCell(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }
func gbpsCell(bps float64) string { return fmt.Sprintf("%.1f", bps/1e9) }

package experiments

import (
	"fmt"
	"time"

	"ranbooster/internal/air"
	"ranbooster/internal/apps/dmimo"
	"ranbooster/internal/apps/prbmon"
	"ranbooster/internal/core"
	"ranbooster/internal/cpu"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/telemetry"
	"ranbooster/internal/testbed"
)

func init() {
	register("ablate-alignment", AblationAlignment)
	register("ablate-estimator", AblationEstimator)
	register("ablate-ssb", AblationSSB)
	register("ablate-widening", AblationWidening)
	register("ablate-xdp-placement", AblationXDPPlacement)
}

// AblationAlignment quantifies the Appendix A.1.1 design choice: aligned
// DU center frequencies enable a compressed-copy fast path; misaligned
// grids pay per-PRB transcoding in the RU-sharing middlebox.
func AblationAlignment() *Table {
	t := &Table{
		ID:      "ablate-alignment",
		Title:   "RU sharing: aligned vs misaligned DU grids (Fig. 6)",
		Columns: []string{"grids", "DL Mbps", "mux p99 latency", "fast copies", "transcodes"},
	}
	run := func(aligned bool) {
		tb := testbed.New(170)
		ruCarrier := testbed.Carrier100()
		duPRBs := phy.PRBsFor(40)
		c1 := phy.AlignedDUCenterHz(ruCarrier, 0, duPRBs)
		c2 := phy.AlignedDUCenterHz(ruCarrier, ruCarrier.NumPRB-duPRBs, duPRBs)
		if !aligned {
			c1 += phy.SCS / 2
			c2 += phy.SCS / 2
		}
		cells := []air.CellConfig{
			testbed.CellConfig("abA", 11, phy.Carrier{BandwidthMHz: 40, CenterHz: c1, NumPRB: duPRBs}, phy.StackSRSRAN, 4),
			testbed.CellConfig("abB", 12, phy.Carrier{BandwidthMHz: 40, CenterHz: c2, NumPRB: duPRBs}, phy.StackSRSRAN, 4),
		}
		dep, err := tb.SharedRU("ab", ruCarrier, testbed.RUPosition(0, 0), cells, core.ModeDPDK)
		if err != nil {
			panic(err)
		}
		u := tb.AddUE(0, testbed.RUXPositions[0]+3, radio.FloorWidth/2)
		u.AllowedCell = "abA"
		u.OfferedDLbps = 400e6
		tb.Settle()
		dep.Engine.ResetMeasurement()
		tb.Measure(200 * time.Millisecond)
		lat, _ := dep.Engine.LatencyPercentile(core.ClassDLU, 0.99)
		label := "misaligned"
		if aligned {
			label = "aligned (A.1.1 centers)"
		}
		t.AddRow(label, mbpsCell(u.ThroughputDLbps(tb.Sched.Now())), lat.String(),
			fmt.Sprintf("%d", dep.App.AlignedCopies.Load()), fmt.Sprintf("%d", dep.App.Recompress.Load()))
	}
	run(true)
	run(false)
	t.Note("both are correct; alignment trades a one-time frequency-planning step for per-packet CPU")
	return t
}

// AblationEstimator compares Algorithm 1's exponent shortcut against the
// decompress-and-threshold energy estimator §4.4 considers and rejects.
func AblationEstimator() *Table {
	t := &Table{
		ID:      "ablate-estimator",
		Title:   "PRB monitoring estimators: BFP exponent vs IQ energy",
		Columns: []string{"estimator", "DL estimate", "DL truth", "monitor p99 latency"},
	}
	run := func(est prbmon.Estimator, label string) {
		tb := testbed.New(171)
		cell := testbed.CellConfig("abm", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		dep, err := tb.MonitoredCell("abm", cell, testbed.RUPosition(0, 0), testbed.MonitorOpts{
			Mode: core.ModeDPDK, Estimator: est,
		})
		if err != nil {
			panic(err)
		}
		rec := telemetry.NewRecorder()
		rec.Attach(dep.Engine.Bus(), "")
		u := tb.AddUE(0, testbed.RUXPositions[0]+3, radio.FloorWidth/2)
		u.OfferedDLbps = 400e6
		tb.Settle()
		dep.Engine.ResetMeasurement()
		before := dep.DU.Stats()
		tb.Measure(300 * time.Millisecond)
		after := dep.DU.Stats()
		truth := ratio(after.DLPRBSymSched-before.DLPRBSymSched, after.DLPRBSymTotal-before.DLPRBSymTotal)
		lat, _ := dep.Engine.LatencyPercentile(core.ClassDLU, 0.99)
		t.AddRow(label, pctCell(lastSample(rec, prbmon.KPIUtilizationDL)), pctCell(truth), lat.String())
	}
	run(prbmon.EstimatorExponent, "BFP exponent (Algorithm 1)")
	run(prbmon.EstimatorEnergy, "IQ energy threshold")
	t.Note("both estimators are accurate; the exponent shortcut avoids the per-PRB decompression cost")
	return t
}

// AblationSSB reruns the §4.2 SSB replication switch: without it, a UE
// outside the primary RU's range never hears the cell.
func AblationSSB() *Table {
	t := &Table{
		ID:      "ablate-ssb",
		Title:   "dMIMO SSB replication on/off: distant UE attachment",
		Columns: []string{"SSB replication", "distant UE attached", "SSB replicas"},
	}
	run := func(replicate bool) {
		tb := testbed.New(172)
		cell := testbed.CellConfig("abd", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		positions := []radio.Point{testbed.RUPosition(0, 0), testbed.RUPosition(0, 3)}
		dep, err := tb.DMIMOCell("abd", cell, positions, testbed.DMIMOOpts{
			Mode: core.ModeDPDK, PortsPerRU: 2, DisableSSBReplication: !replicate,
		})
		if err != nil {
			panic(err)
		}
		u := tb.AddUE(0, testbed.RUXPositions[3]+2, radio.FloorWidth/2)
		tb.Run(300 * time.Millisecond)
		state := "no (never hears the SSB)"
		if u.Attached() {
			state = "yes"
		}
		onOff := "off"
		if replicate {
			onOff = "on"
		}
		t.AddRow(onOff, state, fmt.Sprintf("%d", dep.App.SSBReplicas.Load()))
	}
	run(true)
	run(false)
	return t
}

// AblationWidening measures the §4.3 trade-off: widening numPrb to the
// RU's full spectrum guarantees consistency at the cost of extra uplink
// fronthaul bytes versus the minimal per-DU requests.
func AblationWidening() *Table {
	t := &Table{
		ID:      "ablate-widening",
		Title:   "RU sharing numPrb widening: uplink fronthaul overhead",
		Columns: []string{"quantity", "value"},
	}
	ruPRBs := testbed.Carrier100().NumPRB
	duPRBs := phy.PRBsFor(40)
	comp := testbed.BFP9()
	full := float64(ruPRBs * comp.PRBSize())
	minimal := float64(2 * duPRBs * comp.PRBSize())
	t.AddRow("RU U-plane bytes per symbol-port (widened)", fmt.Sprintf("%.0f", full))
	t.AddRow("bytes if each DU were served exactly (2x40 MHz)", fmt.Sprintf("%.0f", minimal))
	t.AddRow("extra fronthaul bandwidth", fmt.Sprintf("%.0f%%", (full/minimal-1)*100))
	t.Note("the widening buys correctness without DU coordination: any late C-plane request is already satisfied")
	return t
}

// AblationXDPPlacement forces the dMIMO datapath through userspace (as if
// its kernel program were absent) to quantify what Table 1's in-kernel
// placement saves.
func AblationXDPPlacement() *Table {
	t := &Table{
		ID:      "ablate-xdp-placement",
		Title:   "dMIMO XDP: in-kernel rules vs all-userspace punt",
		Columns: []string{"placement", "CPU utilization", "punt fraction"},
	}
	run := func(kernel bool, label string) {
		tb := testbed.New(173)
		cell := testbed.CellConfig("abx", 1, phy.NewCarrier(40, 3_460_000_000), phy.StackSRSRAN, 4)
		positions := []radio.Point{testbed.RUPosition(0, 1), testbed.RUPosition(0, 2)}
		dep, err := tb.DMIMOCell("abx", cell, positions, testbed.DMIMOOpts{Mode: core.ModeXDP, PortsPerRU: 2})
		if err != nil {
			panic(err)
		}
		u := tb.AddUE(0, testbed.RUXPositions[1]+3, radio.FloorWidth/2)
		u.OfferedDLbps = 400e6
		tb.Settle()
		dep.Engine.ResetMeasurement()
		tb.Run(200 * time.Millisecond)
		st := dep.Engine.Snapshot()
		t.AddRow(label, pctCell(dep.Engine.Utilization()), pctCell(ratio(st.Punts, st.RxFrames)))
	}
	run(true, "kernel rules (Table 1 placement)")
	// All-userspace variant: assemble manually with a pass-all program.
	{
		tb := testbed.New(174)
		cell := testbed.CellConfig("abx", 1, phy.NewCarrier(40, 3_460_000_000), phy.StackSRSRAN, 4)
		positions := []radio.Point{testbed.RUPosition(0, 1), testbed.RUPosition(0, 2)}
		dep := buildDMIMOPuntAll(tb, cell, positions)
		u := tb.AddUE(0, testbed.RUXPositions[1]+3, radio.FloorWidth/2)
		u.OfferedDLbps = 400e6
		tb.Settle()
		dep.ResetMeasurement()
		tb.Run(200 * time.Millisecond)
		st := dep.Snapshot()
		t.AddRow("all-userspace (AF_XDP punt)", pctCell(dep.Utilization()), pctCell(ratio(st.Punts, st.RxFrames)))
	}
	t.Note("same packets, same logic: the in-kernel placement avoids the per-packet AF_XDP handoff")
	_ = cpu.CostAFXDPHandoff
	return t
}

// buildDMIMOPuntAll assembles a dMIMO middlebox whose XDP program punts
// every packet to the userspace handler.
func buildDMIMOPuntAll(tb *testbed.TB, cell air.CellConfig, positions []radio.Point) *core.Engine {
	mbMAC := tb.NewMAC()
	var slots []dmimo.RUSlot
	for i, pos := range positions {
		_, mac := tb.AddRU(fmt.Sprintf("abx-ru%d", i), pos, testbed.RUOpts{
			Carrier: cell.Carrier, Ports: 2, Peer: mbMAC,
		})
		slots = append(slots, dmimo.RUSlot{MAC: mac, Ports: 2})
	}
	_, duMAC := tb.AddDU("abx-du", testbed.DUOpts{Cell: cell, Peer: mbMAC})
	app := dmimo.New(dmimo.Config{
		Name: "abx-dmimo", MAC: mbMAC, DU: duMAC, RUs: slots,
		SSB: cell.SSB, ReplicateSSB: true, CarrierPRBs: cell.Carrier.NumPRB,
	})
	eng, err := core.NewEngine(tb.Sched, core.Config{
		Name: app.Name(), Mode: core.ModeXDP, App: app,
		Kernel:      &core.KernelProgram{Rules: []core.Rule{{Verdict: core.VerdictPass}}},
		CarrierPRBs: cell.Carrier.NumPRB,
	})
	if err != nil {
		panic(err)
	}
	tb.AddEngine(eng, mbMAC)
	return eng
}

package experiments

import (
	"fmt"

	"ranbooster/internal/core"
	"ranbooster/internal/telemetry"
	"ranbooster/internal/testbed"
)

func init() {
	register("metro", runMetroScale)
}

// runMetroScale renders the BENCH_8 metro-scale axis on the deterministic
// clock: streams × shards × chain-depth scenario points with per-frame
// sojourn percentiles and the end-to-end loss rate read from the engines'
// telemetry. The virtual-time numbers are seed-stable, so the table
// regenerates identically on every host (the wall-clock skew comparison
// lives in cmd/benchreg's BENCH_8.json instead).
func runMetroScale() *Table {
	t := &Table{
		ID:      "metro",
		Title:   "Metro-scale chained middleboxes (streams × shards × chain depth)",
		Columns: []string{"streams", "shards", "chain", "frames", "p50 us", "p99 us", "loss", "steals"},
	}
	points := [][3]int{
		{64, 4, 2}, {256, 4, 2}, {1024, 4, 2},
		{256, 1, 2}, {256, 2, 2},
		{256, 4, 1}, {256, 4, 3},
	}
	const slots = 100
	for _, p := range points {
		streams, shards, chain := p[0], p[1], p[2]
		cells := (streams + 3) / 4
		m, err := testbed.NewMetro(testbed.MetroConfig{
			Floors: (cells + 3) / 4, CellsPerFloor: 4, PortsPerRU: 4,
			ChainDepth: chain,
			Cores:      shards,
			Scale:      core.ScalePolicy{WorkSteal: true},
			Trace:      true,
			Seed:       8,
		})
		if err != nil {
			panic(err)
		}
		m.RunSlots(slots)
		m.Flush()
		rep := m.Conservation(0)
		if err := rep.Check(); err != nil {
			panic(err)
		}
		var tr telemetry.TraceStats
		var steals uint64
		for _, e := range m.Engines {
			st := e.Snapshot()
			steals += st.Steals
			if st.Trace != nil {
				tr = tr.Merge(*st.Trace)
			}
		}
		p50, _ := tr.Stage[telemetry.StageTotal].Quantile(0.50)
		p99, _ := tr.Stage[telemetry.StageTotal].Quantile(0.99)
		loss := float64(m.Injected()-rep.Sink.Delivered) / float64(m.Injected())
		t.AddRow(
			fmt.Sprintf("%d", m.Config().Streams()),
			fmt.Sprintf("%d", shards),
			fmt.Sprintf("%d", chain),
			fmt.Sprintf("%d", m.Injected()),
			fmt.Sprintf("%.1f", float64(p50.Nanoseconds())/1e3),
			fmt.Sprintf("%.1f", float64(p99.Nanoseconds())/1e3),
			pctCell(loss),
			fmt.Sprintf("%d", steals),
		)
	}
	t.Note("%d slots per point, work-stealing admission, frame conservation checked end to end", slots)
	t.Note("latency is virtual time (telemetry StageTotal) across all hops; steals are 0 in deterministic inline mode")
	return t
}

package experiments

import (
	"fmt"
	"time"

	"ranbooster/internal/air"
	"ranbooster/internal/core"
	"ranbooster/internal/du"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/telemetry"
	"ranbooster/internal/testbed"
)

func init() {
	register("table2", Table2)
	register("fig10a", Fig10a)
	register("fig10b", Fig10b)
	register("fig10c", Fig10c)
}

// Table2 regenerates Table 2: dMIMO downlink throughput and rank versus
// the single co-located RU ground truth, for 2 and 4 layers.
func Table2() *Table {
	t := &Table{
		ID:      "table2",
		Title:   "dMIMO vs single-RU MIMO ground truth (100 MHz, UE at ~5 m)",
		Columns: []string{"configuration", "DL Mbps", "paper Mbps", "rank", "paper rank"},
	}
	type cfg struct {
		label   string
		layers  int
		dmimo   bool
		perRU   int
		refMbps float64
		refRank int
	}
	cases := []cfg{
		{"2x2 MIMO: single RU, 2 antennas", 2, false, 2, 653.4, 2},
		{"2x2 MIMO: two RUs, 1 antenna each (RANBooster)", 2, true, 1, 654.1, 2},
		{"4x4 MIMO: single RU, 4 antennas", 4, false, 4, 898.2, 4},
		{"4x4 MIMO: two RUs, 2 antennas each (RANBooster)", 4, true, 2, 896.9, 4},
	}
	for _, c := range cases {
		tb := testbed.New(100)
		cell := testbed.CellConfig("cell", 1, testbed.Carrier100(), phy.StackSRSRAN, c.layers)
		var d duHandle
		if c.dmimo {
			positions := []radio.Point{
				radio.RUAt(0, 20, radio.FloorWidth/2),
				radio.RUAt(0, 25, radio.FloorWidth/2),
			}
			dep, err := tb.DMIMOCell("dm", cell, positions, testbed.DMIMOOpts{Mode: core.ModeDPDK, PortsPerRU: c.perRU})
			if err != nil {
				panic(err)
			}
			d = duHandle{dep.DU}
		} else {
			dd, _ := tb.DirectCell("base", cell, radio.RUAt(0, 20, radio.FloorWidth/2), c.layers, false)
			d = duHandle{dd}
		}
		ue := tb.AddUE(0, 22.5, radio.FloorWidth/2+3)
		ue.OfferedDLbps = 1200e6
		tb.Settle()
		tb.Measure(300 * time.Millisecond)
		dl := ue.ThroughputDLbps(tb.Sched.Now())
		t.AddRow(c.label, mbpsCell(dl), refCell(c.refMbps),
			fmt.Sprintf("%d", d.RankIndicator(ue)), fmt.Sprintf("%d", c.refRank))
	}
	t.Note("uplink (SISO) in all cases ~65 Mbps vs paper's expected 70 Mbps")
	return t
}

type duHandle struct{ *du.DU }

// Fig10a regenerates Fig. 10a: single-cell/1-RU baseline versus the
// five-floor DAS, downlink and uplink, simultaneous and per-floor iperf.
func Fig10a() *Table {
	t := &Table{
		ID:      "fig10a",
		Title:   "DAS coverage expansion: throughput vs 1-RU baseline (100 MHz 4x4)",
		Columns: []string{"scenario", "DL Mbps", "UL Mbps", "attached UEs"},
	}

	// Baseline: one RU, two close UEs.
	{
		tb := testbed.New(101)
		cell := testbed.CellConfig("cell", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		tb.DirectCell("base", cell, testbed.RUPosition(0, 1), 4, false)
		a := tb.AddUE(0, testbed.RUXPositions[1]-4, radio.FloorWidth/2)
		b := tb.AddUE(0, testbed.RUXPositions[1]+4, radio.FloorWidth/2)
		// Upper-floor UEs cannot attach to the single ground-floor cell.
		up := tb.AddUE(2, testbed.RUXPositions[1], radio.FloorWidth/2)
		a.OfferedDLbps, a.OfferedULbps = 600e6, 60e6
		b.OfferedDLbps, b.OfferedULbps = 600e6, 60e6
		tb.Settle()
		tb.Measure(300 * time.Millisecond)
		now := tb.Sched.Now()
		attached := 0
		for _, u := range []*air.UE{a, b, up} {
			if u.Attached() {
				attached++
			}
		}
		t.AddRow("single cell, 1 RU (2 UEs ground floor)",
			mbpsCell(a.ThroughputDLbps(now)+b.ThroughputDLbps(now)),
			mbpsCell(a.ThroughputULbps(now)+b.ThroughputULbps(now)),
			fmt.Sprintf("%d/3", attached))
	}

	// DAS: one RU per floor, one UE per floor.
	das := func(label string, simultaneous bool) {
		tb := testbed.New(102)
		cell := testbed.CellConfig("cell", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		var positions []radio.Point
		for f := 0; f < testbed.Floors; f++ {
			positions = append(positions, testbed.RUPosition(f, 1))
		}
		if _, err := tb.DASCell("das", cell, positions, testbed.DASOpts{Mode: core.ModeDPDK, Cores: 2}); err != nil {
			panic(err)
		}
		var ues []*air.UE
		for f := 0; f < testbed.Floors; f++ {
			ues = append(ues, tb.AddUE(f, testbed.RUXPositions[1]+4, radio.FloorWidth/2))
		}
		tb.Settle()
		attached := 0
		for _, u := range ues {
			if u.Attached() {
				attached++
			}
		}
		if simultaneous {
			for _, u := range ues {
				u.OfferedDLbps, u.OfferedULbps = 300e6, 30e6
			}
		} else {
			ues[2].OfferedDLbps, ues[2].OfferedULbps = 1000e6, 100e6
		}
		tb.Measure(300 * time.Millisecond)
		now := tb.Sched.Now()
		var dl, ul float64
		for _, u := range ues {
			dl += u.ThroughputDLbps(now)
			ul += u.ThroughputULbps(now)
		}
		t.AddRow(label, mbpsCell(dl), mbpsCell(ul), fmt.Sprintf("%d/5", attached))
	}
	das("RANBooster DAS, 5 RUs/floors, all UEs transmitting", true)
	das("RANBooster DAS, 5 RUs/floors, one UE transmitting", false)

	t.Note("paper: all three bars equal (~same DL and UL); upper-floor UEs attach only with the DAS")
	return t
}

// Fig10b regenerates Fig. 10b: 40 MHz cells on a dedicated RU versus on a
// shared 100 MHz RU.
func Fig10b() *Table {
	t := &Table{
		ID:      "fig10b",
		Title:   "RU sharing: 40 MHz cells, dedicated RU vs shared 100 MHz RU",
		Columns: []string{"scenario", "DL Mbps", "UL Mbps", "paper DL", "paper UL"},
	}
	// Dedicated baseline.
	{
		tb := testbed.New(103)
		cell := testbed.CellConfig("ded", 1, phy.NewCarrier(40, 3_460_000_000), phy.StackSRSRAN, 4)
		tb.DirectCell("base", cell, testbed.RUPosition(0, 0), 4, false)
		u := tb.AddUE(0, testbed.RUXPositions[0]+4, radio.FloorWidth/2)
		u.OfferedDLbps, u.OfferedULbps = 500e6, 50e6
		tb.Settle()
		tb.Measure(300 * time.Millisecond)
		now := tb.Sched.Now()
		t.AddRow("dedicated 40 MHz RU", mbpsCell(u.ThroughputDLbps(now)), mbpsCell(u.ThroughputULbps(now)), "330.0", "25.0")
	}
	// Shared.
	{
		tb := testbed.New(104)
		ruCarrier := testbed.Carrier100()
		duPRBs := phy.PRBsFor(40)
		cells := []air.CellConfig{
			testbed.CellConfig("mnoA", 11, phy.Carrier{BandwidthMHz: 40, CenterHz: phy.AlignedDUCenterHz(ruCarrier, 0, duPRBs), NumPRB: duPRBs}, phy.StackSRSRAN, 4),
			testbed.CellConfig("mnoB", 12, phy.Carrier{BandwidthMHz: 40, CenterHz: phy.AlignedDUCenterHz(ruCarrier, ruCarrier.NumPRB-duPRBs, duPRBs), NumPRB: duPRBs}, phy.StackSRSRAN, 4),
		}
		if _, err := tb.SharedRU("sh", ruCarrier, testbed.RUPosition(0, 0), cells, core.ModeDPDK); err != nil {
			panic(err)
		}
		ua := tb.AddUE(0, testbed.RUXPositions[0]+4, radio.FloorWidth/2)
		ua.AllowedCell = "mnoA"
		ub := tb.AddUE(0, testbed.RUXPositions[0]-4, radio.FloorWidth/2)
		ub.AllowedCell = "mnoB"
		for _, u := range []*air.UE{ua, ub} {
			u.OfferedDLbps, u.OfferedULbps = 500e6, 50e6
		}
		tb.Settle()
		tb.Measure(300 * time.Millisecond)
		now := tb.Sched.Now()
		t.AddRow("shared 100 MHz RU, cell A", mbpsCell(ua.ThroughputDLbps(now)), mbpsCell(ua.ThroughputULbps(now)), "330.0", "25.0")
		t.AddRow("shared 100 MHz RU, cell B", mbpsCell(ub.ThroughputDLbps(now)), mbpsCell(ub.ThroughputULbps(now)), "330.0", "25.0")
	}
	t.Note("paper: shared-RU throughput identical to the dedicated baseline")
	return t
}

// Fig10c regenerates Fig. 10c: Algorithm 1's PRB utilization estimate
// versus the MAC-log ground truth across offered loads.
func Fig10c() *Table {
	t := &Table{
		ID:      "fig10c",
		Title:   "Real-time PRB monitoring: estimate vs MAC-log ground truth (100 MHz)",
		Columns: []string{"offered Mbps", "DL truth", "DL estimate", "UL truth", "UL estimate"},
	}
	for _, load := range []float64{0, 100, 200, 300, 400, 500, 600, 700} {
		tb := testbed.New(105)
		cell := testbed.CellConfig("mon", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		dep, err := tb.MonitoredCell("mon", cell, testbed.RUPosition(0, 0), testbed.MonitorOpts{Mode: core.ModeDPDK})
		if err != nil {
			panic(err)
		}
		rec := telemetry.NewRecorder()
		rec.Attach(dep.Engine.Bus(), "")
		u := tb.AddUE(0, testbed.RUXPositions[0]+4, radio.FloorWidth/2)
		u.OfferedDLbps = load * 1e6
		u.OfferedULbps = load * 1e6 / 10
		tb.Settle()
		before := dep.DU.Stats()
		tb.Measure(400 * time.Millisecond)
		after := dep.DU.Stats()
		truthDL := ratio(after.DLPRBSymSched-before.DLPRBSymSched, after.DLPRBSymTotal-before.DLPRBSymTotal)
		truthUL := ratio(after.ULPRBSymSched-before.ULPRBSymSched, after.ULPRBSymTotal-before.ULPRBSymTotal)
		estDL := lastSample(rec, "prb.utilization.dl")
		estUL := lastSample(rec, "prb.utilization.ul")
		t.AddRow(fmt.Sprintf("%.0f", load), pctCell(truthDL), pctCell(estDL), pctCell(truthUL), pctCell(estUL))
	}
	t.Note("paper: estimates closely match the ground truth at every load level")
	return t
}

func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func lastSample(rec *telemetry.Recorder, name string) float64 {
	s := rec.Series(name)
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1].Value
}

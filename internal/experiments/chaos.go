package experiments

import (
	"fmt"
	"runtime"
	"time"

	"ranbooster/internal/air"
	"ranbooster/internal/apps/resilience"
	"ranbooster/internal/bfp"
	"ranbooster/internal/core"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/fault"
	"ranbooster/internal/fh"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/sim"
	"ranbooster/internal/telemetry"
	"ranbooster/internal/testbed"
)

func init() {
	register("chaos", Chaos)
}

// Chaos drives the middleboxes through scripted fault scenarios on the
// fault-injection fabric (internal/fault) and reports how each degrades
// and recovers: DU silence → resilience failover latency, 1–10% fronthaul
// loss → PRB-monitor accuracy, and a reorder burst on the shared-RU
// uplink → PRACH occasion delivery. Every scenario runs from a fixed seed
// and replays bit-identically.
func Chaos() *Table {
	t := &Table{
		ID:      "chaos",
		Title:   "Fault injection: graceful degradation and recovery",
		Columns: []string{"scenario", "fault script", "recovery / accuracy", "detail"},
	}
	chaosFailover(t)
	chaosLossAccuracy(t)
	chaosReorderPRACH(t)
	chaosPanicIsolation(t)
	chaosStallDetection(t)
	chaosShedAIMD(t)
	return t
}

// chaosFailover: the fabric silences the active DU's link (the DU itself
// keeps running — the fault is in the transport); the resilience
// middlebox must fail over to the standby within FailoverAfter plus one
// uplink inter-arrival. The RU's uplink is solicited by the DU's C-plane,
// so a dead DU silences the RU too; the deployment therefore aims a
// heartbeat probe at the middlebox at the TDD uplink cadence (DDDSU
// spaces uplink slots one TDD period = 2.5 ms apart), which bounds how
// long the detector can go without a chance to check liveness.
func chaosFailover(t *Table) {
	for _, failAfter := range []time.Duration{2 * time.Millisecond, 3 * time.Millisecond, 5 * time.Millisecond} {
		tb := testbed.New(400)
		mbMAC := tb.NewMAC()
		cellA := testbed.CellConfig("chaos-a", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		cellB := testbed.CellConfig("chaos-b", 2, testbed.Carrier100(), phy.StackSRSRAN, 4)
		_, ruMAC := tb.AddRU("chaos-ru", testbed.RUPosition(0, 0), testbed.RUOpts{Carrier: cellA.Carrier, Ports: 4, Peer: mbMAC})
		_, macA := tb.AddDU("chaos-duA", testbed.DUOpts{Cell: cellA, Peer: mbMAC})
		_, macB := tb.AddDU("chaos-duB", testbed.DUOpts{Cell: cellB, Peer: mbMAC})

		app := resilience.New(resilience.Config{
			Name: "chaos-res", MAC: mbMAC, DUs: []eth.MAC{macA, macB}, RU: ruMAC,
			FailoverAfter: failAfter,
		})
		eng, err := core.NewEngine(tb.Sched, core.Config{
			Name: app.Name(), Mode: core.ModeDPDK, App: app, CarrierPRBs: cellA.Carrier.NumPRB,
		})
		if err != nil {
			panic(err)
		}
		tb.AddEngine(eng, mbMAC)
		rec := telemetry.NewRecorder()
		rec.Attach(eng.Bus(), resilience.KPIFailover)

		inj := fault.NewInjector(tb.Sched, tb.RNG.Fork(), fault.Profile{})
		inj.Attach(tb.Switch.PortByName("chaos-duA"))

		// Heartbeat probe: a plain C-plane frame from an unknown MAC at the
		// uplink inter-arrival; the middlebox drops it, but each arrival
		// ticks the liveness detector even when the fronthaul goes quiet.
		probe := tb.Switch.AddPort("chaos-probe", nil)
		pb := fh.NewBuilder(tb.NewMAC(), mbMAC, -1)
		stopProbe := tb.Sched.Ticker(phy.SlotDuration*5, func() {
			probe.Send(pb.CPlane(ecpri.PcID{}, &oran.CPlaneMsg{
				Timing:      oran.Timing{Direction: oran.Downlink, FrameID: 1},
				SectionType: oran.SectionType1,
				Comp:        testbed.BFP9(),
				Sections:    []oran.CSection{{NumPRB: 1, ReMask: 0xfff, NumSymbol: 1}},
			}))
		})

		ue := tb.AddUE(0, testbed.RUXPositions[0]+4, radio.FloorWidth/2)
		ue.OfferedDLbps = 300e6
		tb.Settle()
		tb.Run(200 * time.Millisecond) // loaded downlink arms the detector

		// Scripted fault: the link goes dark and stays dark.
		tFault := tb.Sched.Now()
		inj.SetDown(true)
		tb.Run(100 * time.Millisecond)
		stopProbe()

		bound := failAfter + phy.SlotDuration*5 // + one DDDSU uplink inter-arrival
		script := fmt.Sprintf("DU link down @ %v", time.Duration(tFault))
		if ev, ok := rec.Last(resilience.KPIFailover); ok {
			lat := ev.At.Sub(tFault)
			t.AddRow(
				fmt.Sprintf("DU-silence failover (threshold %v)", failAfter),
				script,
				fmt.Sprintf("failover in %v", lat),
				fmt.Sprintf("bound %v; silenced frames %d", bound, inj.Stats().LinkDowns))
		} else {
			t.AddRow(fmt.Sprintf("DU-silence failover (threshold %v)", failAfter), script,
				"NO FAILOVER", "detector never tripped")
		}
	}
}

// chaosLossAccuracy: i.i.d. loss on the monitored downlink; Algorithm 1's
// PRB estimate is compared against the DU's MAC-log ground truth, and the
// engine's gap detection accounts for every missing frame.
func chaosLossAccuracy(t *Table) {
	for _, loss := range []float64{0.01, 0.05, 0.10} {
		tb := testbed.New(401)
		cell := testbed.CellConfig("mon", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		dep, err := tb.MonitoredCell("mon", cell, testbed.RUPosition(0, 0), testbed.MonitorOpts{Mode: core.ModeDPDK})
		if err != nil {
			panic(err)
		}
		rec := telemetry.NewRecorder()
		rec.Attach(dep.Engine.Bus(), "")
		u := tb.AddUE(0, testbed.RUXPositions[0]+4, radio.FloorWidth/2)
		u.OfferedDLbps = 400e6
		u.OfferedULbps = 40e6
		tb.Settle()

		// Fault on only after settling: attachment happens on a clean
		// fabric, then the measured window sees the loss.
		inj := fault.NewInjector(tb.Sched, tb.RNG.Fork(), fault.Profile{Drop: loss})
		inj.Attach(tb.Switch.PortByName("mon-du"))

		before := dep.DU.Stats()
		tb.Measure(400 * time.Millisecond)
		after := dep.DU.Stats()
		truthDL := ratio(after.DLPRBSymSched-before.DLPRBSymSched, after.DLPRBSymTotal-before.DLPRBSymTotal)
		estDL := lastSample(rec, "prb.utilization.dl")
		st := dep.Engine.Snapshot()
		t.AddRow(
			fmt.Sprintf("PRB monitor @ %.0f%% DL loss", loss*100),
			fmt.Sprintf("i.i.d. drop %.2f on DU link", loss),
			fmt.Sprintf("DL truth %s, estimate %s", pctCell(truthDL), pctCell(estDL)),
			fmt.Sprintf("seq gaps %d, dropped %d, health %v", st.SeqGaps, inj.Stats().Dropped, st.Health))
	}
}

// chaosReorderPRACH: a reorder burst on the shared RU's uplink while two
// tenants' UEs attach — PRACH occasions must still reach the right DU
// (Algorithm 3's demux is keyed by section id, not arrival order).
func chaosReorderPRACH(t *Table) {
	tb := testbed.New(402)
	ruCarrier := testbed.Carrier100()
	duPRBs := phy.PRBsFor(40)
	cells := []air.CellConfig{
		testbed.CellConfig("mnoA", 11, phy.Carrier{BandwidthMHz: 40, CenterHz: phy.AlignedDUCenterHz(ruCarrier, 0, duPRBs), NumPRB: duPRBs}, phy.StackSRSRAN, 4),
		testbed.CellConfig("mnoB", 12, phy.Carrier{BandwidthMHz: 40, CenterHz: phy.AlignedDUCenterHz(ruCarrier, ruCarrier.NumPRB-duPRBs, duPRBs), NumPRB: duPRBs}, phy.StackSRSRAN, 4),
	}
	dep, err := tb.SharedRU("chaos", ruCarrier, testbed.RUPosition(0, 0), cells, core.ModeDPDK)
	if err != nil {
		panic(err)
	}
	// Reorder burst on the RU's uplink from the start: attachment itself
	// (PRACH → response) must survive the burst.
	inj := fault.NewInjector(tb.Sched, tb.RNG.Fork(), fault.Profile{
		Reorder: 0.3, ReorderDelay: 100 * time.Microsecond,
	})
	inj.Attach(tb.Switch.PortByName("chaos-ru"))

	ua := tb.AddUE(0, testbed.RUXPositions[0]+4, radio.FloorWidth/2)
	ua.AllowedCell = "mnoA"
	ub := tb.AddUE(0, testbed.RUXPositions[0]-4, radio.FloorWidth/2)
	ub.AllowedCell = "mnoB"
	tb.Settle()
	tb.Run(200 * time.Millisecond)

	attached := 0
	for _, u := range []*air.UE{ua, ub} {
		if u.Attached() {
			attached++
		}
	}
	var prach uint64
	for _, d := range dep.DUs {
		prach += d.Stats().PRACHDetected
	}
	st := dep.Engine.Snapshot()
	t.AddRow(
		"RU-sharing PRACH under reorder burst",
		"30% uplink reorder, +100µs",
		fmt.Sprintf("%d/2 UEs attached, %d PRACH detected", attached, prach),
		fmt.Sprintf("prach muxed %d, reordered frames %d (engine saw %d late)",
			dep.App.PRACHMuxed.Load(), inj.Stats().Reordered, st.Reordered))
	t.Note("all scenarios replay bit-identically from the fixed seeds (400..402)")
}

// supForward is the identity App for the supervision scenarios: every
// frame is forwarded untouched, so any frame that fails to reach the
// output was lost by the engine, not the workload.
type supForward struct{}

func (supForward) Name() string { return "sup-fwd" }
func (supForward) Handle(ctx *core.Context, pkt *fh.Packet) error {
	ctx.Forward(pkt)
	return nil
}

// supUplane builds one downlink U-plane frame with a payload derived
// from fill.
func supUplane(b *fh.Builder, fill int16) []byte {
	g := iq.NewGrid(4)
	for i := range g {
		for j := range g[i] {
			g[i][j] = iq.Sample{I: fill, Q: -fill}
		}
	}
	payload, err := bfp.CompressGrid(nil, g, testbed.BFP9())
	if err != nil {
		panic(err)
	}
	return b.UPlane(ecpri.PcID{}, &oran.UPlaneMsg{
		Timing:   oran.Timing{Direction: oran.Downlink, FrameID: uint8(fill), SymbolID: uint8(fill) % 14},
		Sections: []oran.USection{{NumPRB: 4, Comp: testbed.BFP9(), Payload: payload}},
	})
}

// supPRACH builds one uplink PRACH-occasion frame (FilterIndex 1).
func supPRACH(b *fh.Builder, fill int16) []byte {
	g := iq.NewGrid(4)
	for i := range g {
		for j := range g[i] {
			g[i][j] = iq.Sample{I: fill, Q: fill}
		}
	}
	payload, err := bfp.CompressGrid(nil, g, testbed.BFP9())
	if err != nil {
		panic(err)
	}
	return b.UPlane(ecpri.PcID{}, &oran.UPlaneMsg{
		Timing:   oran.Timing{Direction: oran.Uplink, FilterIndex: 1, FrameID: uint8(fill)},
		Sections: []oran.USection{{NumPRB: 4, Comp: testbed.BFP9(), Payload: payload}},
	})
}

// supCPlane builds one downlink C-plane frame.
func supCPlane(b *fh.Builder, fill int16) []byte {
	return b.CPlane(ecpri.PcID{}, &oran.CPlaneMsg{
		Timing:      oran.Timing{Direction: oran.Downlink, FrameID: uint8(fill)},
		SectionType: oran.SectionType1,
		Comp:        testbed.BFP9(),
		Sections:    []oran.CSection{{NumPRB: 106, ReMask: 0xfff, NumSymbol: 14}},
	})
}

// chaosPanicIsolation: the App panics on a deterministic schedule while
// the engine runs with panic isolation on. The claim under test is
// fail-to-wire: no matter the panic rate, every offered frame reaches the
// output — forwarded by the App or quarantined to raw passthrough — and
// the circuit breaker cycles instead of the process crashing.
func chaosPanicIsolation(t *Table) {
	for _, every := range []int{100, 1000} {
		const offered = 5000
		s := sim.NewScheduler()
		app, stats := fault.PanicEvery(supForward{}, every, 7)
		eng, err := core.NewEngine(s, core.Config{
			Name: "sup-panic", Mode: core.ModeDPDK, App: app, CarrierPRBs: 106,
			Supervise: core.SupervisePolicy{PanicBudget: 3},
		})
		if err != nil {
			panic(err)
		}
		tx := 0
		eng.SetOutput(func([]byte) { tx++ })
		b := fh.NewBuilder(eth.MAC{2, 0, 0, 0, 0, 1}, eth.MAC{2, 0, 0, 0, 0, 2}, -1)
		for i := 0; i < offered; i++ {
			eng.Ingress(supUplane(b, int16(i)))
			// Advance virtual time at the frame cadence so the breaker
			// cooldown can elapse on the datapath clock.
			s.RunFor(10 * time.Microsecond)
		}
		s.Run()
		st := eng.Snapshot()
		t.AddRow(
			fmt.Sprintf("panic isolation @ 1 panic / %d calls", every),
			fmt.Sprintf("app panics every %dth call, budget 3", every),
			fmt.Sprintf("%d of %d frames lost", offered-tx, offered),
			fmt.Sprintf("panics %d, quarantined %d, breaker %v at end", st.AppPanics, st.Quarantined, st.Breaker))
		_ = stats
	}
}

// chaosStallDetection: the App wedges forever on one call; the shard
// watchdog must declare the stall and restart the shard within StallAfter
// plus the poll granularity. Detection latency is measured from the first
// supervision poll that observes the wedge to the poll that restarts.
func chaosStallDetection(t *Table) {
	for _, stallAfter := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond} {
		poll := stallAfter / 4
		s := sim.NewScheduler()
		app, stall := fault.StallFor(supForward{}, 40)
		eng, err := core.NewEngine(s, core.Config{
			Name: "sup-stall", Mode: core.ModeDPDK, Cores: 1, App: app,
			CarrierPRBs: 106, RingSize: 256,
			Supervise: core.SupervisePolicy{StallAfter: stallAfter},
		})
		if err != nil {
			panic(err)
		}
		if err := eng.Start(); err != nil {
			panic(err)
		}
		b := fh.NewBuilder(eth.MAC{2, 0, 0, 0, 0, 1}, eth.MAC{2, 0, 0, 0, 0, 2}, -1)
		var tWedge, tRestart sim.Time
		step := func() {
			// Yield so the single-P runtime schedules the worker between
			// virtual-time polls.
			for i := 0; i < 8; i++ {
				runtime.Gosched()
			}
			s.RunFor(poll)
			eng.Supervise()
			if tWedge == 0 && stall.Stalled() {
				tWedge = s.Now()
			}
			if tRestart == 0 && eng.Snapshot().ShardRestarts > 0 {
				tRestart = s.Now()
			}
		}
		for i := 0; i < 200; i++ {
			f := supUplane(b, int16(i))
			for !eng.TryIngress(f) {
				step()
			}
			step()
		}
		for i := 0; i < 1000 && tRestart == 0; i++ {
			step()
		}
		stall.Release()
		eng.Stop()
		bound := stallAfter + 2*poll
		if tRestart == 0 {
			t.AddRow(fmt.Sprintf("stall watchdog (StallAfter %v)", stallAfter),
				"app wedges on call 40", "NO RESTART", "watchdog never tripped")
			continue
		}
		t.AddRow(
			fmt.Sprintf("stall watchdog (StallAfter %v)", stallAfter),
			fmt.Sprintf("app wedges on call 40, poll %v", poll),
			fmt.Sprintf("shard restarted %v after the wedge was observable", tRestart.Sub(tWedge)),
			fmt.Sprintf("bound StallAfter + 2 polls = %v; restarts %d", bound, eng.Snapshot().ShardRestarts))
	}
}

// chaosShedAIMD: offered load against a wedged consumer, AIMD shedding
// versus the static C-plane headroom. The worker is deterministically
// wedged on its first frame, then the ring absorbs the offered mix (6/8
// U-plane data, 1/8 PRACH, 1/8 C-plane) with no consumer: the AIMD
// controller should shed data first, touch PRACH only past sustained
// overload, and never shed C-plane.
func chaosShedAIMD(t *Table) {
	policies := []struct {
		name string
		sup  core.SupervisePolicy
	}{
		{"AIMD low 0.25 / high 0.75", core.SupervisePolicy{ShedHighWater: 0.75, ShedLowWater: 0.25}},
		{"static headroom (1/8 ring)", core.SupervisePolicy{}},
	}
	for _, pol := range policies {
		for _, offered := range []int{96, 192, 288} {
			const ring = 256
			s := sim.NewScheduler()
			app, stall := fault.StallFor(supForward{}, 1)
			eng, err := core.NewEngine(s, core.Config{
				Name: "sup-shed", Mode: core.ModeDPDK, Cores: 1, App: app,
				CarrierPRBs: 106, RingSize: ring, Supervise: pol.sup,
			})
			if err != nil {
				panic(err)
			}
			if err := eng.Start(); err != nil {
				panic(err)
			}
			b := fh.NewBuilder(eth.MAC{2, 0, 0, 0, 0, 1}, eth.MAC{2, 0, 0, 0, 0, 2}, -1)
			// Wedge the worker on a sacrificial frame so ring occupancy
			// during the offered burst is deterministic.
			eng.Ingress(supUplane(b, -1))
			for i := 0; i < 1<<22 && !stall.Stalled(); i++ {
				runtime.Gosched()
			}
			for i := 0; i < offered; i++ {
				switch i % 8 {
				case 3:
					eng.Ingress(supPRACH(b, int16(i)))
				case 7:
					eng.Ingress(supCPlane(b, int16(i)))
				default:
					eng.Ingress(supUplane(b, int16(i)))
				}
			}
			st := eng.Snapshot()
			stall.Release()
			eng.Stop()
			t.AddRow(
				fmt.Sprintf("overload shedding, %s", pol.name),
				fmt.Sprintf("%d frames at a dead consumer (ring %d)", offered, ring),
				fmt.Sprintf("shed %d data + %d PRACH, dropped %d", st.ShedUPlane, st.ShedPRACH, st.RingDrops),
				fmt.Sprintf("occupancy offered %.2f of ring; C-plane never shed", float64(offered)/ring))
		}
	}
	t.Note("supervision scenarios (panic, stall, shed) are deterministic by construction: fixed injector schedules, virtual-time polls")
}

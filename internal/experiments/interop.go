package experiments

import (
	"fmt"
	"time"

	"ranbooster/internal/air"

	"ranbooster/internal/core"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/testbed"
)

func init() {
	register("interop", Interop)
}

// Interop regenerates the §6.2 interoperability claim: the same DAS
// middlebox binary, byte-for-byte, fronts all three vendor stacks with
// only cell-configuration changes (TDD pattern); results differ only in
// throughput, per each stack's implementation quality.
func Interop() *Table {
	t := &Table{
		ID:      "interop",
		Title:   "One DAS middlebox across three RAN stacks (100 MHz, two RUs)",
		Columns: []string{"stack", "TDD", "DL Mbps", "UL Mbps", "UEs attached", "merges"},
	}
	for _, stack := range phy.Stacks {
		tb := testbed.New(180)
		cell := testbed.CellConfig("io-"+stack.Name, 1, testbed.Carrier100(), stack, 4)
		positions := []radio.Point{testbed.RUPosition(0, 1), testbed.RUPosition(1, 1)}
		dep, err := tb.DASCell("io", cell, positions, testbed.DASOpts{Mode: core.ModeDPDK})
		if err != nil {
			panic(err)
		}
		u0 := tb.AddUE(0, testbed.RUXPositions[1]+4, radio.FloorWidth/2)
		u1 := tb.AddUE(1, testbed.RUXPositions[1]+4, radio.FloorWidth/2)
		for _, u := range []*air.UE{u0, u1} {
			u.OfferedDLbps = 600e6
			u.OfferedULbps = 60e6
		}
		tb.Settle()
		attached := 0
		for _, u := range tb.Air.UEs() {
			if u.Attached() {
				attached++
			}
		}
		tb.Measure(300 * time.Millisecond)
		now := tb.Sched.Now()
		dl := u0.ThroughputDLbps(now) + u1.ThroughputDLbps(now)
		ul := u0.ThroughputULbps(now) + u1.ThroughputULbps(now)
		t.AddRow(stack.Name, stack.TDDPattern, mbpsCell(dl), mbpsCell(ul),
			fmt.Sprintf("%d/2", attached), fmt.Sprintf("%d", dep.App.Merges.Load()))
	}
	t.Note("no middlebox source change between rows; throughput varies with vendor efficiency and TDD split (§6.2)")
	return t
}

package experiments

import (
	"ranbooster/internal/apps/rushare"
	"ranbooster/internal/core"
	"ranbooster/internal/eth"
	"ranbooster/internal/phy"
	"ranbooster/internal/testbed"
)

// rushareInfo is a tenant descriptor used by the chained builders.
type rushareInfo struct {
	mac     eth.MAC
	carrier phy.Carrier
	port    uint8
}

// buildRushareEngine builds an RU-sharing middlebox engine whose "RU" may
// itself be another middlebox (chaining, Fig. 8).
func buildRushareEngine(tb *testbed.TB, name string, mac, ruSide eth.MAC, ruCarrier phy.Carrier, tenants []rushareInfo) *core.Engine {
	var infos []rushare.DUInfo
	for _, t := range tenants {
		infos = append(infos, rushare.DUInfo{MAC: t.mac, Carrier: t.carrier, PortID: t.port})
	}
	app, err := rushare.New(rushare.Config{
		Name: name, MAC: mac, RU: ruSide,
		RUCarrier: ruCarrier, Comp: testbed.BFP9(), DUs: infos,
	})
	if err != nil {
		panic(err)
	}
	eng, err := core.NewEngine(tb.Sched, core.Config{
		Name: name, Mode: core.ModeDPDK, App: app, CarrierPRBs: ruCarrier.NumPRB,
	})
	if err != nil {
		panic(err)
	}
	return eng
}

package experiments

import (
	"fmt"
	"time"

	"ranbooster/internal/air"
	"ranbooster/internal/core"
	"ranbooster/internal/fault"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/telemetry"
	"ranbooster/internal/testbed"
)

func init() {
	register("latency", Latency)
}

// latencySeeds fixes one seed per application so every breakdown replays
// bit-identically (the clean and faulted variants share the seed: the
// fault injector draws from a forked stream).
var latencySeeds = map[string]uint64{"das": 500, "dmimo": 501, "rushare": 502, "prbmon": 503}

// latencyLoss is the chaos profile of the faulted variant: the 5% i.i.d.
// loss point of the PR-2 chaos experiment, on every middlebox-facing link.
const latencyLoss = 0.05

// Latency regenerates the per-stage / per-action latency breakdown from
// the frame-span trace collector: each application runs a deterministic
// seeded window, clean and under the 5% loss chaos profile, and reports
// p50/p99/p99.9 of every datapath stage (queue, decode, kernel, app,
// total) and of each processing action A1-A4. The numbers come from the
// same histograms a /metrics scrape exports.
func Latency() *Table {
	t := &Table{
		ID:      "latency",
		Title:   "Frame-latency breakdown by datapath stage and action (trace collector)",
		Columns: []string{"scenario", "stage/action", "n", "p50", "p99", "p99.9"},
	}
	for _, app := range []string{"das", "dmimo", "rushare", "prbmon"} {
		for _, lossy := range []bool{false, true} {
			runLatencyScenario(t, app, lossy)
		}
	}
	t.Note("stages: queue = ring+core contention, decode = header parse, kernel = XDP rules, app = userspace handler")
	t.Note("faulted variant injects %.0f%% i.i.d. loss on the middlebox links after settling (seeds %d..%d)",
		latencyLoss*100, latencySeeds["das"], latencySeeds["prbmon"])
	return t
}

// runLatencyScenario deploys one application with tracing, drives a
// measured window, and appends its stage/action percentile rows.
func runLatencyScenario(t *Table, app string, lossy bool) {
	tb := testbed.New(latencySeeds[app])
	engine, ues := latencyDeployment(tb, app)
	for _, u := range ues {
		u.OfferedDLbps = 400e6
		u.OfferedULbps = 40e6
	}
	tb.Settle()
	// Tracing goes live only for the measured window, so settling traffic
	// does not dilute the histograms; faults likewise arrive on a fabric
	// that finished attachment cleanly.
	if err := engine.EnableTracing(0); err != nil {
		panic(err)
	}
	if lossy {
		for _, p := range tb.Switch.Ports() {
			fault.NewInjector(tb.Sched, tb.RNG.Fork(), fault.Profile{Drop: latencyLoss}).Attach(p)
		}
	}
	engine.ResetMeasurement()
	tb.Measure(200 * time.Millisecond)

	st := engine.Snapshot()
	scenario := app
	if lossy {
		scenario += fmt.Sprintf(" @ %.0f%% loss", latencyLoss*100)
	}
	if st.Trace == nil || st.Trace.Spans == 0 {
		t.AddRow(scenario, "NO SPANS", "0", "-", "-", "-")
		return
	}
	row := func(kind string, h telemetry.HistSnapshot) {
		if h.Count == 0 {
			return
		}
		p50, p99, p999 := telemetry.Quantiles(h)
		t.AddRow(scenario, kind, fmt.Sprintf("%d", h.Count),
			p50.String(), p99.String(), p999.String())
	}
	for st2 := telemetry.Stage(0); st2 < telemetry.NumStages; st2++ {
		row(st2.String(), st.Trace.Stage[st2])
	}
	for a := telemetry.Action(0); a < telemetry.NumActions; a++ {
		row(a.String(), st.Trace.Action[a])
	}
}

// latencyDeployment assembles one of the four paper applications on tb and
// returns its engine and UEs, mirroring the ranboosterd deployments. DAS
// and dMIMO run the DPDK datapath (their userspace pipelines), PRB
// monitoring runs XDP so the kernel stage appears in the breakdown, and
// RU sharing runs DPDK with two tenants.
func latencyDeployment(tb *testbed.TB, app string) (*core.Engine, []*air.UE) {
	var ues []*air.UE
	switch app {
	case "das":
		cell := testbed.CellConfig("cell0", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		var pos []radio.Point
		for f := 0; f < testbed.Floors; f++ {
			pos = append(pos, testbed.RUPosition(f, 1))
		}
		dep, err := tb.DASCell("das", cell, pos, testbed.DASOpts{Mode: core.ModeDPDK, Cores: 2})
		if err != nil {
			panic(err)
		}
		for f := 0; f < testbed.Floors; f++ {
			ues = append(ues, tb.AddUE(f, testbed.RUXPositions[1]+4, radio.FloorWidth/2))
		}
		return dep.Engine, ues
	case "dmimo":
		cell := testbed.CellConfig("cell0", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		pos := []radio.Point{testbed.RUPosition(0, 1), testbed.RUPosition(0, 2)}
		dep, err := tb.DMIMOCell("dmimo", cell, pos, testbed.DMIMOOpts{Mode: core.ModeDPDK, PortsPerRU: 2})
		if err != nil {
			panic(err)
		}
		ues = append(ues, tb.AddUE(0, (testbed.RUXPositions[1]+testbed.RUXPositions[2])/2, radio.FloorWidth/2))
		return dep.Engine, ues
	case "rushare":
		ruCarrier := testbed.Carrier100()
		duPRBs := phy.PRBsFor(40)
		cells := []air.CellConfig{
			testbed.CellConfig("mnoA", 11, phy.Carrier{BandwidthMHz: 40, CenterHz: phy.AlignedDUCenterHz(ruCarrier, 0, duPRBs), NumPRB: duPRBs}, phy.StackSRSRAN, 4),
			testbed.CellConfig("mnoB", 12, phy.Carrier{BandwidthMHz: 40, CenterHz: phy.AlignedDUCenterHz(ruCarrier, ruCarrier.NumPRB-duPRBs, duPRBs), NumPRB: duPRBs}, phy.StackSRSRAN, 4),
		}
		dep, err := tb.SharedRU("share", ruCarrier, testbed.RUPosition(0, 0), cells, core.ModeDPDK)
		if err != nil {
			panic(err)
		}
		a := tb.AddUE(0, testbed.RUXPositions[0]+4, radio.FloorWidth/2)
		a.AllowedCell = "mnoA"
		b := tb.AddUE(0, testbed.RUXPositions[0]-4, radio.FloorWidth/2)
		b.AllowedCell = "mnoB"
		return dep.Engine, []*air.UE{a, b}
	case "prbmon":
		cell := testbed.CellConfig("cell0", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		dep, err := tb.MonitoredCell("mon", cell, testbed.RUPosition(0, 0), testbed.MonitorOpts{Mode: core.ModeXDP})
		if err != nil {
			panic(err)
		}
		ues = append(ues, tb.AddUE(0, testbed.RUXPositions[0]+4, radio.FloorWidth/2))
		return dep.Engine, ues
	}
	panic("unknown latency app " + app)
}

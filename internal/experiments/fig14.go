package experiments

import (
	"fmt"
	"time"

	"ranbooster/internal/air"
	"ranbooster/internal/apps/das"
	"ranbooster/internal/apps/dmimo"
	"ranbooster/internal/core"
	"ranbooster/internal/cpu"
	"ranbooster/internal/eth"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/testbed"
)

func init() {
	register("fig14", Fig14)
}

// Core budget of the Fig. 14 deployments (documented mapping: a 100 MHz
// DU pipeline occupies five cores, each middlebox one).
const (
	coresPerDU = 5
	coresPerMB = 1
)

// Fig14 regenerates Fig. 14: five floors covered either by one dMIMO
// cell per floor (two servers, full power) or by a single cell whose DAS
// is chained into per-floor dMIMO middleboxes (one server, half the
// cores parked at low frequency).
func Fig14() *Table {
	t := &Table{
		ID:      "fig14",
		Title:   "Energy savings: per-floor throughput and server power",
		Columns: []string{"configuration", "avg DL Mbps/floor", "total power W", "paper"},
	}

	// (a) One dMIMO cell per floor.
	{
		tb := testbed.New(140)
		var ues []*air.UE
		for f := 0; f < testbed.Floors; f++ {
			cell := testbed.CellConfig(fmt.Sprintf("floor%d", f), f+1, testbed.Carrier100(), phy.StackSRSRAN, 4)
			positions := floorPositions(f)
			if _, err := tb.DMIMOCell(fmt.Sprintf("f14a-%d", f), cell, positions, testbed.DMIMOOpts{
				Mode: core.ModeDPDK, PortsPerRU: 1, Cheap: true,
			}); err != nil {
				panic(err)
			}
			for i := 0; i < 4; i++ {
				u := tb.AddUE(f, testbed.RUXPositions[i]+2, 8)
				u.AllowedCell = cell.Name
				u.OfferedDLbps = 250e6
				ues = append(ues, u)
			}
		}
		tb.Settle()
		tb.Measure(300 * time.Millisecond)
		now := tb.Sched.Now()
		var dl float64
		for _, u := range ues {
			dl += u.ThroughputDLbps(now)
		}
		perFloor := dl / testbed.Floors

		a, b := cpu.NewServer("srv1"), cpu.NewServer("srv2")
		total := testbed.Floors * (coresPerDU + coresPerMB) // 30 cores
		a.SetOperatingPoint(16, 0)
		b.SetOperatingPoint(total-16, 0)
		t.AddRow("(a) one dMIMO cell per floor, two servers",
			mbpsCell(perFloor), fmt.Sprintf("%.0f", cpu.TotalPowerW(a, b)), "~650 Mbps, ~400 W")
	}

	// (b) Single cell: DAS chained into per-floor dMIMO middleboxes.
	{
		tb := testbed.New(141)
		cell := testbed.CellConfig("building", 1, testbed.Carrier100(), phy.StackSRSRAN, 4)
		dasMAC := tb.NewMAC()

		// Per-floor dMIMO middleboxes, each fronting four cheap RUs.
		var floorMBs []eth.MAC
		for f := 0; f < testbed.Floors; f++ {
			mbMAC := tb.NewMAC()
			var slots []dmimo.RUSlot
			for i := 0; i < 4; i++ {
				_, mac := tb.AddRU(fmt.Sprintf("f14b-%d-%d", f, i), testbed.RUPosition(f, i), testbed.RUOpts{
					Carrier: cell.Carrier, Ports: 1, Cheap: true, Peer: mbMAC,
				})
				slots = append(slots, dmimo.RUSlot{MAC: mac, Ports: 1})
			}
			app := dmimo.New(dmimo.Config{
				Name: fmt.Sprintf("f14b-dmimo%d", f), MAC: mbMAC, DU: dasMAC, RUs: slots,
				SSB: cell.SSB, ReplicateSSB: true, CarrierPRBs: cell.Carrier.NumPRB,
			})
			eng, err := core.NewEngine(tb.Sched, core.Config{
				Name: app.Name(), Mode: core.ModeDPDK, App: app, CarrierPRBs: cell.Carrier.NumPRB,
			})
			if err != nil {
				panic(err)
			}
			tb.AddEngine(eng, mbMAC)
			floorMBs = append(floorMBs, mbMAC)
		}
		d, duMAC := tb.AddDU("f14b-du", testbed.DUOpts{Cell: cell, Peer: dasMAC})
		_ = d
		dasApp := das.New(das.Config{
			Name: "f14b-das", MAC: dasMAC, DU: duMAC, RUs: floorMBs,
			CarrierPRBs: cell.Carrier.NumPRB,
		})
		dasEng, err := core.NewEngine(tb.Sched, core.Config{
			Name: dasApp.Name(), Mode: core.ModeDPDK, Cores: 2, App: dasApp,
			CarrierPRBs: cell.Carrier.NumPRB,
		})
		if err != nil {
			panic(err)
		}
		tb.AddEngine(dasEng, dasMAC)

		var ues []*air.UE
		for f := 0; f < testbed.Floors; f++ {
			for i := 0; i < 4; i++ {
				u := tb.AddUE(f, testbed.RUXPositions[i]+2, 8)
				u.OfferedDLbps = 250e6
				ues = append(ues, u)
			}
		}
		tb.Settle()
		tb.Measure(300 * time.Millisecond)
		now := tb.Sched.Now()
		var dl float64
		for _, u := range ues {
			dl += u.ThroughputDLbps(now)
		}
		perFloor := dl / testbed.Floors

		a, b := cpu.NewServer("srv1"), cpu.NewServer("srv2")
		b.PoweredOn = false
		// One DU + six middleboxes = 11 active cores; 5 parked low.
		a.SetOperatingPoint(coresPerDU+6*coresPerMB, 5)
		t.AddRow("(b) single cell, DAS + per-floor dMIMO chain, one server",
			mbpsCell(perFloor), fmt.Sprintf("%.0f", cpu.TotalPowerW(a, b)), "~150 Mbps, ~180 W")
	}
	t.Note("in (b) a floor can still burst to the full cell rate when other floors are idle")
	return t
}

// floorPositions returns the four standard RU positions of a floor.
func floorPositions(f int) []radio.Point {
	return []radio.Point{
		testbed.RUPosition(f, 0), testbed.RUPosition(f, 1),
		testbed.RUPosition(f, 2), testbed.RUPosition(f, 3),
	}
}

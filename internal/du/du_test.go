package du

import (
	"testing"
	"time"

	"ranbooster/internal/air"
	"ranbooster/internal/bfp"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/iqsynth"
	"ranbooster/internal/oran"
	"ranbooster/internal/phy"
	"ranbooster/internal/radio"
	"ranbooster/internal/sim"
)

var (
	duMAC = eth.MAC{2, 0, 0, 0, 0, 0x60}
	ruMAC = eth.MAC{2, 0, 0, 0, 0, 0x61}
)

func bfp9() bfp.Params { return bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint} }

func cellCfg() air.CellConfig {
	return air.CellConfig{
		Name: "c", PCI: 1, Carrier: phy.NewCarrier(40, 3_460_000_000),
		TDD: phy.MustTDD("DDDSU"), Stack: phy.StackSRSRAN,
		SSB: phy.DefaultSSB(), PRACH: phy.DefaultPRACH(), MaxLayers: 4,
	}
}

func newDU(t *testing.T) (*sim.Scheduler, *air.Air, *DU, *[][]byte) {
	t.Helper()
	s := sim.NewScheduler()
	a := air.New(s, radio.DefaultModel())
	d := New(s, a, Config{Name: "du0", MAC: duMAC, PeerMAC: ruMAC, VLAN: -1, Cell: cellCfg(), Comp: bfp9()})
	var out [][]byte
	d.SetOutput(func(f []byte) { out = append(out, f) })
	return s, a, d, &out
}

// classify decodes emitted frames into buckets.
func classify(t *testing.T, frames [][]byte) (dlC, dlU, ulC, prachC int, ssbSeen bool) {
	t.Helper()
	for _, f := range frames {
		var p fh.Packet
		if err := p.Decode(f); err != nil {
			t.Fatal(err)
		}
		tm, err := p.Timing()
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case p.Plane() == fh.PlaneC && tm.FilterIndex == 1:
			prachC++
		case p.Plane() == fh.PlaneC && tm.Direction == oran.Downlink:
			dlC++
		case p.Plane() == fh.PlaneC:
			ulC++
		case tm.Direction == oran.Downlink:
			dlU++
			var msg oran.UPlaneMsg
			if err := p.UPlane(&msg, 106); err != nil {
				t.Fatal(err)
			}
			for _, sec := range msg.Sections {
				if sec.StartPRB == 0 && sec.NumPRB == phy.SSBPRBs {
					ssbSeen = true
				}
			}
		}
	}
	return
}

func TestIdleCellEmitsOnlySSBAndPRACH(t *testing.T) {
	s, _, d, out := newDU(t)
	d.Start()
	s.RunUntil(phy.SlotStart(41)) // two frames + a bit
	dlC, dlU, ulC, prachC, ssb := classify(t, *out)
	if !ssb {
		t.Fatal("no SSB emitted")
	}
	if prachC == 0 {
		t.Fatal("no PRACH occasion emitted")
	}
	if ulC != 0 {
		t.Fatalf("UL requests with no UEs: %d", ulC)
	}
	// DL C/U only for SSB slots.
	if dlC == 0 || dlU == 0 {
		t.Fatalf("SSB slots need C and U plane: c=%d u=%d", dlC, dlU)
	}
	if dlU > 10 {
		t.Fatalf("idle cell too chatty: %d DL U messages", dlU)
	}
}

func TestAttachedUEDrivesTraffic(t *testing.T) {
	s, a, d, out := newDU(t)
	u := air.NewUE(1, radio.UEAt(0, 12, 10))
	a.AddUE(u)
	u.OfferedDLbps = 100e6
	u.OfferedULbps = 10e6

	// Activate the cell's RU (as if an RU reported the SSB) and attach.
	a.RegisterRU("ru0", []radio.Element{radio.DefaultRUElement(radio.RUAt(0, 10, 10))})
	ssb := oran.Timing{Direction: oran.Downlink, SymbolID: 2}
	lo := d.Cell().Carrier.PRB0Hz()
	a.ReportDL("ru0", 0, 1, ssb, lo, lo+20*phy.PRBBandwidthHz, true)
	a.Attach(u, d.Cell())

	d.Start()
	s.RunUntil(phy.SlotStart(40))
	_, dlU, ulC, _, _ := classify(t, *out)
	if dlU < 20 {
		t.Fatalf("loaded cell DL U messages = %d", dlU)
	}
	if ulC == 0 {
		t.Fatal("attached UE must trigger UL requests")
	}
	st := d.Stats()
	if st.DLPRBSymSched == 0 || st.ULPRBSymSched == 0 {
		t.Fatalf("scheduling log empty: %+v", st)
	}
	if d.RankIndicator(u) == 0 {
		t.Fatal("rank indicator unset")
	}
}

func TestULCreditRequiresTimelyEnergeticPackets(t *testing.T) {
	s, a, d, _ := newDU(t)
	u := air.NewUE(1, radio.UEAt(0, 12, 10))
	a.AddUE(u)
	u.OfferedULbps = 10e6
	a.RegisterRU("ru0", []radio.Element{radio.DefaultRUElement(radio.RUAt(0, 10, 10))})
	ssb := oran.Timing{Direction: oran.Downlink, SymbolID: 2}
	lo := d.Cell().Carrier.PRB0Hz()
	a.ReportDL("ru0", 0, 1, ssb, lo, lo+20*phy.PRBBandwidthHz, true)
	a.Attach(u, d.Cell())
	u.StartMeasurement(0)
	d.Start()

	// Synthesize the RU side: answer every UL slot with a full-band,
	// data-amplitude U-plane arriving on time.
	synth := iqsynth.New(bfp9())
	b := fh.NewBuilder(ruMAC, duMAC, -1)
	for slot := 4; slot < 40; slot += 5 { // the U slot of each DDDSU period
		slot := slot
		for sym := 0; sym < phy.SymbolsPerSlot; sym++ {
			sym := sym
			s.At(phy.SymbolEnd(slot, sym).Add(5*time.Microsecond), func() {
				frame, sub, sl := phy.SlotCoords(slot)
				payload := synth.Uniform(nil, 106, slot+sym, iqsynth.DataAmplitude)
				msg := &oran.UPlaneMsg{
					Timing:   oran.Timing{Direction: oran.Uplink, FrameID: frame, SubframeID: sub, SlotID: sl, SymbolID: uint8(sym)},
					Sections: []oran.USection{{StartPRB: 0, NumPRB: 106, Comp: bfp9(), Payload: payload}},
				}
				d.Ingress(b.UPlane(ecpri.PcID{RUPort: 0}, msg))
			})
		}
	}
	s.RunUntil(phy.SlotStart(42))
	if u.DeliveredULBits == 0 {
		t.Fatal("timely energetic uplink not credited")
	}
	if d.Stats().ULLate != 0 {
		t.Fatalf("late = %d", d.Stats().ULLate)
	}
}

func TestLateULNotCredited(t *testing.T) {
	s, a, d, _ := newDU(t)
	u := air.NewUE(1, radio.UEAt(0, 12, 10))
	a.AddUE(u)
	u.OfferedULbps = 10e6
	a.RegisterRU("ru0", []radio.Element{radio.DefaultRUElement(radio.RUAt(0, 10, 10))})
	ssb := oran.Timing{Direction: oran.Downlink, SymbolID: 2}
	lo := d.Cell().Carrier.PRB0Hz()
	a.ReportDL("ru0", 0, 1, ssb, lo, lo+20*phy.PRBBandwidthHz, true)
	a.Attach(u, d.Cell())
	u.StartMeasurement(0)
	d.Start()

	synth := iqsynth.New(bfp9())
	b := fh.NewBuilder(ruMAC, duMAC, -1)
	for slot := 4; slot < 40; slot += 5 {
		slot := slot
		for sym := 0; sym < phy.SymbolsPerSlot; sym++ {
			sym := sym
			// 300 µs after the symbol: far past the deadline.
			s.At(phy.SymbolEnd(slot, sym).Add(300*time.Microsecond), func() {
				frame, sub, sl := phy.SlotCoords(slot)
				payload := synth.Uniform(nil, 106, slot+sym, iqsynth.DataAmplitude)
				msg := &oran.UPlaneMsg{
					Timing:   oran.Timing{Direction: oran.Uplink, FrameID: frame, SubframeID: sub, SlotID: sl, SymbolID: uint8(sym)},
					Sections: []oran.USection{{StartPRB: 0, NumPRB: 106, Comp: bfp9(), Payload: payload}},
				}
				d.Ingress(b.UPlane(ecpri.PcID{RUPort: 0}, msg))
			})
		}
	}
	s.RunUntil(phy.SlotStart(42))
	if u.DeliveredULBits != 0 {
		t.Fatalf("late uplink credited %.0f bits", u.DeliveredULBits)
	}
	if d.Stats().ULLate == 0 {
		t.Fatal("late packets not counted")
	}
}

func TestStopHaltsSlotLoop(t *testing.T) {
	s, _, d, out := newDU(t)
	d.Start()
	s.RunUntil(phy.SlotStart(5))
	d.Stop()
	n := len(*out)
	slots := d.Stats().SlotsPrepared
	s.RunFor(50 * time.Millisecond)
	if d.Stats().SlotsPrepared > slots+2 {
		t.Fatalf("slot loop kept running: %d -> %d", slots, d.Stats().SlotsPrepared)
	}
	_ = n
}

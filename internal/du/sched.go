package du

import (
	"math"
	"sort"

	"ranbooster/internal/air"
	"ranbooster/internal/phy"
)

// The MAC scheduler: per slot, convert offered traffic into PRB
// allocations using link adaptation, splitting the carrier among UEs with
// demand. The scheduling log it leaves behind (the allocation books) is
// the ground truth Fig. 10c compares Algorithm 1's estimates against.

// dlSymbolsOf lists the downlink symbols of a slot under the TDD pattern.
func dlSymbolsOf(tdd phy.TDD, absSlot int) []int {
	var out []int
	for s := 0; s < phy.SymbolsPerSlot; s++ {
		if dl, ok := tdd.SymbolDir(absSlot, s); ok && dl {
			out = append(out, s)
		}
	}
	return out
}

// ulSymbolsOf lists the uplink symbols of a slot.
func ulSymbolsOf(tdd phy.TDD, absSlot int) []int {
	var out []int
	for s := 0; s < phy.SymbolsPerSlot; s++ {
		if dl, ok := tdd.SymbolDir(absSlot, s); ok && !dl {
			out = append(out, s)
		}
	}
	return out
}

// attachedSorted returns the cell's UEs in deterministic order.
func (d *DU) attachedSorted() []*air.UE {
	ues := d.cell.Attached()
	sort.Slice(ues, func(i, j int) bool { return ues[i].ID < ues[j].ID })
	return ues
}

// accrueBacklog adds one slot's worth of offered traffic for every
// attached UE.
func (d *DU) accrueBacklog() {
	dt := phy.SlotDuration.Seconds()
	for _, u := range d.attachedSorted() {
		st := d.ues[u]
		if st == nil {
			st = &ueState{}
			d.ues[u] = st
		}
		st.dlBacklog += u.OfferedDLbps * dt
		st.ulBacklog += u.OfferedULbps * dt
		// iperf UDP: stale backlog beyond one second of offered load is
		// abandoned, not amortized.
		st.dlBacklog = math.Min(st.dlBacklog, u.OfferedDLbps)
		st.ulBacklog = math.Min(st.ulBacklog, u.OfferedULbps)
	}
}

// scheduleDL builds the downlink allocations of a slot.
func (d *DU) scheduleDL(absSlot int, nSyms int, reserveSSB bool) []alloc {
	if nSyms == 0 {
		return nil
	}
	budgetStart := 0
	if reserveSSB {
		budgetStart = d.cfg.Cell.SSB.StartPRB + phy.SSBPRBs
	}
	budget := d.cfg.Cell.Carrier.NumPRB - budgetStart

	type cand struct {
		ue         *air.UE
		st         *ueState
		rank       int
		bitsPerPRB float64 // across all slot symbols
		wantPRB    int
	}
	var cands []cand
	totalWant := 0
	for _, u := range d.attachedSorted() {
		st := d.ues[u]
		if st == nil || st.dlBacklog <= 0 {
			continue
		}
		rank, layerSINR, ok := d.oracle.DLQuality(d.cell, u)
		if !ok {
			continue
		}
		cqi := phy.CQIFromSINR(layerSINR)
		if cqi == 0 {
			continue
		}
		se := phy.EfficiencyForCQI(cqi) * float64(rank) * d.cfg.Cell.Stack.Efficiency * (1 - phy.PHYOverhead)
		bitsPerPRB := se * phy.SubcarriersPerPRB * float64(nSyms)
		want := int(math.Ceil(st.dlBacklog / bitsPerPRB))
		if want <= 0 {
			continue
		}
		st.lastRank = rank
		st.lastCQI = cqi
		cands = append(cands, cand{ue: u, st: st, rank: rank, bitsPerPRB: bitsPerPRB, wantPRB: want})
		totalWant += want
	}
	if len(cands) == 0 {
		return nil
	}
	// Proportional split when oversubscribed.
	scale := 1.0
	if totalWant > budget {
		scale = float64(budget) / float64(totalWant)
	}
	var out []alloc
	cursor := budgetStart
	for _, c := range cands {
		n := int(float64(c.wantPRB) * scale)
		if n < 1 {
			n = 1
		}
		if cursor+n > budgetStart+budget {
			n = budgetStart + budget - cursor
		}
		if n <= 0 {
			break
		}
		bits := math.Min(c.st.dlBacklog, float64(n)*c.bitsPerPRB)
		c.st.dlBacklog -= bits
		out = append(out, alloc{ue: c.ue, startPRB: cursor, numPRB: n, rank: c.rank, bits: bits})
		cursor += n
	}
	return out
}

// scheduleUL builds the uplink allocations (SISO, avoiding the PRACH
// region on occasion slots).
func (d *DU) scheduleUL(absSlot int, nSyms int, reservePRACH bool) []alloc {
	if nSyms == 0 {
		return nil
	}
	budgetStart := 0
	if reservePRACH {
		budgetStart = d.cfg.Cell.PRACH.StartPRB + d.cfg.Cell.PRACH.NumPRB
	}
	budget := d.cfg.Cell.Carrier.NumPRB - budgetStart

	type cand struct {
		ue         *air.UE
		st         *ueState
		bitsPerPRB float64
		wantPRB    int
	}
	var cands []cand
	totalWant := 0
	for _, u := range d.attachedSorted() {
		st := d.ues[u]
		if st == nil || st.ulBacklog <= 0 {
			continue
		}
		layerSINR, ok := d.oracle.ULQuality(d.cell, u)
		if !ok {
			continue
		}
		cqi := phy.CQIFromSINR(layerSINR)
		if cqi == 0 {
			continue
		}
		se := phy.EfficiencyForCQI(cqi) * d.cfg.Cell.Stack.Efficiency * (1 - phy.PHYOverhead)
		bitsPerPRB := se * phy.SubcarriersPerPRB * float64(nSyms)
		want := int(math.Ceil(st.ulBacklog / bitsPerPRB))
		if want <= 0 {
			continue
		}
		cands = append(cands, cand{ue: u, st: st, bitsPerPRB: bitsPerPRB, wantPRB: want})
		totalWant += want
	}
	if len(cands) == 0 {
		return nil
	}
	scale := 1.0
	if totalWant > budget {
		scale = float64(budget) / float64(totalWant)
	}
	var out []alloc
	cursor := budgetStart
	for _, c := range cands {
		n := int(float64(c.wantPRB) * scale)
		if n < 1 {
			n = 1
		}
		if cursor+n > budgetStart+budget {
			n = budgetStart + budget - cursor
		}
		if n <= 0 {
			break
		}
		bits := math.Min(c.st.ulBacklog, float64(n)*c.bitsPerPRB)
		c.st.ulBacklog -= bits
		out = append(out, alloc{ue: c.ue, startPRB: cursor, numPRB: n, rank: 1, bits: bits})
		cursor += n
	}
	return out
}

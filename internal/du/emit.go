package du

import (
	"time"

	"ranbooster/internal/ecpri"
	"ranbooster/internal/iqsynth"
	"ranbooster/internal/oran"
	"ranbooster/internal/phy"
	"ranbooster/internal/sim"
)

// Fronthaul generation: one slot at a time, emitted on the virtual clock
// with the configured transmit advance.

// cPlaneLead is how much earlier than the slot's first U-plane message the
// C-plane leaves the DU.
const cPlaneLead = 25 * time.Microsecond

// prepareSlot schedules everything the DU does for absSlot: allocation,
// C-plane and U-plane emission, air-oracle registration, and the deferred
// delivery settlement.
func (d *DU) prepareSlot(absSlot int) {
	d.stats.SlotsPrepared++
	d.accrueBacklog()

	frame := phy.FrameOf(absSlot)
	slotInFrame := phy.SlotInFrame(absSlot)
	dlSyms := dlSymbolsOf(d.cfg.Cell.TDD, absSlot)
	ulSyms := ulSymbolsOf(d.cfg.Cell.TDD, absSlot)
	ssbSlot := len(dlSyms) > 0 && d.cfg.Cell.SSB.Occupies(frame%256, slotInFrame, d.cfg.Cell.SSB.StartSymbol)
	prachSlot := len(ulSyms) > 0 && d.cfg.Cell.PRACH.Occupies(frame%256, slotInFrame, d.cfg.Cell.PRACH.StartSymbol)

	dlAllocs := d.scheduleDL(absSlot, len(dlSyms), ssbSlot)
	ulAllocs := d.scheduleUL(absSlot, len(ulSyms), prachSlot)

	book := &slotBook{dlAllocs: dlAllocs, ulAllocs: ulAllocs, ulSyms: ulSyms, ulRecv: make(map[int]*ulRecord)}
	d.books[absSlot] = book

	// Downlink activity feeds the interference model; the PRB×symbol
	// totals are the MAC scheduling log (Fig. 10c's ground truth).
	prbUsed := 0
	for _, a := range dlAllocs {
		prbUsed += a.numPRB
	}
	inst := 0.0
	if len(dlSyms) > 0 {
		inst = float64(prbUsed) / float64(d.cfg.Cell.Carrier.NumPRB)
	}
	d.activity = 0.9*d.activity + 0.1*inst
	d.stats.DLPRBSymSched += uint64(prbUsed * len(dlSyms))
	d.stats.DLPRBSymTotal += uint64(d.cfg.Cell.Carrier.NumPRB * len(dlSyms))
	ulUsed := 0
	for _, a := range ulAllocs {
		ulUsed += a.numPRB
	}
	d.stats.ULPRBSymSched += uint64(ulUsed * len(ulSyms))
	d.stats.ULPRBSymTotal += uint64(d.cfg.Cell.Carrier.NumPRB * len(ulSyms))

	emitted := d.emitDL(absSlot, dlSyms, dlAllocs, ssbSlot)
	d.oracle.ExpectDL(d.cfg.Cell.Name, absSlot, emitted, d.activity)

	if len(ulSyms) > 0 {
		d.emitULRequests(absSlot, ulSyms, ulAllocs, prachSlot)
	}
	for _, a := range ulAllocs {
		d.oracle.RegisterUL(d.cell, absSlot, a.ue, a.startPRB, a.numPRB)
	}
	if prachSlot {
		d.emitPRACHRequest(absSlot)
	}

	// Settle after the last uplink deadline of the slot.
	settleAt := phy.SlotStart(absSlot + 1).Add(d.cfg.ULDeadline + 20*phy.SymbolDuration/10)
	d.sched.At(settleAt, func() { d.creditSlot(absSlot) })
}

// emitAt sends a frame at the given virtual time (clamped to now).
func (d *DU) emitAt(at sim.Time, frame []byte) {
	d.sched.At(at, func() {
		if d.out != nil {
			d.out(frame)
		}
	})
}

// emitDL generates the slot's downlink C-plane and U-plane. It returns
// the number of distinct (symbol, port) U-plane messages emitted — the
// completeness denominator for delivery accounting.
func (d *DU) emitDL(absSlot int, dlSyms []int, allocs []alloc, ssbSlot bool) int {
	if len(dlSyms) == 0 {
		return 0
	}
	frame, subframe, slot := phy.SlotCoords(absSlot)
	// C-plane leaves ahead of the first U-plane (the CUS-plane ordering
	// middleboxes like RU sharing depend on).
	cAt := phy.SlotStart(absSlot).Add(-d.cfg.DLAdvance - cPlaneLead)
	maxRank := 0
	for _, a := range allocs {
		if a.rank > maxRank {
			maxRank = a.rank
		}
	}

	// C-plane: one message per antenna port carrying that port's sections.
	for p := 0; p < d.cfg.Cell.MaxLayers; p++ {
		var secs []oran.CSection
		sid := uint16(1)
		if ssbSlot && p == 0 {
			secs = append(secs, oran.CSection{
				SectionID: sid, StartPRB: d.cfg.Cell.SSB.StartPRB, NumPRB: phy.SSBPRBs,
				ReMask: 0xfff, NumSymbol: uint8(phy.SSBSymbols), BeamID: 0,
			})
			sid++
		}
		for _, a := range allocs {
			if p >= a.rank {
				continue
			}
			secs = append(secs, oran.CSection{
				SectionID: sid, StartPRB: a.startPRB, NumPRB: a.numPRB,
				ReMask: 0xfff, NumSymbol: uint8(len(dlSyms)),
			})
			sid++
		}
		if len(secs) == 0 {
			continue
		}
		msg := &oran.CPlaneMsg{
			Timing: oran.Timing{
				Direction: oran.Downlink, PayloadVersion: 1,
				FrameID: frame, SubframeID: subframe, SlotID: slot, SymbolID: uint8(dlSyms[0]),
			},
			SectionType: oran.SectionType1,
			Comp:        d.cfg.Comp,
			Sections:    secs,
		}
		d.emitAt(cAt, d.builder.CPlane(ecpri.PcID{DUPort: d.cfg.DUPortID, BandSector: d.sector(), RUPort: uint8(p)}, msg))
	}

	// U-plane: per symbol, per port.
	emitted := 0
	for _, sym := range dlSyms {
		at := phy.SymbolStart(absSlot, sym).Add(-d.cfg.DLAdvance)
		frameSent := make(map[int]bool)
		ssbHere := ssbSlot && d.cfg.Cell.SSB.Occupies(phy.FrameOf(absSlot)%256, phy.SlotInFrame(absSlot), sym)
		if ssbHere {
			// The SSB rides in its own U-plane message on port 0 (how real
			// DUs section it), which is what lets the dMIMO middlebox
			// mirror it to secondary RUs without touching data sections.
			payload := d.synth.Uniform(nil, phy.SSBPRBs, absSlot+sym, iqsynth.SSBAmplitude)
			msg := &oran.UPlaneMsg{
				Timing: d.uTiming(absSlot, sym),
				Sections: []oran.USection{{
					SectionID: 0, StartPRB: d.cfg.Cell.SSB.StartPRB, NumPRB: phy.SSBPRBs,
					Comp: d.cfg.Comp, Payload: payload,
				}},
			}
			d.emitAt(at, d.builder.UPlane(ecpri.PcID{DUPort: d.cfg.DUPortID, BandSector: d.sector(), RUPort: 0}, msg))
			frameSent[0] = true
			emitted++
		}
		for p := 0; p < maxRank; p++ {
			var secs []oran.USection
			for i, a := range allocs {
				if p >= a.rank {
					continue
				}
				payload := d.synth.Uniform(nil, a.numPRB, absSlot+sym+p+i, iqsynth.DataAmplitude)
				secs = append(secs, oran.USection{
					SectionID: uint16(i + 1), StartPRB: a.startPRB, NumPRB: a.numPRB,
					Comp: d.cfg.Comp, Payload: payload,
				})
			}
			if len(secs) == 0 {
				continue
			}
			msg := &oran.UPlaneMsg{Timing: d.uTiming(absSlot, sym), Sections: secs}
			d.emitAt(at, d.builder.UPlane(ecpri.PcID{DUPort: d.cfg.DUPortID, BandSector: d.sector(), RUPort: uint8(p)}, msg))
			if !frameSent[p] {
				emitted++
			}
		}
	}
	return emitted
}

func (d *DU) uTiming(absSlot, sym int) oran.Timing {
	frame, subframe, slot := phy.SlotCoords(absSlot)
	return oran.Timing{
		Direction: oran.Downlink, PayloadVersion: 1,
		FrameID: frame, SubframeID: subframe, SlotID: slot, SymbolID: uint8(sym),
	}
}

// emitULRequests sends the slot's uplink C-plane: full-band requests on
// every antenna port whenever UEs are attached. A Cat-A RU streams the
// raw IQ of each receive antenna back to the DU (which does the MIMO
// combining), and requesting the whole band even without traffic models
// connected-mode PUCCH/SRS monitoring — the reason idle uplink spectrum
// still crosses the fronthaul as noise-level IQ, which is what Algorithm
// 1's uplink threshold keys on.
func (d *DU) emitULRequests(absSlot int, ulSyms []int, allocs []alloc, prachSlot bool) {
	if len(d.cell.Attached()) == 0 {
		return
	}
	frame, subframe, slot := phy.SlotCoords(absSlot)
	at := phy.SlotStart(absSlot).Add(-d.cfg.DLAdvance)
	for p := 0; p < d.cfg.Cell.MaxLayers; p++ {
		msg := &oran.CPlaneMsg{
			Timing: oran.Timing{
				Direction: oran.Uplink, PayloadVersion: 1,
				FrameID: frame, SubframeID: subframe, SlotID: slot, SymbolID: uint8(ulSyms[0]),
			},
			SectionType: oran.SectionType1,
			Comp:        d.cfg.Comp,
			Sections: []oran.CSection{{
				SectionID: 1, StartPRB: 0, NumPRB: d.cfg.Cell.Carrier.NumPRB,
				ReMask: 0xfff, NumSymbol: uint8(len(ulSyms)),
			}},
		}
		d.emitAt(at, d.builder.CPlane(ecpri.PcID{DUPort: d.cfg.DUPortID, BandSector: d.sector(), RUPort: uint8(p)}, msg))
	}
}

// emitPRACHRequest sends the section type 3 C-plane for an occasion.
func (d *DU) emitPRACHRequest(absSlot int) {
	frame, subframe, slot := phy.SlotCoords(absSlot)
	cfg := d.cfg.Cell.PRACH
	msg := &oran.CPlaneMsg{
		Timing: oran.Timing{
			Direction: oran.Uplink, PayloadVersion: 1, FilterIndex: 1,
			FrameID: frame, SubframeID: subframe, SlotID: slot, SymbolID: uint8(cfg.StartSymbol),
		},
		SectionType:    oran.SectionType3,
		TimeOffset:     0,
		FrameStructure: 0x41,
		CPLength:       0,
		Comp:           d.cfg.Comp,
		Sections: []oran.CSection{{
			SectionID: uint16(d.cfg.DUPortID),
			StartPRB:  cfg.StartPRB, NumPRB: cfg.NumPRB,
			ReMask: 0xfff, NumSymbol: uint8(cfg.NumSymbols),
			FreqOffset: phy.FreqOffsetForPRB(d.cfg.Cell.Carrier, cfg.StartPRB),
		}},
	}
	at := phy.SlotStart(absSlot).Add(-d.cfg.DLAdvance)
	d.emitAt(at, d.builder.CPlane(ecpri.PcID{DUPort: d.cfg.DUPortID, BandSector: d.sector(), RUPort: 0}, msg))
}

// sector is the eAxC BandSector value stamped on every emission: the
// cell's PCI (mod 16), the hook the air oracle uses to attribute
// co-channel transmissions, like a UE decoding the PCI from the SSB.
func (d *DU) sector() uint8 { return uint8(d.cfg.Cell.PCI & 0xf) }

// Package du simulates a virtualized DU/CU stack (the testbed's srsRAN /
// CapGemini / Radisys class): per-slot MAC scheduling driven by offered
// UE traffic and link adaptation, generation of C-plane and U-plane
// fronthaul traffic (including SSB and PRACH occasions), uplink reception
// with strict deadline windows, preamble detection, and delivery
// accounting that credits UE goodput only for what actually made it over
// the fronthaul and the air.
package du

import (
	"fmt"
	"time"

	"ranbooster/internal/air"
	"ranbooster/internal/bfp"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/iqsynth"
	"ranbooster/internal/oran"
	"ranbooster/internal/phy"
	"ranbooster/internal/sim"
)

// Config describes one DU and its cell.
type Config struct {
	Name string
	MAC  eth.MAC
	// PeerMAC is where downlink fronthaul goes: the RU, or the middlebox
	// standing in for it.
	PeerMAC eth.MAC
	VLAN    int
	Cell    air.CellConfig
	Comp    bfp.Params
	// DUPortID tags the eAxC DU-port field and identifies this DU's
	// PRACH sections in RU-sharing deployments (Algorithm 3).
	DUPortID uint8
	// DLAdvance is how far ahead of a symbol's air time its downlink
	// fronthaul leaves the DU (transmission window T1a).
	DLAdvance time.Duration
	// ULDeadline is how long after a symbol's end its uplink fronthaul
	// may still arrive and be processed (reception window Ta4). The
	// paper's §6.4.1 deadline discussion lives here: a middlebox may add
	// only a few tens of microseconds before uplink slots start dying.
	ULDeadline time.Duration
}

// Stats counts DU events.
type Stats struct {
	SlotsPrepared  uint64
	ULRx           uint64
	ULLate         uint64
	ULStale        uint64
	PRACHDetected  uint64
	BadPackets     uint64
	DLBitsCredited float64
	ULBitsCredited float64

	// MAC scheduling log totals (PRB×symbol units) — the ground truth the
	// paper's Fig. 10c compares Algorithm 1's estimates against.
	DLPRBSymSched uint64
	DLPRBSymTotal uint64
	ULPRBSymSched uint64
	ULPRBSymTotal uint64
}

type ueState struct {
	dlBacklog float64 // bits waiting at the DU
	ulBacklog float64 // bits waiting at the UE
	lastRank  int
	lastCQI   int
}

type alloc struct {
	ue       *air.UE
	startPRB int
	numPRB   int
	rank     int
	bits     float64
}

type ulRecord struct {
	late bool
	// exps holds the received BFP exponent of every carrier PRB.
	exps []uint8
}

type slotBook struct {
	dlAllocs []alloc
	ulAllocs []alloc
	ulSyms   []int
	ulRecv   map[int]*ulRecord // keyed by symbol
}

// DU is the simulator actor.
type DU struct {
	cfg    Config
	sched  *sim.Scheduler
	oracle *air.Air
	cell   *air.Cell
	out    func(frame []byte)

	builder *fh.Builder
	synth   *iqsynth.Cache
	ues     map[*air.UE]*ueState
	books   map[int]*slotBook
	stats   Stats

	activity float64
	stopped  bool
}

// New creates a DU, registering its cell with the air oracle.
func New(sched *sim.Scheduler, oracle *air.Air, cfg Config) *DU {
	if cfg.DLAdvance == 0 {
		cfg.DLAdvance = 50 * time.Microsecond
	}
	if cfg.ULDeadline == 0 {
		// Calibrated against §6.4.1: a DAS middlebox merging four RUs'
		// uplink fits the budget; a fifth RU's extra merge latency does
		// not, until a second core splits the antenna streams.
		cfg.ULDeadline = 49 * time.Microsecond
	}
	d := &DU{
		cfg:     cfg,
		sched:   sched,
		oracle:  oracle,
		cell:    oracle.RegisterCell(cfg.Cell),
		builder: fh.NewBuilder(cfg.MAC, cfg.PeerMAC, cfg.VLAN),
		synth:   iqsynth.New(cfg.Comp),
		ues:     make(map[*air.UE]*ueState),
		books:   make(map[int]*slotBook),
	}
	return d
}

// Cell returns the DU's cell.
func (d *DU) Cell() *air.Cell { return d.cell }

// MAC returns the DU's fronthaul address.
func (d *DU) MAC() eth.MAC { return d.cfg.MAC }

// SetPeer points the DU's downlink at a new RU-side address.
func (d *DU) SetPeer(mac eth.MAC) {
	d.cfg.PeerMAC = mac
	d.builder.Dst = mac
}

// Stats returns a snapshot of the counters.
func (d *DU) Stats() Stats { return d.stats }

// SetOutput wires the DU's transmit side.
func (d *DU) SetOutput(fn func(frame []byte)) { d.out = fn }

// RankIndicator reports the last scheduled rank for a UE (Table 2's KPI).
func (d *DU) RankIndicator(u *air.UE) int {
	if st := d.ues[u]; st != nil {
		return st.lastRank
	}
	return 0
}

// Start begins the per-slot processing loop. The DU prepares each slot
// one slot ahead so downlink fronthaul can leave DLAdvance early.
func (d *DU) Start() {
	first := phy.SlotAt(d.sched.Now())
	d.prepareSlot(first)
	d.prepareSlot(first + 1)
	var tick func()
	tick = func() {
		if d.stopped {
			return
		}
		cur := phy.SlotAt(d.sched.Now())
		d.prepareSlot(cur + 1)
		d.sched.At(phy.SlotStart(cur+1), tick)
	}
	d.sched.At(phy.SlotStart(first+1), tick)
}

// Stop halts the slot loop after the current slot.
func (d *DU) Stop() { d.stopped = true }

// Ingress is the DU's fronthaul receive entry point (uplink).
func (d *DU) Ingress(frame []byte) {
	var pkt fh.Packet
	if err := pkt.Decode(frame); err != nil {
		d.stats.BadPackets++
		return
	}
	if pkt.Eth.Dst != d.cfg.MAC && !pkt.Eth.Dst.IsBroadcast() {
		return
	}
	if pkt.Plane() != fh.PlaneU {
		return // C-plane reflections are not expected upstream
	}
	var msg oran.UPlaneMsg
	if err := pkt.UPlane(&msg, d.cfg.Cell.Carrier.NumPRB); err != nil {
		d.stats.BadPackets++
		return
	}
	if msg.Timing.Direction != oran.Uplink {
		return
	}
	d.stats.ULRx++
	absSlot := air.AbsSlotNear(d.sched.Now(), msg.Timing)
	sym := int(msg.Timing.SymbolID)
	late := d.sched.Now() > phy.SymbolEnd(absSlot, sym).Add(d.cfg.ULDeadline)
	if late {
		d.stats.ULLate++
	}
	if msg.Timing.FilterIndex == 1 {
		d.handlePRACH(absSlot, &msg, late)
		return
	}
	book := d.books[absSlot]
	if book == nil {
		d.stats.ULStale++
		return
	}
	rec := book.ulRecv[sym]
	if rec == nil {
		rec = &ulRecord{exps: make([]uint8, d.cfg.Cell.Carrier.NumPRB)}
		book.ulRecv[sym] = rec
	}
	rec.late = rec.late || late
	for i := range msg.Sections {
		s := &msg.Sections[i]
		if s.Comp.Method != bfp.MethodBlockFloatingPoint {
			continue
		}
		size := s.Comp.PRBSize()
		for p := 0; p < s.NumPRB && s.StartPRB+p < len(rec.exps); p++ {
			if exp, err := bfp.PeekExponent(s.Payload[p*size:]); err == nil {
				rec.exps[s.StartPRB+p] = exp
			}
		}
	}
}

// ulUtilizedThreshold mirrors Algorithm 1's uplink threshold: exponents at
// or below it are indistinguishable from the noise floor and undecodable.
const ulUtilizedThreshold = 2

// handlePRACH detects preamble energy and completes attachments.
func (d *DU) handlePRACH(absSlot int, msg *oran.UPlaneMsg, late bool) {
	if late {
		return
	}
	for i := range msg.Sections {
		s := &msg.Sections[i]
		if s.SectionID != uint16(d.cfg.DUPortID) {
			continue // another DU's demultiplexed section
		}
		if s.Comp.Method != bfp.MethodBlockFloatingPoint || len(s.Payload) == 0 {
			continue
		}
		exp, err := bfp.PeekExponent(s.Payload)
		if err != nil || exp <= ulUtilizedThreshold {
			continue
		}
		for _, u := range d.oracle.TakeCaptured(d.cfg.Cell.Name, absSlot) {
			d.oracle.Attach(u, d.cell)
			if d.ues[u] == nil {
				d.ues[u] = &ueState{}
			}
			d.stats.PRACHDetected++
		}
	}
}

// creditSlot settles a slot's deliveries after its deadline has passed.
func (d *DU) creditSlot(absSlot int) {
	book := d.books[absSlot]
	if book == nil {
		return
	}
	delete(d.books, absSlot)
	for _, a := range book.dlAllocs {
		frac := d.oracle.DLDeliveredFraction(d.cell, absSlot, a.ue)
		a.ue.DeliveredDLBits += a.bits * frac
		d.stats.DLBitsCredited += a.bits * frac
	}
	for _, a := range book.ulAllocs {
		if len(book.ulSyms) == 0 {
			continue
		}
		var got float64
		for _, sym := range book.ulSyms {
			rec := book.ulRecv[sym]
			if rec == nil || rec.late {
				continue
			}
			util := 0
			for p := a.startPRB; p < a.startPRB+a.numPRB; p++ {
				if rec.exps[p] > ulUtilizedThreshold {
					util++
				}
			}
			got += float64(util) / float64(a.numPRB)
		}
		frac := got / float64(len(book.ulSyms))
		a.ue.DeliveredULBits += a.bits * frac
		d.stats.ULBitsCredited += a.bits * frac
	}
}

// String identifies the DU.
func (d *DU) String() string {
	return fmt.Sprintf("du %s (%s, %s)", d.cfg.Name, d.cfg.Cell.Carrier, d.cfg.Cell.Stack.Name)
}

// Package ecpri implements the eCPRI common transport header used by the
// O-RAN fronthaul. Every C-plane and U-plane message rides inside an eCPRI
// PDU directly over Ethernet (EtherType 0xAEFE).
//
// The header layout follows eCPRI v2.0 §3.1.3 with the O-RAN WG4 usage of
// the PC_ID field: four 4-bit subfields identifying the DU port, band
// sector, component carrier and RU port — together the "eAxC" (extended
// antenna-carrier) that RANBooster middleboxes key their caches and
// forwarding rules on.
package ecpri

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// HeaderLen is the encoded size of the eCPRI common header plus the
// PC_ID/SEQ_ID fields used by message types 0 and 2.
const HeaderLen = 8

// MessageType identifies the eCPRI service carried in the PDU.
type MessageType uint8

// The two message types the fronthaul C/U planes use.
const (
	// MsgIQData (type 0) carries U-plane IQ payloads.
	MsgIQData MessageType = 0
	// MsgRTControl (type 2) carries C-plane real-time control messages.
	MsgRTControl MessageType = 2
)

// String names the message type as Wireshark does.
func (t MessageType) String() string {
	switch t {
	case MsgIQData:
		return "IQ Data"
	case MsgRTControl:
		return "Real-Time Control Data"
	default:
		return fmt.Sprintf("eCPRI type %d", uint8(t))
	}
}

// PcID is the decoded ecpriPcid: the eAxC identifier. Each subfield is 4
// bits wide (the O-RAN default partitioning).
type PcID struct {
	DUPort     uint8 // DU_Port_ID: distinguishes processing units at the DU
	BandSector uint8 // BandSector_ID: cell/sector
	CC         uint8 // CC_ID: component carrier
	RUPort     uint8 // RU_Port_ID: spatial stream (antenna port / layer)
}

// Uint16 packs the eAxC into its wire form.
func (p PcID) Uint16() uint16 {
	return uint16(p.DUPort&0xf)<<12 | uint16(p.BandSector&0xf)<<8 |
		uint16(p.CC&0xf)<<4 | uint16(p.RUPort&0xf)
}

// PcIDFromUint16 unpacks an eAxC.
func PcIDFromUint16(v uint16) PcID {
	return PcID{
		DUPort:     uint8(v >> 12),
		BandSector: uint8(v>>8) & 0xf,
		CC:         uint8(v>>4) & 0xf,
		RUPort:     uint8(v) & 0xf,
	}
}

// String renders the eAxC in the capture format.
func (p PcID) String() string {
	return fmt.Sprintf("(DU_Port_ID: %d, BandSector_ID: %d, CC_ID: %d, RU_Port_ID: %d)",
		p.DUPort, p.BandSector, p.CC, p.RUPort)
}

// Header is the eCPRI common header (8 bytes for types 0 and 2).
type Header struct {
	Version     uint8 // protocol revision, 1 on the wire today
	Concat      bool  // C bit: another PDU follows in the same frame
	Type        MessageType
	PayloadSize uint16 // bytes following this header
	PcID        PcID
	SeqID       uint8 // increments per eAxC per direction
	EBit        bool  // E: last message of a subsequence
	SubSeqID    uint8 // 7-bit radio-transport subsequence
}

// ErrTruncated reports an eCPRI PDU shorter than its header.
var ErrTruncated = errors.New("ecpri: truncated PDU")

// DecodeFromBytes parses the header and returns the payload slice (bounded
// by PayloadSize when it fits, else the remainder). It does not allocate.
func (h *Header) DecodeFromBytes(b []byte) ([]byte, error) {
	if len(b) < HeaderLen {
		return nil, ErrTruncated
	}
	h.Version = b[0] >> 4
	h.Concat = b[0]&0x01 != 0
	h.Type = MessageType(b[1])
	h.PayloadSize = binary.BigEndian.Uint16(b[2:4])
	h.PcID = PcIDFromUint16(binary.BigEndian.Uint16(b[4:6]))
	h.SeqID = b[6]
	h.EBit = b[7]&0x80 != 0
	h.SubSeqID = b[7] & 0x7f
	payload := b[HeaderLen:]
	// PayloadSize counts PC_ID+SEQ_ID (4 bytes) plus the application payload.
	if app := int(h.PayloadSize) - 4; app >= 0 && app <= len(payload) {
		payload = payload[:app]
	}
	return payload, nil
}

// AppendTo serializes the header onto b. PayloadSize must already account
// for the application payload; SetPayloadSize can fix it up afterwards.
func (h *Header) AppendTo(b []byte) []byte {
	b0 := h.Version << 4
	if h.Concat {
		b0 |= 0x01
	}
	b = append(b, b0, byte(h.Type))
	b = binary.BigEndian.AppendUint16(b, h.PayloadSize)
	b = binary.BigEndian.AppendUint16(b, h.PcID.Uint16())
	b7 := h.SubSeqID & 0x7f
	if h.EBit {
		b7 |= 0x80
	}
	return append(b, h.SeqID, b7)
}

// SetPayloadSize patches the payload-size field of an encoded header found
// at offset off in frame, given the application payload length that follows
// the 8-byte header.
func SetPayloadSize(frame []byte, off, appPayloadLen int) error {
	if off+HeaderLen > len(frame) {
		return ErrTruncated
	}
	binary.BigEndian.PutUint16(frame[off+2:off+4], uint16(appPayloadLen+4))
	return nil
}

package ecpri

import (
	"testing"
	"testing/quick"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Version:     1,
		Type:        MsgIQData,
		PayloadSize: 104,
		PcID:        PcID{DUPort: 0, BandSector: 0, CC: 0, RUPort: 3},
		SeqID:       49,
		EBit:        true,
		SubSeqID:    0,
	}
	buf := h.AppendTo(nil)
	if len(buf) != HeaderLen {
		t.Fatalf("len = %d", len(buf))
	}
	payload := append(buf, make([]byte, 100)...)
	var got Header
	app, err := got.DecodeFromBytes(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, h)
	}
	if len(app) != 100 {
		t.Fatalf("app payload = %d, want 100", len(app))
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(ver uint8, concat bool, typ uint8, size uint16, pc uint16, seq uint8, e bool, sub uint8) bool {
		h := Header{
			Version: ver & 0xf, Concat: concat, Type: MessageType(typ),
			PayloadSize: size, PcID: PcIDFromUint16(pc),
			SeqID: seq, EBit: e, SubSeqID: sub & 0x7f,
		}
		var got Header
		_, err := got.DecodeFromBytes(h.AppendTo(nil))
		return err == nil && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPcIDPacking(t *testing.T) {
	p := PcID{DUPort: 1, BandSector: 2, CC: 3, RUPort: 4}
	if p.Uint16() != 0x1234 {
		t.Fatalf("Uint16 = %#04x", p.Uint16())
	}
	if PcIDFromUint16(0x1234) != p {
		t.Fatal("unpack")
	}
	if p.String() != "(DU_Port_ID: 1, BandSector_ID: 2, CC_ID: 3, RU_Port_ID: 4)" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestDecodeTruncated(t *testing.T) {
	var h Header
	if _, err := h.DecodeFromBytes(make([]byte, 7)); err != ErrTruncated {
		t.Fatalf("err = %v", err)
	}
}

func TestPayloadBounding(t *testing.T) {
	h := Header{Type: MsgRTControl, PayloadSize: 4 + 10}
	buf := h.AppendTo(nil)
	buf = append(buf, make([]byte, 50)...) // trailing padding beyond payload
	var got Header
	app, err := got.DecodeFromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(app) != 10 {
		t.Fatalf("bounded payload = %d, want 10", len(app))
	}
	// A lying PayloadSize larger than the frame falls back to the remainder.
	h.PayloadSize = 4 + 1000
	buf = h.AppendTo(nil)
	buf = append(buf, make([]byte, 20)...)
	app, err = got.DecodeFromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(app) != 20 {
		t.Fatalf("oversize claim: payload = %d, want 20", len(app))
	}
}

func TestSetPayloadSize(t *testing.T) {
	h := Header{Type: MsgIQData}
	buf := h.AppendTo(nil)
	buf = append(buf, make([]byte, 32)...)
	if err := SetPayloadSize(buf, 0, 32); err != nil {
		t.Fatal(err)
	}
	var got Header
	app, err := got.DecodeFromBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.PayloadSize != 36 || len(app) != 32 {
		t.Fatalf("size = %d app = %d", got.PayloadSize, len(app))
	}
	if err := SetPayloadSize(buf, 35, 1); err != ErrTruncated {
		t.Fatalf("out of range offset: %v", err)
	}
}

func TestMessageTypeString(t *testing.T) {
	if MsgIQData.String() != "IQ Data" || MsgRTControl.String() != "Real-Time Control Data" {
		t.Fatal("well-known names")
	}
	if MessageType(7).String() != "eCPRI type 7" {
		t.Fatal(MessageType(7).String())
	}
}

// Package prbmon implements the real-time PRB monitoring middlebox of
// §4.4: cell resource utilization estimated at sub-millisecond
// granularity from the BFP compression exponents of passing U-plane
// traffic (Algorithm 1), without decompressing a single sample.
//
// A PRB is counted as utilized when its exponent exceeds the direction's
// threshold (0 downlink, 2 uplink — the values the paper measured across
// stacks). Per reporting interval the middlebox publishes the utilization
// fraction against the cell's full time-frequency grid on its telemetry
// bus; every packet passes through unmodified.
package prbmon

import (
	"fmt"
	"strconv"
	"sync/atomic"

	"ranbooster/internal/bfp"
	"ranbooster/internal/core"
	"ranbooster/internal/cpu"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
	"ranbooster/internal/phy"
	"ranbooster/internal/sim"
)

// Default Algorithm 1 thresholds.
const (
	DefaultThrDL = 0
	DefaultThrUL = 2
)

// KPI names published on the telemetry bus.
const (
	KPIUtilizationDL = "prb.utilization.dl"
	KPIUtilizationUL = "prb.utilization.ul"
)

// Estimator selects the utilization detection method. §4.4 discusses both:
// the BFP-exponent shortcut (Algorithm 1) and the costlier alternative of
// decompressing the samples and thresholding their energy.
type Estimator uint8

// Estimators.
const (
	EstimatorExponent Estimator = iota
	EstimatorEnergy
)

// EnergyThreshold is the per-PRB sample-energy level above which the
// energy estimator counts a PRB as utilized (well above the noise floor,
// well below any modulated payload).
const EnergyThreshold = 100_000_000

// Config describes one monitoring middlebox.
type Config struct {
	Name string
	// MAC is the middlebox's own address; DU and RU the endpoints it sits
	// between. Packets from one are forwarded to the other.
	MAC, DU, RU eth.MAC
	// Cell geometry for the utilization denominator.
	Carrier phy.Carrier
	TDD     phy.TDD
	// Thresholds of Algorithm 1.
	ThrDL, ThrUL uint8
	// Method selects exponent-based (default, Algorithm 1) or
	// energy-based estimation.
	Method Estimator
	// Interval between telemetry publications (default one second, like
	// the paper's Fig. 10c reporting; the estimate itself is per-symbol).
	Interval sim.Duration
}

// App is the monitoring middlebox. Its cross-stream state (the interval
// accumulators and window start) is kept with atomics, so Handle is
// shard-safe and the monitor may run over parallel engine workers.
type App struct {
	cfg Config

	utilDL, utilUL atomic.Uint64 // utilized PRBs this interval
	windowStart    atomic.Int64  // sim.Time; notStarted until first packet
}

// notStarted marks a monitoring window that has not opened yet.
const notStarted = int64(-1)

// New builds the middlebox with defaulted thresholds.
func New(cfg Config) *App {
	if cfg.ThrDL == 0 {
		cfg.ThrDL = DefaultThrDL
	}
	if cfg.ThrUL == 0 {
		cfg.ThrUL = DefaultThrUL
	}
	if cfg.Interval == 0 {
		cfg.Interval = 1e9 // 1 s
	}
	a := &App{cfg: cfg}
	a.windowStart.Store(notStarted)
	return a
}

// Name implements core.App.
func (a *App) Name() string { return a.cfg.Name }

// Control implements the management interface: thresholds can be retuned
// on-the-fly ("set-thr" with args dl= / ul=).
func (a *App) Control(cmd string, args map[string]string) error {
	if cmd != "set-thr" {
		return fmt.Errorf("prbmon: unknown command %q", cmd)
	}
	if v, ok := args["dl"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		a.cfg.ThrDL = uint8(n)
	}
	if v, ok := args["ul"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil {
			return err
		}
		a.cfg.ThrUL = uint8(n)
	}
	return nil
}

// Handle implements core.App: Algorithm 1 over each U-plane packet, then
// transparent forwarding to the opposite endpoint.
//
//ranvet:hotpath
//ranvet:detpath
func (a *App) Handle(ctx *core.Context, pkt *fh.Packet) error {
	a.windowStart.CompareAndSwap(notStarted, int64(ctx.Now()))
	a.estimate(ctx, pkt)
	a.maybePublish(ctx)
	return a.forward(ctx, pkt)
}

// HandleBurst implements core.BurstApp: Algorithm 1 over the whole burst
// with the window bookkeeping — the open CAS and the interval-close check
// — paid once per burst instead of once per frame. Per-packet forwarding
// failures are isolated with Context.PacketError so one bad frame does
// not discard the rest of the burst.
//
//ranvet:hotpath
//ranvet:detpath
func (a *App) HandleBurst(ctx *core.Context, pkts []*fh.Packet) error {
	a.windowStart.CompareAndSwap(notStarted, int64(ctx.Now()))
	for _, pkt := range pkts {
		a.estimate(ctx, pkt)
		if err := a.forward(ctx, pkt); err != nil {
			ctx.PacketError(pkt, err)
		}
	}
	a.maybePublish(ctx)
	return nil
}

// estimate feeds one packet into the utilization estimator. Only the
// first antenna port is scanned: Algorithm 1's PRB_Utilized is a per-grid
// bitvector, and every MIMO layer shares the same time-frequency grid.
func (a *App) estimate(ctx *core.Context, pkt *fh.Packet) {
	if pkt.Plane() == fh.PlaneU && pkt.EAxC().RUPort == 0 {
		t, err := pkt.Timing()
		if err == nil {
			a.scan(ctx, pkt, t)
		}
	}
}

// forward passes the packet through to the opposite endpoint.
func (a *App) forward(ctx *core.Context, pkt *fh.Packet) error {
	switch pkt.Eth.Src {
	case a.cfg.DU:
		return ctx.Redirect(pkt, a.cfg.RU, a.cfg.MAC, -1)
	case a.cfg.RU:
		return ctx.Redirect(pkt, a.cfg.DU, a.cfg.MAC, -1)
	default:
		ctx.Forward(pkt)
		return nil
	}
}

func (a *App) scan(ctx *core.Context, pkt *fh.Packet, t oran.Timing) {
	msg := ctx.UPlaneScratch(0)
	if err := pkt.UPlane(msg, a.cfg.Carrier.NumPRB); err != nil {
		return
	}
	thr := a.cfg.ThrDL
	if t.Direction == oran.Uplink {
		thr = a.cfg.ThrUL
	}
	tx := ctx.Transcoder()
	seen := 0
	util := 0
	for i := range msg.Sections {
		s := &msg.Sections[i]
		if s.Comp.Method != bfp.MethodBlockFloatingPoint {
			continue
		}
		if a.cfg.Method == EstimatorEnergy {
			size := s.Comp.PRBSize()
			for off := 0; off+size <= len(s.Payload); off += size {
				seen++
				var prb iq.PRB
				if _, _, err := bfp.DecompressPRB(s.Payload[off:], &prb, s.Comp); err != nil {
					break
				}
				if prb.Energy() > EnergyThreshold {
					util++
				}
			}
			continue
		}
		// Algorithm 1 fast path: one batched exponent sweep per section
		// through the shard's reusable buffer — no per-PRB call overhead,
		// no allocation.
		exps, err := tx.Exponents(s.Payload, s.Comp)
		if err != nil {
			continue
		}
		seen += len(exps)
		for _, e := range exps {
			if e > thr {
				util++
			}
		}
	}
	if a.cfg.Method == EstimatorEnergy {
		ctx.AddCost(cpu.DecompressCost(seen))
	} else {
		ctx.ChargeExponentScan(seen)
	}
	if t.Direction == oran.Uplink {
		a.utilUL.Add(uint64(util))
	} else {
		a.utilDL.Add(uint64(util))
	}
}

// maybePublish closes the reporting interval when it has elapsed. The
// compare-and-swap on the window start elects exactly one closer when
// several shards cross the boundary together.
func (a *App) maybePublish(ctx *core.Context) {
	ws := a.windowStart.Load()
	if ws == notStarted {
		return
	}
	now := ctx.Now()
	elapsed := now.Sub(sim.Time(ws))
	if elapsed < a.cfg.Interval {
		return
	}
	if !a.windowStart.CompareAndSwap(ws, int64(now)) {
		return // another shard closed this window
	}
	dlDen := a.gridPRBs(elapsed, a.cfg.TDD.DLSymbolFraction())
	ulDen := a.gridPRBs(elapsed, a.cfg.TDD.ULSymbolFraction())
	dl, ul := a.utilDL.Swap(0), a.utilUL.Swap(0)
	if dlDen > 0 {
		ctx.Publish(KPIUtilizationDL, float64(dl)/dlDen)
	}
	if ulDen > 0 {
		ctx.Publish(KPIUtilizationUL, float64(ul)/ulDen)
	}
}

// gridPRBs is the total PRB count of the cell's grid over a duration for
// one direction — Algorithm 1's denominator.
func (a *App) gridPRBs(elapsed sim.Duration, dirFraction float64) float64 {
	symbols := elapsed.Seconds() / phy.SymbolDuration.Seconds() * dirFraction
	return symbols * float64(a.cfg.Carrier.NumPRB)
}

// KernelProgram expresses the monitor as a pure-kernel XDP program
// (Table 1: PRB monitoring runs in kernel space): exponent statistics on
// every U-plane packet, with in-kernel forwarding to the opposite
// endpoint — nothing ever crosses to userspace. Utilization is read from
// the engine's shared counters ("prb.seen.*" / "prb.utilized.*").
func (a *App) KernelProgram() *core.KernelProgram {
	es := &core.ExponentStats{ThrDL: a.cfg.ThrDL, ThrUL: a.cfg.ThrUL}
	toRU := &core.Rewrite{SetDst: &a.cfg.RU, SetSrc: &a.cfg.MAC}
	toDU := &core.Rewrite{SetDst: &a.cfg.DU, SetSrc: &a.cfg.MAC}
	port0 := &core.Range{Min: 0, Max: 0}
	return &core.KernelProgram{Rules: []core.Rule{
		{Match: core.Match{Src: &a.cfg.DU, Plane: fh.PlaneU, RUPorts: port0}, Verdict: core.VerdictTx, Rewrite: toRU, Exponents: es},
		{Match: core.Match{Src: &a.cfg.RU, Plane: fh.PlaneU, RUPorts: port0}, Verdict: core.VerdictTx, Rewrite: toDU, Exponents: es},
		{Match: core.Match{Src: &a.cfg.DU}, Verdict: core.VerdictTx, Rewrite: toRU},
		{Match: core.Match{Src: &a.cfg.RU}, Verdict: core.VerdictTx, Rewrite: toDU},
	}}
}

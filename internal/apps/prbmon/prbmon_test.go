package prbmon

import (
	"testing"
	"time"

	"ranbooster/internal/bfp"
	"ranbooster/internal/core"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
	"ranbooster/internal/phy"
	"ranbooster/internal/sim"
	"ranbooster/internal/telemetry"
)

var (
	duMAC = eth.MAC{2, 0, 0, 0, 0, 0x40}
	mbMAC = eth.MAC{2, 0, 0, 0, 0, 0x41}
	ruMAC = eth.MAC{2, 0, 0, 0, 0, 0x42}
)

func bfp9() bfp.Params { return bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint} }

func newMon(t *testing.T, method Estimator) (*sim.Scheduler, *core.Engine, *App, *[][]byte) {
	t.Helper()
	app := New(Config{
		Name: "mon", MAC: mbMAC, DU: duMAC, RU: ruMAC,
		Carrier: phy.NewCarrier(40, 3_460_000_000), TDD: phy.MustTDD("DDDSU"),
		ThrDL: DefaultThrDL, ThrUL: DefaultThrUL,
		Method:   method,
		Interval: 10 * time.Millisecond,
	})
	s := sim.NewScheduler()
	eng, err := core.NewEngine(s, core.Config{Name: "mon", Mode: core.ModeDPDK, App: app, CarrierPRBs: 106})
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	eng.SetOutput(func(f []byte) { out = append(out, f) })
	return s, eng, app, &out
}

func frame(t *testing.T, b *fh.Builder, dir oran.Direction, port uint8, nPRB int, amp int16) []byte {
	t.Helper()
	g := iq.NewGrid(nPRB)
	for i := range g {
		for j := range g[i] {
			g[i][j] = iq.Sample{I: amp, Q: -amp / 2}
		}
	}
	payload, err := bfp.CompressGrid(nil, g, bfp9())
	if err != nil {
		t.Fatal(err)
	}
	msg := &oran.UPlaneMsg{
		Timing:   oran.Timing{Direction: dir, SymbolID: 3},
		Sections: []oran.USection{{NumPRB: nPRB, Comp: bfp9(), Payload: payload}},
	}
	return b.UPlane(ecpri.PcID{RUPort: port}, msg)
}

func TestAlgorithm1Counting(t *testing.T) {
	for _, method := range []Estimator{EstimatorExponent, EstimatorEnergy} {
		s, eng, app, _ := newMon(t, method)
		b := fh.NewBuilder(duMAC, mbMAC, -1)
		eng.Ingress(frame(t, b, oran.Downlink, 0, 10, 16000)) // utilized
		eng.Ingress(frame(t, b, oran.Downlink, 0, 10, 0))     // idle
		bRU := fh.NewBuilder(ruMAC, mbMAC, -1)
		eng.Ingress(frame(t, bRU, oran.Uplink, 0, 10, 300))   // noise: idle
		eng.Ingress(frame(t, bRU, oran.Uplink, 0, 10, 12000)) // data: utilized
		s.Run()
		if app.utilDL.Load() != 10 {
			t.Fatalf("method %d: utilDL = %d, want 10", method, app.utilDL.Load())
		}
		if app.utilUL.Load() != 10 {
			t.Fatalf("method %d: utilUL = %d, want 10", method, app.utilUL.Load())
		}
	}
}

func TestOnlyPortZeroCounted(t *testing.T) {
	s, eng, app, _ := newMon(t, EstimatorExponent)
	b := fh.NewBuilder(duMAC, mbMAC, -1)
	eng.Ingress(frame(t, b, oran.Downlink, 1, 10, 16000)) // layer 2: same grid
	s.Run()
	if app.utilDL.Load() != 0 {
		t.Fatalf("utilDL = %d; MIMO layers must not double count", app.utilDL.Load())
	}
}

func TestTransparentForwarding(t *testing.T) {
	s, eng, _, out := newMon(t, EstimatorExponent)
	b := fh.NewBuilder(duMAC, mbMAC, -1)
	orig := frame(t, b, oran.Downlink, 0, 10, 16000)
	eng.Ingress(orig)
	s.Run()
	if len(*out) != 1 {
		t.Fatalf("out = %d", len(*out))
	}
	var p fh.Packet
	if err := p.Decode((*out)[0]); err != nil {
		t.Fatal(err)
	}
	if p.Eth.Dst != ruMAC || p.Eth.Src != mbMAC {
		t.Fatalf("forwarded addressing %v -> %v", p.Eth.Src, p.Eth.Dst)
	}
	// Payload untouched (monitoring is passive): compare O-RAN payloads.
	var q fh.Packet
	if err := q.Decode(orig); err != nil {
		t.Fatal(err)
	}
	if string(p.App) != string(q.App) {
		t.Fatal("payload modified by a passive monitor")
	}
}

func TestPublishInterval(t *testing.T) {
	s, eng, _, _ := newMon(t, EstimatorExponent)
	rec := telemetry.NewRecorder()
	rec.Attach(eng.Bus(), "")
	b := fh.NewBuilder(duMAC, mbMAC, -1)
	// Feed packets across 25 ms of virtual time: at a 10 ms interval, at
	// least two publications must appear.
	for i := 0; i < 25; i++ {
		i := i
		s.At(sim.Time(i)*sim.Time(time.Millisecond), func() {
			eng.Ingress(frame(t, b, oran.Downlink, 0, 10, 16000))
		})
	}
	s.Run()
	if got := len(rec.Series(KPIUtilizationDL)); got < 2 {
		t.Fatalf("publications = %d", got)
	}
}

func TestControlSetThresholds(t *testing.T) {
	_, _, app, _ := newMon(t, EstimatorExponent)
	if err := app.Control("set-thr", map[string]string{"dl": "1", "ul": "3"}); err != nil {
		t.Fatal(err)
	}
	if app.cfg.ThrDL != 1 || app.cfg.ThrUL != 3 {
		t.Fatalf("thresholds %d/%d", app.cfg.ThrDL, app.cfg.ThrUL)
	}
	if err := app.Control("set-thr", map[string]string{"dl": "x"}); err == nil {
		t.Fatal("bad value accepted")
	}
	if err := app.Control("nope", nil); err == nil {
		t.Fatal("unknown command accepted")
	}
}

func TestKernelProgramVerifies(t *testing.T) {
	_, _, app, _ := newMon(t, EstimatorExponent)
	if err := app.KernelProgram().Verify(); err != nil {
		t.Fatal(err)
	}
}

// Package fhguard implements the fronthaul security middlebox sketched in
// §8.1: the open fronthaul mandates no integrity protection, so spoofed
// or replayed C/U-plane traffic can steer a cell's radio resources. The
// guard sits bump-in-the-wire and enforces a lightweight admission policy
// through inspection and drops (actions A4 + A1):
//
//   - frames whose source is not an enrolled DU/RU endpoint are dropped;
//   - per-eAxC eCPRI sequence numbers must advance; stalls and replays
//     beyond a tolerance are dropped and counted;
//   - C-plane from the RU side (an injection vector: RUs never originate
//     control) is dropped.
//
// Violations are published on the telemetry bus so an operator can react
// in real time — the monitor-and-mitigate alternative to heavyweight
// per-packet cryptography the paper argues for.
package fhguard

import (
	"ranbooster/internal/core"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/oran"
)

// KPIViolation is published (value = total violations) on each drop.
const KPIViolation = "fhguard.violation"

// Config describes one guard.
type Config struct {
	Name string
	MAC  eth.MAC
	// DU and RU are the enrolled endpoints of the protected segment.
	DU, RU eth.MAC
	// ReplayTolerance is how far backwards a sequence number may step
	// before the frame counts as a replay (reordering slack).
	ReplayTolerance uint8
}

// Stats counts enforcement outcomes.
type Stats struct {
	Forwarded     uint64
	UnknownSource uint64
	Replays       uint64
	RogueCPlane   uint64
}

// App is the guard middlebox.
type App struct {
	cfg   Config
	seq   map[seqKey]uint8
	stats Stats
}

type seqKey struct {
	src  eth.MAC
	eaxc uint16
	typ  uint8
}

// New builds the guard.
func New(cfg Config) *App {
	if cfg.ReplayTolerance == 0 {
		cfg.ReplayTolerance = 8
	}
	return &App{cfg: cfg, seq: make(map[seqKey]uint8)}
}

// Name implements core.App.
func (a *App) Name() string { return a.cfg.Name }

// Serial implements core.SerialApp: the replay-window map and the
// enforcement counters are plain cross-stream state, so Handle must stay
// on a single shard.
func (a *App) Serial() {}

// Stats returns a snapshot of the enforcement counters.
func (a *App) Stats() Stats { return a.stats }

// Handle implements core.App.
//
//ranvet:hotpath
//ranvet:detpath
func (a *App) Handle(ctx *core.Context, pkt *fh.Packet) error {
	src := pkt.Eth.Src
	if src != a.cfg.DU && src != a.cfg.RU {
		a.stats.UnknownSource++
		a.violate(ctx, pkt)
		return nil
	}
	// RUs never originate C-plane: control from the RU side is injection.
	if src == a.cfg.RU && pkt.Plane() == fh.PlaneC {
		a.stats.RogueCPlane++
		a.violate(ctx, pkt)
		return nil
	}
	// Sequence discipline per (source, eAxC, plane).
	k := seqKey{src: src, eaxc: pkt.EAxC().Uint16(), typ: uint8(pkt.Plane())}
	if last, ok := a.seq[k]; ok {
		if delta := pkt.Ecpri.SeqID - last; delta == 0 || delta > 128 {
			// Not advancing (or stepping far backwards): replay. Allow the
			// configured reordering slack.
			if back := last - pkt.Ecpri.SeqID; back <= a.cfg.ReplayTolerance && back > 0 {
				// tolerated reordering: forward without updating state
				return a.forward(ctx, pkt, src)
			}
			a.stats.Replays++
			a.violate(ctx, pkt)
			return nil
		}
	}
	a.seq[k] = pkt.Ecpri.SeqID
	return a.forward(ctx, pkt, src)
}

func (a *App) forward(ctx *core.Context, pkt *fh.Packet, src eth.MAC) error {
	a.stats.Forwarded++
	dst := a.cfg.RU
	if src == a.cfg.RU {
		dst = a.cfg.DU
	}
	return ctx.Redirect(pkt, dst, a.cfg.MAC, -1)
}

func (a *App) violate(ctx *core.Context, pkt *fh.Packet) {
	ctx.Drop(pkt)
	total := a.stats.UnknownSource + a.stats.Replays + a.stats.RogueCPlane
	ctx.Publish(KPIViolation, float64(total))
}

// Timing is re-exported so tests can build attack traffic conveniently.
type Timing = oran.Timing

package fhguard

import (
	"testing"

	"ranbooster/internal/bfp"
	"ranbooster/internal/core"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/oran"
	"ranbooster/internal/sim"
)

var (
	duMAC    = eth.MAC{2, 0, 0, 0, 0, 0x70}
	mbMAC    = eth.MAC{2, 0, 0, 0, 0, 0x71}
	ruMAC    = eth.MAC{2, 0, 0, 0, 0, 0x72}
	evilMAC  = eth.MAC{6, 6, 6, 6, 6, 6}
	carriers = 106
)

func bfp9() bfp.Params { return bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint} }

func newGuard(t *testing.T) (*sim.Scheduler, *core.Engine, *App, *[][]byte) {
	t.Helper()
	app := New(Config{Name: "guard", MAC: mbMAC, DU: duMAC, RU: ruMAC})
	s := sim.NewScheduler()
	eng, err := core.NewEngine(s, core.Config{Name: "guard", Mode: core.ModeDPDK, App: app, CarrierPRBs: carriers})
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	eng.SetOutput(func(f []byte) { out = append(out, f) })
	return s, eng, app, &out
}

func uFrame(b *fh.Builder, dir oran.Direction) []byte {
	msg := &oran.UPlaneMsg{
		Timing:   oran.Timing{Direction: dir, SymbolID: 3},
		Sections: []oran.USection{{NumPRB: 2, Comp: bfp9(), Payload: make([]byte, 2*28)}},
	}
	return b.UPlane(ecpri.PcID{RUPort: 0}, msg)
}

func cFrame(b *fh.Builder, dir oran.Direction) []byte {
	msg := &oran.CPlaneMsg{
		Timing:      oran.Timing{Direction: dir},
		SectionType: oran.SectionType1,
		Sections:    []oran.CSection{{NumPRB: 2, ReMask: 0xfff, NumSymbol: 1}},
	}
	return b.CPlane(ecpri.PcID{RUPort: 0}, msg)
}

func TestGuardPaths(t *testing.T) {
	s, eng, app, out := newGuard(t)
	bDU := fh.NewBuilder(duMAC, mbMAC, -1)
	bRU := fh.NewBuilder(ruMAC, mbMAC, -1)
	bEvil := fh.NewBuilder(evilMAC, mbMAC, -1)

	// Legitimate DU C+U and RU U traffic flows, re-addressed.
	eng.Ingress(cFrame(bDU, oran.Downlink))
	eng.Ingress(uFrame(bDU, oran.Downlink))
	eng.Ingress(uFrame(bRU, oran.Uplink))
	s.Run()
	if len(*out) != 3 || app.Stats().Forwarded != 3 {
		t.Fatalf("forwarded=%d out=%d", app.Stats().Forwarded, len(*out))
	}
	var p fh.Packet
	if err := p.Decode((*out)[0]); err != nil {
		t.Fatal(err)
	}
	if p.Eth.Dst != ruMAC {
		t.Fatalf("DU traffic forwarded to %v", p.Eth.Dst)
	}

	// Unknown source: dropped and counted.
	n := len(*out)
	eng.Ingress(uFrame(bEvil, oran.Downlink))
	s.Run()
	if len(*out) != n || app.Stats().UnknownSource != 1 {
		t.Fatalf("spoofed frame not dropped: %+v", app.Stats())
	}

	// C-plane from the RU side: injection, dropped.
	eng.Ingress(cFrame(bRU, oran.Uplink))
	s.Run()
	if app.Stats().RogueCPlane != 1 {
		t.Fatalf("rogue C-plane not flagged: %+v", app.Stats())
	}
}

func TestReplayDetection(t *testing.T) {
	s, eng, app, out := newGuard(t)
	bDU := fh.NewBuilder(duMAC, mbMAC, -1)
	// Record a legitimate frame, then replay the exact bytes.
	legit := uFrame(bDU, oran.Downlink)
	replay := append([]byte(nil), legit...)
	eng.Ingress(legit)
	s.Run()
	n := len(*out)
	eng.Ingress(replay)
	s.Run()
	if len(*out) != n {
		t.Fatal("replayed frame forwarded")
	}
	if app.Stats().Replays != 1 {
		t.Fatalf("replays = %d", app.Stats().Replays)
	}
	// Fresh sequence numbers keep flowing.
	eng.Ingress(uFrame(bDU, oran.Downlink))
	s.Run()
	if len(*out) != n+1 {
		t.Fatal("fresh frame blocked after a replay")
	}
}

func TestReorderingTolerated(t *testing.T) {
	s, eng, app, out := newGuard(t)
	bDU := fh.NewBuilder(duMAC, mbMAC, -1)
	f1 := uFrame(bDU, oran.Downlink) // seq 0
	f2 := uFrame(bDU, oran.Downlink) // seq 1
	f3 := uFrame(bDU, oran.Downlink) // seq 2
	eng.Ingress(f1)
	eng.Ingress(f3) // seq 2 arrives before seq 1
	eng.Ingress(f2) // one step back: tolerated reordering
	s.Run()
	if app.Stats().Replays != 0 {
		t.Fatalf("reordering counted as replay: %+v", app.Stats())
	}
	if len(*out) != 3 {
		t.Fatalf("out = %d", len(*out))
	}
}

package rushare

import (
	"math/bits"

	"ranbooster/internal/core"
	"ranbooster/internal/fh"
	"ranbooster/internal/oran"
	"ranbooster/internal/phy"
)

// Algorithm 3: PRACH multiplexing. Unlike data channels, the RU returns
// only the PRBs each type 3 section requested, so the middlebox appends
// every DU's sections into one C-plane message — after translating each
// frequency offset into the RU's spectrum (Appendix A.1.2) and stamping
// the owning DU's id into the section id — and demultiplexes the uplink
// response sections by that id.

// prachCPlane caches tenant requests and emits the merged message once
// every tenant's occasion request arrived.
func (a *App) prachCPlane(ctx *core.Context, pkt *fh.Packet, t oran.Timing) error {
	key := cKey(t, pkt.EAxC().RUPort, true)
	ctx.Cache(key, pkt)
	if bits.OnesCount64(a.duSet(ctx.Cached(key))) < len(a.cfg.DUs) {
		return nil
	}
	pkts := ctx.TakeCached(key)
	out := oran.CPlaneMsg{
		Timing:      t,
		SectionType: oran.SectionType3,
		Comp:        a.cfg.Comp,
	}
	var msg oran.CPlaneMsg
	for _, p := range pkts {
		idx := a.byMAC[p.Eth.Src]
		du := a.cfg.DUs[idx]
		if err := p.CPlane(&msg, du.Carrier.NumPRB); err != nil {
			return err
		}
		out.TimeOffset = msg.TimeOffset
		out.FrameStructure = msg.FrameStructure
		out.CPLength = msg.CPLength
		for i := range msg.Sections {
			s := msg.Sections[i]
			s.FreqOffset = phy.TranslateFreqOffset(s.FreqOffset, du.Carrier, a.cfg.RUCarrier)
			s.SectionID = uint16(du.PortID)
			ctx.ChargeHeaderMod()
			//ranvet:allow alloc merged PRACH message built once per occasion, not per frame
			out.Sections = append(out.Sections, s)
		}
	}
	merged := fh.Rebuild(pkts[0], out.AppendTo)
	a.PRACHMuxed.Add(1)
	return ctx.Redirect(merged, a.cfg.RU, a.cfg.MAC, -1)
}

// prachULDemux splits the RU's PRACH response: each DU receives a packet
// holding only the sections stamped with its id.
func (a *App) prachULDemux(ctx *core.Context, pkt *fh.Packet, t oran.Timing) error {
	tx := ctx.Transcoder()
	tx.Reset()
	msg := ctx.UPlaneScratch(0)
	if err := pkt.UPlane(msg, a.cfg.RUCarrier.NumPRB); err != nil {
		return err
	}
	out := ctx.UPlaneScratch(1)
	for idx := range a.cfg.DUs {
		du := a.cfg.DUs[idx]
		*out = oran.UPlaneMsg{Timing: t, Sections: out.Sections[:0]}
		for i := range msg.Sections {
			if msg.Sections[i].SectionID == uint16(du.PortID) {
				s := msg.Sections[i]
				s.Payload = tx.AppendBytes(s.Payload)
				//ranvet:allow alloc appends into the shard's reusable staging message; the backing array amortizes across occasions
				out.Sections = append(out.Sections, s)
			}
		}
		if len(out.Sections) == 0 {
			continue
		}
		replica := ctx.Replicate(pkt)
		rebuilt := fh.Rebuild(replica, out.AppendTo)
		pc := rebuilt.EAxC()
		pc.DUPort = du.PortID
		rebuilt.SetEAxC(pc)
		ctx.ChargeHeaderMod()
		if err := ctx.Redirect(rebuilt, du.MAC, a.cfg.MAC, -1); err != nil {
			return err
		}
	}
	ctx.Drop(pkt)
	return nil
}

package rushare

import (
	"testing"

	"ranbooster/internal/bfp"
	"ranbooster/internal/core"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
	"ranbooster/internal/phy"
	"ranbooster/internal/sim"
)

var (
	duA   = eth.MAC{2, 0, 0, 0, 0, 0x30}
	duB   = eth.MAC{2, 0, 0, 0, 0, 0x31}
	mbMAC = eth.MAC{2, 0, 0, 0, 0, 0x32}
	ruMAC = eth.MAC{2, 0, 0, 0, 0, 0x33}
)

func bfp9() bfp.Params { return bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint} }

// fixture: 100 MHz RU shared by two aligned 40 MHz DUs (A at PRB 0, B at
// PRB 167).
func fixture(t *testing.T, aligned bool) (*sim.Scheduler, *core.Engine, *App, *[][]byte, phy.Carrier, phy.Carrier, phy.Carrier) {
	t.Helper()
	ru := phy.NewCarrier(100, 3_460_000_000)
	duPRBs := phy.PRBsFor(40)
	cA := phy.AlignedDUCenterHz(ru, 0, duPRBs)
	cB := phy.AlignedDUCenterHz(ru, ru.NumPRB-duPRBs, duPRBs)
	if !aligned {
		cA += phy.SCS / 2
		cB += phy.SCS / 2
	}
	carA := phy.Carrier{BandwidthMHz: 40, CenterHz: cA, NumPRB: duPRBs}
	carB := phy.Carrier{BandwidthMHz: 40, CenterHz: cB, NumPRB: duPRBs}
	app, err := New(Config{
		Name: "sh", MAC: mbMAC, RU: ruMAC, RUCarrier: ru, Comp: bfp9(),
		DUs: []DUInfo{
			{MAC: duA, Carrier: carA, PortID: 1},
			{MAC: duB, Carrier: carB, PortID: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.NewScheduler()
	eng, err := core.NewEngine(s, core.Config{Name: "sh", Mode: core.ModeDPDK, App: app, CarrierPRBs: ru.NumPRB})
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	eng.SetOutput(func(f []byte) { out = append(out, f) })
	return s, eng, app, &out, ru, carA, carB
}

func TestNewRejectsOutOfSpectrumTenant(t *testing.T) {
	ru := phy.NewCarrier(40, 3_460_000_000)
	big := phy.NewCarrier(100, 3_460_000_000)
	_, err := New(Config{
		Name: "bad", MAC: mbMAC, RU: ruMAC, RUCarrier: ru, Comp: bfp9(),
		DUs: []DUInfo{{MAC: duA, Carrier: big, PortID: 1}},
	})
	if err == nil {
		t.Fatal("tenant wider than the RU accepted")
	}
}

func cplane(b *fh.Builder, dir oran.Direction, numPRB int, sym uint8) []byte {
	msg := &oran.CPlaneMsg{
		Timing:      oran.Timing{Direction: dir, FrameID: 3, SymbolID: sym},
		SectionType: oran.SectionType1,
		Comp:        bfp9(),
		Sections:    []oran.CSection{{SectionID: 1, StartPRB: 0, NumPRB: numPRB, ReMask: 0xfff, NumSymbol: 1}},
	}
	return b.CPlane(ecpri.PcID{RUPort: 0}, msg)
}

func uplane(t *testing.T, b *fh.Builder, dir oran.Direction, startPRB, numPRB int, sym uint8, amp int16) []byte {
	t.Helper()
	g := iq.NewGrid(numPRB)
	for i := range g {
		for j := range g[i] {
			g[i][j] = iq.Sample{I: amp, Q: -amp / 2}
		}
	}
	payload, err := bfp.CompressGrid(nil, g, bfp9())
	if err != nil {
		t.Fatal(err)
	}
	msg := &oran.UPlaneMsg{
		Timing:   oran.Timing{Direction: dir, FrameID: 3, SymbolID: sym},
		Sections: []oran.USection{{StartPRB: startPRB, NumPRB: numPRB, Comp: bfp9(), Payload: payload}},
	}
	return b.UPlane(ecpri.PcID{RUPort: 0}, msg)
}

func TestFirstCPlaneWidenedAndForwarded(t *testing.T) {
	s, eng, _, out, ru, _, _ := fixture(t, true)
	bA := fh.NewBuilder(duA, mbMAC, -1)
	bB := fh.NewBuilder(duB, mbMAC, -1)
	eng.Ingress(cplane(bA, oran.Downlink, 106, 0))
	eng.Ingress(cplane(bB, oran.Downlink, 106, 0)) // second: cached only
	s.Run()
	if len(*out) != 1 {
		t.Fatalf("forwarded %d C-planes, want 1 (Algorithm 2 line 4)", len(*out))
	}
	var p fh.Packet
	if err := p.Decode((*out)[0]); err != nil {
		t.Fatal(err)
	}
	if p.Eth.Dst != ruMAC {
		t.Fatalf("dst = %v", p.Eth.Dst)
	}
	var msg oran.CPlaneMsg
	if err := p.CPlane(&msg, ru.NumPRB); err != nil {
		t.Fatal(err)
	}
	if msg.Sections[0].StartPRB != 0 || msg.Sections[0].NumPRB != ru.NumPRB {
		t.Fatalf("not widened: %+v", msg.Sections[0])
	}
}

func TestDownlinkMuxPlacesPRBsAtRUPositions(t *testing.T) {
	s, eng, app, out, ru, _, _ := fixture(t, true)
	bA := fh.NewBuilder(duA, mbMAC, -1)
	bB := fh.NewBuilder(duB, mbMAC, -1)
	// Both DUs request, then both deliver IQ for symbol 2.
	eng.Ingress(cplane(bA, oran.Downlink, 106, 2))
	eng.Ingress(cplane(bB, oran.Downlink, 106, 2))
	eng.Ingress(uplane(t, bA, oran.Downlink, 10, 4, 2, 8000))
	eng.Ingress(uplane(t, bB, oran.Downlink, 20, 4, 2, 9000))
	s.Run()
	if app.Muxed.Load() != 1 {
		t.Fatalf("muxed = %d", app.Muxed.Load())
	}
	// Last emission is the merged U-plane.
	var p fh.Packet
	if err := p.Decode((*out)[len(*out)-1]); err != nil {
		t.Fatal(err)
	}
	var msg oran.UPlaneMsg
	if err := p.UPlane(&msg, ru.NumPRB); err != nil {
		t.Fatal(err)
	}
	if len(msg.Sections) != 2 {
		t.Fatalf("sections = %d", len(msg.Sections))
	}
	starts := map[int]bool{}
	for _, sec := range msg.Sections {
		starts[sec.StartPRB] = true
	}
	// DU A offset 0 (PRB 10 stays 10); DU B offset 167 (PRB 20 -> 187).
	if !starts[10] || !starts[187] {
		t.Fatalf("section positions = %v, want {10, 187}", starts)
	}
	if p.EAxC().BandSector != 0 {
		t.Fatalf("combined stream should clear BandSector, got %d", p.EAxC().BandSector)
	}
}

func TestMuxWaitsForAllRequesters(t *testing.T) {
	s, eng, app, _, _, _, _ := fixture(t, true)
	bA := fh.NewBuilder(duA, mbMAC, -1)
	bB := fh.NewBuilder(duB, mbMAC, -1)
	eng.Ingress(cplane(bA, oran.Downlink, 106, 2))
	eng.Ingress(cplane(bB, oran.Downlink, 106, 2))
	eng.Ingress(uplane(t, bA, oran.Downlink, 10, 4, 2, 8000))
	s.Run()
	if app.Muxed.Load() != 0 {
		t.Fatal("muxed before DU B delivered")
	}
}

func TestSilentTenantIsNotAwaited(t *testing.T) {
	s, eng, app, _, _, _, _ := fixture(t, true)
	bA := fh.NewBuilder(duA, mbMAC, -1)
	// Only DU A requests this symbol; its U-plane must flow immediately.
	eng.Ingress(cplane(bA, oran.Downlink, 106, 2))
	eng.Ingress(uplane(t, bA, oran.Downlink, 10, 4, 2, 8000))
	s.Run()
	if app.Muxed.Load() != 1 {
		t.Fatalf("muxed = %d (silent tenant must not block)", app.Muxed.Load())
	}
}

func TestUplinkDemuxCarvesPerTenant(t *testing.T) {
	s, eng, app, out, ru, carA, carB := fixture(t, true)
	bA := fh.NewBuilder(duA, mbMAC, -1)
	bB := fh.NewBuilder(duB, mbMAC, -1)
	bRU := fh.NewBuilder(ruMAC, mbMAC, -1)
	// Both DUs request uplink symbol 12.
	eng.Ingress(cplane(bA, oran.Uplink, 106, 12))
	eng.Ingress(cplane(bB, oran.Uplink, 106, 12))
	// RU returns the full 273-PRB spectrum.
	eng.Ingress(uplane(t, bRU, oran.Uplink, 0, ru.NumPRB, 12, 5000))
	s.Run()
	if app.Demuxed.Load() != 2 {
		t.Fatalf("demuxed = %d", app.Demuxed.Load())
	}
	got := map[eth.MAC]*oran.UPlaneMsg{}
	for _, f := range *out {
		var p fh.Packet
		if err := p.Decode(f); err != nil {
			t.Fatal(err)
		}
		if p.Plane() != fh.PlaneU {
			continue
		}
		tm, _ := p.Timing()
		if tm.Direction != oran.Uplink {
			continue
		}
		var msg oran.UPlaneMsg
		// Replica sections are re-based onto the DU grid.
		if err := p.UPlane(&msg, carA.NumPRB); err != nil {
			t.Fatal(err)
		}
		cp := msg
		got[p.Eth.Dst] = &cp
	}
	for _, mac := range []eth.MAC{duA, duB} {
		msg := got[mac]
		if msg == nil {
			t.Fatalf("no uplink replica for %v", mac)
		}
		if msg.Sections[0].StartPRB != 0 || msg.Sections[0].NumPRB != carA.NumPRB {
			t.Fatalf("%v: section %+v, want full re-based 40 MHz", mac, msg.Sections[0])
		}
	}
	_ = carB
}

// TestMuxDemuxSteadyStateAllocs pins the allocation budget of one full
// sharing cycle on the misaligned (transcoding) path: both DUs deliver
// downlink IQ that is muxed onto the RU grid, and the RU's uplink spectrum
// is carved back per tenant. The C-plane requests are slot-scoped and
// cached once up front; every per-cycle decode grid, re-encoded payload
// and staging message comes from the shard's pooled Transcoder, so the
// remaining allocations are the fixed per-frame packet/emit/scheduler
// overhead — nothing proportional to the carrier.
func TestMuxDemuxSteadyStateAllocs(t *testing.T) {
	s, eng, app, _, ru, _, _ := fixture(t, false)
	eng.SetOutput(func([]byte) {})
	bA := fh.NewBuilder(duA, mbMAC, -1)
	bB := fh.NewBuilder(duB, mbMAC, -1)
	bRU := fh.NewBuilder(ruMAC, mbMAC, -1)
	eng.Ingress(cplane(bA, oran.Downlink, 106, 2))
	eng.Ingress(cplane(bB, oran.Downlink, 106, 2))
	eng.Ingress(cplane(bA, oran.Uplink, 106, 12))
	eng.Ingress(cplane(bB, oran.Uplink, 106, 12))
	s.Run()
	upA := uplane(t, bA, oran.Downlink, 10, 16, 2, 8000)
	upB := uplane(t, bB, oran.Downlink, 20, 16, 2, 9000)
	upRU := uplane(t, bRU, oran.Uplink, 0, ru.NumPRB, 12, 5000)
	cycle := func() {
		eng.Ingress(upA)
		eng.Ingress(upB)
		eng.Ingress(upRU)
		s.Run()
	}
	for i := 0; i < 64; i++ {
		cycle()
	}
	muxed, demuxed := app.Muxed.Load(), app.Demuxed.Load()
	avg := testing.AllocsPerRun(200, cycle)
	if app.Muxed.Load() == muxed || app.Demuxed.Load() == demuxed {
		t.Fatal("cycle stopped muxing/demuxing")
	}
	const budget = 26 // measured 24 and invariant in section size; the transcode itself is alloc-free
	if avg > budget {
		t.Fatalf("sharing cycle allocates %.1f objects, budget %d", avg, budget)
	}
	t.Logf("sharing cycle allocations: %.1f", avg)
}

func TestPRACHMuxTranslatesFreqOffsets(t *testing.T) {
	s, eng, app, out, ru, carA, carB := fixture(t, true)
	bA := fh.NewBuilder(duA, mbMAC, -1)
	bB := fh.NewBuilder(duB, mbMAC, -1)
	prach := func(b *fh.Builder, car phy.Carrier) []byte {
		msg := &oran.CPlaneMsg{
			Timing:      oran.Timing{Direction: oran.Uplink, FilterIndex: 1, FrameID: 3, SymbolID: 0},
			SectionType: oran.SectionType3,
			Comp:        bfp9(),
			Sections: []oran.CSection{{
				SectionID: 7, StartPRB: 2, NumPRB: 12, ReMask: 0xfff, NumSymbol: 2,
				FreqOffset: phy.FreqOffsetForPRB(car, 2),
			}},
		}
		return b.CPlane(ecpri.PcID{RUPort: 0}, msg)
	}
	eng.Ingress(prach(bA, carA))
	eng.Ingress(prach(bB, carB))
	s.Run()
	if app.PRACHMuxed.Load() != 1 {
		t.Fatalf("prach muxed = %d", app.PRACHMuxed.Load())
	}
	var p fh.Packet
	if err := p.Decode((*out)[len(*out)-1]); err != nil {
		t.Fatal(err)
	}
	var msg oran.CPlaneMsg
	if err := p.CPlane(&msg, ru.NumPRB); err != nil {
		t.Fatal(err)
	}
	if len(msg.Sections) != 2 {
		t.Fatalf("merged sections = %d (Algorithm 3 line 5)", len(msg.Sections))
	}
	for _, sec := range msg.Sections {
		var car phy.Carrier
		switch sec.SectionID {
		case 1:
			car = carA
		case 2:
			car = carB
		default:
			t.Fatalf("section id %d, want the DU ids", sec.SectionID)
		}
		// The translated offset must point at the same physical frequency
		// the DU requested (the eq. 11 correctness condition).
		if got := phy.PRBForFreqOffset(ru, sec.FreqOffset); got != offsetOf(ru, car)+2 {
			t.Fatalf("section %d points at RU PRB %d", sec.SectionID, got)
		}
	}
}

func offsetOf(ru, du phy.Carrier) int {
	off, _ := phy.PRBOffset(ru, du)
	return off
}

func TestPRACHDemuxBySectionID(t *testing.T) {
	s, eng, _, out, ru, _, _ := fixture(t, true)
	bRU := fh.NewBuilder(ruMAC, mbMAC, -1)
	msg := &oran.UPlaneMsg{
		Timing: oran.Timing{Direction: oran.Uplink, FilterIndex: 1, FrameID: 3, SymbolID: 0},
		Sections: []oran.USection{
			{SectionID: 1, StartPRB: 2, NumPRB: 12, Comp: bfp9(), Payload: make([]byte, 12*28)},
			{SectionID: 2, StartPRB: 169, NumPRB: 12, Comp: bfp9(), Payload: make([]byte, 12*28)},
		},
	}
	eng.Ingress(bRU.UPlane(ecpri.PcID{RUPort: 0}, msg))
	s.Run()
	byDst := map[eth.MAC]uint16{}
	for _, f := range *out {
		var p fh.Packet
		if err := p.Decode(f); err != nil {
			t.Fatal(err)
		}
		var m oran.UPlaneMsg
		if err := p.UPlane(&m, ru.NumPRB); err != nil {
			t.Fatal(err)
		}
		if len(m.Sections) != 1 {
			t.Fatalf("replica carries %d sections", len(m.Sections))
		}
		byDst[p.Eth.Dst] = m.Sections[0].SectionID
	}
	if byDst[duA] != 1 || byDst[duB] != 2 {
		t.Fatalf("demux = %v", byDst)
	}
}

func TestMisalignedPathTranscodes(t *testing.T) {
	s, eng, app, _, _, _, _ := fixture(t, false)
	if app.Aligned(0) || app.Aligned(1) {
		t.Fatal("fixture should be misaligned")
	}
	bA := fh.NewBuilder(duA, mbMAC, -1)
	eng.Ingress(cplane(bA, oran.Downlink, 106, 2))
	eng.Ingress(uplane(t, bA, oran.Downlink, 10, 4, 2, 8000))
	s.Run()
	if app.Recompress.Load() == 0 || app.AlignedCopies.Load() != 0 {
		t.Fatalf("fast=%d transcode=%d", app.AlignedCopies.Load(), app.Recompress.Load())
	}
}

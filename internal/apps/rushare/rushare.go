// Package rushare implements the RU-sharing middlebox of §4.3 and
// Appendix A.1: one RU's spectrum multiplexed across several DUs
// (neutral-host deployments).
//
// Downlink, per Algorithm 2: the first C-plane message for a (slot,
// port) is widened to the RU's full spectrum and forwarded; all C-plane
// messages are cached. U-plane packets are cached until every DU that
// issued a C-plane request has delivered its IQ, then their PRBs are
// copied into one combined packet at the correct position in the RU's
// grid — a plain compressed copy when the DU's PRB grid is aligned with
// the RU's (the DU center frequency chosen per Appendix A.1.1), a
// decompress/recompress otherwise (Fig. 6).
//
// Uplink: the RU's full-spectrum U-plane is replicated per requesting DU
// and each replica carries only that DU's PRB window, re-based to the
// DU's own grid.
//
// PRACH, per Algorithm 3: the DUs' section type 3 requests are merged
// into one message whose sections carry the RU-spectrum-translated
// frequency offsets (Appendix A.1.2) and the owning DU's id; uplink
// PRACH sections are demultiplexed back by section id.
package rushare

import (
	"fmt"
	"sync/atomic"

	"ranbooster/internal/bfp"
	"ranbooster/internal/core"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/oran"
	"ranbooster/internal/phy"
)

// DUInfo describes one sharing tenant.
type DUInfo struct {
	MAC     eth.MAC
	Carrier phy.Carrier
	// PortID is the DU's eCPRI DU-port id, reused as the PRACH section id
	// namespace (Algorithm 3).
	PortID uint8
}

// Config describes one RU-sharing middlebox.
type Config struct {
	Name      string
	MAC       eth.MAC
	RU        eth.MAC
	RUCarrier phy.Carrier
	Comp      bfp.Params
	DUs       []DUInfo
}

// MaxDUs bounds the number of sharing tenants: DU membership sets are
// tracked as uint64 bitmasks on the datapath.
const MaxDUs = 64

// App is the RU-sharing middlebox.
type App struct {
	cfg    Config
	byMAC  map[eth.MAC]int
	offset []int  // PRB offset of each DU's grid within the RU's
	align  []bool // aligned fast path available?

	// Observability counters. Atomic types so that readers racing
	// parallel engine workers cannot accidentally use a plain load.
	Muxed, Demuxed, PRACHMuxed atomic.Uint64
	AlignedCopies, Recompress  atomic.Uint64
}

// New builds the middlebox, resolving each DU's grid placement.
func New(cfg Config) (*App, error) {
	if len(cfg.DUs) > MaxDUs {
		return nil, fmt.Errorf("rushare: %d DUs exceed the %d-tenant bound", len(cfg.DUs), MaxDUs)
	}
	a := &App{cfg: cfg, byMAC: make(map[eth.MAC]int)}
	for i, d := range cfg.DUs {
		off, aligned := phy.PRBOffset(cfg.RUCarrier, d.Carrier)
		if off < 0 || off+d.Carrier.NumPRB > cfg.RUCarrier.NumPRB {
			return nil, fmt.Errorf("rushare: DU %d spectrum outside the RU's (offset %d)", i, off)
		}
		a.byMAC[d.MAC] = i
		a.offset = append(a.offset, off)
		a.align = append(a.align, aligned)
	}
	return a, nil
}

// Name implements core.App.
func (a *App) Name() string { return a.cfg.Name }

// Aligned reports whether tenant i enjoys the aligned fast path.
func (a *App) Aligned(i int) bool { return a.align[i] }

// Handle implements core.App.
//
//ranvet:hotpath
//ranvet:detpath
func (a *App) Handle(ctx *core.Context, pkt *fh.Packet) error {
	if i, ok := a.byMAC[pkt.Eth.Src]; ok {
		return a.fromDU(ctx, pkt, i)
	}
	if pkt.Eth.Src == a.cfg.RU {
		return a.fromRU(ctx, pkt)
	}
	ctx.Drop(pkt)
	return nil
}

// HandleBurst implements core.BurstApp: each packet of the burst runs the
// per-frame mux/demux logic, with per-packet failures isolated through
// Context.PacketError — a malformed tenant message must not discard the
// other tenants' frames of the same burst.
//
//ranvet:hotpath
//ranvet:detpath
func (a *App) HandleBurst(ctx *core.Context, pkts []*fh.Packet) error {
	for _, pkt := range pkts {
		if err := a.Handle(ctx, pkt); err != nil {
			ctx.PacketError(pkt, err)
		}
	}
	return nil
}

// Cache keys: C-plane state is slot-scoped per RU port; U-plane state is
// symbol-scoped per RU port. The eAxC field carries only the RU port so
// packets of different DUs share a key.
func cKey(t oran.Timing, port uint8, prach bool) fh.Key {
	k := fh.Key{Sym: oran.SymbolRef{Slot: oran.SlotOf(t)}, EAxC: uint16(port), Dir: t.Direction}
	if prach {
		k.EAxC |= 0x8000
	}
	return k
}

func uKey(t oran.Timing, port uint8) fh.Key {
	return fh.Key{Sym: oran.SymbolOf(t), EAxC: uint16(port) | 0x4000, Dir: t.Direction}
}

// fromDU implements the downlink halves of Algorithms 2 and 3.
func (a *App) fromDU(ctx *core.Context, pkt *fh.Packet, idx int) error {
	t, err := pkt.Timing()
	if err != nil {
		return err
	}
	if pkt.Plane() == fh.PlaneC {
		if t.FilterIndex == 1 {
			return a.prachCPlane(ctx, pkt, t)
		}
		return a.dataCPlane(ctx, pkt, t, idx)
	}
	if t.Direction != oran.Downlink {
		ctx.Drop(pkt)
		return nil
	}
	return a.dlUPlane(ctx, pkt, t, idx)
}

// dataCPlane caches every request and forwards only the first per (slot,
// port), widened to the RU's whole spectrum (Algorithm 2 lines 3-7).
func (a *App) dataCPlane(ctx *core.Context, pkt *fh.Packet, t oran.Timing, idx int) error {
	key := cKey(t, pkt.EAxC().RUPort, false)
	first := ctx.CachedCount(key) == 0
	ctx.Cache(key, pkt)
	if !first {
		return nil
	}
	//ranvet:allow alloc widening closure runs once per (slot, port): only the first C-plane request is widened
	widened, err := ctx.ModifyCPlane(pkt.Clone(), a.cfg.DUs[idx].Carrier.NumPRB, func(msg *oran.CPlaneMsg) error {
		for i := range msg.Sections {
			msg.Sections[i].StartPRB = 0
			msg.Sections[i].NumPRB = a.cfg.RUCarrier.NumPRB
		}
		msg.Comp = a.cfg.Comp
		return nil
	})
	if err != nil {
		return err
	}
	return ctx.Redirect(widened, a.cfg.RU, a.cfg.MAC, -1)
}

// dlUPlane caches downlink IQ and, once every requesting DU delivered the
// (symbol, port), multiplexes all PRBs into one packet for the RU
// (Algorithm 2 lines 9-15).
func (a *App) dlUPlane(ctx *core.Context, pkt *fh.Packet, t oran.Timing, idx int) error {
	ukey := uKey(t, pkt.EAxC().RUPort)
	ctx.Cache(ukey, pkt)
	ckey := cKey(t, pkt.EAxC().RUPort, false)
	needed := a.duSet(ctx.Cached(ckey))
	have := a.duSet(ctx.Cached(ukey))
	if needed == 0 || !subset(needed, have) {
		return nil
	}
	pkts := ctx.TakeCached(ukey)
	merged, err := a.muxDL(ctx, pkts, t)
	if err != nil {
		return err
	}
	a.Muxed.Add(1)
	return ctx.Redirect(merged, a.cfg.RU, a.cfg.MAC, -1)
}

// duSet maps cached packets to the set of source DUs, as a bitmask over
// tenant indices (New bounds tenants to MaxDUs). A plain integer keeps
// mux decisions allocation-free on the datapath.
func (a *App) duSet(pkts []*fh.Packet) uint64 {
	var out uint64
	for _, p := range pkts {
		if i, ok := a.byMAC[p.Eth.Src]; ok {
			out |= 1 << uint(i)
		}
	}
	return out
}

// subset reports whether every DU in needed also appears in have.
func subset(needed, have uint64) bool { return needed&^have == 0 }

// muxDL combines the cached DL U-plane packets into one full-position
// message on the RU grid. Decode scratch, relocated payloads and the
// combined message all come from the shard's pooled scratch, so a
// steady-state mux allocates only the rebuilt output frame.
func (a *App) muxDL(ctx *core.Context, pkts []*fh.Packet, t oran.Timing) (*fh.Packet, error) {
	ctx.Transcoder().Reset()
	out := ctx.UPlaneScratch(1)
	*out = oran.UPlaneMsg{Timing: t, Sections: out.Sections[:0]}
	msg := ctx.UPlaneScratch(0)
	for _, p := range pkts {
		idx := a.byMAC[p.Eth.Src]
		if err := p.UPlane(msg, a.cfg.DUs[idx].Carrier.NumPRB); err != nil {
			return nil, err
		}
		for i := range msg.Sections {
			s := &msg.Sections[i]
			sec, err := a.relocate(ctx, s, idx, true)
			if err != nil {
				return nil, err
			}
			//ranvet:allow alloc appends into the shard's reusable staging message; the backing array amortizes across frames
			out.Sections = append(out.Sections, sec)
		}
	}
	merged := fh.Rebuild(pkts[0], out.AppendTo)
	// Clear the BandSector: the combined stream carries several cells'
	// PRBs, so attribution falls back to spectrum position.
	pc := merged.EAxC()
	pc.BandSector = 0
	merged.SetEAxC(pc)
	return merged, nil
}

// relocate moves a section between a DU grid and the RU grid. toRU=true
// shifts DU→RU; false shifts RU→DU (the startPRB delta flips). The
// payload is copied verbatim on the aligned fast path and transcoded
// through the IQ codec otherwise.
func (a *App) relocate(ctx *core.Context, s *oran.USection, idx int, toRU bool) (oran.USection, error) {
	delta := a.offset[idx]
	if !toRU {
		delta = -delta
	}
	sec := oran.USection{
		SectionID: s.SectionID,
		StartPRB:  s.StartPRB + delta,
		NumPRB:    s.NumPRB,
		Comp:      s.Comp,
	}
	tx := ctx.Transcoder()
	if a.align[idx] {
		ctx.ChargeCopyAligned(s.NumPRB)
		a.AlignedCopies.Add(1)
		sec.Payload = tx.AppendBytes(s.Payload)
		return sec, nil
	}
	// Misaligned: decompress, re-grid, recompress (Fig. 6 right), all
	// through the pooled grid and arena scratch.
	g := tx.Grid(0, s.NumPRB)
	if _, err := bfp.DecompressGrid(s.Payload, g, s.Comp); err != nil {
		return sec, err
	}
	payload, err := tx.CompressGrid(g, sec.Comp)
	if err != nil {
		return sec, err
	}
	ctx.ChargeRecompress(s.NumPRB)
	a.Recompress.Add(1)
	sec.Payload = payload
	return sec, nil
}

// fromRU demultiplexes uplink traffic back to the tenants.
func (a *App) fromRU(ctx *core.Context, pkt *fh.Packet) error {
	t, err := pkt.Timing()
	if err != nil {
		return err
	}
	if pkt.Plane() != fh.PlaneU || t.Direction != oran.Uplink {
		ctx.Drop(pkt)
		return nil
	}
	if t.FilterIndex == 1 {
		return a.prachULDemux(ctx, pkt, t)
	}
	return a.ulDemux(ctx, pkt, t)
}

// ulDemux replicates the RU's full-spectrum uplink per requesting DU,
// carving out each DU's PRB window (Algorithm 2 lines 16-24).
func (a *App) ulDemux(ctx *core.Context, pkt *fh.Packet, t oran.Timing) error {
	ckey := cKey(t, pkt.EAxC().RUPort, false)
	requesters := a.duSet(ctx.Cached(ckey))
	if requesters == 0 {
		ctx.Drop(pkt)
		return nil
	}
	ctx.Transcoder().Reset()
	msg := ctx.UPlaneScratch(0)
	if err := pkt.UPlane(msg, a.cfg.RUCarrier.NumPRB); err != nil {
		return err
	}
	out := ctx.UPlaneScratch(1)
	for idx := range a.cfg.DUs {
		if requesters&(1<<uint(idx)) == 0 {
			continue
		}
		du := a.cfg.DUs[idx]
		*out = oran.UPlaneMsg{Timing: t, Sections: out.Sections[:0]}
		for i := range msg.Sections {
			s := &msg.Sections[i]
			carved, ok, err := a.carve(ctx, s, idx)
			if err != nil {
				return err
			}
			if ok {
				//ranvet:allow alloc appends into the shard's reusable staging message; the backing array amortizes across frames
				out.Sections = append(out.Sections, carved)
			}
		}
		if len(out.Sections) == 0 {
			continue
		}
		replica := ctx.Replicate(pkt)
		rebuilt := fh.Rebuild(replica, out.AppendTo)
		pc := rebuilt.EAxC()
		pc.DUPort = du.PortID
		rebuilt.SetEAxC(pc)
		ctx.ChargeHeaderMod()
		if err := ctx.Redirect(rebuilt, du.MAC, a.cfg.MAC, -1); err != nil {
			return err
		}
		a.Demuxed.Add(1)
	}
	ctx.Drop(pkt)
	return nil
}

// carve extracts the window of section s (on the RU grid) that belongs to
// DU idx, re-based onto the DU's grid.
func (a *App) carve(ctx *core.Context, s *oran.USection, idx int) (oran.USection, bool, error) {
	du := a.cfg.DUs[idx]
	lo := a.offset[idx]
	hi := lo + du.Carrier.NumPRB
	sLo, sHi := s.StartPRB, s.StartPRB+s.NumPRB
	if sHi <= lo || sLo >= hi {
		return oran.USection{}, false, nil
	}
	if sLo < lo {
		sLo = lo
	}
	if sHi > hi {
		sHi = hi
	}
	n := sHi - sLo
	sec := oran.USection{
		SectionID: s.SectionID,
		StartPRB:  sLo - lo, // re-based to the DU grid
		NumPRB:    n,
		Comp:      s.Comp,
	}
	size := s.Comp.PRBSize()
	start := (sLo - s.StartPRB) * size
	tx := ctx.Transcoder()
	if a.align[idx] {
		ctx.ChargeCopyAligned(n)
		a.AlignedCopies.Add(1)
		sec.Payload = tx.AppendBytes(s.Payload[start : start+n*size])
		return sec, true, nil
	}
	g := tx.Grid(0, n)
	if _, err := bfp.DecompressGrid(s.Payload[start:], g, s.Comp); err != nil {
		return sec, false, err
	}
	payload, err := tx.CompressGrid(g, sec.Comp)
	if err != nil {
		return sec, false, err
	}
	ctx.ChargeRecompress(n)
	a.Recompress.Add(1)
	sec.Payload = payload
	return sec, true, nil
}

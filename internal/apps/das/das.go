// Package das implements the Distributed Antenna System middlebox of
// §4.1: one cell's signal replicated across many RUs.
//
// Downlink: every C- and U-plane packet from the DU is replicated to all
// DAS RUs (actions A1+A2). Uplink: the U-plane packets of all RUs for the
// same (symbol, antenna port) are cached (A3) and their IQ samples summed
// element-wise on a per-subcarrier basis — decompressing and
// re-compressing around the merge (A4) — before a single combined packet
// is forwarded to the DU (A1).
package das

import (
	"fmt"
	"sync/atomic"

	"ranbooster/internal/bfp"
	"ranbooster/internal/core"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
)

// Config describes one DAS middlebox.
type Config struct {
	Name string
	// MAC is the middlebox's own address (the DU's "RU" and every RU's
	// "DU").
	MAC eth.MAC
	// DU is the upstream cell.
	DU eth.MAC
	// RUs are the distribution points.
	RUs []eth.MAC
	// CarrierPRBs resolves section encodings.
	CarrierPRBs int
}

// App is the DAS middlebox.
type App struct {
	cfg Config
	rus map[eth.MAC]bool

	// Merges counts completed uplink combinations (for tests/telemetry).
	// An atomic type so that readers racing parallel engine workers
	// cannot accidentally use a plain load.
	Merges atomic.Uint64
}

// New builds the middlebox.
func New(cfg Config) *App {
	a := &App{cfg: cfg, rus: make(map[eth.MAC]bool, len(cfg.RUs))}
	for _, m := range cfg.RUs {
		a.rus[m] = true
	}
	return a
}

// Name implements core.App.
func (a *App) Name() string { return a.cfg.Name }

// Control implements the management interface: RUs can be added or
// removed on-the-fly ("add-ru" / "remove-ru" with arg "mac").
func (a *App) Control(cmd string, args map[string]string) error {
	mac, err := eth.ParseMAC(args["mac"])
	if err != nil {
		return err
	}
	switch cmd {
	case "add-ru":
		if !a.rus[mac] {
			a.rus[mac] = true
			a.cfg.RUs = append(a.cfg.RUs, mac)
		}
		return nil
	case "remove-ru":
		if a.rus[mac] {
			delete(a.rus, mac)
			for i, m := range a.cfg.RUs {
				if m == mac {
					a.cfg.RUs = append(a.cfg.RUs[:i], a.cfg.RUs[i+1:]...)
					break
				}
			}
		}
		return nil
	default:
		return fmt.Errorf("das: unknown command %q", cmd)
	}
}

// Handle implements core.App.
//
//ranvet:hotpath
//ranvet:detpath
func (a *App) Handle(ctx *core.Context, pkt *fh.Packet) error {
	switch {
	case pkt.Eth.Src == a.cfg.DU:
		return a.handleDownstream(ctx, pkt)
	case a.rus[pkt.Eth.Src]:
		return a.handleUpstream(ctx, pkt)
	default:
		ctx.Drop(pkt)
		return nil
	}
}

// HandleBurst implements core.BurstApp: each packet of the burst runs the
// per-frame logic, with per-packet failures isolated through
// Context.PacketError — a merge that fails for one symbol (layout
// mismatch on a lossy fronthaul) must not discard the rest of the burst.
//
//ranvet:hotpath
//ranvet:detpath
func (a *App) HandleBurst(ctx *core.Context, pkts []*fh.Packet) error {
	for _, pkt := range pkts {
		if err := a.Handle(ctx, pkt); err != nil {
			ctx.PacketError(pkt, err)
		}
	}
	return nil
}

// handleDownstream replicates DU traffic to every RU (A1+A2).
func (a *App) handleDownstream(ctx *core.Context, pkt *fh.Packet) error {
	for _, ruMAC := range a.cfg.RUs[1:] {
		cp := ctx.Replicate(pkt)
		if err := ctx.Redirect(cp, ruMAC, a.cfg.MAC, -1); err != nil {
			return err
		}
	}
	return ctx.Redirect(pkt, a.cfg.RUs[0], a.cfg.MAC, -1)
}

// handleUpstream caches RU uplink and merges once every RU reported (A3+A4).
func (a *App) handleUpstream(ctx *core.Context, pkt *fh.Packet) error {
	key, err := fh.KeyOf(pkt)
	if err != nil {
		return err
	}
	ctx.Cache(key, pkt)
	if ctx.CachedCount(key) < len(a.cfg.RUs) {
		return nil
	}
	pkts := ctx.TakeCached(key)
	merged, err := a.merge(ctx, pkts)
	if err != nil {
		return err
	}
	a.Merges.Add(1)
	return ctx.Redirect(merged, a.cfg.DU, a.cfg.MAC, -1)
}

// merge sums the IQ payloads of packets (one per RU, same symbol and
// port) on a per-subcarrier basis, returning a rebuilt packet. The inputs
// must share a section layout, which they do by construction: each RU
// answered the same replicated C-plane request.
//
// All working storage — accumulation grids, the per-packet decode grid,
// the re-encoded payloads and both U-plane messages — comes from the
// shard's pooled Transcoder and message scratch, so a steady-state merge
// performs zero allocations (fh.Rebuild copies the payloads out into the
// fresh frame, so nothing from the arena outlives the Handle call).
func (a *App) merge(ctx *core.Context, pkts []*fh.Packet) (*fh.Packet, error) {
	tx := ctx.Transcoder()
	tx.Reset()
	base := pkts[0]
	baseMsg := ctx.UPlaneScratch(0)
	if err := base.UPlane(baseMsg, a.cfg.CarrierPRBs); err != nil {
		return nil, err
	}
	// Decode every section of every packet into grids and accumulate.
	// Grid slot i accumulates section i; slot nSec holds the per-packet
	// decode scratch. DecompressGrid overwrites every PRB it is given, so
	// the stale slot contents never leak into a merge.
	nSec := len(baseMsg.Sections)
	totalPRB := 0
	for i := range baseMsg.Sections {
		s := &baseMsg.Sections[i]
		totalPRB += s.NumPRB
		if _, err := bfp.DecompressGrid(s.Payload, tx.Grid(i, s.NumPRB), s.Comp); err != nil {
			return nil, err
		}
	}
	msg := ctx.UPlaneScratch(1)
	for _, p := range pkts[1:] {
		if err := p.UPlane(msg, a.cfg.CarrierPRBs); err != nil {
			return nil, err
		}
		if len(msg.Sections) != nSec {
			//ranvet:allow alloc error path: layout mismatch only on a desynchronized lossy fronthaul
			return nil, fmt.Errorf("das: section layout mismatch (%d vs %d)", len(msg.Sections), nSec)
		}
		for i := range msg.Sections {
			s := &msg.Sections[i]
			// On a lossy fronthaul the RUs can answer *different* C-plane
			// requests in the same symbol (a dropped request desynchronizes
			// the replication), so the shared-layout construction argument
			// no longer holds; a width mismatch must fail the merge, not
			// corrupt it.
			if s.NumPRB != baseMsg.Sections[i].NumPRB {
				//ranvet:allow alloc error path: width mismatch only on a desynchronized lossy fronthaul
				return nil, fmt.Errorf("das: section %d width mismatch (%d vs %d PRBs)",
					i, s.NumPRB, baseMsg.Sections[i].NumPRB)
			}
			g := tx.Grid(nSec, s.NumPRB)
			if _, err := bfp.DecompressGrid(s.Payload, g, s.Comp); err != nil {
				return nil, err
			}
			tx.Grid(i, s.NumPRB).AddSat(g)
		}
	}
	ctx.ChargeMerge(totalPRB, len(pkts))

	// Re-encode into the base packet's layout, payloads in the arena.
	for i := range baseMsg.Sections {
		s := &baseMsg.Sections[i]
		payload, err := tx.CompressGrid(tx.Grid(i, s.NumPRB), s.Comp)
		if err != nil {
			return nil, err
		}
		s.Payload = payload
	}
	return fh.Rebuild(base, baseMsg.AppendTo), nil
}

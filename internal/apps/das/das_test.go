package das

import (
	"testing"

	"ranbooster/internal/bfp"
	"ranbooster/internal/core"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/iq"
	"ranbooster/internal/oran"
	"ranbooster/internal/sim"
)

var (
	duMAC  = eth.MAC{2, 0, 0, 0, 0, 0x10}
	mbMAC  = eth.MAC{2, 0, 0, 0, 0, 0x11}
	ru1MAC = eth.MAC{2, 0, 0, 0, 0, 0x12}
	ru2MAC = eth.MAC{2, 0, 0, 0, 0, 0x13}
)

func bfp9() bfp.Params { return bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint} }

func newDAS(t *testing.T) (*sim.Scheduler, *core.Engine, *App, *[][]byte) {
	t.Helper()
	s := sim.NewScheduler()
	app := New(Config{Name: "das", MAC: mbMAC, DU: duMAC, RUs: []eth.MAC{ru1MAC, ru2MAC}, CarrierPRBs: 106})
	eng, err := core.NewEngine(s, core.Config{Name: "das", Mode: core.ModeDPDK, App: app, CarrierPRBs: 106})
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	eng.SetOutput(func(f []byte) { out = append(out, f) })
	return s, eng, app, &out
}

func uplink(t *testing.T, b *fh.Builder, grid iq.Grid, sym uint8) []byte {
	t.Helper()
	payload, err := bfp.CompressGrid(nil, grid, bfp9())
	if err != nil {
		t.Fatal(err)
	}
	msg := &oran.UPlaneMsg{
		Timing:   oran.Timing{Direction: oran.Uplink, FrameID: 2, SymbolID: sym},
		Sections: []oran.USection{{NumPRB: len(grid), Comp: bfp9(), Payload: payload}},
	}
	return b.UPlane(ecpri.PcID{RUPort: 0}, msg)
}

func TestDownlinkReplicatesToEveryRU(t *testing.T) {
	s, eng, _, out := newDAS(t)
	b := fh.NewBuilder(duMAC, mbMAC, -1)
	msg := &oran.CPlaneMsg{
		Timing:      oran.Timing{Direction: oran.Downlink},
		SectionType: oran.SectionType1,
		Sections:    []oran.CSection{{NumPRB: 106, NumSymbol: 14, ReMask: 0xfff}},
	}
	eng.Ingress(b.CPlane(ecpri.PcID{}, msg))
	s.Run()
	if len(*out) != 2 {
		t.Fatalf("replicas = %d", len(*out))
	}
	dsts := map[eth.MAC]bool{}
	for _, f := range *out {
		var p fh.Packet
		if err := p.Decode(f); err != nil {
			t.Fatal(err)
		}
		dsts[p.Eth.Dst] = true
		if p.Eth.Src != mbMAC {
			t.Fatalf("src = %v", p.Eth.Src)
		}
	}
	if !dsts[ru1MAC] || !dsts[ru2MAC] {
		t.Fatalf("destinations = %v", dsts)
	}
}

func TestUplinkMergeIsElementwiseSum(t *testing.T) {
	s, eng, app, out := newDAS(t)
	b1 := fh.NewBuilder(ru1MAC, mbMAC, -1)
	b2 := fh.NewBuilder(ru2MAC, mbMAC, -1)

	g1, g2 := iq.NewGrid(8), iq.NewGrid(8)
	for i := range g1 {
		for j := range g1[i] {
			g1[i][j] = iq.Sample{I: int16(100 + i), Q: int16(-j)}
			g2[i][j] = iq.Sample{I: int16(200), Q: int16(50 + j)}
		}
	}
	eng.Ingress(uplink(t, b1, g1, 4))
	if app.Merges.Load() != 0 {
		t.Fatal("merged before all RUs arrived")
	}
	eng.Ingress(uplink(t, b2, g2, 4))
	s.Run()
	if app.Merges.Load() != 1 {
		t.Fatalf("merges = %d", app.Merges.Load())
	}
	if len(*out) != 1 {
		t.Fatalf("out = %d", len(*out))
	}
	var p fh.Packet
	if err := p.Decode((*out)[0]); err != nil {
		t.Fatal(err)
	}
	if p.Eth.Dst != duMAC {
		t.Fatalf("merged packet dst = %v", p.Eth.Dst)
	}
	var msg oran.UPlaneMsg
	if err := p.UPlane(&msg, 106); err != nil {
		t.Fatal(err)
	}
	got := iq.NewGrid(8)
	if _, err := bfp.DecompressGrid(msg.Sections[0].Payload, got, bfp9()); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		for j := range got[i] {
			want := iq.AddSat(g1[i][j], g2[i][j])
			// 9-bit BFP may quantize by one step at these magnitudes.
			if di := int(got[i][j].I) - int(want.I); di < -2 || di > 2 {
				t.Fatalf("PRB %d sample %d I = %d, want %d", i, j, got[i][j].I, want.I)
			}
		}
	}
}

// TestMergeSteadyStateAllocs pins the allocation budget of a full uplink
// combine cycle: two RU frames in, one merged frame out. The decode grids,
// re-encoded payloads and U-plane messages all come from the shard's
// pooled Transcoder, so the only allocations left are the per-frame
// fh.Packet copies, the rebuilt output frame, the emit closure and the
// scheduler events — none of them proportional to the carrier.
func TestMergeSteadyStateAllocs(t *testing.T) {
	s, eng, app, _ := newDAS(t)
	eng.SetOutput(func([]byte) {})
	b1 := fh.NewBuilder(ru1MAC, mbMAC, -1)
	b2 := fh.NewBuilder(ru2MAC, mbMAC, -1)
	g := iq.NewGrid(64)
	for i := range g {
		g[i][0] = iq.Sample{I: int16(i * 100), Q: int16(-i * 100)}
	}
	f1 := uplink(t, b1, g, 4)
	f2 := uplink(t, b2, g, 4)
	for i := 0; i < 64; i++ {
		eng.Ingress(f1)
		eng.Ingress(f2)
		s.Run()
	}
	avg := testing.AllocsPerRun(200, func() {
		eng.Ingress(f1)
		eng.Ingress(f2)
		s.Run()
	})
	const budget = 10 // measured 9: fixed per-cycle overhead; the transcode itself is alloc-free
	if avg > budget {
		t.Fatalf("merge cycle allocates %.1f objects, budget %d", avg, budget)
	}
	if app.Merges.Load() == 0 {
		t.Fatal("no merges happened")
	}
	t.Logf("merge cycle allocations: %.1f", avg)
}

func TestDifferentSymbolsDoNotMerge(t *testing.T) {
	s, eng, app, _ := newDAS(t)
	b1 := fh.NewBuilder(ru1MAC, mbMAC, -1)
	b2 := fh.NewBuilder(ru2MAC, mbMAC, -1)
	eng.Ingress(uplink(t, b1, iq.NewGrid(4), 4))
	eng.Ingress(uplink(t, b2, iq.NewGrid(4), 5)) // other symbol
	s.Run()
	if app.Merges.Load() != 0 {
		t.Fatalf("merged across symbols: %d", app.Merges.Load())
	}
}

func TestUnknownSourceDropped(t *testing.T) {
	s, eng, _, out := newDAS(t)
	stranger := fh.NewBuilder(eth.MAC{9, 9, 9, 9, 9, 9}, mbMAC, -1)
	eng.Ingress(uplink(t, stranger, iq.NewGrid(4), 4))
	s.Run()
	if len(*out) != 0 {
		t.Fatal("stranger traffic forwarded")
	}
	if eng.Snapshot().AppDrops != 1 {
		t.Fatalf("drops = %d", eng.Snapshot().AppDrops)
	}
}

func TestControlAddRemoveRU(t *testing.T) {
	_, _, app, _ := newDAS(t)
	if err := app.Control("add-ru", map[string]string{"mac": "02:00:00:00:00:14"}); err != nil {
		t.Fatal(err)
	}
	if len(app.cfg.RUs) != 3 {
		t.Fatalf("RUs = %d", len(app.cfg.RUs))
	}
	if err := app.Control("remove-ru", map[string]string{"mac": "02:00:00:00:00:14"}); err != nil {
		t.Fatal(err)
	}
	if len(app.cfg.RUs) != 2 {
		t.Fatalf("RUs = %d after remove", len(app.cfg.RUs))
	}
	if err := app.Control("bogus", map[string]string{"mac": "02:00:00:00:00:14"}); err == nil {
		t.Fatal("bogus command accepted")
	}
	if err := app.Control("add-ru", map[string]string{"mac": "zz"}); err == nil {
		t.Fatal("bad mac accepted")
	}
}

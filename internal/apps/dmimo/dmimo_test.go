package dmimo

import (
	"testing"

	"ranbooster/internal/bfp"
	"ranbooster/internal/core"
	"ranbooster/internal/ecpri"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/oran"
	"ranbooster/internal/phy"
	"ranbooster/internal/sim"
)

var (
	duMAC  = eth.MAC{2, 0, 0, 0, 0, 0x20}
	mbMAC  = eth.MAC{2, 0, 0, 0, 0, 0x21}
	ru1MAC = eth.MAC{2, 0, 0, 0, 0, 0x22}
	ru2MAC = eth.MAC{2, 0, 0, 0, 0, 0x23}
)

func bfp9() bfp.Params { return bfp.Params{IQWidth: 9, Method: bfp.MethodBlockFloatingPoint} }

func cfg(replicate bool) Config {
	return Config{
		Name: "dm", MAC: mbMAC, DU: duMAC,
		RUs:          []RUSlot{{MAC: ru1MAC, Ports: 2}, {MAC: ru2MAC, Ports: 2}},
		SSB:          phy.DefaultSSB(),
		ReplicateSSB: replicate,
		CarrierPRBs:  273,
	}
}

func newEngine(t *testing.T, mode core.Mode, app *App) (*sim.Scheduler, *core.Engine, *[][]byte) {
	t.Helper()
	s := sim.NewScheduler()
	c := core.Config{Name: "dm", Mode: mode, App: app, CarrierPRBs: 273}
	if mode == core.ModeXDP {
		c.Kernel = app.KernelProgram()
	}
	eng, err := core.NewEngine(s, c)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]byte
	eng.SetOutput(func(f []byte) { out = append(out, f) })
	return s, eng, &out
}

func uFrame(b *fh.Builder, dir oran.Direction, port, sym uint8) []byte {
	msg := &oran.UPlaneMsg{
		Timing:   oran.Timing{Direction: dir, FrameID: 0, SubframeID: 3, SlotID: 0, SymbolID: sym},
		Sections: []oran.USection{{StartPRB: 30, NumPRB: 2, Comp: bfp9(), Payload: make([]byte, 2*28)}},
	}
	return b.UPlane(ecpri.PcID{RUPort: port}, msg)
}

func decode(t *testing.T, f []byte) *fh.Packet {
	t.Helper()
	var p fh.Packet
	if err := p.Decode(f); err != nil {
		t.Fatal(err)
	}
	return &p
}

func TestLayers(t *testing.T) {
	if got := New(cfg(true)).Layers(); got != 4 {
		t.Fatalf("Layers = %d", got)
	}
}

func TestDownlinkRemapBothModes(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeDPDK, core.ModeXDP} {
		app := New(cfg(true))
		s, eng, out := newEngine(t, mode, app)
		b := fh.NewBuilder(duMAC, mbMAC, -1)
		// Port 1 stays on RU1; port 3 remaps to RU2 port 1.
		eng.Ingress(uFrame(b, oran.Downlink, 1, 7))
		eng.Ingress(uFrame(b, oran.Downlink, 3, 7))
		s.Run()
		if len(*out) != 2 {
			t.Fatalf("%v: out = %d", mode, len(*out))
		}
		p1 := decode(t, (*out)[0])
		if p1.Eth.Dst != ru1MAC || p1.EAxC().RUPort != 1 {
			t.Fatalf("%v: first packet dst=%v port=%d", mode, p1.Eth.Dst, p1.EAxC().RUPort)
		}
		p2 := decode(t, (*out)[1])
		if p2.Eth.Dst != ru2MAC || p2.EAxC().RUPort != 1 {
			t.Fatalf("%v: second packet dst=%v port=%d", mode, p2.Eth.Dst, p2.EAxC().RUPort)
		}
	}
}

func TestUplinkRemapBothModes(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeDPDK, core.ModeXDP} {
		app := New(cfg(true))
		s, eng, out := newEngine(t, mode, app)
		b := fh.NewBuilder(ru2MAC, mbMAC, -1)
		eng.Ingress(uFrame(b, oran.Uplink, 0, 10)) // RU2 local port 0 -> DU port 2
		s.Run()
		if len(*out) != 1 {
			t.Fatalf("%v: out = %d", mode, len(*out))
		}
		p := decode(t, (*out)[0])
		if p.Eth.Dst != duMAC || p.EAxC().RUPort != 2 {
			t.Fatalf("%v: dst=%v port=%d", mode, p.Eth.Dst, p.EAxC().RUPort)
		}
	}
}

func ssbFrame(b *fh.Builder) []byte {
	ssb := phy.DefaultSSB()
	msg := &oran.UPlaneMsg{
		Timing: oran.Timing{
			Direction: oran.Downlink, FrameID: 0, SubframeID: 0, SlotID: 0,
			SymbolID: uint8(ssb.StartSymbol),
		},
		Sections: []oran.USection{{StartPRB: 0, NumPRB: phy.SSBPRBs, Comp: bfp9(), Payload: make([]byte, phy.SSBPRBs*28)}},
	}
	return b.UPlane(ecpri.PcID{RUPort: 0}, msg)
}

// TestRemapSteadyStateAllocs pins the per-frame allocation budget of the
// port-remap datapath in both modes: a header rewrite on the pooled packet
// must cost only the fixed per-frame packet/emit/scheduler overhead.
func TestRemapSteadyStateAllocs(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeDPDK, core.ModeXDP} {
		app := New(cfg(false))
		s, eng, _ := newEngine(t, mode, app)
		eng.SetOutput(func([]byte) {})
		b := fh.NewBuilder(duMAC, mbMAC, -1)
		frame := uFrame(b, oran.Downlink, 3, 7)
		for i := 0; i < 64; i++ {
			eng.Ingress(frame)
			s.Run()
		}
		avg := testing.AllocsPerRun(200, func() {
			eng.Ingress(frame)
			s.Run()
		})
		const budget = 2 // measured 1: just the pooled-ring refill
		if avg > budget {
			t.Fatalf("%v: remap allocates %.1f objects/frame, budget %d", mode, avg, budget)
		}
		t.Logf("%v: remap allocations per frame: %.1f", mode, avg)
	}
}

func TestSSBReplicationFanOut(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeDPDK, core.ModeXDP} {
		app := New(cfg(true))
		s, eng, out := newEngine(t, mode, app)
		b := fh.NewBuilder(duMAC, mbMAC, -1)
		eng.Ingress(ssbFrame(b))
		s.Run()
		if len(*out) != 2 {
			t.Fatalf("%v: SSB fan-out = %d packets, want 2", mode, len(*out))
		}
		dsts := map[eth.MAC]int{}
		for _, f := range *out {
			p := decode(t, f)
			dsts[p.Eth.Dst]++
			if p.EAxC().RUPort != 0 {
				t.Fatalf("%v: SSB on port %d", mode, p.EAxC().RUPort)
			}
		}
		if dsts[ru1MAC] != 1 || dsts[ru2MAC] != 1 {
			t.Fatalf("%v: SSB destinations %v", mode, dsts)
		}
	}
}

func TestSSBReplicationDisabled(t *testing.T) {
	app := New(cfg(false))
	s, eng, out := newEngine(t, core.ModeDPDK, app)
	b := fh.NewBuilder(duMAC, mbMAC, -1)
	eng.Ingress(ssbFrame(b))
	s.Run()
	if len(*out) != 1 {
		t.Fatalf("out = %d, want 1 (primary only)", len(*out))
	}
	if app.SSBReplicas.Load() != 0 {
		t.Fatalf("replicas = %d", app.SSBReplicas.Load())
	}
}

func TestPortBeyondVirtualRUErrors(t *testing.T) {
	app := New(cfg(true))
	s, eng, out := newEngine(t, core.ModeDPDK, app)
	b := fh.NewBuilder(duMAC, mbMAC, -1)
	eng.Ingress(uFrame(b, oran.Downlink, 5, 7)) // only 4 layers exist
	s.Run()
	if len(*out) != 0 {
		t.Fatal("out-of-range port forwarded")
	}
	if eng.Snapshot().AppErrors != 1 {
		t.Fatalf("errors = %d", eng.Snapshot().AppErrors)
	}
}

func TestKernelProgramVerifies(t *testing.T) {
	for _, replicate := range []bool{true, false} {
		if err := New(cfg(replicate)).KernelProgram().Verify(); err != nil {
			t.Fatalf("replicate=%v: %v", replicate, err)
		}
	}
}

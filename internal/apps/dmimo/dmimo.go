// Package dmimo implements the distributed MIMO middlebox of §4.2:
// several small RUs presented to the DU as one large virtual RU.
//
// For N MIMO layers over RUs with M antennas each, the middlebox remaps
// eAxC antenna-port ids (A4) and redirects packets to the physical RU
// owning the layer (A1): the DU believes a single N-antenna RU exists,
// each RU believes it talks to an M-antenna DU. The periodic SSB, which
// the DU emits only on the primary antenna, is replicated to every
// secondary RU's first port (A2+A4) so distant UEs keep receiving it —
// without it they detach when they stray from the primary RU.
package dmimo

import (
	"fmt"
	"sync/atomic"

	"ranbooster/internal/core"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/oran"
	"ranbooster/internal/phy"
)

// RUSlot describes one physical RU in the cluster.
type RUSlot struct {
	MAC eth.MAC
	// Ports is the RU's antenna count.
	Ports int
}

// Config describes one dMIMO middlebox.
type Config struct {
	Name string
	MAC  eth.MAC
	DU   eth.MAC
	// RUs in layer order: RUs[0] carries DU ports [0, RUs[0].Ports), the
	// next RU the following ports, and so on.
	RUs []RUSlot
	// SSB locates the synchronization block for replication. ReplicateSSB
	// can be disabled to reproduce the detachment failure mode.
	SSB          phy.SSBConfig
	ReplicateSSB bool
	CarrierPRBs  int
}

// App is the dMIMO middlebox.
type App struct {
	cfg Config
	// base[i] is the first DU port of RUs[i].
	base []int
	// byMAC maps an RU to its index.
	byMAC map[eth.MAC]int

	// SSBReplicas counts SSB copies fanned out (observability for tests).
	// An atomic type so that readers racing parallel engine workers
	// cannot accidentally use a plain load.
	SSBReplicas atomic.Uint64
}

// New builds the middlebox. The RU port sum is the virtual RU's layer count.
func New(cfg Config) *App {
	a := &App{cfg: cfg, byMAC: make(map[eth.MAC]int)}
	off := 0
	for i, ru := range cfg.RUs {
		a.base = append(a.base, off)
		a.byMAC[ru.MAC] = i
		off += ru.Ports
	}
	return a
}

// Name implements core.App.
func (a *App) Name() string { return a.cfg.Name }

// Layers returns the virtual RU's total antenna count.
func (a *App) Layers() int {
	n := 0
	for _, ru := range a.cfg.RUs {
		n += ru.Ports
	}
	return n
}

// ruForPort locates the RU owning a DU antenna port.
func (a *App) ruForPort(p int) (idx int, local uint8, err error) {
	for i := len(a.cfg.RUs) - 1; i >= 0; i-- {
		if p >= a.base[i] {
			if p-a.base[i] >= a.cfg.RUs[i].Ports {
				//ranvet:allow alloc error path: out-of-range port means a misconfigured DU
				return 0, 0, fmt.Errorf("dmimo: DU port %d beyond virtual RU", p)
			}
			return i, uint8(p - a.base[i]), nil
		}
	}
	//ranvet:allow alloc error path: negative port means a corrupted eCPRI header
	return 0, 0, fmt.Errorf("dmimo: negative port %d", p)
}

// Handle implements core.App.
//
//ranvet:hotpath
//ranvet:detpath
func (a *App) Handle(ctx *core.Context, pkt *fh.Packet) error {
	if pkt.Eth.Src == a.cfg.DU {
		return a.handleDownlink(ctx, pkt)
	}
	if i, ok := a.byMAC[pkt.Eth.Src]; ok {
		return a.handleUplink(ctx, pkt, i)
	}
	ctx.Drop(pkt)
	return nil
}

// HandleBurst implements core.BurstApp: each packet of the burst runs the
// per-frame remap logic, with per-packet failures (out-of-range ports on
// a misconfigured DU, corrupted headers) isolated through
// Context.PacketError so the rest of the burst still flows.
//
//ranvet:hotpath
//ranvet:detpath
func (a *App) HandleBurst(ctx *core.Context, pkts []*fh.Packet) error {
	for _, pkt := range pkts {
		if err := a.Handle(ctx, pkt); err != nil {
			ctx.PacketError(pkt, err)
		}
	}
	return nil
}

// handleDownlink remaps the DU port onto the owning RU.
func (a *App) handleDownlink(ctx *core.Context, pkt *fh.Packet) error {
	pc := pkt.EAxC()
	idx, local, err := a.ruForPort(int(pc.RUPort))
	if err != nil {
		ctx.Drop(pkt)
		return err
	}
	// SSB replication: the primary-antenna SSB packet fans out to every
	// secondary RU's first port before normal forwarding.
	if a.cfg.ReplicateSSB && pc.RUPort == 0 && a.isSSB(pkt) {
		for _, sec := range a.cfg.RUs[1:] {
			cp := ctx.Replicate(pkt)
			ctx.ChargeHeaderMod()
			if err := ctx.Redirect(cp, sec.MAC, a.cfg.MAC, -1); err != nil {
				return err
			}
			a.SSBReplicas.Add(1)
		}
	}
	if local != pc.RUPort {
		pc.RUPort = local
		pkt.SetEAxC(pc)
		ctx.ChargeHeaderMod()
	}
	return ctx.Redirect(pkt, a.cfg.RUs[idx].MAC, a.cfg.MAC, -1)
}

// isSSB reports whether a packet sits in the SSB window.
func (a *App) isSSB(pkt *fh.Packet) bool {
	if pkt.Plane() != fh.PlaneU {
		return false
	}
	t, err := pkt.Timing()
	if err != nil || t.Direction != oran.Downlink {
		return false
	}
	slotInFrame := int(t.SubframeID)*phy.SlotsPerSubframe + int(t.SlotID)
	return a.cfg.SSB.Occupies(int(t.FrameID), slotInFrame, int(t.SymbolID))
}

// handleUplink remaps an RU's local port back onto the DU's layer space.
func (a *App) handleUplink(ctx *core.Context, pkt *fh.Packet, idx int) error {
	pc := pkt.EAxC()
	global := uint8(a.base[idx]) + pc.RUPort
	if global != pc.RUPort {
		pc.RUPort = global
		pkt.SetEAxC(pc)
		ctx.ChargeHeaderMod()
	}
	return ctx.Redirect(pkt, a.cfg.DU, a.cfg.MAC, -1)
}

// KernelProgram expresses the dMIMO datapath as XDP rules (Table 1: this
// middlebox runs entirely in kernel space): downlink port remaps and SSB
// mirrors as Tx rules, uplink remaps keyed on the source RU.
func (a *App) KernelProgram() *core.KernelProgram {
	var prog core.KernelProgram
	dl := oran.Downlink
	// SSB fan-out + primary forward for the DU's port-0 stream.
	if a.cfg.ReplicateSSB && len(a.cfg.RUs) > 1 {
		var mirrors []core.Rewrite
		for i := range a.cfg.RUs[1:] {
			mac := a.cfg.RUs[1+i].MAC
			mirrors = append(mirrors, core.Rewrite{SetDst: &mac, SetSrc: &a.cfg.MAC})
		}
		prog.Rules = append(prog.Rules, core.Rule{
			Match: core.Match{
				Src: &a.cfg.DU, Plane: fh.PlaneU, Dir: &dl,
				RUPorts:  &core.Range{Min: 0, Max: 0},
				FrameMod: a.cfg.SSB.PeriodFrames, FrameVal: 0,
				Subframe: u8(uint8(a.cfg.SSB.Slot / phy.SlotsPerSubframe)),
				Slot:     u8(uint8(a.cfg.SSB.Slot % phy.SlotsPerSubframe)),
				Symbols:  &core.Range{Min: a.cfg.SSB.StartSymbol, Max: a.cfg.SSB.StartSymbol + phy.SSBSymbols - 1},
			},
			Verdict: core.VerdictTx,
			Rewrite: &core.Rewrite{SetDst: &a.cfg.RUs[0].MAC, SetSrc: &a.cfg.MAC},
			Mirrors: mirrors,
		})
	}
	// Downlink remap per RU.
	for i := range a.cfg.RUs {
		ru := a.cfg.RUs[i]
		pm := core.IdentityPortMap()
		for p := 0; p < ru.Ports; p++ {
			pm[a.base[i]+p] = uint8(p)
		}
		prog.Rules = append(prog.Rules, core.Rule{
			Match: core.Match{
				Src:     &a.cfg.DU,
				RUPorts: &core.Range{Min: a.base[i], Max: a.base[i] + ru.Ports - 1},
			},
			Verdict: core.VerdictTx,
			Rewrite: &core.Rewrite{SetDst: &ru.MAC, SetSrc: &a.cfg.MAC, RUPortMap: pm},
		})
	}
	// Uplink remap per RU (matched on source).
	for i := range a.cfg.RUs {
		ru := a.cfg.RUs[i]
		pm := core.IdentityPortMap()
		for p := 0; p < ru.Ports; p++ {
			pm[p] = uint8(a.base[i] + p)
		}
		prog.Rules = append(prog.Rules, core.Rule{
			Match:   core.Match{Src: &ru.MAC},
			Verdict: core.VerdictTx,
			Rewrite: &core.Rewrite{SetDst: &a.cfg.DU, SetSrc: &a.cfg.MAC, RUPortMap: pm},
		})
	}
	return &prog
}

func u8(v uint8) *uint8 { return &v }

// Package resilience implements the RAN-resilience middlebox sketched in
// §8.1: it watches the downlink fronthaul's inter-packet gaps to detect a
// failed or wedged DU and re-routes the RU's traffic to a standby DU
// within a few milliseconds (actions A4 for the monitoring, A1 for the
// re-route) — the middlebox rendition of Slingshot/Atlas-style failover,
// without touching either DU.
//
// Mechanics: downlink packets from the active DU refresh a liveness
// timestamp. The engine has no timers of its own, so liveness is checked
// against uplink arrivals (which keep flowing from the RU regardless of
// DU health); when the gap since the last downlink exceeds the failover
// threshold, the middlebox flips its forwarding to the standby and
// publishes a telemetry event. Uplink is always steered to whichever DU
// is currently active, so the standby starts hearing the RU (PRACH
// included) the instant it takes over.
package resilience

import (
	"time"

	"ranbooster/internal/core"
	"ranbooster/internal/eth"
	"ranbooster/internal/fh"
	"ranbooster/internal/oran"
	"ranbooster/internal/sim"
)

// KPIFailover is published (value = new active index) on each failover.
const KPIFailover = "resilience.failover"

// Config describes one resilience middlebox.
type Config struct {
	Name string
	MAC  eth.MAC
	// DUs in priority order; index 0 is active first.
	DUs []eth.MAC
	// RU is the protected radio unit.
	RU eth.MAC
	// FailoverAfter is the downlink silence that declares the active DU
	// dead ("re-routing the RU traffic to a new DU within a few
	// milliseconds", §8.1).
	FailoverAfter time.Duration
}

// armCount is how many downlink packets must arrive within failover-sized
// gaps before the detector arms. An idle cell's downlink is just the SSB
// every couple of frames; its long gaps keep resetting the counter, so
// only a cell under regular load can trip a failover — exactly when one
// matters.
const armCount = 50

// App is the resilience middlebox.
type App struct {
	cfg     Config
	active  int
	lastDL  sim.Time
	seenDL  bool
	dlCount int

	// Failovers counts activations of a standby.
	Failovers uint64
}

// New builds the middlebox.
func New(cfg Config) *App {
	if cfg.FailoverAfter == 0 {
		cfg.FailoverAfter = 3 * time.Millisecond
	}
	return &App{cfg: cfg}
}

// Name implements core.App.
func (a *App) Name() string { return a.cfg.Name }

// Serial implements core.SerialApp: failover tracks the active DU and
// recent downlink liveness across every stream, so Handle must stay on a
// single shard.
func (a *App) Serial() {}

// Active returns the index of the DU currently serving the RU.
func (a *App) Active() int { return a.active }

// Handle implements core.App.
//
//ranvet:hotpath
//ranvet:detpath
func (a *App) Handle(ctx *core.Context, pkt *fh.Packet) error {
	src := pkt.Eth.Src
	if src == a.cfg.RU {
		a.checkLiveness(ctx)
		return ctx.Redirect(pkt, a.cfg.DUs[a.active], a.cfg.MAC, -1)
	}
	for i, du := range a.cfg.DUs {
		if src != du {
			continue
		}
		if i != a.active {
			// Standby traffic (e.g. its SSB slots) is suppressed so the RU
			// only ever sees one master — but it also drives the liveness
			// clock: when the active DU dies, the RU stops talking (no
			// C-plane requests reach it), and the standby's own cadence is
			// what still ticks.
			a.checkLiveness(ctx)
			ctx.Drop(pkt)
			return nil
		}
		if t, err := pkt.Timing(); err == nil && t.Direction == oran.Downlink {
			if a.seenDL && ctx.Now().Sub(a.lastDL) >= a.cfg.FailoverAfter {
				a.dlCount = 0 // idle cadence: disarm
			}
			a.lastDL = ctx.Now()
			a.seenDL = true
			a.dlCount++
		}
		return ctx.Redirect(pkt, a.cfg.RU, a.cfg.MAC, -1)
	}
	// Unknown sources are dropped but still tick the liveness check: a
	// deployment that wants detection latency bounded by something finer
	// than the standby DU's idle cadence aims a periodic heartbeat probe
	// at the middlebox (the chaos experiment probes at the TDD uplink
	// inter-arrival), and those probes arrive here.
	a.checkLiveness(ctx)
	ctx.Drop(pkt)
	return nil
}

// checkLiveness fails over when an armed (loaded) active DU goes silent.
func (a *App) checkLiveness(ctx *core.Context) {
	if !a.seenDL || a.dlCount < armCount || a.active >= len(a.cfg.DUs)-1 {
		return
	}
	if ctx.Now().Sub(a.lastDL) < a.cfg.FailoverAfter {
		return
	}
	a.active++
	a.Failovers++
	a.rearm()
	ctx.Publish(KPIFailover, float64(a.active))
}

// rearm resets the liveness detector against the newly active DU: the
// replacement must itself sustain armCount downlink packets at regular
// cadence before it can be declared dead, so failovers cascade cleanly
// down the standby list (DU A dies → B takes over; B dies → C takes
// over) instead of the detector tripping on A's stale timestamps.
func (a *App) rearm() {
	a.seenDL = false
	a.lastDL = 0
	a.dlCount = 0
}
